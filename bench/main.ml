(* Benchmark harness reproducing the paper's evaluation (Section 5).

   Every panel of Figure 11 has a subcommand, plus the Table 4 parameter
   dump and three ablations documented in DESIGN.md:

     table4      parameter defaults (Table 4)
     fig11a      heuristic variants, no greedy bound (response time)
     fig11d      heuristic variants seeded with the greedy bound
     fig11b      one-phase vs two-phase greedy (response time)
     fig11e      one-phase vs two-phase greedy (minimum cost)
     fig11c      heuristic/greedy/D&C scalability (response time)
     fig11f      heuristic/greedy/D&C minimum cost
     sweep-bpr   A1: base-tuples-per-result sweep (Table 4 row 2)
     sweep-gamma A2: partition gamma / tau sensitivity
     sweep-edge  A3: intersection vs union edge weights
     sweep-solvers A4: all four solvers incl. the annealing baseline
     sweep-rewrite A5: evaluation time, naive plan vs rewritten plan
     sweep-jobs  parallel D&C / Monte-Carlo scaling at jobs 1,2,4,8
                 (restrict with --jobs N); writes BENCH_parallel.json
     solvers-json  write BENCH_solvers.json: structured solver telemetry
                   and engine per-stage span timings, machine-readable
     sweep-incremental  A/B of incremental confidence re-evaluation
                   (affine coefficient caches + lineage dedup) vs the
                   forced-off baseline; writes BENCH_incremental.json
     sweep-resilience  solve-latency distribution with a wall deadline
                   vs unbounded, over many seeds: the deadline bounds
                   the tail (p99) while every partial answer stays
                   feasible; writes BENCH_resilience.json
     sweep-serving  warm serving pipeline (prepared plans + per-epoch
                   confidence caches) vs the cold per-request path:
                   repeated query, 1/8/64 principals, and the re-answer
                   after accept_proposal; every warm answer is checked
                   identical to cold; writes BENCH_serving.json
     sweep-columnar  columnar batch engine vs the row engine: parallel
                   bulk CSV ingest (MB/s), scan/filter/project
                   throughput (rows/s), top-K-by-confidence heap vs
                   full sort — identity-checked row-vs-columnar on
                   every point; writes BENCH_columnar.json
     sweep-circuits  safe-plan confidence fast path + d-DNNF lineage
                   circuits vs the degradation ladder: hierarchical
                   query through the engine, unsafe self-join re-priced
                   across confidence epochs, and circuit-backed solver
                   evaluators — every point bit-identical to the
                   ladder; writes BENCH_circuits.json
     smoke       every panel at tiny sizes (run by `dune runtest`)
     micro       Bechamel micro-benchmarks of the hot paths

   `dune exec bench/main.exe` runs everything except the slowest points;
   pass `--full` to also run the full-rescan greedy at 50K/100K (several
   minutes each, reproducing the paper's "greedy takes hours" regime).
   Absolute times are hardware-specific; the shapes are what the paper
   reports (see EXPERIMENTS.md). *)

module Problem = Optimize.Problem
module Greedy = Optimize.Greedy
module H = Optimize.Heuristic
module D = Optimize.Divide_conquer
module Synth = Workload.Synth

let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let header title =
  Printf.printf "\n==================== %s ====================\n%!" title

(* every artifact records the host's core count and the effective jobs
   level ({!Exec.resolve_jobs}: PCQE_JOBS, else 1) so a reader can tell
   an oversubscribed run from a parallel one without guessing *)
let machine_fields () =
  Printf.sprintf "\"cores\": %d,\n  \"jobs\": %d"
    (Domain.recommended_domain_count ())
    (Exec.resolve_jobs ())

let row fmt = Printf.printf fmt

(* run [f] with the circuit/safe-plan fast paths pinned on or off —
   panels that A/B the two confidence tiers, or that assert
   ladder/cache-path behaviour a safe-plan query would bypass, pin
   explicitly instead of inheriting PCQE_CIRCUITS *)
let with_circuits on f =
  Lineage.Circuit.force (Some on);
  Fun.protect ~finally:(fun () -> Lineage.Circuit.force None) f

(* ------------------------------------------------------------------ *)
(* Table 4 *)

let table4 () =
  header "Table 4: parameters and their settings";
  List.iter
    (fun (name, value) -> row "  %-40s %s\n" name value)
    (Synth.table4 Synth.default_params);
  row "  %-40s %s\n" "Data size sweep" "10, 1K, 5K, 10K, 50K, 100K";
  row "  %-40s %s\n" "Base tuples per result sweep" "5, 10, 25, 50, 100"

(* ------------------------------------------------------------------ *)
(* Figure 11 (a) and (d): heuristic variants on the small instance
   (10 base tuples, >= 3 results above beta = 0.6, 5 base tuples/result) *)

let heuristic_variants =
  [
    ("Naive", H.naive);
    ("H1", H.only `H1);
    ("H2", H.only `H2);
    ("H3", H.only `H3);
    ("H4", H.only `H4);
    ("All", H.all_heuristics);
  ]

let fig11_ad ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(max_nodes = None) ~seeded () =
  header
    (if seeded then
       "Figure 11(d): heuristic variants, greedy cost as initial bound"
     else "Figure 11(a): heuristic variants, no initial bound");
  row "  small instance: 10 base tuples, 8 results, >=3 above beta=0.6\n";
  row "  %-8s %14s %14s %14s\n" "variant" "time (ms)" "nodes" "cost";
  List.iter
    (fun (name, heuristics) ->
      let times = ref [] and nodes = ref [] and costs = ref [] in
      List.iter
        (fun seed ->
          let p = Synth.small_instance ~seed () in
          let bound =
            if seeded then begin
              let g = Greedy.solve p in
              if g.Greedy.feasible then Some g.Greedy.cost else None
            end
            else None
          in
          let out, dt =
            time (fun () ->
                H.solve
                  ~config:{ H.heuristics; initial_bound = bound; max_nodes }
                  p)
          in
          times := dt :: !times;
          nodes := float_of_int out.H.nodes :: !nodes;
          costs :=
            (match out.H.solution with
            | Some _ -> out.H.cost
            | None -> ( match bound with Some b -> b | None -> nan))
            :: !costs)
        seeds;
      row "  %-8s %14.2f %14.0f %14.2f\n" name
        (1000.0 *. mean !times)
        (mean !nodes) (mean !costs))
    heuristic_variants;
  row "  expected shape: every Hi beats Naive; All beats each single Hi;\n";
  row "  seeding (11d) reduces nodes for every variant.\n"

(* ------------------------------------------------------------------ *)
(* Figure 11 (b) and (e): one-phase vs two-phase greedy *)

let fig11_be ?(sizes = [ 1000; 3000; 5000; 7000; 9000 ]) () =
  header "Figure 11(b)+(e): one-phase vs two-phase greedy";
  row "  %-8s %14s %14s %14s %14s %10s\n" "size" "1p time(s)" "2p time(s)"
    "1p cost" "2p cost" "saving";
  List.iter
    (fun size ->
      let params = { Synth.default_params with data_size = size } in
      let p = Synth.instance ~params ~seed:(size + 1) () in
      let one, t1 =
        time (fun () ->
            Greedy.solve
              ~config:{ Greedy.default_config with two_phase = false }
              p)
      in
      let two, t2 = time (fun () -> Greedy.solve p) in
      row "  %-8d %14.3f %14.3f %14.1f %14.1f %9.1f%%\n" size t1 t2
        one.Greedy.cost two.Greedy.cost
        (100.0
        *. (one.Greedy.cost -. two.Greedy.cost)
        /. Float.max one.Greedy.cost 1e-9))
    sizes;
  row "  expected shape: similar response time (phase 2 is cheap), two-phase\n";
  row "  cost clearly below one-phase (the paper reports >30%% savings).\n"

(* ------------------------------------------------------------------ *)
(* Figure 11 (c) and (f): scalability of the three algorithms *)

let bpr_for_size size = if size < 10_000 then 5 else size / 1000

let fig11_cf ?(sizes = [ 10; 1000; 5000; 10_000; 50_000; 100_000 ]) ~full () =
  header "Figure 11(c)+(f): heuristic vs greedy vs divide-and-conquer";
  row "  (heuristic only runs at tiny sizes; '-' = not run%s)\n"
    (if full then "" else "; pass --full for greedy at 50K/100K");
  row "  %-8s %12s %12s %12s %14s %14s %14s\n" "size" "heur t(s)"
    "greedy t(s)" "dnc t(s)" "heur cost" "greedy cost" "dnc cost";
  List.iter
    (fun size ->
      let params =
        {
          Synth.default_params with
          data_size = size;
          bases_per_result = bpr_for_size size;
        }
      in
      let p =
        if size = 10 then
          Synth.small_instance ~num_bases:10 ~num_results:4 ~required:2 ~seed:7
            ()
        else Synth.instance ~params ~seed:7 ()
      in
      let heur =
        if size <= 10 then begin
          let out, dt = time (fun () -> H.solve p) in
          Some (dt, out.H.cost)
        end
        else None
      in
      let greedy =
        if size <= 10_000 || full then begin
          let out, dt = time (fun () -> Greedy.solve p) in
          Some (dt, if out.Greedy.feasible then out.Greedy.cost else nan)
        end
        else None
      in
      let dnc, dnc_t = time (fun () -> D.solve p) in
      let fmt_t = function
        | Some (t, _) -> Printf.sprintf "%.3f" t
        | None -> "-"
      in
      let fmt_c = function
        | Some (_, c) -> Printf.sprintf "%.1f" c
        | None -> "-"
      in
      row "  %-8d %12s %12s %12.3f %14s %14s %14.1f\n" size (fmt_t heur)
        (fmt_t greedy) dnc_t (fmt_c heur) (fmt_c greedy) dnc.D.cost)
    sizes;
  row "  expected shape: heuristic explodes beyond tiny sizes; greedy is\n";
  row "  fastest on small inputs, D&C overtakes it as size grows and the\n";
  row "  gap widens; heuristic cost is optimal, the other two land close.\n"

(* ------------------------------------------------------------------ *)
(* A1: base-tuples-per-result sweep at 10K (Table 4 row 2) *)

let sweep_bpr ?(size = 10_000) ?(bprs = [ 5; 10; 25; 50; 100 ]) () =
  header (Printf.sprintf "A1: base tuples per result sweep (%d base tuples)" size);
  row "  %-8s %14s %14s %14s %14s\n" "bpr" "greedy t(s)" "dnc t(s)"
    "greedy cost" "dnc cost";
  List.iter
    (fun bpr ->
      let params =
        { Synth.default_params with data_size = size; bases_per_result = bpr }
      in
      let p = Synth.instance ~params ~seed:11 () in
      let g, tg = time (fun () -> Greedy.solve p) in
      let d, td = time (fun () -> D.solve p) in
      row "  %-8d %14.3f %14.3f %14.1f %14.1f\n" bpr tg td g.Greedy.cost
        d.D.cost)
    bprs

(* ------------------------------------------------------------------ *)
(* A2: partition gamma / tau sensitivity for D&C *)

let sweep_gamma ?(size = 10_000) () =
  header "A2: D&C sensitivity to gamma (merge threshold) and tau";
  let p =
    Synth.instance
      ~params:{ Synth.default_params with data_size = size }
      ~seed:13 ()
  in
  row "  %d-base-tuple instance; default gamma=2, tau=12\n" size;
  row "  %-10s %-6s %12s %12s %10s\n" "gamma" "tau" "time (s)" "cost" "groups";
  List.iter
    (fun gamma ->
      List.iter
        (fun tau ->
          let config =
            {
              D.default_config with
              partition = { Optimize.Partition.default_config with gamma };
              tau;
            }
          in
          let out, dt = time (fun () -> D.solve ~config p) in
          row "  %-10.1f %-6d %12.3f %12.1f %10d\n" gamma tau dt out.D.cost
            out.D.num_groups)
        [ 0; 12 ])
    [ 1.0; 2.0; 3.0; 4.0 ]

(* ------------------------------------------------------------------ *)
(* A3: edge-weight semantics ablation *)

let sweep_edge ?(size = 10_000) () =
  header
    "A3: partition edge weights, shared-count (prose) vs union (pseudocode)";
  let p =
    Synth.instance
      ~params:{ Synth.default_params with data_size = size }
      ~seed:17 ()
  in
  row "  %-14s %12s %12s %10s\n" "semantics" "time (s)" "cost" "groups";
  List.iter
    (fun (name, semantics) ->
      let config =
        {
          D.default_config with
          partition = { Optimize.Partition.default_config with semantics };
        }
      in
      let out, dt = time (fun () -> D.solve ~config p) in
      row "  %-14s %12.3f %12.1f %10d\n" name dt out.D.cost out.D.num_groups)
    [
      ("shared-count", Optimize.Partition.Shared_count);
      ("union-size", Optimize.Partition.Union_size);
    ]

(* ------------------------------------------------------------------ *)
(* A4: all four solvers head to head (annealing is our extra baseline) *)

let sweep_solvers ?(size = 1000) ?(annealing_iters = 2_000_000) () =
  header
    (Printf.sprintf
       "A4: solver comparison including the annealing baseline (%d)" size);
  let p =
    Synth.instance ~params:{ Synth.default_params with data_size = size }
      ~seed:23 ()
  in
  row "  %-22s %12s %14s %10s\n" "solver" "time (s)" "cost" "feasible";
  List.iter
    (fun algorithm ->
      let out = Optimize.Solver.solve ~algorithm p in
      row "  %-22s %12.3f %14s %10b\n"
        (Optimize.Solver.algorithm_name algorithm)
        out.Optimize.Solver.elapsed_s
        (match out.Optimize.Solver.solution with
        | Some _ -> Printf.sprintf "%.1f" out.Optimize.Solver.cost
        | None -> "-")
        (out.Optimize.Solver.solution <> None))
    [
      Optimize.Solver.greedy;
      Optimize.Solver.Greedy
        { Optimize.Greedy.default_config with
          selection = Optimize.Greedy.Incremental };
      Optimize.Solver.divide_conquer;
      Optimize.Solver.Annealing
        { Optimize.Annealing.default_config with
          iterations = annealing_iters; restarts = 1 };
    ];
  row "  expected shape: the domain-specific algorithms beat the generic\n";
  row "  randomized baseline on cost at comparable or better time.\n"

(* ------------------------------------------------------------------ *)
(* A5: effect of the plan rewriter (selection pushdown) *)

let sweep_rewrite ?(rows = 400) () =
  header "A5: plan rewriter, naive vs optimized evaluation";
  let open Relational in
  let rng = Prng.Splitmix.of_int 99 in
  let r = Relation.create "R" (Schema.of_list [ ("k", Value.TInt); ("n", Value.TInt) ]) in
  let s = Relation.create "S" (Schema.of_list [ ("k", Value.TInt); ("m", Value.TInt) ]) in
  let db = Database.add_relation (Database.add_relation Database.empty r) s in
  let fill db rel count =
    let rec go db i =
      if i = 0 then db
      else
        let vs = [ Value.Int (Prng.Splitmix.int rng 1000); Value.Int i ] in
        go (fst (Database.insert db rel vs ~conf:0.5)) (i - 1)
    in
    go db count
  in
  let db = fill db "R" rows in
  let db = fill db "S" rows in
  (* naive plan: selective predicates above a band join (non-equality, so
     the nested loop is unavoidable and join input size is what matters) *)
  let plan =
    Algebra.Select
      ( Expr.(col "R.n" <% int 10),
        Algebra.Select
          ( Expr.(col "S.m" <% int 10),
            Algebra.Join
              ( Some Expr.(col "R.k" <% col "S.k"),
                Algebra.scan "R", Algebra.scan "S" ) ) )
  in
  let optimized =
    match Rewrite.optimize db plan with Ok p -> p | Error m -> failwith m
  in
  let _, t_naive = time (fun () -> Eval.run_exn db plan) in
  let _, t_opt = time (fun () -> Eval.run_exn db optimized) in
  row "  %-24s %12.4f s\n" "naive (select above join)" t_naive;
  row "  %-24s %12.4f s\n" "after pushdown" t_opt;
  row "  speedup: %.1fx (the pushed plan band-joins ~9x9 rows, not 400x400;\n"
    (t_naive /. Float.max t_opt 1e-9);
  row "  equality joins are served by the built-in hash join either way)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the hot paths *)

let micro ?(quota = 0.5) ?(size = 1000) () =
  header "Micro-benchmarks (Bechamel, monotonic clock)";
  let open Bechamel in
  let open Toolkit in
  let p =
    Synth.instance
      ~params:{ Synth.default_params with data_size = size }
      ~seed:3 ()
  in
  let st = Optimize.State.create p in
  let formula = (Problem.result p 0).Problem.formula in
  let db_p tid =
    match Problem.bid_of_tid p tid with
    | Some bid -> (Problem.base p bid).Problem.p0
    | None -> 0.0
  in
  let manager = Lineage.Bdd.manager () in
  let bdd = Lineage.Bdd.of_formula manager formula in
  let levels = Array.map (fun b -> b.Problem.p0) (Problem.bases p) in
  let tests =
    [
      Test.make ~name:"confidence/compiled-read-once"
        (Staged.stage (fun () -> Problem.eval_result p levels 0));
      Test.make ~name:"confidence/formula-shannon"
        (Staged.stage (fun () -> Lineage.Prob.exact db_p formula));
      Test.make ~name:"confidence/bdd"
        (Staged.stage (fun () -> Lineage.Bdd.prob manager db_p bdd));
      Test.make ~name:"state/gain"
        (Staged.stage (fun () -> Optimize.State.gain st 0 0.1));
      Test.make ~name:"partition/1K"
        (Staged.stage (fun () -> Optimize.Partition.partition p));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name raw ->
          let est = Analyze.one ols Instance.monotonic_clock raw in
          match Analyze.OLS.estimates est with
          | Some [ ns ] -> row "  %-34s %12.1f ns/run\n" name ns
          | _ -> row "  %-34s (no estimate)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* sweep-jobs: parallel divide-and-conquer and Monte-Carlo scaling.

   For each workload size, solves the same instance at every jobs level
   and checks the outcome (cost, increments, stats) is bit-identical to
   the jobs=1 run — the subsystem's determinism contract — while
   recording wall time and speedup.  Written to BENCH_parallel.json. *)

let parallel_json_path = "BENCH_parallel.json"

let hist_json = function
  | None -> "null"
  | Some (h : Obs.Metrics.histogram) ->
    Printf.sprintf
      "{\"count\":%d,\"sum\":%g,\"min\":%g,\"max\":%g,\"mean\":%g,\"p50\":%g,\"p90\":%g,\"p99\":%g}"
      h.Obs.Metrics.count h.sum h.min h.max h.mean h.p50 h.p90 h.p99

let sweep_jobs ?(sizes = [ 10_000; 50_000; 100_000 ])
    ?(jobs_levels = [ 1; 2; 4; 8 ]) ?(mc_samples = 400_000) () =
  header "sweep-jobs: parallel D&C / Monte-Carlo scaling";
  let cores = Domain.recommended_domain_count () in
  (* requested levels go through the same clamp the library applies:
     more domains than cores only measures contention (every point of an
     oversubscribed sweep reports speedup < 1), so e.g. [1;2;4;8] on a
     2-core host sweeps [1;2] *)
  let jobs_levels =
    List.sort_uniq compare
      (List.map (fun j -> Exec.resolve_jobs ~jobs:j ()) jobs_levels)
  in
  row "  host cores: %d (Domain.recommended_domain_count); speedups above\n"
    cores;
  row "  the core count are not expected — identical outcomes are;\n";
  row "  jobs levels clamped to the core count: %s\n"
    (String.concat ", " (List.map string_of_int jobs_levels));
  let dnc_entries = ref [] in
  List.iter
    (fun size ->
      let params =
        {
          Synth.default_params with
          data_size = size;
          bases_per_result = bpr_for_size size;
        }
      in
      row "  -- %d base tuples --\n" size;
      row "  %-6s %12s %10s %14s %12s %10s\n" "jobs" "solve t(s)" "speedup"
        "cost" "increments" "identical";
      let baseline = ref None in
      List.iter
        (fun jobs ->
          let run pool =
            let problem = Synth.instance ?pool ~params ~seed:29 () in
            let metrics = Obs.Metrics.create () in
            let out, dt = time (fun () -> D.solve ~metrics ?pool ~now problem) in
            (out, metrics, dt)
          in
          let out, metrics, dt =
            if jobs <= 1 then run None
            else Exec.Pool.with_pool ~jobs (fun p -> run (Some p))
          in
          let fingerprint = (out.D.cost, out.D.solution, out.D.stats) in
          let t1, identical =
            match !baseline with
            | None ->
              baseline := Some (dt, fingerprint);
              (dt, true)
            | Some (t1, fp1) -> (t1, fp1 = fingerprint)
          in
          let speedup = t1 /. Float.max dt 1e-9 in
          row "  %-6d %12.3f %9.2fx %14.1f %12d %10b\n" jobs dt speedup
            out.D.cost
            (List.length out.D.solution)
            identical;
          dnc_entries :=
            Printf.sprintf
              "    {\"size\":%d,\"jobs\":%d,\"solve_s\":%g,\"speedup\":%g,\"cost\":%g,\"increments\":%d,\"identical\":%b,\"group_solve_s\":%s}"
              size jobs dt speedup out.D.cost
              (List.length out.D.solution)
              identical
              (hist_json (Obs.Metrics.histogram metrics "dnc.group_solve_s"))
            :: !dnc_entries)
        jobs_levels)
    sizes;
  (* Monte-Carlo confidence over one result formula of the first size *)
  let mc_entries =
    match sizes with
    | [] -> []
    | size :: _ ->
      let params =
        {
          Synth.default_params with
          data_size = size;
          bases_per_result = bpr_for_size size;
        }
      in
      let p = Synth.instance ~params ~seed:29 () in
      let formula = (Problem.result p 0).Problem.formula in
      let db_p tid =
        match Problem.bid_of_tid p tid with
        | Some bid -> (Problem.base p bid).Problem.p0
        | None -> 0.0
      in
      row "  -- Monte-Carlo confidence (%d samples, one formula) --\n"
        mc_samples;
      row "  %-6s %12s %10s %14s %10s\n" "jobs" "mc t(s)" "speedup" "estimate"
        "identical";
      let run pool =
        time (fun () ->
            Lineage.Prob.monte_carlo ?pool
              (Prng.Splitmix.of_int 31)
              ~samples:mc_samples db_p formula)
      in
      let baseline = ref None in
      List.map
        (fun jobs ->
          let est, dt =
            if jobs <= 1 then run None
            else Exec.Pool.with_pool ~jobs (fun p -> run (Some p))
          in
          let t1, identical =
            match !baseline with
            | None ->
              baseline := Some (dt, est);
              (dt, true)
            | Some (t1, est1) -> (t1, est1 = est)
          in
          let speedup = t1 /. Float.max dt 1e-9 in
          row "  %-6d %12.3f %9.2fx %14.6f %10b\n" jobs dt speedup est
            identical;
          Printf.sprintf
            "    {\"jobs\":%d,\"samples\":%d,\"estimate\":%g,\"elapsed_s\":%g,\"speedup\":%g,\"identical\":%b}"
            jobs mc_samples est dt speedup identical)
        jobs_levels
  in
  let oc = open_out parallel_json_path in
  Printf.fprintf oc "{\n  %s,\n  \"dnc\": [\n" (machine_fields ());
  output_string oc (String.concat ",\n" (List.rev !dnc_entries));
  output_string oc "\n  ],\n  \"monte_carlo\": [\n";
  output_string oc (String.concat ",\n" mc_entries);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  row "  wrote %d D&C points and %d Monte-Carlo points to %s\n"
    (List.length !dnc_entries)
    (List.length mc_entries)
    parallel_json_path

(* ------------------------------------------------------------------ *)
(* solvers-json: machine-readable artifact with the four solvers'
   structured telemetry and the engine's per-stage span timings *)

let solvers_json_path = "BENCH_solvers.json"

let solvers_json ?(size = 1000) () =
  header (Printf.sprintf "solvers-json: writing %s" solvers_json_path);
  let fields_json fields =
    String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%S:%g" k v) fields)
  in
  (* all four solvers, each on the largest instance it handles comfortably:
     the exact heuristic gets the paper's small instance, the scalable
     three get the 1K default *)
  let small = Synth.small_instance ~seed:23 () in
  let p1k =
    Synth.instance ~params:{ Synth.default_params with data_size = size }
      ~seed:23 ()
  in
  let solver_entry (algorithm, problem, size) =
    let obs = Obs.wall () in
    let out = Optimize.Solver.solve ~algorithm ~obs problem in
    let name = Optimize.Solver.algorithm_name algorithm in
    row "  %-22s %8.3f s  %s\n" name out.Optimize.Solver.elapsed_s
      out.Optimize.Solver.detail;
    Printf.sprintf
      "    {\"solver\":%S,\"size\":%d,\"elapsed_s\":%g,\"feasible\":%b,\"cost\":%g,\"stats\":{%s}}"
      name size out.Optimize.Solver.elapsed_s
      (out.Optimize.Solver.solution <> None)
      out.Optimize.Solver.cost
      (fields_json (Optimize.Solver.stats_fields out.Optimize.Solver.stats))
  in
  let solver_entries =
    List.map solver_entry
      [
        (Optimize.Solver.heuristic, small, Problem.num_bases small);
        (Optimize.Solver.greedy, p1k, Problem.num_bases p1k);
        (Optimize.Solver.divide_conquer, p1k, Problem.num_bases p1k);
        (Optimize.Solver.annealing, p1k, Problem.num_bases p1k);
      ]
  in
  (* engine stage timings: a small end-to-end query whose low confidences
     force the whole pipeline, strategy finding included *)
  let stage_entries =
    let open Relational in
    let r =
      Relation.create "R"
        (Schema.of_list [ ("k", Value.TInt); ("n", Value.TInt) ])
    in
    let db = Database.add_relation Database.empty r in
    let rng = Prng.Splitmix.of_int 7 in
    let db =
      List.fold_left
        (fun db i ->
          fst
            (Database.insert db "R"
               [ Value.Int i; Value.Int (Prng.Splitmix.int rng 100) ]
               ~conf:0.5))
        db
        (List.init 200 Fun.id)
    in
    let rbac =
      match
        Rbac.Config.parse
          "role Analyst\nuser ann\nassign ann Analyst\ngrant Analyst select *\n"
      with
      | Ok r -> r
      | Error m -> failwith m
    in
    let policies =
      match Rbac.Policy.parse_store "Analyst, analysis, 0.6" with
      | Ok s -> s
      | Error m -> failwith m
    in
    let obs = Obs.wall () in
    let ctx = Pcqe.Engine.make_context ~obs ~db ~rbac ~policies () in
    let request =
      {
        Pcqe.Engine.query = Pcqe.Query.sql "SELECT k FROM R WHERE n < 50";
        user = "ann";
        purpose = "analysis";
        perc = 0.9;
      }
    in
    (match Pcqe.Engine.answer ctx request with
    | Ok _ -> ()
    | Error m -> failwith m);
    let sink, get = Obs.Sink.memory () in
    Obs.drain obs sink;
    List.filter_map
      (function
        | Obs.Sink.Span { path; elapsed; _ } ->
          Some
            (Printf.sprintf "    {\"stage\":%S,\"elapsed_s\":%g}"
               (String.concat "/" path) elapsed)
        | _ -> None)
      (get ())
  in
  let oc = open_out solvers_json_path in
  Printf.fprintf oc "{\n  %s,\n  \"solvers\": [\n" (machine_fields ());
  output_string oc (String.concat ",\n" solver_entries);
  output_string oc "\n  ],\n  \"engine_stages\": [\n";
  output_string oc (String.concat ",\n" stage_entries);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  row "  wrote %d solver entries and %d engine stages to %s\n"
    (List.length solver_entries)
    (List.length stage_entries)
    solvers_json_path

(* ------------------------------------------------------------------ *)
(* sweep-incremental: A/B of incremental confidence re-evaluation (affine
   coefficient caches + lineage dedup) against the forced-off baseline.
   Both sides must return identical solutions, satisfied sets and costs —
   the panel fails hard otherwise — and on every non-trivial point (where
   the baseline re-evaluates beyond the initial pass) the incremental side
   must perform strictly fewer full lineage evaluations.  Writes
   BENCH_incremental.json. *)

let incremental_json_path = "BENCH_incremental.json"

(* Entangled-lineage instance for the branch-and-bound point: result [j]'s
   formula is an Or of pairwise Ands over a sliding window of [width]
   bases, so every variable occurs in several clauses.  Non-read-once
   lineage compiles to an OBDD whose probability evaluation allocates a
   fresh memo table per call — exactly the regime where replacing
   re-evaluations with cached affine coefficients pays in wall time, not
   just in counters. *)
let entangled_problem ~incremental ~num_bases ~num_results ~width ~required
    ~seed () =
  let rng = Prng.Splitmix.of_int seed in
  let bases =
    List.init num_bases (fun i ->
        {
          Problem.tid = Lineage.Tid.make "ent" i;
          p0 = Prng.Splitmix.float_in rng 0.05 0.15;
          cap = 1.0;
          cost = Cost.Cost_model.random rng;
        })
  in
  let tids = Array.of_list (List.map (fun b -> b.Problem.tid) bases) in
  let formulas =
    List.init num_results (fun j ->
        Lineage.Formula.disj
          (List.init (width - 1) (fun i ->
               let a = tids.((j + i) mod num_bases) in
               let b = tids.((j + i + 1) mod num_bases) in
               Lineage.Formula.conj
                 [ Lineage.Formula.var a; Lineage.Formula.var b ])))
  in
  Problem.make_exn ~delta:0.1 ~incremental ~beta:0.6 ~required ~bases
    ~formulas ()

(* self-join-style companion instance: every lineage formula appears
   [copies] times, the shape hash-consing collapses into shared classes *)
let dup_problem ~incremental ~copies ~size ~seed () =
  let p =
    Synth.instance
      ~params:{ Synth.default_params with data_size = size }
      ~seed ()
  in
  let bases = Array.to_list (Problem.bases p) in
  let formulas =
    Array.to_list (Problem.results p)
    |> List.map (fun r -> r.Problem.formula)
  in
  let formulas = List.concat (List.init copies (fun _ -> formulas)) in
  Problem.make_exn ~delta:(Problem.delta p) ~incremental
    ~beta:(Problem.beta p)
    ~required:(copies * Problem.required p)
    ~bases ~formulas ()

let sweep_incremental ?(size = 1000) ?(bases_per_result = 25)
    ?(annealing_iters = 100_000) ?(bb_max_nodes = None) () =
  header "sweep-incremental: affine caches + lineage dedup vs full re-evaluation";
  row "  %-22s %6s %11s %11s %11s %8s %7s %8s\n" "solver" "bases" "full(off)"
    "full(on)" "incr(on)" "invalid" "dedup" "speedup";
  let field out name =
    match
      List.assoc_opt name
        (Optimize.Solver.stats_fields out.Optimize.Solver.stats)
    with
    | Some v -> int_of_float v
    | None -> 0
  in
  (* probe-heavy solvers (greedy, D&C) get the wide-lineage regime
     ([bases_per_result], Table 4 row 2 sweep) where evaluations are
     expensive; the annealing random walk gets the Table 4 default — its
     cache hits come from same-base revisits, which need bases that occur
     in many formulas *)
  let synth_point ?bpr incremental =
    let bases_per_result =
      match bpr with Some b -> b | None -> bases_per_result
    in
    Synth.instance
      ~params:{ Synth.default_params with data_size = size; bases_per_result }
      ~incremental ~seed:11 ()
  in
  let entries =
    List.map
      (fun (label, algorithm, make_problem) ->
        let pb_on = make_problem true in
        let pb_off = make_problem false in
        let out_on, t_on =
          time (fun () -> Optimize.Solver.solve ~algorithm pb_on)
        in
        let out_off, t_off =
          time (fun () -> Optimize.Solver.solve ~algorithm pb_off)
        in
        (* identical outputs, or the A/B comparison is meaningless *)
        if out_on.Optimize.Solver.solution <> out_off.Optimize.Solver.solution
        then failwith (label ^ ": solutions differ between cache on and off");
        if
          out_on.Optimize.Solver.satisfied
          <> out_off.Optimize.Solver.satisfied
        then
          failwith (label ^ ": satisfied sets differ between cache on and off");
        if out_on.Optimize.Solver.cost <> out_off.Optimize.Solver.cost then
          failwith (label ^ ": costs differ between cache on and off");
        let full_on = field out_on "full_evals" in
        let full_off = field out_off "full_evals" in
        let incr_on = field out_on "incremental_evals" in
        let invalid = field out_on "coeff_invalidations" in
        let dedup = field out_on "dedup_formulas" in
        (* non-trivial = the baseline re-evaluated beyond its initial
           per-result pass; there the cache must win outright *)
        if full_off > Problem.num_results pb_off && full_on >= full_off then
          failwith
            (Printf.sprintf
               "%s: incremental path did %d full evals, baseline %d" label
               full_on full_off);
        let speedup = if t_on > 0.0 then t_off /. t_on else 1.0 in
        let nb = Problem.num_bases pb_on in
        row "  %-22s %6d %11d %11d %11d %8d %7d %7.2fx\n" label nb full_off
          full_on incr_on invalid dedup speedup;
        Printf.sprintf
          "    {\"solver\":%S,\"bases\":%d,\"results\":%d,\"feasible\":%b,\"cost\":%g,\"full_evals_baseline\":%d,\"full_evals_incremental\":%d,\"incremental_evals\":%d,\"coeff_invalidations\":%d,\"dedup_formulas\":%d,\"elapsed_s_baseline\":%g,\"elapsed_s_incremental\":%g,\"speedup\":%g,\"identical_outputs\":true}"
          label nb (Problem.num_results pb_on)
          (out_on.Optimize.Solver.solution <> None)
          out_on.Optimize.Solver.cost full_off full_on incr_on invalid dedup
          t_off t_on speedup)
      [
        ("greedy", Optimize.Solver.greedy, fun i -> synth_point i);
        ( "divide-and-conquer",
          Optimize.Solver.divide_conquer,
          fun i -> synth_point i );
        ( "simulated-annealing",
          Optimize.Solver.Annealing
            {
              Optimize.Annealing.default_config with
              iterations = annealing_iters;
            },
          synth_point ~bpr:Synth.default_params.Synth.bases_per_result );
        ( "heuristic(entangled)",
          Optimize.Solver.Heuristic
            { Optimize.Heuristic.default_config with max_nodes = bb_max_nodes },
          fun incremental ->
            entangled_problem ~incremental ~num_bases:12 ~num_results:10
              ~width:5 ~required:4 ~seed:11 () );
        ( "greedy(self-join x4)",
          Optimize.Solver.greedy,
          fun incremental ->
            dup_problem ~incremental ~copies:4 ~size:(size / 2) ~seed:11 () );
      ]
  in
  let oc = open_out incremental_json_path in
  Printf.fprintf oc "{\n  %s,\n  \"points\": [\n" (machine_fields ());
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  row "  wrote %d points to %s\n" (List.length entries) incremental_json_path

(* ------------------------------------------------------------------ *)

(* sweep-resilience: the deadline's contract, measured.  Solve many
   seeded instances twice — unbounded, and under a wall deadline — and
   compare the latency distributions.  The deadline must bound the tail
   (p99) at roughly the budget, and every deadline-cut answer that
   reports a solution must still be feasible (degraded optimality, never
   degraded compliance).  Writes BENCH_resilience.json. *)

let resilience_json_path = "BENCH_resilience.json"

let percentile xs p =
  match xs with
  | [] -> nan
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let i = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    a.(max 0 (min (n - 1) i))

let sweep_resilience ?(size = 2000) ?(seeds = 20) ?(deadline_ms = 100.0) () =
  header
    (Printf.sprintf
       "sweep-resilience: solve latency, %gms wall deadline vs unbounded"
       deadline_ms);
  row "  %-6s %14s %14s %10s %10s\n" "seed" "unbounded(ms)" "deadline(ms)"
    "partial" "feasible";
  let solve ~ms problem =
    let deadline =
      match ms with
      | None -> Resilience.Deadline.never
      | Some ms -> Resilience.Deadline.wall_ms ms
    in
    time (fun () ->
        Optimize.Solver.solve ~algorithm:Optimize.Solver.divide_conquer
          ~deadline problem)
  in
  let entries =
    List.init seeds (fun i ->
        let seed = 100 + i in
        let problem =
          Synth.instance
            ~params:{ Synth.default_params with data_size = size }
            ~seed ()
        in
        let out_u, t_u = solve ~ms:None problem in
        let out_d, t_d = solve ~ms:(Some deadline_ms) problem in
        let partial =
          match out_d.Optimize.Solver.resolution with
          | Optimize.Solver.Complete -> false
          | Optimize.Solver.Partial _ -> true
        in
        (* the resilience contract: a reported solution is feasible even
           when the deadline cut the solve short *)
        (match out_d.Optimize.Solver.solution with
        | Some _
          when List.length out_d.Optimize.Solver.satisfied
               < Problem.required problem ->
          failwith
            (Printf.sprintf
               "seed %d: deadline-cut solution is infeasible (%d < %d)" seed
               (List.length out_d.Optimize.Solver.satisfied)
               (Problem.required problem))
        | _ -> ());
        row "  %-6d %14.2f %14.2f %10b %10b\n" seed (1000.0 *. t_u)
          (1000.0 *. t_d) partial
          (out_d.Optimize.Solver.solution <> None);
        ( t_u,
          t_d,
          partial,
          Printf.sprintf
            "    \
             {\"seed\":%d,\"elapsed_unbounded_s\":%g,\"elapsed_deadline_s\":%g,\"partial\":%b,\"feasible_unbounded\":%b,\"feasible_deadline\":%b}"
            seed t_u t_d partial
            (out_u.Optimize.Solver.solution <> None)
            (out_d.Optimize.Solver.solution <> None) ))
  in
  let t_us = List.map (fun (t, _, _, _) -> t) entries in
  let t_ds = List.map (fun (_, t, _, _) -> t) entries in
  let partials =
    List.length (List.filter (fun (_, _, p, _) -> p) entries)
  in
  let p50_u = percentile t_us 50.0 and p99_u = percentile t_us 99.0 in
  let p50_d = percentile t_ds 50.0 and p99_d = percentile t_ds 99.0 in
  row "  p50: unbounded %.2fms, deadline %.2fms\n" (1000.0 *. p50_u)
    (1000.0 *. p50_d);
  row "  p99: unbounded %.2fms, deadline %.2fms (budget %gms), %d/%d partial\n"
    (1000.0 *. p99_u) (1000.0 *. p99_d) deadline_ms partials seeds;
  let oc = open_out resilience_json_path in
  Printf.fprintf oc "{\n  %s,\n  \"deadline_ms\": %g,\n  \"points\": [\n"
    (machine_fields ()) deadline_ms;
  output_string oc
    (String.concat ",\n" (List.map (fun (_, _, _, j) -> j) entries));
  Printf.fprintf oc
    "\n\
    \  ],\n\
    \  \"summary\": {\"p50_unbounded_s\": %g, \"p99_unbounded_s\": %g, \
     \"p50_deadline_s\": %g, \"p99_deadline_s\": %g, \"partials\": %d, \
     \"seeds\": %d}\n\
     }\n"
    p50_u p99_u p50_d p99_d partials seeds;
  close_out oc;
  row "  wrote %d points to %s\n" seeds resilience_json_path

(* ------------------------------------------------------------------ *)

(* sweep-serving: the staged serving pipeline (prepared plans, database
   epochs, per-epoch confidence caches) against the cold per-request
   path.  Three workloads: one query answered repeatedly by one
   principal, one query for 1/8/64 principals, and a re-answer after
   accepting an improvement proposal (only the dirtied lineage classes
   may be recomputed).  Every warm response must be identical to its
   cold counterpart — the panel fails hard otherwise; wall times,
   speedups and the reuse counters go to BENCH_serving.json. *)

let serving_json_path = "BENCH_serving.json"

let resp_fingerprint (r : Pcqe.Engine.response) =
  ( List.map
      (fun (rel : Pcqe.Engine.released) ->
        ( rel.Pcqe.Engine.tuple,
          rel.Pcqe.Engine.lineage,
          rel.Pcqe.Engine.confidence ))
      r.Pcqe.Engine.released,
    r.Pcqe.Engine.withheld,
    r.Pcqe.Engine.ambiguous,
    r.Pcqe.Engine.requested,
    r.Pcqe.Engine.threshold,
    (* elapsed_s is wall time and legitimately differs; everything the
       requester acts on must not *)
    Option.map
      (fun (p : Pcqe.Engine.proposal) ->
        ( p.Pcqe.Engine.increments,
          p.Pcqe.Engine.cost,
          p.Pcqe.Engine.projected_release ))
      r.Pcqe.Engine.proposal,
    r.Pcqe.Engine.infeasible,
    r.Pcqe.Engine.degraded )

let outcome_fingerprint = function
  | Ok r -> Ok (resp_fingerprint r)
  | Error m -> Error m

let serving_context ~rows ~principals ~seed () =
  let open Relational in
  let r =
    Relation.create "R" (Schema.of_list [ ("k", Value.TInt); ("n", Value.TInt) ])
  in
  let db = Database.add_relation Database.empty r in
  let rng = Prng.Splitmix.of_int seed in
  let db =
    List.fold_left
      (fun db i ->
        fst
          (Database.insert db "R"
             [ Value.Int i; Value.Int (Prng.Splitmix.int rng 100) ]
             ~conf:(Prng.Splitmix.float_in rng 0.35 0.95)))
      db (List.init rows Fun.id)
  in
  let users = List.init principals (fun i -> Printf.sprintf "u%02d" i) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "role Analyst\n";
  List.iter
    (fun u ->
      Buffer.add_string buf (Printf.sprintf "user %s\nassign %s Analyst\n" u u))
    users;
  Buffer.add_string buf "grant Analyst select *\n";
  let rbac =
    match Rbac.Config.parse (Buffer.contents buf) with
    | Ok r -> r
    | Error m -> failwith m
  in
  let policies =
    match Rbac.Policy.parse_store "Analyst, serve, 0.6" with
    | Ok s -> s
    | Error m -> failwith m
  in
  (Pcqe.Engine.make_context ~db ~rbac ~policies (), users)

let serving_sql = "SELECT k FROM R WHERE n < 70"

let assert_identical label colds warms =
  List.iteri
    (fun i (c, w) ->
      if outcome_fingerprint c <> outcome_fingerprint w then
        failwith
          (Printf.sprintf "%s: response %d differs between cold and warm"
             label (i + 1)))
    (List.combine colds warms)

(* cold = per-request Engine.answer without caches; warm = a second
   Session.batch round over the same requests (the first round, which
   fills the caches, is also checked against cold) *)
let serving_ab label ctx requests =
  let cold, t_cold =
    time (fun () -> List.map (fun r -> Pcqe.Engine.answer ctx r) requests)
  in
  let session = Pcqe.Engine.Session.create ctx in
  let first = Pcqe.Engine.Session.batch session requests in
  let warm, t_warm =
    time (fun () -> Pcqe.Engine.Session.batch session requests)
  in
  assert_identical (label ^ " (filling round)") cold first;
  assert_identical (label ^ " (warm round)") cold warm;
  (t_cold, t_warm, t_cold /. Float.max t_warm 1e-9)

let sweep_serving ?(rows = 2000) ?(reps = 64)
    ?(principal_counts = [ 1; 8; 64 ]) ?(seed = 41) () =
  header
    "sweep-serving: prepared plans + per-epoch confidence caches vs cold path";
  row "  every warm answer is checked identical to its cold counterpart\n";
  (* (1) one principal repeats one query [reps] times *)
  let repeated_entry =
    let ctx, users = serving_context ~rows ~principals:1 ~seed () in
    let user = List.hd users in
    let requests =
      List.init reps (fun _ ->
          {
            Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
            user;
            purpose = "serve";
            perc = 0.3;
          })
    in
    let t_cold, t_warm, speedup = serving_ab "repeated-query" ctx requests in
    (* warm per-answer latency distribution, read back from the serving
       path's bounded [serving.answer_s] histogram — the same fixed-memory
       sketch the CLI exports, so the panel also keeps the metrics
       plumbing honest *)
    let warm_p50, warm_p99 =
      let obs = Obs.wall () in
      let session =
        Pcqe.Engine.Session.create { ctx with Pcqe.Engine.obs = Some obs }
      in
      ignore (Pcqe.Engine.Session.batch session requests);
      List.iter
        (fun r -> ignore (Pcqe.Engine.Session.answer session r))
        requests;
      match Obs.Metrics.histogram obs.Obs.metrics "serving.answer_s" with
      | Some h -> (h.Obs.Metrics.p50, h.Obs.Metrics.p99)
      | None -> failwith "sweep-serving: serving.answer_s histogram missing"
    in
    row "  %-24s cold %8.4fs  warm %8.4fs  %7.1fx  (warm p50 %.2gs p99 %.2gs)\n"
      (Printf.sprintf "repeated query x%d" reps)
      t_cold t_warm speedup warm_p50 warm_p99;
    Printf.sprintf
      "  \"repeated_query\": \
       {\"rows\":%d,\"requests\":%d,\"cold_s\":%g,\"warm_s\":%g,\"warm_p50_s\":%g,\"warm_p99_s\":%g,\"speedup\":%g,\"identical\":true}"
      rows reps t_cold t_warm warm_p50 warm_p99 speedup
  in
  (* (2) the same query for 1, 8, 64 principals: plans are shared across
     users and identical lineage classes are computed once *)
  let principal_entries =
    List.map
      (fun n ->
        let ctx, users = serving_context ~rows ~principals:n ~seed () in
        let requests =
          List.map
            (fun user ->
              {
                Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
                user;
                purpose = "serve";
                perc = 0.3;
              })
            users
        in
        let t_cold, t_warm, speedup =
          serving_ab (Printf.sprintf "%d principals" n) ctx requests
        in
        row "  %-24s cold %8.4fs  warm %8.4fs  %7.1fx\n"
          (Printf.sprintf "%d principal(s)" n)
          t_cold t_warm speedup;
        Printf.sprintf
          "    \
           {\"principals\":%d,\"rows\":%d,\"cold_s\":%g,\"warm_s\":%g,\"speedup\":%g,\"identical\":true}"
          n rows t_cold t_warm speedup)
      principal_counts
  in
  (* (3) accept_proposal then re-answer: the confidence epoch advances,
     targeted invalidation drops exactly the raised tuples' classes, and
     the warm re-answer recomputes only those (kept small so the number
     of increments stays within the database's bounded change log) *)
  let post_accept_entry =
    (* the safe-plan fast path would answer this hierarchical query
       without ever touching the confidence cache; pin it off — this
       entry asserts the cache's epoch machinery specifically *)
    with_circuits false @@ fun () ->
    let post_rows = min rows 400 in
    let ctx, users = serving_context ~rows:post_rows ~principals:1 ~seed () in
    let user = List.hd users in
    let request =
      {
        Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
        user;
        purpose = "serve";
        perc = 0.8;
      }
    in
    let session = Pcqe.Engine.Session.create ctx in
    let proposal =
      match Pcqe.Engine.Session.batch session [ request ] with
      | [ Ok r ] -> (
        match r.Pcqe.Engine.proposal with
        | Some p -> p
        | None -> failwith "sweep-serving: expected an improvement proposal")
      | [ Error m ] -> failwith ("sweep-serving: post-accept setup: " ^ m)
      | _ -> assert false
    in
    let stat stats name =
      match List.assoc_opt name stats with Some v -> v | None -> 0
    in
    let before = Pcqe.Engine.Session.cache_stats session in
    Pcqe.Engine.Session.accept_proposal session proposal;
    let ctx_after = Pcqe.Engine.accept_proposal ctx proposal in
    let cold, t_cold = time (fun () -> Pcqe.Engine.answer ctx_after request) in
    let warm, t_warm =
      time (fun () -> Pcqe.Engine.Session.answer session request)
    in
    assert_identical "post-accept" [ cold ] [ warm ];
    let after = Pcqe.Engine.Session.cache_stats session in
    let d name = stat after name - stat before name in
    let reused = d "serving.reused_classes" in
    let recomputed = d "serving.recomputed_classes" in
    let invalidated = d "serving.invalidated_classes" in
    (* the whole point of the epoch machinery: untouched classes survive
       the accept and are served from cache *)
    if reused = 0 then
      failwith "sweep-serving: post-accept re-answer reused no classes";
    if invalidated = 0 then
      failwith "sweep-serving: accept_proposal invalidated no classes";
    let speedup = t_cold /. Float.max t_warm 1e-9 in
    row
      "  %-24s cold %8.4fs  warm %8.4fs  %7.1fx  (%d reused, %d recomputed, \
       %d invalidated)\n"
      "post-accept re-answer" t_cold t_warm speedup reused recomputed
      invalidated;
    Printf.sprintf
      "  \"post_accept\": \
       {\"rows\":%d,\"increments\":%d,\"reused_classes\":%d,\"recomputed_classes\":%d,\"invalidated_classes\":%d,\"cold_s\":%g,\"warm_s\":%g,\"speedup\":%g,\"identical\":true}"
      post_rows
      (List.length proposal.Pcqe.Engine.increments)
      reused recomputed invalidated t_cold t_warm speedup
  in
  let oc = open_out serving_json_path in
  output_string oc "{\n";
  output_string oc ("  " ^ machine_fields () ^ ",\n");
  output_string oc (repeated_entry ^ ",\n");
  output_string oc "  \"principals\": [\n";
  output_string oc (String.concat ",\n" principal_entries);
  output_string oc "\n  ],\n";
  output_string oc (post_accept_entry ^ "\n");
  output_string oc "}\n";
  close_out oc;
  row "  wrote %d workloads to %s\n"
    (2 + List.length principal_entries)
    serving_json_path

(* ------------------------------------------------------------------ *)

(* sweep-columnar: the columnar batch engine against the row engine on
   the storage-layer hot paths.  Four measurements per instance size:

     ingest   — streaming CSV load vs the chunked-parallel bulk path
                (MB/s); the loaded relations (tids, tuples, confidences,
                order) must be identical
     scan     — materialize-and-aggregate over every row: the row engine
                walks the tuple map and unboxes per row, the columnar
                side sums the cached Bigarray column directly
     filter   — a selective predicate (x < 0.05), end-to-end through
                Eval.run vs Col_eval.run
     project  — duplicate-eliminating projection onto a low-cardinality
                string column (dictionary codes vs boxed hashing)
     top-K    — rank released rows by confidence: bounded heap
                (Topk.by_score) vs full stable sort + take

   Every point is identity-checked (results compared row for row,
   lineage included; the panel fails hard on any mismatch) before its
   ["identical": true] is written to BENCH_columnar.json. *)

let columnar_json_path = "BENCH_columnar.json"

(* synthetic instance: unique int key, 64-value string column, uniform
   real in [0,1), per-tuple confidence — deterministic in [seed] *)
let columnar_csv ~rows ~seed =
  let rng = Prng.Splitmix.of_int seed in
  let buf = Buffer.create ((rows * 28) + 64) in
  Buffer.add_string buf "k:int,grp:string,x:real,__confidence:real\n";
  for i = 0 to rows - 1 do
    Buffer.add_string buf (string_of_int i);
    Buffer.add_string buf
      (Printf.sprintf ",g%02d,%.4f,%.4f\n"
         (Prng.Splitmix.int rng 64)
         (Prng.Splitmix.float_in rng 0.0 1.0)
         (Prng.Splitmix.float_in rng 0.3 1.0))
  done;
  Buffer.contents buf

(* best-of-[reps] wall time; the first run's result is returned so
   identity checks see exactly what was timed *)
let timed_best reps f =
  let r, dt0 = time f in
  let rec go best n =
    if n <= 0 then best
    else
      let _, dt = time f in
      go (Float.min best dt) (n - 1)
  in
  (r, go dt0 (reps - 1))

let sweep_columnar ?(sizes = [ 100_000; 1_000_000 ]) ?(reps = 3) () =
  header "sweep-columnar: columnar batch engine vs row engine";
  let open Relational in
  let jobs = Exec.resolve_jobs () in
  row "  every point identity-checked against the row engine; effective\n";
  row "  ingest jobs: %d\n" jobs;
  let mrows n dt = float_of_int n /. 1e6 /. Float.max dt 1e-9 in
  let entries =
    List.map
      (fun size ->
        row "  -- %d rows --\n" size;
        Col_eval.clear_cache ();
        let text = columnar_csv ~rows:size ~seed:51 in
        let mb = float_of_int (String.length text) /. 1048576.0 in
        let load f =
          match f () with Ok db -> db | Error m -> failwith m
        in
        (* ingest: one timed run each — parsing is deterministic and the
           bulk path re-parses the whole document per call *)
        let db_seq, t_stream =
          time (fun () ->
              load (fun () -> Csv.load_into Database.empty ~name:"r" text))
        in
        let db, t_bulk =
          time (fun () ->
              load (fun () ->
                  Csv.load_string_bulk Database.empty ~name:"r" text))
        in
        let fingerprint db =
          let r = Database.relation_exn db "r" in
          Relation.fold
            (fun acc tid tup -> (tid, tup, Database.confidence db tid) :: acc)
            [] r
        in
        let ingest_ok = fingerprint db_seq = fingerprint db in
        if not ingest_ok then
          failwith "sweep-columnar: bulk ingest differs from sequential";
        row "    ingest   stream %8.3fs (%7.1f MB/s)   bulk %8.3fs (%7.1f MB/s)\n"
          t_stream
          (mb /. Float.max t_stream 1e-9)
          t_bulk
          (mb /. Float.max t_bulk 1e-9);
        (* columnarize once (reported), then the batch serves from cache *)
        let (), t_build =
          time (fun () -> ignore (Col_eval.scan_batch db "r"))
        in
        let batch =
          match Col_eval.scan_batch db "r" with
          | Some b -> b
          | None -> failwith "sweep-columnar: relation declined columnarization"
        in
        let scan_plan = Algebra.scan "r" in
        let xi = 2 (* index of x in (k, grp, x) *) in
        (* scan: both sides touch every row of the x column and fold the
           same additions in the same order, so the sums are bit-equal *)
        let row_scan () =
          let out = Eval.run_exn db scan_plan in
          List.fold_left
            (fun acc (r : Eval.row) ->
              match Tuple.get r.Eval.tuple xi with
              | Value.Float f -> acc +. f
              | Value.Int i -> acc +. float_of_int i
              | _ -> acc)
            0.0 out.Eval.rows
        in
        let col_scan () =
          match batch.Colbatch.cols.(xi) with
          | Colbatch.FCol { data; _ } ->
            let nulls = batch.Colbatch.nulls.(xi) in
            let acc = ref 0.0 in
            for p = 0 to batch.Colbatch.nrows - 1 do
              if Bytes.get nulls p = '\000' then
                acc := !acc +. Bigarray.Array1.get data p
            done;
            !acc
          | _ -> failwith "sweep-columnar: expected a real column"
        in
        let row_sum, t_row_scan = timed_best reps row_scan in
        let col_sum, t_col_scan = timed_best reps col_scan in
        let scan_ok =
          row_sum = col_sum
          && (Eval.run_exn db scan_plan).Eval.rows = Colbatch.to_rows batch
        in
        if not scan_ok then
          failwith "sweep-columnar: scan differs between row and columnar";
        let scan_speedup = t_row_scan /. Float.max t_col_scan 1e-9 in
        row "    scan     row %8.3fs (%6.1f Mrows/s)   col %8.3fs (%6.1f \
             Mrows/s)  %6.1fx\n"
          t_row_scan (mrows size t_row_scan) t_col_scan (mrows size t_col_scan)
          scan_speedup;
        (* filter and project: end-to-end Eval.run vs Col_eval.run *)
        let ab label plan =
          if not (Col_eval.vectorizes db plan) then
            failwith ("sweep-columnar: " ^ label ^ " plan does not vectorize");
          let run_row () = Eval.run_exn db plan in
          let run_col () =
            match Col_eval.run db plan with
            | Ok a -> a
            | Error m -> failwith ("sweep-columnar: " ^ label ^ ": " ^ m)
          in
          let ra, t_row = timed_best reps run_row in
          let ca, t_col = timed_best reps run_col in
          let ok =
            ra.Eval.schema = ca.Eval.schema && ra.Eval.rows = ca.Eval.rows
          in
          if not ok then
            failwith
              ("sweep-columnar: " ^ label ^ " differs between row and columnar");
          let speedup = t_row /. Float.max t_col 1e-9 in
          row "    %-8s row %8.3fs (%6.1f Mrows/s)   col %8.3fs (%6.1f \
               Mrows/s)  %6.1fx\n"
            label t_row (mrows size t_row) t_col (mrows size t_col) speedup;
          (ra, t_row, t_col, speedup)
        in
        let fa, t_row_filter, t_col_filter, filter_speedup =
          ab "filter" (Algebra.Select (Expr.(col "x" <% float 0.05), scan_plan))
        in
        let selectivity =
          float_of_int (List.length fa.Eval.rows) /. float_of_int size
        in
        let pa, t_row_project, t_col_project, project_speedup =
          ab "project" (Algebra.Project ([ "grp" ], scan_plan))
        in
        let groups = List.length pa.Eval.rows in
        (* top-K by confidence over the full scan's released rows *)
        let k = min 100 size in
        let scored = Eval.with_confidence db (Eval.run_exn db scan_plan) in
        let take n xs = List.filteri (fun i _ -> i < n) xs in
        let full_sort () =
          take k
            (List.stable_sort
               (fun (_, a) (_, b) -> Float.compare b a)
               scored)
        in
        let heap () = Topk.by_score ~k (fun (_, c) -> c) scored in
        let sorted, t_sort = timed_best reps full_sort in
        let heaped, t_heap = timed_best reps heap in
        let topk_ok = sorted = heaped in
        if not topk_ok then
          failwith "sweep-columnar: top-K heap differs from full sort";
        let topk_speedup = t_sort /. Float.max t_heap 1e-9 in
        row "    top-%-4d sort %7.3fs               heap %8.3fs  %6.1fx\n" k
          t_sort t_heap topk_speedup;
        Printf.sprintf
          "    \
           {\"size\":%d,\"mb\":%g,\"build_s\":%g,\"ingest\":{\"stream_s\":%g,\"bulk_s\":%g,\"stream_mb_per_s\":%g,\"bulk_mb_per_s\":%g,\"speedup\":%g,\"identical\":%b},\"scan\":{\"row_s\":%g,\"col_s\":%g,\"row_mrows_per_s\":%g,\"col_mrows_per_s\":%g,\"speedup\":%g,\"identical\":%b},\"filter\":{\"selectivity\":%g,\"row_s\":%g,\"col_s\":%g,\"speedup\":%g,\"identical\":%b},\"project\":{\"groups\":%d,\"row_s\":%g,\"col_s\":%g,\"speedup\":%g,\"identical\":%b},\"topk\":{\"k\":%d,\"sort_s\":%g,\"heap_s\":%g,\"speedup\":%g,\"identical\":%b}}"
          size mb t_build t_stream t_bulk
          (mb /. Float.max t_stream 1e-9)
          (mb /. Float.max t_bulk 1e-9)
          (t_stream /. Float.max t_bulk 1e-9)
          ingest_ok t_row_scan t_col_scan (mrows size t_row_scan)
          (mrows size t_col_scan) scan_speedup scan_ok selectivity t_row_filter
          t_col_filter filter_speedup true groups t_row_project t_col_project
          project_speedup true k t_sort t_heap topk_speedup topk_ok)
      sizes
  in
  let oc = open_out columnar_json_path in
  Printf.fprintf oc "{\n  %s,\n  \"points\": [\n" (machine_fields ());
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n  ]\n}\n";
  close_out oc;
  row "  wrote %d points to %s\n" (List.length entries) columnar_json_path

(* ------------------------------------------------------------------ *)

(* sweep-circuits: the safe-plan confidence fast path and d-DNNF lineage
   circuits against the degradation ladder.  Three points, each
   identity-asserted (the panel fails hard on any mismatch) before its
   ["identical": true] is written to BENCH_circuits.json:

     safe-query   — a hierarchical (safe-plan) query answered through
                    the engine with the fast path on vs forced off (the
                    PCQE_CIRCUITS=0 behaviour); responses must be
                    bit-identical, the on-run must fire the
                    [engine.safe_plan] counter and label every released
                    row with tier ["safe_plan"]
     self-join    — an unsafe (non-read-once, self-join-shaped)
                    confidence workload re-priced across E confidence
                    epochs through a Conf_cache: the ladder pays Shannon
                    expansion every epoch, the circuit pays one compile
                    plus E linear passes; values must be bitwise equal
                    (circuits are restricted to the Shannon exactness
                    domain)
     solver       — incremental strategy-finding over entangled
                    dyadic-confidence lineage: circuit-backed vs
                    OBDD/Shannon-backed compiled evaluators; solver
                    outcomes must be identical (the dyadic δ-grid makes
                    every evaluator's arithmetic exact) *)

let circuits_json_path = "BENCH_circuits.json"

(* sliding-window entangled formulas over freshly inserted base tuples:
   Or of pairwise Ands, every variable in several clauses — the lineage
   shape of a selective self-join, non-read-once but inside the Shannon
   exactness domain (asserted below) *)
let circuits_self_join ~num_bases ~num_results ~width ~seed =
  let open Relational in
  let s = Relation.create "S" (Schema.of_list [ ("k", Value.TInt) ]) in
  let db = Database.add_relation Database.empty s in
  let rng = Prng.Splitmix.of_int seed in
  let db, rev_tids =
    List.fold_left
      (fun (db, acc) i ->
        let db, tid =
          Database.insert db "S" [ Value.Int i ]
            ~conf:(Prng.Splitmix.float_in rng 0.3 0.9)
        in
        (db, tid :: acc))
      (db, []) (List.init num_bases Fun.id)
  in
  let tids = Array.of_list (List.rev rev_tids) in
  let formulas =
    List.init num_results (fun j ->
        Lineage.Formula.disj
          (List.init (width - 1) (fun i ->
               let a = tids.((j + i) mod num_bases) in
               let b = tids.((j + i + 1) mod num_bases) in
               Lineage.Formula.conj
                 [ Lineage.Formula.var a; Lineage.Formula.var b ])))
  in
  (db, tids, formulas)

(* dyadic variant of [entangled_problem]: confidences and δ are exact
   binary fractions, so circuit, OBDD and Shannon evaluators all compute
   the same float bit for bit and solver outcomes can be compared with
   [=] rather than a tolerance *)
let entangled_dyadic ~num_bases ~num_results ~width ~required ~seed () =
  let rng = Prng.Splitmix.of_int seed in
  let dyadics = [| 0.125; 0.25; 0.375; 0.5 |] in
  let bases =
    List.init num_bases (fun i ->
        {
          Problem.tid = Lineage.Tid.make "cir" i;
          p0 = dyadics.(Prng.Splitmix.int rng 4);
          cap = 1.0;
          cost = Cost.Cost_model.random rng;
        })
  in
  let tids = Array.of_list (List.map (fun b -> b.Problem.tid) bases) in
  let formulas =
    List.init num_results (fun j ->
        Lineage.Formula.disj
          (List.init (width - 1) (fun i ->
               let a = tids.((j + i) mod num_bases) in
               let b = tids.((j + i + 1) mod num_bases) in
               Lineage.Formula.conj
                 [ Lineage.Formula.var a; Lineage.Formula.var b ])))
  in
  Problem.make_exn ~delta:0.25 ~incremental:true ~beta:0.6 ~required ~bases
    ~formulas ()

let sweep_circuits ?(rows = 2000) ?(reps = 3) ?(epochs = 48) ?(seed = 17) () =
  header "sweep-circuits: safe-plan fast path + lineage circuits vs ladder";
  row "  every point is checked identical to the ladder before writing\n";
  (* (1) safe-plan fast path through the engine *)
  let safe_entry =
    let ctx, users = serving_context ~rows ~principals:1 ~seed () in
    let user = List.hd users in
    let request =
      {
        Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
        user;
        purpose = "serve";
        perc = 0.3;
      }
    in
    let answer () = Pcqe.Engine.answer ctx request in
    let on, t_on = timed_best reps (fun () -> with_circuits true answer) in
    let off, t_off = timed_best reps (fun () -> with_circuits false answer) in
    if outcome_fingerprint on <> outcome_fingerprint off then
      failwith "sweep-circuits: safe-query responses differ (on vs off)";
    (* untimed verification run: the fast path must actually fire and
       label every released row *)
    let obs = Obs.wall () in
    let verified =
      with_circuits true (fun () ->
          Pcqe.Engine.answer { ctx with Pcqe.Engine.obs = Some obs } request)
    in
    let released, withheld =
      match verified with
      | Error m -> failwith ("sweep-circuits: safe-query verify: " ^ m)
      | Ok r ->
        if Obs.Metrics.counter obs.Obs.metrics "engine.safe_plan" < 1 then
          failwith "sweep-circuits: engine.safe_plan did not fire";
        List.iter
          (fun (rel : Pcqe.Engine.released) ->
            if rel.Pcqe.Engine.conf_tier <> "safe_plan" then
              failwith
                (Printf.sprintf
                   "sweep-circuits: released row priced by %S, not safe_plan"
                   rel.Pcqe.Engine.conf_tier))
          r.Pcqe.Engine.released;
        (List.length r.Pcqe.Engine.released, r.Pcqe.Engine.withheld)
    in
    let speedup = t_off /. Float.max t_on 1e-9 in
    row "  %-24s off %8.5fs  on %8.5fs  %6.2fx  (released %d)\n"
      (Printf.sprintf "safe-query rows=%d" rows)
      t_off t_on speedup released;
    Printf.sprintf
      "    \
       \"safe_query\": \
       {\"rows\":%d,\"released\":%d,\"withheld\":%d,\"ladder_s\":%g,\"fast_path_s\":%g,\"speedup\":%g,\"safe_plan_fired\":true,\"identical\":true}"
      rows released withheld t_off t_on speedup
  in
  (* (2) unsafe self-join workload across confidence epochs *)
  let self_join_entry =
    let num_bases = 20 and num_results = 16 and width = 12 in
    let db0, tids, formulas =
      circuits_self_join ~num_bases ~num_results ~width ~seed
    in
    List.iter
      (fun f ->
        if Lineage.Formula.is_read_once f then
          failwith "sweep-circuits: self-join lineage is read-once";
        if
          Lineage.Prob.shannon_cost_estimate f
          > Lineage.Approx.exact_threshold
        then failwith "sweep-circuits: self-join lineage left Shannon domain")
      formulas;
    (* one confidence bump per epoch, every formula re-priced through the
       cache; returns every value computed so the two modes can be
       compared bit for bit *)
    let workload ?obs on () =
      with_circuits on (fun () ->
          let cache = Pcqe.Conf_cache.create () in
          let db = ref db0 in
          let values = ref [] in
          for e = 1 to epochs do
            (* touch a spread of bases so most formulas re-price each
               epoch — the self-join's every-query-dirty regime *)
            List.iter
              (fun k ->
                db :=
                  Relational.Database.set_confidence !db
                    tids.(((3 * e) + k) mod num_bases)
                    (0.25 +. (0.5 *. float_of_int e /. float_of_int epochs)))
              [ 0; 7; 13 ];
            List.iter
              (fun f ->
                values :=
                  Pcqe.Conf_cache.confidence ?obs cache ~db:!db f :: !values)
              formulas
          done;
          List.rev !values)
    in
    let ladder_vals, t_ladder = timed_best reps (workload false) in
    let circuit_vals, t_circuit = timed_best reps (workload true) in
    List.iter2
      (fun a b ->
        if Int64.bits_of_float a <> Int64.bits_of_float b then
          failwith
            (Printf.sprintf
               "sweep-circuits: self-join confidence differs: %.17g vs %.17g"
               a b))
      ladder_vals circuit_vals;
    (* untimed verification run: circuits built once, re-evaluated per
       epoch thereafter *)
    let obs = Obs.wall () in
    ignore (workload ~obs true ());
    let builds = Obs.Metrics.counter obs.Obs.metrics "ladder.circuit_build" in
    let reevals =
      Obs.Metrics.counter obs.Obs.metrics "ladder.circuit_reeval"
    in
    if builds < 1 then
      failwith "sweep-circuits: no circuit was built on the self-join";
    if reevals < 1 then
      failwith "sweep-circuits: no circuit re-evaluation on the self-join";
    let speedup = t_ladder /. Float.max t_circuit 1e-9 in
    row
      "  %-24s ladder %6.4fs  circuit %6.4fs  %6.2fx  (builds %d reevals \
       %d)\n"
      (Printf.sprintf "self-join epochs=%d" epochs)
      t_ladder t_circuit speedup builds reevals;
    Printf.sprintf
      "    \
       \"self_join_epochs\": \
       {\"bases\":%d,\"results\":%d,\"width\":%d,\"epochs\":%d,\"evals\":%d,\"circuit_builds\":%d,\"circuit_reevals\":%d,\"ladder_s\":%g,\"circuit_s\":%g,\"speedup\":%g,\"identical\":true}"
      num_bases num_results width epochs
      (List.length ladder_vals)
      builds reevals t_ladder t_circuit speedup
  in
  (* (3) solver incremental re-evaluation, circuit vs ladder evaluators *)
  let solver_entry =
    let num_bases = 18 and num_results = 15 and width = 7 and required = 7 in
    let make on =
      with_circuits on (fun () ->
          entangled_dyadic ~num_bases ~num_results ~width ~required ~seed ())
    in
    let pb_circ = make true in
    let pb_ladder = make false in
    let circuit_classes pb =
      let seen = Hashtbl.create 16 in
      let n = ref 0 in
      for rid = 0 to Problem.num_results pb - 1 do
        let cid = Problem.class_of_result pb rid in
        if not (Hashtbl.mem seen cid) then begin
          Hashtbl.add seen cid ();
          if Problem.evaluator_kind pb cid = "circuit" then incr n
        end
      done;
      !n
    in
    if circuit_classes pb_circ < 1 then
      failwith "sweep-circuits: no class compiled to a circuit";
    if circuit_classes pb_ladder <> 0 then
      failwith "sweep-circuits: forced-off problem still built circuits";
    (* branch-and-bound heuristic: the probe-heaviest solver — every
       node re-prices affected classes through the compiled evaluators *)
    let algorithm =
      Optimize.Solver.Heuristic Optimize.Heuristic.default_config
    in
    let solve pb () = Optimize.Solver.solve ~algorithm pb in
    let out_circ, t_circ = timed_best reps (solve pb_circ) in
    let out_ladder, t_ladder = timed_best reps (solve pb_ladder) in
    if out_circ.Optimize.Solver.solution <> out_ladder.Optimize.Solver.solution
    then failwith "sweep-circuits: solver solutions differ";
    if
      out_circ.Optimize.Solver.satisfied
      <> out_ladder.Optimize.Solver.satisfied
    then failwith "sweep-circuits: solver satisfied sets differ";
    if out_circ.Optimize.Solver.cost <> out_ladder.Optimize.Solver.cost then
      failwith "sweep-circuits: solver costs differ";
    let speedup = t_ladder /. Float.max t_circ 1e-9 in
    row "  %-24s ladder %6.4fs  circuit %6.4fs  %6.2fx  (classes %d)\n"
      (Printf.sprintf "solver bases=%d" num_bases)
      t_ladder t_circ speedup
      (Problem.num_classes pb_circ);
    Printf.sprintf
      "    \
       \"solver_incremental\": \
       {\"solver\":\"heuristic-bb\",\"jobs\":%d,\"bases\":%d,\"results\":%d,\"required\":%d,\"classes\":%d,\"circuit_classes\":%d,\"feasible\":%b,\"cost\":%g,\"ladder_s\":%g,\"circuit_s\":%g,\"speedup\":%g,\"identical\":true}"
      (Exec.resolve_jobs ()) num_bases num_results required
      (Problem.num_classes pb_circ)
      (circuit_classes pb_circ)
      (out_circ.Optimize.Solver.solution <> None)
      out_circ.Optimize.Solver.cost t_ladder t_circ speedup
  in
  let entries = [ safe_entry; self_join_entry; solver_entry ] in
  let oc = open_out circuits_json_path in
  Printf.fprintf oc "{\n  %s,\n" (machine_fields ());
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n}\n";
  close_out oc;
  row "  wrote %d points to %s\n" (List.length entries) circuits_json_path

(* ------------------------------------------------------------------ *)

(* sweep-server: the fault-tolerant serving tier end to end, over a
   real unix-domain socket.  Three points:

     identity    — every wire answer's canonical body is compared
                   byte-for-byte against a per-principal in-process
                   Engine.Session.batch over the same request streams
                   (the wire adds framing, admission and sessions, but
                   must never change an answer)
     throughput  — a closed-loop Load_gen panel drives the server with
                   concurrent principals; sustained QPS and p50/p99
                   latency come from the generator's Hdr sketch, along
                   with shed / timeout / retry counts
     chaos       — with every net.* fault site armed, every request
                   still reaches a terminal outcome (answer, shed,
                   timeout or failure — never silence), and the first
                   post-chaos answer is again bit-identical to a fresh
                   in-process session

   The identity and chaos points fail the panel hard; the numbers go
   to BENCH_server.json. *)

let server_json_path = "BENCH_server.json"

let sweep_server ?(rows = 1500) ?(principals = 4) ?(requests = 30)
    ?(chaos_requests = 8) ?(seed = 47) () =
  header "sweep-server: wire serving tier — identity, throughput, chaos";
  let sock =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pcqe_bench_srv_%d.sock" (Unix.getpid ()))
  in
  let with_server ?config ctx f =
    if Sys.file_exists sock then Sys.remove sock;
    let server = Net.Server.start ?config ~ctx (Net.Server.Unix_path sock) in
    Fun.protect
      ~finally:(fun () ->
        Net.Server.stop server;
        if Sys.file_exists sock then Sys.remove sock)
      (fun () -> f server)
  in
  let purpose = "serve" in
  let queries =
    [| serving_sql; "SELECT k FROM R WHERE n < 40"; "SELECT k FROM R" |]
  in
  (* (1) identity over the wire *)
  let identity_entry =
    let reps = 4 in
    let ctx, users = serving_context ~rows ~principals ~seed () in
    let stream u =
      List.concat
        (List.init reps (fun _ ->
             List.map (fun sql -> (u, sql)) (Array.to_list queries)))
    in
    let wire_bodies, t_wire =
      time (fun () ->
          with_server ctx (fun server ->
              List.map
                (fun u ->
                  let client =
                    Net.Client.create ~seed (Net.Server.address server)
                  in
                  Fun.protect
                    ~finally:(fun () -> Net.Client.close client)
                    (fun () ->
                      List.map
                        (fun (user, sql) ->
                          match
                            Net.Client.query client ~user ~purpose ~perc:0.6
                              sql
                          with
                          | Net.Client.Answer a -> a.Net.Wire.body
                          | o ->
                              failwith
                                (Printf.sprintf
                                   "sweep-server: wire query for %s not \
                                    answered (%s)"
                                   user
                                   (Net.Client.outcome_label o)))
                        (stream u)))
                users))
    in
    let local_bodies =
      List.map
        (fun u ->
          let session = Pcqe.Engine.Session.create ctx in
          Pcqe.Engine.Session.batch session
            (List.map
               (fun (user, sql) ->
                 { Pcqe.Engine.query = Pcqe.Query.sql sql; user; purpose;
                   perc = 0.6 })
               (stream u))
          |> List.map (fun r ->
                 match r with
                 | Ok resp -> Net.Wire.body_of_response resp
                 | Error m -> failwith ("sweep-server: local error: " ^ m)))
        users
    in
    let compared = ref 0 in
    List.iter2
      (fun ws ls ->
        List.iteri
          (fun i (w, l) ->
            incr compared;
            if not (String.equal w l) then
              failwith
                (Printf.sprintf
                   "sweep-server: response %d differs between wire and \
                    Session.batch"
                   i))
          (List.combine ws ls))
      wire_bodies local_bodies;
    row "  %-24s %d principals x %d requests  %7.4fs  (all bit-identical)\n"
      "identity vs batch" principals (reps * Array.length queries) t_wire;
    Printf.sprintf
      "  \"identity\": \
       {\"rows\":%d,\"principals\":%d,\"requests\":%d,\"wire_s\":%g,\"identical\":true}"
      rows principals !compared t_wire
  in
  (* (2) closed-loop throughput *)
  let throughput_entry =
    let ctx, users = serving_context ~rows ~principals ~seed () in
    let user_arr = Array.of_list users in
    with_server ctx (fun server ->
        let clients =
          Array.init principals (fun i ->
              Net.Client.create ~seed:(seed + (i * 7919))
                (Net.Server.address server))
        in
        Fun.protect
          ~finally:(fun () -> Array.iter Net.Client.close clients)
          (fun () ->
            let report =
              Workload.Load_gen.run
                {
                  Workload.Load_gen.principals;
                  requests_per_principal = requests;
                  think_ms = 0.0;
                  zipf_s = 1.1;
                  seed;
                }
                ~queries
                ~user_of:(fun i -> user_arr.(i mod Array.length user_arr))
                ~exec:(fun ~principal ~user ~sql ->
                  match
                    Net.Client.query clients.(principal) ~user ~purpose
                      ~perc:0.6 sql
                  with
                  | Net.Client.Answer a ->
                      Workload.Load_gen.Answered
                        { degraded = a.Net.Wire.degraded <> None }
                  | Net.Client.Shed _ -> Workload.Load_gen.Shed
                  | Net.Client.Timed_out _ -> Workload.Load_gen.Timed_out
                  | Net.Client.Accepted _ ->
                      Workload.Load_gen.Failed "unexpected accept"
                  | Net.Client.Failed m -> Workload.Load_gen.Failed m)
            in
            let open Workload.Load_gen in
            if report.failed > 0 then
              failwith "sweep-server: unfaulted load run had failures";
            if report.total <> principals * requests then
              failwith "sweep-server: load run lost requests";
            let retries =
              Array.fold_left
                (fun acc c -> acc + Net.Client.retries_used c)
                0 clients
            in
            let p50 = Obs.Hdr.quantile report.latency 0.5 in
            let p99 = Obs.Hdr.quantile report.latency 0.99 in
            row
              "  %-24s %d x %d requests  %7.1f qps  p50 %.2fms  p99 %.2fms  \
               (%d shed, %d timed out)\n"
              "closed-loop throughput" principals requests report.qps
              (p50 *. 1e3) (p99 *. 1e3) report.shed report.timed_out;
            Printf.sprintf
              "  \"throughput\": \
               {\"rows\":%d,\"principals\":%d,\"requests_per_principal\":%d,\"total\":%d,\"answered\":%d,\"degraded\":%d,\"shed\":%d,\"timed_out\":%d,\"failed\":%d,\"elapsed_s\":%g,\"qps\":%g,\"p50_s\":%g,\"p99_s\":%g,\"retries\":%d}"
              rows principals requests report.total report.answered
              report.degraded report.shed report.timed_out report.failed
              report.elapsed_s report.qps p50 p99 retries))
  in
  (* (3) wire-level chaos: armed net.* faults, every request terminal *)
  let chaos_entry =
    let ctx, users = serving_context ~rows ~principals ~seed () in
    let user_arr = Array.of_list users in
    with_server ctx (fun server ->
        let clients =
          Array.init principals (fun i ->
              Net.Client.create
                ~config:
                  {
                    Net.Client.default_config with
                    Net.Client.retries = 2;
                    request_timeout_ms = 2000.0;
                  }
                ~seed:(seed + 13 + (i * 101))
                (Net.Server.address server))
        in
        Fun.protect
          ~finally:(fun () -> Array.iter Net.Client.close clients)
          (fun () ->
            let plan =
              Resilience.Fault.plan ~rate:0.2
                ~sites:
                  [
                    Resilience.Fault.site_net_accept;
                    Resilience.Fault.site_net_read;
                    Resilience.Fault.site_net_write;
                    Resilience.Fault.site_net_delay;
                  ]
                ~seed ()
            in
            let report =
              Resilience.Fault.with_plan plan (fun () ->
                  Workload.Load_gen.run
                    {
                      Workload.Load_gen.principals;
                      requests_per_principal = chaos_requests;
                      think_ms = 0.0;
                      zipf_s = 1.1;
                      seed = seed + 1;
                    }
                    ~queries
                    ~user_of:(fun i -> user_arr.(i mod Array.length user_arr))
                    ~exec:(fun ~principal ~user ~sql ->
                      match
                        Net.Client.query clients.(principal) ~user ~purpose
                          ~perc:0.6 sql
                      with
                      | Net.Client.Answer a ->
                          Workload.Load_gen.Answered
                            { degraded = a.Net.Wire.degraded <> None }
                      | Net.Client.Shed _ -> Workload.Load_gen.Shed
                      | Net.Client.Timed_out _ -> Workload.Load_gen.Timed_out
                      | Net.Client.Accepted _ ->
                          Workload.Load_gen.Failed "unexpected accept"
                      | Net.Client.Failed m -> Workload.Load_gen.Failed m))
            in
            let open Workload.Load_gen in
            (* terminality: chaos may shed, time out or fail individual
               requests, but every single one must come back *)
            if report.total <> principals * chaos_requests then
              failwith "sweep-server: chaos run lost a request";
            (* post-chaos identity: the server must still give the exact
               in-process answer once the plan is disarmed *)
            let probe =
              Net.Client.create ~seed:(seed + 997)
                (Net.Server.address server)
            in
            let wire_body =
              Fun.protect
                ~finally:(fun () -> Net.Client.close probe)
                (fun () ->
                  match
                    Net.Client.query probe ~user:user_arr.(0) ~purpose
                      ~perc:0.6 serving_sql
                  with
                  | Net.Client.Answer a -> a.Net.Wire.body
                  | o ->
                      failwith
                        (Printf.sprintf
                           "sweep-server: post-chaos probe not answered (%s)"
                           (Net.Client.outcome_label o)))
            in
            let local_body =
              let session = Pcqe.Engine.Session.create ctx in
              match
                Pcqe.Engine.Session.batch session
                  [
                    {
                      Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
                      user = user_arr.(0);
                      purpose;
                      perc = 0.6;
                    };
                  ]
              with
              | [ Ok resp ] -> Net.Wire.body_of_response resp
              | _ -> failwith "sweep-server: post-chaos local answer failed"
            in
            if not (String.equal wire_body local_body) then
              failwith "sweep-server: post-chaos answer differs from batch";
            let injected = Resilience.Fault.injected plan in
            row
              "  %-24s %d requests, %d faults injected  (%d answered, %d \
               shed, %d timed out, %d failed; all terminal)\n"
              "chaos, net.* armed" report.total injected report.answered
              report.shed report.timed_out report.failed;
            Printf.sprintf
              "  \"chaos\": \
               {\"rows\":%d,\"principals\":%d,\"requests_per_principal\":%d,\"total\":%d,\"answered\":%d,\"shed\":%d,\"timed_out\":%d,\"failed\":%d,\"injected\":%d,\"rate\":0.2,\"terminal\":true,\"post_chaos_identical\":true}"
              rows principals chaos_requests report.total report.answered
              report.shed report.timed_out report.failed injected))
  in
  let entries = [ identity_entry; throughput_entry; chaos_entry ] in
  let oc = open_out server_json_path in
  Printf.fprintf oc "{\n  %s,\n" (machine_fields ());
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n}\n";
  close_out oc;
  row "  wrote %d points to %s\n" (List.length entries) server_json_path

(* ------------------------------------------------------------------ *)

(* sweep-shards: the key-sharded store behind the serving tier.  Two
   entries, both identity-asserted against the cold unsharded path:

   (1) invalidation — a session warms its per-epoch confidence cache
       over a sharded store, then a flood of accepted improvement
       proposals lands entirely on one shard (enough raises to overflow
       that shard's bounded change log).  On the next answer the cache
       must flush the flooded shard's classes and nothing else: at one
       shard the flood takes the whole cache down, at 4/8 shards the
       recomputed/total ratio drops towards 1/shards.

   (2) loadgen — per-principal requests (>= 1024 principals in the full
       run) served from one session over the shared sharded store;
       QPS and p50/p99 latency per shard count, every answer checked
       against its cold counterpart.  Cores and jobs come from
       [machine_fields]. *)

let shards_json_path = "BENCH_shards.json"

let sweep_shards ?(rows = 2000) ?(principals = 1024)
    ?(requests_per_principal = 2) ?(shard_counts = [ 1; 4; 8 ]) ?(seed = 43)
    () =
  header "sweep-shards: per-shard epochs - localized invalidation + loadgen";
  let stat name stats =
    match List.assoc_opt name stats with Some v -> v | None -> 0
  in
  (* the flood set: tuples owned by shard 0 under the *largest* shard
     count.  shard_of is [hash mod n], so for n | m the shard-0-of-m
     tuples are shard-0 tuples at every n in the sweep — the same flood
     is single-shard at each point, which is what makes the ratios
     comparable *)
  let flood_mod =
    List.fold_left max 1 shard_counts
  in
  let flood_tids =
    List.filter
      (fun i ->
        Relational.Database.shard_of ~shards:flood_mod
          (Lineage.Tid.make "R" i)
        = 0)
      (List.init rows Fun.id)
    |> List.map (fun i -> Lineage.Tid.make "R" i)
  in
  if flood_tids = [] then failwith "sweep-shards: empty flood set";
  (* enough single-tuple raises to overflow the owning shard's bounded
     change log (capacity 256), forcing the wholesale-flush path rather
     than the targeted one *)
  let flood_rounds = 2 + (520 / List.length flood_tids) in
  let flood_target k = 0.955 +. (0.0001 *. float_of_int k) in
  let invalidation_points =
    with_circuits false @@ fun () ->
    (* circuits off: the var fast path would answer single-tuple classes
       straight from the base vector with no cache traffic, and this
       entry is precisely about what the cache invalidates *)
    List.map
      (fun shards ->
        let ctx, users = serving_context ~rows ~principals:1 ~seed () in
        let user = List.hd users in
        let req =
          {
            Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
            user;
            purpose = "serve";
            perc = 0.3;
          }
        in
        (* a real proposal from the engine, used as the template the
           flood's accepted increments ride in on *)
        let template =
          match Pcqe.Engine.answer ctx { req with Pcqe.Engine.perc = 0.98 } with
          | Ok { Pcqe.Engine.proposal = Some p; _ } -> p
          | Ok _ -> failwith "sweep-shards: engine proposed nothing to accept"
          | Error m -> failwith ("sweep-shards: " ^ m)
        in
        let sctx =
          {
            ctx with
            Pcqe.Engine.db =
              Relational.Database.with_shards ctx.Pcqe.Engine.db shards;
          }
        in
        let session = Pcqe.Engine.Session.create sctx in
        let warm0 = Pcqe.Engine.Session.answer session req in
        assert_identical
          (Printf.sprintf "sweep-shards warm (shards=%d)" shards)
          [ Pcqe.Engine.answer ctx req ]
          [ warm0 ];
        let classes =
          stat "conf.entries" (Pcqe.Engine.Session.cache_stats session)
        in
        for k = 0 to flood_rounds - 1 do
          let incs =
            List.map (fun tid -> (tid, flood_target k)) flood_tids
          in
          Pcqe.Engine.Session.accept_proposal session
            { template with Pcqe.Engine.increments = incs }
        done;
        let before = Pcqe.Engine.Session.cache_stats session in
        let warm1 = Pcqe.Engine.Session.answer session req in
        let after = Pcqe.Engine.Session.cache_stats session in
        let flooded_db =
          Relational.Database.apply_increments ctx.Pcqe.Engine.db
            (List.map
               (fun tid -> (tid, flood_target (flood_rounds - 1)))
               flood_tids)
        in
        assert_identical
          (Printf.sprintf "sweep-shards post-flood (shards=%d)" shards)
          [ Pcqe.Engine.answer { ctx with Pcqe.Engine.db = flooded_db } req ]
          [ warm1 ];
        let delta name = stat name after - stat name before in
        let recomputed = delta "serving.recomputed_classes" in
        let reused = delta "serving.reused_classes" in
        let ratio =
          float_of_int recomputed
          /. float_of_int (max 1 (recomputed + reused))
        in
        row
          "  shards=%d  classes=%4d  flood=%d tuples x %d rounds  \
           recomputed=%4d reused=%4d  ratio=%.3f\n"
          shards classes (List.length flood_tids) flood_rounds recomputed
          reused ratio;
        Printf.sprintf
          "    \
           {\"shards\":%d,\"classes\":%d,\"flood_tuples\":%d,\"flood_rounds\":%d,\"recomputed\":%d,\"reused\":%d,\"invalidated_ratio\":%.4f,\"identical\":true}"
          shards classes (List.length flood_tids) flood_rounds recomputed
          reused ratio)
      shard_counts
  in
  let loadgen_points =
    List.map
      (fun shards ->
        let ctx, users = serving_context ~rows ~principals ~seed:(seed + 1) () in
        let user_arr = Array.of_list users in
        let sctx =
          {
            ctx with
            Pcqe.Engine.db =
              Relational.Database.with_shards ctx.Pcqe.Engine.db shards;
          }
        in
        let total = principals * requests_per_principal in
        let reqs =
          List.init total (fun i ->
              {
                Pcqe.Engine.query = Pcqe.Query.sql serving_sql;
                user = user_arr.(i mod principals);
                purpose = "serve";
                perc = 0.3;
              })
        in
        let colds = List.map (fun r -> Pcqe.Engine.answer ctx r) reqs in
        let session = Pcqe.Engine.Session.create sctx in
        let lats = Array.make total 0.0 in
        let warms, wall =
          time (fun () ->
              List.mapi
                (fun i r ->
                  let a, dt =
                    time (fun () -> Pcqe.Engine.Session.answer session r)
                  in
                  lats.(i) <- dt;
                  a)
                reqs)
        in
        assert_identical
          (Printf.sprintf "sweep-shards loadgen (shards=%d)" shards)
          colds warms;
        Array.sort compare lats;
        let pct p = lats.(int_of_float (p *. float_of_int (total - 1))) in
        let qps = float_of_int total /. Float.max wall 1e-9 in
        row
          "  shards=%d  principals=%d  requests=%d  qps=%.0f  p50=%.6fs  \
           p99=%.6fs\n"
          shards principals total qps (pct 0.50) (pct 0.99);
        Printf.sprintf
          "    \
           {\"shards\":%d,\"principals\":%d,\"requests\":%d,\"qps\":%.1f,\"p50_s\":%g,\"p99_s\":%g,\"identical\":true}"
          shards principals total qps (pct 0.50) (pct 0.99))
      shard_counts
  in
  let entries =
    [
      Printf.sprintf "  \"invalidation\": [\n%s\n  ]"
        (String.concat ",\n" invalidation_points);
      Printf.sprintf "  \"loadgen\": [\n%s\n  ]"
        (String.concat ",\n" loadgen_points);
    ]
  in
  let oc = open_out shards_json_path in
  Printf.fprintf oc "{\n  %s,\n" (machine_fields ());
  output_string oc (String.concat ",\n" entries);
  output_string oc "\n}\n";
  close_out oc;
  row "  wrote %d points to %s\n"
    (List.length invalidation_points + List.length loadgen_points)
    shards_json_path

(* ------------------------------------------------------------------ *)

(* smoke: every panel at tiny sizes, cheap enough to run under `dune
   runtest` — keeps the harness and both JSON artifact writers honest *)
let smoke () =
  table4 ();
  fig11_ad ~seeds:[ 1 ] ~max_nodes:(Some 5_000) ~seeded:false ();
  fig11_ad ~seeds:[ 1 ] ~max_nodes:(Some 5_000) ~seeded:true ();
  fig11_be ~sizes:[ 200 ] ();
  fig11_cf ~sizes:[ 10; 200 ] ~full:false ();
  sweep_bpr ~size:200 ~bprs:[ 5 ] ();
  sweep_gamma ~size:200 ();
  sweep_edge ~size:200 ();
  sweep_solvers ~size:200 ~annealing_iters:20_000 ();
  sweep_rewrite ~rows:40 ();
  sweep_jobs ~sizes:[ 500 ] ~jobs_levels:[ 1; 2 ] ~mc_samples:20_000 ();
  solvers_json ~size:200 ();
  sweep_incremental ~size:200 ~annealing_iters:5_000
    ~bb_max_nodes:(Some 5_000) ();
  sweep_resilience ~size:200 ~seeds:3 ~deadline_ms:5.0 ();
  sweep_serving ~rows:300 ~reps:16 ~principal_counts:[ 1; 8 ] ();
  sweep_server ~rows:200 ~principals:2 ~requests:6 ~chaos_requests:4 ();
  sweep_shards ~rows:240 ~principals:16 ~requests_per_principal:1
    ~shard_counts:[ 1; 4 ] ();
  sweep_columnar ~sizes:[ 2000 ] ~reps:1 ();
  sweep_circuits ~rows:300 ~reps:1 ~epochs:4 ();
  micro ~quota:0.05 ~size:200 ()

let all_panels ~full ~jobs_levels () =
  table4 ();
  fig11_ad ~seeded:false ();
  fig11_ad ~seeded:true ();
  fig11_be ();
  fig11_cf ~full ();
  sweep_bpr ();
  sweep_gamma ();
  sweep_edge ();
  sweep_solvers ();
  sweep_rewrite ();
  sweep_jobs
    ~sizes:(if full then [ 10_000; 50_000; 100_000 ] else [ 10_000 ])
    ~jobs_levels ();
  solvers_json ();
  sweep_incremental ();
  sweep_resilience ();
  sweep_serving ();
  sweep_server ();
  sweep_shards ();
  sweep_columnar ~sizes:(if full then [ 100_000; 1_000_000 ] else [ 100_000 ]) ();
  sweep_circuits ();
  micro ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  (* --jobs N restricts the sweep-jobs levels to [1; N] (N>1), e.g. to
     match the host's core count *)
  let jobs_override =
    let rec go = function
      | "--jobs" :: n :: _ -> int_of_string_opt n
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let jobs_levels =
    match jobs_override with
    | Some n when n > 1 -> [ 1; n ]
    | Some _ -> [ 1 ]
    | None -> [ 1; 2; 4; 8 ]
  in
  let rec strip = function
    | [] -> []
    | "--jobs" :: _ :: rest -> strip rest
    | "--full" :: rest -> strip rest
    | a :: rest -> a :: strip rest
  in
  let panels = strip args in
  Printf.printf
    "PCQE benchmark harness - reproduces Dai et al., SDM@VLDB 2009, Section 5\n";
  if panels = [] then all_panels ~full ~jobs_levels ()
  else
    List.iter
      (function
        | "table4" -> table4 ()
        | "fig11a" -> fig11_ad ~seeded:false ()
        | "fig11d" -> fig11_ad ~seeded:true ()
        | "fig11b" | "fig11e" -> fig11_be ()
        | "fig11c" | "fig11f" -> fig11_cf ~full ()
        | "sweep-bpr" -> sweep_bpr ()
        | "sweep-gamma" -> sweep_gamma ()
        | "sweep-edge" -> sweep_edge ()
        | "sweep-solvers" -> sweep_solvers ()
        | "sweep-rewrite" -> sweep_rewrite ()
        | "sweep-jobs" -> sweep_jobs ~jobs_levels ()
        | "solvers-json" -> solvers_json ()
        | "sweep-incremental" -> sweep_incremental ()
        | "sweep-resilience" -> sweep_resilience ()
        | "sweep-serving" -> sweep_serving ()
        | "sweep-server" -> sweep_server ()
        | "sweep-shards" -> sweep_shards ()
        | "sweep-columnar" -> sweep_columnar ()
        | "sweep-circuits" -> sweep_circuits ()
        | "smoke" -> smoke ()
        | "micro" -> micro ()
        | other -> Printf.eprintf "unknown panel %S\n" other)
      panels
