type t = { rel : string; row : int }

let make rel row = { rel; row }

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else Int.compare a.row b.row

let equal a b = a.row = b.row && String.equal a.rel b.rel

let hash a = Hashtbl.hash (a.rel, a.row)

let to_string a = Printf.sprintf "%s#%d" a.rel a.row

let of_string s =
  match String.rindex_opt s '#' with
  | None -> None
  | Some i -> (
    let rel = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt rest with
    | Some row when rel <> "" -> Some { rel; row }
    | _ -> None)

let pp ppf a = Format.pp_print_string ppf (to_string a)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
module Table = Hashtbl.Make (Hashed)
