(** Base-tuple identifiers.

    Every tuple stored in a base relation gets a stable identifier
    consisting of the relation name and the tuple's insertion index within
    that relation.  Lineage formulas ({!Formula.t}) refer to base tuples
    through these identifiers, and the confidence table of a database maps
    them to confidence values. *)

type t = { rel : string; row : int }

val make : string -> int -> t
(** [make rel row] builds the identifier of the [row]-th tuple inserted
    into relation [rel] (0-based). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Prints as ["rel#row"], e.g. ["Proposal#2"]. *)

val of_string : string -> t option
(** Parses the {!to_string} form. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
