lib/lineage/prob.mli: Formula Prng Tid
