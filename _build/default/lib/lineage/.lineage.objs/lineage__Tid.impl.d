lib/lineage/tid.ml: Format Hashtbl Int Map Printf Set String
