lib/lineage/bdd.mli: Formula Tid
