lib/lineage/explain.ml: Buffer Float Formula Int List Printf Prob String Tid
