lib/lineage/formula.mli: Format Tid
