lib/lineage/tid.mli: Format Hashtbl Map Set
