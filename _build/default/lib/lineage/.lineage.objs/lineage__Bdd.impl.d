lib/lineage/bdd.ml: Array Formula Hashtbl List Tid
