lib/lineage/formula.ml: Buffer Format Int List Tid
