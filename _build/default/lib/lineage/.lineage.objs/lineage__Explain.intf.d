lib/lineage/explain.mli: Formula Tid
