lib/lineage/prob.ml: Formula Hashtbl List Option Prng Tid
