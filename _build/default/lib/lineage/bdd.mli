(** Reduced ordered binary decision diagrams over base tuples.

    A hash-consed OBDD package used as the heavy-duty exact confidence
    evaluator for non-read-once lineage (e.g. self-joins).  Once a formula
    is compiled, probability evaluation is linear in the number of BDD
    nodes, so the same lineage can be re-evaluated cheaply under many
    different confidence assignments — exactly the access pattern of the
    strategy-finding algorithms, which repeatedly perturb one base tuple's
    confidence. *)

type manager
(** Node store: unique table plus operation caches.  All nodes combined in
    an operation must come from the same manager. *)

type t
(** A BDD node handle (valid within its manager). *)

val manager : ?order:(Tid.t -> Tid.t -> int) -> unit -> manager
(** [manager ()] creates a fresh manager.  [order] fixes the variable order
    (default {!Tid.compare}); variables encountered first in operations are
    interned on demand respecting that order. *)

val zero : manager -> t
val one : manager -> t
val var : manager -> Tid.t -> t

val bnot : manager -> t -> t
val band : manager -> t -> t -> t
val bor : manager -> t -> t -> t

val of_formula : manager -> Formula.t -> t
(** [of_formula m f] compiles [f] bottom-up. *)

val equal : t -> t -> bool
(** Constant time thanks to hash-consing: semantic equivalence of BDDs
    built in the same manager coincides with physical identity. *)

val is_zero : t -> bool
val is_one : t -> bool

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val prob : manager -> (Tid.t -> float) -> t -> float
(** [prob m p b] is the probability that [b] evaluates to true when each
    variable [v] is independently true with probability [p v].  Linear in
    {!size}.  The result is memoized per call, not across calls (the
    assignment changes between calls). *)

val eval : (Tid.t -> bool) -> t -> bool
(** [eval assignment b] follows one path from the root. *)

val sat_count : manager -> t -> vars:Tid.Set.t -> float
(** [sat_count m b ~vars] is the number of satisfying assignments of [b]
    over the variable set [vars] (which must contain all variables of [b]).
    Returned as a float to tolerate > 62-variable spaces. *)
