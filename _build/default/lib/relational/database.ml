module Tid = Lineage.Tid
module StrMap = Map.Make (String)

type t = {
  relations : Relation.t StrMap.t;
  confidences : float Tid.Map.t;
  caps : float Tid.Map.t;
}

let empty =
  { relations = StrMap.empty; confidences = Tid.Map.empty; caps = Tid.Map.empty }

let add_relation db r =
  { db with relations = StrMap.add (Relation.name r) r db.relations }

let relation db name = StrMap.find_opt name db.relations

let relation_exn db name =
  match relation db name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database: unknown relation %S" name)

let relation_names db = List.map fst (StrMap.bindings db.relations)
let mem_relation db name = StrMap.mem name db.relations

let check_conf what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Database: %s %g outside [0,1]" what p)

let insert db rel_name vs ~conf =
  check_conf "confidence" conf;
  let r = relation_exn db rel_name in
  let r, tid = Relation.insert_values r vs in
  ( {
      db with
      relations = StrMap.add rel_name r db.relations;
      confidences = Tid.Map.add tid conf db.confidences;
    },
    tid )

let seed_confidence db tid p =
  check_conf "confidence" p;
  let exists =
    match relation db tid.Tid.rel with
    | Some r -> Relation.find r tid <> None
    | None -> false
  in
  if not exists then
    invalid_arg
      (Printf.sprintf "Database.seed_confidence: tuple %s not stored"
         (Tid.to_string tid));
  { db with confidences = Tid.Map.add tid p db.confidences }

let confidence db tid =
  Option.value ~default:0.0 (Tid.Map.find_opt tid db.confidences)

let confidence_cap db tid =
  Option.value ~default:1.0 (Tid.Map.find_opt tid db.caps)

let set_confidence db tid p =
  check_conf "confidence" p;
  if not (Tid.Map.mem tid db.confidences) then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: unknown tuple %s"
         (Tid.to_string tid));
  let cap = confidence_cap db tid in
  if p > cap +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: %g exceeds cap %g of %s" p cap
         (Tid.to_string tid));
  { db with confidences = Tid.Map.add tid (Float.min p cap) db.confidences }

let set_confidence_cap db tid cap =
  check_conf "cap" cap;
  let current = confidence db tid in
  if cap < current -. 1e-12 then
    invalid_arg
      (Printf.sprintf
         "Database.set_confidence_cap: cap %g below current confidence %g" cap
         current);
  { db with caps = Tid.Map.add tid cap db.caps }

let confidence_fn db tid = confidence db tid

let all_confidences db = Tid.Map.bindings db.confidences

let apply_increments db targets =
  List.fold_left
    (fun db (tid, target) ->
      let current = confidence db tid in
      if target < current -. 1e-9 then
        invalid_arg
          (Printf.sprintf
             "Database.apply_increments: target %g below current %g for %s"
             target current (Tid.to_string tid))
      else
        let cap = confidence_cap db tid in
        set_confidence db tid (Float.min target cap))
    db targets
