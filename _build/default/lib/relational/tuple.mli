(** Tuples: immutable rows of {!Value.t}.

    A tuple by itself carries no schema; the relation (or the evaluator)
    supplies one.  Functions that combine tuples with schemas trust the
    caller to pass matching arities and assert it. *)

type t

val make : Value.t array -> t
(** [make vs] takes ownership of [vs]; do not mutate it afterwards. *)

val of_list : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val values : t -> Value.t array
(** Returns a fresh copy; safe to mutate. *)

val append : t -> t -> t
(** [append a b] concatenates the fields of [a] and [b] (join output). *)

val project : t -> int array -> t
(** [project t idx] keeps the fields at positions [idx], in that order. *)

val conforms : t -> Schema.t -> bool
(** [conforms t s] checks arity and per-column type conformance. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Comma-separated display values in parentheses. *)

val pp : Format.formatter -> t -> unit
