let ( let* ) = Result.bind

(* Distinct values of a (resolvable) column when the subplan is a plain
   scan chain over one base relation; [None] when the column cannot be
   traced to base data cheaply. *)
let rec ndv db plan column =
  match plan with
  | Algebra.Scan name -> (
    match Database.relation db name with
    | None -> None
    | Some rel -> (
      let schema = Schema.qualify name (Relation.schema rel) in
      match Schema.find_index schema column with
      | Error _ -> None
      | Ok i ->
        let seen = Hashtbl.create 64 in
        Relation.iter
          (fun _ tup -> Hashtbl.replace seen (Value.hash (Tuple.get tup i)) ())
          rel;
        Some (float_of_int (max 1 (Hashtbl.length seen)))))
  | Algebra.Select (_, p)
  | Algebra.Select_sub (_, p)
  | Algebra.Order_by (_, p)
  | Algebra.Limit (_, p)
  | Algebra.Distinct p ->
    ndv db p column
  | Algebra.Rename (alias, p) ->
    (* strip the alias qualifier and retry against the child *)
    let bare = Schema.unqualified column in
    let qualifier_matches =
      match String.index_opt column '.' with
      | None -> true
      | Some i -> String.sub column 0 i = alias
    in
    if qualifier_matches then ndv db p bare else None
  | _ -> None

let eq_selectivity db plan column =
  match ndv db plan column with Some n -> 1.0 /. n | None -> 0.1

(* selectivity of a predicate against a given subplan (for ndv lookups) *)
let rec selectivity db plan e =
  match e with
  | Expr.Lit (Value.Bool true) -> 1.0
  | Expr.Lit (Value.Bool false) -> 0.0
  | Expr.Cmp (Expr.Eq, Expr.Col c, Expr.Lit _)
  | Expr.Cmp (Expr.Eq, Expr.Lit _, Expr.Col c) ->
    eq_selectivity db plan c
  | Expr.Cmp (Expr.Eq, _, _) -> 0.1
  | Expr.Cmp (Expr.Neq, _, _) -> 0.9
  | Expr.Cmp (_, _, _) -> 0.3
  | Expr.Between (_, _, _) -> 0.25
  | Expr.Like (_, _) -> 0.25
  | Expr.In (_, vs) -> Float.min 1.0 (0.1 *. float_of_int (List.length vs))
  | Expr.IsNull _ -> 0.05
  | Expr.IsNotNull _ -> 0.95
  | Expr.And (a, b) -> selectivity db plan a *. selectivity db plan b
  | Expr.Not a -> 1.0 -. selectivity db plan a
  | Expr.Or (a, b) ->
    let sa = selectivity db plan a and sb = selectivity db plan b in
    Float.min 1.0 (sa +. sb -. (sa *. sb))
  | Expr.Lit _ | Expr.Col _ | Expr.Arith _ | Expr.Neg _ -> 0.5

let rec cond_selectivity db plan = function
  | Algebra.Pred e -> selectivity db plan e
  | Algebra.In_sub (_, _) -> 0.3
  | Algebra.Exists_sub _ -> 0.5
  | Algebra.Not_c c -> 1.0 -. cond_selectivity db plan c
  | Algebra.And_c (a, b) -> cond_selectivity db plan a *. cond_selectivity db plan b
  | Algebra.Or_c (a, b) ->
    let sa = cond_selectivity db plan a and sb = cond_selectivity db plan b in
    Float.min 1.0 (sa +. sb -. (sa *. sb))

let join_selectivity db a b pred =
  match pred with
  | Some (Expr.Cmp (Expr.Eq, Expr.Col x, Expr.Col y)) ->
    let n =
      match (ndv db a x, ndv db b y, ndv db a y, ndv db b x) with
      | Some na, Some nb, _, _ | _, _, Some na, Some nb -> Float.max na nb
      | _ -> 10.0
    in
    1.0 /. n
  | Some e -> selectivity db (Algebra.cross a b) e
  | None -> 1.0

let rec cardinality db plan =
  (* validate the schema once so estimates fail on what evaluation would *)
  let* _ = Algebra.output_schema db plan in
  card db plan

and card db plan =
  match plan with
  | Algebra.Scan name ->
    Ok (float_of_int (Relation.cardinality (Database.relation_exn db name)))
  | Algebra.Select (e, p) ->
    let* c = card db p in
    Ok (c *. selectivity db p e)
  | Algebra.Select_sub (cond, p) ->
    let* c = card db p in
    Ok (c *. cond_selectivity db p cond)
  | Algebra.Project (_, p) | Algebra.Distinct p ->
    let* c = card db p in
    Ok (Float.max (Float.min c 1.0) (c *. 0.7))
  | Algebra.Join (pred, a, b) ->
    let* ca = card db a in
    let* cb = card db b in
    Ok (ca *. cb *. join_selectivity db a b pred)
  | Algebra.Left_join (pred, a, b) ->
    let* ca = card db a in
    let* cb = card db b in
    (* every left row appears at least once *)
    Ok (Float.max ca (ca *. cb *. join_selectivity db a b (Some pred)))
  | Algebra.Union (a, b) ->
    let* ca = card db a in
    let* cb = card db b in
    Ok (0.9 *. (ca +. cb))
  | Algebra.Intersect (a, b) ->
    let* ca = card db a in
    let* cb = card db b in
    Ok (0.3 *. Float.min ca cb)
  | Algebra.Diff (a, _) -> card db a
  | Algebra.Rename (_, p) -> card db p
  | Algebra.Order_by (_, p) -> card db p
  | Algebra.Limit (n, p) ->
    let* c = card db p in
    Ok (Float.min (float_of_int n) c)
  | Algebra.Group_by (keys, _, p) ->
    let* c = card db p in
    if keys = [] then Ok (Float.min c 1.0) else Ok (Float.max 1.0 (c *. 0.3))

let explain db plan =
  let* _ = Algebra.output_schema db plan in
  let buf = Buffer.create 256 in
  let pad depth = String.make (2 * depth) ' ' in
  let annotate depth label p =
    let est = match card db p with Ok c -> c | Error _ -> nan in
    Buffer.add_string buf
      (Printf.sprintf "%s%s   [~%.0f rows]\n" (pad depth) label est)
  in
  let rec go depth p =
    (match p with
    | Algebra.Scan n -> annotate depth (Printf.sprintf "Scan %s" n) p
    | Algebra.Select (e, _) ->
      annotate depth (Printf.sprintf "Select %s" (Expr.to_string e)) p
    | Algebra.Select_sub (c, _) ->
      annotate depth
        (Printf.sprintf "SelectSub %s" (Algebra.cond_to_string c))
        p
    | Algebra.Project (cols, _) ->
      annotate depth (Printf.sprintf "Project [%s]" (String.concat ", " cols)) p
    | Algebra.Join (Some e, _, _) ->
      annotate depth (Printf.sprintf "Join on %s" (Expr.to_string e)) p
    | Algebra.Join (None, _, _) -> annotate depth "Cross" p
    | Algebra.Left_join (e, _, _) ->
      annotate depth (Printf.sprintf "LeftJoin on %s" (Expr.to_string e)) p
    | Algebra.Union _ -> annotate depth "Union" p
    | Algebra.Intersect _ -> annotate depth "Intersect" p
    | Algebra.Diff _ -> annotate depth "Diff" p
    | Algebra.Rename (a, _) -> annotate depth (Printf.sprintf "Rename %s" a) p
    | Algebra.Distinct _ -> annotate depth "Distinct" p
    | Algebra.Order_by (_, _) -> annotate depth "OrderBy" p
    | Algebra.Limit (n, _) -> annotate depth (Printf.sprintf "Limit %d" n) p
    | Algebra.Group_by (keys, _, _) ->
      annotate depth (Printf.sprintf "GroupBy [%s]" (String.concat ", " keys)) p);
    match p with
    | Algebra.Scan _ -> ()
    | Algebra.Select (_, x)
    | Algebra.Select_sub (_, x)
    | Algebra.Project (_, x)
    | Algebra.Rename (_, x)
    | Algebra.Distinct x
    | Algebra.Order_by (_, x)
    | Algebra.Limit (_, x)
    | Algebra.Group_by (_, _, x) ->
      go (depth + 1) x
    | Algebra.Join (_, a, b)
    | Algebra.Left_join (_, a, b)
    | Algebra.Union (a, b)
    | Algebra.Intersect (a, b)
    | Algebra.Diff (a, b) ->
      go (depth + 1) a;
      go (depth + 1) b
  in
  go 0 plan;
  Ok (String.trim (Buffer.contents buf))
