(** Lexer for the SQL subset.

    Produces a token list consumed by {!Sql_parser}.  Keywords are
    recognized case-insensitively; identifiers keep their original case.
    Qualified names ([t.c]) are lexed as a single [IDENT] when the dot is
    immediately surrounded by identifier characters. *)

type token =
  | IDENT of string  (** possibly qualified: [Proposal.Funding] *)
  | INT of int
  | FLOAT of float
  | STRING of string  (** single-quoted, quotes already stripped *)
  | KW of string  (** uppercased keyword: [SELECT], [FROM], … *)
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | PLUS
  | MINUS
  | SLASH
  | SEMI
  | EOF

val keywords : string list
(** Every word lexed as [KW]. *)

val tokenize : string -> (token list, string) result
(** [tokenize s] lexes the whole input (ending with [EOF]).  Errors carry
    the offending position. *)

val token_to_string : token -> string
