type t = Value.t array

let make vs = vs
let of_list = Array.of_list
let arity = Array.length
let get t i = t.(i)
let values = Array.copy
let append = Array.append
let project t idx = Array.map (fun i -> t.(i)) idx

let conforms t s =
  arity t = Schema.arity s
  && Array.for_all
       (fun i -> Value.conforms t.(i) (Schema.column_at s i).Schema.cty)
       (Array.init (arity t) Fun.id)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else begin
    let rec go i =
      if i = la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let equal a b = compare a b = 0

let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t

let to_string t =
  "(" ^ String.concat ", " (Array.to_list (Array.map Value.to_string t)) ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)
