type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | STAR
  | COMMA
  | LPAREN
  | RPAREN
  | EQ
  | NEQ
  | LT
  | LEQ
  | GT
  | GEQ
  | PLUS
  | MINUS
  | SLASH
  | SEMI
  | EOF

let keywords =
  [
    "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "AS"; "JOIN";
    "INNER"; "LEFT"; "OUTER"; "ON"; "GROUP"; "BY"; "ORDER"; "ASC"; "DESC"; "LIMIT"; "UNION";
    "INTERSECT"; "EXCEPT"; "IS"; "NULL"; "LIKE"; "IN"; "EXISTS"; "BETWEEN"; "TRUE";
    "FALSE"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX"; "ECOUNT"; "ESUM"; "HAVING";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let err = ref None in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  let fail msg = err := Some (Printf.sprintf "lex error at %d: %s" !i msg) in
  while !err = None && !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      (* allow one qualification dot: ident.ident *)
      if
        !i < n - 1
        && s.[!i] = '.'
        && is_ident_start s.[!i + 1]
      then begin
        incr i;
        while !i < n && is_ident_char s.[!i] do
          incr i
        done
      end;
      let word = String.sub s start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (KW upper) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      let is_float =
        !i < n - 1 && s.[!i] = '.' && is_digit s.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit s.[!i] do
          incr i
        done;
        (* exponent *)
        if !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
          while !i < n && is_digit s.[!i] do
            incr i
          done
        end;
        match float_of_string_opt (String.sub s start (!i - start)) with
        | Some f -> emit (FLOAT f)
        | None -> fail "malformed number"
      end
      else
        match int_of_string_opt (String.sub s start (!i - start)) with
        | Some v -> emit (INT v)
        | None -> fail "malformed integer"
    end
    else if c = '\'' then begin
      (* string literal with '' escaping *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !err = None do
        if !i >= n then fail "unterminated string literal"
        else if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      if !err = None then emit (STRING (Buffer.contents buf))
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "<=" ->
        emit LEQ;
        i := !i + 2
      | ">=" ->
        emit GEQ;
        i := !i + 2
      | "<>" | "!=" ->
        emit NEQ;
        i := !i + 2
      | _ -> (
        (match c with
        | '*' -> emit STAR
        | ',' -> emit COMMA
        | '(' -> emit LPAREN
        | ')' -> emit RPAREN
        | '=' -> emit EQ
        | '<' -> emit LT
        | '>' -> emit GT
        | '+' -> emit PLUS
        | '-' -> emit MINUS
        | '/' -> emit SLASH
        | ';' -> emit SEMI
        | c -> fail (Printf.sprintf "unexpected character %C" c));
        incr i)
    end
  done;
  match !err with
  | Some msg -> Error msg
  | None -> Ok (List.rev (EOF :: !toks))

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> "'" ^ s ^ "'"
  | KW k -> k
  | STAR -> "*"
  | COMMA -> ","
  | LPAREN -> "("
  | RPAREN -> ")"
  | EQ -> "="
  | NEQ -> "<>"
  | LT -> "<"
  | LEQ -> "<="
  | GT -> ">"
  | GEQ -> ">="
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | SEMI -> ";"
  | EOF -> "<eof>"
