type order = Asc | Desc

type agg_fun =
  | Count
  | CountStar
  | Sum
  | Avg
  | Min
  | Max
  | Expected_count
  | Expected_sum

type agg = { fn : agg_fun; arg : string option; out : string }

type t =
  | Scan of string
  | Select of Expr.t * t
  | Select_sub of cond * t
  | Project of string list * t
  | Join of Expr.t option * t * t
  | Left_join of Expr.t * t * t
  | Union of t * t
  | Intersect of t * t
  | Diff of t * t
  | Rename of string * t
  | Distinct of t
  | Order_by of (string * order) list * t
  | Limit of int * t
  | Group_by of string list * agg list * t

and cond =
  | Pred of Expr.t
  | In_sub of Expr.t * t
  | Exists_sub of t
  | Not_c of cond
  | And_c of cond * cond
  | Or_c of cond * cond

let scan name = Scan name
let select pred plan = Select (pred, plan)
let project cols plan = Project (cols, plan)
let join pred a b = Join (Some pred, a, b)
let left_join pred a b = Left_join (pred, a, b)
let cross a b = Join (None, a, b)

let agg_fun_name = function
  | Count -> "COUNT"
  | CountStar -> "COUNT(*)"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"
  | Expected_count -> "ECOUNT(*)"
  | Expected_sum -> "ESUM"

let rec cond_as_expr = function
  | Pred e -> Some e
  | In_sub _ | Exists_sub _ -> None
  | Not_c c -> Option.map (fun e -> Expr.Not e) (cond_as_expr c)
  | And_c (a, b) -> (
    match (cond_as_expr a, cond_as_expr b) with
    | Some ea, Some eb -> Some (Expr.And (ea, eb))
    | _ -> None)
  | Or_c (a, b) -> (
    match (cond_as_expr a, cond_as_expr b) with
    | Some ea, Some eb -> Some (Expr.Or (ea, eb))
    | _ -> None)

let ( let* ) = Result.bind

let lookup schema name =
  match Schema.find_index schema name with
  | Ok i -> Ok i
  | Error (Schema.Not_found_col n) ->
    Error (Printf.sprintf "unknown column %S" n)
  | Error (Schema.Ambiguous (n, cands)) ->
    Error
      (Printf.sprintf "ambiguous column %S (matches %s)" n
         (String.concat ", " cands))

let agg_output_ty schema a =
  match a.fn with
  | CountStar -> Ok Value.TInt
  | Expected_count -> Ok Value.TFloat
  | Expected_sum -> (
    match a.arg with
    | None -> Error "ESUM requires an argument column"
    | Some c ->
      let* i = lookup schema c in
      (match (Schema.column_at schema i).Schema.cty with
      | Value.TInt | Value.TFloat -> Ok Value.TFloat
      | _ -> Error (Printf.sprintf "ESUM over non-numeric column %S" c)))
  | Count -> (
    match a.arg with
    | None -> Error "COUNT requires an argument column"
    | Some c ->
      let* _ = lookup schema c in
      Ok Value.TInt)
  | Sum | Avg | Min | Max -> (
    match a.arg with
    | None -> Error (agg_fun_name a.fn ^ " requires an argument column")
    | Some c ->
      let* i = lookup schema c in
      let ty = (Schema.column_at schema i).Schema.cty in
      (match (a.fn, ty) with
      | (Min | Max), _ -> Ok ty
      | (Sum | Avg), (Value.TInt | Value.TFloat) ->
        Ok (if a.fn = Avg then Value.TFloat else ty)
      | (Sum | Avg), _ ->
        Error
          (Printf.sprintf "%s over non-numeric column %S" (agg_fun_name a.fn) c)
      | _ -> assert false))

let rec output_schema db plan =
  match plan with
  | Scan name -> (
    match Database.relation db name with
    | Some r -> Ok (Schema.qualify name (Relation.schema r))
    | None -> Error (Printf.sprintf "unknown relation %S" name))
  | Select (pred, p) ->
    let* s = output_schema db p in
    (* type-check the predicate's column references *)
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          let* _ = lookup s c in
          Ok ())
        (Ok ()) (Expr.columns pred)
    in
    Ok s
  | Select_sub (cond, p) ->
    let* s = output_schema db p in
    let* () = check_cond db s cond in
    Ok s
  | Project (cols, p) ->
    let* s = output_schema db p in
    let* s', _ =
      match Schema.project s cols with
      | Ok x -> Ok x
      | Error (Schema.Not_found_col n) ->
        Error (Printf.sprintf "unknown column %S in projection" n)
      | Error (Schema.Ambiguous (n, cands)) ->
        Error
          (Printf.sprintf "ambiguous column %S (matches %s)" n
             (String.concat ", " cands))
    in
    Ok s'
  | Join (pred, a, b) ->
    let* sa = output_schema db a in
    let* sb = output_schema db b in
    let* s =
      match Schema.concat sa sb with
      | s -> Ok s
      | exception Invalid_argument msg -> Error msg
    in
    let* () =
      match pred with
      | None -> Ok ()
      | Some e ->
        List.fold_left
          (fun acc c ->
            let* () = acc in
            let* _ = lookup s c in
            Ok ())
          (Ok ()) (Expr.columns e)
    in
    Ok s
  | Left_join (pred, a, b) ->
    let* sa = output_schema db a in
    let* sb = output_schema db b in
    let* s =
      match Schema.concat sa sb with
      | s -> Ok s
      | exception Invalid_argument msg -> Error msg
    in
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          let* _ = lookup s c in
          Ok ())
        (Ok ()) (Expr.columns pred)
    in
    Ok s
  | Union (a, b) | Intersect (a, b) | Diff (a, b) ->
    let* sa = output_schema db a in
    let* sb = output_schema db b in
    if Schema.union_compatible sa sb then Ok sa
    else
      Error
        (Printf.sprintf "set operation over incompatible schemas (%s) vs (%s)"
           (Schema.to_string sa) (Schema.to_string sb))
  | Rename (alias, p) ->
    let* s = output_schema db p in
    Ok (Schema.qualify alias s)
  | Distinct p -> output_schema db p
  | Order_by (keys, p) ->
    let* s = output_schema db p in
    let* () =
      List.fold_left
        (fun acc (c, _) ->
          let* () = acc in
          let* _ = lookup s c in
          Ok ())
        (Ok ()) keys
    in
    Ok s
  | Limit (n, p) ->
    if n < 0 then Error "LIMIT must be non-negative" else output_schema db p
  | Group_by (keys, aggs, p) ->
    let* s = output_schema db p in
    let* key_cols =
      List.fold_left
        (fun acc c ->
          let* cols = acc in
          let* i = lookup s c in
          Ok ({ (Schema.column_at s i) with Schema.cname = c } :: cols))
        (Ok []) keys
    in
    let* agg_cols =
      List.fold_left
        (fun acc a ->
          let* cols = acc in
          let* ty = agg_output_ty s a in
          Ok ({ Schema.cname = a.out; cty = ty } :: cols))
        (Ok []) aggs
    in
    (try Ok (Schema.make (List.rev key_cols @ List.rev agg_cols))
     with Invalid_argument msg -> Error msg)

and check_cond db s = function
  | Pred e ->
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let* _ = lookup s c in
        Ok ())
      (Ok ()) (Expr.columns e)
  | In_sub (e, sub) ->
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          let* _ = lookup s c in
          Ok ())
        (Ok ()) (Expr.columns e)
    in
    let* sub_schema = output_schema db sub in
    if Schema.arity sub_schema <> 1 then
      Error
        (Printf.sprintf "IN subquery must return one column, got (%s)"
           (Schema.to_string sub_schema))
    else Ok ()
  | Exists_sub sub ->
    let* _ = output_schema db sub in
    Ok ()
  | Not_c c -> check_cond db s c
  | And_c (a, b) | Or_c (a, b) ->
    let* () = check_cond db s a in
    check_cond db s b

let base_relations plan =
  let acc = ref [] in
  let add n = if not (List.mem n !acc) then acc := n :: !acc in
  let rec go = function
    | Scan n -> add n
    | Select (_, p) | Project (_, p) | Rename (_, p) | Distinct p
    | Order_by (_, p) | Limit (_, p) | Group_by (_, _, p) ->
      go p
    | Select_sub (c, p) ->
      go_cond c;
      go p
    | Join (_, a, b)
    | Left_join (_, a, b)
    | Union (a, b)
    | Intersect (a, b)
    | Diff (a, b) ->
      go a;
      go b
  and go_cond = function
    | Pred _ -> ()
    | In_sub (_, sub) -> go sub
    | Exists_sub sub -> go sub
    | Not_c c -> go_cond c
    | And_c (a, b) | Or_c (a, b) ->
      go_cond a;
      go_cond b
  in
  go plan;
  List.rev !acc

let rec cond_to_string = function
  | Pred e -> Expr.to_string e
  | In_sub (e, _) -> Printf.sprintf "(%s IN <subquery>)" (Expr.to_string e)
  | Exists_sub _ -> "(EXISTS <subquery>)"
  | Not_c c -> Printf.sprintf "(NOT %s)" (cond_to_string c)
  | And_c (a, b) ->
    Printf.sprintf "(%s AND %s)" (cond_to_string a) (cond_to_string b)
  | Or_c (a, b) ->
    Printf.sprintf "(%s OR %s)" (cond_to_string a) (cond_to_string b)

let to_string plan =
  let buf = Buffer.create 128 in
  let pad depth = String.make (2 * depth) ' ' in
  let rec go depth plan =
    Buffer.add_string buf (pad depth);
    (match plan with
    | Scan n -> Buffer.add_string buf (Printf.sprintf "Scan %s\n" n)
    | Select (e, p) ->
      Buffer.add_string buf (Printf.sprintf "Select %s\n" (Expr.to_string e));
      go (depth + 1) p
    | Select_sub (c, p) ->
      Buffer.add_string buf (Printf.sprintf "SelectSub %s\n" (cond_to_string c));
      go (depth + 1) p
    | Project (cols, p) ->
      Buffer.add_string buf
        (Printf.sprintf "Project [%s]\n" (String.concat ", " cols));
      go (depth + 1) p
    | Join (pred, a, b) ->
      Buffer.add_string buf
        (match pred with
        | Some e -> Printf.sprintf "Join on %s\n" (Expr.to_string e)
        | None -> "Cross\n");
      go (depth + 1) a;
      go (depth + 1) b
    | Left_join (pred, a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "LeftJoin on %s\n" (Expr.to_string pred));
      go (depth + 1) a;
      go (depth + 1) b
    | Union (a, b) ->
      Buffer.add_string buf "Union\n";
      go (depth + 1) a;
      go (depth + 1) b
    | Intersect (a, b) ->
      Buffer.add_string buf "Intersect\n";
      go (depth + 1) a;
      go (depth + 1) b
    | Diff (a, b) ->
      Buffer.add_string buf "Diff\n";
      go (depth + 1) a;
      go (depth + 1) b
    | Rename (alias, p) ->
      Buffer.add_string buf (Printf.sprintf "Rename %s\n" alias);
      go (depth + 1) p
    | Distinct p ->
      Buffer.add_string buf "Distinct\n";
      go (depth + 1) p
    | Order_by (keys, p) ->
      Buffer.add_string buf
        (Printf.sprintf "OrderBy [%s]\n"
           (String.concat ", "
              (List.map
                 (fun (c, o) -> c ^ (match o with Asc -> " asc" | Desc -> " desc"))
                 keys)));
      go (depth + 1) p
    | Limit (n, p) ->
      Buffer.add_string buf (Printf.sprintf "Limit %d\n" n);
      go (depth + 1) p
    | Group_by (keys, aggs, p) ->
      Buffer.add_string buf
        (Printf.sprintf "GroupBy [%s] aggs [%s]\n" (String.concat ", " keys)
           (String.concat ", "
              (List.map
                 (fun a ->
                   Printf.sprintf "%s(%s) as %s" (agg_fun_name a.fn)
                     (Option.value ~default:"*" a.arg)
                     a.out)
                 aggs)));
      go (depth + 1) p);
  in
  go 0 plan;
  (* drop trailing newline *)
  let s = Buffer.contents buf in
  if String.length s > 0 && s.[String.length s - 1] = '\n' then
    String.sub s 0 (String.length s - 1)
  else s

let pp ppf plan = Format.pp_print_string ppf (to_string plan)
