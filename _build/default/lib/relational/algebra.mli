(** Relational algebra plans.

    The evaluator ({!Eval}) interprets these plans bottom-up, producing
    result tuples annotated with lineage formulas.  Set semantics is used
    throughout (as in the paper and in Trio-style lineage systems):
    duplicate-eliminating operators merge lineage with disjunction.

    Aggregation uses {e existence} lineage: a group's lineage is the
    disjunction of its members' lineages, i.e. the confidence of a group row
    is the probability that the group is non-empty.  The paper does not
    evaluate aggregates; this choice keeps the confidence semantics
    well-defined and is documented in DESIGN.md. *)

type order = Asc | Desc

type agg_fun =
  | Count
  | CountStar
  | Sum
  | Avg
  | Min
  | Max
  | Expected_count
      (** ECOUNT star: the expected number of group members present,
          [Σ P(lineage_i)] under tuple independence — the standard
          probabilistic-database aggregate semantics *)
  | Expected_sum
      (** [ESUM(col)]: [Σ P(lineage_i) * v_i] over non-NULL members *)

type agg = { fn : agg_fun; arg : string option; out : string }
(** [arg] is [None] only for [CountStar].  [out] names the result column. *)

type t =
  | Scan of string  (** base relation by name *)
  | Select of Expr.t * t
  | Select_sub of cond * t
      (** selection whose condition contains (uncorrelated) subqueries;
          see {!cond} for the membership-event semantics *)
  | Project of string list * t  (** duplicate-eliminating projection *)
  | Join of Expr.t option * t * t  (** theta join; [None] = cross product *)
  | Left_join of Expr.t * t * t
      (** left outer join: unmatched left rows are padded with NULLs; the
          padded row's lineage is [l ∧ ¬(∨ matching right lineages)] *)
  | Union of t * t
  | Intersect of t * t
  | Diff of t * t
  | Rename of string * t  (** re-qualify all columns with a new alias *)
  | Distinct of t
  | Order_by of (string * order) list * t
  | Limit of int * t
  | Group_by of string list * agg list * t

(** Conditions with embedded subqueries.

    Plain predicates ([Pred]) evaluate deterministically per row; the
    subquery forms are {e membership events} whose truth depends on which
    subquery rows exist in a possible world:

    - [In_sub (e, sub)] holds when some sub-row equal to [e]'s value is
      present — it contributes the disjunction of the matching sub-rows'
      lineages to the outer row's lineage;
    - [Exists_sub sub] holds when the (uncorrelated) subquery is non-empty.

    Boolean combinations compose at the formula level, so e.g.
    [Not_c (In_sub ...)] contributes a negated disjunction (SQL [NOT IN]).
    A NULL left-hand value never matches ([In_sub] is false, its negation
    true) — a deliberate simplification of SQL's 3-valued [NOT IN].
    Subqueries must be uncorrelated (they cannot reference outer columns);
    correlation is reported as an unknown-column error at evaluation. *)
and cond =
  | Pred of Expr.t
  | In_sub of Expr.t * t
  | Exists_sub of t
  | Not_c of cond
  | And_c of cond * cond
  | Or_c of cond * cond

val scan : string -> t
val select : Expr.t -> t -> t
val project : string list -> t -> t
val join : Expr.t -> t -> t -> t
val left_join : Expr.t -> t -> t -> t
val cross : t -> t -> t

val agg_fun_name : agg_fun -> string

val cond_to_string : cond -> string

val cond_as_expr : cond -> Expr.t option
(** [Some e] when the condition contains no subqueries (so a plain
    [Select] suffices); used by the SQL planner. *)

val output_schema : Database.t -> t -> (Schema.t, string) result
(** [output_schema db plan] infers the result schema without evaluating.
    Fails with a message for unknown relations/columns, arity mismatches in
    set operations, or aggregates over non-numeric columns. *)

val base_relations : t -> string list
(** Names of relations scanned by the plan, without duplicates. *)

val to_string : t -> string
(** Multi-line indented plan rendering. *)

val pp : Format.formatter -> t -> unit
