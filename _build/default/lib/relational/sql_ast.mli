(** Abstract syntax for the SQL subset, produced by {!Sql_parser} and
    consumed by {!Sql_planner}. *)

type select_item =
  | Star  (** [SELECT *] *)
  | Column of string * string option  (** column, optional AS alias *)
  | Aggregate of Algebra.agg_fun * string option * string option
      (** function, argument column ([None] for COUNT star), optional alias *)

type join_kind = Inner_join | Left_outer_join

type cond =
  | Cpred of Expr.t  (** plain predicate *)
  | Cin of Expr.t * t  (** [e IN (subquery)] *)
  | Cexists of t  (** [EXISTS (subquery)] *)
  | Cnot of cond
  | Cand of cond * cond
  | Cor of cond * cond

and table_ref =
  | Tref of { table : string; alias : string option }
      (** base relation or view, optionally aliased *)
  | Tsub of { sub : t; salias : string }
      (** derived table: [FROM (SELECT ...) AS salias] *)

and join_clause = { jkind : join_kind; jtable : table_ref; jcond : Expr.t }

and select_stmt = {
  distinct : bool;
  items : select_item list;
  from : table_ref;  (** first FROM entry *)
  joins : join_clause list;  (** explicit JOIN … ON … *)
  cross : table_ref list;  (** comma-separated FROM entries after the first *)
  where : cond option;
      (** WHERE condition; may embed uncorrelated IN/EXISTS subqueries *)
  group_by : string list;
  having : Expr.t option;
  order_by : (string * Algebra.order) list;
  limit : int option;
}

and t =
  | Select of select_stmt
  | Union of t * t
  | Intersect of t * t
  | Except of t * t

val to_string : t -> string
(** Round-trippable-ish SQL rendering, for error messages and logs. *)

val cond_to_string : cond -> string
