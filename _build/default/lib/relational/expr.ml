type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type arith = Add | Sub | Mul | Div

type t =
  | Col of string
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Neg of t
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t
  | Like of t * string
  | In of t * Value.t list
  | Between of t * t * t

let col c = Col c
let int i = Lit (Value.Int i)
let float f = Lit (Value.Float f)
let str s = Lit (Value.String s)
let bool b = Lit (Value.Bool b)
let null = Lit Value.Null

let ( =% ) a b = Cmp (Eq, a, b)
let ( <>% ) a b = Cmp (Neq, a, b)
let ( <% ) a b = Cmp (Lt, a, b)
let ( <=% ) a b = Cmp (Leq, a, b)
let ( >% ) a b = Cmp (Gt, a, b)
let ( >=% ) a b = Cmp (Geq, a, b)
let ( &&% ) a b = And (a, b)
let ( ||% ) a b = Or (a, b)

let columns e =
  let acc = ref [] in
  let add c = if not (List.mem c !acc) then acc := c :: !acc in
  let rec go = function
    | Col c -> add c
    | Lit _ -> ()
    | Cmp (_, a, b) | Arith (_, a, b) | And (a, b) | Or (a, b) ->
      go a;
      go b
    | Neg a | Not a | IsNull a | IsNotNull a | Like (a, _) | In (a, _) -> go a
    | Between (a, lo, hi) ->
      go a;
      go lo;
      go hi
  in
  go e;
  List.rev !acc

let like_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* memoized recursion over (pattern index, string index) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pattern.[pi] with
          | '%' -> (si <= ns && go (pi + 1) si) || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && s.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.add memo (pi, si) r;
      r
  in
  go 0 0

let ( let* ) = Result.bind

let numeric what v =
  match v with
  | Value.Int i -> Ok (float_of_int i)
  | Value.Float f -> Ok f
  | Value.Null -> Ok nan (* handled by callers via is_null checks *)
  | v -> Error (Printf.sprintf "%s: expected number, got %s" what (Value.to_string v))

let is_null = function Value.Null -> true | _ -> false

(* Keep integer arithmetic exact when both operands are Int (except Div,
   which is SQL-real division here). *)
let eval_arith op a b =
  if is_null a || is_null b then Ok Value.Null
  else
    match (op, a, b) with
    | Add, Value.Int x, Value.Int y -> Ok (Value.Int (x + y))
    | Sub, Value.Int x, Value.Int y -> Ok (Value.Int (x - y))
    | Mul, Value.Int x, Value.Int y -> Ok (Value.Int (x * y))
    | _ ->
      let* x = numeric "arith" a in
      let* y = numeric "arith" b in
      (match op with
      | Add -> Ok (Value.Float (x +. y))
      | Sub -> Ok (Value.Float (x -. y))
      | Mul -> Ok (Value.Float (x *. y))
      | Div -> if y = 0.0 then Ok Value.Null else Ok (Value.Float (x /. y)))

let cmp_to_bool3 op (flag, c) =
  match flag with
  | Value.Unknown3 -> Value.Unknown3
  | _ ->
    let b =
      match op with
      | Eq -> c = 0
      | Neq -> c <> 0
      | Lt -> c < 0
      | Leq -> c <= 0
      | Gt -> c > 0
      | Geq -> c >= 0
    in
    Value.bool3_of_bool b

let value_of_bool3 = function
  | Value.True3 -> Value.Bool true
  | Value.False3 -> Value.Bool false
  | Value.Unknown3 -> Value.Null

let bool3_of_value what = function
  | Value.Bool true -> Ok Value.True3
  | Value.Bool false -> Ok Value.False3
  | Value.Null -> Ok Value.Unknown3
  | v ->
    Error (Printf.sprintf "%s: expected boolean, got %s" what (Value.to_string v))

let rec eval schema tup e =
  match e with
  | Col name -> (
    match Schema.find_index schema name with
    | Ok i -> Ok (Tuple.get tup i)
    | Error (Schema.Not_found_col n) -> Error (Printf.sprintf "unknown column %S" n)
    | Error (Schema.Ambiguous (n, cands)) ->
      Error
        (Printf.sprintf "ambiguous column %S (matches %s)" n
           (String.concat ", " cands)))
  | Lit v -> Ok v
  | Cmp (op, a, b) ->
    let* va = eval schema tup a in
    let* vb = eval schema tup b in
    if is_null va || is_null vb then Ok Value.Null
    else (
      try Ok (value_of_bool3 (cmp_to_bool3 op (Value.cmp_sql va vb)))
      with Invalid_argument msg -> Error msg)
  | Arith (op, a, b) ->
    let* va = eval schema tup a in
    let* vb = eval schema tup b in
    eval_arith op va vb
  | Neg a -> (
    let* va = eval schema tup a in
    match va with
    | Value.Null -> Ok Value.Null
    | Value.Int i -> Ok (Value.Int (-i))
    | Value.Float f -> Ok (Value.Float (-.f))
    | v -> Error (Printf.sprintf "negation: expected number, got %s" (Value.to_string v)))
  | And (a, b) ->
    let* ba = eval_bool3 schema tup a in
    let* bb = eval_bool3 schema tup b in
    Ok (value_of_bool3 (Value.and3 ba bb))
  | Or (a, b) ->
    let* ba = eval_bool3 schema tup a in
    let* bb = eval_bool3 schema tup b in
    Ok (value_of_bool3 (Value.or3 ba bb))
  | Not a ->
    let* ba = eval_bool3 schema tup a in
    Ok (value_of_bool3 (Value.not3 ba))
  | IsNull a ->
    let* va = eval schema tup a in
    Ok (Value.Bool (is_null va))
  | IsNotNull a ->
    let* va = eval schema tup a in
    Ok (Value.Bool (not (is_null va)))
  | Like (a, pattern) -> (
    let* va = eval schema tup a in
    match va with
    | Value.Null -> Ok Value.Null
    | Value.String s -> Ok (Value.Bool (like_match ~pattern s))
    | v -> Error (Printf.sprintf "LIKE: expected string, got %s" (Value.to_string v)))
  | In (a, vs) ->
    let* va = eval schema tup a in
    if is_null va then Ok Value.Null
    else Ok (Value.Bool (List.exists (Value.equal va) vs))
  | Between (a, lo, hi) ->
    eval schema tup (And (Cmp (Geq, a, lo), Cmp (Leq, a, hi)))

and eval_bool3 schema tup e =
  let* v = eval schema tup e in
  bool3_of_value "predicate" v

let eval_pred schema tup e =
  let* b3 = eval_bool3 schema tup e in
  Ok (Value.is_true b3)

let cmp_str = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Leq -> "<="
  | Gt -> ">"
  | Geq -> ">="

let arith_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec to_string = function
  | Col c -> c
  | Lit v -> Value.to_sql v
  | Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (cmp_str op) (to_string b)
  | Arith (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (to_string a) (arith_str op) (to_string b)
  | Neg a -> Printf.sprintf "(-%s)" (to_string a)
  | And (a, b) -> Printf.sprintf "(%s AND %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s OR %s)" (to_string a) (to_string b)
  | Not a -> Printf.sprintf "(NOT %s)" (to_string a)
  | IsNull a -> Printf.sprintf "(%s IS NULL)" (to_string a)
  | IsNotNull a -> Printf.sprintf "(%s IS NOT NULL)" (to_string a)
  | Like (a, p) -> Printf.sprintf "(%s LIKE %s)" (to_string a) (Value.to_sql (Value.String p))
  | In (a, vs) ->
    Printf.sprintf "(%s IN (%s))" (to_string a)
      (String.concat ", " (List.map Value.to_sql vs))
  | Between (a, lo, hi) ->
    Printf.sprintf "(%s BETWEEN %s AND %s)" (to_string a) (to_string lo)
      (to_string hi)

let pp ppf e = Format.pp_print_string ppf (to_string e)
