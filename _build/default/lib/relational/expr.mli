(** Scalar and predicate expressions over tuple fields.

    Expressions appear in selection predicates, theta-join conditions and
    projection lists.  Evaluation uses SQL three-valued logic: comparisons
    against NULL yield unknown, and WHERE keeps only rows whose predicate is
    definitely true. *)

type cmp = Eq | Neq | Lt | Leq | Gt | Geq

type arith = Add | Sub | Mul | Div

type t =
  | Col of string  (** column reference, possibly qualified *)
  | Lit of Value.t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Neg of t  (** numeric negation *)
  | And of t * t
  | Or of t * t
  | Not of t
  | IsNull of t
  | IsNotNull of t
  | Like of t * string  (** SQL LIKE with [%] and [_] wildcards *)
  | In of t * Value.t list
  | Between of t * t * t  (** [Between (e, lo, hi)] *)

val col : string -> t
val int : int -> t
val float : float -> t
val str : string -> t
val bool : bool -> t
val null : t

val ( =% ) : t -> t -> t
(** Equality comparison (the [%] avoids clashing with Stdlib). *)

val ( <>% ) : t -> t -> t
val ( <% ) : t -> t -> t
val ( <=% ) : t -> t -> t
val ( >% ) : t -> t -> t
val ( >=% ) : t -> t -> t
val ( &&% ) : t -> t -> t
val ( ||% ) : t -> t -> t

val columns : t -> string list
(** Column names referenced, in first-occurrence order, without duplicates. *)

val eval : Schema.t -> Tuple.t -> t -> (Value.t, string) result
(** [eval schema tup e] evaluates [e] against one row.  Errors are
    descriptive strings (unknown column, type mismatch, division by zero
    yields [Null] rather than an error, as in SQL). *)

val eval_pred : Schema.t -> Tuple.t -> t -> (bool, string) result
(** [eval_pred schema tup e] evaluates [e] as a predicate under
    three-valued logic; unknown collapses to [false] (WHERE semantics). *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE matching ([%] = any run, [_] = any single char), exposed for
    tests. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
