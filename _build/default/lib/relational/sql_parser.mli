(** Recursive-descent parser for the SQL subset.

    Grammar (informal):
    {v
    query   ::= select { (UNION | INTERSECT | EXCEPT) select } [';']
    select  ::= SELECT [DISTINCT] items FROM tref { ',' tref }
                { JOIN tref ON expr } [WHERE expr]
                [GROUP BY col { ',' col }] [HAVING expr]
                [ORDER BY col [ASC|DESC] { ',' ... }] [LIMIT int]
    items   ::= '*' | item { ',' item }
    item    ::= col [AS ident] | AGG '(' col ')' [AS ident] | COUNT '(' '*' ')'
    tref    ::= ident [AS ident | ident]
    expr    ::= standard precedence: OR < AND < NOT < comparison < '+','-'
                < '*','/' < unary '-'; primaries are literals, columns,
                parenthesised expressions; predicates include LIKE, IN,
                BETWEEN, IS [NOT] NULL
    v} *)

val parse : string -> (Sql_ast.t, string) result
(** [parse sql] lexes and parses one query. *)

val parse_expr : string -> (Expr.t, string) result
(** [parse_expr s] parses a standalone expression — used by the policy DSL
    and the CLI. *)
