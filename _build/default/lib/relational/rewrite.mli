(** Algebraic plan rewriting (a small rule-based query optimizer).

    The engine evaluates plans as written; this module applies standard
    semantics-preserving rewrites so that SQL compiled naively (selection
    above a chain of joins) still evaluates efficiently:

    - adjacent selections merge ([σp(σq(x)) = σ(p ∧ q)(x)]);
    - selections push below order-by, through projections and set
      operations, into the matching side of inner joins, and into the left
      side of left outer joins (left-column predicates only);
    - [Distinct] collapses over duplicate-eliminating children;
    - nested [Limit]s collapse to the smaller bound;
    - trivially-true selections disappear.

    Rewrites never change the annotated result: the same tuples with the
    same lineage, up to row order before an explicit ORDER BY (the test
    suite checks this differentially on random plans).

    Pushing decisions need column resolution, so rewriting takes the
    database (for base-relation schemas) and can fail on the same name
    errors evaluation would report. *)

val optimize : Database.t -> Algebra.t -> (Algebra.t, string) result
(** [optimize db plan] applies the rules bottom-up to a fixpoint (bounded
    by a generous iteration cap). *)

val push_selections : Database.t -> Algebra.t -> (Algebra.t, string) result
(** Selection pushdown only — exposed for tests and ablation. *)
