module L = Sql_lexer

exception Parse_error of string

type state = { mutable toks : L.token list }

let peek st = match st.toks with [] -> L.EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail_tok expected st =
  raise
    (Parse_error
       (Printf.sprintf "expected %s, found %s" expected
          (L.token_to_string (peek st))))

let expect st tok what =
  if peek st = tok then advance st else fail_tok what st

let expect_kw st kw = expect st (L.KW kw) kw

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (L.KW kw)

let ident st =
  match peek st with
  | L.IDENT s ->
    advance st;
    s
  | _ -> fail_tok "identifier" st

(* ------------------------------------------------------------------ *)
(* Expressions *)

let agg_of_kw = function
  | "COUNT" -> Some Algebra.Count
  | "SUM" -> Some Algebra.Sum
  | "AVG" -> Some Algebra.Avg
  | "MIN" -> Some Algebra.Min
  | "MAX" -> Some Algebra.Max
  | "ECOUNT" -> Some Algebra.Expected_count
  | "ESUM" -> Some Algebra.Expected_sum
  | _ -> None

let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Expr.Or (lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Expr.And (lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Expr.Not (parse_not st) else parse_predicate st

and parse_predicate st =
  let lhs = parse_additive st in
  parse_predicate_tail st lhs

and parse_predicate_tail st lhs =
  match peek st with
  | L.EQ ->
    advance st;
    Expr.Cmp (Expr.Eq, lhs, parse_additive st)
  | L.NEQ ->
    advance st;
    Expr.Cmp (Expr.Neq, lhs, parse_additive st)
  | L.LT ->
    advance st;
    Expr.Cmp (Expr.Lt, lhs, parse_additive st)
  | L.LEQ ->
    advance st;
    Expr.Cmp (Expr.Leq, lhs, parse_additive st)
  | L.GT ->
    advance st;
    Expr.Cmp (Expr.Gt, lhs, parse_additive st)
  | L.GEQ ->
    advance st;
    Expr.Cmp (Expr.Geq, lhs, parse_additive st)
  | L.KW "IS" ->
    advance st;
    let negated = accept_kw st "NOT" in
    expect_kw st "NULL";
    if negated then Expr.IsNotNull lhs else Expr.IsNull lhs
  | L.KW "LIKE" ->
    advance st;
    (match peek st with
    | L.STRING p ->
      advance st;
      Expr.Like (lhs, p)
    | _ -> fail_tok "string pattern after LIKE" st)
  | L.KW "BETWEEN" ->
    advance st;
    let lo = parse_additive st in
    expect_kw st "AND";
    let hi = parse_additive st in
    Expr.Between (lhs, lo, hi)
  | L.KW "IN" ->
    advance st;
    expect st L.LPAREN "(";
    let vs = parse_in_values st in
    expect st L.RPAREN ")";
    Expr.In (lhs, vs)
  | _ -> lhs

and parse_in_values st =
  let rec values acc =
    let v =
      match peek st with
      | L.INT i ->
        advance st;
        Value.Int i
      | L.FLOAT f ->
        advance st;
        Value.Float f
      | L.STRING s ->
        advance st;
        Value.String s
      | L.KW "TRUE" ->
        advance st;
        Value.Bool true
      | L.KW "FALSE" ->
        advance st;
        Value.Bool false
      | L.KW "NULL" ->
        advance st;
        Value.Null
      | _ -> fail_tok "literal in IN list" st
    in
    if accept st L.COMMA then values (v :: acc) else List.rev (v :: acc)
  in
  values []

and parse_additive st =
  let rec loop lhs =
    match peek st with
    | L.PLUS ->
      advance st;
      loop (Expr.Arith (Expr.Add, lhs, parse_multiplicative st))
    | L.MINUS ->
      advance st;
      loop (Expr.Arith (Expr.Sub, lhs, parse_multiplicative st))
    | _ -> lhs
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop lhs =
    match peek st with
    | L.STAR ->
      advance st;
      loop (Expr.Arith (Expr.Mul, lhs, parse_unary st))
    | L.SLASH ->
      advance st;
      loop (Expr.Arith (Expr.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st L.MINUS then Expr.Neg (parse_unary st) else parse_primary st

and parse_primary st =
  match peek st with
  | L.INT i ->
    advance st;
    Expr.Lit (Value.Int i)
  | L.FLOAT f ->
    advance st;
    Expr.Lit (Value.Float f)
  | L.STRING s ->
    advance st;
    Expr.Lit (Value.String s)
  | L.KW "TRUE" ->
    advance st;
    Expr.Lit (Value.Bool true)
  | L.KW "FALSE" ->
    advance st;
    Expr.Lit (Value.Bool false)
  | L.KW "NULL" ->
    advance st;
    Expr.Lit Value.Null
  | L.IDENT c ->
    advance st;
    Expr.Col c
  | L.LPAREN ->
    advance st;
    let e = parse_or st in
    expect st L.RPAREN ")";
    e
  | _ -> fail_tok "expression" st

(* ------------------------------------------------------------------ *)
(* SELECT statements *)

let rec parse_select_item st =
  match peek st with
  | L.STAR ->
    advance st;
    Sql_ast.Star
  | L.KW kw when agg_of_kw kw <> None ->
    let fn = Option.get (agg_of_kw kw) in
    advance st;
    expect st L.LPAREN "(";
    let fn, arg =
      if peek st = L.STAR then begin
        advance st;
        match fn with
        | Algebra.Count -> (Algebra.CountStar, None)
        | Algebra.Expected_count -> (Algebra.Expected_count, None)
        | _ ->
          raise
            (Parse_error
               (Printf.sprintf "%s(*) is not supported" (Algebra.agg_fun_name fn)))
      end
      else if fn = Algebra.Expected_count then
        raise (Parse_error "ECOUNT only supports ECOUNT(*)")
      else (fn, Some (ident st))
    in
    expect st L.RPAREN ")";
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    Sql_ast.Aggregate (fn, arg, alias)
  | L.IDENT c ->
    advance st;
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    Sql_ast.Column (c, alias)
  | _ -> fail_tok "select item" st

and parse_table_ref st =
  if peek st = L.LPAREN then begin
    advance st;
    let sub = parse_query st in
    expect st L.RPAREN ")";
    ignore (accept_kw st "AS");
    let salias = ident st in
    Sql_ast.Tsub { sub; salias }
  end
  else begin
    let table = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | L.IDENT a ->
          advance st;
          Some a
        | _ -> None
    in
    Sql_ast.Tref { table; alias }
  end

(* WHERE-level conditions: boolean combinations of plain predicates and
   (uncorrelated) IN / EXISTS subqueries *)
and parse_cond_or st =
  let lhs = parse_cond_and st in
  if accept_kw st "OR" then Sql_ast.Cor (lhs, parse_cond_or st) else lhs

and parse_cond_and st =
  let lhs = parse_cond_not st in
  if accept_kw st "AND" then Sql_ast.Cand (lhs, parse_cond_and st) else lhs

and parse_cond_not st =
  if accept_kw st "NOT" then Sql_ast.Cnot (parse_cond_not st)
  else parse_cond_pred st

and parse_cond_pred st =
  if accept_kw st "EXISTS" then begin
    expect st L.LPAREN "(";
    let sub = parse_query st in
    expect st L.RPAREN ")";
    Sql_ast.Cexists sub
  end
  else begin
    let lhs = parse_additive st in
    let negated =
      if peek st = L.KW "NOT" then begin
        advance st;
        (* only "NOT IN" is valid in this position *)
        if peek st <> L.KW "IN" then fail_tok "IN after NOT" st;
        true
      end
      else false
    in
    match peek st with
    | L.KW "IN" -> (
      advance st;
      expect st L.LPAREN "(";
      match peek st with
      | L.KW "SELECT" | L.LPAREN ->
        let sub = parse_query st in
        expect st L.RPAREN ")";
        let c = Sql_ast.Cin (lhs, sub) in
        if negated then Sql_ast.Cnot c else c
      | _ ->
        let vs = parse_in_values st in
        expect st L.RPAREN ")";
        let e = Expr.In (lhs, vs) in
        Sql_ast.Cpred (if negated then Expr.Not e else e))
    | _ ->
      if negated then fail_tok "IN after NOT" st
      else Sql_ast.Cpred (parse_predicate_tail st lhs)
  end

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let rec items acc =
    let item = parse_select_item st in
    if accept st L.COMMA then items (item :: acc) else List.rev (item :: acc)
  in
  let items = items [] in
  expect_kw st "FROM";
  let from = parse_table_ref st in
  let cross = ref [] and joins = ref [] in
  let rec from_tail () =
    if accept st L.COMMA then begin
      cross := !cross @ [ parse_table_ref st ];
      from_tail ()
    end
    else if accept_kw st "INNER" then begin
      expect_kw st "JOIN";
      join_tail Sql_ast.Inner_join
    end
    else if accept_kw st "LEFT" then begin
      ignore (accept_kw st "OUTER");
      expect_kw st "JOIN";
      join_tail Sql_ast.Left_outer_join
    end
    else if accept_kw st "JOIN" then join_tail Sql_ast.Inner_join
  and join_tail jkind =
    let jtable = parse_table_ref st in
    expect_kw st "ON";
    let jcond = parse_or st in
    joins := !joins @ [ { Sql_ast.jkind; jtable; jcond } ];
    from_tail ()
  in
  from_tail ();
  let where = if accept_kw st "WHERE" then Some (parse_cond_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec cols acc =
        let c = ident st in
        if accept st L.COMMA then cols (c :: acc) else List.rev (c :: acc)
      in
      cols []
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec keys acc =
        let c = ident st in
        let o =
          if accept_kw st "DESC" then Algebra.Desc
          else begin
            ignore (accept_kw st "ASC");
            Algebra.Asc
          end
        in
        if accept st L.COMMA then keys ((c, o) :: acc) else List.rev ((c, o) :: acc)
      in
      keys []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      match peek st with
      | L.INT n when n >= 0 ->
        advance st;
        Some n
      | _ -> fail_tok "non-negative integer after LIMIT" st
    end
    else None
  in
  {
    Sql_ast.distinct;
    items;
    from;
    joins = !joins;
    cross = !cross;
    where;
    group_by;
    having;
    order_by;
    limit;
  }

and parse_query st =
  let lhs = parse_query_atom st in
  if accept_kw st "UNION" then Sql_ast.Union (lhs, parse_query st)
  else if accept_kw st "INTERSECT" then Sql_ast.Intersect (lhs, parse_query st)
  else if accept_kw st "EXCEPT" then Sql_ast.Except (lhs, parse_query st)
  else lhs

and parse_query_atom st =
  if peek st = L.LPAREN then begin
    advance st;
    let q = parse_query st in
    expect st L.RPAREN ")";
    q
  end
  else Sql_ast.Select (parse_select st)

let parse sql =
  match L.tokenize sql with
  | Error msg -> Error msg
  | Ok toks -> (
    let st = { toks } in
    try
      let q = parse_query st in
      ignore (accept st L.SEMI);
      if peek st <> L.EOF then
        Error
          (Printf.sprintf "trailing input at %s" (L.token_to_string (peek st)))
      else Ok q
    with Parse_error msg -> Error ("parse error: " ^ msg))

let parse_expr s =
  match L.tokenize s with
  | Error msg -> Error msg
  | Ok toks -> (
    let st = { toks } in
    try
      let e = parse_or st in
      if peek st <> L.EOF then
        Error
          (Printf.sprintf "trailing input at %s" (L.token_to_string (peek st)))
      else Ok e
    with Parse_error msg -> Error ("parse error: " ^ msg))
