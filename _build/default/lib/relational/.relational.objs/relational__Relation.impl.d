lib/relational/relation.ml: Array Buffer Format Lineage List Printf Schema String Tuple Value
