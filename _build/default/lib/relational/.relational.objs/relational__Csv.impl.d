lib/relational/csv.ml: Array Buffer Database List Printf Relation Result Schema String Tuple Value
