lib/relational/database.ml: Float Lineage List Map Option Printf Relation String
