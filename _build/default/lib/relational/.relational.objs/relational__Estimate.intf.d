lib/relational/estimate.mli: Algebra Database
