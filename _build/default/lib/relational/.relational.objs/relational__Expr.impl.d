lib/relational/expr.ml: Format Hashtbl List Printf Result Schema String Tuple Value
