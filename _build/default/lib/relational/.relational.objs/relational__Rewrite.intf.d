lib/relational/rewrite.mli: Algebra Database
