lib/relational/sql_planner.mli: Algebra Sql_ast
