lib/relational/eval.ml: Algebra Array Buffer Database Expr Hashtbl Lineage List Option Printf Relation Result Schema String Tuple Value
