lib/relational/sql_ast.mli: Algebra Expr
