lib/relational/views.ml: Algebra List Map Printf Set Sql_planner String
