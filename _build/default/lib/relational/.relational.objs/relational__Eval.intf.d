lib/relational/eval.mli: Algebra Database Lineage Schema Tuple
