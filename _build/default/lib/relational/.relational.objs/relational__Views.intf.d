lib/relational/views.mli: Algebra
