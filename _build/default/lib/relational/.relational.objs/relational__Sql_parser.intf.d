lib/relational/sql_parser.mli: Expr Sql_ast
