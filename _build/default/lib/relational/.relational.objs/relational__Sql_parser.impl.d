lib/relational/sql_parser.ml: Algebra Expr List Option Printf Sql_ast Sql_lexer Value
