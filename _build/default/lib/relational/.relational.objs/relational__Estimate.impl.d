lib/relational/estimate.ml: Algebra Buffer Database Expr Float Hashtbl List Printf Relation Result Schema String Tuple Value
