lib/relational/algebra.ml: Buffer Database Expr Format List Option Printf Relation Result Schema String Value
