lib/relational/tuple.ml: Array Format Fun Int Schema String Value
