lib/relational/value.ml: Bool Buffer Float Format Hashtbl Int Printf String
