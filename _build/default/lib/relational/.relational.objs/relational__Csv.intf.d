lib/relational/csv.mli: Database Lineage Relation
