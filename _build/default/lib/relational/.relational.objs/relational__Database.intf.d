lib/relational/database.mli: Lineage Relation Value
