lib/relational/rewrite.ml: Algebra Expr List Result Schema Value
