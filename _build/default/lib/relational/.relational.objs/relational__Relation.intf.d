lib/relational/relation.mli: Format Lineage Schema Tuple Value
