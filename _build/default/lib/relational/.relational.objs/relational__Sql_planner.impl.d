lib/relational/sql_planner.ml: Algebra List Option Printf Result Schema Sql_ast Sql_parser String
