lib/relational/sql_ast.ml: Algebra Buffer Expr List Option Printf String
