(** Relation schemas: ordered, typed, possibly qualified column lists.

    A column name may be qualified (["Proposal.Funding"]) or bare
    (["Funding"]).  Column lookup by a bare name succeeds when exactly one
    column matches; lookup by a qualified name requires an exact match.
    Ambiguous bare lookups are reported as errors, matching SQL name
    resolution. *)

type column = { cname : string; cty : Value.ty }

type t

val make : column list -> t
(** [make cols] builds a schema.
    @raise Invalid_argument on duplicate column names. *)

val of_list : (string * Value.ty) list -> t
(** [of_list pairs] is [make] applied to record-ified pairs. *)

val columns : t -> column list
val arity : t -> int
val column_names : t -> string list

val mem : t -> string -> bool
(** [mem s name] is [true] if {!find_index} would succeed. *)

type lookup_error = Not_found_col of string | Ambiguous of string * string list

val find_index : t -> string -> (int, lookup_error) result
(** [find_index s name] resolves [name] to a column position.  A qualified
    [name] must match a qualified column exactly, or match the unqualified
    part when the schema column is bare.  A bare [name] matches any column
    whose unqualified part equals it; multiple matches are ambiguous. *)

val find_index_exn : t -> string -> int
(** @raise Invalid_argument with a descriptive message on lookup failure. *)

val column_at : t -> int -> column

val qualify : string -> t -> t
(** [qualify rel s] prefixes every bare column name with ["rel."]; already
    qualified names are re-qualified with the new relation name. *)

val unqualified : string -> string
(** [unqualified "R.c"] is ["c"]; bare names are returned unchanged. *)

val concat : t -> t -> t
(** [concat a b] appends the columns of [b] after [a].
    @raise Invalid_argument on a duplicate (fully qualified) name. *)

val project : t -> string list -> (t * int array, lookup_error) result
(** [project s names] is the sub-schema selecting [names] in order, plus the
    source index of each projected column. *)

val restrict_to_indices : t -> int array -> t

val union_compatible : t -> t -> bool
(** [union_compatible a b] holds when arities match and column types agree
    position-wise (names may differ, as in SQL UNION). *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
