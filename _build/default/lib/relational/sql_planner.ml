let ( let* ) = Result.bind

let default_agg_name fn arg =
  let base =
    match fn with
    | Algebra.CountStar -> "count_star"
    | Algebra.Expected_count -> "ecount_star"
    | _ -> String.lowercase_ascii (Algebra.agg_fun_name fn)
  in
  match arg with
  | None -> base
  | Some c -> base ^ "_" ^ Schema.unqualified c



let split_items items =
  let rec go cols aggs star = function
    | [] -> Ok (List.rev cols, List.rev aggs, star)
    | Sql_ast.Star :: rest -> go cols aggs true rest
    | Sql_ast.Column (c, None) :: rest -> go (c :: cols) aggs star rest
    | Sql_ast.Column (c, Some _) :: _ ->
      Error
        (Printf.sprintf
           "column alias on %S: AS is only supported on aggregates in this \
            subset" c)
    | Sql_ast.Aggregate (fn, arg, alias) :: rest ->
      let out = Option.value alias ~default:(default_agg_name fn arg) in
      go cols ({ Algebra.fn; arg; out } :: aggs) star rest
  in
  go [] [] false items

let rec plan_table_ref = function
  | Sql_ast.Tref { table; alias = None } -> Ok (Algebra.Scan table)
  | Sql_ast.Tref { table; alias = Some a } ->
    Ok (Algebra.Rename (a, Algebra.Scan table))
  | Sql_ast.Tsub { sub; salias } ->
    let* sub = plan sub in
    Ok (Algebra.Rename (salias, sub))

and plan_from (s : Sql_ast.select_stmt) =
  let* base = plan_table_ref s.from in
  let* with_cross =
    List.fold_left
      (fun acc t ->
        let* acc = acc in
        let* t = plan_table_ref t in
        Ok (Algebra.Join (None, acc, t)))
      (Ok base) s.cross
  in
  List.fold_left
    (fun acc { Sql_ast.jkind; jtable; jcond } ->
      let* acc = acc in
      let* t = plan_table_ref jtable in
      match jkind with
      | Sql_ast.Inner_join -> Ok (Algebra.Join (Some jcond, acc, t))
      | Sql_ast.Left_outer_join -> Ok (Algebra.Left_join (jcond, acc, t)))
    (Ok with_cross) s.joins

and plan_cond = function
  | Sql_ast.Cpred e -> Ok (Algebra.Pred e)
  | Sql_ast.Cin (e, sub) ->
    let* sub = plan sub in
    Ok (Algebra.In_sub (e, sub))
  | Sql_ast.Cexists sub ->
    let* sub = plan sub in
    Ok (Algebra.Exists_sub sub)
  | Sql_ast.Cnot c ->
    let* c = plan_cond c in
    Ok (Algebra.Not_c c)
  | Sql_ast.Cand (a, b) ->
    let* a = plan_cond a in
    let* b = plan_cond b in
    Ok (Algebra.And_c (a, b))
  | Sql_ast.Cor (a, b) ->
    let* a = plan_cond a in
    let* b = plan_cond b in
    Ok (Algebra.Or_c (a, b))

and plan_select (s : Sql_ast.select_stmt) =
  let* cols, aggs, star = split_items s.items in
  let* p = plan_from s in
  let* p =
    match s.where with
    | None -> Ok p
    | Some c -> (
      let* cond = plan_cond c in
      match Algebra.cond_as_expr cond with
      | Some e -> Ok (Algebra.Select (e, p))
      | None -> Ok (Algebra.Select_sub (cond, p)))
  in
  let* p, projected =
    if aggs <> [] || s.group_by <> [] then begin
      (* every non-aggregate select column must be a grouping key *)
      let missing =
        List.filter
          (fun c ->
            not
              (List.exists
                 (fun k -> String.lowercase_ascii k = String.lowercase_ascii c)
                 s.group_by))
          cols
      in
      if missing <> [] then
        Error
          (Printf.sprintf "column(s) %s must appear in GROUP BY"
             (String.concat ", " missing))
      else if star then Error "SELECT * cannot be combined with GROUP BY"
      else begin
        let p = Algebra.Group_by (s.group_by, aggs, p) in
        let p =
          match s.having with None -> p | Some e -> Algebra.Select (e, p)
        in
        (* project to the select-list order when it differs from keys@aggs *)
        let natural =
          s.group_by @ List.map (fun a -> a.Algebra.out) aggs
        in
        let requested = cols @ List.map (fun a -> a.Algebra.out) aggs in
        if requested = natural then Ok (p, true)
        else Ok (Algebra.Project (requested, p), true)
      end
    end
    else if s.having <> None then Error "HAVING requires GROUP BY or aggregates"
    else if star then Ok ((if s.distinct then Algebra.Distinct p else p), true)
    else Ok (Algebra.Project (cols, p), true)
  in
  ignore projected;
  let p =
    if s.order_by = [] then p else Algebra.Order_by (s.order_by, p)
  in
  let p = match s.limit with None -> p | Some n -> Algebra.Limit (n, p) in
  Ok p

and plan = function
  | Sql_ast.Select s -> plan_select s
  | Sql_ast.Union (a, b) ->
    let* pa = plan a in
    let* pb = plan b in
    Ok (Algebra.Union (pa, pb))
  | Sql_ast.Intersect (a, b) ->
    let* pa = plan a in
    let* pb = plan b in
    Ok (Algebra.Intersect (pa, pb))
  | Sql_ast.Except (a, b) ->
    let* pa = plan a in
    let* pb = plan b in
    Ok (Algebra.Diff (pa, pb))

let compile sql =
  let* ast = Sql_parser.parse sql in
  plan ast
