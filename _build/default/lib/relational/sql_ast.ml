type select_item =
  | Star
  | Column of string * string option
  | Aggregate of Algebra.agg_fun * string option * string option

type join_kind = Inner_join | Left_outer_join

type cond =
  | Cpred of Expr.t
  | Cin of Expr.t * t
  | Cexists of t
  | Cnot of cond
  | Cand of cond * cond
  | Cor of cond * cond

and table_ref =
  | Tref of { table : string; alias : string option }
  | Tsub of { sub : t; salias : string }

and join_clause = { jkind : join_kind; jtable : table_ref; jcond : Expr.t }

and select_stmt = {
  distinct : bool;
  items : select_item list;
  from : table_ref;
  joins : join_clause list;
  cross : table_ref list;
  where : cond option;
  group_by : string list;
  having : Expr.t option;
  order_by : (string * Algebra.order) list;
  limit : int option;
}

and t =
  | Select of select_stmt
  | Union of t * t
  | Intersect of t * t
  | Except of t * t

let item_to_string = function
  | Star -> "*"
  | Column (c, None) -> c
  | Column (c, Some a) -> Printf.sprintf "%s AS %s" c a
  | Aggregate (fn, arg, alias) ->
    let base =
      match fn with
      | Algebra.CountStar -> "COUNT(*)"
      | _ ->
        Printf.sprintf "%s(%s)" (Algebra.agg_fun_name fn)
          (Option.value ~default:"*" arg)
    in
    (match alias with None -> base | Some a -> base ^ " AS " ^ a)



let rec table_ref_to_string = function
  | Tref { table; alias = None } -> table
  | Tref { table; alias = Some a } -> table ^ " AS " ^ a
  | Tsub { sub; salias } -> Printf.sprintf "(%s) AS %s" (to_string sub) salias

and cond_to_string = function
  | Cpred e -> Expr.to_string e
  | Cin (e, sub) -> Printf.sprintf "(%s IN (%s))" (Expr.to_string e) (to_string sub)
  | Cexists sub -> Printf.sprintf "(EXISTS (%s))" (to_string sub)
  | Cnot c -> Printf.sprintf "(NOT %s)" (cond_to_string c)
  | Cand (a, b) -> Printf.sprintf "(%s AND %s)" (cond_to_string a) (cond_to_string b)
  | Cor (a, b) -> Printf.sprintf "(%s OR %s)" (cond_to_string a) (cond_to_string b)

and select_to_string s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map item_to_string s.items));
  Buffer.add_string buf (" FROM " ^ table_ref_to_string s.from);
  List.iter
    (fun t -> Buffer.add_string buf (", " ^ table_ref_to_string t))
    s.cross;
  List.iter
    (fun j ->
      Buffer.add_string buf
        (Printf.sprintf " %s %s ON %s"
           (match j.jkind with
           | Inner_join -> "JOIN"
           | Left_outer_join -> "LEFT JOIN")
           (table_ref_to_string j.jtable)
           (Expr.to_string j.jcond)))
    s.joins;
  Option.iter
    (fun c -> Buffer.add_string buf (" WHERE " ^ cond_to_string c))
    s.where;
  if s.group_by <> [] then
    Buffer.add_string buf (" GROUP BY " ^ String.concat ", " s.group_by);
  Option.iter
    (fun e -> Buffer.add_string buf (" HAVING " ^ Expr.to_string e))
    s.having;
  if s.order_by <> [] then
    Buffer.add_string buf
      (" ORDER BY "
      ^ String.concat ", "
          (List.map
             (fun (c, o) ->
               c ^ match o with Algebra.Asc -> " ASC" | Algebra.Desc -> " DESC")
             s.order_by));
  Option.iter (fun n -> Buffer.add_string buf (Printf.sprintf " LIMIT %d" n)) s.limit;
  Buffer.contents buf

and to_string = function
  | Select s -> select_to_string s
  | Union (a, b) -> Printf.sprintf "(%s) UNION (%s)" (to_string a) (to_string b)
  | Intersect (a, b) ->
    Printf.sprintf "(%s) INTERSECT (%s)" (to_string a) (to_string b)
  | Except (a, b) -> Printf.sprintf "(%s) EXCEPT (%s)" (to_string a) (to_string b)
