let ( let* ) = Result.bind

let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    else if c = '"' then begin
      in_quotes := true;
      incr i
    end
    else if c = ',' then begin
      flush_field ();
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  flush_field ();
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let render_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_line fields = String.concat "," (List.map render_field fields)

let confidence_col = "__confidence"

let split_lines text =
  (* naive split on newlines is fine: quoted embedded newlines are not
     produced by our exporter and are rejected on import *)
  String.split_on_char '\n' text
  |> List.map (fun l ->
         if String.length l > 0 && l.[String.length l - 1] = '\r' then
           String.sub l 0 (String.length l - 1)
         else l)
  |> List.filter (fun l -> String.trim l <> "")

let parse_header line =
  let fields = parse_line line in
  let rec go acc conf_idx i = function
    | [] -> Ok (List.rev acc, conf_idx)
    | f :: rest -> (
      match String.index_opt f ':' with
      | None -> Error (Printf.sprintf "header field %S lacks a :type suffix" f)
      | Some j -> (
        let name = String.sub f 0 j in
        let tyname = String.sub f (j + 1) (String.length f - j - 1) in
        match Value.ty_of_string tyname with
        | None -> Error (Printf.sprintf "unknown type %S in header" tyname)
        | Some ty ->
          if name = confidence_col then
            if ty <> Value.TFloat then
              Error (Printf.sprintf "%s column must be real" confidence_col)
            else go acc (Some i) (i + 1) rest
          else go ((name, ty, i) :: acc) conf_idx (i + 1) rest))
  in
  go [] None 0 fields

let relation_of_string ~name ?(default_conf = 1.0) text =
  match split_lines text with
  | [] -> Error "empty CSV document"
  | header :: body ->
    let* cols, conf_idx = parse_header header in
    let schema = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) cols) in
    let rel = Relation.create name schema in
    let rec rows rel confs lineno = function
      | [] -> Ok (rel, List.rev confs)
      | line :: rest ->
        let fields = Array.of_list (parse_line line) in
        let expected =
          List.length cols + match conf_idx with Some _ -> 1 | None -> 0
        in
        if Array.length fields <> expected then
          Error
            (Printf.sprintf "line %d: expected %d fields, found %d" lineno
               expected (Array.length fields))
        else begin
          let parsed =
            List.map
              (fun (cname, ty, i) ->
                match Value.of_string_as ty fields.(i) with
                | Some v -> Ok v
                | None ->
                  Error
                    (Printf.sprintf "line %d: cannot parse %S as %s for %s"
                       lineno fields.(i) (Value.ty_name ty) cname))
              cols
          in
          let* values =
            List.fold_left
              (fun acc r ->
                let* vs = acc in
                let* v = r in
                Ok (v :: vs))
              (Ok []) parsed
            |> Result.map List.rev
          in
          let* conf =
            match conf_idx with
            | None -> Ok default_conf
            | Some i -> (
              match float_of_string_opt (String.trim fields.(i)) with
              | Some c when c >= 0.0 && c <= 1.0 -> Ok c
              | _ ->
                Error
                  (Printf.sprintf "line %d: bad confidence %S" lineno fields.(i)))
          in
          let rel, tid = Relation.insert_values rel values in
          rows rel ((tid, conf) :: confs) (lineno + 1) rest
        end
    in
    rows rel [] 2 body

let load_into db ~name ?default_conf text =
  let* rel, confs = relation_of_string ~name ?default_conf text in
  let db = Database.add_relation db rel in
  (* register confidences by re-inserting is wrong (tids exist); poke the
     confidence table directly through insert-free path *)
  let db =
    List.fold_left
      (fun db (tid, c) ->
        (* Database.set_confidence requires an existing entry; create one via
           a direct functional update by rebuilding with insert is overkill.
           We instead add entries through apply_increments after seeding. *)
        Database.seed_confidence db tid c)
      db confs
  in
  Ok db

let load_file db ~name ?default_conf path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  load_into db ~name ?default_conf text

let to_string db rel =
  let schema = Relation.schema rel in
  let header =
    render_line
      (List.map
         (fun c -> Printf.sprintf "%s:%s" c.Schema.cname (Value.ty_name c.Schema.cty))
         (Schema.columns schema)
      @ [ confidence_col ^ ":real" ])
  in
  let body =
    List.map
      (fun (tid, tup) ->
        render_line
          (List.map Value.to_string (Array.to_list (Tuple.values tup))
          @ [ Printf.sprintf "%g" (Database.confidence db tid) ]))
      (Relation.tuples rel)
  in
  String.concat "\n" (header :: body) ^ "\n"
