let ( let* ) = Result.bind

(* Can every column of [e] be resolved (unambiguously) in [schema]? *)
let resolvable schema e =
  List.for_all
    (fun c -> match Schema.find_index schema c with Ok _ -> true | Error _ -> false)
    (Expr.columns e)

(* One bottom-up rewriting pass.  Returns the new plan and whether any rule
   fired. *)
let rec pass db plan =
  match plan with
  | Algebra.Scan _ -> Ok (plan, false)
  | Algebra.Select (p, child) -> (
    let* child, changed = pass db child in
    let keep = Ok (Algebra.Select (p, child), changed) in
    (* never rewrite a selection the evaluator would reject: pushing an
       unresolvable predicate below could turn an error into an answer *)
    let* valid_above =
      match Algebra.output_schema db child with
      | Ok sc -> Ok (resolvable sc p)
      | Error _ -> Ok false
    in
    if not valid_above then keep
    else
      match child with
      (* trivial predicate *)
      | _ when p = Expr.Lit (Value.Bool true) -> Ok (child, true)
      (* merge adjacent selections *)
      | Algebra.Select (q, x) -> Ok (Algebra.Select (Expr.And (p, q), x), true)
      (* push below ordering *)
      | Algebra.Order_by (keys, x) ->
        Ok (Algebra.Order_by (keys, Algebra.Select (p, x)), true)
      (* push through projection when the columns survive below *)
      | Algebra.Project (cols, x) ->
        let* sx = Algebra.output_schema db x in
        if resolvable sx p then
          Ok (Algebra.Project (cols, Algebra.Select (p, x)), true)
        else keep
      (* push into the matching side of an inner join *)
      | Algebra.Join (c, a, b) ->
        let* sa = Algebra.output_schema db a in
        let* sb = Algebra.output_schema db b in
        if resolvable sa p && not (resolvable sb p) then
          Ok (Algebra.Join (c, Algebra.Select (p, a), b), true)
        else if resolvable sb p && not (resolvable sa p) then
          Ok (Algebra.Join (c, a, Algebra.Select (p, b)), true)
        else keep
      (* left outer join: only left-side predicates may move *)
      | Algebra.Left_join (c, a, b) ->
        let* sa = Algebra.output_schema db a in
        let* sb = Algebra.output_schema db b in
        if resolvable sa p && not (resolvable sb p) then
          Ok (Algebra.Left_join (c, Algebra.Select (p, a), b), true)
        else keep
      (* push into both sides of set operations -- only when the predicate
         resolves under both children's column names *)
      | Algebra.Union (a, b) | Algebra.Intersect (a, b) | Algebra.Diff (a, b)
        ->
        let* sa = Algebra.output_schema db a in
        let* sb = Algebra.output_schema db b in
        if resolvable sa p && resolvable sb p then
          let rebuild a b =
            match child with
            | Algebra.Union _ -> Algebra.Union (a, b)
            | Algebra.Intersect _ -> Algebra.Intersect (a, b)
            | _ -> Algebra.Diff (a, b)
          in
          Ok (rebuild (Algebra.Select (p, a)) (Algebra.Select (p, b)), true)
        else keep
      (* push below distinct *)
      | Algebra.Distinct x -> Ok (Algebra.Distinct (Algebra.Select (p, x)), true)
      | _ -> keep)
  | Algebra.Project (cols, child) -> (
    let* child, changed = pass db child in
    match child with
    (* projection already eliminates duplicates *)
    | Algebra.Distinct x -> Ok (Algebra.Project (cols, x), true)
    | _ -> Ok (Algebra.Project (cols, child), changed))
  | Algebra.Join (c, a, b) ->
    let* a, ca = pass db a in
    let* b, cb = pass db b in
    Ok (Algebra.Join (c, a, b), ca || cb)
  | Algebra.Left_join (c, a, b) ->
    let* a, ca = pass db a in
    let* b, cb = pass db b in
    Ok (Algebra.Left_join (c, a, b), ca || cb)
  | Algebra.Union (a, b) ->
    let* a, ca = pass db a in
    let* b, cb = pass db b in
    Ok (Algebra.Union (a, b), ca || cb)
  | Algebra.Intersect (a, b) ->
    let* a, ca = pass db a in
    let* b, cb = pass db b in
    Ok (Algebra.Intersect (a, b), ca || cb)
  | Algebra.Diff (a, b) ->
    let* a, ca = pass db a in
    let* b, cb = pass db b in
    Ok (Algebra.Diff (a, b), ca || cb)
  | Algebra.Rename (alias, child) ->
    let* child, changed = pass db child in
    Ok (Algebra.Rename (alias, child), changed)
  | Algebra.Distinct child -> (
    let* child, changed = pass db child in
    match child with
    (* distinct over duplicate-free children is a no-op *)
    | Algebra.Distinct _ | Algebra.Project _ | Algebra.Group_by _ ->
      Ok (child, true)
    | _ -> Ok (Algebra.Distinct child, changed))
  | Algebra.Order_by (keys, child) ->
    let* child, changed = pass db child in
    Ok (Algebra.Order_by (keys, child), changed)
  | Algebra.Limit (n, child) -> (
    let* child, changed = pass db child in
    match child with
    | Algebra.Limit (m, x) -> Ok (Algebra.Limit (min n m, x), true)
    | _ -> Ok (Algebra.Limit (n, child), changed))
  | Algebra.Group_by (keys, aggs, child) ->
    let* child, changed = pass db child in
    Ok (Algebra.Group_by (keys, aggs, child), changed)
  | Algebra.Select_sub (cond, child) ->
    (* conservative: optimize the child and any subquery plans, but do not
       move the subquery-bearing selection itself *)
    let* child, changed = pass db child in
    let rec pass_cond c =
      match c with
      | Algebra.Pred _ -> Ok (c, false)
      | Algebra.In_sub (e, sub) ->
        let* sub, ch = pass db sub in
        Ok (Algebra.In_sub (e, sub), ch)
      | Algebra.Exists_sub sub ->
        let* sub, ch = pass db sub in
        Ok (Algebra.Exists_sub sub, ch)
      | Algebra.Not_c c ->
        let* c, ch = pass_cond c in
        Ok (Algebra.Not_c c, ch)
      | Algebra.And_c (a, b) ->
        let* a, ca = pass_cond a in
        let* b, cb = pass_cond b in
        Ok (Algebra.And_c (a, b), ca || cb)
      | Algebra.Or_c (a, b) ->
        let* a, ca = pass_cond a in
        let* b, cb = pass_cond b in
        Ok (Algebra.Or_c (a, b), ca || cb)
    in
    let* cond, cc = pass_cond cond in
    Ok (Algebra.Select_sub (cond, child), changed || cc)

let fixpoint db plan =
  let rec go plan budget =
    if budget = 0 then Ok plan
    else
      let* plan', changed = pass db plan in
      if changed then go plan' (budget - 1) else Ok plan'
  in
  go plan 50

let optimize = fixpoint

let push_selections db plan =
  (* the full pass set is already dominated by selection pushdown; exposed
     separately in case callers want to rewrite without the structural
     cleanups -- currently the same fixpoint *)
  fixpoint db plan
