type column = { cname : string; cty : Value.ty }

type t = { cols : column array }

let make cols =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun c ->
      let key = String.lowercase_ascii c.cname in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c.cname);
      Hashtbl.add seen key ())
    cols;
  { cols = Array.of_list cols }

let of_list pairs = make (List.map (fun (cname, cty) -> { cname; cty }) pairs)

let columns s = Array.to_list s.cols
let arity s = Array.length s.cols
let column_names s = List.map (fun c -> c.cname) (columns s)

let unqualified name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let qualifier name =
  match String.rindex_opt name '.' with
  | None -> None
  | Some i -> Some (String.sub name 0 i)

type lookup_error = Not_found_col of string | Ambiguous of string * string list

let norm = String.lowercase_ascii

let find_index s name =
  let matches = ref [] in
  let nname = norm name in
  Array.iteri
    (fun i c ->
      let cn = norm c.cname in
      let hit =
        if String.contains name '.' then
          (* qualified request: exact match, or bare schema column whose
             name equals the unqualified part *)
          cn = nname
          || (qualifier c.cname = None && cn = norm (unqualified name))
        else
          (* bare request: match unqualified part of the schema column *)
          norm (unqualified c.cname) = nname
      in
      if hit then matches := i :: !matches)
    s.cols;
  match List.rev !matches with
  | [ i ] -> Ok i
  | [] -> Error (Not_found_col name)
  | is -> Error (Ambiguous (name, List.map (fun i -> s.cols.(i).cname) is))

let find_index_exn s name =
  match find_index s name with
  | Ok i -> i
  | Error (Not_found_col n) ->
    invalid_arg (Printf.sprintf "Schema: unknown column %S" n)
  | Error (Ambiguous (n, cands)) ->
    invalid_arg
      (Printf.sprintf "Schema: ambiguous column %S (matches %s)" n
         (String.concat ", " cands))

let mem s name = match find_index s name with Ok _ -> true | Error _ -> false

let column_at s i = s.cols.(i)

let qualify rel s =
  {
    cols =
      Array.map
        (fun c -> { c with cname = rel ^ "." ^ unqualified c.cname })
        s.cols;
  }

let concat a b =
  make (columns a @ columns b)

let project s names =
  let rec go acc_cols acc_idx = function
    | [] -> Ok (make (List.rev acc_cols), Array.of_list (List.rev acc_idx))
    | name :: rest -> (
      match find_index s name with
      | Ok i -> go ({ (column_at s i) with cname = name } :: acc_cols) (i :: acc_idx) rest
      | Error e -> Error e)
  in
  go [] [] names

let restrict_to_indices s idx =
  { cols = Array.map (fun i -> s.cols.(i)) idx }

let union_compatible a b =
  arity a = arity b
  && Array.for_all2 (fun ca cb -> ca.cty = cb.cty) a.cols b.cols

let equal a b =
  arity a = arity b
  && Array.for_all2
       (fun ca cb -> norm ca.cname = norm cb.cname && ca.cty = cb.cty)
       a.cols b.cols

let to_string s =
  String.concat ", "
    (List.map (fun c -> Printf.sprintf "%s:%s" c.cname (Value.ty_name c.cty)) (columns s))

let pp ppf s = Format.pp_print_string ppf (to_string s)
