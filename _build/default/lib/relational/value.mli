(** Typed atomic values stored in relations.

    The engine supports the four scalar types the paper's examples use
    (strings, integers, reals, booleans) plus SQL-style [NULL].  Values are
    immutable; comparison follows SQL semantics except that [NULL] compares
    as the smallest value under {!compare} (a total order is needed for
    sorting and set operations), while {!cmp_sql} implements three-valued
    logic where any comparison against [NULL] is unknown. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type ty = TBool | TInt | TFloat | TString

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for [Null] (which inhabits
    every type). *)

val ty_name : ty -> string
(** [ty_name ty] is the SQL-ish name of [ty]: ["bool"], ["int"], ["real"],
    ["string"]. *)

val ty_of_string : string -> ty option
(** [ty_of_string s] parses a type name as printed by {!ty_name}
    (also accepts ["float"], ["text"], ["integer"], ["boolean"]). *)

val conforms : t -> ty -> bool
(** [conforms v ty] is [true] when [v] can live in a column of type [ty]
    ([Null] conforms to every type; [Int] values conform to [TFloat]
    columns). *)

val coerce : t -> ty -> t option
(** [coerce v ty] converts [v] to type [ty] when a lossless conversion
    exists (e.g. [Int 3] to [Float 3.]), returns [None] otherwise. *)

val compare : t -> t -> int
(** Total order used for sorting and set operations.  [Null] is smallest;
    values of different types are ordered by type tag; numeric values are
    compared numerically across [Int]/[Float]. *)

val equal : t -> t -> bool
(** [equal a b] is [compare a b = 0]. *)

val hash : t -> int
(** Hash consistent with {!equal} (numerically equal [Int]/[Float] values
    hash identically). *)

type bool3 = True3 | False3 | Unknown3
(** SQL three-valued truth values. *)

val cmp_sql : t -> t -> bool3 * int
(** [cmp_sql a b] is [(Unknown3, 0)] when either side is [Null]; otherwise
    [(True3, c)] with [c] the sign of the comparison.  Raises
    [Invalid_argument] for incomparable types (e.g. [Bool] vs [String]). *)

val and3 : bool3 -> bool3 -> bool3
val or3 : bool3 -> bool3 -> bool3
val not3 : bool3 -> bool3
val bool3_of_bool : bool -> bool3
val is_true : bool3 -> bool
(** [is_true b] is [true] only for [True3] (SQL WHERE semantics: unknown
    rows are filtered out). *)

val to_string : t -> string
(** Display form: [Null] prints as ["NULL"], strings print unquoted. *)

val to_sql : t -> string
(** SQL literal form: strings are single-quoted with quotes doubled. *)

val pp : Format.formatter -> t -> unit

val of_string_as : ty -> string -> t option
(** [of_string_as ty s] parses [s] as a value of type [ty].  The empty
    string and ["NULL"] (case-insensitive) parse as [Null]. *)
