(** Heuristic cardinality estimation for plans.

    Textbook selectivity heuristics over the base relations' true
    cardinalities — no histograms, but equality selectivity uses the
    actual number of distinct values in base columns when the predicate
    compares a column with a literal over a direct scan chain.  Used by
    the CLI's [plan] command to annotate EXPLAIN output; the estimates are
    advisory (the evaluator never relies on them for correctness).

    Fixed selectivities: equality 1/ndv (fallback 0.1), range/LIKE 0.3,
    IS NULL 0.05, duplicate elimination keeps 0.7, group-by keeps 0.3,
    equi-join matches 1/max(ndv); conjunction multiplies, disjunction
    adds (capped), negation complements. *)

val cardinality : Database.t -> Algebra.t -> (float, string) result
(** [cardinality db plan] estimates the result size.  Errors only on
    schema errors (unknown relation/column). *)

val explain : Database.t -> Algebra.t -> (string, string) result
(** [explain db plan] renders the plan with one [~N rows] annotation per
    operator — the CLI's EXPLAIN. *)
