type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

type ty = TBool | TInt | TFloat | TString

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | String _ -> Some TString

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "real"
  | TString -> "string"

let ty_of_string s =
  match String.lowercase_ascii s with
  | "bool" | "boolean" -> Some TBool
  | "int" | "integer" -> Some TInt
  | "real" | "float" | "double" -> Some TFloat
  | "string" | "text" | "varchar" -> Some TString
  | _ -> None

let conforms v ty =
  match (v, ty) with
  | Null, _ -> true
  | Bool _, TBool -> true
  | Int _, TInt | Int _, TFloat -> true
  | Float _, TFloat -> true
  | String _, TString -> true
  | _ -> false

let coerce v ty =
  match (v, ty) with
  | Null, _ -> Some Null
  | Bool _, TBool | Int _, TInt | Float _, TFloat | String _, TString ->
    Some v
  | Int i, TFloat -> Some (Float (float_of_int i))
  | _ -> None

let type_rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | _ -> Int.compare (type_rank a) (type_rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash (Float.of_int i)
  | Float f ->
    (* hash Int and numerically-equal Float identically *)
    if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash f
    else Hashtbl.hash f
  | String s -> Hashtbl.hash s

type bool3 = True3 | False3 | Unknown3

let cmp_sql a b =
  match (a, b) with
  | Null, _ | _, Null -> (Unknown3, 0)
  | _ ->
    if type_rank a <> type_rank b then
      invalid_arg
        (Printf.sprintf "Value.cmp_sql: incomparable types (%s vs %s)"
           (match type_of a with Some t -> ty_name t | None -> "null")
           (match type_of b with Some t -> ty_name t | None -> "null"))
    else (True3, compare a b)

let and3 a b =
  match (a, b) with
  | False3, _ | _, False3 -> False3
  | True3, True3 -> True3
  | _ -> Unknown3

let or3 a b =
  match (a, b) with
  | True3, _ | _, True3 -> True3
  | False3, False3 -> False3
  | _ -> Unknown3

let not3 = function True3 -> False3 | False3 -> True3 | Unknown3 -> Unknown3

let bool3_of_bool b = if b then True3 else False3

let is_true = function True3 -> true | _ -> false

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Null -> "NULL"
  | Bool b -> if b then "true" else "false"
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | String s -> s

let to_sql = function
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '\'';
    Buffer.contents buf
  | v -> to_string v

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string_as ty s =
  let s' = String.trim s in
  if s' = "" || String.uppercase_ascii s' = "NULL" then Some Null
  else
    match ty with
    | TBool -> (
      match String.lowercase_ascii s' with
      | "true" | "t" | "1" | "yes" -> Some (Bool true)
      | "false" | "f" | "0" | "no" -> Some (Bool false)
      | _ -> None)
    | TInt -> ( match int_of_string_opt s' with Some i -> Some (Int i) | None -> None)
    | TFloat -> (
      match float_of_string_opt s' with Some f -> Some (Float f) | None -> None)
    | TString -> Some (String s)
