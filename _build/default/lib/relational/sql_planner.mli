(** Translate parsed SQL into relational-algebra plans.

    Planning is purely syntactic (no database access); name resolution and
    type checking happen when the plan's schema is inferred or the plan is
    evaluated.  Limitations of the subset are reported as [Error]:
    column aliases on plain (non-aggregate) select items, and non-grouped
    columns mixed with aggregates. *)

val plan : Sql_ast.t -> (Algebra.t, string) result
(** [plan ast] builds the algebra plan:
    - FROM items combine with cross products, JOIN … ON with theta joins;
      aliased tables are wrapped in [Rename];
    - WHERE becomes [Select];
    - aggregates/GROUP BY become [Group_by] (HAVING becomes a [Select] above
      it, referencing aggregate output columns by their [AS] names);
    - the select list becomes a duplicate-eliminating [Project] (set
      semantics, as in the paper) unless it is [*];
    - ORDER BY / LIMIT wrap the result. *)

val compile : string -> (Algebra.t, string) result
(** [compile sql] is parse + plan. *)

val default_agg_name : Algebra.agg_fun -> string option -> string
(** Output column name used when an aggregate has no alias:
    COUNT star gives ["count_star"], SUM over f gives ["sum_f"] *)
