lib/workload/dag_query.ml: Array Lineage List Prng
