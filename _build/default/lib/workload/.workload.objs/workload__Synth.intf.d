lib/workload/synth.mli: Optimize
