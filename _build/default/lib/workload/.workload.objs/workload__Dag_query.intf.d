lib/workload/dag_query.mli: Lineage Prng
