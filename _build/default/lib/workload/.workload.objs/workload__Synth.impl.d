lib/workload/synth.ml: Array Cost Dag_query Float Lineage List Optimize Option Printf Prng
