(** Random query DAGs.

    The paper's experiments "use randomly generated DAGs to represent
    queries" (§5.1): each intermediate result's confidence function is a
    random monotone ∧/∨ combination of its base tuples.  This module
    generates such formulas. *)

val random_monotone_tree :
  Prng.Splitmix.t -> Lineage.Tid.t list -> Lineage.Formula.t
(** [random_monotone_tree rng tids] builds a random read-once ∧/∨ tree
    whose leaves are exactly [tids] (each occurring once): leaves are
    shuffled, then repeatedly combined by And/Or nodes of arity 2–3 chosen
    uniformly until a single root remains.
    @raise Invalid_argument on an empty list. *)

val random_dag :
  Prng.Splitmix.t -> sharing:float -> Lineage.Tid.t list -> Lineage.Formula.t
(** [random_dag rng ~sharing tids] like {!random_monotone_tree}, but with
    probability [sharing] per combination step one already-used subformula
    is reused as an extra child, producing non-read-once lineage (as a join
    DAG would).  [sharing = 0.] degenerates to a tree. *)

val conjunctive : Lineage.Tid.t list -> Lineage.Formula.t
(** Plain conjunction — the lineage a multi-way join produces. *)

val dnf_of_groups : Lineage.Tid.t list list -> Lineage.Formula.t
(** [dnf_of_groups groups] is an Or of Ands — the lineage of a
    duplicate-eliminating projection over a join. *)
