module Formula = Lineage.Formula
module Sm = Prng.Splitmix

let random_monotone_tree rng tids =
  if tids = [] then invalid_arg "Dag_query.random_monotone_tree: no leaves";
  let leaves = Array.of_list (List.map Formula.var tids) in
  Sm.shuffle_in_place rng leaves;
  let pool = ref (Array.to_list leaves) in
  let take n =
    let rec go acc n rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: xs -> go (x :: acc) (n - 1) xs
    in
    go [] n !pool
  in
  while List.length !pool > 1 do
    let arity = min (List.length !pool) (Sm.int_in rng 2 3) in
    let children, rest = take arity in
    let node =
      if Sm.bool rng then Formula.conj children else Formula.disj children
    in
    (* insert the combined node at a random position to avoid degenerate
       left-comb shapes *)
    let rest = Array.of_list rest in
    let position = Sm.int rng (Array.length rest + 1) in
    let out = ref [] in
    Array.iteri
      (fun i f ->
        if i = position then out := node :: !out;
        out := f :: !out)
      rest;
    if position = Array.length rest then out := node :: !out;
    pool := List.rev !out
  done;
  List.hd !pool

let random_dag rng ~sharing tids =
  if tids = [] then invalid_arg "Dag_query.random_dag: no leaves";
  if not (sharing >= 0.0 && sharing <= 1.0) then
    invalid_arg "Dag_query.random_dag: sharing outside [0,1]";
  let leaves = Array.of_list (List.map Formula.var tids) in
  Sm.shuffle_in_place rng leaves;
  let pool = ref (Array.to_list leaves) in
  let used : Formula.t list ref = ref [] in
  let take n =
    let rec go acc n rest =
      if n = 0 then (List.rev acc, rest)
      else
        match rest with
        | [] -> (List.rev acc, [])
        | x :: xs -> go (x :: acc) (n - 1) xs
    in
    go [] n !pool
  in
  while List.length !pool > 1 do
    let arity = min (List.length !pool) (Sm.int_in rng 2 3) in
    let children, rest = take arity in
    let children =
      if !used <> [] && Sm.coin rng sharing then
        Sm.choice rng (Array.of_list !used) :: children
      else children
    in
    let node =
      if Sm.bool rng then Formula.conj children else Formula.disj children
    in
    used := children @ !used;
    pool := rest @ [ node ]
  done;
  List.hd !pool

let conjunctive tids = Lineage.Formula.conj (List.map Lineage.Formula.var tids)

let dnf_of_groups groups =
  Lineage.Formula.disj (List.map conjunctive groups)
