type params = { half_life_days : float; corroboration_strength : float }

let default_params = { half_life_days = 3650.0; corroboration_strength = 0.3 }

let score ?(params = default_params) (r : Provenance.record) =
  let path_fidelity =
    List.fold_left (fun acc s -> acc *. s.Provenance.fidelity) 1.0 r.path
  in
  let staleness = 2.0 ** (-.r.age_days /. params.half_life_days) in
  let base = r.source.Provenance.trust *. path_fidelity *. staleness in
  let boost =
    (1.0 -. params.corroboration_strength) ** float_of_int r.corroborations
  in
  let conf = 1.0 -. ((1.0 -. base) *. boost) in
  Float.max 0.0 (Float.min 1.0 conf)

let assign ?params db records =
  List.fold_left
    (fun db (tid, record) ->
      Relational.Database.seed_confidence db tid (score ?params record))
    db records

type claim = { claim_provider : string; claim_key : string; claim_value : string }

module StrMap = Map.Make (String)

let refine ?(iterations = 10) ?(damping = 0.2) priors claims =
  if iterations < 0 then invalid_arg "Assignment.refine: negative iterations";
  if not (damping >= 0.0 && damping <= 1.0) then
    invalid_arg "Assignment.refine: damping outside [0,1]";
  let trust = ref (StrMap.of_seq (List.to_seq priors)) in
  (* claims grouped by key: key -> (value -> providers) *)
  let by_key =
    List.fold_left
      (fun acc c ->
        let values = Option.value ~default:StrMap.empty (StrMap.find_opt c.claim_key acc) in
        let provs =
          Option.value ~default:[] (StrMap.find_opt c.claim_value values)
        in
        StrMap.add c.claim_key (StrMap.add c.claim_value (c.claim_provider :: provs) values) acc)
      StrMap.empty claims
  in
  let provider_claims =
    List.fold_left
      (fun acc c ->
        let l = Option.value ~default:[] (StrMap.find_opt c.claim_provider acc) in
        StrMap.add c.claim_provider ((c.claim_key, c.claim_value) :: l) acc)
      StrMap.empty claims
  in
  for _ = 1 to iterations do
    (* vote of a (key, value) pair: the trust mass supporting this value
       relative to the trust mass behind every value claimed for the key --
       a lone dissenter against trusted agreement scores low *)
    let vote key value =
      match StrMap.find_opt key by_key with
      | None -> 0.0
      | Some values -> (
        let mass provs =
          List.fold_left
            (fun acc p ->
              acc +. Option.value ~default:0.5 (StrMap.find_opt p !trust))
            0.0 provs
        in
        let total =
          StrMap.fold (fun _ provs acc -> acc +. mass provs) values 0.0
        in
        match StrMap.find_opt value values with
        | None -> 0.0
        | Some provs -> if total <= 0.0 then 0.0 else mass provs /. total)
    in
    let next =
      StrMap.mapi
        (fun pid prior_trust ->
          match StrMap.find_opt pid provider_claims with
          | None | Some [] -> prior_trust
          | Some cs ->
            let evidence =
              List.fold_left (fun acc (k, v) -> acc +. vote k v) 0.0 cs
              /. float_of_int (List.length cs)
            in
            (damping *. prior_trust) +. ((1.0 -. damping) *. evidence))
        !trust
    in
    trust := next
  done;
  List.map (fun (pid, _) -> (pid, StrMap.find pid !trust)) priors
