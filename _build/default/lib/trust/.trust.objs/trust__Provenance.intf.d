lib/trust/provenance.mli:
