lib/trust/assignment.mli: Lineage Provenance Relational
