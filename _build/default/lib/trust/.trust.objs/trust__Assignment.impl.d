lib/trust/assignment.ml: Float List Map Option Provenance Relational String
