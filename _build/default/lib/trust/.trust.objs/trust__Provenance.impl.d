lib/trust/provenance.ml: Printf
