type provider = { pid : string; trust : float }

type method_kind =
  | Direct_measurement
  | Survey
  | Derived
  | Web_scrape
  | Manual_entry

type step = { kind : method_kind; fidelity : float }

type record = {
  source : provider;
  path : step list;
  age_days : float;
  corroborations : int;
}

let check_unit what x =
  if not (x >= 0.0 && x <= 1.0) then
    invalid_arg (Printf.sprintf "Provenance: %s %g outside [0,1]" what x)

let make_provider pid ~trust =
  check_unit "provider trust" trust;
  { pid; trust }

let make_step kind ~fidelity =
  check_unit "step fidelity" fidelity;
  { kind; fidelity }

let make_record ~source ?(path = []) ?(age_days = 0.0) ?(corroborations = 0) ()
    =
  if age_days < 0.0 then invalid_arg "Provenance: negative age";
  if corroborations < 0 then invalid_arg "Provenance: negative corroborations";
  { source; path; age_days; corroborations }

let method_kind_name = function
  | Direct_measurement -> "direct-measurement"
  | Survey -> "survey"
  | Derived -> "derived"
  | Web_scrape -> "web-scrape"
  | Manual_entry -> "manual-entry"

let default_fidelity = function
  | Direct_measurement -> 0.98
  | Survey -> 0.85
  | Derived -> 0.9
  | Web_scrape -> 0.7
  | Manual_entry -> 0.8
