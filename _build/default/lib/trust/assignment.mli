(** Confidence assignment (the paper's first framework element).

    Turns {!Provenance.record}s into confidence values.  The model follows
    the structure of Dai et al. (SDM 2008): the base confidence is the
    provider's trustworthiness attenuated by every processing step's
    fidelity and by staleness, then boosted towards 1 by independent
    corroborating sources.

    Formally, with provider trust [t], step fidelities [f_1 … f_k],
    age [a] (days), decay half-life [h], and [c] corroborations of strength
    [s]:

    {v base = t * Π f_i * 2^(-a/h)
       conf = 1 - (1 - base) * (1 - s)^c v}

    The module also provides {!refine}, a fixed-point iteration that
    re-estimates provider trust from the agreement between tuples asserted
    by multiple providers (a miniature of the source-truth-discovery loop in
    the SDM 2008 paper). *)

type params = {
  half_life_days : float;  (** staleness half-life; default 3650 *)
  corroboration_strength : float;  (** per-source boost [s]; default 0.3 *)
}

val default_params : params

val score : ?params:params -> Provenance.record -> float
(** [score record] is the confidence implied by [record], in [\[0,1\]]. *)

val assign :
  ?params:params ->
  Relational.Database.t ->
  (Lineage.Tid.t * Provenance.record) list ->
  Relational.Database.t
(** [assign db records] seeds the confidence of every listed tuple with its
    provenance score. *)

type claim = { claim_provider : string; claim_key : string; claim_value : string }
(** An assertion by a provider: "the item identified by [claim_key] has
    value [claim_value]".  Agreement across providers on the same key drives
    {!refine}. *)

val refine :
  ?iterations:int ->
  ?damping:float ->
  (string * float) list ->
  claim list ->
  (string * float) list
(** [refine priors claims] runs truth-discovery iterations: a value's vote
    is the trust mass of its supporters divided by the trust mass behind
    every value claimed for the same key; a provider's new trust is the
    damped mean vote of the values it asserted.  Returns the refined
    provider trust map, same keys as [priors].  Defaults: 10 iterations,
    damping 0.2 (trust moves 80% towards the evidence each round).
    Providers without claims keep their prior. *)
