(** Provenance records for base tuples.

    The paper obtains confidence values from the provenance-based trust
    model of Dai et al. (SDM 2008): the trustworthiness of a data item
    depends on the trustworthiness of the providers it came from and on the
    way it was collected.  We implement that substrate as a small
    provenance model: each base tuple has a {e source provider} and passed
    through a sequence of {e processing steps}, each with a fidelity factor.

    This module only stores the records; {!Assignment} turns them into
    confidence values. *)

type provider = {
  pid : string;
  trust : float;  (** prior trustworthiness of the provider, in [\[0,1\]] *)
}

type method_kind =
  | Direct_measurement  (** e.g. audited financial statement *)
  | Survey  (** self-reported data *)
  | Derived  (** computed from other records *)
  | Web_scrape  (** harvested from public sources *)
  | Manual_entry  (** typed in by an operator *)

type step = {
  kind : method_kind;
  fidelity : float;
      (** multiplicative confidence retention of this step, in [\[0,1\]] *)
}

type record = {
  source : provider;
  path : step list;  (** processing steps, source first *)
  age_days : float;  (** staleness of the item *)
  corroborations : int;  (** independent sources agreeing with the item *)
}

val make_provider : string -> trust:float -> provider
(** @raise Invalid_argument if [trust] is outside [\[0,1\]]. *)

val make_step : method_kind -> fidelity:float -> step
(** @raise Invalid_argument if [fidelity] is outside [\[0,1\]]. *)

val make_record :
  source:provider -> ?path:step list -> ?age_days:float ->
  ?corroborations:int -> unit -> record
(** Defaults: empty path, zero age, zero corroborations.
    @raise Invalid_argument on negative [age_days] or [corroborations]. *)

val method_kind_name : method_kind -> string

val default_fidelity : method_kind -> float
(** A reasonable default fidelity per collection method (direct measurement
    highest, web scrape lowest), used when callers have no calibration. *)
