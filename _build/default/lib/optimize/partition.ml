type edge_semantics = Shared_count | Union_size

type config = {
  gamma : float;
  max_group_bases : int option;
  semantics : edge_semantics;
}

let default_config =
  { gamma = 2.0; max_group_bases = Some 256; semantics = Shared_count }

type t = {
  groups : int list array;
  group_of : int array;
  group_bases : int list array;
}

module IntSet = Set.Make (Int)

(* Union-find over result ids, with path compression. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let partition ?(config = default_config) problem =
  let nr = Problem.num_results problem in
  let parent = Array.init nr Fun.id in
  let bases =
    Array.init nr (fun rid ->
        IntSet.of_list (Problem.bases_of_result problem rid))
  in
  (* initial pairwise weights via the inverted index: results sharing a
     base form a clique, so the pair count accumulates |Gi ∩ Gj| *)
  let pair_weight : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
  for bid = 0 to Problem.num_bases problem - 1 do
    let rids = Problem.results_of_base problem bid in
    let rec pairs = function
      | [] -> ()
      | r :: rest ->
        List.iter
          (fun r' ->
            let key = if r < r' then (r, r') else (r', r) in
            Hashtbl.replace pair_weight key
              (1.0 +. Option.value ~default:0.0 (Hashtbl.find_opt pair_weight key)))
          rest;
        pairs rest
    in
    pairs rids
  done;
  (* group adjacency: root -> (root -> weight); weights merge additively
     (the paper: the edge to a merged group is the sum of member edges) *)
  let adj : (int, (int, float) Hashtbl.t) Hashtbl.t = Hashtbl.create nr in
  let adj_of root =
    match Hashtbl.find_opt adj root with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.add adj root h;
      h
  in
  let edge_weight a b =
    match config.semantics with
    | Shared_count ->
      Option.value ~default:0.0 (Hashtbl.find_opt pair_weight (min a b, max a b))
    | Union_size ->
      let w =
        Option.value ~default:0.0 (Hashtbl.find_opt pair_weight (min a b, max a b))
      in
      if w > 0.0 then float_of_int (IntSet.cardinal (IntSet.union bases.(a) bases.(b)))
      else 0.0
  in
  let heap : (int * int) Heap.t = Heap.create ~capacity:(Hashtbl.length pair_weight + 1) () in
  Hashtbl.iter
    (fun (a, b) _ ->
      let w = edge_weight a b in
      if w > 0.0 then begin
        Hashtbl.replace (adj_of a) b w;
        Hashtbl.replace (adj_of b) a w;
        Heap.push heap w (a, b)
      end)
    pair_weight;
  let size_ok a b =
    match config.max_group_bases with
    | None -> true
    | Some limit -> IntSet.cardinal (IntSet.union bases.(a) bases.(b)) <= limit
  in
  let current_weight ra rb =
    match Hashtbl.find_opt adj ra with
    | None -> None
    | Some h -> Hashtbl.find_opt h rb
  in
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop heap with
    | None -> continue_ := false
    | Some (w, (a, b)) -> (
      let ra = find parent a and rb = find parent b in
      if ra <> rb then
        match current_weight ra rb with
        | None -> () (* stale: groups no longer adjacent under these roots *)
        | Some w_now ->
          if Float.abs (w_now -. w) > 1e-9 then
            () (* stale weight: a fresher entry is (or was) in the heap *)
          else if w_now < config.gamma then continue_ := false
          else if size_ok ra rb then begin
            (* merge rb into ra *)
            parent.(rb) <- ra;
            bases.(ra) <- IntSet.union bases.(ra) bases.(rb);
            let ha = adj_of ra in
            (* absorb rb's adjacency, summing weights *)
            (match Hashtbl.find_opt adj rb with
            | None -> ()
            | Some hb ->
              Hashtbl.iter
                (fun n wbn ->
                  let n = find parent n in
                  if n <> ra then begin
                    let wan = Option.value ~default:0.0 (Hashtbl.find_opt ha n) in
                    let w' = wan +. wbn in
                    Hashtbl.replace ha n w';
                    let hn = adj_of n in
                    Hashtbl.remove hn rb;
                    Hashtbl.replace hn ra w';
                    Heap.push heap w' (ra, n)
                  end)
                hb;
              Hashtbl.remove adj rb);
            Hashtbl.remove ha rb
          end
          else begin
            (* size-guard refusal: drop the edge so it is not retried *)
            Hashtbl.remove (adj_of ra) rb;
            Hashtbl.remove (adj_of rb) ra
          end)
  done;
  (* collect groups *)
  let group_ids = Hashtbl.create 16 in
  let group_count = ref 0 in
  let group_of = Array.make nr 0 in
  for rid = 0 to nr - 1 do
    let root = find parent rid in
    let gid =
      match Hashtbl.find_opt group_ids root with
      | Some g -> g
      | None ->
        let g = !group_count in
        Hashtbl.add group_ids root g;
        incr group_count;
        g
    in
    group_of.(rid) <- gid
  done;
  let groups = Array.make !group_count [] in
  for rid = nr - 1 downto 0 do
    groups.(group_of.(rid)) <- rid :: groups.(group_of.(rid))
  done;
  let group_bases =
    Array.map
      (fun members ->
        IntSet.elements
          (List.fold_left
             (fun acc rid ->
               IntSet.union acc
                 (IntSet.of_list (Problem.bases_of_result problem rid)))
             IntSet.empty members))
      groups
  in
  { groups; group_of; group_bases }

let num_groups t = Array.length t.groups

let check problem t =
  let nr = Problem.num_results problem in
  let seen = Array.make nr false in
  let ok = ref (Ok ()) in
  Array.iteri
    (fun gid members ->
      List.iter
        (fun rid ->
          if rid < 0 || rid >= nr then
            ok := Error (Printf.sprintf "group %d: rid %d out of range" gid rid)
          else if seen.(rid) then
            ok := Error (Printf.sprintf "rid %d appears in two groups" rid)
          else begin
            seen.(rid) <- true;
            if t.group_of.(rid) <> gid then
              ok := Error (Printf.sprintf "group_of(%d) inconsistent" rid)
          end)
        members)
    t.groups;
  Array.iteri
    (fun rid covered ->
      if not covered then
        ok := Error (Printf.sprintf "rid %d missing from partition" rid))
    seen;
  (match !ok with
  | Ok () ->
    Array.iteri
      (fun gid members ->
        let expect =
          IntSet.elements
            (List.fold_left
               (fun acc rid ->
                 IntSet.union acc
                   (IntSet.of_list (Problem.bases_of_result problem rid)))
               IntSet.empty members)
        in
        if expect <> t.group_bases.(gid) then
          ok := Error (Printf.sprintf "group %d: base union mismatch" gid))
      t.groups
  | Error _ -> ());
  !ok
