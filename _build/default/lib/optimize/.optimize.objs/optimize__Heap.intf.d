lib/optimize/heap.mli:
