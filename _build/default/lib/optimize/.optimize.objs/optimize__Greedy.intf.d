lib/optimize/greedy.mli: Lineage Problem State
