lib/optimize/greedy.ml: Array Float Hashtbl Heap Lineage List Problem State
