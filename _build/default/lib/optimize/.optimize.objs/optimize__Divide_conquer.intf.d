lib/optimize/divide_conquer.mli: Greedy Lineage Partition Problem
