lib/optimize/partition.mli: Problem
