lib/optimize/state.ml: Array Cost Float Lineage List Printf Problem
