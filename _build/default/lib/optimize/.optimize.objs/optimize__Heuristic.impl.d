lib/optimize/heuristic.ml: Array Cost Float Fun Lineage List Option Problem State
