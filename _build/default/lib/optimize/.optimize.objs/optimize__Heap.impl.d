lib/optimize/heap.ml: Array
