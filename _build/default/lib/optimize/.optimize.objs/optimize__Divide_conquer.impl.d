lib/optimize/divide_conquer.ml: Array Float Fun Greedy Heuristic Lineage List Option Partition Problem State
