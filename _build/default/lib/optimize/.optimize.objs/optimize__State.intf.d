lib/optimize/state.mli: Lineage Problem
