lib/optimize/partition.ml: Array Float Fun Hashtbl Heap Int List Option Printf Problem Set
