lib/optimize/annealing.mli: Lineage Problem
