lib/optimize/heuristic.mli: Lineage Problem
