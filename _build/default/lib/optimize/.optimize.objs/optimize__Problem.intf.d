lib/optimize/problem.mli: Cost Lineage Relational
