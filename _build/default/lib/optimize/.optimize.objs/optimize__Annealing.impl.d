lib/optimize/annealing.ml: Float Lineage List Prng Problem State
