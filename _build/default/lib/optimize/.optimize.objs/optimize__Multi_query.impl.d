lib/optimize/multi_query.ml: Array Cost Float Fun Hashtbl Lineage List Printf Problem Result State
