lib/optimize/solver.mli: Annealing Divide_conquer Greedy Heuristic Lineage Problem
