lib/optimize/problem.ml: Array Cost Lineage List Printf Relational Result
