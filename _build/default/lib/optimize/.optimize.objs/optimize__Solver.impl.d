lib/optimize/solver.ml: Annealing Divide_conquer Float Greedy Heuristic Lineage List Printf Problem State Unix
