lib/optimize/multi_query.mli: Lineage Problem
