type algorithm =
  | Heuristic of Heuristic.config
  | Greedy of Greedy.config
  | Divide_conquer of Divide_conquer.config
  | Annealing of Annealing.config

let heuristic = Heuristic Heuristic.default_config

(* initial_bound = None is replaced by the greedy cost at solve time *)
let heuristic_seeded =
  Heuristic { Heuristic.default_config with initial_bound = Some nan }

let greedy = Greedy Greedy.default_config

let divide_conquer = Divide_conquer Divide_conquer.default_config

let annealing = Annealing Annealing.default_config

let algorithm_name = function
  | Heuristic { initial_bound = Some _; _ } -> "heuristic(seeded)"
  | Heuristic _ -> "heuristic"
  | Greedy { two_phase; selection; _ } ->
    Printf.sprintf "greedy(%s%s)"
      (if two_phase then "two-phase" else "one-phase")
      (match selection with
      | Greedy.Full_rescan -> ""
      | Greedy.Incremental -> ", incremental")
  | Divide_conquer _ -> "divide-and-conquer"
  | Annealing _ -> "simulated-annealing"

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
  cost : float;
  satisfied : int list;
  optimal : bool;
  elapsed_s : float;
  detail : string;
}

let satisfied_of_solution problem solution =
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> ())
    solution;
  State.satisfied_results st

let solve ?(algorithm = divide_conquer) problem =
  let t0 = Unix.gettimeofday () in
  let outcome =
    match algorithm with
    | Heuristic cfg ->
      let cfg =
        match cfg.Heuristic.initial_bound with
        | Some b when Float.is_nan b ->
          (* seeded variant: run greedy first for the upper bound *)
          let g = Greedy.solve problem in
          {
            cfg with
            Heuristic.initial_bound =
              (if g.Greedy.feasible then Some g.Greedy.cost else None);
          }
        | _ -> cfg
      in
      let out = Heuristic.solve ~config:cfg problem in
      let satisfied =
        match out.Heuristic.solution with
        | Some s -> satisfied_of_solution problem s
        | None -> []
      in
      {
        solution = out.Heuristic.solution;
        cost = out.Heuristic.cost;
        satisfied;
        optimal = out.Heuristic.optimal && out.Heuristic.solution <> None;
        elapsed_s = 0.0;
        detail = Printf.sprintf "nodes=%d" out.Heuristic.nodes;
      }
    | Greedy cfg ->
      let out = Greedy.solve ~config:cfg problem in
      {
        solution = (if out.Greedy.feasible then Some out.Greedy.solution else None);
        cost = (if out.Greedy.feasible then out.Greedy.cost else infinity);
        satisfied = out.Greedy.satisfied;
        optimal = false;
        elapsed_s = 0.0;
        detail =
          Printf.sprintf "iterations=%d rollbacks=%d" out.Greedy.iterations
            out.Greedy.rollbacks;
      }
    | Divide_conquer cfg ->
      let out = Divide_conquer.solve ~config:cfg problem in
      {
        solution =
          (if out.Divide_conquer.feasible then Some out.Divide_conquer.solution
           else None);
        cost =
          (if out.Divide_conquer.feasible then out.Divide_conquer.cost
           else infinity);
        satisfied = out.Divide_conquer.satisfied;
        optimal = false;
        elapsed_s = 0.0;
        detail =
          Printf.sprintf "groups=%d heuristic_groups=%d rollbacks=%d"
            out.Divide_conquer.num_groups out.Divide_conquer.heuristic_groups
            out.Divide_conquer.rollbacks;
      }
    | Annealing cfg ->
      let out = Annealing.solve ~config:cfg problem in
      {
        solution =
          (if out.Annealing.feasible then Some out.Annealing.solution else None);
        cost = (if out.Annealing.feasible then out.Annealing.cost else infinity);
        satisfied = out.Annealing.satisfied;
        optimal = false;
        elapsed_s = 0.0;
        detail = Printf.sprintf "accepted_moves=%d" out.Annealing.accepted_moves;
      }
  in
  { outcome with elapsed_s = Unix.gettimeofday () -. t0 }
