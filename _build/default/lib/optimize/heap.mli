(** A mutable binary max-heap with float priorities.

    Used by the lazy-greedy selection loop and the partitioner's max-weight
    edge extraction.  Stale entries are supported by design: callers may
    push several entries for the same payload and ignore outdated pops
    (lazy deletion). *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h priority payload]. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the largest priority. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit
