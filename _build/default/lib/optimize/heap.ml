type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable size : int;
}

let create ?(capacity = 16) () =
  {
    prio = Array.make (max capacity 1) 0.0;
    data = Array.make (max capacity 1) None;
    size = 0;
  }

let length h = h.size
let is_empty h = h.size = 0

let grow h =
  let n = Array.length h.prio in
  let prio = Array.make (2 * n) 0.0 in
  let data = Array.make (2 * n) None in
  Array.blit h.prio 0 prio 0 n;
  Array.blit h.data 0 data 0 n;
  h.prio <- prio;
  h.data <- data

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio.(parent) < h.prio.(i) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < h.size && h.prio.(l) > h.prio.(!largest) then largest := l;
  if r < h.size && h.prio.(r) > h.prio.(!largest) then largest := r;
  if !largest <> i then begin
    swap h i !largest;
    sift_down h !largest
  end

let push h priority payload =
  if h.size = Array.length h.prio then grow h;
  h.prio.(h.size) <- priority;
  h.data.(h.size) <- Some payload;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let p = h.prio.(0) and d = h.data.(0) in
    h.size <- h.size - 1;
    h.prio.(0) <- h.prio.(h.size);
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    if h.size > 0 then sift_down h 0;
    match d with Some d -> Some (p, d) | None -> assert false
  end

let peek h =
  if h.size = 0 then None
  else match h.data.(0) with Some d -> Some (h.prio.(0), d) | None -> assert false

let clear h =
  Array.fill h.data 0 h.size None;
  h.size <- 0
