(** Uniform entry point over the three strategy-finding algorithms.

    Wraps {!Heuristic}, {!Greedy} and {!Divide_conquer} behind one
    algorithm type and one outcome type, with wall-clock timing — the shape
    the PCQE engine and the benchmarks consume. *)

type algorithm =
  | Heuristic of Heuristic.config
  | Greedy of Greedy.config
  | Divide_conquer of Divide_conquer.config
  | Annealing of Annealing.config
      (** extra randomized baseline, not in the paper (see {!Annealing}) *)

val heuristic : algorithm
(** All four heuristics, no bound, exhaustive. *)

val heuristic_seeded : algorithm
(** All four heuristics with the greedy cost as initial bound (computed
    internally before the search, as in Fig. 11(d)). *)

val greedy : algorithm
(** Two-phase greedy with the paper-faithful full-rescan selection. *)

val divide_conquer : algorithm

val annealing : algorithm

val algorithm_name : algorithm -> string

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
      (** raised base tuples with target confidences; [None] if infeasible *)
  cost : float;  (** [infinity] when infeasible *)
  satisfied : int list;  (** rids satisfied under the solution *)
  optimal : bool;  (** guaranteed optimal on the δ-grid (heuristic only) *)
  elapsed_s : float;
  detail : string;  (** algorithm-specific one-liner (nodes, iterations…) *)
}

val solve : ?algorithm:algorithm -> Problem.t -> outcome
(** [solve problem] runs the chosen algorithm (default {!divide_conquer} —
    the paper's best scaling choice) and times it. *)
