module Tid = Lineage.Tid

type t = {
  problem : Problem.t;
  p : float array; (* current level per base *)
  conf : float array; (* cached confidence per result *)
  sat : bool array;
  mutable satisfied : int;
  (* cost accounting: per-base contributions are *replaced*, never
     delta-adjusted, so an infinite contribution (a logarithmic cost model
     at confidence 1) can be entered and left again without producing
     inf - inf = NaN *)
  cost_contrib : float array;
  mutable finite_cost : float;
  mutable infinite_contribs : int;
}

let eval_result st rid = Problem.eval_result st.problem st.p rid

let create problem =
  let nb = Problem.num_bases problem and nr = Problem.num_results problem in
  let st =
    {
      problem;
      p = Array.init nb (fun i -> (Problem.base problem i).Problem.p0);
      conf = Array.make nr 0.0;
      sat = Array.make nr false;
      satisfied = 0;
      cost_contrib = Array.make nb 0.0;
      finite_cost = 0.0;
      infinite_contribs = 0;
    }
  in
  let beta = Problem.beta problem in
  for rid = 0 to nr - 1 do
    let c = eval_result st rid in
    st.conf.(rid) <- c;
    if c > beta then begin
      st.sat.(rid) <- true;
      st.satisfied <- st.satisfied + 1
    end
  done;
  st

let problem st = st.problem

let base_level st bid = st.p.(bid)

let refresh_result st rid =
  let beta = Problem.beta st.problem in
  let c = eval_result st rid in
  st.conf.(rid) <- c;
  let now_sat = c > beta in
  if now_sat && not st.sat.(rid) then begin
    st.sat.(rid) <- true;
    st.satisfied <- st.satisfied + 1
  end
  else if (not now_sat) && st.sat.(rid) then begin
    st.sat.(rid) <- false;
    st.satisfied <- st.satisfied - 1
  end

let set_base st bid p =
  let b = Problem.base st.problem bid in
  if p < b.Problem.p0 -. 1e-9 || p > b.Problem.cap +. 1e-9 then
    invalid_arg
      (Printf.sprintf "State.set_base: %g outside [%g, %g] for %s" p
         b.Problem.p0 b.Problem.cap
         (Tid.to_string b.Problem.tid));
  let p = Float.max b.Problem.p0 (Float.min b.Problem.cap p) in
  let old = st.p.(bid) in
  if Float.abs (p -. old) > 0.0 then begin
    let new_contrib =
      Cost.Cost_model.eval b.Problem.cost ~from_:b.Problem.p0 ~to_:p
    in
    let old_contrib = st.cost_contrib.(bid) in
    if old_contrib = infinity then
      st.infinite_contribs <- st.infinite_contribs - 1
    else st.finite_cost <- st.finite_cost -. old_contrib;
    if new_contrib = infinity then
      st.infinite_contribs <- st.infinite_contribs + 1
    else st.finite_cost <- st.finite_cost +. new_contrib;
    st.cost_contrib.(bid) <- new_contrib;
    st.p.(bid) <- p;
    List.iter (refresh_result st) (Problem.results_of_base st.problem bid)
  end

(* Delta steps stay on the grid {p0 + k*delta} ∪ {cap}: a step down from a
   clamped cap lands on the largest grid level below it, so greedy
   solutions remain inside the branch-and-bound search space. *)
let raise_by_delta st bid =
  let b = Problem.base st.problem bid in
  let delta = Problem.delta st.problem in
  let cur = st.p.(bid) in
  if cur >= b.Problem.cap -. 1e-12 then false
  else begin
    let k = int_of_float (Float.floor (((cur -. b.Problem.p0) /. delta) +. 1e-9)) in
    let target = b.Problem.p0 +. (float_of_int (k + 1) *. delta) in
    set_base st bid (Float.min b.Problem.cap target);
    true
  end

let lower_by_delta st bid =
  let b = Problem.base st.problem bid in
  let delta = Problem.delta st.problem in
  let cur = st.p.(bid) in
  if cur <= b.Problem.p0 +. 1e-12 then false
  else begin
    let k = int_of_float (Float.floor (((cur -. b.Problem.p0) /. delta) -. 1e-9)) in
    let target = b.Problem.p0 +. (float_of_int k *. delta) in
    set_base st bid (Float.max b.Problem.p0 target);
    true
  end

let result_confidence st rid = st.conf.(rid)

let is_satisfied st rid = st.sat.(rid)

let satisfied_count st = st.satisfied

let satisfied_results st =
  let acc = ref [] in
  for rid = Array.length st.sat - 1 downto 0 do
    if st.sat.(rid) then acc := rid :: !acc
  done;
  !acc

let cost st = if st.infinite_contribs > 0 then infinity else st.finite_cost

let raised_bases st =
  let acc = ref [] in
  for bid = Array.length st.p - 1 downto 0 do
    if st.p.(bid) > (Problem.base st.problem bid).Problem.p0 +. 1e-12 then
      acc := bid :: !acc
  done;
  !acc

let solution st =
  List.map
    (fun bid -> ((Problem.base st.problem bid).Problem.tid, st.p.(bid)))
    (raised_bases st)

let snapshot st = Array.copy st.p

let restore st saved =
  Array.iteri
    (fun bid p -> if Float.abs (p -. st.p.(bid)) > 0.0 then set_base st bid p)
    saved

let reset st =
  for bid = 0 to Array.length st.p - 1 do
    let p0 = (Problem.base st.problem bid).Problem.p0 in
    if st.p.(bid) <> p0 then set_base st bid p0
  done

let confidence_with_override st ~rid ~bid ~level =
  let saved = st.p.(bid) in
  st.p.(bid) <- level;
  let f = Problem.eval_result st.problem st.p rid in
  st.p.(bid) <- saved;
  f

let gain st bid ?(only_unsatisfied = false) dp =
  let b = Problem.base st.problem bid in
  let cur = st.p.(bid) in
  let target = Float.min b.Problem.cap (cur +. dp) in
  if target <= cur +. 1e-12 then 0.0
  else begin
    let dcost = Cost.Cost_model.eval b.Problem.cost ~from_:cur ~to_:target in
    if dcost <= 0.0 || Float.is_nan dcost || dcost = infinity then 0.0
    else begin
      let sum = ref 0.0 in
      let saved = st.p.(bid) in
      st.p.(bid) <- target;
      List.iter
        (fun rid ->
          if not (only_unsatisfied && st.sat.(rid)) then begin
            let f_new = Problem.eval_result st.problem st.p rid in
            sum := !sum +. (f_new -. st.conf.(rid))
          end)
        (Problem.results_of_base st.problem bid);
      st.p.(bid) <- saved;
      !sum /. dcost
    end
  end
