(** Lightweight graph partitioning over intermediate result tuples
    (§4.3 of the paper).

    Nodes are result tuples; two nodes are connected when they share base
    tuples.  The paper's prose and worked example (Fig. 8) weight an edge
    by the {e number of shared base tuples}; the pseudocode of Fig. 10
    writes [|Gi ∪ Gj|] instead — we implement the intersection semantics by
    default and expose the union variant for ablation (see DESIGN.md).

    Merging is the paper's lightweight scheme: start with singleton groups,
    repeatedly merge the two groups connected by the maximum-weight edge
    (re-weighting edges to a merged group as the sum of the member edges),
    and stop when the maximum weight drops below γ.  A size guard keeps any
    group from exceeding [max_group_bases] base tuples so each sub-problem
    stays tractable (the paper's first partitioning requirement). *)

type edge_semantics = Shared_count | Union_size

type config = {
  gamma : float;  (** stop when the max inter-group weight is below this *)
  max_group_bases : int option;
      (** refuse merges whose union of base tuples exceeds this *)
  semantics : edge_semantics;  (** default [Shared_count] *)
}

val default_config : config
(** γ = 2, groups bounded to 256 base tuples, [Shared_count].
    The size bound is the paper's first partitioning requirement — without
    it the additive merge rule percolates through the whole instance and
    D&C degenerates to plain greedy. *)

type t = {
  groups : int list array;  (** group -> member rids, ascending *)
  group_of : int array;  (** rid -> group index *)
  group_bases : int list array;  (** group -> union of bids, ascending *)
}

val partition : ?config:config -> Problem.t -> t

val num_groups : t -> int

val check : Problem.t -> t -> (unit, string) result
(** Structural validation: groups form a partition of the problem's
    results and [group_bases] is exactly the union of the members' bases.
    Used by tests and assertions. *)
