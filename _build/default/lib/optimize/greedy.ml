type selection = Full_rescan | Incremental

type config = {
  two_phase : bool;
  selection : selection;
  only_unsatisfied_gain : bool;
}

let default_config =
  { two_phase = true; selection = Full_rescan; only_unsatisfied_gain = true }

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  iterations : int;
  rollbacks : int;
}

let compute_gain cfg st bid =
  State.gain st bid
    ~only_unsatisfied:cfg.only_unsatisfied_gain
    (Problem.delta (State.problem st))

(* ------------------------------------------------------------------ *)
(* Phase 1, full-rescan selection (paper-faithful) *)

let select_full_rescan cfg st =
  let nb = Problem.num_bases (State.problem st) in
  let best = ref (-1) and best_gain = ref 0.0 in
  for bid = 0 to nb - 1 do
    let g = compute_gain cfg st bid in
    if g > !best_gain then begin
      best := bid;
      best_gain := g
    end
  done;
  if !best >= 0 then Some (!best, !best_gain) else None

let phase1_full_rescan cfg st last_gain =
  let problem = State.problem st in
  let required = Problem.required problem in
  let iterations = ref 0 in
  let feasible = ref true in
  while State.satisfied_count st < required && !feasible do
    match select_full_rescan cfg st with
    | None -> feasible := false
    | Some (bid, g) ->
      if State.raise_by_delta st bid then begin
        last_gain.(bid) <- g;
        incr iterations
      end
      else feasible := false
  done;
  (!iterations, !feasible)

(* ------------------------------------------------------------------ *)
(* Phase 1, incremental selection: same argmax sequence, maintained in a
   version-stamped heap.  When base [b] is raised, only gains of bases
   sharing an affected result with [b] can change. *)

let neighbors problem bid =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun rid ->
      List.iter
        (fun b -> Hashtbl.replace seen b ())
        (Problem.bases_of_result problem rid))
    (Problem.results_of_base problem bid);
  Hashtbl.fold (fun b () acc -> b :: acc) seen []

let phase1_incremental cfg st last_gain =
  let problem = State.problem st in
  let nb = Problem.num_bases problem in
  let required = Problem.required problem in
  let stamp = Array.make nb 0 in
  let heap : (int * int) Heap.t = Heap.create ~capacity:(nb + 1) () in
  let push bid =
    let g = compute_gain cfg st bid in
    stamp.(bid) <- stamp.(bid) + 1;
    if g > 0.0 then Heap.push heap g (bid, stamp.(bid))
  in
  for bid = 0 to nb - 1 do
    push bid
  done;
  let iterations = ref 0 in
  let feasible = ref true in
  while State.satisfied_count st < required && !feasible do
    match Heap.pop heap with
    | None -> feasible := false
    | Some (g, (bid, s)) ->
      if s = stamp.(bid) then
        if State.raise_by_delta st bid then begin
          last_gain.(bid) <- g;
          incr iterations;
          List.iter push (neighbors problem bid)
        end
        else
          (* at cap: stamp it out of the heap *)
          stamp.(bid) <- stamp.(bid) + 1
      (* stale entry: ignore *)
  done;
  (!iterations, !feasible)

(* ------------------------------------------------------------------ *)
(* Phase 2: rollback in ascending latest-gain* order (Fig. 6, lines 12-19) *)

let phase2 st last_gain =
  let problem = State.problem st in
  let required = Problem.required problem in
  let raised = State.raised_bases st in
  let order =
    List.stable_sort
      (fun a b -> Float.compare last_gain.(a) last_gain.(b))
      raised
  in
  let rollbacks = ref 0 in
  List.iter
    (fun bid ->
      let continue_ = ref true in
      while !continue_ && State.satisfied_count st >= required do
        if State.lower_by_delta st bid then
          if State.satisfied_count st < required then begin
            (* one step too far: undo *)
            ignore (State.raise_by_delta st bid);
            continue_ := false
          end
          else incr rollbacks
        else continue_ := false
      done)
    order;
  !rollbacks

let solve_state ?(config = default_config) st =
  let problem = State.problem st in
  let nb = Problem.num_bases problem in
  let last_gain = Array.make nb 0.0 in
  let iterations, feasible =
    match config.selection with
    | Full_rescan -> phase1_full_rescan config st last_gain
    | Incremental -> phase1_incremental config st last_gain
  in
  let rollbacks =
    if config.two_phase && feasible then phase2 st last_gain else 0
  in
  {
    solution = State.solution st;
    cost = State.cost st;
    satisfied = State.satisfied_results st;
    feasible;
    iterations;
    rollbacks;
  }

let solve ?config problem = solve_state ?config (State.create problem)
