(** Mutable assignment state shared by all solvers.

    Tracks the current confidence of every base tuple, lazily re-evaluates
    affected result confidences when a base changes (using the problem's
    inverted index), and maintains the satisfied count and total cost
    incrementally.  A result is {e satisfied} when its confidence is
    strictly above β (the paper's "higher than the threshold"). *)

type t

val create : Problem.t -> t
(** Fresh state at the initial confidences. *)

val problem : t -> Problem.t

val base_level : t -> int -> float
(** Current confidence of a base tuple. *)

val set_base : t -> int -> float -> unit
(** [set_base st bid p] sets a base tuple's confidence.
    @raise Invalid_argument if [p] is outside [\[p0, cap\]] (the optimizer
    may roll increments back, but never below the initial level). *)

val raise_by_delta : t -> int -> bool
(** [raise_by_delta st bid] raises the base by one grid step (clamped to
    the cap).  Returns [false] (and does nothing) when already at cap. *)

val lower_by_delta : t -> int -> bool
(** Inverse of {!raise_by_delta}; stops at [p0]. *)

val result_confidence : t -> int -> float
(** Confidence of result [rid] under the current assignment (cached). *)

val is_satisfied : t -> int -> bool

val satisfied_count : t -> int

val satisfied_results : t -> int list
(** Ascending rids. *)

val cost : t -> float
(** Total increment cost of the current assignment vs the initial one. *)

val raised_bases : t -> int list
(** Bids whose level is currently above their initial confidence,
    ascending. *)

val solution : t -> (Lineage.Tid.t * float) list
(** Target levels for raised bases only — the strategy reported to the
    user ("increase tuple X to confidence p"). *)

val snapshot : t -> float array
(** Copy of the current per-base levels (index = bid). *)

val restore : t -> float array -> unit
(** Restore a {!snapshot}.  O(changed bases) re-evaluation. *)

val reset : t -> unit
(** Back to the initial assignment. *)

val confidence_with_override : t -> rid:int -> bid:int -> level:float -> float
(** [confidence_with_override st ~rid ~bid ~level] is the confidence of
    [rid] if base [bid] were at [level], without changing the state. *)

val gain : t -> int -> ?only_unsatisfied:bool -> float -> float
(** [gain st bid dp] is the paper's gain*: [Σ ΔF_λ / Δcost] over the
    results affected by [bid] when raising it by [dp] (clamped at cap).
    [only_unsatisfied] (default [false], the paper's definition) restricts
    the sum to results not yet above β.  Returns 0 when the base cannot be
    raised or the cost of the step is infinite. *)
