(** Query input accepted by the engine: SQL text or a prebuilt plan. *)

type t = Sql of string | Plan of Relational.Algebra.t

val sql : string -> t
val plan : Relational.Algebra.t -> t

val to_plan : t -> (Relational.Algebra.t, string) result
(** Compile SQL text when needed. *)

val to_string : t -> string
