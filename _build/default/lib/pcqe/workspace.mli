(** On-disk workspaces: everything an engine context needs, in one
    directory of plain-text files.

    {v workspace/
         relations/<Name>.csv   one relation per file; optional
                                __confidence:real column
         rbac.txt               RBAC directives ({!Rbac.Config})
         policies.txt           confidence policies ({!Rbac.Policy})
         views.sql              optional: "name: SELECT ..." per line
         costs.txt              optional: "<tid> <cost spec>" per line,
                                plus "default <cost spec>"
                                ({!Cost.Cost_model.parse})
         caps.txt               optional: "<tid> <max confidence>" per line v}

    Blank lines and [#] comments are accepted everywhere.  {!load} builds
    a ready {!Engine.context}; {!save} writes the state back (relations
    with their current confidences, policies, RBAC, views — cost functions
    and caps are written from the snapshot taken at load time, since the
    context only holds them as functions). *)

type t = {
  context : Engine.context;
  cost_specs : (Lineage.Tid.t * Cost.Cost_model.t) list;
  default_cost : Cost.Cost_model.t;
  caps : (Lineage.Tid.t * float) list;
}

val load : ?solver:Optimize.Solver.algorithm -> string -> (t, string) result
(** [load dir] reads every file of the layout above.  [relations/],
    [rbac.txt] and [policies.txt] are required; the rest default to
    empty.  Errors carry the offending file and line. *)

val save : string -> t -> (unit, string) result
(** [save dir t] writes the workspace back (creating [dir] and
    [dir/relations] as needed).  Relations are exported with their
    {e current} confidences, so a load → improve → save cycle persists the
    data-quality improvements. *)
