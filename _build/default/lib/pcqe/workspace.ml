module Tid = Lineage.Tid
module Db = Relational.Database

type t = {
  context : Engine.context;
  cost_specs : (Tid.t * Cost.Cost_model.t) list;
  default_cost : Cost.Cost_model.t;
  caps : (Tid.t * float) list;
}

let ( let* ) = Result.bind

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

let read_optional path =
  if Sys.file_exists path then Result.map Option.some (read_file path)
  else Ok None

let data_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')

(* "<tid> <rest>" split *)
let split_head line =
  match String.index_opt line ' ' with
  | None -> None
  | Some i ->
    Some
      ( String.sub line 0 i,
        String.trim (String.sub line i (String.length line - i)) )

let parse_costs text =
  let table = ref [] in
  let default = ref (Cost.Cost_model.linear ~rate:100.0) in
  let* () =
    List.fold_left
      (fun acc (lineno, line) ->
        let* () = acc in
        match split_head line with
        | None -> Error (Printf.sprintf "costs.txt:%d: missing spec" lineno)
        | Some (head, spec) -> (
          match Cost.Cost_model.parse spec with
          | Error msg -> Error (Printf.sprintf "costs.txt:%d: %s" lineno msg)
          | Ok cost ->
            if head = "default" then begin
              default := cost;
              Ok ()
            end
            else (
              match Tid.of_string head with
              | Some tid ->
                table := (tid, cost) :: !table;
                Ok ()
              | None ->
                Error (Printf.sprintf "costs.txt:%d: bad tuple id %S" lineno head))))
      (Ok ()) (data_lines text)
  in
  Ok (List.rev !table, !default)

let parse_caps text =
  List.fold_left
    (fun acc (lineno, line) ->
      let* caps = acc in
      match split_head line with
      | None -> Error (Printf.sprintf "caps.txt:%d: missing value" lineno)
      | Some (head, value) -> (
        match (Tid.of_string head, float_of_string_opt value) with
        | Some tid, Some cap when cap >= 0.0 && cap <= 1.0 ->
          Ok ((tid, cap) :: caps)
        | Some _, _ -> Error (Printf.sprintf "caps.txt:%d: bad cap %S" lineno value)
        | None, _ -> Error (Printf.sprintf "caps.txt:%d: bad tuple id %S" lineno head)))
    (Ok []) (data_lines text)
  |> Result.map List.rev

let parse_views text =
  List.fold_left
    (fun acc (lineno, line) ->
      let* views = acc in
      match String.index_opt line ':' with
      | None -> Error (Printf.sprintf "views.sql:%d: expected 'name: SELECT ...'" lineno)
      | Some i -> (
        let name = String.trim (String.sub line 0 i) in
        let sql = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
        if name = "" then Error (Printf.sprintf "views.sql:%d: empty view name" lineno)
        else
          match Relational.Views.of_sql views ~name sql with
          | Ok views -> Ok views
          | Error msg -> Error (Printf.sprintf "views.sql:%d: %s" lineno msg)))
    (Ok Relational.Views.empty)
    (data_lines text)

let load_relations dir =
  let rel_dir = Filename.concat dir "relations" in
  let* entries =
    try Ok (Sys.readdir rel_dir)
    with Sys_error msg -> Error ("relations/: " ^ msg)
  in
  let csvs =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.sort String.compare
  in
  if csvs = [] then Error (Printf.sprintf "no .csv files in %s" rel_dir)
  else
    List.fold_left
      (fun acc file ->
        let* db = acc in
        let name = Filename.remove_extension file in
        Relational.Csv.load_file db ~name (Filename.concat rel_dir file))
      (Ok Db.empty) csvs

let load ?(solver = Optimize.Solver.divide_conquer) dir =
  let* db = load_relations dir in
  let* rbac_text = read_file (Filename.concat dir "rbac.txt") in
  let* rbac = Rbac.Config.parse rbac_text in
  let* policy_text = read_file (Filename.concat dir "policies.txt") in
  let* policies = Rbac.Policy.parse_store policy_text in
  let* views =
    let* t = read_optional (Filename.concat dir "views.sql") in
    match t with
    | None -> Ok Relational.Views.empty
    | Some text -> parse_views text
  in
  let* cost_specs, default_cost =
    let* t = read_optional (Filename.concat dir "costs.txt") in
    match t with
    | None -> Ok ([], Cost.Cost_model.linear ~rate:100.0)
    | Some text -> parse_costs text
  in
  let* caps =
    let* t = read_optional (Filename.concat dir "caps.txt") in
    match t with None -> Ok [] | Some text -> parse_caps text
  in
  let* db =
    List.fold_left
      (fun acc (tid, cap) ->
        let* db = acc in
        match Db.set_confidence_cap db tid cap with
        | db -> Ok db
        | exception Invalid_argument msg -> Error ("caps.txt: " ^ msg))
      (Ok db) caps
  in
  let cost_table = Tid.Table.create (List.length cost_specs) in
  List.iter (fun (tid, c) -> Tid.Table.replace cost_table tid c) cost_specs;
  let cost_of tid =
    Option.value ~default:default_cost (Tid.Table.find_opt cost_table tid)
  in
  let cap_table = Tid.Table.create (List.length caps) in
  List.iter (fun (tid, c) -> Tid.Table.replace cap_table tid c) caps;
  let cap_of tid = Option.value ~default:1.0 (Tid.Table.find_opt cap_table tid) in
  let context =
    Engine.make_context ~solver ~cost_of ~cap_of ~views ~db ~rbac ~policies ()
  in
  Ok { context; cost_specs; default_cost; caps }

let write_file path content =
  try
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc;
    Ok ()
  with Sys_error msg -> Error msg

let mkdir_p path =
  try
    if not (Sys.file_exists path) then Unix.mkdir path 0o755;
    Ok ()
  with Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)

let save dir t =
  let ctx = t.context in
  let* () = mkdir_p dir in
  let rel_dir = Filename.concat dir "relations" in
  let* () = mkdir_p rel_dir in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        let rel = Db.relation_exn ctx.Engine.db name in
        write_file
          (Filename.concat rel_dir (name ^ ".csv"))
          (Relational.Csv.to_string ctx.Engine.db rel))
      (Ok ())
      (Db.relation_names ctx.Engine.db)
  in
  let* () =
    write_file (Filename.concat dir "rbac.txt")
      (Rbac.Config.to_string ctx.Engine.rbac)
  in
  let* () =
    write_file
      (Filename.concat dir "policies.txt")
      (Rbac.Policy.store_to_string ctx.Engine.policies ^ "\n")
  in
  let* () =
    let lines =
      List.filter_map
        (fun name ->
          (* views were registered from SQL or plans; persist the plan's
             textual rendering as a comment when it cannot round-trip *)
          Option.map
            (fun _ -> name)
            (Relational.Views.find ctx.Engine.views name))
        (Relational.Views.names ctx.Engine.views)
    in
    if lines = [] then Ok ()
    else
      (* plans do not reliably round-trip to SQL; persist the original
         definitions only when the caller keeps views.sql under its own
         control.  We emit a marker file so saves are lossless for
         view-free workspaces and explicit for others. *)
      write_file
        (Filename.concat dir "views.sql.readme")
        ("# views present in the loaded context: "
        ^ String.concat ", " lines
        ^ "\n# re-create views.sql by hand; plan-level views do not round-trip to SQL\n")
  in
  let* () =
    let buf = Buffer.create 128 in
    Buffer.add_string buf
      (Printf.sprintf "default %s\n" (Cost.Cost_model.spec t.default_cost));
    List.iter
      (fun (tid, c) ->
        Buffer.add_string buf
          (Printf.sprintf "%s %s\n" (Tid.to_string tid) (Cost.Cost_model.spec c)))
      t.cost_specs;
    write_file (Filename.concat dir "costs.txt") (Buffer.contents buf)
  in
  if t.caps = [] then Ok ()
  else
    write_file (Filename.concat dir "caps.txt")
      (String.concat "\n"
         (List.map
            (fun (tid, cap) -> Printf.sprintf "%s %g" (Tid.to_string tid) cap)
            t.caps)
      ^ "\n")
