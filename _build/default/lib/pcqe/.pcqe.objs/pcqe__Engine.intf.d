lib/pcqe/engine.mli: Cost Lineage Optimize Query Rbac Relational
