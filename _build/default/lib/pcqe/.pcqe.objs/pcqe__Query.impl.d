lib/pcqe/query.ml: Relational
