lib/pcqe/report.ml: Array Buffer Engine Lineage List Printf Rbac Relational String
