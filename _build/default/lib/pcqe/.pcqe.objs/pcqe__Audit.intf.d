lib/pcqe/audit.mli: Engine Lineage
