lib/pcqe/query.mli: Relational
