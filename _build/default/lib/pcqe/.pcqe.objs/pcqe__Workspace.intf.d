lib/pcqe/workspace.mli: Cost Engine Lineage Optimize
