lib/pcqe/repl.mli: Audit Engine
