lib/pcqe/repl.ml: Audit Buffer Cost Engine Filename Lineage List Optimize Option Printf Query Rbac Relational Report Result String Workspace
