lib/pcqe/lead_time.ml: Array Buffer Cost Engine Float Lineage List Printf Relational
