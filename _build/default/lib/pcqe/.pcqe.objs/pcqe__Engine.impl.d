lib/pcqe/engine.ml: Cost Float Lineage List Optimize Option Printf Query Rbac Relational Result String
