lib/pcqe/lead_time.mli: Cost Engine Lineage Relational
