lib/pcqe/report.mli: Engine
