lib/pcqe/workspace.ml: Array Buffer Cost Engine Filename Lineage List Optimize Option Printf Rbac Relational Result String Sys Unix
