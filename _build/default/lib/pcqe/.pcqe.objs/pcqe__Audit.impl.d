lib/pcqe/audit.ml: Buffer Engine Lineage List Option Printf Result String
