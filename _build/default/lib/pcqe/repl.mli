(** Interactive session logic for the [pcqe repl] command.

    The REPL state machine is pure (state in, state and output text out),
    so the whole command surface is unit-testable; the CLI wraps it in a
    stdin loop.

    Input lines are either SQL (executed under the current user/purpose
    through the full PCQE pipeline) or meta commands:

    {v \user <name>          act as this user
       \purpose <purpose>    set the query purpose
       \perc <fraction>      set the required result fraction (theta)
       \solver <name>        heuristic | greedy | dnc | annealing
       \apply                accept the last improvement proposal
       \explain              lineage explanations for the last query:
                             minimal witnesses and per-tuple influence
       \audit                show this session's audit trail
       \save <dir>           save the workspace (with improvements) and
                             the audit log
       \tables               list relations (with cardinalities)
       \views                list registered views
       \policies             list confidence policies
       \whoami               show the session settings
       \help                 this text
       \quit                 leave (the CLI handles it) v} *)

type t

val create : Engine.context -> t
(** Fresh state: no user, purpose ["adhoc"], perc 1.0. *)

val context : t -> Engine.context
(** The current engine context (updated by [\apply]). *)

val audit : t -> Audit.t
(** Every query, denial and accepted improvement of this session. *)

type outcome =
  | Reply of t * string  (** new state and text to print *)
  | Quit  (** the user asked to leave *)

val execute : t -> string -> outcome
(** [execute t line] processes one input line.  Errors (bad SQL, RBAC
    denials, unknown meta commands) are reported in the reply text; the
    state survives them. *)
