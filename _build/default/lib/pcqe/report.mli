(** Human-readable rendering of engine responses — what the CLI and the
    examples print. *)

val response_to_string : ?max_rows:int -> Engine.response -> string
(** Render a {!Engine.response}: the released rows as a table with
    confidence values, the applied policies and threshold, the withheld
    count, and (when present) the improvement proposal with its per-tuple
    increments and total cost.  [max_rows] truncates the table. *)

val proposal_to_string : Engine.proposal -> string
