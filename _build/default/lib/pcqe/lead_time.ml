module Tid = Lineage.Tid

type task = { tid : Tid.t; from_ : float; to_ : float; duration : float }

type schedule = {
  tasks : (task * int) list;
  workers : int;
  makespan : float;
  total_work : float;
}

let tasks_of_increments ~time_of ~current increments =
  List.filter_map
    (fun (tid, target) ->
      let from_ = current tid in
      if target <= from_ +. 1e-12 then None
      else
        let duration =
          Cost.Cost_model.eval (time_of tid) ~from_ ~to_:target
        in
        if duration <= 0.0 then None
        else Some { tid; from_; to_ = target; duration })
    increments

let tasks_of_proposal ~time_of db (proposal : Engine.proposal) =
  tasks_of_increments ~time_of
    ~current:(Relational.Database.confidence db)
    proposal.Engine.increments

let schedule ~workers tasks =
  if workers < 1 then invalid_arg "Lead_time.schedule: workers must be >= 1";
  (* LPT: sort descending by duration, always assign to the least-loaded
     worker *)
  let sorted =
    List.stable_sort (fun a b -> Float.compare b.duration a.duration) tasks
  in
  let load = Array.make workers 0.0 in
  let assigned =
    List.map
      (fun task ->
        let best = ref 0 in
        for w = 1 to workers - 1 do
          if load.(w) < load.(!best) then best := w
        done;
        load.(!best) <- load.(!best) +. task.duration;
        (task, !best))
      sorted
  in
  let makespan = Array.fold_left Float.max 0.0 load in
  let total_work = List.fold_left (fun acc t -> acc +. t.duration) 0.0 tasks in
  { tasks = assigned; workers; makespan; total_work }

let lead_time ~time_of ~workers db proposal =
  (schedule ~workers (tasks_of_proposal ~time_of db proposal)).makespan

let to_string s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "Improvement schedule: %d task(s) on %d worker(s), makespan %.2f \
        (total work %.2f)\n"
       (List.length s.tasks) s.workers s.makespan s.total_work);
  for w = 0 to s.workers - 1 do
    let mine = List.filter (fun (_, aw) -> aw = w) s.tasks in
    if mine <> [] then begin
      Buffer.add_string buf (Printf.sprintf "  worker %d:\n" w);
      List.iter
        (fun (t, _) ->
          Buffer.add_string buf
            (Printf.sprintf "    %-16s %.2f -> %.2f   (%.2f)\n"
               (Tid.to_string t.tid) t.from_ t.to_ t.duration))
        mine
    end
  done;
  Buffer.contents buf
