(** Lead-time planning for data-quality improvement.

    The paper's conclusion sketches this as future work: "since actually
    improving data quality may take some time, the user can submit the
    query in advance ... and statistics can be used to let the user know
    how much time in advance he needs to issue the query".

    This module implements that estimate.  Each base tuple gets a {e time
    model} — the same non-decreasing cumulative shape as a cost model
    ({!Cost.Cost_model.t}), measuring hours instead of money — and a
    proposal's increments become improvement {e tasks}.  Tasks are
    scheduled on [workers] parallel improvement channels (auditors, survey
    teams, …) with the classic LPT (longest processing time first) greedy,
    a 4/3-approximation of the optimal makespan.  The resulting makespan is
    the lead time to quote to the user. *)

type task = {
  tid : Lineage.Tid.t;
  from_ : float;  (** current confidence *)
  to_ : float;  (** proposed target confidence *)
  duration : float;  (** improvement time, in the time model's unit *)
}

type schedule = {
  tasks : (task * int) list;  (** task, assigned worker (0-based) *)
  workers : int;
  makespan : float;  (** completion time of the busiest worker *)
  total_work : float;  (** sum of all durations *)
}

val tasks_of_increments :
  time_of:(Lineage.Tid.t -> Cost.Cost_model.t) ->
  current:(Lineage.Tid.t -> float) ->
  (Lineage.Tid.t * float) list ->
  task list
(** [tasks_of_increments ~time_of ~current increments] builds one task per
    raised tuple; increments that do not raise the current confidence get
    duration 0 and are dropped. *)

val tasks_of_proposal :
  time_of:(Lineage.Tid.t -> Cost.Cost_model.t) ->
  Relational.Database.t ->
  Engine.proposal ->
  task list
(** Convenience wrapper reading current confidences from the database. *)

val schedule : workers:int -> task list -> schedule
(** LPT scheduling.  @raise Invalid_argument when [workers < 1]. *)

val lead_time :
  time_of:(Lineage.Tid.t -> Cost.Cost_model.t) ->
  workers:int ->
  Relational.Database.t ->
  Engine.proposal ->
  float
(** [lead_time ~time_of ~workers db proposal] is the makespan — how long
    before the expected time of data use the query (and the improvement
    order) must be submitted. *)

val to_string : schedule -> string
(** Per-worker task listing plus the makespan. *)
