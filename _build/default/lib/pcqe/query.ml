type t = Sql of string | Plan of Relational.Algebra.t

let sql s = Sql s
let plan p = Plan p

let to_plan = function
  | Sql s -> Relational.Sql_planner.compile s
  | Plan p -> Ok p

let to_string = function
  | Sql s -> s
  | Plan p -> Relational.Algebra.to_string p
