(** Core role-based access control (NIST RBAC, Ferraiolo et al. 2001).

    The paper positions confidence policies as "a natural extension to
    RBAC"; this module is the RBAC substrate: users, roles, a role
    hierarchy (senior roles inherit the permissions of their juniors),
    user–role assignment, sessions with activated roles, and
    permission–role assignment with permission checking.

    All operations are functional: they return an updated model. *)

type permission = { action : string; resource : string }
(** e.g. [{action = "select"; resource = "Proposal"}].  The resource ["*"]
    and action ["*"] act as wildcards when checking. *)

type t

val empty : t

(** {1 Administration} *)

val add_role : t -> string -> t
(** Idempotent. *)

val add_user : t -> string -> t
(** Idempotent. *)

val add_inheritance : t -> senior:string -> junior:string -> (t, string) result
(** [add_inheritance t ~senior ~junior] makes [senior] inherit all of
    [junior]'s permissions.  Fails on unknown roles or if the edge would
    create a cycle. *)

val assign_user : t -> user:string -> role:string -> (t, string) result
val grant : t -> role:string -> permission -> (t, string) result

val roles : t -> string list
val users : t -> string list

(** {1 Queries} *)

val user_roles : t -> string -> string list
(** Directly assigned roles (no hierarchy closure). *)

val authorized_roles : t -> string -> string list
(** Assigned roles plus everything they inherit (descending the hierarchy:
    a user with a senior role is also authorized for its junior roles). *)

val junior_roles : t -> string -> string list
(** All (transitive) juniors of a role, excluding itself. *)

val direct_juniors : t -> string -> string list
(** Only the directly declared inheritance edges. *)

val direct_permissions : t -> string -> permission list
(** Permissions granted to the role itself, without inheritance. *)

val role_permissions : t -> string -> permission list
(** Direct plus inherited permissions. *)

val check : t -> user:string -> permission -> bool
(** [check t ~user p] holds when any authorized role of [user] carries a
    permission matching [p] (wildcards allowed on the granted side). *)

(** {1 Sessions} *)

type session

val open_session : t -> user:string -> roles:string list -> (session, string) result
(** Activate a subset of the user's authorized roles (NIST: session roles
    must be authorized for the user). *)

val session_user : session -> string
val session_roles : session -> string list

val check_session : t -> session -> permission -> bool
(** Like {!check} but only the activated roles (and their juniors) count. *)
