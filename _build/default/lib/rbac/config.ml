let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go m lineno = function
    | [] -> Ok m
    | line :: rest -> (
      let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> go m (lineno + 1) rest
      | w :: _ when String.length w > 0 && w.[0] = '#' -> go m (lineno + 1) rest
      | [ "role"; name ] -> go (Core_rbac.add_role m name) (lineno + 1) rest
      | [ "user"; name ] -> go (Core_rbac.add_user m name) (lineno + 1) rest
      | [ "assign"; user; role ] -> (
        match Core_rbac.assign_user m ~user ~role with
        | Ok m -> go m (lineno + 1) rest
        | Error msg -> fail msg)
      | [ "inherit"; senior; junior ] -> (
        match Core_rbac.add_inheritance m ~senior ~junior with
        | Ok m -> go m (lineno + 1) rest
        | Error msg -> fail msg)
      | [ "grant"; role; action; resource ] -> (
        match Core_rbac.grant m ~role { Core_rbac.action; resource } with
        | Ok m -> go m (lineno + 1) rest
        | Error msg -> fail msg)
      | _ -> fail (Printf.sprintf "unrecognized directive %S" (String.trim line)))
  in
  go Core_rbac.empty 1 lines

let to_string m =
  let buf = Buffer.create 256 in
  List.iter
    (fun role -> Buffer.add_string buf (Printf.sprintf "role %s\n" role))
    (Core_rbac.roles m);
  List.iter
    (fun user -> Buffer.add_string buf (Printf.sprintf "user %s\n" user))
    (Core_rbac.users m);
  List.iter
    (fun senior ->
      List.iter
        (fun junior ->
          Buffer.add_string buf (Printf.sprintf "inherit %s %s\n" senior junior))
        (Core_rbac.direct_juniors m senior))
    (Core_rbac.roles m);
  List.iter
    (fun user ->
      List.iter
        (fun role ->
          Buffer.add_string buf (Printf.sprintf "assign %s %s\n" user role))
        (Core_rbac.user_roles m user))
    (Core_rbac.users m);
  List.iter
    (fun role ->
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "grant %s %s %s\n" role p.Core_rbac.action
               p.Core_rbac.resource))
        (Core_rbac.direct_permissions m role))
    (Core_rbac.roles m);
  Buffer.contents buf
