type t = { role : string; purpose : string; beta : float }

let make ~role ~purpose ~beta =
  if beta < 0.0 then invalid_arg "Policy.make: negative threshold";
  { role; purpose; beta }

let to_string p = Printf.sprintf "<%s, %s, %g>" p.role p.purpose p.beta

let pp ppf p = Format.pp_print_string ppf (to_string p)

type store = t list

let empty_store = []
let add store p = p :: store
let of_list ps = List.rev ps
let to_list store = List.rev store

let role_matches policy_role roles =
  policy_role = "*" || List.exists (String.equal policy_role) roles

let purpose_matches policy_purpose purpose =
  policy_purpose = "*" || String.equal policy_purpose purpose

let applicable store ~roles ~purpose =
  List.rev
    (List.filter
       (fun p -> role_matches p.role roles && purpose_matches p.purpose purpose)
       store)

let effective_threshold store ~roles ~purpose =
  match applicable store ~roles ~purpose with
  | [] -> None
  | ps -> Some (List.fold_left (fun acc p -> Float.max acc p.beta) 0.0 ps)

let parse_line line =
  match String.split_on_char ',' line with
  | [ role; purpose; beta ] -> (
    let role = String.trim role
    and purpose = String.trim purpose
    and beta = String.trim beta in
    if role = "" then Error "empty role"
    else if purpose = "" then Error "empty purpose"
    else
      match float_of_string_opt beta with
      | Some b when b >= 0.0 -> Ok { role; purpose; beta = b }
      | _ -> Error (Printf.sprintf "bad threshold %S" beta))
  | _ -> Error (Printf.sprintf "expected 'role, purpose, beta': %S" line)

let parse_store text =
  let lines = String.split_on_char '\n' text in
  let rec go store lineno = function
    | [] -> Ok (List.rev store)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go store (lineno + 1) rest
      else (
        match parse_line trimmed with
        | Ok p -> go (p :: store) (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go [] 1 lines

let store_to_string store =
  String.concat "\n"
    (List.map
       (fun p -> Printf.sprintf "%s, %s, %g" p.role p.purpose p.beta)
       (to_list store))
