(** Textual RBAC configuration format.

    One directive per line; blank lines and [#] comments are ignored:

    {v role <name>
       user <name>
       assign <user> <role>
       inherit <senior> <junior>
       grant <role> <action> <resource> v}

    Used by the CLI's [--rbac] flag; exposed here so the format is testable
    and reusable. *)

val parse : string -> (Core_rbac.t, string) result
(** [parse text] builds a model, failing with a [line N: ...] message on
    the first bad directive. *)

val to_string : Core_rbac.t -> string
(** Render a model back into the textual format (roles, users,
    inheritance edges, assignments, grants — a parseable round trip). *)
