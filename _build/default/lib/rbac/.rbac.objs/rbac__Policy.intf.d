lib/rbac/policy.mli: Format
