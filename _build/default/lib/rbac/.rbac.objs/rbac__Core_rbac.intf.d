lib/rbac/core_rbac.mli:
