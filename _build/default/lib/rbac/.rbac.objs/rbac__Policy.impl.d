lib/rbac/policy.ml: Float Format List Printf String
