lib/rbac/config.ml: Buffer Core_rbac List Printf String
