lib/rbac/core_rbac.ml: List Map Option Printf Set String
