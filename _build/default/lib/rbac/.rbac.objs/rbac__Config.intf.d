lib/rbac/config.mli: Core_rbac
