(** Confidence policies (Definition 1 of the paper).

    A confidence policy ⟨role, purpose, β⟩ states that a user acting under
    [role], querying for [purpose], may only access query results whose
    confidence value is higher than [β].  Policies complement conventional
    RBAC: RBAC gates access to base relations {e before} evaluation,
    confidence policies gate {e results after} evaluation.

    Selection: a policy applies to a request when its role matches one of
    the requester's activated-or-inherited roles (or is the wildcard ["*"])
    and its purpose matches the request purpose (or is ["*"]).  When several
    policies apply, the {e most restrictive} one wins — the effective
    threshold is the maximum β, mirroring the paper's intuition that more
    critical usages carry higher thresholds. *)

type t = { role : string; purpose : string; beta : float }

val make : role:string -> purpose:string -> beta:float -> t
(** @raise Invalid_argument if [beta] is negative. *)

val to_string : t -> string
(** ⟨role, purpose, β⟩ rendering, e.g. ["<Manager, investment, 0.06>"]. *)

val pp : Format.formatter -> t -> unit

(** {1 Policy stores} *)

type store

val empty_store : store
val add : store -> t -> store
val of_list : t list -> store
val to_list : store -> t list

val applicable : store -> roles:string list -> purpose:string -> t list
(** All policies matching any of [roles] and the [purpose]. *)

val effective_threshold :
  store -> roles:string list -> purpose:string -> float option
(** Maximum β over {!applicable} policies; [None] when no policy applies
    (access unrestricted by confidence). *)

(** {1 Textual format}

    One policy per line: [role, purpose, beta].  Blank lines and lines
    starting with [#] are ignored. *)

val parse_line : string -> (t, string) result
val parse_store : string -> (store, string) result
val store_to_string : store -> string
