module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

type permission = { action : string; resource : string }

type t = {
  role_set : StrSet.t;
  user_set : StrSet.t;
  juniors : StrSet.t StrMap.t; (* role -> direct juniors *)
  user_assignments : StrSet.t StrMap.t; (* user -> direct roles *)
  grants : permission list StrMap.t; (* role -> direct permissions *)
}

type session = { suser : string; sroles : string list }

let empty =
  {
    role_set = StrSet.empty;
    user_set = StrSet.empty;
    juniors = StrMap.empty;
    user_assignments = StrMap.empty;
    grants = StrMap.empty;
  }

let add_role t role = { t with role_set = StrSet.add role t.role_set }
let add_user t user = { t with user_set = StrSet.add user t.user_set }

let roles t = StrSet.elements t.role_set
let users t = StrSet.elements t.user_set

let direct_juniors_set t role =
  Option.value ~default:StrSet.empty (StrMap.find_opt role t.juniors)

(* transitive closure of juniors, excluding the starting role *)
let closure t role =
  let rec go visited frontier =
    match frontier with
    | [] -> visited
    | r :: rest ->
      let next =
        StrSet.fold
          (fun j acc -> if StrSet.mem j visited then acc else j :: acc)
          (direct_juniors_set t r) rest
      in
      go (StrSet.union visited (direct_juniors_set t r)) next
  in
  go StrSet.empty [ role ]

let junior_roles t role = StrSet.elements (StrSet.remove role (closure t role))

let direct_juniors t role = StrSet.elements (direct_juniors_set t role)

let direct_permissions t role =
  List.rev (Option.value ~default:[] (StrMap.find_opt role t.grants))

let add_inheritance t ~senior ~junior =
  if not (StrSet.mem senior t.role_set) then
    Error (Printf.sprintf "unknown role %S" senior)
  else if not (StrSet.mem junior t.role_set) then
    Error (Printf.sprintf "unknown role %S" junior)
  else if String.equal senior junior then
    Error "a role cannot inherit from itself"
  else if StrSet.mem senior (closure t junior) then
    Error
      (Printf.sprintf "inheritance %s -> %s would create a cycle" senior junior)
  else
    Ok
      {
        t with
        juniors =
          StrMap.add senior
            (StrSet.add junior (direct_juniors_set t senior))
            t.juniors;
      }

let assign_user t ~user ~role =
  if not (StrSet.mem user t.user_set) then
    Error (Printf.sprintf "unknown user %S" user)
  else if not (StrSet.mem role t.role_set) then
    Error (Printf.sprintf "unknown role %S" role)
  else
    let existing =
      Option.value ~default:StrSet.empty (StrMap.find_opt user t.user_assignments)
    in
    Ok
      {
        t with
        user_assignments = StrMap.add user (StrSet.add role existing) t.user_assignments;
      }

let grant t ~role perm =
  if not (StrSet.mem role t.role_set) then
    Error (Printf.sprintf "unknown role %S" role)
  else
    let existing = Option.value ~default:[] (StrMap.find_opt role t.grants) in
    if List.mem perm existing then Ok t
    else Ok { t with grants = StrMap.add role (perm :: existing) t.grants }

let user_roles t user =
  StrSet.elements
    (Option.value ~default:StrSet.empty (StrMap.find_opt user t.user_assignments))

let authorized_roles t user =
  let direct =
    Option.value ~default:StrSet.empty (StrMap.find_opt user t.user_assignments)
  in
  StrSet.elements
    (StrSet.fold
       (fun r acc -> StrSet.union acc (StrSet.add r (closure t r)))
       direct StrSet.empty)

let role_permissions t role =
  let all = StrSet.add role (closure t role) in
  StrSet.fold
    (fun r acc -> Option.value ~default:[] (StrMap.find_opt r t.grants) @ acc)
    all []

let matches granted requested =
  (granted.action = "*" || String.equal granted.action requested.action)
  && (granted.resource = "*" || String.equal granted.resource requested.resource)

let check_roles t role_list perm =
  List.exists
    (fun r -> List.exists (fun g -> matches g perm) (role_permissions t r))
    role_list

let check t ~user perm = check_roles t (authorized_roles t user) perm

let open_session t ~user ~roles =
  if not (StrSet.mem user t.user_set) then
    Error (Printf.sprintf "unknown user %S" user)
  else
    let authorized = authorized_roles t user in
    let unauthorized =
      List.filter (fun r -> not (List.mem r authorized)) roles
    in
    if unauthorized <> [] then
      Error
        (Printf.sprintf "user %S is not authorized for role(s): %s" user
           (String.concat ", " unauthorized))
    else Ok { suser = user; sroles = roles }

let session_user s = s.suser
let session_roles s = s.sroles

let check_session t s perm = check_roles t s.sroles perm
