(** Cost functions for confidence increments.

    Each base tuple carries a cost function [c]: raising its confidence
    from [p] to [p*] costs [c p' - c p] where [c] is a non-decreasing
    function of the confidence level (time, money, auditing effort…).  The
    paper's experiments draw cost functions from three families — binomial
    (polynomial), exponential and logarithmic (§5.1); we provide those plus
    linear (the simplest model, handy in unit tests).

    The logarithmic family diverges as the confidence approaches 1,
    modelling data that can never be made fully certain; combine it with a
    confidence cap below 1 or rely on the optimizer's budget pruning.

    All families satisfy, for [0 <= p <= p* <= 1]:
    - [eval t ~from_:p ~to_:p = 0] (no-op costs nothing);
    - [eval] is non-negative and non-decreasing in [p*];
    - [eval t ~from_:a ~to_:c = eval t ~from_:a ~to_:b +
       eval t ~from_:b ~to_:c] (path independence). *)

type shape =
  | Linear of { rate : float }
      (** [c(p) = rate*p] *)
  | Binomial of { scale : float; degree : int }
      (** [c(p) = scale*p^degree] — marginal cost grows polynomially;
          [degree = 2] matches the paper's "binomial" family *)
  | Exponential of { scale : float; rate : float }
      (** [c(p) = scale*(e^{rate*p} - 1)] *)
  | Logarithmic of { scale : float }
      (** [c(p) = -scale*ln(1 - p)], diverging at [p = 1] *)

type t

val make : shape -> t
(** @raise Invalid_argument on non-positive [scale]/[rate] or [degree < 1]. *)

val shape : t -> shape

val linear : rate:float -> t
val binomial : scale:float -> t
(** Degree-2 polynomial, the paper's default reading of "binomial". *)

val exponential : scale:float -> rate:float -> t
val logarithmic : scale:float -> t

val level : t -> float -> float
(** [level t p] is the cumulative cost [c(p)].  [p] is clamped to
    [\[0, 1\]]; the logarithmic family returns [infinity] at 1. *)

val eval : t -> from_:float -> to_:float -> float
(** [eval t ~from_ ~to_] is [c(to_) - c(from_)], the cost of raising
    confidence from [from_] to [to_].  Returns 0 when [to_ <= from_]. *)

val marginal : t -> at:float -> delta:float -> float
(** [marginal t ~at ~delta] is [eval t ~from_:at ~to_:(at +. delta)]. *)

val random : Prng.Splitmix.t -> t
(** Draw a random cost function from the paper's three families (binomial,
    exponential, logarithmic) with scale uniform in [\[1, 100\]] — the
    §5.1 synthetic setting. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** [parse spec] reads a whitespace-separated spec:
    ["linear RATE"], ["binomial SCALE"], ["exponential SCALE RATE"],
    ["logarithmic SCALE"] — the format the CLI's [--costs] file uses. *)

val spec : t -> string
(** Inverse of {!parse}. *)
