lib/cost/cost_model.ml: Float Format List Printf Prng Result String
