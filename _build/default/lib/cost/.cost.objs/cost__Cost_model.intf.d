lib/cost/cost_model.mli: Format Prng
