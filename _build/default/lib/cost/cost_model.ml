type shape =
  | Linear of { rate : float }
  | Binomial of { scale : float; degree : int }
  | Exponential of { scale : float; rate : float }
  | Logarithmic of { scale : float }

type t = shape

let validate = function
  | Linear { rate } ->
    if rate <= 0.0 then invalid_arg "Cost_model: rate must be positive"
  | Binomial { scale; degree } ->
    if scale <= 0.0 then invalid_arg "Cost_model: scale must be positive";
    if degree < 1 then invalid_arg "Cost_model: degree must be >= 1"
  | Exponential { scale; rate } ->
    if scale <= 0.0 then invalid_arg "Cost_model: scale must be positive";
    if rate <= 0.0 then invalid_arg "Cost_model: rate must be positive"
  | Logarithmic { scale } ->
    if scale <= 0.0 then invalid_arg "Cost_model: scale must be positive"

let make shape =
  validate shape;
  shape

let shape t = t

let linear ~rate = make (Linear { rate })
let binomial ~scale = make (Binomial { scale; degree = 2 })
let exponential ~scale ~rate = make (Exponential { scale; rate })
let logarithmic ~scale = make (Logarithmic { scale })

let clamp p = Float.max 0.0 (Float.min 1.0 p)

let pow_int x n =
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (acc *. x) (x *. x) (n asr 1)
    else go acc (x *. x) (n asr 1)
  in
  go 1.0 x n

let level t p =
  let p = clamp p in
  match t with
  | Linear { rate } -> rate *. p
  | Binomial { scale; degree } -> scale *. pow_int p degree
  | Exponential { scale; rate } -> scale *. (exp (rate *. p) -. 1.0)
  | Logarithmic { scale } ->
    if p >= 1.0 then infinity else -.scale *. log (1.0 -. p)

let eval t ~from_ ~to_ =
  if to_ <= from_ then 0.0 else level t to_ -. level t from_

let marginal t ~at ~delta = eval t ~from_:at ~to_:(at +. delta)

let random rng =
  let scale = Prng.Splitmix.float_in rng 1.0 100.0 in
  match Prng.Splitmix.int rng 3 with
  | 0 -> binomial ~scale
  | 1 -> exponential ~scale:(scale /. 10.0) ~rate:2.0
  | _ -> logarithmic ~scale

let to_string = function
  | Linear { rate } -> Printf.sprintf "linear(rate=%g)" rate
  | Binomial { scale; degree } -> Printf.sprintf "binomial(scale=%g, degree=%d)" scale degree
  | Exponential { scale; rate } ->
    Printf.sprintf "exponential(scale=%g, rate=%g)" scale rate
  | Logarithmic { scale } -> Printf.sprintf "logarithmic(scale=%g)" scale

let pp ppf t = Format.pp_print_string ppf (to_string t)

let parse spec =
  let words =
    String.split_on_char ' ' (String.trim spec)
    |> List.filter (fun w -> w <> "")
  in
  let num what s =
    match float_of_string_opt s with
    | Some f when f > 0.0 -> Ok f
    | _ -> Error (Printf.sprintf "bad %s %S" what s)
  in
  let ( let* ) = Result.bind in
  match words with
  | [ "linear"; rate ] ->
    let* rate = num "rate" rate in
    Ok (linear ~rate)
  | [ "binomial"; scale ] ->
    let* scale = num "scale" scale in
    Ok (binomial ~scale)
  | [ "exponential"; scale; rate ] ->
    let* scale = num "scale" scale in
    let* rate = num "rate" rate in
    Ok (exponential ~scale ~rate)
  | [ "logarithmic"; scale ] ->
    let* scale = num "scale" scale in
    Ok (logarithmic ~scale)
  | _ ->
    Error
      (Printf.sprintf
         "bad cost spec %S (expected: linear R | binomial S | exponential S R           | logarithmic S)"
         spec)

let spec t =
  match t with
  | Linear { rate } -> Printf.sprintf "linear %g" rate
  | Binomial { scale; degree = 2 } -> Printf.sprintf "binomial %g" scale
  | Binomial { scale; degree } -> Printf.sprintf "binomial %g (degree %d)" scale degree
  | Exponential { scale; rate } -> Printf.sprintf "exponential %g %g" scale rate
  | Logarithmic { scale } -> Printf.sprintf "logarithmic %g" scale
