lib/prng/splitmix.ml: Array Float Int64
