lib/prng/splitmix.mli:
