(* Tests for CSV import/export. *)

module C = Relational.Csv
module Db = Relational.Database
module R = Relational.Relation
module V = Relational.Value

let test_parse_line_simple () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ] (C.parse_line "a,b,c")

let test_parse_line_quoted () =
  Alcotest.(check (list string)) "comma inside quotes" [ "a,b"; "c" ]
    (C.parse_line "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "say \"hi\"" ]
    (C.parse_line "\"say \"\"hi\"\"\"");
  Alcotest.(check (list string)) "empty fields" [ ""; ""; "" ] (C.parse_line ",,")

let test_render_roundtrip () =
  let fields = [ "plain"; "with,comma"; "with\"quote"; "" ] in
  Alcotest.(check (list string)) "roundtrip" fields
    (C.parse_line (C.render_line fields))

let test_relation_of_string () =
  let csv = "name:string,age:int\nalice,30\nbob,25\n" in
  match C.relation_of_string ~name:"People" csv with
  | Error msg -> Alcotest.fail msg
  | Ok (rel, confs) ->
    Alcotest.(check int) "2 rows" 2 (R.cardinality rel);
    Alcotest.(check int) "2 confs" 2 (List.length confs);
    List.iter
      (fun (_, c) -> Alcotest.(check (float 0.0)) "default conf" 1.0 c)
      confs

let test_confidence_column () =
  let csv = "name:string,__confidence:real\nalice,0.25\nbob,0.75\n" in
  match C.relation_of_string ~name:"P" csv with
  | Error msg -> Alcotest.fail msg
  | Ok (rel, confs) ->
    Alcotest.(check int) "confidence column not stored" 1
      (Relational.Schema.arity (R.schema rel));
    Alcotest.(check (list (float 1e-9))) "confidences" [ 0.25; 0.75 ]
      (List.map snd confs)

let test_nulls_and_types () =
  let csv = "a:int,b:real,c:bool\n1,2.5,true\n,NULL,\n" in
  match C.relation_of_string ~name:"T" csv with
  | Error msg -> Alcotest.fail msg
  | Ok (rel, _) -> (
    match R.tuples rel with
    | [ _; (_, t2) ] ->
      Alcotest.(check bool) "null int" true
        (V.equal (Relational.Tuple.get t2 0) V.Null);
      Alcotest.(check bool) "null bool" true
        (V.equal (Relational.Tuple.get t2 2) V.Null)
    | _ -> Alcotest.fail "expected 2 rows")

let test_errors () =
  List.iter
    (fun (what, csv) ->
      match C.relation_of_string ~name:"T" csv with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" what)
    [
      ("empty", "");
      ("missing type", "a\n1\n");
      ("unknown type", "a:blob\n1\n");
      ("wrong arity", "a:int\n1,2\n");
      ("bad value", "a:int\nxyz\n");
      ("bad confidence", "a:int,__confidence:real\n1,7.5\n");
      ("string confidence col", "a:int,__confidence:string\n1,x\n");
    ]

let test_load_into_and_export () =
  let csv = "name:string,n:int,__confidence:real\nalice,1,0.5\nbob,2,0.9\n" in
  match C.load_into Db.empty ~name:"P" csv with
  | Error msg -> Alcotest.fail msg
  | Ok db ->
    let rel = Db.relation_exn db "P" in
    Alcotest.(check int) "loaded" 2 (R.cardinality rel);
    Alcotest.(check (float 1e-9)) "confidence loaded" 0.5
      (Db.confidence db (Lineage.Tid.make "P" 0));
    (* export and re-import: same data *)
    let out = C.to_string db rel in
    (match C.load_into Db.empty ~name:"P" out with
    | Error msg -> Alcotest.fail msg
    | Ok db2 ->
      Alcotest.(check (float 1e-9)) "roundtrip confidence" 0.9
        (Db.confidence db2 (Lineage.Tid.make "P" 1));
      Alcotest.(check int) "roundtrip rows" 2
        (R.cardinality (Db.relation_exn db2 "P")))

let () =
  Alcotest.run "csv"
    [
      ( "csv",
        [
          Alcotest.test_case "parse simple" `Quick test_parse_line_simple;
          Alcotest.test_case "parse quoted" `Quick test_parse_line_quoted;
          Alcotest.test_case "render roundtrip" `Quick test_render_roundtrip;
          Alcotest.test_case "relation parse" `Quick test_relation_of_string;
          Alcotest.test_case "confidence column" `Quick test_confidence_column;
          Alcotest.test_case "nulls and types" `Quick test_nulls_and_types;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "load and export" `Quick test_load_into_and_export;
        ] );
    ]
