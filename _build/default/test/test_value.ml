(* Tests for typed values: ordering, SQL three-valued comparison,
   conversion, parsing and printing. *)

module V = Relational.Value

let v = Alcotest.testable V.pp V.equal

let test_type_of () =
  Alcotest.(check (option string))
    "int" (Some "int")
    (Option.map V.ty_name (V.type_of (V.Int 3)));
  Alcotest.(check (option string))
    "null has no type" None
    (Option.map V.ty_name (V.type_of V.Null))

let test_ty_parsing () =
  List.iter
    (fun (s, expect) ->
      Alcotest.(check (option string))
        s expect
        (Option.map V.ty_name (V.ty_of_string s)))
    [
      ("int", Some "int");
      ("INTEGER", Some "int");
      ("real", Some "real");
      ("float", Some "real");
      ("double", Some "real");
      ("string", Some "string");
      ("text", Some "string");
      ("varchar", Some "string");
      ("bool", Some "bool");
      ("boolean", Some "bool");
      ("blob", None);
    ]

let test_conforms () =
  Alcotest.(check bool) "null conforms everywhere" true (V.conforms V.Null V.TBool);
  Alcotest.(check bool) "int in float column" true (V.conforms (V.Int 2) V.TFloat);
  Alcotest.(check bool) "float not in int column" false
    (V.conforms (V.Float 2.0) V.TInt);
  Alcotest.(check bool) "string mismatch" false (V.conforms (V.String "x") V.TInt)

let test_coerce () =
  Alcotest.(check (option v)) "int to float" (Some (V.Float 3.0))
    (V.coerce (V.Int 3) V.TFloat);
  Alcotest.(check (option v)) "identity" (Some (V.Int 3)) (V.coerce (V.Int 3) V.TInt);
  Alcotest.(check (option v)) "string to int fails" None
    (V.coerce (V.String "3") V.TInt);
  Alcotest.(check (option v)) "null stays null" (Some V.Null) (V.coerce V.Null V.TInt)

let test_total_order () =
  Alcotest.(check bool) "null smallest" true (V.compare V.Null (V.Bool false) < 0);
  Alcotest.(check bool) "bool < number" true (V.compare (V.Bool true) (V.Int 0) < 0);
  Alcotest.(check bool) "number < string" true (V.compare (V.Float 9.9) (V.String "") < 0);
  Alcotest.(check int) "cross numeric equal" 0 (V.compare (V.Int 2) (V.Float 2.0));
  Alcotest.(check bool) "cross numeric order" true (V.compare (V.Int 2) (V.Float 2.5) < 0);
  Alcotest.(check bool) "string order" true (V.compare (V.String "a") (V.String "b") < 0)

let test_hash_consistent_with_equal () =
  Alcotest.(check int) "Int 5 and Float 5.0 hash equal" (V.hash (V.Int 5))
    (V.hash (V.Float 5.0));
  Alcotest.(check bool) "and are equal" true (V.equal (V.Int 5) (V.Float 5.0))

let test_cmp_sql_null () =
  let flag, _ = V.cmp_sql V.Null (V.Int 3) in
  Alcotest.(check bool) "null comparison unknown" true (flag = V.Unknown3);
  let flag, _ = V.cmp_sql (V.Int 3) V.Null in
  Alcotest.(check bool) "null right" true (flag = V.Unknown3)

let test_cmp_sql_incompatible () =
  Alcotest.(check bool) "bool vs string raises" true
    (try
       ignore (V.cmp_sql (V.Bool true) (V.String "x"));
       false
     with Invalid_argument _ -> true)

let test_three_valued_logic () =
  let t = V.True3 and f = V.False3 and u = V.Unknown3 in
  Alcotest.(check bool) "f and u = f" true (V.and3 f u = f);
  Alcotest.(check bool) "t and u = u" true (V.and3 t u = u);
  Alcotest.(check bool) "t or u = t" true (V.or3 t u = t);
  Alcotest.(check bool) "f or u = u" true (V.or3 f u = u);
  Alcotest.(check bool) "not u = u" true (V.not3 u = u);
  Alcotest.(check bool) "is_true only true" true
    (V.is_true t && (not (V.is_true f)) && not (V.is_true u))

let test_to_string () =
  Alcotest.(check string) "null" "NULL" (V.to_string V.Null);
  Alcotest.(check string) "int" "42" (V.to_string (V.Int 42));
  Alcotest.(check string) "float keeps .0" "3.0" (V.to_string (V.Float 3.0));
  Alcotest.(check string) "string unquoted" "abc" (V.to_string (V.String "abc"))

let test_to_sql_quoting () =
  Alcotest.(check string) "plain" "'abc'" (V.to_sql (V.String "abc"));
  Alcotest.(check string) "embedded quote doubled" "'it''s'"
    (V.to_sql (V.String "it's"));
  Alcotest.(check string) "number unquoted" "42" (V.to_sql (V.Int 42))

let test_of_string_as () =
  Alcotest.(check (option v)) "int" (Some (V.Int 12)) (V.of_string_as V.TInt "12");
  Alcotest.(check (option v)) "negative int" (Some (V.Int (-3)))
    (V.of_string_as V.TInt "-3");
  Alcotest.(check (option v)) "float" (Some (V.Float 2.5)) (V.of_string_as V.TFloat "2.5");
  Alcotest.(check (option v)) "bool yes" (Some (V.Bool true)) (V.of_string_as V.TBool "yes");
  Alcotest.(check (option v)) "bool 0" (Some (V.Bool false)) (V.of_string_as V.TBool "0");
  Alcotest.(check (option v)) "empty is null" (Some V.Null) (V.of_string_as V.TInt "");
  Alcotest.(check (option v)) "NULL keyword" (Some V.Null) (V.of_string_as V.TString "null");
  Alcotest.(check (option v)) "garbage int" None (V.of_string_as V.TInt "12x");
  Alcotest.(check (option v)) "string passthrough" (Some (V.String "12x"))
    (V.of_string_as V.TString "12x")

let qcheck_compare_total_order =
  let gen =
    QCheck.Gen.(
      oneof
        [
          return V.Null;
          map (fun b -> V.Bool b) bool;
          map (fun i -> V.Int i) (int_range (-100) 100);
          map (fun f -> V.Float f) (float_range (-100.0) 100.0);
          map (fun s -> V.String s) (string_size (int_range 0 5));
        ])
  in
  let arb = QCheck.make ~print:V.to_string gen in
  QCheck.Test.make ~name:"compare is antisymmetric and transitive-ish" ~count:500
    (QCheck.triple arb arb arb)
    (fun (a, b, c) ->
      let sgn x = compare x 0 in
      sgn (V.compare a b) = -sgn (V.compare b a)
      && ((not (V.compare a b <= 0 && V.compare b c <= 0)) || V.compare a c <= 0))

let () =
  Alcotest.run "value"
    [
      ( "basics",
        [
          Alcotest.test_case "type_of" `Quick test_type_of;
          Alcotest.test_case "type parsing" `Quick test_ty_parsing;
          Alcotest.test_case "conforms" `Quick test_conforms;
          Alcotest.test_case "coerce" `Quick test_coerce;
          Alcotest.test_case "total order" `Quick test_total_order;
          Alcotest.test_case "hash/equal" `Quick test_hash_consistent_with_equal;
          Alcotest.test_case "cmp_sql null" `Quick test_cmp_sql_null;
          Alcotest.test_case "cmp_sql incompatible" `Quick test_cmp_sql_incompatible;
          Alcotest.test_case "3VL" `Quick test_three_valued_logic;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "to_sql" `Quick test_to_sql_quoting;
          Alcotest.test_case "of_string_as" `Quick test_of_string_as;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_compare_total_order ]);
    ]
