(* Tests for the two-phase greedy algorithm. *)

module Problem = Optimize.Problem
module State = Optimize.State
module Greedy = Optimize.Greedy
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

let base ?(p0 = 0.1) ?(cap = 1.0) ?(rate = 100.0) i =
  { Problem.tid = t i; p0; cap; cost = C.linear ~rate }

let verify_solution problem (out : Greedy.outcome) =
  (* replay the solution on a fresh state and check the requirement *)
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> Alcotest.fail "solution names unknown base")
    out.Greedy.solution;
  Alcotest.(check bool) "replayed cost matches" true
    (Float.abs (State.cost st -. out.Greedy.cost) < 1e-6);
  Alcotest.(check bool) "requirement met" true
    (State.satisfied_count st >= Problem.required problem)

let test_paper_example () =
  (* tuples 02 (p 0.3, expensive) and 03 (p 0.4, cheap), 13 (p 0.1);
     result = (b2 | b3) & b13, threshold 0.06 *)
  let bases =
    [
      { Problem.tid = t 2; p0 = 0.3; cap = 1.0; cost = C.linear ~rate:1000.0 };
      { Problem.tid = t 3; p0 = 0.4; cap = 1.0; cost = C.linear ~rate:100.0 };
      { Problem.tid = t 13; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:2000.0 };
    ]
  in
  let formula = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p = Problem.make_exn ~beta:0.06 ~required:1 ~bases ~formulas:[ formula ] () in
  let out = Greedy.solve p in
  Alcotest.(check bool) "feasible" true out.Greedy.feasible;
  (* the cheap fix: raise tuple 03 by one step, cost 10 *)
  Alcotest.(check (float 1e-6)) "cost 10" 10.0 out.Greedy.cost;
  (match out.Greedy.solution with
  | [ (tid, level) ] ->
    Alcotest.(check string) "raises tuple 03" "b#3" (Tid.to_string tid);
    Alcotest.(check (float 1e-9)) "to 0.5" 0.5 level
  | _ -> Alcotest.fail "expected single increment");
  verify_solution p out

let test_already_satisfied () =
  let p =
    Problem.make_exn ~beta:0.05 ~required:1
      ~bases:[ base ~p0:0.5 0 ]
      ~formulas:[ v 0 ] ()
  in
  let out = Greedy.solve p in
  Alcotest.(check bool) "feasible" true out.Greedy.feasible;
  Alcotest.(check (float 0.0)) "free" 0.0 out.Greedy.cost;
  Alcotest.(check int) "no iterations" 0 out.Greedy.iterations

let test_required_zero () =
  let p =
    Problem.make_exn ~beta:0.9 ~required:0 ~bases:[ base 0 ] ~formulas:[ v 0 ] ()
  in
  let out = Greedy.solve p in
  Alcotest.(check bool) "trivially feasible" true out.Greedy.feasible;
  Alcotest.(check (float 0.0)) "free" 0.0 out.Greedy.cost

let test_infeasible_cap () =
  (* cap 0.4 < beta 0.5: unreachable *)
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:[ base ~cap:0.4 0 ]
      ~formulas:[ v 0 ] ()
  in
  let out = Greedy.solve p in
  Alcotest.(check bool) "infeasible" false out.Greedy.feasible

let test_prefers_cheap_base () =
  (* r = b0 | b1, b0 ten times cheaper: greedy must raise b0 *)
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:[ base ~rate:10.0 0; base ~rate:100.0 1 ]
      ~formulas:[ F.disj [ v 0; v 1 ] ]
      ()
  in
  let out = Greedy.solve p in
  Alcotest.(check bool) "feasible" true out.Greedy.feasible;
  List.iter
    (fun (tid, _) ->
      Alcotest.(check string) "only cheap base" "b#0" (Tid.to_string tid))
    out.Greedy.solution;
  verify_solution p out

let test_two_phase_not_worse () =
  (* the second phase may only reduce cost *)
  for seed = 0 to 14 do
    let p = Workload.Synth.small_instance ~num_bases:12 ~num_results:8 ~seed () in
    let one =
      Greedy.solve ~config:{ Greedy.default_config with two_phase = false } p
    in
    let two = Greedy.solve p in
    if one.Greedy.feasible then begin
      Alcotest.(check bool) "two-phase also feasible" true two.Greedy.feasible;
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.2f <= %.2f" seed two.Greedy.cost one.Greedy.cost)
        true
        (two.Greedy.cost <= one.Greedy.cost +. 1e-9)
    end
  done

let test_incremental_matches_full_rescan () =
  (* the incremental heap selection must reproduce the full-rescan result *)
  for seed = 20 to 29 do
    let p = Workload.Synth.small_instance ~num_bases:15 ~num_results:10 ~seed () in
    let full = Greedy.solve p in
    let incr =
      Greedy.solve
        ~config:{ Greedy.default_config with selection = Greedy.Incremental }
        p
    in
    Alcotest.(check bool) "same feasibility" full.Greedy.feasible incr.Greedy.feasible;
    if full.Greedy.feasible then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: costs %.3f vs %.3f" seed full.Greedy.cost
           incr.Greedy.cost)
        true
        (Float.abs (full.Greedy.cost -. incr.Greedy.cost) < 1e-6)
  done

let test_solution_is_valid_on_random_instances () =
  for seed = 100 to 119 do
    let p = Workload.Synth.small_instance ~num_bases:20 ~num_results:12 ~seed () in
    let out = Greedy.solve p in
    if out.Greedy.feasible then verify_solution p out
  done

let test_raw_gain_variant_still_works () =
  let p = Workload.Synth.small_instance ~seed:5 () in
  let out =
    Greedy.solve
      ~config:{ Greedy.default_config with only_unsatisfied_gain = false }
      p
  in
  if out.Greedy.feasible then verify_solution p out

let test_solve_state_leaves_solution_applied () =
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:[ base ~rate:10.0 0 ]
      ~formulas:[ v 0 ] ()
  in
  let st = State.create p in
  let out = Greedy.solve_state st in
  Alcotest.(check bool) "feasible" true out.Greedy.feasible;
  Alcotest.(check bool) "state holds the solution" true
    (State.satisfied_count st >= 1)

let () =
  Alcotest.run "greedy"
    [
      ( "greedy",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "already satisfied" `Quick test_already_satisfied;
          Alcotest.test_case "required zero" `Quick test_required_zero;
          Alcotest.test_case "infeasible cap" `Quick test_infeasible_cap;
          Alcotest.test_case "prefers cheap" `Quick test_prefers_cheap_base;
          Alcotest.test_case "two-phase not worse" `Quick test_two_phase_not_worse;
          Alcotest.test_case "incremental = full" `Quick test_incremental_matches_full_rescan;
          Alcotest.test_case "random validity" `Quick test_solution_is_valid_on_random_instances;
          Alcotest.test_case "raw gain variant" `Quick test_raw_gain_variant_still_works;
          Alcotest.test_case "solve_state" `Quick test_solve_state_leaves_solution_applied;
        ] );
    ]
