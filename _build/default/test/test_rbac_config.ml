(* Tests for the textual RBAC configuration format and session-scoped
   engine answering. *)

module C = Rbac.Config
module R = Rbac.Core_rbac

let sample =
  {|# corporate model
role employee
role manager
user alice
user bob
inherit manager employee
assign alice manager
assign bob employee
grant employee select Proposal
grant manager select *
|}

let parse_ok text =
  match C.parse text with
  | Ok m -> m
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_parse () =
  let m = parse_ok sample in
  Alcotest.(check (list string)) "roles" [ "employee"; "manager" ] (R.roles m);
  Alcotest.(check (list string)) "users" [ "alice"; "bob" ] (R.users m);
  Alcotest.(check (list string)) "alice inherits employee"
    [ "employee"; "manager" ]
    (R.authorized_roles m "alice");
  Alcotest.(check bool) "grant applied" true
    (R.check m ~user:"bob" { R.action = "select"; resource = "Proposal" })

let test_parse_errors () =
  List.iter
    (fun (what, text) ->
      match C.parse text with
      | Error msg ->
        Alcotest.(check bool)
          (what ^ " reports a line")
          true
          (String.length msg >= 4 && String.sub msg 0 4 = "line")
      | Ok _ -> Alcotest.failf "expected failure: %s" what)
    [
      ("bad directive", "frobnicate x\n");
      ("assign unknown user", "role r\nassign ghost r\n");
      ("inherit cycle", "role a\nrole b\ninherit a b\ninherit b a\n");
      ("grant unknown role", "grant ghost select *\n");
    ]

let test_comments_and_blanks () =
  let m = parse_ok "# only comments\n\n   \nrole r\n" in
  Alcotest.(check (list string)) "one role" [ "r" ] (R.roles m)

let test_roundtrip () =
  let m = parse_ok sample in
  let m2 = parse_ok (C.to_string m) in
  Alcotest.(check (list string)) "roles survive" (R.roles m) (R.roles m2);
  Alcotest.(check (list string)) "users survive" (R.users m) (R.users m2);
  Alcotest.(check (list string)) "hierarchy survives"
    (R.junior_roles m "manager")
    (R.junior_roles m2 "manager");
  Alcotest.(check bool) "grants survive" true
    (R.check m2 ~user:"bob" { R.action = "select"; resource = "Proposal" });
  Alcotest.(check bool) "wildcard grant survives" true
    (R.check m2 ~user:"alice" { R.action = "select"; resource = "Whatever" })

(* session-scoped engine answering *)
let test_answer_session () =
  let open Relational in
  let r = Relation.create "T" (Schema.of_list [ ("x", Value.TInt) ]) in
  let db = Database.add_relation Database.empty r in
  let db, _ = Database.insert db "T" [ Value.Int 1 ] ~conf:0.9 in
  let rbac =
    parse_ok
      {|role junior
role senior
user u
inherit senior junior
assign u senior
grant junior select T
|}
  in
  let policies =
    Rbac.Policy.of_list
      [
        Rbac.Policy.make ~role:"senior" ~purpose:"p" ~beta:0.95;
        Rbac.Policy.make ~role:"junior" ~purpose:"p" ~beta:0.5;
      ]
  in
  let ctx = Pcqe.Engine.make_context ~db ~rbac ~policies () in
  let query = Pcqe.Query.sql "SELECT x FROM T" in
  (* full-user answer applies the senior policy too (max beta = 0.95) *)
  (match
     Pcqe.Engine.answer ctx { Pcqe.Engine.query; user = "u"; purpose = "p"; perc = 0.0 }
   with
  | Ok resp ->
    Alcotest.(check (option (float 1e-9))) "max over all roles" (Some 0.95)
      resp.Pcqe.Engine.threshold;
    Alcotest.(check int) "0.9 < 0.95: withheld" 1 resp.Pcqe.Engine.withheld
  | Error msg -> Alcotest.fail msg);
  (* a session activating only the junior role sees only the junior policy *)
  let session =
    match Rbac.Core_rbac.open_session rbac ~user:"u" ~roles:[ "junior" ] with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  (match Pcqe.Engine.answer_session ctx session query ~purpose:"p" ~perc:0.0 with
  | Ok resp ->
    Alcotest.(check (option (float 1e-9))) "junior threshold" (Some 0.5)
      resp.Pcqe.Engine.threshold;
    Alcotest.(check int) "released" 1 (List.length resp.Pcqe.Engine.released)
  | Error msg -> Alcotest.fail msg);
  (* a session with no roles has no select permission *)
  let empty_session =
    match Rbac.Core_rbac.open_session rbac ~user:"u" ~roles:[] with
    | Ok s -> s
    | Error msg -> Alcotest.fail msg
  in
  match Pcqe.Engine.answer_session ctx empty_session query ~purpose:"p" ~perc:0.0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty session must be denied"

let () =
  Alcotest.run "rbac-config"
    [
      ( "config",
        [
          Alcotest.test_case "parse" `Quick test_parse;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "comments" `Quick test_comments_and_blanks;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
        ] );
      ("sessions", [ Alcotest.test_case "answer_session" `Quick test_answer_session ]);
    ]
