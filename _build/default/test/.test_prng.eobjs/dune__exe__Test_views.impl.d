test/test_views.ml: Alcotest Lineage List Pcqe Rbac Relational
