test/test_rbac_config.mli:
