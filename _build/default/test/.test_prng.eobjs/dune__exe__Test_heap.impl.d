test/test_heap.ml: Alcotest List Optimize Option QCheck QCheck_alcotest
