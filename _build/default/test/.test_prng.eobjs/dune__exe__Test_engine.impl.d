test/test_engine.ml: Alcotest Cost Lineage List Optimize Option Pcqe Rbac Relational String
