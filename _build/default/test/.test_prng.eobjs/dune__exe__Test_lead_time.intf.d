test/test_lead_time.mli:
