test/test_csv.ml: Alcotest Lineage List Relational
