test/test_greedy.ml: Alcotest Cost Float Lineage List Optimize Printf Workload
