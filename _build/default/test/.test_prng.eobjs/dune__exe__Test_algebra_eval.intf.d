test/test_algebra_eval.mli:
