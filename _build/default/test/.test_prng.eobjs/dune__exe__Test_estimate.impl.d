test/test_estimate.ml: Alcotest Relational String
