test/test_outer_join.ml: Alcotest Lineage List Relational
