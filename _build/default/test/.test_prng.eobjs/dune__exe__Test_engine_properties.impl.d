test/test_engine_properties.ml: Alcotest Cost Float Lineage List Pcqe Prng QCheck QCheck_alcotest Rbac Relational
