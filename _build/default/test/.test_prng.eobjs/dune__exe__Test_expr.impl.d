test/test_expr.ml: Alcotest QCheck QCheck_alcotest Relational String
