test/test_partition.ml: Alcotest Array Cost Lineage List Optimize QCheck QCheck_alcotest Workload
