test/test_problem_state.mli:
