test/test_sql.ml: Alcotest Fmt List Relational
