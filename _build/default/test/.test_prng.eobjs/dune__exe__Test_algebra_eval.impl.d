test/test_algebra_eval.ml: Alcotest Lineage List Prng Relational
