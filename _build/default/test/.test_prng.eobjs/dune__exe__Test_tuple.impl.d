test/test_tuple.ml: Alcotest Array Relational
