test/test_rbac_config.ml: Alcotest Database List Pcqe Rbac Relation Relational Schema String Value
