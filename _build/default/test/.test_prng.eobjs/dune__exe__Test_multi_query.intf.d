test/test_multi_query.mli:
