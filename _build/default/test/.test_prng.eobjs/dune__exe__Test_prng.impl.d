test/test_prng.ml: Alcotest Array Float Fun Printf Prng QCheck QCheck_alcotest
