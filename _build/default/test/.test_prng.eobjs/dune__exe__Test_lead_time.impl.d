test/test_lead_time.ml: Alcotest Cost Database Lineage List Pcqe Relation Relational Schema String Value
