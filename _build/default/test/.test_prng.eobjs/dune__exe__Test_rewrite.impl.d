test/test_rewrite.ml: Alcotest Lineage List QCheck QCheck_alcotest Relational
