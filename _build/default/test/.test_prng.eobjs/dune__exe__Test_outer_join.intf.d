test/test_outer_join.mli:
