test/test_annealing.mli:
