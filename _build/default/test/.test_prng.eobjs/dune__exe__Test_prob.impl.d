test/test_prob.ml: Alcotest Array Float Lineage List Printf Prng QCheck QCheck_alcotest
