test/test_dnc.ml: Alcotest Cost Float Lineage List Optimize Printf Workload
