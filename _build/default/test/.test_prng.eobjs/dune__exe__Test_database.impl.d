test/test_database.ml: Alcotest Lineage List Relational
