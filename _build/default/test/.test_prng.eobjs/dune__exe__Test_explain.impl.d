test/test_explain.ml: Alcotest Array Fmt Lineage List QCheck QCheck_alcotest String
