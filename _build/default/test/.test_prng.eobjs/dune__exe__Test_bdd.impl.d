test/test_bdd.ml: Alcotest Array Float Lineage List QCheck QCheck_alcotest
