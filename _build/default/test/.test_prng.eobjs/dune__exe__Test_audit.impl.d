test/test_audit.ml: Alcotest Database Lineage List Pcqe Rbac Relation Relational Schema String Value
