test/test_cost.ml: Alcotest Cost Float List Prng QCheck QCheck_alcotest
