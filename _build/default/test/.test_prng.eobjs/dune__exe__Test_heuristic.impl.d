test/test_heuristic.ml: Alcotest Array Cost Float Lineage List Optimize Printf Workload
