test/test_formula.ml: Alcotest Lineage List QCheck QCheck_alcotest
