test/test_workspace.ml: Alcotest Filename Lineage List Option Pcqe Printf Random Relational String Sys Unix
