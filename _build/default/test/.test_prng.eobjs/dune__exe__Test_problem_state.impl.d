test/test_problem_state.ml: Alcotest Algebra Array Cost Database Eval Lineage List Optimize Prng Relation Relational Schema Value Workload
