test/test_trust.ml: Alcotest List QCheck QCheck_alcotest Relational Trust
