test/test_policy.ml: Alcotest List Rbac String
