test/test_value.ml: Alcotest List Option QCheck QCheck_alcotest Relational
