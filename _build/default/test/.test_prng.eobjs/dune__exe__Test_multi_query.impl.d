test/test_multi_query.ml: Alcotest Cost Float Lineage List Optimize Printf
