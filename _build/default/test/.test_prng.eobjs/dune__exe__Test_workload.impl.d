test/test_workload.ml: Alcotest Array Lineage List Optimize Printf Prng QCheck QCheck_alcotest Workload
