test/test_dnc.mli:
