test/test_relation.ml: Alcotest Lineage List Relational String
