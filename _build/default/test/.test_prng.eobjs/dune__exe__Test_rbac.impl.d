test/test_rbac.ml: Alcotest List Rbac
