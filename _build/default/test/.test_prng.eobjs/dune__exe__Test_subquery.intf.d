test/test_subquery.mli:
