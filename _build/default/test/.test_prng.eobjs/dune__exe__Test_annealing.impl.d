test/test_annealing.ml: Alcotest Cost Float Lineage List Optimize Printf Workload
