test/test_subquery.ml: Alcotest Lineage List Relational
