test/test_repl.ml: Alcotest Filename Lineage List Pcqe Printf Rbac Relational String Sys Unix
