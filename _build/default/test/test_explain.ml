(* Tests for why-provenance (minimal witnesses) and influence ranking. *)

module F = Lineage.Formula
module X = Lineage.Explain
module Tid = Lineage.Tid

let t i = Tid.make "t" i
let v i = F.var (t i)

let set l = Tid.Set.of_list (List.map t l)

let sets = Alcotest.testable
  (Fmt.of_to_string (fun s ->
       "{" ^ String.concat "," (List.map Tid.to_string (Tid.Set.elements s)) ^ "}"))
  Tid.Set.equal

let witness_ok f =
  match X.witnesses f with
  | Ok ws -> ws
  | Error msg -> Alcotest.failf "witnesses failed: %s" msg

let test_var () =
  Alcotest.(check (list sets)) "single var" [ set [ 0 ] ] (witness_ok (v 0))

let test_conjunction () =
  Alcotest.(check (list sets)) "conjunction is one witness"
    [ set [ 0; 1 ] ]
    (witness_ok (F.conj [ v 0; v 1 ]))

let test_disjunction () =
  Alcotest.(check (list sets)) "disjunction has two"
    [ set [ 0 ]; set [ 1 ] ]
    (witness_ok (F.disj [ v 0; v 1 ]))

let test_paper_lineage () =
  (* (t2 | t3) & t13: witnesses {t2,t13} and {t3,t13} *)
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  Alcotest.(check (list sets)) "paper"
    [ set [ 2; 13 ]; set [ 3; 13 ] ]
    (witness_ok f)

let test_absorption () =
  (* t0 | (t0 & t1): the bigger witness is absorbed *)
  let f = F.Or [ v 0; F.And [ v 0; v 1 ] ] in
  Alcotest.(check (list sets)) "absorbed" [ set [ 0 ] ] (witness_ok f)

let test_constants () =
  Alcotest.(check (list sets)) "true has the empty witness" [ Tid.Set.empty ]
    (witness_ok F.tru);
  Alcotest.(check (list sets)) "false has none" [] (witness_ok F.fls)

let test_negation_rejected () =
  match X.witnesses (F.conj [ v 0; F.neg (v 1) ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negation must be rejected"

let test_top_witnesses_ranked () =
  let f = F.disj [ v 0; F.conj [ v 1; v 2 ] ] in
  let p tid = [| 0.3; 0.9; 0.8 |].(tid.Tid.row) in
  match X.top_witnesses p f with
  | [ (w1, p1); (w2, p2) ] ->
    (* {t1,t2} has probability 0.72 > 0.3 of {t0} *)
    Alcotest.(check sets) "best first" (set [ 1; 2 ]) w1;
    Alcotest.(check (float 1e-9)) "p1" 0.72 p1;
    Alcotest.(check sets) "then t0" (set [ 0 ]) w2;
    Alcotest.(check (float 1e-9)) "p2" 0.3 p2
  | ws -> Alcotest.failf "expected 2 witnesses, got %d" (List.length ws)

let test_top_witnesses_k () =
  let f = F.disj [ v 0; v 1; v 2 ] in
  let p _ = 0.5 in
  Alcotest.(check int) "k limits" 2 (List.length (X.top_witnesses ~k:2 p f))

let test_influence_ranking () =
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p tid = match tid.Tid.row with 2 -> 0.3 | 3 -> 0.4 | _ -> 0.1 in
  match X.influence p f with
  | (first, d1) :: rest ->
    (* t13 gates the whole conjunction: dP/dp13 = 0.58 dominates *)
    Alcotest.(check string) "t13 most influential" "t#13" (Tid.to_string first);
    Alcotest.(check (float 1e-9)) "value" 0.58 d1;
    Alcotest.(check int) "all vars listed" 2 (List.length rest)
  | [] -> Alcotest.fail "no influences"

let test_to_string () =
  let f = F.conj [ v 0; v 1 ] in
  let text = X.to_string (fun _ -> 0.5) f in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "witnesses section" true (contains "witnesses");
  Alcotest.(check bool) "influence section" true (contains "influence");
  Alcotest.(check bool) "mentions tuples" true (contains "t#0")

(* property: every witness satisfies the formula; removing any element
   breaks it (minimality) *)
let gen_monotone =
  QCheck.Gen.(
    fix (fun self n ->
           if n <= 1 then map (fun i -> v i) (int_range 0 4)
           else
             frequency
               [
                 (2, map (fun i -> v i) (int_range 0 4));
                 (2, map F.conj (list_size (int_range 2 3) (self (n / 2))));
                 (2, map F.disj (list_size (int_range 2 3) (self (n / 2))));
               ]))

let arb_monotone =
  (* keep formulas small: DNF conversion is exponential by design *)
  QCheck.make ~print:F.to_string QCheck.Gen.(sized_size (int_range 1 8) (fun n -> gen_monotone n))

let qcheck_witnesses_satisfy =
  QCheck.Test.make ~name:"each witness satisfies the formula" ~count:200
    arb_monotone
    (fun f ->
      match X.witnesses f with
      | Error _ -> false
      | Ok ws ->
        List.for_all
          (fun w -> F.eval (fun tid -> Tid.Set.mem tid w) f)
          ws)

let qcheck_witnesses_minimal =
  QCheck.Test.make ~name:"witnesses are minimal" ~count:200 arb_monotone
    (fun f ->
      match X.witnesses f with
      | Error _ -> false
      | Ok ws ->
        List.for_all
          (fun w ->
            Tid.Set.for_all
              (fun drop ->
                let smaller = Tid.Set.remove drop w in
                not (F.eval (fun tid -> Tid.Set.mem tid smaller) f))
              w)
          ws)

let qcheck_witness_union_covers =
  QCheck.Test.make ~name:"formula true iff some witness is contained" ~count:200
    (QCheck.pair arb_monotone (QCheck.list_of_size (QCheck.Gen.return 5) QCheck.bool))
    (fun (f, bits) ->
      match X.witnesses f with
      | Error _ -> false
      | Ok ws ->
        let assignment tid = List.nth bits tid.Tid.row in
        let world =
          Tid.Set.of_list
            (List.concat (List.mapi (fun i b -> if b then [ t i ] else []) bits))
        in
        F.eval assignment f
        = List.exists (fun w -> Tid.Set.subset w world) ws)

let () =
  Alcotest.run "explain"
    [
      ( "witnesses",
        [
          Alcotest.test_case "var" `Quick test_var;
          Alcotest.test_case "conjunction" `Quick test_conjunction;
          Alcotest.test_case "disjunction" `Quick test_disjunction;
          Alcotest.test_case "paper lineage" `Quick test_paper_lineage;
          Alcotest.test_case "absorption" `Quick test_absorption;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "negation rejected" `Quick test_negation_rejected;
          Alcotest.test_case "ranked" `Quick test_top_witnesses_ranked;
          Alcotest.test_case "k" `Quick test_top_witnesses_k;
        ] );
      ( "influence",
        [
          Alcotest.test_case "ranking" `Quick test_influence_ranking;
          Alcotest.test_case "rendering" `Quick test_to_string;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_witnesses_satisfy;
          QCheck_alcotest.to_alcotest qcheck_witnesses_minimal;
          QCheck_alcotest.to_alcotest qcheck_witness_union_covers;
        ] );
    ]
