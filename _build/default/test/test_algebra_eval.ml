(* Tests for relational-algebra evaluation with lineage: operator semantics,
   lineage composition, schema inference, and the paper's running example. *)

module A = Relational.Algebra
module E = Relational.Eval
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation
module F = Lineage.Formula
module Tid = Lineage.Tid

let mk_db () =
  let r =
    R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ])
  in
  let s =
    R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ])
  in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "R" [ V.String "a"; V.Int 1 ] 0.9 in
  let db = ins db "R" [ V.String "a"; V.Int 2 ] 0.8 in
  let db = ins db "R" [ V.String "b"; V.Int 3 ] 0.7 in
  let db = ins db "S" [ V.String "a"; V.Int 10 ] 0.6 in
  let db = ins db "S" [ V.String "c"; V.Int 30 ] 0.5 in
  db

let run db plan =
  match E.run db plan with
  | Ok r -> r
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let lineage_strings res =
  List.map (fun r -> F.to_string r.E.lineage) res.E.rows

let tuples_as_strings res =
  List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows

let test_scan () =
  let db = mk_db () in
  let res = run db (A.scan "R") in
  Alcotest.(check int) "3 rows" 3 (List.length res.E.rows);
  Alcotest.(check (list string)) "var lineage" [ "R#0"; "R#1"; "R#2" ]
    (lineage_strings res);
  Alcotest.(check (list string)) "qualified schema" [ "R.k"; "R.n" ]
    (S.column_names res.E.schema)

let test_select () =
  let db = mk_db () in
  let res = run db A.(select X.(col "n" >% int 1) (scan "R")) in
  Alcotest.(check int) "2 rows" 2 (List.length res.E.rows);
  Alcotest.(check (list string)) "lineage unchanged" [ "R#1"; "R#2" ]
    (lineage_strings res)

let test_project_merges_lineage () =
  let db = mk_db () in
  let res = run db A.(project [ "k" ] (scan "R")) in
  Alcotest.(check int) "dedup to 2" 2 (List.length res.E.rows);
  Alcotest.(check (list string)) "or-merged lineage" [ "R#0 | R#1"; "R#2" ]
    (lineage_strings res)

let test_join_lineage_and () =
  let db = mk_db () in
  let res = run db A.(join X.(col "R.k" =% col "S.k") (scan "R") (scan "S")) in
  Alcotest.(check int) "two matches" 2 (List.length res.E.rows);
  Alcotest.(check (list string)) "conjunction" [ "R#0 & S#0"; "R#1 & S#0" ]
    (lineage_strings res)

let test_cross_product () =
  let db = mk_db () in
  let res = run db A.(cross (scan "R") (scan "S")) in
  Alcotest.(check int) "3x2" 6 (List.length res.E.rows)

let test_union_merges () =
  let db = mk_db () in
  let left = A.(project [ "k" ] (scan "R")) in
  let right = A.(project [ "k" ] (scan "S")) in
  let res = run db (A.Union (left, right)) in
  Alcotest.(check int) "a, b, c" 3 (List.length res.E.rows);
  (* "a" appears on both sides: lineage is the disjunction of both *)
  let a_row =
    List.find
      (fun r -> V.equal (Relational.Tuple.get r.E.tuple 0) (V.String "a"))
      res.E.rows
  in
  Alcotest.(check string) "union lineage" "R#0 | R#1 | S#0"
    (F.to_string a_row.E.lineage)

let test_intersect () =
  let db = mk_db () in
  let left = A.(project [ "k" ] (scan "R")) in
  let right = A.(project [ "k" ] (scan "S")) in
  let res = run db (A.Intersect (left, right)) in
  Alcotest.(check int) "only a" 1 (List.length res.E.rows);
  Alcotest.(check (list string)) "and of both sides" [ "(R#0 | R#1) & S#0" ]
    (lineage_strings res)

let test_diff_negates () =
  let db = mk_db () in
  let left = A.(project [ "k" ] (scan "R")) in
  let right = A.(project [ "k" ] (scan "S")) in
  let res = run db (A.Diff (left, right)) in
  Alcotest.(check int) "a and b" 2 (List.length res.E.rows);
  Alcotest.(check (list string)) "negated right lineage"
    [ "(R#0 | R#1) & !S#0"; "R#2" ]
    (lineage_strings res)

let test_order_by_limit () =
  let db = mk_db () in
  let res =
    run db A.(Limit (2, Order_by ([ ("n", A.Desc) ], scan "R")))
  in
  Alcotest.(check (list string)) "top 2 by n desc"
    [ "(b, 3)"; "(a, 2)" ]
    (tuples_as_strings res)

let test_group_by () =
  let db = mk_db () in
  let res =
    run db
      (A.Group_by
         ( [ "k" ],
           [
             { A.fn = A.CountStar; arg = None; out = "cnt" };
             { A.fn = A.Sum; arg = Some "n"; out = "total" };
             { A.fn = A.Max; arg = Some "n"; out = "mx" };
           ],
           A.scan "R" ))
  in
  Alcotest.(check (list string)) "grouped"
    [ "(a, 2, 3, 2)"; "(b, 1, 3, 3)" ]
    (tuples_as_strings res);
  Alcotest.(check (list string)) "existence lineage" [ "R#0 | R#1"; "R#2" ]
    (lineage_strings res)

let test_group_by_avg_and_min () =
  let db = mk_db () in
  let res =
    run db
      (A.Group_by
         ( [],
           [
             { A.fn = A.Avg; arg = Some "n"; out = "avg_n" };
             { A.fn = A.Min; arg = Some "n"; out = "min_n" };
             { A.fn = A.Count; arg = Some "n"; out = "c" };
           ],
           A.scan "R" ))
  in
  Alcotest.(check (list string)) "global group" [ "(2.0, 1, 3)" ]
    (tuples_as_strings res)

let test_rename () =
  let db = mk_db () in
  let res = run db (A.Rename ("X", A.scan "R")) in
  Alcotest.(check (list string)) "requalified" [ "X.k"; "X.n" ]
    (S.column_names res.E.schema)

let test_self_join_lineage () =
  let db = mk_db () in
  let plan =
    A.(
      join
        X.(col "X.k" =% col "Y.k")
        (Rename ("X", scan "R"))
        (Rename ("Y", scan "R")))
  in
  let res = run db plan in
  (* a-a pairs: (0,0) (0,1) (1,0) (1,1), b-b: (2,2) *)
  Alcotest.(check int) "5 pairs" 5 (List.length res.E.rows);
  (* the diagonal pair must not duplicate the variable in its lineage *)
  let diag =
    List.find (fun r -> F.to_string r.E.lineage = "R#0") res.E.rows
  in
  let c = E.confidence db diag in
  Alcotest.(check (float 1e-12)) "self-join diagonal confidence" 0.9 c

let test_confidence_computation () =
  let db = mk_db () in
  let res = run db A.(project [ "k" ] (scan "R")) in
  let confs = List.map snd (E.with_confidence db res) in
  (* P(R0 or R1) = 1 - 0.1*0.2 = 0.98; P(R2) = 0.7 *)
  Alcotest.(check (list (float 1e-9))) "confidences" [ 0.98; 0.7 ] confs

let test_schema_errors () =
  let db = mk_db () in
  (match E.run db (A.scan "Nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation must fail");
  (match E.run db A.(project [ "zz" ] (scan "R")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown column must fail");
  (match E.run db (A.Union (A.scan "R", A.scan "S")) with
  | Ok _ -> () (* R and S have compatible types string,int *)
  | Error msg -> Alcotest.failf "union should typecheck: %s" msg);
  match
    E.run db
      (A.Union (A.scan "R", A.(project [ "k" ] (scan "S"))))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "arity mismatch must fail"

let test_base_relations () =
  let plan =
    A.(Union (join X.(col "R.k" =% col "S.k") (scan "R") (scan "S"), scan "R"))
  in
  Alcotest.(check (list string)) "dedup scan list" [ "R"; "S" ]
    (A.base_relations plan)

let test_hash_join_matches_nested_loop () =
  (* the single-equality predicate takes the hash-join path; wrapping it in
     a conjunction with TRUE forces the nested loop -- both must agree
     exactly (rows, order, lineage) *)
  let rng = Prng.Splitmix.of_int 8 in
  let r = R.create "BigR" (S.of_list [ ("k", V.TInt); ("n", V.TInt) ]) in
  let s = R.create "BigS" (S.of_list [ ("k", V.TInt); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation (mk_db ()) r) s in
  let fill db rel count =
    let rec go db i =
      if i = 0 then db
      else
        let key =
          if Prng.Splitmix.coin rng 0.1 then V.Null
          else V.Int (Prng.Splitmix.int rng 20)
        in
        go (fst (Db.insert db rel [ key; V.Int i ] ~conf:0.5)) (i - 1)
    in
    go db count
  in
  let db = fill db "BigR" 60 in
  let db = fill db "BigS" 60 in
  let eq = X.(col "BigR.k" =% col "BigS.k") in
  let hash_plan = A.Join (Some eq, A.scan "BigR", A.scan "BigS") in
  let loop_plan =
    A.Join (Some X.(And (eq, bool true)), A.scan "BigR", A.scan "BigS")
  in
  let h = run db hash_plan and l = run db loop_plan in
  Alcotest.(check int) "same cardinality" (List.length l.E.rows)
    (List.length h.E.rows);
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same tuple" true
        (Relational.Tuple.equal a.E.tuple b.E.tuple);
      Alcotest.(check bool) "same lineage" true (F.equal a.E.lineage b.E.lineage))
    h.E.rows l.E.rows

(* the paper's running example, end to end through the algebra layer *)
let test_paper_example () =
  let proposal =
    R.create "Proposal"
      (S.of_list
         [ ("Company", V.TString); ("Prop", V.TString); ("Funding", V.TFloat) ])
  in
  let info =
    R.create "CompanyInfo" (S.of_list [ ("Company", V.TString); ("Income", V.TFloat) ])
  in
  let db = Db.add_relation (Db.add_relation Db.empty proposal) info in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "Proposal" [ V.String "X"; V.String "p1"; V.Float 800_000.0 ] 0.3 in
  let db = ins db "Proposal" [ V.String "X"; V.String "p2"; V.Float 500_000.0 ] 0.4 in
  let db = ins db "CompanyInfo" [ V.String "X"; V.Float 1_000_000.0 ] 0.1 in
  let plan =
    A.(
      project
        [ "CompanyInfo.Company"; "Income" ]
        (join
           X.(col "Proposal.Company" =% col "CompanyInfo.Company")
           (select X.(col "Funding" <% float 1_000_000.0) (scan "Proposal"))
           (scan "CompanyInfo")))
  in
  let res = run db plan in
  Alcotest.(check int) "one result" 1 (List.length res.E.rows);
  let conf = E.confidence db (List.hd res.E.rows) in
  Alcotest.(check (float 1e-12)) "p38 = 0.058" 0.058 conf

let () =
  Alcotest.run "algebra-eval"
    [
      ( "operators",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project dedup" `Quick test_project_merges_lineage;
          Alcotest.test_case "join lineage" `Quick test_join_lineage_and;
          Alcotest.test_case "cross product" `Quick test_cross_product;
          Alcotest.test_case "union" `Quick test_union_merges;
          Alcotest.test_case "intersect" `Quick test_intersect;
          Alcotest.test_case "diff" `Quick test_diff_negates;
          Alcotest.test_case "order/limit" `Quick test_order_by_limit;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "avg/min/count" `Quick test_group_by_avg_and_min;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "self join" `Quick test_self_join_lineage;
          Alcotest.test_case "confidences" `Quick test_confidence_computation;
          Alcotest.test_case "schema errors" `Quick test_schema_errors;
          Alcotest.test_case "base relations" `Quick test_base_relations;
          Alcotest.test_case "hash join = nested loop" `Quick
            test_hash_join_matches_nested_loop;
          Alcotest.test_case "paper example" `Quick test_paper_example;
        ] );
    ]
