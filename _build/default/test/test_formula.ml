(* Tests for lineage formulas: smart constructors, simplification,
   restriction, and structural predicates.  Includes a qcheck property that
   simplification preserves semantics on random formulas. *)

module F = Lineage.Formula
module Tid = Lineage.Tid

let v i = F.var (Tid.make "t" i)

let t0 = v 0
let t1 = v 1
let t2 = v 2

let feq = Alcotest.testable F.pp F.equal

let test_conj_simplifications () =
  Alcotest.(check feq) "empty conj is true" F.tru (F.conj []);
  Alcotest.(check feq) "singleton collapses" t0 (F.conj [ t0 ]);
  Alcotest.(check feq) "true dropped" (F.conj [ t0; t1 ]) (F.conj [ t0; F.tru; t1 ]);
  Alcotest.(check feq) "false short-circuits" F.fls (F.conj [ t0; F.fls; t1 ]);
  Alcotest.(check feq) "nested flattened" (F.conj [ t0; t1; t2 ])
    (F.conj [ F.conj [ t0; t1 ]; t2 ]);
  Alcotest.(check feq) "duplicates removed" t0 (F.conj [ t0; t0 ])

let test_disj_simplifications () =
  Alcotest.(check feq) "empty disj is false" F.fls (F.disj []);
  Alcotest.(check feq) "true short-circuits" F.tru (F.disj [ t0; F.tru ]);
  Alcotest.(check feq) "false dropped" (F.disj [ t0; t1 ]) (F.disj [ F.fls; t0; t1 ]);
  Alcotest.(check feq) "nested flattened" (F.disj [ t0; t1; t2 ])
    (F.disj [ t0; F.disj [ t1; t2 ] ])

let test_neg () =
  Alcotest.(check feq) "neg true" F.fls (F.neg F.tru);
  Alcotest.(check feq) "neg false" F.tru (F.neg F.fls);
  Alcotest.(check feq) "double negation" t0 (F.neg (F.neg t0))

let test_vars () =
  let f = F.conj [ F.disj [ t0; t1 ]; t2; t0 ] in
  Alcotest.(check int) "three distinct vars" 3 (F.var_count f);
  Alcotest.(check bool) "contains t1" true
    (Tid.Set.mem (Tid.make "t" 1) (F.vars f))

let test_size_depth () =
  let f = F.conj [ F.disj [ t0; t1 ]; t2 ] in
  Alcotest.(check int) "size" 5 (F.size f);
  Alcotest.(check int) "depth" 3 (F.depth f);
  Alcotest.(check int) "leaf depth" 1 (F.depth t0)

let test_read_once () =
  Alcotest.(check bool) "tree is read-once" true
    (F.is_read_once (F.conj [ F.disj [ t0; t1 ]; t2 ]));
  (* duplicates inside one conj/disj are removed by the constructors, so
     build sharing across operators *)
  let shared = F.disj [ F.conj [ t0; t1 ]; F.conj [ t0; t2 ] ] in
  Alcotest.(check bool) "shared var not read-once" false (F.is_read_once shared)

let test_monotone () =
  Alcotest.(check bool) "and/or monotone" true
    (F.is_monotone (F.conj [ t0; F.disj [ t1; t2 ] ]));
  Alcotest.(check bool) "negation not monotone" false
    (F.is_monotone (F.conj [ t0; F.neg t1 ]))

let test_eval () =
  let f = F.conj [ F.disj [ t0; t1 ]; t2 ] in
  let assignment m tid = List.mem tid.Tid.row m in
  Alcotest.(check bool) "t0,t2 true" true (F.eval (assignment [ 0; 2 ]) f);
  Alcotest.(check bool) "t2 missing" false (F.eval (assignment [ 0; 1 ]) f);
  Alcotest.(check bool) "only t2" false (F.eval (assignment [ 2 ]) f)

let test_restrict () =
  let f = F.conj [ F.disj [ t0; t1 ]; t2 ] in
  Alcotest.(check feq) "restrict t0 true" t2 (F.restrict (Tid.make "t" 0) true f);
  Alcotest.(check feq) "restrict t0 false" (F.conj [ t1; t2 ])
    (F.restrict (Tid.make "t" 0) false f);
  Alcotest.(check feq) "restrict all" F.fls
    (F.restrict (Tid.make "t" 2) false (F.restrict (Tid.make "t" 0) true f))

let test_absorption () =
  (* x | (x & y) = x *)
  Alcotest.(check feq) "or absorption" t0
    (F.simplify (F.Or [ t0; F.And [ t0; t1 ] ]));
  (* x & (x | y) = x *)
  Alcotest.(check feq) "and absorption" t0
    (F.simplify (F.And [ t0; F.Or [ t0; t1 ] ]))

let test_map_vars () =
  let f = F.conj [ t0; t1 ] in
  let g = F.map_vars (fun tid -> Tid.make "u" tid.Tid.row) f in
  Alcotest.(check bool) "renamed" true
    (Tid.Set.mem (Tid.make "u" 0) (F.vars g)
    && not (Tid.Set.mem (Tid.make "t" 0) (F.vars g)))

let test_to_string () =
  Alcotest.(check string) "infix" "(t#0 | t#1) & t#2"
    (F.to_string (F.conj [ F.disj [ t0; t1 ]; t2 ]));
  Alcotest.(check string) "negation" "!t#0" (F.to_string (F.neg t0))

(* random formula generator over 4 variables *)
let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then map (fun i -> v i) (int_range 0 3)
           else
             frequency
               [
                 (2, map (fun i -> v i) (int_range 0 3));
                 (1, map F.neg (self (n / 2)));
                 (2, map F.conj (list_size (int_range 2 3) (self (n / 2))));
                 (2, map F.disj (list_size (int_range 2 3) (self (n / 2))));
               ]))

let arb_formula = QCheck.make ~print:F.to_string gen_formula

let qcheck_simplify_preserves_semantics =
  QCheck.Test.make ~name:"simplify preserves semantics" ~count:500
    (QCheck.pair arb_formula (QCheck.list_of_size (QCheck.Gen.return 4) QCheck.bool))
    (fun (f, bits) ->
      let assignment tid = List.nth bits tid.Tid.row in
      F.eval assignment f = F.eval assignment (F.simplify f))

let qcheck_restrict_fixes_variable =
  QCheck.Test.make ~name:"restrict removes the variable" ~count:300 arb_formula
    (fun f ->
      let tid = Tid.make "t" 0 in
      let f' = F.restrict tid true f in
      not (Tid.Set.mem tid (F.vars f')))

let qcheck_double_restrict_commutes =
  QCheck.Test.make ~name:"restrictions on distinct vars commute" ~count:300
    arb_formula
    (fun f ->
      let a = Tid.make "t" 0 and b = Tid.make "t" 1 in
      F.equal
        (F.restrict a true (F.restrict b false f))
        (F.restrict b false (F.restrict a true f)))

let () =
  Alcotest.run "formula"
    [
      ( "constructors",
        [
          Alcotest.test_case "conj" `Quick test_conj_simplifications;
          Alcotest.test_case "disj" `Quick test_disj_simplifications;
          Alcotest.test_case "neg" `Quick test_neg;
          Alcotest.test_case "vars" `Quick test_vars;
          Alcotest.test_case "size/depth" `Quick test_size_depth;
          Alcotest.test_case "read-once" `Quick test_read_once;
          Alcotest.test_case "monotone" `Quick test_monotone;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "restrict" `Quick test_restrict;
          Alcotest.test_case "absorption" `Quick test_absorption;
          Alcotest.test_case "map_vars" `Quick test_map_vars;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_simplify_preserves_semantics;
          QCheck_alcotest.to_alcotest qcheck_restrict_fixes_variable;
          QCheck_alcotest.to_alcotest qcheck_double_restrict_commutes;
        ] );
    ]
