(* Tests for the optimization problem representation and the mutable
   assignment state shared by all solvers. *)

module Problem = Optimize.Problem
module State = Optimize.State
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

let base ?(p0 = 0.1) ?(cap = 1.0) ?(rate = 100.0) i =
  { Problem.tid = t i; p0; cap; cost = C.linear ~rate }

(* two results over three bases: r0 = (b0 | b1), r1 = b1 & b2 *)
let small () =
  Problem.make_exn ~beta:0.5 ~required:1
    ~bases:[ base 0; base 1; base 2 ]
    ~formulas:[ F.disj [ v 0; v 1 ]; F.conj [ v 1; v 2 ] ]
    ()

let test_make_validation () =
  let check_err what f =
    match f () with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected failure: %s" what
  in
  check_err "beta out of range" (fun () ->
      Problem.make ~beta:1.5 ~required:0 ~bases:[ base 0 ] ~formulas:[ v 0 ] ());
  check_err "required negative" (fun () ->
      Problem.make ~beta:0.5 ~required:(-1) ~bases:[ base 0 ] ~formulas:[ v 0 ] ());
  check_err "required too big" (fun () ->
      Problem.make ~beta:0.5 ~required:2 ~bases:[ base 0 ] ~formulas:[ v 0 ] ());
  check_err "unknown base in formula" (fun () ->
      Problem.make ~beta:0.5 ~required:1 ~bases:[ base 0 ] ~formulas:[ v 7 ] ());
  check_err "p0 above cap" (fun () ->
      Problem.make ~beta:0.5 ~required:1
        ~bases:[ { (base 0) with Problem.p0 = 0.9; cap = 0.5 } ]
        ~formulas:[ v 0 ] ());
  check_err "duplicate base" (fun () ->
      Problem.make ~beta:0.5 ~required:1 ~bases:[ base 0; base 0 ]
        ~formulas:[ v 0 ] ());
  check_err "bad delta" (fun () ->
      Problem.make ~delta:0.0 ~beta:0.5 ~required:1 ~bases:[ base 0 ]
        ~formulas:[ v 0 ] ())

let test_indexes () =
  let p = small () in
  Alcotest.(check int) "bases" 3 (Problem.num_bases p);
  Alcotest.(check int) "results" 2 (Problem.num_results p);
  Alcotest.(check (option int)) "bid of b1" (Some 1) (Problem.bid_of_tid p (t 1));
  Alcotest.(check (option int)) "unknown tid" None (Problem.bid_of_tid p (t 9));
  Alcotest.(check (list int)) "b1 affects both results" [ 0; 1 ]
    (Problem.results_of_base p 1);
  Alcotest.(check (list int)) "b0 affects r0" [ 0 ] (Problem.results_of_base p 0);
  Alcotest.(check (list int)) "r1 bases" [ 1; 2 ] (Problem.bases_of_result p 1)

let test_grid_levels () =
  let p =
    Problem.make_exn ~delta:0.25 ~beta:0.5 ~required:0
      ~bases:[ { (base 0) with Problem.p0 = 0.2; cap = 0.9 } ]
      ~formulas:[] ()
  in
  (* hmm: no formulas means base 0 unused but still valid *)
  Alcotest.(check (list (float 1e-9))) "ends exactly at cap"
    [ 0.2; 0.45; 0.7; 0.9 ]
    (Problem.grid_levels p 0)

let test_eval_result () =
  let p = small () in
  let levels = [| 0.3; 0.4; 0.5 |] in
  Alcotest.(check (float 1e-9)) "or" 0.58 (Problem.eval_result p levels 0);
  Alcotest.(check (float 1e-9)) "and" 0.2 (Problem.eval_result p levels 1)

let test_eval_result_non_read_once () =
  (* r = (b0 & b1) | (b0 & b2): shared b0 forces the exact evaluator *)
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:[ base 0; base 1; base 2 ]
      ~formulas:[ F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] ]
      ()
  in
  let levels = [| 0.5; 0.4; 0.2 |] in
  Alcotest.(check (float 1e-9)) "shannon through compiled eval"
    (0.5 *. (0.4 +. 0.2 -. 0.08))
    (Problem.eval_result p levels 0)

let test_state_initialization () =
  let st = State.create (small ()) in
  Alcotest.(check (float 1e-9)) "levels at p0" 0.1 (State.base_level st 0);
  (* r0 = 1-0.9*0.9 = 0.19, r1 = 0.01: none above 0.5 *)
  Alcotest.(check int) "nothing satisfied" 0 (State.satisfied_count st);
  Alcotest.(check (float 1e-9)) "cost 0" 0.0 (State.cost st);
  Alcotest.(check (float 1e-9)) "conf r0" 0.19 (State.result_confidence st 0)

let test_state_set_and_satisfaction () =
  let st = State.create (small ()) in
  State.set_base st 0 0.9;
  (* r0 = 1 - 0.1*0.9 = 0.91 > 0.5 *)
  Alcotest.(check int) "r0 satisfied" 1 (State.satisfied_count st);
  Alcotest.(check bool) "specifically r0" true (State.is_satisfied st 0);
  Alcotest.(check (list int)) "satisfied list" [ 0 ] (State.satisfied_results st);
  Alcotest.(check (float 1e-9)) "cost tracked" 80.0 (State.cost st);
  (* lower back down *)
  State.set_base st 0 0.1;
  Alcotest.(check int) "unsatisfied again" 0 (State.satisfied_count st);
  Alcotest.(check (float 1e-9)) "cost restored" 0.0 (State.cost st)

let test_state_validation () =
  let st = State.create (small ()) in
  Alcotest.(check bool) "below p0 rejected" true
    (try
       State.set_base st 0 0.0;
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "above cap rejected" true
    (try
       State.set_base st 0 1.5;
       false
     with Invalid_argument _ -> true)

let test_delta_steps () =
  let st = State.create (small ()) in
  Alcotest.(check bool) "raise ok" true (State.raise_by_delta st 0);
  Alcotest.(check (float 1e-9)) "one step" 0.2 (State.base_level st 0);
  Alcotest.(check bool) "lower ok" true (State.lower_by_delta st 0);
  Alcotest.(check bool) "lower at p0 fails" false (State.lower_by_delta st 0);
  (* raise to the cap and refuse further *)
  let steps = ref 0 in
  while State.raise_by_delta st 0 do
    incr steps
  done;
  Alcotest.(check (float 1e-9)) "at cap" 1.0 (State.base_level st 0);
  Alcotest.(check int) "nine steps from 0.1" 9 !steps

let test_solution_and_raised () =
  let st = State.create (small ()) in
  State.set_base st 1 0.5;
  Alcotest.(check (list int)) "raised" [ 1 ] (State.raised_bases st);
  match State.solution st with
  | [ (tid, level) ] ->
    Alcotest.(check string) "tid" "b#1" (Tid.to_string tid);
    Alcotest.(check (float 1e-9)) "level" 0.5 level
  | _ -> Alcotest.fail "expected one increment"

let test_snapshot_restore () =
  let st = State.create (small ()) in
  State.set_base st 0 0.6;
  let snap = State.snapshot st in
  State.set_base st 0 0.9;
  State.set_base st 2 0.4;
  State.restore st snap;
  Alcotest.(check (float 1e-9)) "b0 restored" 0.6 (State.base_level st 0);
  Alcotest.(check (float 1e-9)) "b2 restored" 0.1 (State.base_level st 2);
  State.reset st;
  Alcotest.(check (float 1e-9)) "reset to p0" 0.1 (State.base_level st 0);
  Alcotest.(check (float 1e-9)) "cost zero" 0.0 (State.cost st)

let test_confidence_with_override () =
  let st = State.create (small ()) in
  let c = State.confidence_with_override st ~rid:0 ~bid:0 ~level:0.9 in
  Alcotest.(check (float 1e-9)) "override value" 0.91 c;
  Alcotest.(check (float 1e-9)) "state untouched" 0.1 (State.base_level st 0);
  Alcotest.(check (float 1e-9)) "cached conf untouched" 0.19
    (State.result_confidence st 0)

let test_gain () =
  let st = State.create (small ()) in
  (* raising b0 by 0.1: r0 goes 0.19 -> 1-0.8*0.9 = 0.28; dcost = 10 *)
  Alcotest.(check (float 1e-9)) "gain b0" (0.09 /. 10.0) (State.gain st 0 0.1);
  (* b1 affects both results *)
  let g1 = State.gain st 1 0.1 in
  Alcotest.(check bool) "b1 gain larger" true (g1 > State.gain st 0 0.1);
  (* at cap, gain is 0 *)
  State.set_base st 0 1.0;
  Alcotest.(check (float 1e-9)) "gain at cap" 0.0 (State.gain st 0 0.1)

let test_gain_only_unsatisfied () =
  let st = State.create (small ()) in
  State.set_base st 0 0.9 (* r0 satisfied *);
  let with_sat = State.gain st 1 ~only_unsatisfied:false 0.1 in
  let without_sat = State.gain st 1 ~only_unsatisfied:true 0.1 in
  Alcotest.(check bool) "excluding satisfied shrinks gain" true
    (without_sat < with_sat)

let test_bdd_compiled_eval_matches_exact () =
  (* non-read-once lineage from the DAG generator: the BDD-compiled
     evaluator must agree with per-call Shannon expansion *)
  let rng = Prng.Splitmix.of_int 31 in
  for _ = 1 to 20 do
    let tids = List.init 6 (Tid.make "d") in
    let f = Workload.Dag_query.random_dag rng ~sharing:1.0 tids in
    let bases =
      List.map
        (fun tid ->
          { Problem.tid; p0 = Prng.Splitmix.float_in rng 0.1 0.9; cap = 1.0;
            cost = C.linear ~rate:10.0 })
        tids
    in
    let p = Problem.make_exn ~beta:0.5 ~required:0 ~bases ~formulas:[ f ] () in
    let levels = Array.map (fun b -> b.Problem.p0) (Problem.bases p) in
    let lookup tid =
      match Problem.bid_of_tid p tid with
      | Some bid -> levels.(bid)
      | None -> 0.0
    in
    let expect = Lineage.Prob.exact lookup f in
    Alcotest.(check (float 1e-9)) "compiled matches exact" expect
      (Problem.eval_result p levels 0)
  done

let test_of_query_results () =
  (* build a tiny database and query, then derive the instance *)
  let open Relational in
  let r = Relation.create "R" (Schema.of_list [ ("k", Value.TString) ]) in
  let db = Database.add_relation Database.empty r in
  let db, _ = Database.insert db "R" [ Value.String "a" ] ~conf:0.3 in
  let db, _ = Database.insert db "R" [ Value.String "b" ] ~conf:0.9 in
  let db, _ = Database.insert db "R" [ Value.String "c" ] ~conf:0.2 in
  let res = Eval.run_exn db (Algebra.scan "R") in
  match
    Problem.of_query_results ~theta:1.0 ~beta:0.5
      ~cost_of:(fun _ -> C.linear ~rate:10.0)
      ~cap_of:(fun _ -> 1.0)
      db res
  with
  | Error msg -> Alcotest.fail msg
  | Ok (p, failing) ->
    (* rows 0 and 2 are below beta *)
    Alcotest.(check (list int)) "failing rows" [ 0; 2 ] failing;
    Alcotest.(check int) "instance results" 2 (Problem.num_results p);
    Alcotest.(check int) "instance bases" 2 (Problem.num_bases p);
    (* theta = 1.0: want all 3, one already passes -> need 2 more *)
    Alcotest.(check int) "required" 2 (Problem.required p)

let () =
  Alcotest.run "problem-state"
    [
      ( "problem",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "indexes" `Quick test_indexes;
          Alcotest.test_case "grid levels" `Quick test_grid_levels;
          Alcotest.test_case "eval" `Quick test_eval_result;
          Alcotest.test_case "eval non-read-once" `Quick test_eval_result_non_read_once;
          Alcotest.test_case "bdd compiled eval" `Quick test_bdd_compiled_eval_matches_exact;
          Alcotest.test_case "of_query_results" `Quick test_of_query_results;
        ] );
      ( "state",
        [
          Alcotest.test_case "initialization" `Quick test_state_initialization;
          Alcotest.test_case "set/satisfaction" `Quick test_state_set_and_satisfaction;
          Alcotest.test_case "validation" `Quick test_state_validation;
          Alcotest.test_case "delta steps" `Quick test_delta_steps;
          Alcotest.test_case "solution" `Quick test_solution_and_raised;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "override" `Quick test_confidence_with_override;
          Alcotest.test_case "gain" `Quick test_gain;
          Alcotest.test_case "gain unsatisfied-only" `Quick test_gain_only_unsatisfied;
        ] );
    ]
