(* Tests for cost-function families. *)

module C = Cost.Cost_model

let families =
  [
    ("linear", C.linear ~rate:10.0);
    ("binomial", C.binomial ~scale:10.0);
    ("exponential", C.exponential ~scale:5.0 ~rate:2.0);
    ("logarithmic", C.logarithmic ~scale:5.0);
  ]

let test_validation () =
  List.iter
    (fun f ->
      Alcotest.(check bool) "rejected" true
        (try
           ignore (f ());
           false
         with Invalid_argument _ -> true))
    [
      (fun () -> C.linear ~rate:0.0);
      (fun () -> C.binomial ~scale:(-1.0));
      (fun () -> C.exponential ~scale:1.0 ~rate:0.0);
      (fun () -> C.logarithmic ~scale:0.0);
      (fun () -> C.make (C.Binomial { scale = 1.0; degree = 0 }));
    ]

let test_noop_is_free () =
  List.iter
    (fun (name, c) ->
      Alcotest.(check (float 0.0)) (name ^ " noop") 0.0
        (C.eval c ~from_:0.3 ~to_:0.3);
      Alcotest.(check (float 0.0)) (name ^ " backwards") 0.0
        (C.eval c ~from_:0.5 ~to_:0.3))
    families

let test_linear_values () =
  let c = C.linear ~rate:100.0 in
  (* the paper's tuple 03: +0.1 confidence costs 10 *)
  Alcotest.(check (float 1e-9)) "rate 100, +0.1 costs 10" 10.0
    (C.eval c ~from_:0.4 ~to_:0.5)

let test_binomial_marginal_grows () =
  let c = C.binomial ~scale:10.0 in
  let low = C.marginal c ~at:0.1 ~delta:0.1 in
  let high = C.marginal c ~at:0.8 ~delta:0.1 in
  Alcotest.(check bool) "marginal increasing" true (high > low);
  Alcotest.(check (float 1e-9)) "quadratic value" (10.0 *. ((0.2 ** 2.0) -. (0.1 ** 2.0))) low

let test_exponential_values () =
  let c = C.exponential ~scale:1.0 ~rate:1.0 in
  Alcotest.(check (float 1e-9)) "level" (Float.exp 0.5 -. 1.0) (C.level c 0.5)

let test_logarithmic_diverges () =
  let c = C.logarithmic ~scale:1.0 in
  Alcotest.(check (float 1e-9)) "level at 0" 0.0 (C.level c 0.0);
  Alcotest.(check bool) "infinite at 1" true (C.level c 1.0 = infinity);
  Alcotest.(check bool) "finite below 1" true (C.level c 0.999 < infinity)

let test_level_clamps () =
  let c = C.linear ~rate:10.0 in
  Alcotest.(check (float 1e-9)) "above 1 clamped" (C.level c 1.0) (C.level c 7.0);
  Alcotest.(check (float 1e-9)) "below 0 clamped" 0.0 (C.level c (-3.0))

let test_random_families () =
  let rng = Prng.Splitmix.of_int 5 in
  let seen_binomial = ref false
  and seen_exponential = ref false
  and seen_logarithmic = ref false in
  for _ = 1 to 100 do
    match C.shape (C.random rng) with
    | C.Binomial _ -> seen_binomial := true
    | C.Exponential _ -> seen_exponential := true
    | C.Logarithmic _ -> seen_logarithmic := true
    | C.Linear _ -> Alcotest.fail "random never draws linear"
  done;
  Alcotest.(check bool) "all three families drawn" true
    (!seen_binomial && !seen_exponential && !seen_logarithmic)

let test_to_string () =
  Alcotest.(check string) "linear" "linear(rate=10)" (C.to_string (C.linear ~rate:10.0));
  Alcotest.(check string) "binomial" "binomial(scale=2, degree=2)"
    (C.to_string (C.binomial ~scale:2.0))

let test_parse_specs () =
  List.iter
    (fun (spec, expect) ->
      match C.parse spec with
      | Ok c -> Alcotest.(check string) spec expect (C.to_string c)
      | Error msg -> Alcotest.failf "%s: %s" spec msg)
    [
      ("linear 10", "linear(rate=10)");
      ("binomial 5", "binomial(scale=5, degree=2)");
      ("exponential 2 3", "exponential(scale=2, rate=3)");
      ("logarithmic 7", "logarithmic(scale=7)");
      ("  linear   10  ", "linear(rate=10)");
    ];
  List.iter
    (fun spec ->
      match C.parse spec with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" spec)
    [ ""; "linear"; "linear x"; "linear -1"; "linear 0"; "cubic 3"; "exponential 2" ]

let test_spec_roundtrip () =
  let rng = Prng.Splitmix.of_int 77 in
  for _ = 1 to 50 do
    let c = C.random rng in
    match C.parse (C.spec c) with
    | Ok c' -> Alcotest.(check string) "roundtrip" (C.to_string c) (C.to_string c')
    | Error msg -> Alcotest.failf "roundtrip failed: %s" msg
  done

let arb_family =
  QCheck.make
    ~print:(fun i -> fst (List.nth families i))
    QCheck.Gen.(int_range 0 3)

let qcheck_monotone =
  QCheck.Test.make ~name:"eval non-decreasing in target" ~count:500
    (QCheck.triple arb_family
       (QCheck.float_range 0.0 0.99)
       (QCheck.float_range 0.0 0.99))
    (fun (i, a, b) ->
      let _, c = List.nth families i in
      let lo = Float.min a b and hi = Float.max a b in
      C.eval c ~from_:0.0 ~to_:hi >= C.eval c ~from_:0.0 ~to_:lo -. 1e-12)

let qcheck_path_independence =
  QCheck.Test.make ~name:"cost is path independent" ~count:500
    (QCheck.triple arb_family
       (QCheck.float_range 0.0 0.9)
       (QCheck.float_range 0.0 0.9))
    (fun (i, a, b) ->
      let _, c = List.nth families i in
      let lo = Float.min a b and hi = Float.max a b in
      let mid = (lo +. hi) /. 2.0 in
      let direct = C.eval c ~from_:lo ~to_:hi in
      let stepped = C.eval c ~from_:lo ~to_:mid +. C.eval c ~from_:mid ~to_:hi in
      Float.abs (direct -. stepped) < 1e-9)

let qcheck_nonnegative =
  QCheck.Test.make ~name:"cost is non-negative" ~count:500
    (QCheck.triple arb_family (QCheck.float_range 0.0 0.99) (QCheck.float_range 0.0 0.99))
    (fun (i, a, b) ->
      let _, c = List.nth families i in
      C.eval c ~from_:a ~to_:b >= 0.0)

let () =
  Alcotest.run "cost"
    [
      ( "families",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "noop free" `Quick test_noop_is_free;
          Alcotest.test_case "linear" `Quick test_linear_values;
          Alcotest.test_case "binomial marginal" `Quick test_binomial_marginal_grows;
          Alcotest.test_case "exponential" `Quick test_exponential_values;
          Alcotest.test_case "log diverges" `Quick test_logarithmic_diverges;
          Alcotest.test_case "clamping" `Quick test_level_clamps;
          Alcotest.test_case "random families" `Quick test_random_families;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "parse specs" `Quick test_parse_specs;
          Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_monotone;
          QCheck_alcotest.to_alcotest qcheck_path_independence;
          QCheck_alcotest.to_alcotest qcheck_nonnegative;
        ] );
    ]
