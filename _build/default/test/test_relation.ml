(* Tests for base relations: tid stability, insert/delete/update. *)

module R = Relational.Relation
module V = Relational.Value
module S = Relational.Schema
module Tid = Lineage.Tid

let schema = S.of_list [ ("name", V.TString); ("n", V.TInt) ]

let row name n = Relational.Tuple.of_list [ V.String name; V.Int n ]

let test_insert_assigns_sequential_tids () =
  let r = R.create "R" schema in
  let r, t0 = R.insert r (row "a" 1) in
  let r, t1 = R.insert r (row "b" 2) in
  ignore r;
  Alcotest.(check string) "t0" "R#0" (Tid.to_string t0);
  Alcotest.(check string) "t1" "R#1" (Tid.to_string t1)

let test_insert_type_check () =
  let r = R.create "R" schema in
  Alcotest.(check bool) "bad tuple rejected" true
    (try
       ignore (R.insert r (Relational.Tuple.of_list [ V.Int 1; V.Int 2 ]));
       false
     with Invalid_argument _ -> true)

let test_delete_keeps_other_tids () =
  let r = R.create "R" schema in
  let r, t0 = R.insert r (row "a" 1) in
  let r, t1 = R.insert r (row "b" 2) in
  let r = R.delete r t0 in
  Alcotest.(check int) "one left" 1 (R.cardinality r);
  Alcotest.(check bool) "t1 still resolvable" true (R.find r t1 <> None);
  (* a fresh insert must not reuse the deleted id *)
  let _, t2 = R.insert r (row "c" 3) in
  Alcotest.(check string) "fresh id" "R#2" (Tid.to_string t2)

let test_delete_missing_is_noop () =
  let r = R.create "R" schema in
  let r, _ = R.insert r (row "a" 1) in
  let r' = R.delete r (Tid.make "R" 99) in
  Alcotest.(check int) "unchanged" (R.cardinality r) (R.cardinality r')

let test_update () =
  let r = R.create "R" schema in
  let r, t0 = R.insert r (row "a" 1) in
  let r = R.update r t0 (row "a" 42) in
  (match R.find r t0 with
  | Some t ->
    Alcotest.(check bool) "updated" true
      (V.equal (Relational.Tuple.get t 1) (V.Int 42))
  | None -> Alcotest.fail "tuple vanished");
  Alcotest.(check bool) "update of missing tid rejected" true
    (try
       ignore (R.update r (Tid.make "R" 7) (row "x" 0));
       false
     with Invalid_argument _ -> true)

let test_tuples_in_insertion_order () =
  let r = R.create "R" schema in
  let r, _ = R.insert r (row "a" 1) in
  let r, _ = R.insert r (row "b" 2) in
  let r, _ = R.insert r (row "c" 3) in
  let names =
    List.map
      (fun (_, t) -> V.to_string (Relational.Tuple.get t 0))
      (R.tuples r)
  in
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] names

let test_functional_updates () =
  let r0 = R.create "R" schema in
  let r1, _ = R.insert r0 (row "a" 1) in
  Alcotest.(check int) "original untouched" 0 (R.cardinality r0);
  Alcotest.(check int) "new has one" 1 (R.cardinality r1)

let test_fold () =
  let r = R.create "R" schema in
  let r, _ = R.insert r (row "a" 1) in
  let r, _ = R.insert r (row "b" 2) in
  let total =
    R.fold
      (fun acc _ t ->
        match Relational.Tuple.get t 1 with V.Int n -> acc + n | _ -> acc)
      0 r
  in
  Alcotest.(check int) "sum" 3 total

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_to_string_contains_rows () =
  let r = R.create "R" schema in
  let r, _ = R.insert r (row "hello" 7) in
  let s = R.to_string r in
  Alcotest.(check bool) "mentions value" true (contains ~needle:"hello" s);
  Alcotest.(check bool) "mentions tid" true (contains ~needle:"R#0" s)

let () =
  Alcotest.run "relation"
    [
      ( "relation",
        [
          Alcotest.test_case "sequential tids" `Quick test_insert_assigns_sequential_tids;
          Alcotest.test_case "type check" `Quick test_insert_type_check;
          Alcotest.test_case "delete stability" `Quick test_delete_keeps_other_tids;
          Alcotest.test_case "delete missing" `Quick test_delete_missing_is_noop;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "insertion order" `Quick test_tuples_in_insertion_order;
          Alcotest.test_case "functional" `Quick test_functional_updates;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "to_string" `Quick test_to_string_contains_rows;
        ] );
    ]
