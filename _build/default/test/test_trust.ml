(* Tests for the provenance-based confidence assignment substrate. *)

module Prov = Trust.Provenance
module A = Trust.Assignment

let provider trust = Prov.make_provider "p" ~trust

let record ?(path = []) ?(age_days = 0.0) ?(corroborations = 0) trust =
  Prov.make_record ~source:(provider trust) ~path ~age_days ~corroborations ()

let test_validation () =
  Alcotest.(check bool) "trust out of range" true
    (try
       ignore (Prov.make_provider "x" ~trust:1.2);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "fidelity out of range" true
    (try
       ignore (Prov.make_step Prov.Survey ~fidelity:(-0.1));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative age" true
    (try
       ignore (Prov.make_record ~source:(provider 0.5) ~age_days:(-1.0) ());
       false
     with Invalid_argument _ -> true)

let test_score_base_case () =
  (* no path, no age, no corroboration: score = provider trust *)
  Alcotest.(check (float 1e-9)) "pure trust" 0.8 (A.score (record 0.8))

let test_score_monotone_in_trust () =
  Alcotest.(check bool) "higher trust, higher confidence" true
    (A.score (record 0.9) > A.score (record 0.5))

let test_path_attenuates () =
  let step = Prov.make_step Prov.Web_scrape ~fidelity:0.7 in
  Alcotest.(check (float 1e-9)) "one step multiplies" 0.56
    (A.score (record ~path:[ step ] 0.8));
  let two = [ step; Prov.make_step Prov.Survey ~fidelity:0.5 ] in
  Alcotest.(check (float 1e-9)) "steps compose" 0.28
    (A.score (record ~path:two 0.8))

let test_staleness_decays () =
  let params = { A.default_params with half_life_days = 100.0 } in
  let fresh = A.score ~params (record 0.8) in
  let old = A.score ~params (record ~age_days:100.0 0.8) in
  Alcotest.(check (float 1e-9)) "half-life halves" (fresh /. 2.0) old

let test_corroboration_boosts () =
  let zero = A.score (record 0.5) in
  let one = A.score (record ~corroborations:1 0.5) in
  let two = A.score (record ~corroborations:2 0.5) in
  Alcotest.(check bool) "boosting" true (zero < one && one < two);
  Alcotest.(check bool) "never exceeds 1" true (two <= 1.0);
  (* closed form: 1 - (1-0.5)*(0.7^2) *)
  Alcotest.(check (float 1e-9)) "closed form" (1.0 -. (0.5 *. 0.49)) two

let test_default_fidelity_ordering () =
  Alcotest.(check bool) "direct measurement most faithful" true
    (Prov.default_fidelity Prov.Direct_measurement
    > Prov.default_fidelity Prov.Survey);
  Alcotest.(check bool) "web scrape least" true
    (Prov.default_fidelity Prov.Web_scrape < Prov.default_fidelity Prov.Manual_entry)

let test_assign_writes_database () =
  let r =
    Relational.Relation.create "R"
      (Relational.Schema.of_list [ ("x", Relational.Value.TInt) ])
  in
  let r, tid = Relational.Relation.insert r (Relational.Tuple.of_list [ Relational.Value.Int 1 ]) in
  let db = Relational.Database.add_relation Relational.Database.empty r in
  let db = A.assign db [ (tid, record 0.8) ] in
  Alcotest.(check (float 1e-9)) "assigned" 0.8 (Relational.Database.confidence db tid)

let test_refine_rewards_agreement () =
  let priors = [ ("honest1", 0.5); ("honest2", 0.5); ("liar", 0.5) ] in
  let claim p k v = { A.claim_provider = p; claim_key = k; claim_value = v } in
  let claims =
    [
      claim "honest1" "x" "1";
      claim "honest2" "x" "1";
      claim "liar" "x" "999";
      claim "honest1" "y" "2";
      claim "honest2" "y" "2";
      claim "liar" "y" "888";
    ]
  in
  let refined = A.refine priors claims in
  let get p = List.assoc p refined in
  Alcotest.(check bool) "agreeing providers gain trust" true
    (get "honest1" > get "liar");
  Alcotest.(check bool) "trust stays in [0,1]" true
    (List.for_all (fun (_, t) -> t >= 0.0 && t <= 1.0) refined)

let test_refine_keeps_prior_without_claims () =
  let refined = A.refine [ ("silent", 0.42) ] [] in
  Alcotest.(check (float 1e-9)) "unchanged" 0.42 (List.assoc "silent" refined)

let test_refine_zero_iterations () =
  let refined =
    A.refine ~iterations:0
      [ ("a", 0.3) ]
      [ { A.claim_provider = "a"; claim_key = "k"; claim_value = "v" } ]
  in
  Alcotest.(check (float 1e-9)) "no movement" 0.3 (List.assoc "a" refined)

let qcheck_score_in_unit_interval =
  QCheck.Test.make ~name:"score lies in [0,1]" ~count:300
    QCheck.(
      quad (float_range 0.0 1.0) (float_range 0.0 1.0) (float_range 0.0 3650.0)
        (int_range 0 5))
    (fun (trust, fidelity, age_days, corroborations) ->
      let s =
        A.score
          (record
             ~path:[ Prov.make_step Prov.Survey ~fidelity ]
             ~age_days ~corroborations trust)
      in
      s >= 0.0 && s <= 1.0)

let () =
  Alcotest.run "trust"
    [
      ( "assignment",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "base case" `Quick test_score_base_case;
          Alcotest.test_case "monotone in trust" `Quick test_score_monotone_in_trust;
          Alcotest.test_case "path attenuation" `Quick test_path_attenuates;
          Alcotest.test_case "staleness" `Quick test_staleness_decays;
          Alcotest.test_case "corroboration" `Quick test_corroboration_boosts;
          Alcotest.test_case "fidelity defaults" `Quick test_default_fidelity_ordering;
          Alcotest.test_case "assign to db" `Quick test_assign_writes_database;
        ] );
      ( "refine",
        [
          Alcotest.test_case "rewards agreement" `Quick test_refine_rewards_agreement;
          Alcotest.test_case "no claims" `Quick test_refine_keeps_prior_without_claims;
          Alcotest.test_case "zero iterations" `Quick test_refine_zero_iterations;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_score_in_unit_interval ]);
    ]
