(* Tests for the divide-and-conquer solver. *)

module Problem = Optimize.Problem
module State = Optimize.State
module D = Optimize.Divide_conquer
module Greedy = Optimize.Greedy
module H = Optimize.Heuristic
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

let verify problem solution =
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> Alcotest.fail "unknown base in solution")
    solution;
  st

let test_paper_example () =
  let bases =
    [
      { Problem.tid = t 2; p0 = 0.3; cap = 1.0; cost = C.linear ~rate:1000.0 };
      { Problem.tid = t 3; p0 = 0.4; cap = 1.0; cost = C.linear ~rate:100.0 };
      { Problem.tid = t 13; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:2000.0 };
    ]
  in
  let formula = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p = Problem.make_exn ~beta:0.06 ~required:1 ~bases ~formulas:[ formula ] () in
  let out = D.solve p in
  Alcotest.(check bool) "feasible" true out.D.feasible;
  (* single result: one group, small enough for the exact heuristic *)
  Alcotest.(check int) "one group" 1 out.D.num_groups;
  Alcotest.(check int) "heuristic refinement ran" 1 out.D.heuristic_groups;
  Alcotest.(check (float 1e-6)) "optimal cost 10" 10.0 out.D.cost

let test_feasibility_and_validity_on_random_instances () =
  for seed = 0 to 14 do
    let p =
      Workload.Synth.small_instance ~num_bases:25 ~num_results:14 ~required:7
        ~bases_per_result:4 ~seed ()
    in
    let out = D.solve p in
    let g = Greedy.solve p in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d feasibility agrees" seed)
      g.Greedy.feasible out.D.feasible;
    if out.D.feasible then begin
      let st = verify p out.D.solution in
      Alcotest.(check bool) "requirement met" true
        (State.satisfied_count st >= Problem.required p);
      Alcotest.(check bool) "reported cost matches replay" true
        (Float.abs (State.cost st -. out.D.cost) < 1e-6)
    end
  done

let test_cost_reasonable_vs_greedy () =
  (* D&C should land in the same ballpark as global greedy *)
  let total_d = ref 0.0 and total_g = ref 0.0 in
  for seed = 20 to 29 do
    let p =
      Workload.Synth.small_instance ~num_bases:30 ~num_results:16 ~required:8
        ~bases_per_result:4 ~seed ()
    in
    let d = D.solve p and g = Greedy.solve p in
    if d.D.feasible && g.Greedy.feasible then begin
      total_d := !total_d +. d.D.cost;
      total_g := !total_g +. g.Greedy.cost
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "aggregate D&C %.1f within 2x of greedy %.1f" !total_d !total_g)
    true
    (!total_d <= 2.0 *. !total_g +. 1e-6)

let test_quota_ablation () =
  (* the paper's min(x,y) quota must still produce valid solutions *)
  for seed = 30 to 35 do
    let p =
      Workload.Synth.small_instance ~num_bases:25 ~num_results:14 ~required:7
        ~bases_per_result:4 ~seed ()
    in
    let out =
      D.solve ~config:{ D.default_config with quota = D.Min_x_y } p
    in
    if out.D.feasible then begin
      let st = verify p out.D.solution in
      Alcotest.(check bool) "requirement met" true
        (State.satisfied_count st >= Problem.required p)
    end
  done

let test_tau_zero_disables_heuristic () =
  let p =
    Workload.Synth.small_instance ~num_bases:10 ~num_results:6 ~required:3
      ~bases_per_result:3 ~seed:40 ()
  in
  let out = D.solve ~config:{ D.default_config with tau = 0 } p in
  Alcotest.(check int) "no heuristic groups" 0 out.D.heuristic_groups

let test_infeasible_instance () =
  let p =
    Problem.make_exn ~beta:0.9 ~required:1
      ~bases:[ { Problem.tid = t 0; p0 = 0.1; cap = 0.3; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ v 0 ] ()
  in
  let out = D.solve p in
  Alcotest.(check bool) "infeasible" false out.D.feasible

let test_already_satisfied () =
  let p =
    Problem.make_exn ~beta:0.05 ~required:1
      ~bases:[ { Problem.tid = t 0; p0 = 0.5; cap = 1.0; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ v 0 ] ()
  in
  let out = D.solve p in
  Alcotest.(check bool) "feasible" true out.D.feasible;
  Alcotest.(check (float 1e-9)) "free" 0.0 out.D.cost

let test_matches_optimum_on_tiny_instances () =
  (* with a single small group, D&C's heuristic refinement should find the
     grid optimum *)
  for seed = 50 to 55 do
    let p =
      Workload.Synth.small_instance ~num_bases:5 ~num_results:3 ~required:2
        ~bases_per_result:3 ~seed ()
    in
    let d = D.solve p in
    let h = H.solve p in
    match h.H.solution with
    | Some _ when d.D.feasible && d.D.num_groups = 1 ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.4f close to optimal %.4f" seed d.D.cost h.H.cost)
        true
        (d.D.cost <= h.H.cost +. 1e-6)
    | _ -> ()
  done

let () =
  Alcotest.run "divide-and-conquer"
    [
      ( "dnc",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "random validity" `Quick
            test_feasibility_and_validity_on_random_instances;
          Alcotest.test_case "cost vs greedy" `Quick test_cost_reasonable_vs_greedy;
          Alcotest.test_case "quota ablation" `Quick test_quota_ablation;
          Alcotest.test_case "tau disables heuristic" `Quick test_tau_zero_disables_heuristic;
          Alcotest.test_case "infeasible" `Quick test_infeasible_instance;
          Alcotest.test_case "already satisfied" `Quick test_already_satisfied;
          Alcotest.test_case "tiny optimality" `Quick test_matches_optimum_on_tiny_instances;
        ] );
    ]
