(* Tests for the multi-query extension. *)

module Problem = Optimize.Problem
module M = Optimize.Multi_query
module Greedy = Optimize.Greedy
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t name i = Tid.make name i

let base ?(p0 = 0.3) ?(rate = 100.0) tid =
  { Problem.tid; p0; cap = 1.0; cost = C.linear ~rate }

let shared = t "shared" 0
let a_priv = t "qa" 0
let b_priv = t "qb" 0

let qa ?(beta = 0.6) () =
  Problem.make_exn ~beta ~required:1
    ~bases:[ base shared ~rate:60.0; base a_priv ~rate:50.0 ]
    ~formulas:[ F.disj [ F.var a_priv; F.var shared ] ]
    ()

let qb ?(beta = 0.6) () =
  Problem.make_exn ~beta ~required:1
    ~bases:[ base shared ~rate:60.0; base b_priv ~rate:50.0 ]
    ~formulas:[ F.disj [ F.var b_priv; F.var shared ] ]
    ()

let test_combine_counts () =
  match M.combine [ qa (); qb () ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    Alcotest.(check int) "2 queries" 2 (M.num_queries joint);
    Alcotest.(check int) "3 distinct bases" 3 (M.num_bases joint)

let test_combine_rejects_conflicts () =
  let qa = qa () in
  let conflicting =
    Problem.make_exn ~beta:0.6 ~required:1
      ~bases:[ base shared ~p0:0.9 (* different p0 for the shared tuple *) ]
      ~formulas:[ F.var shared ]
      ()
  in
  (match M.combine [ qa; conflicting ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "conflicting base must be rejected");
  match M.combine [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty list must be rejected"

let test_joint_solves_both () =
  match M.combine [ qa (); qb () ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let out = M.solve joint in
    Alcotest.(check bool) "feasible" true out.M.feasible;
    Alcotest.(check (list int)) "both queries satisfied" [ 1; 1 ]
      out.M.satisfied_per_query

let test_joint_exploits_sharing () =
  match M.combine [ qa (); qb () ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let joint_out = M.solve joint in
    let ga = Greedy.solve (qa ()) and gb = Greedy.solve (qb ()) in
    Alcotest.(check bool) "independent feasible" true
      (ga.Greedy.feasible && gb.Greedy.feasible);
    let independent = ga.Greedy.cost +. gb.Greedy.cost in
    Alcotest.(check bool)
      (Printf.sprintf "joint %.1f < independent %.1f" joint_out.M.cost independent)
      true
      (joint_out.M.cost < independent -. 1e-9);
    (* and it should do so by raising the shared tuple *)
    Alcotest.(check bool) "raises the shared tuple" true
      (List.exists (fun (tid, _) -> Tid.equal tid shared) joint_out.M.solution)

let test_single_query_degenerates_to_greedy () =
  let q = qa () in
  match M.combine [ q ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let out = M.solve joint in
    let g = Greedy.solve q in
    Alcotest.(check bool) "same feasibility" g.Greedy.feasible out.M.feasible;
    Alcotest.(check bool)
      (Printf.sprintf "similar cost %.2f vs %.2f" out.M.cost g.Greedy.cost)
      true
      (Float.abs (out.M.cost -. g.Greedy.cost) < 1e-6)

let test_two_phase_rollback () =
  match M.combine [ qa (); qb () ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let one = M.solve ~two_phase:false joint in
    let two = M.solve joint in
    Alcotest.(check bool) "rollback only helps" true
      (two.M.cost <= one.M.cost +. 1e-9)

let test_infeasible_query_detected () =
  let dead =
    Problem.make_exn ~beta:0.9 ~required:1
      ~bases:
        [ { Problem.tid = t "dead" 0; p0 = 0.1; cap = 0.2; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ F.var (t "dead" 0) ]
      ()
  in
  match M.combine [ qa (); dead ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let out = M.solve joint in
    Alcotest.(check bool) "joint infeasible" false out.M.feasible

let test_already_satisfied_queries () =
  let easy =
    Problem.make_exn ~beta:0.1 ~required:1
      ~bases:[ base shared ]
      ~formulas:[ F.var shared ]
      ()
  in
  match M.combine [ easy ] with
  | Error msg -> Alcotest.fail msg
  | Ok joint ->
    let out = M.solve joint in
    Alcotest.(check bool) "feasible" true out.M.feasible;
    Alcotest.(check (float 0.0)) "no cost" 0.0 out.M.cost;
    Alcotest.(check int) "no iterations" 0 out.M.iterations

let () =
  Alcotest.run "multi-query"
    [
      ( "multi-query",
        [
          Alcotest.test_case "combine" `Quick test_combine_counts;
          Alcotest.test_case "conflicts" `Quick test_combine_rejects_conflicts;
          Alcotest.test_case "solves both" `Quick test_joint_solves_both;
          Alcotest.test_case "exploits sharing" `Quick test_joint_exploits_sharing;
          Alcotest.test_case "single query" `Quick test_single_query_degenerates_to_greedy;
          Alcotest.test_case "two-phase" `Quick test_two_phase_rollback;
          Alcotest.test_case "infeasible" `Quick test_infeasible_query_detected;
          Alcotest.test_case "already satisfied" `Quick test_already_satisfied_queries;
        ] );
    ]
