(* Tests for the synthetic workload generator and random query DAGs. *)

module Synth = Workload.Synth
module Dag = Workload.Dag_query
module Problem = Optimize.Problem
module F = Lineage.Formula
module Tid = Lineage.Tid
module Sm = Prng.Splitmix

let tids n = List.init n (Tid.make "x")

let test_tree_leaves_exact () =
  let rng = Sm.of_int 1 in
  for n = 1 to 20 do
    let leaves = tids n in
    let f = Dag.random_monotone_tree rng leaves in
    Alcotest.(check int)
      (Printf.sprintf "%d leaves" n)
      n (F.var_count f);
    Alcotest.(check bool) "read-once" true (F.is_read_once f);
    Alcotest.(check bool) "monotone" true (F.is_monotone f)
  done

let test_tree_rejects_empty () =
  let rng = Sm.of_int 2 in
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Dag.random_monotone_tree rng []);
       false
     with Invalid_argument _ -> true)

let test_dag_sharing () =
  let rng = Sm.of_int 3 in
  (* with sharing = 0 the DAG degenerates to a read-once tree *)
  let f0 = Dag.random_dag rng ~sharing:0.0 (tids 8) in
  Alcotest.(check bool) "no sharing is read-once" true (F.is_read_once f0);
  (* with sharing = 1 at least one subformula should be reused *)
  let shared = ref false in
  for seed = 0 to 9 do
    let rng = Sm.of_int seed in
    let f = Dag.random_dag rng ~sharing:1.0 (tids 8) in
    if not (F.is_read_once f) then shared := true
  done;
  Alcotest.(check bool) "sharing produces reuse" true !shared

let test_conjunctive_and_dnf () =
  let f = Dag.conjunctive (tids 3) in
  Alcotest.(check string) "conj" "x#0 & x#1 & x#2" (F.to_string f);
  let g = Dag.dnf_of_groups [ tids 2; [ Tid.make "x" 5 ] ] in
  Alcotest.(check string) "dnf" "x#0 & x#1 | x#5" (F.to_string g)

let test_instance_determinism () =
  let params = { Synth.default_params with data_size = 100 } in
  let a = Synth.instance ~params ~seed:9 () in
  let b = Synth.instance ~params ~seed:9 () in
  Alcotest.(check int) "same bases" (Problem.num_bases a) (Problem.num_bases b);
  Alcotest.(check int) "same results" (Problem.num_results a) (Problem.num_results b);
  Alcotest.(check int) "same required" (Problem.required a) (Problem.required b);
  (* formulas identical *)
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) "formula equal" true
        (F.equal r.Problem.formula (Problem.result b i).Problem.formula))
    (Problem.results a)

let test_instance_shape () =
  let params =
    { Synth.default_params with data_size = 500; bases_per_result = 5 }
  in
  let p = Synth.instance ~params ~seed:3 () in
  Alcotest.(check int) "bases = data_size" 500 (Problem.num_bases p);
  (* n = coverage * k / bpr = 2*500/5 = 200 *)
  Alcotest.(check int) "results from coverage" 200 (Problem.num_results p);
  Alcotest.(check bool) "required within range" true
    (Problem.required p >= 0 && Problem.required p <= Problem.num_results p);
  (* confidence values around 0.1 *)
  Array.iter
    (fun b ->
      Alcotest.(check bool) "p0 in [0.05, 0.15)" true
        (b.Problem.p0 >= 0.05 && b.Problem.p0 < 0.15))
    (Problem.bases p);
  (* every result mentions at most bpr bases *)
  Array.iter
    (fun r ->
      Alcotest.(check bool) "bpr respected" true (F.var_count r.Problem.formula <= 5))
    (Problem.results p)

let test_required_matches_theta () =
  let params = { Synth.default_params with data_size = 200; theta = 1.0 } in
  let p = Synth.instance ~params ~seed:11 () in
  (* theta = 1: everything below beta must be required *)
  let st = Optimize.State.create p in
  let unsatisfied = Problem.num_results p - Optimize.State.satisfied_count st in
  Alcotest.(check int) "required = unsatisfied" unsatisfied (Problem.required p)

let test_small_instance () =
  let p = Synth.small_instance ~seed:1 () in
  Alcotest.(check int) "10 bases" 10 (Problem.num_bases p);
  Alcotest.(check int) "8 results" 8 (Problem.num_results p);
  Alcotest.(check int) "requires 3" 3 (Problem.required p);
  Alcotest.(check (float 1e-9)) "beta 0.6" 0.6 (Problem.beta p)

let test_table4 () =
  let rows = Synth.table4 Synth.default_params in
  Alcotest.(check int) "five parameters" 5 (List.length rows);
  Alcotest.(check (option string)) "theta row" (Some "50%")
    (List.assoc_opt "Percentage of required results (theta)" rows)

let qcheck_instances_valid =
  QCheck.Test.make ~name:"generated instances are internally consistent"
    ~count:30
    QCheck.(int_range 0 5_000)
    (fun seed ->
      let params =
        { Synth.default_params with data_size = 60; bases_per_result = 4 }
      in
      let p = Synth.instance ~params ~seed () in
      (* every formula var resolves to a base *)
      Array.for_all
        (fun r ->
          Tid.Set.for_all
            (fun tid -> Problem.bid_of_tid p tid <> None)
            (F.vars r.Problem.formula))
        (Problem.results p))

let () =
  Alcotest.run "workload"
    [
      ( "dag",
        [
          Alcotest.test_case "tree leaves" `Quick test_tree_leaves_exact;
          Alcotest.test_case "empty rejected" `Quick test_tree_rejects_empty;
          Alcotest.test_case "sharing" `Quick test_dag_sharing;
          Alcotest.test_case "conjunctive/dnf" `Quick test_conjunctive_and_dnf;
        ] );
      ( "synth",
        [
          Alcotest.test_case "determinism" `Quick test_instance_determinism;
          Alcotest.test_case "shape" `Quick test_instance_shape;
          Alcotest.test_case "required/theta" `Quick test_required_matches_theta;
          Alcotest.test_case "small instance" `Quick test_small_instance;
          Alcotest.test_case "table 4" `Quick test_table4;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_instances_valid ]);
    ]
