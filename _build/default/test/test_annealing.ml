(* Tests for the simulated-annealing baseline. *)

module Problem = Optimize.Problem
module State = Optimize.State
module A = Optimize.Annealing
module H = Optimize.Heuristic
module Greedy = Optimize.Greedy
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

let verify problem (out : A.outcome) =
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> Alcotest.fail "unknown base in solution")
    out.A.solution;
  Alcotest.(check bool) "requirement met" true
    (State.satisfied_count st >= Problem.required problem);
  Alcotest.(check bool) "cost matches replay" true
    (Float.abs (State.cost st -. out.A.cost) < 1e-6)

let test_deterministic () =
  let p = Workload.Synth.small_instance ~seed:3 () in
  let a = A.solve p and b = A.solve p in
  Alcotest.(check bool) "same feasibility" a.A.feasible b.A.feasible;
  Alcotest.(check (float 1e-9)) "same cost" a.A.cost b.A.cost

let test_feasible_on_small_instances () =
  for seed = 0 to 9 do
    let p = Workload.Synth.small_instance ~seed () in
    let out = A.solve p in
    Alcotest.(check bool) (Printf.sprintf "seed %d feasible" seed) true
      out.A.feasible;
    verify p out
  done

let test_near_optimal_on_tiny_instances () =
  (* the walk should land within 3x of the exact optimum on easy cases *)
  for seed = 0 to 4 do
    let p =
      Workload.Synth.small_instance ~num_bases:4 ~num_results:3 ~required:2
        ~bases_per_result:3 ~seed ()
    in
    let exact = H.solve p in
    let sa = A.solve p in
    match exact.H.solution with
    | Some _ ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.2f within 3x of %.2f" seed sa.A.cost
           exact.H.cost)
        true
        (sa.A.feasible && sa.A.cost <= (3.0 *. exact.H.cost) +. 1e-6)
    | None -> ()
  done

let test_infeasible_detected () =
  let p =
    Problem.make_exn ~beta:0.9 ~required:1
      ~bases:
        [ { Problem.tid = t 0; p0 = 0.1; cap = 0.3; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ v 0 ] ()
  in
  let out = A.solve p in
  Alcotest.(check bool) "infeasible" false out.A.feasible

let test_already_satisfied_is_free () =
  let p =
    Problem.make_exn ~beta:0.05 ~required:1
      ~bases:
        [ { Problem.tid = t 0; p0 = 0.5; cap = 1.0; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ v 0 ] ()
  in
  let out = A.solve p in
  Alcotest.(check bool) "feasible" true out.A.feasible;
  Alcotest.(check (float 1e-9)) "free" 0.0 out.A.cost

let test_solver_facade () =
  let p = Workload.Synth.small_instance ~seed:5 () in
  let out = Optimize.Solver.solve ~algorithm:Optimize.Solver.annealing p in
  Alcotest.(check bool) "solution through facade" true
    (out.Optimize.Solver.solution <> None);
  Alcotest.(check string) "name" "simulated-annealing"
    (Optimize.Solver.algorithm_name Optimize.Solver.annealing)

let test_never_beats_exact () =
  for seed = 10 to 14 do
    let p =
      Workload.Synth.small_instance ~num_bases:4 ~num_results:3 ~required:2
        ~bases_per_result:3 ~seed ()
    in
    let exact = H.solve p in
    let sa = A.solve p in
    if sa.A.feasible && exact.H.solution <> None then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.4f >= %.4f" seed sa.A.cost exact.H.cost)
        true
        (sa.A.cost >= exact.H.cost -. 1e-6)
  done

let () =
  Alcotest.run "annealing"
    [
      ( "annealing",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "feasible" `Quick test_feasible_on_small_instances;
          Alcotest.test_case "near optimal on tiny" `Quick
            test_near_optimal_on_tiny_instances;
          Alcotest.test_case "infeasible" `Quick test_infeasible_detected;
          Alcotest.test_case "already satisfied" `Quick test_already_satisfied_is_free;
          Alcotest.test_case "solver facade" `Quick test_solver_facade;
          Alcotest.test_case "never beats exact" `Quick test_never_beats_exact;
        ] );
    ]
