(* Tests for tuples. *)

module T = Relational.Tuple
module V = Relational.Value
module S = Relational.Schema

let test_roundtrip () =
  let t = T.of_list [ V.Int 1; V.String "x" ] in
  Alcotest.(check int) "arity" 2 (T.arity t);
  Alcotest.(check bool) "get 0" true (V.equal (T.get t 0) (V.Int 1));
  Alcotest.(check bool) "get 1" true (V.equal (T.get t 1) (V.String "x"))

let test_values_copy () =
  let t = T.of_list [ V.Int 1 ] in
  let vs = T.values t in
  vs.(0) <- V.Int 99;
  Alcotest.(check bool) "mutating the copy leaves the tuple intact" true
    (V.equal (T.get t 0) (V.Int 1))

let test_append () =
  let a = T.of_list [ V.Int 1 ] and b = T.of_list [ V.Int 2; V.Int 3 ] in
  let c = T.append a b in
  Alcotest.(check int) "arity" 3 (T.arity c);
  Alcotest.(check bool) "order" true (V.equal (T.get c 2) (V.Int 3))

let test_project () =
  let t = T.of_list [ V.Int 1; V.Int 2; V.Int 3 ] in
  let p = T.project t [| 2; 0 |] in
  Alcotest.(check bool) "reorder" true
    (T.equal p (T.of_list [ V.Int 3; V.Int 1 ]))

let test_conforms () =
  let s = S.of_list [ ("a", V.TInt); ("b", V.TFloat) ] in
  Alcotest.(check bool) "exact" true (T.conforms (T.of_list [ V.Int 1; V.Float 2.0 ]) s);
  Alcotest.(check bool) "int in float col" true
    (T.conforms (T.of_list [ V.Int 1; V.Int 2 ]) s);
  Alcotest.(check bool) "null anywhere" true
    (T.conforms (T.of_list [ V.Null; V.Null ]) s);
  Alcotest.(check bool) "wrong arity" false (T.conforms (T.of_list [ V.Int 1 ]) s);
  Alcotest.(check bool) "wrong type" false
    (T.conforms (T.of_list [ V.String "x"; V.Float 1.0 ]) s)

let test_compare_and_hash () =
  let a = T.of_list [ V.Int 1; V.Float 2.0 ] in
  let b = T.of_list [ V.Float 1.0; V.Int 2 ] in
  Alcotest.(check bool) "numeric cross-type equality" true (T.equal a b);
  Alcotest.(check int) "hash agrees" (T.hash a) (T.hash b);
  let c = T.of_list [ V.Int 1 ] in
  Alcotest.(check bool) "shorter sorts first" true (T.compare c a < 0)

let test_to_string () =
  Alcotest.(check string) "render" "(1, x)"
    (T.to_string (T.of_list [ V.Int 1; V.String "x" ]))

let () =
  Alcotest.run "tuple"
    [
      ( "tuple",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "values copies" `Quick test_values_copy;
          Alcotest.test_case "append" `Quick test_append;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "conforms" `Quick test_conforms;
          Alcotest.test_case "compare/hash" `Quick test_compare_and_hash;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
    ]
