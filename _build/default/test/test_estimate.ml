(* Tests for the heuristic cardinality estimator. *)

module A = Relational.Algebra
module Est = Relational.Estimate
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation

let mk_db () =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let ins db rel vs = fst (Db.insert db rel vs ~conf:0.5) in
  (* R: 10 rows, k has 2 distinct values *)
  let db = ref db in
  for i = 1 to 10 do
    db := ins !db "R" [ V.String (if i mod 2 = 0 then "a" else "b"); V.Int i ]
  done;
  for _ = 1 to 4 do
    db := ins !db "S" [ V.String "a" ]
  done;
  !db

let est db plan =
  match Est.cardinality db plan with
  | Ok c -> c
  | Error msg -> Alcotest.failf "estimate failed: %s" msg

let test_scan () =
  let db = mk_db () in
  Alcotest.(check (float 1e-9)) "R" 10.0 (est db (A.scan "R"));
  Alcotest.(check (float 1e-9)) "S" 4.0 (est db (A.scan "S"))

let test_equality_uses_ndv () =
  let db = mk_db () in
  (* k has 2 distinct values: equality keeps 1/2 of rows *)
  let plan = A.Select (X.(col "k" =% str "a"), A.scan "R") in
  Alcotest.(check (float 1e-9)) "ndv-based" 5.0 (est db plan);
  (* n has 10 distinct values *)
  let plan = A.Select (X.(col "n" =% int 3), A.scan "R") in
  Alcotest.(check (float 1e-9)) "1/10" 1.0 (est db plan)

let test_range_and_conjunction () =
  let db = mk_db () in
  let plan = A.Select (X.(col "n" >% int 5), A.scan "R") in
  Alcotest.(check (float 1e-9)) "range 0.3" 3.0 (est db plan);
  let plan =
    A.Select (X.(And (col "n" >% int 5, col "k" =% str "a")), A.scan "R")
  in
  Alcotest.(check (float 1e-9)) "conjunction multiplies" 1.5 (est db plan)

let test_cross_and_equijoin () =
  let db = mk_db () in
  Alcotest.(check (float 1e-9)) "cross" 40.0
    (est db (A.cross (A.scan "R") (A.scan "S")));
  (* equi-join selectivity 1 / max(ndv) = 1/2 *)
  let plan = A.join X.(col "R.k" =% col "S.k") (A.scan "R") (A.scan "S") in
  Alcotest.(check (float 1e-9)) "equi join" 20.0 (est db plan)

let test_left_join_lower_bound () =
  let db = mk_db () in
  (* an empty right side: left join still keeps every left row *)
  let empty_right = A.Select (X.(col "k" =% str "zz"), A.scan "S") in
  let plan = A.left_join X.(col "R.k" =% col "S.k") (A.scan "R") empty_right in
  Alcotest.(check bool) "at least |R|" true (est db plan >= 10.0)

let test_limit_and_groupby () =
  let db = mk_db () in
  Alcotest.(check (float 1e-9)) "limit caps" 3.0
    (est db (A.Limit (3, A.scan "R")));
  Alcotest.(check (float 1e-9)) "limit no-op when bigger" 10.0
    (est db (A.Limit (100, A.scan "R")));
  let g = A.Group_by ([], [ { A.fn = A.CountStar; arg = None; out = "c" } ], A.scan "R") in
  Alcotest.(check (float 1e-9)) "global group is 1" 1.0 (est db g)

let test_monotone_under_selection () =
  (* adding a conjunct never increases the estimate *)
  let db = mk_db () in
  let base = A.Select (X.(col "n" >% int 2), A.scan "R") in
  let tighter = A.Select (X.(And (col "n" >% int 2, col "k" =% str "a")), A.scan "R") in
  Alcotest.(check bool) "tighter <= base" true (est db tighter <= est db base)

let test_explain_renders_estimates () =
  let db = mk_db () in
  let plan = A.Select (X.(col "k" =% str "a"), A.scan "R") in
  match Est.explain db plan with
  | Error msg -> Alcotest.fail msg
  | Ok text ->
    let contains needle =
      let n = String.length needle and h = String.length text in
      let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "select row count" true (contains "[~5 rows]");
    Alcotest.(check bool) "scan row count" true (contains "[~10 rows]")

let test_errors_propagate () =
  let db = mk_db () in
  (match Est.cardinality db (A.scan "Nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown relation must fail");
  match Est.cardinality db (A.Select (X.col "zz", A.scan "R")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown column must fail"

let () =
  Alcotest.run "estimate"
    [
      ( "estimate",
        [
          Alcotest.test_case "scan" `Quick test_scan;
          Alcotest.test_case "equality ndv" `Quick test_equality_uses_ndv;
          Alcotest.test_case "range/conjunction" `Quick test_range_and_conjunction;
          Alcotest.test_case "cross/equijoin" `Quick test_cross_and_equijoin;
          Alcotest.test_case "left join bound" `Quick test_left_join_lower_bound;
          Alcotest.test_case "limit/groupby" `Quick test_limit_and_groupby;
          Alcotest.test_case "selection monotone" `Quick test_monotone_under_selection;
          Alcotest.test_case "explain" `Quick test_explain_renders_estimates;
          Alcotest.test_case "errors" `Quick test_errors_propagate;
        ] );
    ]
