(* Tests for confidence computation: read-once evaluation, exact Shannon
   expansion, Monte-Carlo estimation, and cross-validation against brute
   force enumeration. *)

module F = Lineage.Formula
module P = Lineage.Prob
module Tid = Lineage.Tid

let v i = F.var (Tid.make "t" i)

(* brute-force probability by enumerating all worlds over the formula's
   variables *)
let brute_force p f =
  let vars = Tid.Set.elements (F.vars f) in
  let n = List.length vars in
  let total = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let assignment tid =
      let rec index i = function
        | [] -> assert false
        | x :: rest -> if Tid.equal x tid then i else index (i + 1) rest
      in
      mask land (1 lsl index 0 vars) <> 0
    in
    if F.eval assignment f then begin
      let weight =
        List.fold_left
          (fun acc tid ->
            let rec index i = function
              | [] -> assert false
              | x :: rest -> if Tid.equal x tid then i else index (i + 1) rest
            in
            let bit = mask land (1 lsl index 0 vars) <> 0 in
            acc *. (if bit then p tid else 1.0 -. p tid))
          1.0 vars
      in
      total := !total +. weight
    end
  done;
  !total

let const_p x _ = x

let p_by_row values tid = values.(tid.Tid.row)

let test_read_once_and () =
  let f = F.conj [ v 0; v 1 ] in
  let p = p_by_row [| 0.3; 0.4 |] in
  Alcotest.(check (float 1e-12)) "and" 0.12 (P.read_once p f)

let test_read_once_or () =
  let f = F.disj [ v 0; v 1 ] in
  let p = p_by_row [| 0.3; 0.4 |] in
  Alcotest.(check (float 1e-12)) "or" 0.58 (P.read_once p f)

let test_paper_example () =
  (* p38 = (p02 + p03 - p02*p03) * p13 = 0.058 *)
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p tid =
    match tid.Tid.row with 2 -> 0.3 | 3 -> 0.4 | 13 -> 0.1 | _ -> 0.0
  in
  Alcotest.(check (float 1e-12)) "p38" 0.058 (P.confidence p f);
  (* raising p03 to 0.5 gives 0.065 *)
  let p' tid = if tid.Tid.row = 3 then 0.5 else p tid in
  Alcotest.(check (float 1e-12)) "p38 after increment" 0.065 (P.confidence p' f)

let test_constants () =
  Alcotest.(check (float 0.0)) "true" 1.0 (P.confidence (const_p 0.5) F.tru);
  Alcotest.(check (float 0.0)) "false" 0.0 (P.confidence (const_p 0.5) F.fls)

let test_negation () =
  let f = F.neg (v 0) in
  Alcotest.(check (float 1e-12)) "not" 0.7 (P.confidence (const_p 0.3) f)

let test_exact_on_shared_vars () =
  (* (t0 & t1) | (t0 & t2): not read-once; P = p0*(p1 + p2 - p1*p2) *)
  let f = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  let p = p_by_row [| 0.5; 0.4; 0.2 |] in
  let expect = 0.5 *. (0.4 +. 0.2 -. 0.08) in
  Alcotest.(check (float 1e-12)) "shannon" expect (P.exact p f);
  Alcotest.(check (float 1e-12)) "dispatcher agrees" expect (P.confidence p f)

let test_exact_with_negation_sharing () =
  (* t0 | (!t0 & t1) = t0 | t1 *)
  let f = F.disj [ v 0; F.conj [ F.neg (v 0); v 1 ] ] in
  let p = p_by_row [| 0.3; 0.5 |] in
  Alcotest.(check (float 1e-12)) "negated sharing" 0.65 (P.exact p f)

let test_shannon_cost_estimate () =
  let read_once = F.conj [ v 0; v 1 ] in
  Alcotest.(check int) "read-once costs 1" 1 (P.shannon_cost_estimate read_once);
  let shared = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  Alcotest.(check int) "one shared var costs 2" 2 (P.shannon_cost_estimate shared)

let test_monte_carlo_converges () =
  let f = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  let p = p_by_row [| 0.5; 0.4; 0.2 |] in
  let rng = Prng.Splitmix.of_int 1234 in
  let est = P.monte_carlo rng ~samples:40_000 p f in
  let exact = P.exact p f in
  Alcotest.(check bool)
    (Printf.sprintf "estimate %.4f near exact %.4f" est exact)
    true
    (Float.abs (est -. exact) < 0.02)

let test_monte_carlo_rejects_bad_samples () =
  let rng = Prng.Splitmix.of_int 1 in
  Alcotest.(check bool) "samples must be positive" true
    (try
       ignore (P.monte_carlo rng ~samples:0 (const_p 0.5) (v 0));
       false
     with Invalid_argument _ -> true)

(* random formulas over 4 vars, validated against brute force *)
let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then map (fun i -> v i) (int_range 0 3)
           else
             frequency
               [
                 (2, map (fun i -> v i) (int_range 0 3));
                 (1, map F.neg (self (n / 2)));
                 (2, map F.conj (list_size (int_range 2 3) (self (n / 2))));
                 (2, map F.disj (list_size (int_range 2 3) (self (n / 2))));
               ]))

let arb_formula = QCheck.make ~print:F.to_string gen_formula

let test_derivative_basics () =
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p tid = match tid.Tid.row with 2 -> 0.3 | 3 -> 0.4 | 13 -> 0.1 | _ -> 0.0 in
  (* dP/dp13 = p02 + p03 - p02*p03 = 0.58 *)
  Alcotest.(check (float 1e-12)) "d/dp13" 0.58 (P.derivative p f (Tid.make "t" 13));
  (* dP/dp3 = p13 * (1 - p02) = 0.07 *)
  Alcotest.(check (float 1e-12)) "d/dp3" 0.07 (P.derivative p f (Tid.make "t" 3));
  Alcotest.(check (float 0.0)) "absent var" 0.0 (P.derivative p f (Tid.make "t" 99))

let qcheck_derivative_matches_finite_difference =
  QCheck.Test.make ~name:"derivative matches finite differences" ~count:300
    arb_formula
    (fun f ->
      let values = [| 0.23; 0.48; 0.61; 0.87 |] in
      let p tid = values.(tid.Tid.row) in
      let v = Tid.make "t" 1 in
      let eps = 1e-6 in
      let p_plus tid = if Tid.equal tid v then values.(1) +. eps else p tid in
      let fd = (P.exact p_plus f -. P.exact p f) /. eps in
      Float.abs (P.derivative p f v -. fd) < 1e-4)

let qcheck_monotone_derivative_nonnegative =
  QCheck.Test.make ~name:"monotone formulas have non-negative derivatives"
    ~count:300 arb_formula
    (fun f ->
      QCheck.assume (F.is_monotone f);
      let p tid = [| 0.2; 0.4; 0.6; 0.8 |].(tid.Tid.row) in
      P.derivative p f (Tid.make "t" 0) >= -1e-12)

let qcheck_exact_matches_brute_force =
  QCheck.Test.make ~name:"exact matches brute force" ~count:300 arb_formula
    (fun f ->
      let p = p_by_row [| 0.13; 0.42; 0.71; 0.9 |] in
      Float.abs (P.exact p f -. brute_force p f) < 1e-9)

let qcheck_confidence_in_unit_interval =
  QCheck.Test.make ~name:"confidence lies in [0,1]" ~count:300 arb_formula
    (fun f ->
      let p = p_by_row [| 0.1; 0.5; 0.9; 0.33 |] in
      let c = P.confidence p f in
      c >= -1e-12 && c <= 1.0 +. 1e-12)

let qcheck_monotone_formulas_monotone_in_p =
  QCheck.Test.make ~name:"monotone formulas are monotone in tuple confidence"
    ~count:300 arb_formula
    (fun f ->
      QCheck.assume (F.is_monotone f);
      let lo = p_by_row [| 0.1; 0.2; 0.3; 0.4 |] in
      let hi = p_by_row [| 0.2; 0.3; 0.4; 0.5 |] in
      P.confidence lo f <= P.confidence hi f +. 1e-12)

let qcheck_read_once_agrees_when_applicable =
  QCheck.Test.make ~name:"read_once agrees with exact on read-once formulas"
    ~count:300 arb_formula
    (fun f ->
      QCheck.assume (F.is_read_once f);
      let p = p_by_row [| 0.15; 0.35; 0.55; 0.75 |] in
      Float.abs (P.read_once p f -. P.exact p f) < 1e-9)

let () =
  Alcotest.run "prob"
    [
      ( "evaluators",
        [
          Alcotest.test_case "read-once and" `Quick test_read_once_and;
          Alcotest.test_case "read-once or" `Quick test_read_once_or;
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "shannon on shared" `Quick test_exact_on_shared_vars;
          Alcotest.test_case "negated sharing" `Quick test_exact_with_negation_sharing;
          Alcotest.test_case "cost estimate" `Quick test_shannon_cost_estimate;
          Alcotest.test_case "monte-carlo" `Slow test_monte_carlo_converges;
          Alcotest.test_case "monte-carlo validation" `Quick test_monte_carlo_rejects_bad_samples;
          Alcotest.test_case "derivative" `Quick test_derivative_basics;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_exact_matches_brute_force;
          QCheck_alcotest.to_alcotest qcheck_confidence_in_unit_interval;
          QCheck_alcotest.to_alcotest qcheck_monotone_formulas_monotone_in_p;
          QCheck_alcotest.to_alcotest qcheck_read_once_agrees_when_applicable;
          QCheck_alcotest.to_alcotest qcheck_derivative_matches_finite_difference;
          QCheck_alcotest.to_alcotest qcheck_monotone_derivative_nonnegative;
        ] );
    ]
