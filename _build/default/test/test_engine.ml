(* End-to-end tests for the PCQE engine: the full Fig. 1 data flow on the
   paper's running example, RBAC interaction, policy selection, strategy
   finding and data-quality improvement. *)

module Db = Relational.Database
module V = Relational.Value
module S = Relational.Schema
module Tid = Lineage.Tid
module E = Pcqe.Engine

let ok = function Ok x -> x | Error msg -> Alcotest.failf "unexpected: %s" msg

(* the venture-capital database of Section 3.1 *)
let build_db () =
  let proposal =
    Relational.Relation.create "Proposal"
      (S.of_list
         [ ("Company", V.TString); ("Prop", V.TString); ("Funding", V.TFloat) ])
  in
  let info =
    Relational.Relation.create "CompanyInfo"
      (S.of_list [ ("Company", V.TString); ("Income", V.TFloat) ])
  in
  let db = Db.add_relation (Db.add_relation Db.empty proposal) info in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "Proposal" [ V.String "A"; V.String "p0"; V.Float 2e6 ] 0.5 in
  let db = ins db "Proposal" [ V.String "X"; V.String "p1"; V.Float 8e5 ] 0.3 in
  let db = ins db "Proposal" [ V.String "X"; V.String "p2"; V.Float 5e5 ] 0.4 in
  let db = ins db "CompanyInfo" [ V.String "A"; V.Float 5e6 ] 0.2 in
  let db = ins db "CompanyInfo" [ V.String "X"; V.Float 1e6 ] 0.1 in
  db

let cost_of tid =
  if tid.Tid.rel = "Proposal" && tid.Tid.row = 1 then
    Cost.Cost_model.linear ~rate:1000.0
  else if tid.Tid.rel = "Proposal" && tid.Tid.row = 2 then
    Cost.Cost_model.linear ~rate:100.0
  else Cost.Cost_model.linear ~rate:2000.0

let build_rbac () =
  let open Rbac.Core_rbac in
  let m = add_role (add_role empty "Manager") "Secretary" in
  let m = add_user (add_user m "alice") "bob" in
  let m = ok (assign_user m ~user:"alice" ~role:"Manager") in
  let m = ok (assign_user m ~user:"bob" ~role:"Secretary") in
  let m = ok (grant m ~role:"Manager" { action = "select"; resource = "*" }) in
  let m =
    ok (grant m ~role:"Secretary" { action = "select"; resource = "Proposal" })
  in
  m

let policies =
  Rbac.Policy.of_list
    [
      Rbac.Policy.make ~role:"Secretary" ~purpose:"analysis" ~beta:0.05;
      Rbac.Policy.make ~role:"Manager" ~purpose:"investment" ~beta:0.06;
    ]

let sql =
  "SELECT CompanyInfo.Company, CompanyInfo.Income FROM Proposal JOIN \
   CompanyInfo ON Proposal.Company = CompanyInfo.Company WHERE \
   Proposal.Funding < 1000000"

let ctx () =
  E.make_context ~cost_of ~db:(build_db ()) ~rbac:(build_rbac ()) ~policies ()

let request user purpose perc =
  { E.query = Pcqe.Query.sql sql; user; purpose; perc }

let test_manager_filtered_with_proposal () =
  let resp = ok (E.answer (ctx ()) (request "alice" "investment" 1.0)) in
  Alcotest.(check (option (float 1e-9))) "threshold 0.06" (Some 0.06)
    resp.E.threshold;
  Alcotest.(check int) "nothing released" 0 (List.length resp.E.released);
  Alcotest.(check int) "one withheld" 1 resp.E.withheld;
  Alcotest.(check bool) "not infeasible" false resp.E.infeasible;
  match resp.E.proposal with
  | None -> Alcotest.fail "expected an improvement proposal"
  | Some p ->
    Alcotest.(check (float 1e-6)) "paper's cheap fix costs 10" 10.0 p.E.cost;
    (match p.E.increments with
    | [ (tid, level) ] ->
      Alcotest.(check string) "raises tuple 03" "Proposal#2" (Tid.to_string tid);
      Alcotest.(check (float 1e-9)) "to 0.5" 0.5 level
    | _ -> Alcotest.fail "expected exactly one increment");
    Alcotest.(check int) "would release the result" 1 p.E.projected_release

let test_accept_proposal_improves () =
  let c = ctx () in
  let resp = ok (E.answer c (request "alice" "investment" 1.0)) in
  let p = Option.get resp.E.proposal in
  let c' = E.accept_proposal c p in
  let resp' = ok (E.answer c' (request "alice" "investment" 1.0)) in
  Alcotest.(check int) "released after improvement" 1
    (List.length resp'.E.released);
  Alcotest.(check int) "nothing withheld" 0 resp'.E.withheld;
  Alcotest.(check bool) "no further proposal" true (resp'.E.proposal = None);
  match resp'.E.released with
  | [ row ] ->
    Alcotest.(check (float 1e-9)) "confidence 0.065" 0.065 row.E.confidence
  | _ -> Alcotest.fail "expected one row"

let test_secretary_passes_lower_threshold () =
  (* bob (Secretary) can only select Proposal, not CompanyInfo *)
  let resp = E.answer (ctx ()) (request "bob" "analysis" 1.0) in
  match resp with
  | Error msg ->
    Alcotest.(check bool) "rbac denial mentions CompanyInfo" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected RBAC denial"

let test_secretary_with_full_grant () =
  let rbac =
    let open Rbac.Core_rbac in
    let m = build_rbac () in
    ok (grant m ~role:"Secretary" { action = "select"; resource = "CompanyInfo" })
  in
  let c = E.make_context ~cost_of ~db:(build_db ()) ~rbac ~policies () in
  let resp = ok (E.answer c (request "bob" "analysis" 1.0)) in
  Alcotest.(check (option (float 1e-9))) "threshold 0.05" (Some 0.05)
    resp.E.threshold;
  Alcotest.(check int) "released under P1" 1 (List.length resp.E.released);
  match resp.E.released with
  | [ row ] -> Alcotest.(check (float 1e-9)) "p38" 0.058 row.E.confidence
  | _ -> Alcotest.fail "expected one row"

let test_unknown_user () =
  match E.answer (ctx ()) (request "mallory" "investment" 1.0) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown user must be rejected"

let test_no_policy_returns_everything () =
  let resp = ok (E.answer (ctx ()) (request "alice" "browsing" 1.0)) in
  Alcotest.(check (option (float 1e-9))) "no threshold" None resp.E.threshold;
  Alcotest.(check int) "released" 1 (List.length resp.E.released);
  Alcotest.(check int) "none withheld" 0 resp.E.withheld;
  Alcotest.(check bool) "no proposal" true (resp.E.proposal = None)

let test_perc_zero_suppresses_proposal () =
  let resp = ok (E.answer (ctx ()) (request "alice" "investment" 0.0)) in
  Alcotest.(check bool) "no proposal needed" true (resp.E.proposal = None)

let test_perc_validation () =
  match E.answer (ctx ()) (request "alice" "investment" 1.5) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "perc > 1 must be rejected"

let test_bad_sql_reported () =
  match
    E.answer (ctx ())
      { E.query = Pcqe.Query.sql "SELEKT nonsense"; user = "alice";
        purpose = "investment"; perc = 1.0 }
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad SQL must be rejected"

let test_infeasible_when_capped () =
  let c = ctx () in
  (* cap every base tuple at its current confidence: nothing can improve *)
  let c = { c with E.cap_of = (fun tid -> Db.confidence c.E.db tid) } in
  let resp = ok (E.answer c (request "alice" "investment" 1.0)) in
  Alcotest.(check bool) "infeasible" true resp.E.infeasible;
  Alcotest.(check bool) "no proposal" true (resp.E.proposal = None)

let test_report_rendering () =
  let resp = ok (E.answer (ctx ()) (request "alice" "investment" 1.0)) in
  let text = Pcqe.Report.response_to_string resp in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions threshold" true (contains "0.06");
  Alcotest.(check bool) "mentions withheld" true (contains "withheld");
  Alcotest.(check bool) "mentions the increment" true (contains "Proposal#2")

let test_solver_choice_greedy () =
  let c = { (ctx ()) with E.solver = Optimize.Solver.greedy } in
  let resp = ok (E.answer c (request "alice" "investment" 1.0)) in
  match resp.E.proposal with
  | Some p -> Alcotest.(check (float 1e-6)) "greedy also finds cost 10" 10.0 p.E.cost
  | None -> Alcotest.fail "expected proposal"

let () =
  Alcotest.run "engine"
    [
      ( "pcqe",
        [
          Alcotest.test_case "manager filtered + proposal" `Quick
            test_manager_filtered_with_proposal;
          Alcotest.test_case "accept proposal" `Quick test_accept_proposal_improves;
          Alcotest.test_case "rbac denial" `Quick test_secretary_passes_lower_threshold;
          Alcotest.test_case "secretary threshold" `Quick test_secretary_with_full_grant;
          Alcotest.test_case "unknown user" `Quick test_unknown_user;
          Alcotest.test_case "no policy" `Quick test_no_policy_returns_everything;
          Alcotest.test_case "perc zero" `Quick test_perc_zero_suppresses_proposal;
          Alcotest.test_case "perc validation" `Quick test_perc_validation;
          Alcotest.test_case "bad sql" `Quick test_bad_sql_reported;
          Alcotest.test_case "infeasible caps" `Quick test_infeasible_when_capped;
          Alcotest.test_case "report rendering" `Quick test_report_rendering;
          Alcotest.test_case "greedy solver" `Quick test_solver_choice_greedy;
        ] );
    ]
