(* Tests for the result-tuple graph partitioner. *)

module Problem = Optimize.Problem
module Partition = Optimize.Partition
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

let base i = { Problem.tid = t i; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:10.0 }

let mk ~nbases formulas =
  Problem.make_exn ~beta:0.5
    ~required:(min 1 (List.length formulas))
    ~bases:(List.init nbases base) ~formulas ()

(* Fig. 8 style instance: r0 and r1 share 3 bases; r1 and r2 share 1 *)
let fig8 () =
  mk ~nbases:7
    [
      F.conj [ v 0; v 1; v 2 ] (* r0 *);
      F.disj [ v 0; v 1; v 2; v 3 ] (* r1: shares 0,1,2 with r0 *);
      F.conj [ v 3; v 4 ] (* r2: shares 3 with r1 *);
      F.disj [ v 5; v 6 ] (* r3: independent *);
    ]

let test_gamma_2_merges_heavy_edge_only () =
  let p = fig8 () in
  let parts =
    Partition.partition
      ~config:{ Partition.default_config with gamma = 2.0 }
      p
  in
  (match Partition.check p parts with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* r0-r1 (weight 3) merge; r2 and r3 stay alone *)
  Alcotest.(check int) "3 groups" 3 (Partition.num_groups parts);
  Alcotest.(check int) "r0 and r1 together" parts.Partition.group_of.(0)
    parts.Partition.group_of.(1);
  Alcotest.(check bool) "r2 separate" true
    (parts.Partition.group_of.(2) <> parts.Partition.group_of.(0))

let test_gamma_1_merges_chains () =
  let p = fig8 () in
  let parts =
    Partition.partition
      ~config:{ Partition.default_config with gamma = 1.0 }
      p
  in
  (* weight-1 edge r1-r2 also merges; r3 remains alone *)
  Alcotest.(check int) "2 groups" 2 (Partition.num_groups parts);
  Alcotest.(check int) "chain merged" parts.Partition.group_of.(0)
    parts.Partition.group_of.(2)

let test_gamma_huge_all_singletons () =
  let p = fig8 () in
  let parts =
    Partition.partition
      ~config:{ Partition.default_config with gamma = 100.0 }
      p
  in
  Alcotest.(check int) "every result alone" 4 (Partition.num_groups parts)

let test_independent_results_never_merge () =
  let p =
    mk ~nbases:6
      [ F.conj [ v 0; v 1 ]; F.conj [ v 2; v 3 ]; F.conj [ v 4; v 5 ] ]
  in
  let parts =
    Partition.partition ~config:{ Partition.default_config with gamma = 0.5 } p
  in
  Alcotest.(check int) "no shared bases, no merges" 3 (Partition.num_groups parts)

let test_max_group_bases_guard () =
  let p = fig8 () in
  (* with a limit of 4 bases: r0+r1 (union {0,1,2,3}) fits, but absorbing
     r2 (adds base 4) would exceed it and must be refused even though its
     edge weight passes gamma = 1 *)
  let parts =
    Partition.partition
      ~config:
        { Partition.default_config with gamma = 1.0; max_group_bases = Some 4 }
      p
  in
  (match Partition.check p parts with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "three groups" 3 (Partition.num_groups parts);
  Alcotest.(check int) "r0 and r1 merged" parts.Partition.group_of.(0)
    parts.Partition.group_of.(1);
  Alcotest.(check bool) "r2 kept out by the size guard" true
    (parts.Partition.group_of.(2) <> parts.Partition.group_of.(1));
  Array.iter
    (fun bids ->
      Alcotest.(check bool) "merged groups respect the limit" true
        (List.length bids <= 4))
    parts.Partition.group_bases

let test_group_bases_content () =
  let p = fig8 () in
  let parts =
    Partition.partition ~config:{ Partition.default_config with gamma = 2.0 } p
  in
  let g01 = parts.Partition.group_of.(0) in
  Alcotest.(check (list int)) "merged base set" [ 0; 1; 2; 3 ]
    parts.Partition.group_bases.(g01)

let test_summed_weights_cascade () =
  (* r0-r1 share 2; r2 shares 1 with each of r0 and r1.  After merging
     r0+r1 (weight 2), the edge to r2 sums to 2 and merges as well. *)
  let p =
    mk ~nbases:5
      [
        F.conj [ v 0; v 1; v 2 ];
        F.disj [ v 0; v 1; v 3 ];
        F.conj [ v 2; v 3; v 4 ];
      ]
  in
  let parts =
    Partition.partition ~config:{ Partition.default_config with gamma = 2.0 } p
  in
  Alcotest.(check int) "cascade into one group" 1 (Partition.num_groups parts)

let test_union_semantics_ablation () =
  let p = fig8 () in
  let parts =
    Partition.partition
      ~config:
        {
          Partition.default_config with
          gamma = 4.0;
          semantics = Partition.Union_size;
        }
      p
  in
  (match Partition.check p parts with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  (* under union semantics the r1-r2 edge weighs |{0,1,2,3} u {3,4}| = 5 and
     merges first; the summed edge from r0 then reaches gamma as well, so
     only the independent r3 stays out *)
  Alcotest.(check int) "union weights merge more" 2 (Partition.num_groups parts)

let qcheck_partition_always_valid =
  QCheck.Test.make ~name:"partition is a valid cover on random instances"
    ~count:60
    QCheck.(pair (int_range 0 10_000) (int_range 1 4))
    (fun (seed, gamma) ->
      let p =
        Workload.Synth.small_instance ~num_bases:15 ~num_results:10
          ~bases_per_result:4 ~seed ()
      in
      let parts =
        Partition.partition
          ~config:
            { Partition.default_config with gamma = float_of_int gamma }
          p
      in
      match Partition.check p parts with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "partition"
    [
      ( "partition",
        [
          Alcotest.test_case "gamma 2" `Quick test_gamma_2_merges_heavy_edge_only;
          Alcotest.test_case "gamma 1 chain" `Quick test_gamma_1_merges_chains;
          Alcotest.test_case "gamma huge" `Quick test_gamma_huge_all_singletons;
          Alcotest.test_case "independent stay apart" `Quick
            test_independent_results_never_merge;
          Alcotest.test_case "size guard" `Quick test_max_group_bases_guard;
          Alcotest.test_case "group bases" `Quick test_group_bases_content;
          Alcotest.test_case "summed cascade" `Quick test_summed_weights_cascade;
          Alcotest.test_case "union ablation" `Quick test_union_semantics_ablation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_partition_always_valid ]);
    ]
