(* Tests for on-disk workspaces: load, query, improve, save, reload. *)

module W = Pcqe.Workspace
module E = Pcqe.Engine
module Db = Relational.Database
module Tid = Lineage.Tid

let write path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let fresh_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pcqe_ws_%d_%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o755;
  Unix.mkdir (Filename.concat dir "relations") 0o755;
  dir

let populate dir =
  write
    (Filename.concat dir "relations/Proposal.csv")
    "Company:string,Funding:real,__confidence:real\nStartX,800000,0.3\nStartX,500000,0.4\nBeta,1500000,0.6\n";
  write
    (Filename.concat dir "relations/Info.csv")
    "Company:string,Income:real,__confidence:real\nStartX,1000000,0.1\n";
  write (Filename.concat dir "rbac.txt")
    "role Manager\nuser alice\nassign alice Manager\ngrant Manager select *\n";
  write (Filename.concat dir "policies.txt") "Manager, investment, 0.06\n";
  write (Filename.concat dir "costs.txt")
    "# paper costs\ndefault linear 2000\nProposal#0 linear 1000\nProposal#1 linear 100\n";
  write (Filename.concat dir "caps.txt") "Info#0 0.8\n";
  write (Filename.concat dir "views.sql")
    "Cheap: SELECT Company, Funding FROM Proposal WHERE Funding < 1000000\n"

let load dir =
  match W.load dir with
  | Ok w -> w
  | Error msg -> Alcotest.failf "load failed: %s" msg

let request =
  {
    E.query =
      Pcqe.Query.sql
        "SELECT Info.Company, Info.Income FROM Cheap JOIN Info ON \
         Cheap.Company = Info.Company";
    user = "alice";
    purpose = "investment";
    perc = 1.0;
  }

let test_load_and_answer () =
  let dir = fresh_dir () in
  populate dir;
  let w = load dir in
  Alcotest.(check (list string)) "relations" [ "Info"; "Proposal" ]
    (Db.relation_names w.W.context.E.db);
  Alcotest.(check (float 1e-9)) "cap loaded" 0.8
    (Db.confidence_cap w.W.context.E.db (Tid.make "Info" 0));
  match E.answer w.W.context request with
  | Error msg -> Alcotest.fail msg
  | Ok resp -> (
    Alcotest.(check int) "filtered" 1 resp.E.withheld;
    match resp.E.proposal with
    | Some p ->
      (* the cheap fix from the paper: raise the second proposal tuple *)
      Alcotest.(check (float 1e-6)) "cost 10" 10.0 p.E.cost
    | None -> Alcotest.fail "expected proposal")

let test_missing_required_files () =
  let dir = fresh_dir () in
  (* relations dir exists but empty *)
  (match W.load dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty workspace must fail");
  populate dir;
  Sys.remove (Filename.concat dir "rbac.txt");
  match W.load dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing rbac.txt must fail"

let test_optional_files_default () =
  let dir = fresh_dir () in
  populate dir;
  Sys.remove (Filename.concat dir "costs.txt");
  Sys.remove (Filename.concat dir "caps.txt");
  Sys.remove (Filename.concat dir "views.sql");
  let w = load dir in
  Alcotest.(check int) "no cost specs" 0 (List.length w.W.cost_specs);
  Alcotest.(check int) "no caps" 0 (List.length w.W.caps)

let test_error_messages_carry_location () =
  let dir = fresh_dir () in
  populate dir;
  write (Filename.concat dir "costs.txt") "Proposal#0 cubic 9\n";
  (match W.load dir with
  | Error msg ->
    Alcotest.(check bool) "mentions costs.txt" true
      (String.length msg >= 9 && String.sub msg 0 9 = "costs.txt")
  | Ok _ -> Alcotest.fail "bad cost spec must fail");
  populate dir;
  write (Filename.concat dir "caps.txt") "Info#0 7\n";
  match W.load dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad cap must fail"

let test_improve_save_reload () =
  let dir = fresh_dir () in
  populate dir;
  let w = load dir in
  let resp =
    match E.answer w.W.context request with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  let proposal = Option.get resp.E.proposal in
  let ctx' = E.accept_proposal w.W.context proposal in
  (* save the improved workspace into a new directory *)
  let out = fresh_dir () in
  (match W.save out { w with W.context = ctx' } with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "save failed: %s" msg);
  (* views don't round-trip; re-create views.sql by hand as documented *)
  write (Filename.concat out "views.sql")
    "Cheap: SELECT Company, Funding FROM Proposal WHERE Funding < 1000000\n";
  let w2 = load out in
  (* the improvement persisted: tuple Proposal#1 is now at 0.5 *)
  Alcotest.(check (float 1e-6)) "confidence persisted" 0.5
    (Db.confidence w2.W.context.E.db (Tid.make "Proposal" 1));
  (* and the query now passes without a proposal *)
  match E.answer w2.W.context request with
  | Ok resp' ->
    Alcotest.(check int) "released after reload" 1 (List.length resp'.E.released);
    Alcotest.(check bool) "no more proposal" true (resp'.E.proposal = None)
  | Error msg -> Alcotest.fail msg

let test_save_preserves_costs_and_caps () =
  let dir = fresh_dir () in
  populate dir;
  let w = load dir in
  let out = fresh_dir () in
  (match W.save out w with Ok () -> () | Error msg -> Alcotest.fail msg);
  write (Filename.concat out "views.sql")
    "Cheap: SELECT Company, Funding FROM Proposal WHERE Funding < 1000000\n";
  let w2 = load out in
  Alcotest.(check int) "cost specs survive" 2 (List.length w2.W.cost_specs);
  Alcotest.(check (list (pair string (float 1e-9)))) "caps survive"
    [ ("Info#0", 0.8) ]
    (List.map (fun (tid, c) -> (Tid.to_string tid, c)) w2.W.caps)

let () =
  Random.self_init ();
  Alcotest.run "workspace"
    [
      ( "workspace",
        [
          Alcotest.test_case "load and answer" `Quick test_load_and_answer;
          Alcotest.test_case "missing files" `Quick test_missing_required_files;
          Alcotest.test_case "optional defaults" `Quick test_optional_files_default;
          Alcotest.test_case "error locations" `Quick test_error_messages_carry_location;
          Alcotest.test_case "improve/save/reload" `Quick test_improve_save_reload;
          Alcotest.test_case "costs/caps roundtrip" `Quick test_save_preserves_costs_and_caps;
        ] );
    ]
