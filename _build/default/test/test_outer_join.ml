(* Tests for left outer joins: padding, lineage with negation, confidence,
   and the SQL surface. *)

module A = Relational.Algebra
module E = Relational.Eval
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation
module F = Lineage.Formula

let mk_db () =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "R" [ V.String "a"; V.Int 1 ] 0.9 in
  let db = ins db "R" [ V.String "b"; V.Int 2 ] 0.8 in
  let db = ins db "S" [ V.String "a"; V.Int 10 ] 0.6 in
  let db = ins db "S" [ V.String "a"; V.Int 11 ] 0.5 in
  db

let run db plan =
  match E.run db plan with
  | Ok r -> r
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let plan = A.left_join X.(col "R.k" =% col "S.k") (A.scan "R") (A.scan "S")

let test_rows_and_padding () =
  let db = mk_db () in
  let res = run db plan in
  let rows = List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows in
  (* 'a' matches twice (plus its padded possibility); 'b' never matches *)
  Alcotest.(check (list string)) "rows"
    [
      "(a, 1, a, 10)";
      "(a, 1, a, 11)";
      "(a, 1, NULL, NULL)";
      "(b, 2, NULL, NULL)";
    ]
    rows

let test_lineage () =
  let db = mk_db () in
  let res = run db plan in
  let lineages = List.map (fun r -> F.to_string r.E.lineage) res.E.rows in
  Alcotest.(check (list string)) "lineage"
    [ "R#0 & S#0"; "R#0 & S#1"; "R#0 & !(S#0 | S#1)"; "R#1" ]
    lineages

let test_confidences () =
  let db = mk_db () in
  let res = run db plan in
  let confs = List.map snd (E.with_confidence db res) in
  (* matched: 0.9*0.6 and 0.9*0.5; padded-a: 0.9 * (1-0.6)(1-0.5) = 0.18;
     unmatched b: 0.8 *)
  Alcotest.(check (list (float 1e-9))) "confidences" [ 0.54; 0.45; 0.18; 0.8 ]
    confs

let test_total_probability_per_left_row () =
  (* for each left row, the matched and padded variants partition the
     worlds where the left row exists, so confidences sum to conf(left)
     ... except matched rows can coexist, so use inclusion: padded +
     P(exists some match) = conf(left).  Check via the padded row only:
     conf(padded-a) = 0.9 - P(R0 & (S0 | S1)) = 0.9 - 0.9*0.8 = 0.18. *)
  let db = mk_db () in
  let res = run db plan in
  let padded_a = List.nth res.E.rows 2 in
  Alcotest.(check (float 1e-9)) "complement" (0.9 -. (0.9 *. 0.8))
    (E.confidence db padded_a)

let test_left_join_after_filter_on_right () =
  (* if the right side is empty after filtering, every left row pads *)
  let db = mk_db () in
  let p =
    A.left_join
      X.(col "R.k" =% col "S.k")
      (A.scan "R")
      (A.Select (X.(col "m" >% int 100), A.scan "S"))
  in
  let res = run db p in
  Alcotest.(check int) "both rows padded" 2 (List.length res.E.rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "null padded" true
        (V.equal (Relational.Tuple.get r.E.tuple 2) V.Null))
    res.E.rows

let test_sql_left_join () =
  let db = mk_db () in
  match Relational.Sql_planner.compile
          "SELECT R.k, S.m FROM R LEFT JOIN S ON R.k = S.k"
  with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
    let res = run db plan in
    Alcotest.(check int) "projected rows" 4 (List.length res.E.rows)

let test_sql_left_outer_join_keyword () =
  match Relational.Sql_parser.parse
          "SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.x"
  with
  | Ok (Relational.Sql_ast.Select s) -> (
    match s.Relational.Sql_ast.joins with
    | [ { Relational.Sql_ast.jkind = Relational.Sql_ast.Left_outer_join; _ } ] -> ()
    | _ -> Alcotest.fail "expected a left join clause")
  | Ok _ -> Alcotest.fail "expected select"
  | Error msg -> Alcotest.fail msg
  [@@warning "-4"]

let test_null_predicates_on_padded_rows () =
  (* the classic "find left rows without a match" idiom *)
  let db = mk_db () in
  match
    Relational.Sql_planner.compile
      "SELECT R.k FROM R LEFT JOIN S ON R.k = S.k WHERE S.m IS NULL"
  with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
    let res = run db plan in
    let rows =
      List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows
    in
    Alcotest.(check (list string)) "a (padded variant) and b" [ "(a)"; "(b)" ] rows

let () =
  Alcotest.run "outer-join"
    [
      ( "left-join",
        [
          Alcotest.test_case "rows and padding" `Quick test_rows_and_padding;
          Alcotest.test_case "lineage" `Quick test_lineage;
          Alcotest.test_case "confidences" `Quick test_confidences;
          Alcotest.test_case "probability complement" `Quick
            test_total_probability_per_left_row;
          Alcotest.test_case "empty right" `Quick test_left_join_after_filter_on_right;
          Alcotest.test_case "sql LEFT JOIN" `Quick test_sql_left_join;
          Alcotest.test_case "sql LEFT OUTER JOIN" `Quick
            test_sql_left_outer_join_keyword;
          Alcotest.test_case "IS NULL idiom" `Quick test_null_predicates_on_padded_rows;
        ] );
    ]
