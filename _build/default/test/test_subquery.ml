(* Tests for IN/EXISTS subqueries: membership-event lineage, NOT IN
   negation, boolean combinations, SQL surface, and error cases. *)

module A = Relational.Algebra
module E = Relational.Eval
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation
module F = Lineage.Formula

let mk_db () =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "R" [ V.String "a"; V.Int 1 ] 0.9 in
  let db = ins db "R" [ V.String "b"; V.Int 2 ] 0.8 in
  let db = ins db "R" [ V.String "c"; V.Int 3 ] 0.7 in
  let db = ins db "S" [ V.String "a" ] 0.6 in
  let db = ins db "S" [ V.String "a" ] 0.5 in
  let db = ins db "S" [ V.String "b" ] 0.4 in
  db

let run db plan =
  match E.run db plan with
  | Ok r -> r
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let run_sql db sql =
  match Relational.Sql_planner.compile sql with
  | Error msg -> Alcotest.failf "compile: %s" msg
  | Ok plan -> run db plan

let row_strings res =
  List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows

let lineage_strings res =
  List.map (fun r -> F.to_string (F.simplify r.E.lineage)) res.E.rows

let sub_k = A.Project ([ "k" ], A.scan "S")

let test_in_semantics () =
  let db = mk_db () in
  let plan = A.Select_sub (A.In_sub (X.col "R.k", sub_k), A.scan "R") in
  let res = run db plan in
  (* rows a and b have matches; c has none and is dropped *)
  Alcotest.(check (list string)) "rows" [ "(a, 1)"; "(b, 2)" ] (row_strings res);
  Alcotest.(check (list string)) "membership lineage"
    [ "R#0 & (S#0 | S#1)"; "R#1 & S#2" ]
    (lineage_strings res)

let test_in_confidence () =
  let db = mk_db () in
  let plan = A.Select_sub (A.In_sub (X.col "R.k", sub_k), A.scan "R") in
  let res = run db plan in
  let confs = List.map snd (E.with_confidence db res) in
  (* a: 0.9 * (1 - 0.4*0.5) = 0.72; b: 0.8 * 0.4 = 0.32 *)
  Alcotest.(check (list (float 1e-9))) "confidences" [ 0.72; 0.32 ] confs

let test_not_in () =
  let db = mk_db () in
  let plan =
    A.Select_sub (A.Not_c (A.In_sub (X.col "R.k", sub_k)), A.scan "R")
  in
  let res = run db plan in
  (* every row survives: a and b with negated membership, c untouched *)
  Alcotest.(check (list string)) "rows" [ "(a, 1)"; "(b, 2)"; "(c, 3)" ]
    (row_strings res);
  Alcotest.(check (list string)) "negated lineage"
    [ "R#0 & !(S#0 | S#1)"; "R#1 & !S#2"; "R#2" ]
    (lineage_strings res)

let test_exists () =
  let db = mk_db () in
  let nonempty =
    A.Select_sub (A.Exists_sub (A.Select (X.(col "k" =% str "b"), A.scan "S")), A.scan "R")
  in
  let res = run db nonempty in
  Alcotest.(check int) "all rows kept" 3 (List.length res.E.rows);
  (* lineage of each row gets the existence event conjoined *)
  Alcotest.(check (list string)) "existence lineage"
    [ "R#0 & S#2"; "R#1 & S#2"; "R#2 & S#2" ]
    (lineage_strings res);
  (* an empty subquery kills everything *)
  let empty =
    A.Select_sub (A.Exists_sub (A.Select (X.(col "k" =% str "zz"), A.scan "S")), A.scan "R")
  in
  Alcotest.(check int) "not exists, no rows" 0 (List.length (run db empty).E.rows)

let test_boolean_combination () =
  let db = mk_db () in
  (* k IN sub OR n = 3: c qualifies deterministically *)
  let plan =
    A.Select_sub
      ( A.Or_c (A.In_sub (X.col "R.k", sub_k), A.Pred X.(col "n" =% int 3)),
        A.scan "R" )
  in
  let res = run db plan in
  Alcotest.(check (list string)) "rows" [ "(a, 1)"; "(b, 2)"; "(c, 3)" ]
    (row_strings res);
  (* c's condition is deterministically true: lineage stays R#2 *)
  Alcotest.(check string) "deterministic disjunct" "R#2"
    (List.nth (lineage_strings res) 2)

let test_null_lhs_never_matches () =
  let r = R.create "T" (S.of_list [ ("x", V.TString) ]) in
  let db = Db.add_relation (mk_db ()) r in
  let db, _ = Db.insert db "T" [ V.Null ] ~conf:1.0 in
  let in_plan = A.Select_sub (A.In_sub (X.col "x", sub_k), A.scan "T") in
  Alcotest.(check int) "NULL IN -> dropped" 0 (List.length (run db in_plan).E.rows);
  let notin_plan =
    A.Select_sub (A.Not_c (A.In_sub (X.col "x", sub_k)), A.scan "T")
  in
  Alcotest.(check int) "NULL NOT IN -> kept (documented deviation)" 1
    (List.length (run db notin_plan).E.rows)

let test_arity_check () =
  let db = mk_db () in
  let bad = A.Select_sub (A.In_sub (X.col "R.k", A.scan "S"), A.scan "R") in
  (* S has one column so this is fine; use R (two columns) as the subquery *)
  ignore (run db bad);
  let really_bad = A.Select_sub (A.In_sub (X.col "R.k", A.scan "R"), A.scan "S") in
  match E.run db really_bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two-column IN subquery must be rejected"

let test_sql_in_subquery () =
  let db = mk_db () in
  let res = run_sql db "SELECT n FROM R WHERE R.k IN (SELECT k FROM S)" in
  Alcotest.(check (list string)) "sql in" [ "(1)"; "(2)" ] (row_strings res)

let test_sql_not_in_subquery () =
  let db = mk_db () in
  let res =
    run_sql db "SELECT R.k FROM R WHERE R.k NOT IN (SELECT k FROM S) AND n > 0"
  in
  Alcotest.(check int) "all three kept with adjusted lineage" 3
    (List.length res.E.rows)

let test_sql_exists () =
  let db = mk_db () in
  let res =
    run_sql db
      "SELECT n FROM R WHERE EXISTS (SELECT k FROM S WHERE k = 'b') AND n < 3"
  in
  Alcotest.(check (list string)) "exists + plain" [ "(1)"; "(2)" ]
    (row_strings res)

let test_sql_not_exists () =
  let db = mk_db () in
  let res =
    run_sql db "SELECT n FROM R WHERE NOT EXISTS (SELECT k FROM S WHERE k = 'z')"
  in
  Alcotest.(check int) "vacuous not-exists keeps all" 3 (List.length res.E.rows);
  (* and the lineage is unchanged: the negated empty event is true *)
  Alcotest.(check (list string)) "clean lineage" [ "R#0"; "R#1"; "R#2" ]
    (lineage_strings res)

let test_sql_in_literal_list_still_works () =
  let db = mk_db () in
  let res = run_sql db "SELECT n FROM R WHERE n IN (1, 3)" in
  Alcotest.(check (list string)) "literal list" [ "(1)"; "(3)" ] (row_strings res);
  let res = run_sql db "SELECT n FROM R WHERE n NOT IN (1, 3)" in
  Alcotest.(check (list string)) "negated literal list" [ "(2)" ] (row_strings res)

let test_correlation_rejected () =
  let db = mk_db () in
  (* the subquery references the outer R.n: unsupported, must error *)
  match
    Relational.Sql_planner.compile
      "SELECT n FROM R WHERE R.k IN (SELECT k FROM S WHERE R.n > 1)"
  with
  | Error _ -> ()
  | Ok plan -> (
    match E.run db plan with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "correlated subquery must be rejected")

let () =
  Alcotest.run "subquery"
    [
      ( "algebra",
        [
          Alcotest.test_case "IN semantics" `Quick test_in_semantics;
          Alcotest.test_case "IN confidence" `Quick test_in_confidence;
          Alcotest.test_case "NOT IN" `Quick test_not_in;
          Alcotest.test_case "EXISTS" `Quick test_exists;
          Alcotest.test_case "boolean combination" `Quick test_boolean_combination;
          Alcotest.test_case "NULL lhs" `Quick test_null_lhs_never_matches;
          Alcotest.test_case "arity check" `Quick test_arity_check;
        ] );
      ( "sql",
        [
          Alcotest.test_case "IN subquery" `Quick test_sql_in_subquery;
          Alcotest.test_case "NOT IN subquery" `Quick test_sql_not_in_subquery;
          Alcotest.test_case "EXISTS" `Quick test_sql_exists;
          Alcotest.test_case "NOT EXISTS" `Quick test_sql_not_exists;
          Alcotest.test_case "literal lists" `Quick test_sql_in_literal_list_still_works;
          Alcotest.test_case "correlation rejected" `Quick test_correlation_rejected;
        ] );
    ]
