(* Tests for the SQL front end: lexer, parser, planner, and end-to-end
   execution against the algebra evaluator. *)

module L = Relational.Sql_lexer
module P = Relational.Sql_parser
module Pl = Relational.Sql_planner
module A = Relational.Algebra
module E = Relational.Eval
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation

(* ------------------------------------------------------------------ *)
(* lexer *)

let tok = Alcotest.testable (Fmt.of_to_string L.token_to_string) ( = )

let lex s =
  match L.tokenize s with
  | Ok ts -> ts
  | Error msg -> Alcotest.failf "lex error: %s" msg

let test_lex_basics () =
  Alcotest.(check (list tok)) "select star"
    [ L.KW "SELECT"; L.STAR; L.KW "FROM"; L.IDENT "t"; L.EOF ]
    (lex "select * from t")

let test_lex_qualified_ident () =
  Alcotest.(check (list tok)) "dotted ident"
    [ L.IDENT "Proposal.Funding"; L.EOF ]
    (lex "Proposal.Funding")

let test_lex_numbers () =
  Alcotest.(check (list tok)) "int and float"
    [ L.INT 42; L.FLOAT 2.5; L.FLOAT 1e3; L.EOF ]
    (lex "42 2.5 1.0e3")

let test_lex_strings () =
  Alcotest.(check (list tok)) "quoted string with escape"
    [ L.STRING "it's"; L.EOF ]
    (lex "'it''s'");
  match L.tokenize "'unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated string must fail"

let test_lex_operators () =
  Alcotest.(check (list tok)) "two-char ops"
    [ L.LEQ; L.GEQ; L.NEQ; L.NEQ; L.LT; L.GT; L.EQ; L.EOF ]
    (lex "<= >= <> != < > =")

let test_lex_keywords_case_insensitive () =
  Alcotest.(check (list tok)) "mixed case"
    [ L.KW "SELECT"; L.KW "WHERE"; L.EOF ]
    (lex "SeLeCt wHeRe")

let test_lex_bad_char () =
  match L.tokenize "select @" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad character must fail"

(* ------------------------------------------------------------------ *)
(* parser *)

let parse s =
  match P.parse s with
  | Ok q -> q
  | Error msg -> Alcotest.failf "parse error: %s" msg

let test_parse_simple_select () =
  match parse "SELECT a, b FROM t WHERE a > 3" with
  | Relational.Sql_ast.Select s ->
    Alcotest.(check int) "2 items" 2 (List.length s.Relational.Sql_ast.items);
    Alcotest.(check bool) "has where" true (s.Relational.Sql_ast.where <> None)
  | _ -> Alcotest.fail "expected plain select"
  [@@warning "-4"]

let test_parse_join () =
  match parse "SELECT a FROM t JOIN u ON t.x = u.x JOIN v ON u.y = v.y" with
  | Relational.Sql_ast.Select s ->
    Alcotest.(check int) "two joins" 2 (List.length s.Relational.Sql_ast.joins)
  | _ -> Alcotest.fail "expected select"
  [@@warning "-4"]

let test_parse_aliases () =
  match parse "SELECT a FROM t AS x, u y" with
  | Relational.Sql_ast.Select s ->
    (match s.Relational.Sql_ast.from with
    | Relational.Sql_ast.Tref { table = "t"; alias = Some "x" } -> ()
    | _ -> Alcotest.fail "AS alias");
    (match s.Relational.Sql_ast.cross with
    | [ Relational.Sql_ast.Tref { table = "u"; alias = Some "y" } ] -> ()
    | _ -> Alcotest.fail "implicit alias")
  | _ -> Alcotest.fail "expected select"
  [@@warning "-4"]

let test_parse_group_order_limit () =
  match
    parse
      "SELECT k, COUNT(*) AS c FROM t GROUP BY k HAVING c > 1 ORDER BY k DESC \
       LIMIT 5"
  with
  | Relational.Sql_ast.Select s ->
    Alcotest.(check (list string)) "group" [ "k" ] s.Relational.Sql_ast.group_by;
    Alcotest.(check bool) "having" true (s.Relational.Sql_ast.having <> None);
    Alcotest.(check (option int)) "limit" (Some 5) s.Relational.Sql_ast.limit;
    (match s.Relational.Sql_ast.order_by with
    | [ ("k", A.Desc) ] -> ()
    | _ -> Alcotest.fail "order by desc")
  | _ -> Alcotest.fail "expected select"
  [@@warning "-4"]

let test_parse_set_operations () =
  (match parse "SELECT a FROM t UNION SELECT a FROM u" with
  | Relational.Sql_ast.Union _ -> ()
  | _ -> Alcotest.fail "union");
  (match parse "SELECT a FROM t EXCEPT SELECT a FROM u" with
  | Relational.Sql_ast.Except _ -> ()
  | _ -> Alcotest.fail "except");
  match parse "(SELECT a FROM t) INTERSECT (SELECT a FROM u)" with
  | Relational.Sql_ast.Intersect _ -> ()
  | _ -> Alcotest.fail "intersect"
  [@@warning "-4"]

let test_parse_errors () =
  List.iter
    (fun sql ->
      match P.parse sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse failure: %s" sql)
    [
      "SELECT";
      "SELECT a";
      "SELECT a FROM";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t LIMIT -1";
      "SELECT a FROM t JOIN";
      "SELECT SUM(*) FROM t";
    ]

let test_parse_expr_precedence () =
  match P.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Ok (Relational.Expr.Or (_, Relational.Expr.And (_, _))) -> ()
  | Ok e -> Alcotest.failf "wrong tree: %s" (Relational.Expr.to_string e)
  | Error msg -> Alcotest.fail msg
  [@@warning "-4"]

let test_parse_expr_arith_precedence () =
  match P.parse_expr "1 + 2 * 3 = 7" with
  | Ok e ->
    Alcotest.(check string) "mul binds tighter" "((1 + (2 * 3)) = 7)"
      (Relational.Expr.to_string e)
  | Error msg -> Alcotest.fail msg

let test_parse_predicates () =
  List.iter
    (fun s ->
      match P.parse_expr s with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s: %s" s msg)
    [
      "a IS NULL";
      "a IS NOT NULL";
      "name LIKE 'St%'";
      "n IN (1, 2, 3)";
      "n BETWEEN 1 AND 10";
      "NOT (a = 1)";
      "-n < 3";
    ]

(* ------------------------------------------------------------------ *)
(* planner + end-to-end *)

let mk_db () =
  let t = R.create "t" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let u = R.create "u" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty t) u in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "t" [ V.String "a"; V.Int 1 ] 0.9 in
  let db = ins db "t" [ V.String "a"; V.Int 2 ] 0.8 in
  let db = ins db "t" [ V.String "b"; V.Int 3 ] 0.7 in
  let db = ins db "u" [ V.String "a"; V.Int 10 ] 0.6 in
  db

let run_sql db sql =
  match Pl.compile sql with
  | Error msg -> Alcotest.failf "compile: %s" msg
  | Ok plan -> (
    match E.run db plan with
    | Ok res -> res
    | Error msg -> Alcotest.failf "eval: %s" msg)

let rows res = List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows

let test_e2e_select_where () =
  let db = mk_db () in
  let res = run_sql db "SELECT k FROM t WHERE n >= 2" in
  Alcotest.(check (list string)) "rows" [ "(a)"; "(b)" ] (rows res)

let test_e2e_star () =
  let db = mk_db () in
  let res = run_sql db "SELECT * FROM t" in
  Alcotest.(check int) "all rows" 3 (List.length res.E.rows);
  Alcotest.(check (list string)) "schema" [ "t.k"; "t.n" ]
    (S.column_names res.E.schema)

let test_e2e_join () =
  let db = mk_db () in
  let res = run_sql db "SELECT t.n, u.m FROM t JOIN u ON t.k = u.k" in
  Alcotest.(check (list string)) "joined" [ "(1, 10)"; "(2, 10)" ] (rows res)

let test_e2e_group_by () =
  let db = mk_db () in
  let res =
    run_sql db "SELECT k, COUNT(*) AS c, SUM(n) AS s FROM t GROUP BY k"
  in
  Alcotest.(check (list string)) "grouped" [ "(a, 2, 3)"; "(b, 1, 3)" ] (rows res)

let test_e2e_having () =
  let db = mk_db () in
  let res =
    run_sql db "SELECT k, COUNT(*) AS c FROM t GROUP BY k HAVING c > 1"
  in
  Alcotest.(check (list string)) "filtered group" [ "(a, 2)" ] (rows res)

let test_e2e_order_limit () =
  let db = mk_db () in
  let res = run_sql db "SELECT n FROM t ORDER BY n DESC LIMIT 2" in
  Alcotest.(check (list string)) "top-2" [ "(3)"; "(2)" ] (rows res)

let test_e2e_union_except () =
  let db = mk_db () in
  let res = run_sql db "SELECT k FROM t UNION SELECT k FROM u" in
  Alcotest.(check (list string)) "union" [ "(a)"; "(b)" ] (rows res);
  let res = run_sql db "SELECT k FROM t EXCEPT SELECT k FROM u" in
  (* probabilistic difference keeps 'a' with negated lineage *)
  Alcotest.(check int) "except keeps annotated rows" 2 (List.length res.E.rows)

let test_e2e_distinct_alias_table () =
  let db = mk_db () in
  let res = run_sql db "SELECT DISTINCT x.k FROM t AS x" in
  Alcotest.(check (list string)) "aliased" [ "(a)"; "(b)" ] (rows res)

let test_e2e_like_in () =
  let db = mk_db () in
  let res = run_sql db "SELECT n FROM t WHERE k LIKE 'a%' AND n IN (1, 3)" in
  Alcotest.(check (list string)) "like+in" [ "(1)" ] (rows res)

let test_e2e_derived_table () =
  let db = mk_db () in
  let res =
    run_sql db
      "SELECT big.k FROM (SELECT k, n FROM t WHERE n >= 2) AS big WHERE big.n = 3"
  in
  Alcotest.(check (list string)) "derived table" [ "(b)" ] (rows res);
  (* derived table joined with a base relation *)
  let res =
    run_sql db
      "SELECT d.k, u.m FROM (SELECT k FROM t) d JOIN u ON d.k = u.k"
  in
  Alcotest.(check (list string)) "derived join" [ "(a, 10)" ] (rows res)

let test_derived_table_requires_alias () =
  match P.parse "SELECT k FROM (SELECT k FROM t)" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "derived table without alias must fail"

let test_planner_errors () =
  List.iter
    (fun sql ->
      match Pl.compile sql with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected planner failure: %s" sql)
    [
      "SELECT k AS x FROM t" (* column aliases unsupported *);
      "SELECT k, n FROM t GROUP BY k" (* n not grouped *);
      "SELECT * FROM t GROUP BY k";
      "SELECT k FROM t HAVING k = 'a'" (* having without group *);
    ]

let test_default_agg_names () =
  Alcotest.(check string) "count star" "count_star" (Pl.default_agg_name A.CountStar None);
  Alcotest.(check string) "sum" "sum_n" (Pl.default_agg_name A.Sum (Some "t.n"))

let () =
  Alcotest.run "sql"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lex_basics;
          Alcotest.test_case "qualified" `Quick test_lex_qualified_ident;
          Alcotest.test_case "numbers" `Quick test_lex_numbers;
          Alcotest.test_case "strings" `Quick test_lex_strings;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "keywords" `Quick test_lex_keywords_case_insensitive;
          Alcotest.test_case "bad char" `Quick test_lex_bad_char;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple select" `Quick test_parse_simple_select;
          Alcotest.test_case "joins" `Quick test_parse_join;
          Alcotest.test_case "aliases" `Quick test_parse_aliases;
          Alcotest.test_case "group/order/limit" `Quick test_parse_group_order_limit;
          Alcotest.test_case "set ops" `Quick test_parse_set_operations;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "bool precedence" `Quick test_parse_expr_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_expr_arith_precedence;
          Alcotest.test_case "predicates" `Quick test_parse_predicates;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "select/where" `Quick test_e2e_select_where;
          Alcotest.test_case "star" `Quick test_e2e_star;
          Alcotest.test_case "join" `Quick test_e2e_join;
          Alcotest.test_case "group by" `Quick test_e2e_group_by;
          Alcotest.test_case "having" `Quick test_e2e_having;
          Alcotest.test_case "order/limit" `Quick test_e2e_order_limit;
          Alcotest.test_case "union/except" `Quick test_e2e_union_except;
          Alcotest.test_case "distinct/alias" `Quick test_e2e_distinct_alias_table;
          Alcotest.test_case "like/in" `Quick test_e2e_like_in;
          Alcotest.test_case "derived tables" `Quick test_e2e_derived_table;
          Alcotest.test_case "derived alias required" `Quick test_derived_table_requires_alias;
          Alcotest.test_case "planner errors" `Quick test_planner_errors;
          Alcotest.test_case "agg names" `Quick test_default_agg_names;
        ] );
    ]
