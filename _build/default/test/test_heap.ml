(* Tests for the binary max-heap. *)

module H = Optimize.Heap

let test_empty () =
  let h = H.create () in
  Alcotest.(check bool) "empty" true (H.is_empty h);
  Alcotest.(check int) "length 0" 0 (H.length h);
  Alcotest.(check bool) "pop none" true (H.pop h = None);
  Alcotest.(check bool) "peek none" true (H.peek h = None)

let test_push_pop_ordering () =
  let h = H.create () in
  List.iter (fun (p, v) -> H.push h p v) [ (1.0, "a"); (5.0, "b"); (3.0, "c") ];
  Alcotest.(check int) "length" 3 (H.length h);
  Alcotest.(check bool) "peek max" true (H.peek h = Some (5.0, "b"));
  let order = List.init 3 (fun _ -> Option.get (H.pop h)) in
  Alcotest.(check (list string)) "descending priority" [ "b"; "c"; "a" ]
    (List.map snd order)

let test_duplicate_priorities () =
  let h = H.create () in
  H.push h 2.0 "x";
  H.push h 2.0 "y";
  let a = Option.get (H.pop h) and b = Option.get (H.pop h) in
  Alcotest.(check bool) "both come out" true
    (List.sort compare [ snd a; snd b ] = [ "x"; "y" ])

let test_growth () =
  let h = H.create ~capacity:2 () in
  for i = 1 to 1000 do
    H.push h (float_of_int (i mod 37)) i
  done;
  Alcotest.(check int) "all stored" 1000 (H.length h);
  (* drain is sorted non-increasing *)
  let prev = ref infinity in
  for _ = 1 to 1000 do
    let p, _ = Option.get (H.pop h) in
    Alcotest.(check bool) "non-increasing" true (p <= !prev);
    prev := p
  done

let test_clear () =
  let h = H.create () in
  H.push h 1.0 "a";
  H.clear h;
  Alcotest.(check bool) "cleared" true (H.is_empty h)

let qcheck_heap_sorts =
  QCheck.Test.make ~name:"heap drain equals descending sort" ~count:200
    QCheck.(list (QCheck.float_range (-100.0) 100.0))
    (fun priorities ->
      let h = H.create () in
      List.iteri (fun i p -> H.push h p i) priorities;
      let drained = ref [] in
      let rec drain () =
        match H.pop h with
        | Some (p, _) ->
          drained := p :: !drained;
          drain ()
        | None -> ()
      in
      drain ();
      (* drained was collected in reverse, so it should be ascending *)
      List.rev !drained = List.sort (fun a b -> compare b a) priorities)

let () =
  Alcotest.run "heap"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_push_pop_ordering;
          Alcotest.test_case "duplicates" `Quick test_duplicate_priorities;
          Alcotest.test_case "growth" `Quick test_growth;
          Alcotest.test_case "clear" `Quick test_clear;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_heap_sorts ]);
    ]
