(* Tests for confidence policies and policy stores. *)

module P = Rbac.Policy

let p1 = P.make ~role:"Secretary" ~purpose:"analysis" ~beta:0.05
let p2 = P.make ~role:"Manager" ~purpose:"investment" ~beta:0.06

let store = P.of_list [ p1; p2 ]

let test_make_validation () =
  Alcotest.(check bool) "negative beta rejected" true
    (try
       ignore (P.make ~role:"r" ~purpose:"p" ~beta:(-0.1));
       false
     with Invalid_argument _ -> true)

let test_to_string () =
  Alcotest.(check string) "paper form" "<Manager, investment, 0.06>"
    (P.to_string p2)

let test_applicable_by_role_and_purpose () =
  Alcotest.(check int) "manager+investment" 1
    (List.length (P.applicable store ~roles:[ "Manager" ] ~purpose:"investment"));
  Alcotest.(check int) "manager+analysis: none" 0
    (List.length (P.applicable store ~roles:[ "Manager" ] ~purpose:"analysis"));
  Alcotest.(check int) "multi-role" 1
    (List.length
       (P.applicable store ~roles:[ "Manager"; "Secretary" ] ~purpose:"analysis"))

let test_effective_threshold_max_wins () =
  let s =
    P.of_list
      [
        P.make ~role:"analyst" ~purpose:"report" ~beta:0.3;
        P.make ~role:"analyst" ~purpose:"report" ~beta:0.7;
      ]
  in
  Alcotest.(check (option (float 1e-9))) "most restrictive" (Some 0.7)
    (P.effective_threshold s ~roles:[ "analyst" ] ~purpose:"report")

let test_effective_threshold_none () =
  Alcotest.(check (option (float 1e-9))) "no policy applies" None
    (P.effective_threshold store ~roles:[ "Clerk" ] ~purpose:"analysis")

let test_wildcards () =
  let s =
    P.of_list
      [
        P.make ~role:"*" ~purpose:"audit" ~beta:0.9;
        P.make ~role:"intern" ~purpose:"*" ~beta:0.5;
      ]
  in
  Alcotest.(check (option (float 1e-9))) "wildcard role" (Some 0.9)
    (P.effective_threshold s ~roles:[ "anything" ] ~purpose:"audit");
  Alcotest.(check (option (float 1e-9))) "wildcard purpose" (Some 0.5)
    (P.effective_threshold s ~roles:[ "intern" ] ~purpose:"whatever");
  Alcotest.(check (option (float 1e-9))) "both apply, max" (Some 0.9)
    (P.effective_threshold s ~roles:[ "intern" ] ~purpose:"audit")

let test_parse_line () =
  (match P.parse_line "Manager, investment, 0.06" with
  | Ok p ->
    Alcotest.(check string) "parsed" "<Manager, investment, 0.06>" (P.to_string p)
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun line ->
      match P.parse_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" line)
    [ ""; "just-two, fields"; "a, b, not-a-number"; "a, b, -1"; ", b, 0.5" ]

let test_parse_store_roundtrip () =
  let text = "# policies\nSecretary, analysis, 0.05\n\nManager, investment, 0.06\n" in
  match P.parse_store text with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    Alcotest.(check int) "two policies" 2 (List.length (P.to_list s));
    (* roundtrip through the printer *)
    (match P.parse_store (P.store_to_string s) with
    | Ok s2 ->
      Alcotest.(check int) "roundtrip" 2 (List.length (P.to_list s2));
      Alcotest.(check (option (float 1e-9))) "same threshold" (Some 0.06)
        (P.effective_threshold s2 ~roles:[ "Manager" ] ~purpose:"investment")
    | Error msg -> Alcotest.fail msg)

let test_parse_store_reports_line () =
  match P.parse_store "ok, fine, 0.5\nbroken line\n" with
  | Error msg ->
    Alcotest.(check bool) "mentions line 2" true
      (String.length msg >= 6 && String.sub msg 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected failure"

let () =
  Alcotest.run "policy"
    [
      ( "policy",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "applicable" `Quick test_applicable_by_role_and_purpose;
          Alcotest.test_case "max threshold" `Quick test_effective_threshold_max_wins;
          Alcotest.test_case "no policy" `Quick test_effective_threshold_none;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "parse line" `Quick test_parse_line;
          Alcotest.test_case "store roundtrip" `Quick test_parse_store_roundtrip;
          Alcotest.test_case "error line numbers" `Quick test_parse_store_reports_line;
        ] );
    ]
