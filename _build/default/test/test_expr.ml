(* Tests for the expression language: arithmetic, three-valued logic,
   LIKE/IN/BETWEEN, and error reporting. *)

module E = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module T = Relational.Tuple

let schema =
  S.of_list
    [ ("a", V.TInt); ("b", V.TFloat); ("s", V.TString); ("flag", V.TBool) ]

let tup = T.of_list [ V.Int 4; V.Float 2.5; V.String "hello"; V.Bool true ]

let tup_nulls = T.of_list [ V.Null; V.Null; V.Null; V.Null ]

let eval_ok e =
  match E.eval schema tup e with
  | Ok v -> v
  | Error msg -> Alcotest.failf "eval error: %s" msg

let pred_ok ?(t = tup) e =
  match E.eval_pred schema t e with
  | Ok b -> b
  | Error msg -> Alcotest.failf "pred error: %s" msg

let check_v what expect got =
  Alcotest.(check bool) what true (V.equal expect got)

let test_literals_and_columns () =
  check_v "int lit" (V.Int 7) (eval_ok (E.int 7));
  check_v "col a" (V.Int 4) (eval_ok (E.col "a"));
  check_v "col s" (V.String "hello") (eval_ok (E.col "s"))

let test_arithmetic () =
  check_v "int add stays int" (V.Int 7) (eval_ok E.(Arith (Add, int 3, int 4)));
  check_v "int mul" (V.Int 12) (eval_ok E.(Arith (Mul, int 3, int 4)));
  check_v "mixed promotes" (V.Float 6.5) (eval_ok E.(Arith (Add, col "a", col "b")));
  check_v "division is real" (V.Float 1.5) (eval_ok E.(Arith (Div, int 3, int 2)));
  check_v "divide by zero is NULL" V.Null (eval_ok E.(Arith (Div, int 3, int 0)));
  check_v "negation" (V.Int (-4)) (eval_ok E.(Neg (col "a")))

let test_null_propagation () =
  check_v "null + x" V.Null (eval_ok E.(Arith (Add, null, int 1)));
  check_v "null = x is NULL" V.Null (eval_ok E.(null =% int 1));
  Alcotest.(check bool) "WHERE filters unknown" false
    (pred_ok E.(null =% int 1))

let test_comparisons () =
  Alcotest.(check bool) "4 > 2.5 cross-type" true (pred_ok E.(col "a" >% col "b"));
  Alcotest.(check bool) "eq" true (pred_ok E.(col "a" =% int 4));
  Alcotest.(check bool) "neq" true (pred_ok E.(col "a" <>% int 5));
  Alcotest.(check bool) "leq" true (pred_ok E.(col "a" <=% int 4));
  Alcotest.(check bool) "string cmp" true (pred_ok E.(col "s" <% str "world"))

let test_three_valued_and_or () =
  (* NULL OR true = true; NULL AND true = unknown -> filtered *)
  Alcotest.(check bool) "null or true" true
    (pred_ok E.(Or (null =% int 1, bool true)));
  Alcotest.(check bool) "null and true filtered" false
    (pred_ok E.(And (null =% int 1, bool true)));
  Alcotest.(check bool) "null and false = false" false
    (pred_ok E.(And (null =% int 1, bool false)));
  Alcotest.(check bool) "not null-cmp filtered" false
    (pred_ok E.(Not (null =% int 1)))

let test_is_null () =
  Alcotest.(check bool) "is null on null row" true
    (pred_ok ~t:tup_nulls E.(IsNull (col "a")));
  Alcotest.(check bool) "is not null" true (pred_ok E.(IsNotNull (col "a")));
  Alcotest.(check bool) "is null false on value" false (pred_ok E.(IsNull (col "a")))

let test_like () =
  Alcotest.(check bool) "exact" true (E.like_match ~pattern:"hello" "hello");
  Alcotest.(check bool) "mismatch" false (E.like_match ~pattern:"hello" "hullo");
  Alcotest.(check bool) "percent prefix" true (E.like_match ~pattern:"%llo" "hello");
  Alcotest.(check bool) "percent suffix" true (E.like_match ~pattern:"he%" "hello");
  Alcotest.(check bool) "percent middle" true (E.like_match ~pattern:"h%o" "hello");
  Alcotest.(check bool) "empty percent" true (E.like_match ~pattern:"%" "");
  Alcotest.(check bool) "underscore" true (E.like_match ~pattern:"h_llo" "hello");
  Alcotest.(check bool) "underscore needs a char" false (E.like_match ~pattern:"_" "");
  Alcotest.(check bool) "double percent" true (E.like_match ~pattern:"%ell%" "hello");
  Alcotest.(check bool) "greedy backtrack" true
    (E.like_match ~pattern:"%o%o%" "frodo of bolso");
  Alcotest.(check bool) "pred like" true (pred_ok E.(Like (col "s", "h%")))

let test_in () =
  Alcotest.(check bool) "in list" true
    (pred_ok E.(In (col "a", [ V.Int 1; V.Int 4 ])));
  Alcotest.(check bool) "not in list" false
    (pred_ok E.(In (col "a", [ V.Int 1; V.Int 2 ])));
  Alcotest.(check bool) "null in filtered" false
    (pred_ok ~t:tup_nulls E.(In (col "a", [ V.Int 1 ])))

let test_between () =
  Alcotest.(check bool) "inside" true (pred_ok E.(Between (col "a", int 1, int 5)));
  Alcotest.(check bool) "boundary" true (pred_ok E.(Between (col "a", int 4, int 5)));
  Alcotest.(check bool) "outside" false (pred_ok E.(Between (col "a", int 5, int 9)))

let test_errors () =
  (match E.eval schema tup (E.col "zz") with
  | Error msg ->
    Alcotest.(check bool) "mentions column" true
      (String.length msg > 0)
  | Ok _ -> Alcotest.fail "expected unknown-column error");
  (match E.eval schema tup E.(Arith (Add, col "s", int 1)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected type error");
  match E.eval_pred schema tup (E.col "a") with
  | Error _ -> () (* int is not a predicate *)
  | Ok _ -> Alcotest.fail "expected predicate type error"

let test_columns_listing () =
  let e = E.(And (col "a" =% col "b", Like (col "s", "x%"))) in
  Alcotest.(check (list string)) "columns in order" [ "a"; "b"; "s" ] (E.columns e)

let test_to_string_roundtrip_shape () =
  let e = E.(Between (col "a", int 1, int 5)) in
  Alcotest.(check string) "render" "(a BETWEEN 1 AND 5)" (E.to_string e)

(* property: like_match with a pattern free of wildcards is string equality *)
let qcheck_like_no_wildcards =
  QCheck.Test.make ~name:"LIKE without wildcards is equality" ~count:300
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 8)) (string_of_size (QCheck.Gen.int_range 0 8)))
    (fun (p, s) ->
      QCheck.assume (not (String.exists (fun c -> c = '%' || c = '_') p));
      QCheck.assume (not (String.exists (fun c -> c = '%' || c = '_') s));
      E.like_match ~pattern:p s = (p = s))

let qcheck_percent_matches_everything =
  QCheck.Test.make ~name:"pattern %s% matches any superstring" ~count:200
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 0 4)) (string_of_size (QCheck.Gen.int_range 0 4)))
    (fun (a, b) ->
      QCheck.assume (not (String.exists (fun c -> c = '%' || c = '_') b));
      E.like_match ~pattern:("%" ^ b ^ "%") (a ^ b ^ a))

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "literals/columns" `Quick test_literals_and_columns;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "null propagation" `Quick test_null_propagation;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "3VL and/or" `Quick test_three_valued_and_or;
          Alcotest.test_case "is null" `Quick test_is_null;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "in" `Quick test_in;
          Alcotest.test_case "between" `Quick test_between;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "columns" `Quick test_columns_listing;
          Alcotest.test_case "to_string" `Quick test_to_string_roundtrip_shape;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_like_no_wildcards;
          QCheck_alcotest.to_alcotest qcheck_percent_matches_everything;
        ] );
    ]
