(* Tests for the plan rewriter: rule-level checks plus differential testing
   (optimized plans must produce identical annotated results on random
   databases and plans). *)

module A = Relational.Algebra
module E = Relational.Eval
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation
module Rw = Relational.Rewrite
module F = Lineage.Formula

let mk_db () =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let db = ins db "R" [ V.String "a"; V.Int 1 ] 0.9 in
  let db = ins db "R" [ V.String "a"; V.Int 2 ] 0.8 in
  let db = ins db "R" [ V.String "b"; V.Int 3 ] 0.7 in
  let db = ins db "S" [ V.String "a"; V.Int 10 ] 0.6 in
  let db = ins db "S" [ V.String "b"; V.Int 20 ] 0.5 in
  db

let optimize db p =
  match Rw.optimize db p with
  | Ok p -> p
  | Error msg -> Alcotest.failf "rewrite failed: %s" msg

let run db p =
  match E.run db p with
  | Ok r -> r
  | Error msg -> Alcotest.failf "eval failed: %s" msg

(* same multiset of (tuple, lineage) pairs, order-insensitive *)
let same_results a b =
  let norm res =
    List.sort compare
      (List.map
         (fun r ->
           (Relational.Tuple.to_string r.E.tuple, F.to_string (F.simplify r.E.lineage)))
         res.E.rows)
  in
  norm a = norm b

let check_equivalent db plan =
  let before = run db plan in
  let after = run db (optimize db plan) in
  Alcotest.(check bool) "same annotated results" true (same_results before after)

let test_merge_selects () =
  let db = mk_db () in
  let plan =
    A.Select (X.(col "n" >% int 1), A.Select (X.(col "k" =% str "a"), A.scan "R"))
  in
  let opt = optimize db plan in
  (match opt with
  | A.Select (X.And (_, _), A.Scan "R") -> ()
  | _ -> Alcotest.failf "expected merged selection:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_push_into_join () =
  let db = mk_db () in
  let plan =
    A.Select
      ( X.(col "R.n" >% int 1),
        A.Join (Some X.(col "R.k" =% col "S.k"), A.scan "R", A.scan "S") )
  in
  let opt = optimize db plan in
  (match opt with
  | A.Join (_, A.Select (_, A.Scan "R"), A.Scan "S") -> ()
  | _ -> Alcotest.failf "selection did not move:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_push_right_side () =
  let db = mk_db () in
  let plan =
    A.Select
      ( X.(col "S.m" >% int 15),
        A.Join (Some X.(col "R.k" =% col "S.k"), A.scan "R", A.scan "S") )
  in
  (match optimize db plan with
  | A.Join (_, A.Scan "R", A.Select (_, A.Scan "S")) -> ()
  | opt -> Alcotest.failf "expected right push:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_ambiguous_predicate_stays () =
  let db = mk_db () in
  (* k is ambiguous across both sides: must not push *)
  let plan =
    A.Select
      ( X.(col "R.k" =% col "S.k"),
        A.Join (None, A.scan "R", A.scan "S") )
  in
  (match optimize db plan with
  | A.Select (_, A.Join (None, A.Scan "R", A.Scan "S")) -> ()
  | opt -> Alcotest.failf "cross-side predicate moved:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_left_join_pushes_left_only () =
  let db = mk_db () in
  let cond = X.(col "R.k" =% col "S.k") in
  let left_pred = A.Select (X.(col "R.n" >% int 1), A.Left_join (cond, A.scan "R", A.scan "S")) in
  (match optimize db left_pred with
  | A.Left_join (_, A.Select (_, A.Scan "R"), A.Scan "S") -> ()
  | opt -> Alcotest.failf "left predicate should push:\n%s" (A.to_string opt));
  check_equivalent db left_pred;
  (* right-column predicate must NOT push through an outer join *)
  let right_pred = A.Select (X.(IsNotNull (col "S.m")), A.Left_join (cond, A.scan "R", A.scan "S")) in
  (match optimize db right_pred with
  | A.Select (_, A.Left_join (_, A.Scan "R", A.Scan "S")) -> ()
  | opt -> Alcotest.failf "right predicate moved through outer join:\n%s" (A.to_string opt));
  check_equivalent db right_pred

let test_push_through_union () =
  let db = mk_db () in
  let plan =
    A.Select
      ( X.(col "k" =% str "a"),
        A.Union (A.Project ([ "k" ], A.scan "R"), A.Project ([ "k" ], A.scan "S")) )
  in
  (match optimize db plan with
  | A.Union (A.Project (_, A.Select (_, _)), A.Project (_, A.Select (_, _))) -> ()
  | opt -> Alcotest.failf "expected push through union and projections:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_distinct_collapse () =
  let db = mk_db () in
  let plan = A.Distinct (A.Project ([ "k" ], A.scan "R")) in
  (match optimize db plan with
  | A.Project ([ "k" ], A.Scan "R") -> ()
  | opt -> Alcotest.failf "distinct not collapsed:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_limit_collapse () =
  let db = mk_db () in
  let plan = A.Limit (5, A.Limit (2, A.scan "R")) in
  (match optimize db plan with
  | A.Limit (2, A.Scan "R") -> ()
  | opt -> Alcotest.failf "limits not merged:\n%s" (A.to_string opt));
  check_equivalent db plan

let test_select_true_removed () =
  let db = mk_db () in
  let plan = A.Select (X.bool true, A.scan "R") in
  match optimize db plan with
  | A.Scan "R" -> ()
  | opt -> Alcotest.failf "trivial selection kept:\n%s" (A.to_string opt)

let test_invalid_predicate_not_pushed () =
  let db = mk_db () in
  (* the predicate references a column removed by the projection: the plan
     is invalid and must stay invalid *)
  let plan = A.Select (X.(col "n" >% int 1), A.Project ([ "k" ], A.scan "R")) in
  let opt = optimize db plan in
  (match E.run db opt with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rewriting must not make an invalid plan valid");
  match E.run db plan with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sanity: the original plan should be invalid"

(* differential testing on randomly generated plans *)
let arb_plan =
  let open QCheck.Gen in
  let pred =
    oneof
      [
        return X.(col "n" >% int 1);
        return X.(col "k" =% str "a");
        return X.(col "n" <% int 3);
        return X.(IsNotNull (col "k"));
      ]
  in
  let base = oneof [ return (A.scan "R"); return (A.scan "R") ] in
  let rec gen n =
    if n <= 1 then base
    else
      frequency
        [
          (2, base);
          (3, map2 (fun p x -> A.Select (p, x)) pred (gen (n - 1)));
          (1, map (fun x -> A.Project ([ "k" ], x)) (gen (n - 1)));
          (1, map (fun x -> A.Distinct x) (gen (n - 1)));
          (1, map (fun x -> A.Order_by ([ ("k", A.Asc) ], x)) (gen (n - 1)));
          (1, map2 (fun a b -> A.Union (a, b)) (gen (n / 2)) (gen (n / 2)));
          (1, map2 (fun a b -> A.Diff (a, b)) (gen (n / 2)) (gen (n / 2)));
        ]
  in
  QCheck.make ~print:A.to_string (sized_size (int_range 1 10) gen)

let qcheck_differential =
  QCheck.Test.make ~name:"optimized plans evaluate identically" ~count:100
    arb_plan
    (fun plan ->
      let db = mk_db () in
      match (E.run db plan, Rw.optimize db plan) with
      | Ok before, Ok opt -> (
        match E.run db opt with
        | Ok after -> same_results before after
        | Error _ -> false)
      | Error _, _ -> QCheck.assume_fail ()
      | _, Error _ -> false)

let () =
  Alcotest.run "rewrite"
    [
      ( "rules",
        [
          Alcotest.test_case "merge selects" `Quick test_merge_selects;
          Alcotest.test_case "push into join (left)" `Quick test_push_into_join;
          Alcotest.test_case "push into join (right)" `Quick test_push_right_side;
          Alcotest.test_case "ambiguous stays" `Quick test_ambiguous_predicate_stays;
          Alcotest.test_case "outer join" `Quick test_left_join_pushes_left_only;
          Alcotest.test_case "union" `Quick test_push_through_union;
          Alcotest.test_case "distinct collapse" `Quick test_distinct_collapse;
          Alcotest.test_case "limit collapse" `Quick test_limit_collapse;
          Alcotest.test_case "trivial select" `Quick test_select_true_removed;
          Alcotest.test_case "invalid stays invalid" `Quick
            test_invalid_predicate_not_pushed;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_differential ]);
    ]
