(* Tests for the RBAC substrate: hierarchy, assignment, permissions,
   sessions. *)

module R = Rbac.Core_rbac

let ok = function Ok x -> x | Error msg -> Alcotest.failf "unexpected: %s" msg

let err what = function
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected failure: %s" what

let base_model () =
  let m = R.empty in
  let m = R.add_role m "employee" in
  let m = R.add_role m "manager" in
  let m = R.add_role m "director" in
  let m = R.add_user m "alice" in
  let m = R.add_user m "bob" in
  let m = ok (R.add_inheritance m ~senior:"manager" ~junior:"employee") in
  let m = ok (R.add_inheritance m ~senior:"director" ~junior:"manager") in
  m

let test_roles_and_users () =
  let m = base_model () in
  Alcotest.(check (list string)) "roles sorted" [ "director"; "employee"; "manager" ]
    (R.roles m);
  Alcotest.(check (list string)) "users" [ "alice"; "bob" ] (R.users m)

let test_idempotent_adds () =
  let m = R.add_role (R.add_role R.empty "r") "r" in
  Alcotest.(check (list string)) "single role" [ "r" ] (R.roles m)

let test_assignment_validation () =
  let m = base_model () in
  err "unknown user" (R.assign_user m ~user:"nobody" ~role:"manager");
  err "unknown role" (R.assign_user m ~user:"alice" ~role:"nothing")

let test_inheritance_validation () =
  let m = base_model () in
  err "self inheritance" (R.add_inheritance m ~senior:"manager" ~junior:"manager");
  err "cycle" (R.add_inheritance m ~senior:"employee" ~junior:"director");
  err "unknown senior" (R.add_inheritance m ~senior:"zz" ~junior:"manager")

let test_junior_closure () =
  let m = base_model () in
  Alcotest.(check (list string)) "director's juniors" [ "employee"; "manager" ]
    (R.junior_roles m "director");
  Alcotest.(check (list string)) "employee has none" [] (R.junior_roles m "employee")

let test_authorized_roles () =
  let m = base_model () in
  let m = ok (R.assign_user m ~user:"alice" ~role:"director") in
  Alcotest.(check (list string)) "direct only" [ "director" ] (R.user_roles m "alice");
  Alcotest.(check (list string)) "with inheritance"
    [ "director"; "employee"; "manager" ]
    (R.authorized_roles m "alice")

let test_permission_inheritance () =
  let m = base_model () in
  let m = ok (R.grant m ~role:"employee" { R.action = "select"; resource = "T" }) in
  let m = ok (R.assign_user m ~user:"alice" ~role:"director") in
  let m = ok (R.assign_user m ~user:"bob" ~role:"employee") in
  Alcotest.(check bool) "senior inherits" true
    (R.check m ~user:"alice" { R.action = "select"; resource = "T" });
  Alcotest.(check bool) "junior has it directly" true
    (R.check m ~user:"bob" { R.action = "select"; resource = "T" });
  Alcotest.(check bool) "junior lacks unrelated" false
    (R.check m ~user:"bob" { R.action = "delete"; resource = "T" })

let test_permission_no_reverse_inheritance () =
  let m = base_model () in
  let m = ok (R.grant m ~role:"director" { R.action = "approve"; resource = "*" }) in
  let m = ok (R.assign_user m ~user:"bob" ~role:"employee") in
  Alcotest.(check bool) "junior does not get senior perms" false
    (R.check m ~user:"bob" { R.action = "approve"; resource = "X" })

let test_wildcards () =
  let m = base_model () in
  let m = ok (R.grant m ~role:"manager" { R.action = "*"; resource = "Reports" }) in
  let m = ok (R.grant m ~role:"employee" { R.action = "select"; resource = "*" }) in
  let m = ok (R.assign_user m ~user:"alice" ~role:"manager") in
  Alcotest.(check bool) "action wildcard" true
    (R.check m ~user:"alice" { R.action = "update"; resource = "Reports" });
  Alcotest.(check bool) "resource wildcard via junior" true
    (R.check m ~user:"alice" { R.action = "select"; resource = "Anything" });
  Alcotest.(check bool) "no match" false
    (R.check m ~user:"alice" { R.action = "update"; resource = "Other" })

let test_grant_validation_and_idempotence () =
  let m = base_model () in
  err "unknown role" (R.grant m ~role:"zz" { R.action = "a"; resource = "b" });
  let p = { R.action = "select"; resource = "T" } in
  let m = ok (R.grant m ~role:"employee" p) in
  let m = ok (R.grant m ~role:"employee" p) in
  Alcotest.(check int) "no duplicate grants" 1
    (List.length (R.role_permissions m "employee"))

let test_sessions () =
  let m = base_model () in
  let m = ok (R.assign_user m ~user:"alice" ~role:"director") in
  let m = ok (R.grant m ~role:"manager" { R.action = "sign"; resource = "*" }) in
  (* activating an inherited role is allowed *)
  let s = ok (R.open_session m ~user:"alice" ~roles:[ "manager" ]) in
  Alcotest.(check string) "session user" "alice" (R.session_user s);
  Alcotest.(check (list string)) "session roles" [ "manager" ] (R.session_roles s);
  Alcotest.(check bool) "session perm" true
    (R.check_session m s { R.action = "sign"; resource = "x" });
  (* a session restricted to employee does not see manager permissions *)
  let s2 = ok (R.open_session m ~user:"alice" ~roles:[ "employee" ]) in
  Alcotest.(check bool) "least privilege" false
    (R.check_session m s2 { R.action = "sign"; resource = "x" });
  err "unauthorized role" (R.open_session m ~user:"bob" ~roles:[ "manager" ]);
  err "unknown user" (R.open_session m ~user:"zz" ~roles:[])

let () =
  Alcotest.run "rbac"
    [
      ( "rbac",
        [
          Alcotest.test_case "roles/users" `Quick test_roles_and_users;
          Alcotest.test_case "idempotent" `Quick test_idempotent_adds;
          Alcotest.test_case "assignment validation" `Quick test_assignment_validation;
          Alcotest.test_case "inheritance validation" `Quick test_inheritance_validation;
          Alcotest.test_case "junior closure" `Quick test_junior_closure;
          Alcotest.test_case "authorized roles" `Quick test_authorized_roles;
          Alcotest.test_case "permission inheritance" `Quick test_permission_inheritance;
          Alcotest.test_case "no reverse inheritance" `Quick test_permission_no_reverse_inheritance;
          Alcotest.test_case "wildcards" `Quick test_wildcards;
          Alcotest.test_case "grants" `Quick test_grant_validation_and_idempotence;
          Alcotest.test_case "sessions" `Quick test_sessions;
        ] );
    ]
