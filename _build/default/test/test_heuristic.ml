(* Tests for the branch-and-bound heuristic: optimality on the grid, the
   individual heuristics H1-H4 preserving the optimum, greedy seeding, and
   the node budget. *)

module Problem = Optimize.Problem
module State = Optimize.State
module H = Optimize.Heuristic
module Greedy = Optimize.Greedy
module F = Lineage.Formula
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "b" i
let v i = F.var (t i)

(* exhaustive reference: enumerate every grid assignment *)
let brute_force_optimum problem =
  let nb = Problem.num_bases problem in
  let st = State.create problem in
  let levels = Array.init nb (fun bid -> Array.of_list (Problem.grid_levels problem bid)) in
  let best = ref infinity in
  let rec go bid =
    if State.satisfied_count st >= Problem.required problem then begin
      if State.cost st < !best then best := State.cost st
    end
    else if bid < nb then begin
      Array.iter
        (fun level ->
          State.set_base st bid level;
          go (bid + 1))
        levels.(bid);
      State.set_base st bid (Problem.base problem bid).Problem.p0
    end
  in
  go 0;
  !best

let tiny ~seed =
  Workload.Synth.small_instance ~num_bases:4 ~num_results:3 ~required:2
    ~bases_per_result:3 ~seed ()

let test_paper_example_optimal () =
  let bases =
    [
      { Problem.tid = t 2; p0 = 0.3; cap = 1.0; cost = C.linear ~rate:1000.0 };
      { Problem.tid = t 3; p0 = 0.4; cap = 1.0; cost = C.linear ~rate:100.0 };
      { Problem.tid = t 13; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:2000.0 };
    ]
  in
  let formula = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p = Problem.make_exn ~beta:0.06 ~required:1 ~bases ~formulas:[ formula ] () in
  let out = H.solve p in
  Alcotest.(check bool) "optimal flag" true out.H.optimal;
  Alcotest.(check (float 1e-6)) "optimal cost 10" 10.0 out.H.cost;
  match out.H.solution with
  | Some [ (tid, level) ] ->
    Alcotest.(check string) "raises tuple 03" "b#3" (Tid.to_string tid);
    Alcotest.(check (float 1e-9)) "to 0.5" 0.5 level
  | _ -> Alcotest.fail "expected a single increment"

let test_matches_brute_force () =
  for seed = 0 to 9 do
    let p = tiny ~seed in
    let reference = brute_force_optimum p in
    let out = H.solve p in
    let got = out.H.cost in
    if reference = infinity then
      Alcotest.(check bool) "both infeasible" true (out.H.solution = None)
    else
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: %.4f = %.4f" seed got reference)
        true
        (Float.abs (got -. reference) < 1e-6)
  done

let test_each_heuristic_preserves_optimum () =
  let variants =
    [
      ("naive", H.naive);
      ("h1", H.only `H1);
      ("h2", H.only `H2);
      ("h3", H.only `H3);
      ("h4", H.only `H4);
      ("all", H.all_heuristics);
    ]
  in
  for seed = 10 to 15 do
    let p = tiny ~seed in
    let reference = (H.solve p).H.cost in
    List.iter
      (fun (name, heuristics) ->
        let out =
          H.solve
            ~config:{ H.heuristics; initial_bound = None; max_nodes = None }
            p
        in
        Alcotest.(check bool)
          (Printf.sprintf "seed %d %s: %.4f = %.4f" seed name out.H.cost reference)
          true
          (Float.abs (out.H.cost -. reference) < 1e-6
          || (out.H.cost = infinity && reference = infinity)))
      variants
  done

let test_heuristics_reduce_nodes () =
  (* "All" must explore no more nodes than "Naive" on a non-trivial case *)
  let p =
    Workload.Synth.small_instance ~num_bases:6 ~num_results:5 ~required:3
      ~bases_per_result:4 ~seed:77 ()
  in
  let naive =
    H.solve ~config:{ H.heuristics = H.naive; initial_bound = None; max_nodes = None } p
  in
  let all = H.solve p in
  Alcotest.(check bool)
    (Printf.sprintf "nodes %d <= %d" all.H.nodes naive.H.nodes)
    true
    (all.H.nodes <= naive.H.nodes)

let test_greedy_seed_preserves_optimum_and_prunes () =
  for seed = 16 to 20 do
    let p = tiny ~seed in
    let plain = H.solve p in
    let g = Greedy.solve p in
    if g.Greedy.feasible then begin
      let seeded =
        H.solve
          ~config:
            {
              H.heuristics = H.all_heuristics;
              initial_bound = Some g.Greedy.cost;
              max_nodes = None;
            }
          p
      in
      (* seeding with a feasible bound cannot hide the optimum... *)
      let seeded_cost =
        match seeded.H.solution with
        | Some _ -> seeded.H.cost
        | None -> g.Greedy.cost (* nothing cheaper than greedy exists *)
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: seeded %.4f = plain %.4f" seed seeded_cost plain.H.cost)
        true
        (Float.abs (seeded_cost -. plain.H.cost) < 1e-6);
      (* ...and should not explore more nodes *)
      Alcotest.(check bool) "fewer or equal nodes" true
        (seeded.H.nodes <= plain.H.nodes)
    end
  done

let test_greedy_never_beats_heuristic () =
  for seed = 21 to 30 do
    let p = tiny ~seed in
    let h = H.solve p in
    let g = Greedy.solve p in
    if g.Greedy.feasible && h.H.solution <> None then
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: greedy %.4f >= optimal %.4f" seed g.Greedy.cost h.H.cost)
        true
        (g.Greedy.cost >= h.H.cost -. 1e-6)
  done

let test_node_budget_cuts_off () =
  let p =
    Workload.Synth.small_instance ~num_bases:10 ~num_results:8 ~required:4
      ~bases_per_result:5 ~seed:50 ()
  in
  let out =
    H.solve
      ~config:{ H.heuristics = H.naive; initial_bound = None; max_nodes = Some 50 }
      p
  in
  Alcotest.(check bool) "not optimal" false out.H.optimal;
  Alcotest.(check bool) "respected budget" true (out.H.nodes <= 51)

let test_infeasible () =
  let p =
    Problem.make_exn ~beta:0.9 ~required:1
      ~bases:[ { Problem.tid = t 0; p0 = 0.1; cap = 0.5; cost = C.linear ~rate:1.0 } ]
      ~formulas:[ v 0 ] ()
  in
  let out = H.solve p in
  Alcotest.(check bool) "no solution" true (out.H.solution = None);
  Alcotest.(check bool) "cost infinite" true (out.H.cost = infinity);
  Alcotest.(check bool) "still optimal (complete search)" true out.H.optimal

let test_cost_beta_ordering_key () =
  (* b0 cheap and directly satisfying; b1 can never satisfy alone *)
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:
        [
          { Problem.tid = t 0; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:10.0 };
          { Problem.tid = t 1; p0 = 0.1; cap = 0.3; cost = C.linear ~rate:10.0 };
        ]
      ~formulas:[ F.disj [ v 0; v 1 ] ]
      ()
  in
  let k0 = H.compute_cost_beta p 0 in
  let k1 = H.compute_cost_beta p 1 in
  (* b0 reaches beta at level 0.5 already (the other disjunct sits at 0.1):
     1 - 0.5*0.9 = 0.55 > 0.5, for cost 10 * (0.5 - 0.1) = 4 *)
  Alcotest.(check (float 1e-6)) "direct cost" 4.0 k0;
  (* b1 cannot reach beta: Fmax = 1 - 0.7*0.9 = 0.37 at its cap 0.3, so the
     paper's adjustment scales the cap cost 10*(0.3-0.1) = 2 by
     beta / Fmax = 0.5 / 0.37 *)
  Alcotest.(check (float 1e-6)) "scaled key" (2.0 /. (0.37 /. 0.5)) k1

let () =
  Alcotest.run "heuristic"
    [
      ( "branch-and-bound",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example_optimal;
          Alcotest.test_case "matches brute force" `Slow test_matches_brute_force;
          Alcotest.test_case "heuristics preserve optimum" `Slow
            test_each_heuristic_preserves_optimum;
          Alcotest.test_case "heuristics prune" `Quick test_heuristics_reduce_nodes;
          Alcotest.test_case "greedy seeding" `Slow test_greedy_seed_preserves_optimum_and_prunes;
          Alcotest.test_case "greedy never beats optimum" `Quick test_greedy_never_beats_heuristic;
          Alcotest.test_case "node budget" `Quick test_node_budget_cuts_off;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "cost-beta key" `Quick test_cost_beta_ordering_key;
        ] );
    ]
