(* Tests for schema construction, column resolution and combinators. *)

module S = Relational.Schema
module V = Relational.Value

let mk = S.of_list

let test_duplicate_rejected () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (mk [ ("a", V.TInt); ("A", V.TString) ]);
       false
     with Invalid_argument _ -> true)

let test_basic_accessors () =
  let s = mk [ ("a", V.TInt); ("b", V.TString) ] in
  Alcotest.(check int) "arity" 2 (S.arity s);
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (S.column_names s);
  Alcotest.(check string) "column_at" "b" (S.column_at s 1).S.cname

let test_bare_lookup () =
  let s = mk [ ("a", V.TInt); ("b", V.TString) ] in
  (match S.find_index s "b" with
  | Ok 1 -> ()
  | _ -> Alcotest.fail "expected index 1");
  match S.find_index s "z" with
  | Error (S.Not_found_col "z") -> ()
  | _ -> Alcotest.fail "expected not found"

let test_case_insensitive_lookup () =
  let s = mk [ ("Funding", V.TFloat) ] in
  match S.find_index s "funding" with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "case-insensitive lookup failed"

let test_qualified_lookup () =
  let s = mk [ ("T.a", V.TInt); ("U.a", V.TInt); ("b", V.TString) ] in
  (match S.find_index s "T.a" with
  | Ok 0 -> ()
  | _ -> Alcotest.fail "qualified exact match");
  (match S.find_index s "a" with
  | Error (S.Ambiguous ("a", cols)) ->
    Alcotest.(check (list string)) "ambiguous candidates" [ "T.a"; "U.a" ] cols
  | _ -> Alcotest.fail "expected ambiguity");
  match S.find_index s "U.b" with
  | Ok 2 -> () (* bare schema column matches any qualifier's base name *)
  | _ -> Alcotest.fail "qualified lookup of bare column"

let test_find_index_exn_messages () =
  let s = mk [ ("a", V.TInt) ] in
  Alcotest.(check bool) "exn on missing" true
    (try
       ignore (S.find_index_exn s "zz");
       false
     with Invalid_argument msg -> String.length msg > 0)

let test_qualify () =
  let s = mk [ ("a", V.TInt); ("T.b", V.TString) ] in
  let q = S.qualify "R" s in
  Alcotest.(check (list string)) "requalified" [ "R.a"; "R.b" ] (S.column_names q)

let test_unqualified () =
  Alcotest.(check string) "strips" "c" (S.unqualified "R.c");
  Alcotest.(check string) "bare unchanged" "c" (S.unqualified "c")

let test_concat () =
  let a = mk [ ("x", V.TInt) ] and b = mk [ ("y", V.TString) ] in
  let c = S.concat a b in
  Alcotest.(check (list string)) "concat order" [ "x"; "y" ] (S.column_names c);
  Alcotest.(check bool) "duplicate in concat rejected" true
    (try
       ignore (S.concat a a);
       false
     with Invalid_argument _ -> true)

let test_project () =
  let s = mk [ ("a", V.TInt); ("b", V.TString); ("c", V.TBool) ] in
  match S.project s [ "c"; "a" ] with
  | Ok (s', idx) ->
    Alcotest.(check (list string)) "projected names" [ "c"; "a" ] (S.column_names s');
    Alcotest.(check (array int)) "source indices" [| 2; 0 |] idx
  | Error _ -> Alcotest.fail "projection failed"

let test_project_missing () =
  let s = mk [ ("a", V.TInt) ] in
  match S.project s [ "nope" ] with
  | Error (S.Not_found_col "nope") -> ()
  | _ -> Alcotest.fail "expected error"

let test_restrict_to_indices () =
  let s = mk [ ("a", V.TInt); ("b", V.TString) ] in
  let r = S.restrict_to_indices s [| 1 |] in
  Alcotest.(check (list string)) "restricted" [ "b" ] (S.column_names r)

let test_union_compatible () =
  let a = mk [ ("a", V.TInt); ("b", V.TString) ] in
  let b = mk [ ("x", V.TInt); ("y", V.TString) ] in
  let c = mk [ ("x", V.TString); ("y", V.TString) ] in
  Alcotest.(check bool) "names may differ" true (S.union_compatible a b);
  Alcotest.(check bool) "types must match" false (S.union_compatible a c);
  Alcotest.(check bool) "arity must match" false
    (S.union_compatible a (mk [ ("a", V.TInt) ]))

let test_equal () =
  let a = mk [ ("a", V.TInt) ] in
  Alcotest.(check bool) "case-insensitive equal" true
    (S.equal a (mk [ ("A", V.TInt) ]));
  Alcotest.(check bool) "different type" false (S.equal a (mk [ ("a", V.TFloat) ]))

let test_to_string () =
  let s = mk [ ("a", V.TInt); ("b", V.TString) ] in
  Alcotest.(check string) "rendering" "a:int, b:string" (S.to_string s)

let () =
  Alcotest.run "schema"
    [
      ( "schema",
        [
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_rejected;
          Alcotest.test_case "accessors" `Quick test_basic_accessors;
          Alcotest.test_case "bare lookup" `Quick test_bare_lookup;
          Alcotest.test_case "case-insensitive" `Quick test_case_insensitive_lookup;
          Alcotest.test_case "qualified lookup" `Quick test_qualified_lookup;
          Alcotest.test_case "exn messages" `Quick test_find_index_exn_messages;
          Alcotest.test_case "qualify" `Quick test_qualify;
          Alcotest.test_case "unqualified" `Quick test_unqualified;
          Alcotest.test_case "concat" `Quick test_concat;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "project missing" `Quick test_project_missing;
          Alcotest.test_case "restrict" `Quick test_restrict_to_indices;
          Alcotest.test_case "union compatible" `Quick test_union_compatible;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "to_string" `Quick test_to_string;
        ] );
    ]
