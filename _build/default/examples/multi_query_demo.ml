(* Multi-query strategy finding (the extension sketched at the end of §4.3).

   Two analysts issue queries over the same database within a short period.
   Both queries fall short of their policy thresholds, and their
   intermediate results share base tuples.  Planning the confidence
   increments jointly is cheaper than fixing each query in isolation,
   because one increment can help results of both queries.

   The demo builds two single-query instances sharing base tuples, solves
   them (a) independently with the two-phase greedy and (b) jointly with
   the multi-query solver, and compares total costs. *)

module Tid = Lineage.Tid
module Formula = Lineage.Formula
module Problem = Optimize.Problem

let base tid p0 cost = { Problem.tid; p0; cap = 1.0; cost }

let () =
  (* one base tuple shared by both queries, plus one private tuple each;
     the shared tuple is slightly more expensive, so each query alone
     prefers its private tuple -- but jointly one shared increment serves
     both queries at once *)
  let shared = Tid.make "shared" 0 in
  let a_priv = Tid.make "queryA" 0 in
  let b_priv = Tid.make "queryB" 0 in
  let shared_base = base shared 0.30 (Cost.Cost_model.linear ~rate:60.0) in
  let pool = [ shared_base; base a_priv 0.30 (Cost.Cost_model.linear ~rate:50.0);
               base b_priv 0.30 (Cost.Cost_model.linear ~rate:50.0) ] in
  let qa =
    Problem.make_exn ~beta:0.6 ~required:1
      ~bases:[ List.nth pool 0; List.nth pool 1 ]
      ~formulas:[ Formula.disj [ Formula.var a_priv; Formula.var shared ] ]
      ()
  in
  let qb =
    Problem.make_exn ~beta:0.6 ~required:1
      ~bases:[ List.nth pool 0; List.nth pool 2 ]
      ~formulas:[ Formula.disj [ Formula.var b_priv; Formula.var shared ] ]
      ()
  in
  (* (a) independent solving *)
  let out_a = Optimize.Greedy.solve qa in
  let out_b = Optimize.Greedy.solve qb in
  Printf.printf "Independent greedy:\n";
  Printf.printf "  query A: cost %.2f, feasible %b\n" out_a.Optimize.Greedy.cost
    out_a.Optimize.Greedy.feasible;
  Printf.printf "  query B: cost %.2f, feasible %b\n" out_b.Optimize.Greedy.cost
    out_b.Optimize.Greedy.feasible;
  (* naive combination: take the max target per shared tuple *)
  let merged = Hashtbl.create 8 in
  List.iter
    (fun (tid, p) ->
      let cur = Option.value ~default:0.0 (Hashtbl.find_opt merged tid) in
      if p > cur then Hashtbl.replace merged tid p)
    (out_a.Optimize.Greedy.solution @ out_b.Optimize.Greedy.solution);
  let independent_cost =
    Hashtbl.fold
      (fun tid p acc ->
        let b = List.find (fun b -> Tid.equal b.Problem.tid tid) pool in
        acc +. Cost.Cost_model.eval b.Problem.cost ~from_:b.Problem.p0 ~to_:p)
      merged 0.0
  in
  Printf.printf "  combined (max per shared tuple): cost %.2f\n\n"
    independent_cost;
  (* (b) joint solving *)
  match Optimize.Multi_query.combine [ qa; qb ] with
  | Error msg -> failwith msg
  | Ok joint ->
    let out = Optimize.Multi_query.solve joint in
    Printf.printf "Joint multi-query greedy:\n";
    Printf.printf "  cost %.2f, feasible %b, iterations %d\n"
      out.Optimize.Multi_query.cost out.Optimize.Multi_query.feasible
      out.Optimize.Multi_query.iterations;
    Printf.printf "  satisfied per query: %s\n"
      (String.concat ", "
         (List.map string_of_int out.Optimize.Multi_query.satisfied_per_query));
    List.iter
      (fun (tid, p) ->
        Printf.printf "  raise %s to %.2f\n" (Tid.to_string tid) p)
      out.Optimize.Multi_query.solution;
    if out.Optimize.Multi_query.cost <= independent_cost +. 1e-9 then
      Printf.printf
        "\nJoint planning saved %.2f (%.0f%%) over independent planning.\n"
        (independent_cost -. out.Optimize.Multi_query.cost)
        (100.0
        *. (independent_cost -. out.Optimize.Multi_query.cost)
        /. Float.max independent_cost 1e-9)
