(* Supply-chain risk review: a tour of the engine's query surface over
   confidence-annotated data.

   - a named *quality view* (RiskySuppliers) encapsulating the risk
     criterion (the quality-view idea of Missier et al., which the paper
     cites as closest related work);
   - an IN subquery whose probabilistic membership flows into lineage;
   - a LEFT JOIN whose padded rows carry negated lineage ("supplier with
     no certification on file");
   - expected-value aggregates (ECOUNT/ESUM) - probabilistic roll-ups;
   - the PCQE policy loop on top: procurement decisions need confidence
     above 0.5, and the engine proposes the cheapest audit plan when too
     little survives. *)

module Db = Relational.Database
module V = Relational.Value
module S = Relational.Schema
module Tid = Lineage.Tid

let ok = function Ok x -> x | Error m -> failwith m

let build () =
  let suppliers =
    Relational.Relation.create "Suppliers"
      (S.of_list [ ("name", V.TString); ("region", V.TString); ("rating", V.TInt) ])
  in
  let shipments =
    Relational.Relation.create "Shipments"
      (S.of_list [ ("supplier", V.TString); ("units", V.TInt) ])
  in
  let certs =
    Relational.Relation.create "Certs"
      (S.of_list [ ("supplier", V.TString); ("standard", V.TString) ])
  in
  let db =
    Db.add_relation (Db.add_relation (Db.add_relation Db.empty suppliers) shipments) certs
  in
  let ins db rel vs conf = fst (Db.insert db rel vs ~conf) in
  (* supplier master data of mixed quality *)
  let db = ins db "Suppliers" [ V.String "acme"; V.String "EU"; V.Int 2 ] 0.9 in
  let db = ins db "Suppliers" [ V.String "blur"; V.String "EU"; V.Int 5 ] 0.4 in
  let db = ins db "Suppliers" [ V.String "csky"; V.String "US"; V.Int 4 ] 0.7 in
  (* shipment ledger *)
  let db = ins db "Shipments" [ V.String "acme"; V.Int 100 ] 0.95 in
  let db = ins db "Shipments" [ V.String "acme"; V.Int 50 ] 0.8 in
  let db = ins db "Shipments" [ V.String "blur"; V.Int 200 ] 0.5 in
  let db = ins db "Shipments" [ V.String "csky"; V.Int 80 ] 0.6 in
  (* certification registry (incomplete) *)
  let db = ins db "Certs" [ V.String "acme"; V.String "ISO9001" ] 0.85 in
  db

let print_result db title sql views =
  Printf.printf "\n=== %s ===\n%s\n" title sql;
  match Relational.Sql_planner.compile sql with
  | Error msg -> failwith msg
  | Ok plan -> (
    let plan = Relational.Views.expand views plan in
    match Relational.Eval.run db plan with
    | Error msg -> failwith msg
    | Ok res ->
      print_endline (Relational.Eval.to_string res);
      List.iter
        (fun (row, conf) ->
          Printf.printf "  confidence %.4f : %s\n" conf
            (Relational.Tuple.to_string row.Relational.Eval.tuple))
        (Relational.Eval.with_confidence db res))

let () =
  let db = build () in
  (* a quality view: suppliers whose master data says "risky" *)
  let views =
    ok
      (Relational.Views.of_sql Relational.Views.empty ~name:"RiskySuppliers"
         "SELECT name FROM Suppliers WHERE rating >= 4")
  in
  print_result db "Quality view: risky suppliers" "SELECT * FROM RiskySuppliers"
    views;
  (* IN subquery: shipments from risky suppliers; the membership event is
     part of the lineage, so the confidence reflects both the shipment and
     the supplier's riskiness being real *)
  print_result db "Shipments from risky suppliers (IN subquery)"
    "SELECT supplier, units FROM Shipments WHERE supplier IN (SELECT name \
     FROM RiskySuppliers)"
    views;
  (* LEFT JOIN: which suppliers lack certification?  The padded rows carry
     negated lineage: present exactly when no cert record is real *)
  print_result db "Certification gaps (LEFT JOIN ... IS NULL)"
    "SELECT Suppliers.name, Certs.standard FROM Suppliers LEFT JOIN Certs ON \
     Suppliers.name = Certs.supplier WHERE Certs.standard IS NULL"
    views;
  (* expected-value roll-up *)
  print_result db "Expected shipment volume per supplier (ESUM/ECOUNT)"
    "SELECT supplier, ECOUNT(*) AS expected_shipments, ESUM(units) AS \
     expected_units FROM Shipments GROUP BY supplier"
    views;
  (* the policy loop on top *)
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "buyer") "dana" in
    let m = ok (assign_user m ~user:"dana" ~role:"buyer") in
    ok (grant m ~role:"buyer" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"buyer" ~purpose:"procurement" ~beta:0.5 ]
  in
  (* auditing the shipment ledger is cheap; auditing supplier master data
     needs an on-site visit *)
  let cost_of tid =
    if tid.Tid.rel = "Shipments" then Cost.Cost_model.linear ~rate:50.0
    else Cost.Cost_model.logarithmic ~scale:40.0
  in
  let ctx = Pcqe.Engine.make_context ~views ~cost_of ~db ~rbac ~policies () in
  let request =
    {
      Pcqe.Engine.query =
        Pcqe.Query.sql
          "SELECT supplier, units FROM Shipments WHERE supplier IN (SELECT \
           name FROM RiskySuppliers)";
      user = "dana";
      purpose = "procurement";
      perc = 1.0;
    }
  in
  print_endline "\n=== Buyer, purpose 'procurement' (beta = 0.5) ===";
  match Pcqe.Engine.answer ctx request with
  | Error msg -> failwith msg
  | Ok resp -> (
    print_string (Pcqe.Report.response_to_string resp);
    match resp.Pcqe.Engine.proposal with
    | None -> ()
    | Some proposal ->
      let ctx' = Pcqe.Engine.accept_proposal ctx proposal in
      print_endline "\n=== After the audit plan is executed ===";
      (match Pcqe.Engine.answer ctx' request with
      | Ok resp' -> print_string (Pcqe.Report.response_to_string resp')
      | Error msg -> failwith msg))
