examples/supply_chain.ml: Cost Lineage List Pcqe Printf Rbac Relational
