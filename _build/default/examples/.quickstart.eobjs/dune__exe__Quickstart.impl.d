examples/quickstart.ml: Pcqe Rbac Relational
