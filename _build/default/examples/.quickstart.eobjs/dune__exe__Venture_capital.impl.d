examples/venture_capital.ml: Cost Lineage Pcqe Rbac Relational Result
