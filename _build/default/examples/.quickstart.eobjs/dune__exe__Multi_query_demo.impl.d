examples/multi_query_demo.ml: Cost Float Hashtbl Lineage List Optimize Option Printf String
