examples/venture_capital.mli:
