examples/healthcare.ml: Cost Lineage List Pcqe Printf Rbac Relational Trust
