examples/healthcare.mli:
