examples/quickstart.mli:
