examples/multi_query_demo.mli:
