(* Quickstart: the smallest end-to-end PCQE session.

   1. build a database whose tuples carry confidence values,
   2. set up RBAC and one confidence policy,
   3. run a SQL query -- results are filtered by confidence,
   4. accept the engine's improvement proposal and re-run. *)

let () =
  (* a single-relation database: sensor readings with confidences *)
  let readings =
    Relational.Relation.create "Readings"
      (Relational.Schema.of_list
         [ ("sensor", Relational.Value.TString);
           ("celsius", Relational.Value.TFloat) ])
  in
  let db = Relational.Database.add_relation Relational.Database.empty readings in
  let insert db vs conf = fst (Relational.Database.insert db "Readings" vs ~conf) in
  let open Relational.Value in
  let db = insert db [ String "s1"; Float 21.5 ] 0.9 in
  let db = insert db [ String "s2"; Float 48.0 ] 0.4 in
  let db = insert db [ String "s3"; Float 47.2 ] 0.55 in
  (* RBAC: one analyst who may read everything *)
  let ok = function Ok x -> x | Error m -> failwith m in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "analyst") "ana" in
    let m = ok (assign_user m ~user:"ana" ~role:"analyst") in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  (* confidence policy: alerting needs confidence above 0.5 *)
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"alerting" ~beta:0.5 ]
  in
  let ctx = Pcqe.Engine.make_context ~db ~rbac ~policies () in
  let request =
    { Pcqe.Engine.query =
        Pcqe.Query.sql "SELECT sensor, celsius FROM Readings WHERE celsius > 45";
      user = "ana";
      purpose = "alerting";
      perc = 1.0 }
  in
  match Pcqe.Engine.answer ctx request with
  | Error msg -> failwith msg
  | Ok resp ->
    print_string (Pcqe.Report.response_to_string resp);
    (match resp.Pcqe.Engine.proposal with
    | None -> ()
    | Some proposal ->
      let ctx' = Pcqe.Engine.accept_proposal ctx proposal in
      print_endline "\nAfter accepting the improvement proposal:";
      (match Pcqe.Engine.answer ctx' request with
      | Error msg -> failwith msg
      | Ok resp' -> print_string (Pcqe.Report.response_to_string resp')))
