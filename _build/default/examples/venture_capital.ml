(* The paper's running example (Section 3.1, Tables 1-3).

   A venture-capital company stores funding proposals and company financials
   with per-tuple confidence values.  A manager asks for the income of
   companies whose proposals need less than one million dollars.  The join
   result for company StartX derives from proposal tuples 02 and 03 and
   info tuple 13, giving confidence

     p38 = (p02 + p03 - p02*p03) * p13 = 0.58 * 0.1 = 0.058

   which policy P2 = <Manager, investment, 0.06> filters out.  Strategy
   finding then proposes the cheap fix: raise tuple 03 from 0.4 to 0.5
   (cost 10) rather than tuple 02 from 0.3 to 0.4 (cost 100), lifting the
   result to 0.065 > 0.06. *)

module Db = Relational.Database
module Tid = Lineage.Tid

let ( let* ) = Result.bind

let build_database () =
  let proposal =
    Relational.Relation.create "Proposal"
      (Relational.Schema.of_list
         [
           ("Company", Relational.Value.TString);
           ("Proposal", Relational.Value.TString);
           ("Funding", Relational.Value.TFloat);
         ])
  in
  let info =
    Relational.Relation.create "CompanyInfo"
      (Relational.Schema.of_list
         [
           ("Company", Relational.Value.TString);
           ("Income", Relational.Value.TFloat);
         ])
  in
  let db = Db.add_relation (Db.add_relation Db.empty proposal) info in
  let insert db rel vs conf = fst (Db.insert db rel vs ~conf) in
  let open Relational.Value in
  (* Table 1: Proposal (tuple ids 01-04 in the paper; rows 0-3 here) *)
  let db =
    db
    |> fun db ->
    insert db "Proposal" [ String "Alpha"; String "AI assistant"; Float 2_000_000.0 ] 0.5
    |> fun db ->
    insert db "Proposal" [ String "StartX"; String "mobile app"; Float 800_000.0 ] 0.3
    |> fun db ->
    insert db "Proposal" [ String "StartX"; String "web platform"; Float 500_000.0 ] 0.4
    |> fun db ->
    insert db "Proposal" [ String "Beta"; String "robotics"; Float 1_500_000.0 ] 0.6
  in
  (* Table 2: CompanyInfo *)
  let db =
    db
    |> fun db ->
    insert db "CompanyInfo" [ String "Alpha"; Float 5_000_000.0 ] 0.2
    |> fun db ->
    insert db "CompanyInfo" [ String "Beta"; Float 3_000_000.0 ] 0.3
    |> fun db ->
    insert db "CompanyInfo" [ String "StartX"; Float 1_000_000.0 ] 0.1
  in
  db

(* Tuple 02 is row 1, tuple 03 is row 2 of Proposal; costs per the paper:
   +0.1 confidence costs 100 for tuple 02 and 10 for tuple 03. *)
let cost_of tid =
  if tid.Tid.rel = "Proposal" && tid.Tid.row = 1 then
    Cost.Cost_model.linear ~rate:1000.0
  else if tid.Tid.rel = "Proposal" && tid.Tid.row = 2 then
    Cost.Cost_model.linear ~rate:100.0
  else Cost.Cost_model.linear ~rate:2000.0

let build_rbac () =
  let open Rbac.Core_rbac in
  let m = empty in
  let m = add_role (add_role m "Manager") "Secretary" in
  let m = add_user (add_user m "alice") "bob" in
  let ok = function Ok x -> x | Error msg -> failwith msg in
  let m = ok (assign_user m ~user:"alice" ~role:"Manager") in
  let m = ok (assign_user m ~user:"bob" ~role:"Secretary") in
  let m = ok (grant m ~role:"Manager" { action = "select"; resource = "*" }) in
  let m = ok (grant m ~role:"Secretary" { action = "select"; resource = "*" }) in
  m

let policies =
  Rbac.Policy.of_list
    [
      Rbac.Policy.make ~role:"Secretary" ~purpose:"analysis" ~beta:0.05;
      Rbac.Policy.make ~role:"Manager" ~purpose:"investment" ~beta:0.06;
    ]

let query =
  Pcqe.Query.sql
    "SELECT CompanyInfo.Company, CompanyInfo.Income FROM Proposal JOIN \
     CompanyInfo ON Proposal.Company = CompanyInfo.Company WHERE \
     Proposal.Funding < 1000000"

let run () =
  let db = build_database () in
  let ctx =
    Pcqe.Engine.make_context ~cost_of ~db ~rbac:(build_rbac ()) ~policies ()
  in
  print_endline "=== Base tables ===";
  print_endline (Relational.Relation.to_string (Db.relation_exn db "Proposal"));
  print_endline (Relational.Relation.to_string (Db.relation_exn db "CompanyInfo"));
  (* the secretary analyses data under the laxer policy P1 *)
  print_endline "\n=== Secretary, purpose 'analysis' (P1: beta = 0.05) ===";
  let* resp_secretary =
    Pcqe.Engine.answer ctx
      { Pcqe.Engine.query; user = "bob"; purpose = "analysis"; perc = 1.0 }
  in
  print_string (Pcqe.Report.response_to_string resp_secretary);
  (* the manager's stricter policy P2 filters the result out *)
  print_endline "\n=== Manager, purpose 'investment' (P2: beta = 0.06) ===";
  let* resp_manager =
    Pcqe.Engine.answer ctx
      { Pcqe.Engine.query; user = "alice"; purpose = "investment"; perc = 1.0 }
  in
  print_string (Pcqe.Report.response_to_string resp_manager);
  (* accept the proposal: quality improvement updates the database *)
  let* () =
    match resp_manager.Pcqe.Engine.proposal with
    | None -> Error "expected an improvement proposal"
    | Some proposal ->
      (* lead-time planning (the paper's future-work sketch): verifying a
         proposal with the startup takes ~20 days per 0.1 of confidence *)
      let time_of _ = Cost.Cost_model.linear ~rate:200.0 in
      let plan =
        Pcqe.Lead_time.schedule ~workers:1
          (Pcqe.Lead_time.tasks_of_proposal ~time_of ctx.Pcqe.Engine.db proposal)
      in
      print_endline "\n=== Lead-time estimate for the improvement (days) ===";
      print_string (Pcqe.Lead_time.to_string plan);
      let ctx' = Pcqe.Engine.accept_proposal ctx proposal in
      print_endline "\n=== Manager, after accepting the improvement ===";
      let* resp' =
        Pcqe.Engine.answer ctx'
          { Pcqe.Engine.query; user = "alice"; purpose = "investment"; perc = 1.0 }
      in
      print_string (Pcqe.Report.response_to_string resp');
      Ok ()
  in
  Ok ()

let () =
  match run () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("error: " ^ msg);
    exit 1
