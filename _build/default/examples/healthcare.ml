(* Health-care scenario from the paper's introduction (after Malin et al.):

   cancer-registry and administrative data are cheap to obtain but only
   moderately reliable; patient/physician survey data are more expensive;
   medical-record data are the most expensive and the most accurate.  The
   required confidence depends on the purpose: hypothesis generation
   tolerates medium confidence, evaluating treatment effectiveness does not.

   This example also exercises the confidence-assignment substrate
   (lib/trust): per-tuple confidences are derived from provenance records
   (source trust, collection method, staleness, corroboration) rather than
   set by hand, and each source gets a cost model matching the narrative
   (registry: binomial; survey: exponential; medical record: logarithmic -
   certainty is asymptotically expensive). *)

module Db = Relational.Database
module Tid = Lineage.Tid
module Prov = Trust.Provenance

let ok = function Ok x -> x | Error m -> failwith m

(* three data providers with different prior trust *)
let registry = Prov.make_provider "state-cancer-registry" ~trust:0.6
let survey_org = Prov.make_provider "patient-survey-program" ~trust:0.75
let hospital = Prov.make_provider "hospital-emr" ~trust:0.95

let record_for source kind ~age_days ~corroborations =
  Prov.make_record ~source
    ~path:[ Prov.make_step kind ~fidelity:(Prov.default_fidelity kind) ]
    ~age_days ~corroborations ()

let build () =
  let treatments =
    Relational.Relation.create "Treatments"
      (Relational.Schema.of_list
         [
           ("patient", Relational.Value.TString);
           ("therapy", Relational.Value.TString);
           ("source", Relational.Value.TString);
         ])
  in
  let outcomes =
    Relational.Relation.create "Outcomes"
      (Relational.Schema.of_list
         [
           ("patient", Relational.Value.TString);
           ("outcome", Relational.Value.TString);
           ("source", Relational.Value.TString);
         ])
  in
  let db = Db.add_relation (Db.add_relation Db.empty treatments) outcomes in
  let open Relational.Value in
  (* insert with a placeholder confidence; trust assignment overwrites it *)
  let add db rel vs prov =
    let db, tid = Db.insert db rel vs ~conf:0.5 in
    Trust.Assignment.assign db [ (tid, prov) ]
  in
  let db =
    add db "Treatments"
      [ String "p01"; String "chemo-A"; String "registry" ]
      (record_for registry Prov.Derived ~age_days:400.0 ~corroborations:0)
  in
  let db =
    add db "Treatments"
      [ String "p02"; String "chemo-A"; String "survey" ]
      (record_for survey_org Prov.Survey ~age_days:90.0 ~corroborations:1)
  in
  let db =
    add db "Treatments"
      [ String "p03"; String "chemo-B"; String "emr" ]
      (record_for hospital Prov.Direct_measurement ~age_days:30.0
         ~corroborations:2)
  in
  let db =
    add db "Outcomes"
      [ String "p01"; String "remission"; String "registry" ]
      (record_for registry Prov.Derived ~age_days:400.0 ~corroborations:0)
  in
  let db =
    add db "Outcomes"
      [ String "p02"; String "remission"; String "survey" ]
      (record_for survey_org Prov.Survey ~age_days:60.0 ~corroborations:0)
  in
  let db =
    add db "Outcomes"
      [ String "p03"; String "progression"; String "emr" ]
      (record_for hospital Prov.Direct_measurement ~age_days:10.0
         ~corroborations:1)
  in
  db

(* Improving registry data is cheap at first (binomial), survey follow-ups
   grow exponentially, and chart review approaches certainty only at
   diverging (logarithmic) cost. *)
let cost_of db tid =
  let source_of rel row =
    let r = Db.relation_exn db rel in
    match Relational.Relation.find r (Tid.make rel row) with
    | Some tup -> Relational.Value.to_string (Relational.Tuple.get tup 2)
    | None -> "emr"
  in
  match source_of tid.Tid.rel tid.Tid.row with
  | "registry" -> Cost.Cost_model.binomial ~scale:40.0
  | "survey" -> Cost.Cost_model.exponential ~scale:8.0 ~rate:2.0
  | _ -> Cost.Cost_model.logarithmic ~scale:25.0

let rbac () =
  let open Rbac.Core_rbac in
  let m = add_role (add_role empty "researcher") "oncologist" in
  let m = add_user (add_user m "rita") "omar" in
  let m = ok (assign_user m ~user:"rita" ~role:"researcher") in
  let m = ok (assign_user m ~user:"omar" ~role:"oncologist") in
  let m = ok (grant m ~role:"researcher" { action = "select"; resource = "*" }) in
  let m = ok (grant m ~role:"oncologist" { action = "select"; resource = "*" }) in
  m

let policies =
  Rbac.Policy.of_list
    [
      (* hypothesis generation tolerates medium confidence *)
      Rbac.Policy.make ~role:"researcher" ~purpose:"hypothesis-generation"
        ~beta:0.3;
      (* treatment-effectiveness evaluation needs accurate data *)
      Rbac.Policy.make ~role:"oncologist" ~purpose:"treatment-evaluation"
        ~beta:0.6;
    ]

let query =
  Pcqe.Query.sql
    "SELECT Treatments.therapy, Outcomes.outcome FROM Treatments JOIN \
     Outcomes ON Treatments.patient = Outcomes.patient"

let () =
  let db = build () in
  let ctx =
    Pcqe.Engine.make_context ~cost_of:(cost_of db) ~db ~rbac:(rbac ())
      ~policies ()
  in
  print_endline "=== Confidence values assigned from provenance ===";
  List.iter
    (fun (tid, c) -> Printf.printf "  %-14s %.3f\n" (Tid.to_string tid) c)
    (Db.all_confidences db);
  print_endline
    "\n=== Researcher, purpose 'hypothesis-generation' (beta = 0.3) ===";
  (match
     Pcqe.Engine.answer ctx
       {
         Pcqe.Engine.query;
         user = "rita";
         purpose = "hypothesis-generation";
         perc = 1.0;
       }
   with
  | Ok resp -> print_string (Pcqe.Report.response_to_string resp)
  | Error msg -> failwith msg);
  print_endline
    "\n=== Oncologist, purpose 'treatment-evaluation' (beta = 0.6) ===";
  match
    Pcqe.Engine.answer ctx
      {
        Pcqe.Engine.query;
        user = "omar";
        purpose = "treatment-evaluation";
        perc = 1.0;
      }
  with
  | Error msg -> failwith msg
  | Ok resp -> (
    print_string (Pcqe.Report.response_to_string resp);
    match resp.Pcqe.Engine.proposal with
    | None -> ()
    | Some proposal ->
      let ctx' = Pcqe.Engine.accept_proposal ctx proposal in
      print_endline "\n=== After the data-quality improvement ===";
      (match
         Pcqe.Engine.answer ctx'
           {
             Pcqe.Engine.query;
             user = "omar";
             purpose = "treatment-evaluation";
             perc = 1.0;
           }
       with
      | Ok resp' -> print_string (Pcqe.Report.response_to_string resp')
      | Error msg -> failwith msg))
