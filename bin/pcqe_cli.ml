(* pcqe — command-line front end for the PCQE engine.

   Subcommands:
     query   run a SQL query over CSV relations under a confidence policy
             (accepts --workspace DIR or individual --data/--rbac/
             --policies/--costs flags; --apply accepts the proposal)
     batch   answer a 'user|purpose|perc|SQL' request file through one
             warm serving session (prepared plans + confidence caches;
             --repeat N re-runs the file, --stats prints cache counters)
     repl    interactive SQL session over a workspace, with \prepare,
             \exec, \caches, \apply, \explain, \profile, \audit and \save
     explain profile a query through a warm serving session: annotated
             plan with per-stage elapsed time, allocation, cache
             attribution and confidence-ladder rungs
     plan    show the relational-algebra plan of a SQL query
     solve   generate a synthetic confidence-increment instance (Table 4
             parameters) and run one of the four strategy-finding
             algorithms on it
     export  print a relation (with confidences) back as CSV

   RBAC file format (one directive per line, '#' comments):
     role <name>
     user <name>
     assign <user> <role>
     inherit <senior> <junior>
     grant <role> <action> <resource>

   Policy file format: "<role>, <purpose>, <beta>" per line. *)

module Db = Relational.Database

let ( let* ) = Result.bind

let read_file path =
  try
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Ok s
  with Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* CSV data directory loading: every *.csv file becomes a relation named
   after the file *)

let load_data_dir dir =
  let* entries =
    try Ok (Sys.readdir dir) with Sys_error msg -> Error msg
  in
  let csvs =
    Array.to_list entries
    |> List.filter (fun f -> Filename.check_suffix f ".csv")
    |> List.sort String.compare
  in
  if csvs = [] then Error (Printf.sprintf "no .csv files in %s" dir)
  else
    List.fold_left
      (fun acc file ->
        let* db = acc in
        let name = Filename.remove_extension file in
        Relational.Csv.load_file db ~name (Filename.concat dir file))
      (Ok Db.empty) csvs

(* cost file: one "<tid> <cost spec>" per line, plus an optional
   "default <cost spec>" line; '#' comments allowed *)
let parse_costs text =
  let lines = String.split_on_char '\n' text in
  let table : (Lineage.Tid.t, Cost.Cost_model.t) Hashtbl.t = Hashtbl.create 16 in
  let default = ref (Cost.Cost_model.linear ~rate:100.0) in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) rest
      else
        match String.index_opt trimmed ' ' with
        | None -> Error (Printf.sprintf "costs line %d: missing spec" lineno)
        | Some i -> (
          let head = String.sub trimmed 0 i in
          let spec = String.sub trimmed i (String.length trimmed - i) in
          match Cost.Cost_model.parse spec with
          | Error msg -> Error (Printf.sprintf "costs line %d: %s" lineno msg)
          | Ok cost ->
            if head = "default" then begin
              default := cost;
              go (lineno + 1) rest
            end
            else (
              match Lineage.Tid.of_string head with
              | Some tid ->
                Hashtbl.replace table tid cost;
                go (lineno + 1) rest
              | None ->
                Error
                  (Printf.sprintf "costs line %d: bad tuple id %S" lineno head))))
  in
  let* () = go 1 lines in
  Ok
    (fun tid ->
      match Hashtbl.find_opt table tid with Some c -> c | None -> !default)

let solver_of_string = function
  | "heuristic" -> Ok Optimize.Solver.heuristic
  | "heuristic-seeded" -> Ok Optimize.Solver.heuristic_seeded
  | "greedy" -> Ok Optimize.Solver.greedy
  | "greedy-1p" ->
    Ok
      (Optimize.Solver.Greedy
         { Optimize.Greedy.default_config with two_phase = false })
  | "dnc" | "divide-and-conquer" -> Ok Optimize.Solver.divide_conquer
  | "annealing" -> Ok Optimize.Solver.annealing
  | s -> Error (Printf.sprintf "unknown solver %S" s)

(* ------------------------------------------------------------------ *)
(* query subcommand *)

(* --shards N: hash-partition the loaded database before serving.
   Pure routing — answers are bit-identical at any shard count — so it
   is applied once at context build, after the data is loaded. *)
let apply_shards shards ctx =
  match shards with
  | None -> Ok ctx
  | Some n when n >= 1 ->
    Ok { ctx with Pcqe.Engine.db = Db.with_shards ctx.Pcqe.Engine.db n }
  | Some n -> Error (Printf.sprintf "--shards %d: need at least 1" n)

let build_context workspace data_dir rbac_file policy_file costs_file solver =
  let* solver = solver_of_string solver in
  match workspace with
  | Some dir ->
    let* w = Pcqe.Workspace.load ~solver dir in
    Ok w.Pcqe.Workspace.context
  | None ->
    let need what = function
      | Some v -> Ok v
      | None ->
        Error
          (Printf.sprintf "either --workspace or --%s is required" what)
    in
    let* data_dir = need "data" data_dir in
    let* rbac_file = need "rbac" rbac_file in
    let* policy_file = need "policies" policy_file in
    let* db = load_data_dir data_dir in
    let* rbac_text = read_file rbac_file in
    let* rbac = Rbac.Config.parse rbac_text in
    let* policy_text = read_file policy_file in
    let* policies = Rbac.Policy.parse_store policy_text in
    let* cost_of =
      match costs_file with
      | None -> Ok (fun _ -> Cost.Cost_model.linear ~rate:100.0)
      | Some path ->
        let* text = read_file path in
        parse_costs text
    in
    Ok (Pcqe.Engine.make_context ~solver ~cost_of ~db ~rbac ~policies ())

(* when --trace or --metrics-out asks for observability, build a
   wall-clock handle and write the records out on exit in the requested
   exposition format *)
let with_obs ~trace ~metrics_out ~metrics_format f =
  let* write =
    match metrics_format with
    | "json" -> Ok (fun obs oc -> Obs.drain obs (Obs.Sink.jsonl oc))
    | "openmetrics" ->
      Ok
        (fun (obs : Obs.t) oc ->
          output_string oc (Obs.Metrics.to_openmetrics obs.Obs.metrics))
    | "text" -> Ok (fun obs oc -> output_string oc (Obs.report obs))
    | s ->
      Error
        (Printf.sprintf
           "--metrics-format %S: need text, json, or openmetrics" s)
  in
  if (not trace) && metrics_out = None then f None
  else begin
    let obs = Obs.wall () in
    let result = f (Some obs) in
    match metrics_out with
    | None -> result
    | Some path -> (
      try
        let oc = open_out path in
        write obs oc;
        close_out oc;
        result
      with Sys_error msg -> (
        match result with
        | Ok () -> Error (Printf.sprintf "cannot write metrics: %s" msg)
        | Error _ -> result))
  end

let deadline_spec_of_ms = function
  | None -> Ok Resilience.Deadline.No_deadline
  | Some ms when ms > 0.0 -> Ok (Resilience.Deadline.Wall_ms ms)
  | Some ms -> Error (Printf.sprintf "--deadline-ms %g: need a positive budget" ms)

(* --top K: rank released rows by confidence with a bounded heap (O(n log
   K)) instead of sorting the whole result. *)
let print_top_released k (resp : Pcqe.Engine.response) =
  let top =
    Topk.by_score ~k (fun r -> r.Pcqe.Engine.confidence) resp.Pcqe.Engine.released
  in
  Printf.printf "\nTop %d released by confidence:\n" k;
  List.iter
    (fun (r : Pcqe.Engine.released) ->
      Printf.printf "  %.6f  %s\n" r.Pcqe.Engine.confidence
        (Relational.Tuple.to_string r.Pcqe.Engine.tuple))
    top

let run_query workspace data_dir rbac_file policy_file costs_file user purpose
    perc solver jobs shards deadline_ms mc_fallback apply trace metrics_out
    metrics_format top sql =
  let result =
    let* ctx =
      build_context workspace data_dir rbac_file policy_file costs_file solver
    in
    let* ctx = apply_shards shards ctx in
    let ctx =
      match jobs with
      | None -> ctx
      | Some j -> { ctx with Pcqe.Engine.jobs = Exec.resolve_jobs ~jobs:j () }
    in
    let* deadline = deadline_spec_of_ms deadline_ms in
    let ctx = { ctx with Pcqe.Engine.deadline; mc_fallback } in
    with_obs ~trace ~metrics_out ~metrics_format (fun obs ->
        let ctx = { ctx with Pcqe.Engine.obs } in
        let request =
          { Pcqe.Engine.query = Pcqe.Query.sql sql; user; purpose; perc }
        in
        let* resp = Pcqe.Engine.answer ctx request in
        print_string (Pcqe.Report.response_to_string resp);
        (match top with Some k when k > 0 -> print_top_released k resp | _ -> ());
        (match (trace, obs) with
        | true, Some o ->
          print_string
            (Pcqe.Report.timed_to_string ~response:resp ~with_metrics:true o)
        | _ -> ());
        match (apply, resp.Pcqe.Engine.proposal) with
        | true, Some proposal ->
          let ctx' = Pcqe.Engine.accept_proposal ctx proposal in
          print_endline "\nApplying the improvement proposal...";
          let* resp' = Pcqe.Engine.answer ctx' request in
          print_string (Pcqe.Report.response_to_string resp');
          Ok ()
        | true, None ->
          print_endline "\n(no proposal to apply)";
          Ok ()
        | false, _ -> Ok ())
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* batch subcommand: answer a file of requests through one serving
   session, so repeated query texts share prepared plans and identical
   lineage classes share one confidence computation *)

(* request file: one "user|purpose|perc|SQL" per line, '#' comments *)
let parse_requests text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else
        match String.split_on_char '|' trimmed with
        | user :: purpose :: perc :: (_ :: _ as sql) -> (
          let sql = String.trim (String.concat "|" sql) in
          match float_of_string_opt (String.trim perc) with
          | Some perc when perc >= 0.0 && perc <= 1.0 ->
            let req =
              {
                Pcqe.Engine.query = Pcqe.Query.sql sql;
                user = String.trim user;
                purpose = String.trim purpose;
                perc;
              }
            in
            go (lineno + 1) (req :: acc) rest
          | _ ->
            Error
              (Printf.sprintf "requests line %d: bad perc %S (need [0,1])"
                 lineno (String.trim perc)))
        | _ ->
          Error
            (Printf.sprintf
               "requests line %d: need 'user|purpose|perc|SQL'" lineno))
  in
  go 1 [] lines

let print_batch_outcome i (req : Pcqe.Engine.request) = function
  | Error msg ->
    Printf.printf "[%d] %s/%s: error: %s\n" i req.Pcqe.Engine.user
      req.Pcqe.Engine.purpose msg
  | Ok (r : Pcqe.Engine.response) ->
    let released = List.length r.Pcqe.Engine.released in
    Printf.printf "[%d] %s/%s: released %d/%d, withheld %d%s%s%s\n" i
      req.Pcqe.Engine.user req.Pcqe.Engine.purpose released
      (released + r.Pcqe.Engine.withheld)
      r.Pcqe.Engine.withheld
      (match r.Pcqe.Engine.proposal with
      | Some p -> Printf.sprintf ", proposal cost %.2f" p.Pcqe.Engine.cost
      | None -> "")
      (if r.Pcqe.Engine.infeasible then ", infeasible" else "")
      (match r.Pcqe.Engine.degraded with
      | Some reason -> Printf.sprintf ", degraded (%s)" reason
      | None -> "")

let run_batch workspace data_dir rbac_file policy_file costs_file solver jobs
    shards deadline_ms mc_fallback repeat stats trace metrics_out metrics_format
    requests_file =
  let result =
    let* ctx =
      build_context workspace data_dir rbac_file policy_file costs_file solver
    in
    let* ctx = apply_shards shards ctx in
    let ctx =
      match jobs with
      | None -> ctx
      | Some j -> { ctx with Pcqe.Engine.jobs = Exec.resolve_jobs ~jobs:j () }
    in
    let* deadline = deadline_spec_of_ms deadline_ms in
    let ctx = { ctx with Pcqe.Engine.deadline; mc_fallback } in
    let* text = read_file requests_file in
    let* requests = parse_requests text in
    let* () =
      if requests = [] then
        Error (Printf.sprintf "no requests in %s" requests_file)
      else Ok ()
    in
    let* () =
      if repeat < 1 then
        Error (Printf.sprintf "--repeat %d: need at least 1" repeat)
      else Ok ()
    in
    with_obs ~trace ~metrics_out ~metrics_format (fun obs ->
        let ctx = { ctx with Pcqe.Engine.obs } in
        let session = Pcqe.Engine.Session.create ctx in
        for round = 1 to repeat do
          if repeat > 1 then Printf.printf "-- round %d\n" round;
          let responses = Pcqe.Engine.Session.batch session requests in
          List.iteri
            (fun i (req, resp) -> print_batch_outcome (i + 1) req resp)
            (List.combine requests responses)
        done;
        (match (trace, obs) with
        | true, Some o -> print_string (Obs.report o)
        | _ -> ());
        if stats then begin
          print_endline "serving caches:";
          List.iter
            (fun (k, v) -> Printf.printf "  %-28s %d\n" k v)
            (Pcqe.Engine.Session.cache_stats session)
        end;
        Ok ())
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* explain subcommand: the per-request profiler over a warm serving
   session.  The query is answered once to warm the caches, then again
   with profiling on — the profile therefore shows serving behaviour
   (plan-cache hits, reused confidence classes) rather than cold-start
   compilation, plus per-stage wall time and allocation and the
   confidence-ladder rungs the request used. *)

let run_explain workspace data_dir rbac_file policy_file costs_file user
    purpose perc solver jobs shards deadline_ms mc_fallback cold sql =
  let result =
    let* ctx =
      build_context workspace data_dir rbac_file policy_file costs_file solver
    in
    let* ctx = apply_shards shards ctx in
    let ctx =
      match jobs with
      | None -> ctx
      | Some j -> { ctx with Pcqe.Engine.jobs = Exec.resolve_jobs ~jobs:j () }
    in
    let* deadline = deadline_spec_of_ms deadline_ms in
    let obs = Obs.wall () in
    let ctx =
      {
        ctx with
        Pcqe.Engine.deadline;
        mc_fallback;
        obs = Some obs;
        profile = true;
      }
    in
    let session = Pcqe.Engine.Session.create ctx in
    let request =
      { Pcqe.Engine.query = Pcqe.Query.sql sql; user; purpose; perc }
    in
    let* () =
      if cold then Ok ()
      else
        let* _warm = Pcqe.Engine.Session.answer session request in
        Ok ()
    in
    Obs.Trace.reset obs.Obs.trace;
    let* resp = Pcqe.Engine.Session.answer session request in
    Printf.printf "Profile (%s serving answer):\n"
      (if cold then "cold" else "warm");
    (match resp.Pcqe.Engine.profile with
    | Some p -> print_string (Pcqe.Report.profile_to_string p)
    | None -> print_endline "no profile recorded");
    Printf.printf "released=%d withheld=%d requested=%d%s\n"
      (List.length resp.Pcqe.Engine.released)
      resp.Pcqe.Engine.withheld resp.Pcqe.Engine.requested
      (if resp.Pcqe.Engine.ambiguous > 0 then
         Printf.sprintf " ambiguous=%d" resp.Pcqe.Engine.ambiguous
       else "");
    List.iteri
      (fun i r ->
        if i < 20 then
          Printf.printf "  %s  confidence %.4f  tier=%s\n"
            (Relational.Tuple.to_string r.Pcqe.Engine.tuple)
            r.Pcqe.Engine.confidence r.Pcqe.Engine.conf_tier)
      resp.Pcqe.Engine.released;
    if List.length resp.Pcqe.Engine.released > 20 then
      print_endline "  ... (first 20 rows only)";
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* plan subcommand *)

let run_plan data_dir sql =
  let result =
    let* db = load_data_dir data_dir in
    let* plan = Relational.Sql_planner.compile sql in
    let* schema = Relational.Algebra.output_schema db plan in
    let* annotated = Relational.Estimate.explain db plan in
    Printf.printf "parsed plan:\n%s\n\n" annotated;
    let* optimized = Relational.Rewrite.optimize db plan in
    let* () =
      if optimized <> plan then begin
        let* annotated' = Relational.Estimate.explain db optimized in
        Printf.printf "after rewriting:\n%s\n\n" annotated';
        Ok ()
      end
      else Ok ()
    in
    Printf.printf "output schema: (%s)\n" (Relational.Schema.to_string schema);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* solve subcommand *)

let run_solve size bpr seed beta theta solver jobs deadline_ms trace metrics_out
    metrics_format =
  let result =
    let* solver = solver_of_string solver in
    let* deadline_spec = deadline_spec_of_ms deadline_ms in
    let params =
      {
        Workload.Synth.default_params with
        data_size = size;
        bases_per_result = bpr;
        beta;
        theta;
      }
    in
    let jobs = Exec.resolve_jobs ?jobs () in
    Exec.with_pool_opt ~jobs (fun pool ->
    let problem = Workload.Synth.instance ?pool ~params ~seed () in
    Printf.printf "%s\n" (Optimize.Problem.to_string problem);
    with_obs ~trace ~metrics_out ~metrics_format (fun obs ->
    let deadline = Resilience.Deadline.start deadline_spec in
    let out =
      Optimize.Solver.solve ~algorithm:solver ?obs ?pool ~deadline problem
    in
    let resolution =
      match out.Optimize.Solver.resolution with
      | Optimize.Solver.Complete -> "complete"
      | Optimize.Solver.Partial { reason } ->
        Printf.sprintf "partial (%s)" reason
    in
    (match out.Optimize.Solver.solution with
    | Some increments ->
      Printf.printf
        "solver: %s\nfeasible: yes\nresolution: %s\ncost: %.2f\nraised tuples: %d\nsatisfied results: %d\nelapsed: %.3fs\ndetail: %s\n"
        (Optimize.Solver.algorithm_name solver)
        resolution out.Optimize.Solver.cost
        (List.length increments)
        (List.length out.Optimize.Solver.satisfied)
        out.Optimize.Solver.elapsed_s out.Optimize.Solver.detail
    | None ->
      Printf.printf
        "solver: %s\nfeasible: no\nresolution: %s\nelapsed: %.3fs\ndetail: %s\n"
        (Optimize.Solver.algorithm_name solver)
        resolution out.Optimize.Solver.elapsed_s out.Optimize.Solver.detail);
    (match (trace, obs) with
    | true, Some o -> print_string (Obs.report o)
    | _ -> ());
    Ok ()))
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* repl subcommand *)

let run_repl workspace solver =
  let result =
    let* solver = solver_of_string solver in
    let* w = Pcqe.Workspace.load ~solver workspace in
    let state = ref (Pcqe.Repl.create w.Pcqe.Workspace.context) in
    print_endline
      "pcqe repl -- SQL plus meta commands; \\help for help, \\quit to leave";
    let running = ref true in
    while !running do
      print_string "pcqe> ";
      match In_channel.input_line stdin with
      | None -> running := false
      | Some line -> (
        match Pcqe.Repl.execute !state line with
        | Pcqe.Repl.Quit -> running := false
        | Pcqe.Repl.Reply (state', text) ->
          state := state';
          if text <> "" then print_endline text)
    done;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* export subcommand *)

let run_export data_dir relation =
  let result =
    let* db = load_data_dir data_dir in
    match Db.relation db relation with
    | None -> Error (Printf.sprintf "unknown relation %S" relation)
    | Some r ->
      print_string (Relational.Csv.to_string db r);
      Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* serve subcommand: the fault-tolerant network serving tier *)

let run_serve workspace data_dir rbac_file policy_file costs_file solver jobs
    shards mc_fallback listen admit queue retry_after_ms default_deadline_ms
    max_requests drain_deadline_s metrics_out metrics_format =
  let result =
    let* ctx =
      build_context workspace data_dir rbac_file policy_file costs_file solver
    in
    let* ctx = apply_shards shards ctx in
    let ctx =
      match jobs with
      | None -> ctx
      | Some j -> { ctx with Pcqe.Engine.jobs = Exec.resolve_jobs ~jobs:j () }
    in
    let ctx = { ctx with Pcqe.Engine.mc_fallback } in
    let* listen = Net.Server.listen_of_string listen in
    let* default_deadline_ms =
      match default_deadline_ms with
      | Some ms when ms <= 0.0 ->
        Error (Printf.sprintf "--default-deadline-ms %g: need a positive budget" ms)
      | other -> Ok other
    in
    let config =
      {
        Net.Server.default_config with
        admit;
        queue;
        retry_after_ms;
        default_deadline_ms;
      }
    in
    with_obs ~trace:false ~metrics_out ~metrics_format (fun obs ->
        let server = Net.Server.start ?obs ~config ~ctx listen in
        Printf.printf "pcqe: serving on %s (admit %d, queue %d, shards %d)\n%!"
          (Net.Server.listen_to_string (Net.Server.address server))
          admit queue
          (Db.shard_count ctx.Pcqe.Engine.db);
        (* graceful shutdown: SIGINT/SIGTERM flip a flag observed by the
           wait loop; the server then drains in-flight requests under the
           bounded deadline before severing connections *)
        let stopping = Atomic.make false in
        let install s =
          try Sys.set_signal s (Sys.Signal_handle (fun _ -> Atomic.set stopping true))
          with Invalid_argument _ | Sys_error _ -> ()
        in
        install Sys.sigint;
        install Sys.sigterm;
        (* --max-requests N bounds the run (smoke tests, demos); 0 serves
           until a signal arrives *)
        let rec wait () =
          if Atomic.get stopping then ()
          else if
            max_requests > 0 && Net.Server.requests_served server >= max_requests
          then ()
          else begin
            Thread.delay 0.05;
            wait ()
          end
        in
        wait ();
        if Atomic.get stopping then
          Printf.printf
            "pcqe: signal received; draining in-flight requests (deadline %.1fs)\n%!"
            drain_deadline_s;
        Net.Server.stop ~drain_deadline_s server;
        (* the per-shard series are refreshed on demand, not per request
           — right before the metrics flush is the moment that matters *)
        Net.Server.refresh_shard_gauges server;
        (* one final metrics line, whatever stopped us: scrapers and log
           tails get the closing counter totals even without --metrics-out *)
        let stats = Net.Server.stats server in
        let v name =
          match List.assoc_opt name stats with Some n -> n | None -> 0
        in
        Printf.printf
          "pcqe: final served=%d answers=%d accepted=%d shed=%d timeouts=%d \
           errors=%d connections=%d\n%!"
          (Net.Server.requests_served server)
          (v "net.answers") (v "net.accepted") (v "net.shed") (v "net.timeouts")
          (v "net.errors") (v "net.connections");
        print_endline "pcqe: server stopped; counters:";
        List.iter (fun (k, v) -> Printf.printf "  %-18s %d\n" k v) stats;
        Ok ())
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* loadgen subcommand: closed-loop principals against a running server *)

let run_loadgen connect users purpose perc sqls requests think_ms zipf_s
    deadline_ms timeout_ms retries seed =
  let result =
    let* addr = Net.Server.listen_of_string connect in
    let users =
      String.split_on_char ',' users
      |> List.map String.trim
      |> List.filter (( <> ) "")
      |> Array.of_list
    in
    let* () = if Array.length users = 0 then Error "--users: need at least one" else Ok () in
    let* queries =
      match sqls with
      | [] -> Error "need at least one --sql"
      | qs -> Ok (Array.of_list qs)
    in
    let* deadline_ms =
      match deadline_ms with
      | Some ms when ms <= 0.0 ->
        Error (Printf.sprintf "--deadline-ms %g: need a positive budget" ms)
      | other -> Ok other
    in
    let client_config =
      {
        Net.Client.default_config with
        request_timeout_ms = timeout_ms;
        retries;
      }
    in
    let clients =
      Array.init (Array.length users) (fun i ->
          Net.Client.create ~config:client_config ~seed:(seed + (i * 7919)) addr)
    in
    let report =
      Workload.Load_gen.run
        {
          Workload.Load_gen.principals = Array.length users;
          requests_per_principal = requests;
          think_ms;
          zipf_s;
          seed;
        }
        ~queries
        ~user_of:(fun i -> users.(i))
        ~exec:(fun ~principal ~user ~sql ->
          match
            Net.Client.query clients.(principal) ~user ~purpose ~perc
              ?deadline_ms sql
          with
          | Net.Client.Answer a ->
            Workload.Load_gen.Answered { degraded = a.Net.Wire.degraded <> None }
          | Net.Client.Shed _ -> Workload.Load_gen.Shed
          | Net.Client.Timed_out _ -> Workload.Load_gen.Timed_out
          | Net.Client.Accepted _ -> Workload.Load_gen.Failed "unexpected accept"
          | Net.Client.Failed m -> Workload.Load_gen.Failed m)
    in
    let retries_total =
      Array.fold_left (fun acc c -> acc + Net.Client.retries_used c) 0 clients
    in
    let breaker_total =
      Array.fold_left (fun acc c -> acc + Net.Client.breaker_opens c) 0 clients
    in
    Array.iter Net.Client.close clients;
    print_endline (Workload.Load_gen.report_to_string report);
    Printf.printf "retries %d  breaker-opens %d\n" retries_total breaker_total;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
    Printf.eprintf "pcqe: %s\n" msg;
    1

(* ------------------------------------------------------------------ *)
(* cmdliner wiring *)

open Cmdliner

let data_arg =
  Arg.(
    required
    & opt (some dir) None
    & info [ "data" ] ~docv:"DIR" ~doc:"Directory of CSV relations.")

let data_opt_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "data" ] ~docv:"DIR" ~doc:"Directory of CSV relations.")

let workspace_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "workspace" ] ~docv:"DIR"
        ~doc:
          "Workspace directory (relations/, rbac.txt, policies.txt, and \
           optional views.sql, costs.txt, caps.txt); replaces the \
           individual flags.")

let sql_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let solver_arg =
  Arg.(
    value & opt string "dnc"
    & info [ "solver" ] ~docv:"NAME"
        ~doc:
          "Strategy-finding algorithm: heuristic, heuristic-seeded, greedy, \
           greedy-1p, dnc, or annealing.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Parallelism for strategy finding (and synthetic-instance \
           generation): $(docv) domains, 0 = one per core.  Defaults to \
           the PCQE_JOBS environment variable, else 1.  Results are \
           identical at every level.")

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Hash-partition the database across $(docv) shards: scans and \
           filters scatter per shard (in parallel under --jobs) and gather \
           in global row order, and confidence-cache invalidation is \
           per-shard.  Pure routing: answers, lineage and solver outcomes \
           are bit-identical at every shard count.  Default 1 (unsharded).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Wall-clock budget in milliseconds.  On expiry the solver stops \
           at its best-so-far feasible answer and the result is reported \
           as partial (degraded) instead of running unbounded.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Print the timed plan: a nested span tree with per-stage elapsed \
           times, plus the solver counters and histograms.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write the recorded observability data to $(docv) (format per \
           --metrics-format).")

let metrics_format_arg =
  Arg.(
    value & opt string "json"
    & info [ "metrics-format" ] ~docv:"FORMAT"
        ~doc:
          "Exposition format for --metrics-out: $(b,json) (JSONL spans, \
           counters, gauges and histograms), $(b,openmetrics) (OpenMetrics \
           text: counters, gauges, and histogram quantile summaries, for \
           scrapers), or $(b,text) (the human-readable report).")

let query_cmd =
  let rbac_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "rbac" ] ~docv:"FILE" ~doc:"RBAC definition file.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Confidence policy file.")
  in
  let user_arg =
    Arg.(required & opt (some string) None & info [ "user" ] ~docv:"USER")
  in
  let purpose_arg =
    Arg.(required & opt (some string) None & info [ "purpose" ] ~docv:"PURPOSE")
  in
  let perc_arg =
    Arg.(
      value & opt float 0.5
      & info [ "perc" ] ~docv:"FRACTION"
          ~doc:"Fraction of results the user needs (theta).")
  in
  let costs_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "costs" ] ~docv:"FILE"
          ~doc:
            "Per-tuple cost functions: one '<tid> <spec>' per line (specs: \
             linear R, binomial S, exponential S R, logarithmic S), plus an \
             optional 'default <spec>' line.")
  in
  let apply_arg =
    Arg.(
      value & flag
      & info [ "apply" ]
          ~doc:"Accept the improvement proposal and show the improved answer.")
  in
  let mc_fallback_arg =
    Arg.(
      value & flag
      & info [ "mc-fallback" ]
          ~doc:
            "Confidence degradation ladder: when exact confidence \
             computation is too expensive, fall back to a Monte-Carlo \
             (epsilon, delta) interval.  Fail-closed: a result whose \
             interval straddles the policy threshold is withheld and \
             counted as ambiguous.")
  in
  let top_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "top" ] ~docv:"K"
          ~doc:
            "Also print the K released rows with the highest confidence \
             (bounded-heap selection, no full sort).")
  in
  let doc = "run a SQL query under RBAC and confidence policies" in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      const run_query $ workspace_arg $ data_opt_arg $ rbac_arg $ policy_arg
      $ costs_arg $ user_arg $ purpose_arg $ perc_arg $ solver_arg $ jobs_arg
      $ shards_arg $ deadline_arg $ mc_fallback_arg $ apply_arg $ trace_arg
      $ metrics_out_arg $ metrics_format_arg $ top_arg $ sql_arg)

let explain_cmd =
  let rbac_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "rbac" ] ~docv:"FILE" ~doc:"RBAC definition file.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Confidence policy file.")
  in
  let costs_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "costs" ] ~docv:"FILE" ~doc:"Per-tuple cost functions.")
  in
  let user_arg =
    Arg.(required & opt (some string) None & info [ "user" ] ~docv:"USER")
  in
  let purpose_arg =
    Arg.(required & opt (some string) None & info [ "purpose" ] ~docv:"PURPOSE")
  in
  let perc_arg =
    Arg.(
      value & opt float 0.5
      & info [ "perc" ] ~docv:"FRACTION"
          ~doc:"Fraction of results the user needs (theta).")
  in
  let mc_fallback_arg =
    Arg.(
      value & flag
      & info [ "mc-fallback" ]
          ~doc:"Monte-Carlo confidence fallback (fail-closed).")
  in
  let cold_arg =
    Arg.(
      value & flag
      & info [ "cold" ]
          ~doc:
            "Profile the first (cold) answer instead of warming the \
             serving caches first; shows compilation and confidence \
             computation rather than cache reuse.")
  in
  let doc = "profile a query: annotated plan with per-stage cost attribution" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Answers the query twice through one serving session — once to \
         warm the prepared-plan and confidence caches, once with the \
         per-request profiler on — and prints the annotated plan: one row \
         per engine stage with elapsed wall time, allocated bytes and \
         span attributes (rows, released, withheld), parallel task spans \
         (solver groups, Monte-Carlo chunks) stitched under their stage, \
         followed by the request's counter deltas grouped into cache \
         attribution, confidence-ladder rungs, engine, solver and \
         resilience sections.  Profiling is observe-only: the answer is \
         bit-identical with it on or off.";
    ]
  in
  Cmd.v
    (Cmd.info "explain" ~doc ~man)
    Term.(
      const run_explain $ workspace_arg $ data_opt_arg $ rbac_arg $ policy_arg
      $ costs_arg $ user_arg $ purpose_arg $ perc_arg $ solver_arg $ jobs_arg
      $ shards_arg $ deadline_arg $ mc_fallback_arg $ cold_arg $ sql_arg)

let batch_cmd =
  let rbac_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "rbac" ] ~docv:"FILE" ~doc:"RBAC definition file.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Confidence policy file.")
  in
  let costs_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "costs" ] ~docv:"FILE" ~doc:"Per-tuple cost functions.")
  in
  let mc_fallback_arg =
    Arg.(
      value & flag
      & info [ "mc-fallback" ]
          ~doc:"Monte-Carlo confidence fallback (fail-closed).")
  in
  let repeat_arg =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:
            "Answer the request file $(docv) times through the same \
             session; rounds after the first run entirely against the warm \
             caches.")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the serving-cache statistics (prepared-plan hits, \
             reused vs recomputed confidence classes) after the batch.")
  in
  let requests_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"REQUESTS"
          ~doc:
            "Request file: one 'user|purpose|perc|SQL' per line, '#' \
             comments.")
  in
  let doc = "answer a file of requests through one warm serving session" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Answers every ⟨query, user, purpose, perc⟩ request in the file, \
         in order, through a single serving session: each distinct query \
         text is parsed, view-expanded and rewritten once (the prepared \
         plan cache), each distinct lineage class gets one confidence \
         computation (the per-epoch confidence cache), and the prewarm \
         runs in parallel under --jobs.  Responses are bit-identical to \
         answering each request cold.";
    ]
  in
  Cmd.v
    (Cmd.info "batch" ~doc ~man)
    Term.(
      const run_batch $ workspace_arg $ data_opt_arg $ rbac_arg $ policy_arg
      $ costs_arg $ solver_arg $ jobs_arg $ shards_arg $ deadline_arg
      $ mc_fallback_arg $ repeat_arg $ stats_arg $ trace_arg $ metrics_out_arg
      $ metrics_format_arg $ requests_arg)

let plan_cmd =
  let doc = "print the relational-algebra plan of a SQL query" in
  Cmd.v (Cmd.info "plan" ~doc) Term.(const run_plan $ data_arg $ sql_arg)

let solve_cmd =
  let size_arg =
    Arg.(value & opt int 1000 & info [ "size" ] ~docv:"N" ~doc:"Base tuples.")
  in
  let bpr_arg =
    Arg.(
      value & opt int 5
      & info [ "bases-per-result" ] ~docv:"N" ~doc:"Base tuples per result.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let beta_arg =
    Arg.(
      value & opt float 0.6
      & info [ "beta" ] ~docv:"B" ~doc:"Confidence threshold.")
  in
  let theta_arg =
    Arg.(
      value & opt float 0.5
      & info [ "theta" ] ~docv:"T" ~doc:"Required fraction of results.")
  in
  let doc = "solve a synthetic confidence-increment instance" in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const run_solve $ size_arg $ bpr_arg $ seed_arg $ beta_arg $ theta_arg
      $ solver_arg $ jobs_arg $ deadline_arg $ trace_arg $ metrics_out_arg
      $ metrics_format_arg)

let repl_cmd =
  let ws_arg =
    Arg.(
      required
      & opt (some dir) None
      & info [ "workspace" ] ~docv:"DIR" ~doc:"Workspace directory.")
  in
  let doc = "interactive SQL session over a workspace" in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run_repl $ ws_arg $ solver_arg)

let export_cmd =
  let rel_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"RELATION")
  in
  let doc = "print a relation (with confidences) as CSV" in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run_export $ data_arg $ rel_arg)

let serve_cmd =
  let rbac_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "rbac" ] ~docv:"FILE" ~doc:"RBAC definition file.")
  in
  let policy_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "policies" ] ~docv:"FILE" ~doc:"Confidence policy file.")
  in
  let costs_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "costs" ] ~docv:"FILE" ~doc:"Per-tuple cost functions.")
  in
  let mc_fallback_arg =
    Arg.(
      value & flag
      & info [ "mc-fallback" ]
          ~doc:"Monte-Carlo confidence fallback (fail-closed).")
  in
  let listen_arg =
    Arg.(
      value
      & opt string "tcp:127.0.0.1:7419"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:"Listen address: $(b,tcp:HOST:PORT) (port 0 = ephemeral) or \
                $(b,unix:PATH).")
  in
  let admit_arg =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.admit
      & info [ "admit" ] ~docv:"N"
          ~doc:"Maximum concurrently executing requests.")
  in
  let queue_arg =
    Arg.(
      value & opt int Net.Server.default_config.Net.Server.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Maximum requests waiting for an execution slot; beyond this \
             the server sheds load with an explicit Overloaded response.")
  in
  let retry_after_arg =
    Arg.(
      value & opt float Net.Server.default_config.Net.Server.retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Retry hint carried in Overloaded responses.")
  in
  let default_deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "default-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Deadline applied to requests that carry none; queue wait \
             counts against it, and on expiry strategy finding degrades \
             to best-so-far instead of hanging.")
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) terminal responses and print the \
             counters (0 = serve until signalled); for smoke tests and \
             bounded demos.")
  in
  let drain_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-deadline-s" ] ~docv:"S"
          ~doc:
            "On shutdown (SIGINT/SIGTERM or --max-requests), let requests \
             already executing finish for up to $(docv) seconds before \
             severing their connections; queued and new requests are \
             refused immediately.")
  in
  let doc = "serve queries over TCP or unix sockets with admission control" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Hosts per-principal warm serving sessions behind a length-framed, \
         checksummed wire protocol.  At most --admit requests execute \
         concurrently, --queue more wait (their deadline still running); \
         past that the server sheds load explicitly.  Client deadlines \
         travel in the frame and become engine deadlines, so overload \
         degrades answers (fail-closed) instead of hanging them.  \
         --metrics-out with --metrics-format=openmetrics exports the \
         net.* counters and queue gauges for scrapers.";
    ]
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run_serve $ workspace_arg $ data_opt_arg $ rbac_arg $ policy_arg
      $ costs_arg $ solver_arg $ jobs_arg $ shards_arg $ mc_fallback_arg
      $ listen_arg $ admit_arg $ queue_arg $ retry_after_arg
      $ default_deadline_arg $ max_requests_arg $ drain_arg $ metrics_out_arg
      $ metrics_format_arg)

let loadgen_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server address: $(b,tcp:HOST:PORT) or $(b,unix:PATH).")
  in
  let users_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "users" ] ~docv:"U1,U2,..."
          ~doc:"Comma-separated principals; one closed-loop client each.")
  in
  let purpose_arg =
    Arg.(value & opt string "serve" & info [ "purpose" ] ~docv:"PURPOSE")
  in
  let perc_arg =
    Arg.(
      value & opt float 0.5
      & info [ "perc" ] ~docv:"FRACTION"
          ~doc:"Fraction of results each request needs (theta).")
  in
  let sql_arg =
    Arg.(
      value & opt_all string []
      & info [ "sql" ] ~docv:"SQL"
          ~doc:
            "Query mix (repeatable); queries are drawn zipf-skewed in the \
             order given (first = hottest).")
  in
  let requests_arg =
    Arg.(
      value & opt int 20
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per principal.")
  in
  let think_arg =
    Arg.(
      value & opt float 0.0
      & info [ "think-ms" ] ~docv:"MS"
          ~doc:"Mean think time between requests (exponential; 0 = none).")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Query-mix skew (0 = uniform).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Per-request deadline carried in the frame.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt float Net.Client.default_config.Net.Client.request_timeout_ms
      & info [ "timeout-ms" ] ~docv:"MS" ~doc:"Client response timeout.")
  in
  let retries_arg =
    Arg.(
      value & opt int Net.Client.default_config.Net.Client.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry attempts for idempotent requests (capped exponential \
             backoff with seeded jitter).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
  in
  let doc = "drive a pcqe server with closed-loop concurrent principals" in
  Cmd.v
    (Cmd.info "loadgen" ~doc)
    Term.(
      const run_loadgen $ connect_arg $ users_arg $ purpose_arg $ perc_arg
      $ sql_arg $ requests_arg $ think_arg $ zipf_arg $ deadline_arg
      $ timeout_arg $ retries_arg $ seed_arg)

let main_cmd =
  let doc = "policy-compliant query evaluation over confidence-annotated data" in
  Cmd.group
    (Cmd.info "pcqe" ~version:"1.0.0" ~doc)
    [
      query_cmd;
      batch_cmd;
      explain_cmd;
      plan_cmd;
      solve_cmd;
      export_cmd;
      repl_cmd;
      serve_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
