#!/bin/sh
# Guarded ocamlformat check: verifies the listed sources are formatted
# when the ocamlformat binary is available, and is a no-op otherwise
# (CI images without the formatter must not fail the build over it).
set -eu
if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check_fmt: ocamlformat not installed; skipping" >&2
  exit 0
fi
status=0
for f in "$@"; do
  if ! ocamlformat --check "$f"; then
    echo "check_fmt: $f is not formatted (run: ocamlformat -i $f)" >&2
    status=1
  fi
done
exit $status
