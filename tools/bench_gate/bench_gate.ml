(* bench_gate: compare a freshly generated BENCH_*.json artifact against
   its committed baseline and fail loudly when the harness drifts.

     bench_gate [--tol R] [--schema-only] BASELINE FRESH

   Three gates, in order:

   1. schema — the fresh file must have exactly the baseline's shape:
      objects carry the same key sets, leaves keep their JSON type.
      Arrays are length-tolerant (a smoke run sweeps fewer points than
      the committed full run) but every fresh element must match the
      schema of the baseline's first element.

   2. identity assertions — the benches assert warm answers identical to
      cold before writing ["identical": true]; the gate re-checks that
      every such key survived in the fresh file and is [true] there, and
      that a fresh file facing a baseline with assertions still carries
      at least one.  A harness edit that silently drops the cold/warm
      comparison fails here even if the schema is intact.

   3. tolerance band (skipped with [--schema-only]) — numeric leaves at
      matching paths must agree within relative tolerance R (default
      0.10).  Wall-time fields are exempt: keys ending in ["_s"] and the
      derived ["speedup"] legitimately vary between machines and runs.
      Arrays compare pairwise up to the shorter length.

   Deliberately dependency-free (its own minimal JSON reader) so it can
   sit inside the tier-1 `dune runtest` gate without enlarging the
   toolchain. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* minimal JSON reader: enough for the artifacts the harness writes
   (objects, arrays, strings with escapes, numbers, booleans, null) *)

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'u' ->
          if !pos + 4 >= n then fail "truncated \\u escape";
          let code =
            (hex s.[!pos + 1] lsl 12)
            lor (hex s.[!pos + 2] lsl 8)
            lor (hex s.[!pos + 3] lsl 4)
            lor hex s.[!pos + 4]
          in
          pos := !pos + 4;
          (* the artifacts are ASCII; anything wider only needs to
             round-trip as *some* string for schema purposes *)
          if code < 128 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_char buf '?'
        | _ -> fail "bad escape");
        advance ();
        go ())
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, value) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        Arr [])
      else
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (value :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (value :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

(* ------------------------------------------------------------------ *)
(* the gates; every failure is collected with its path so one run
   reports all drift at once *)

let errors : string list ref = ref []
let err path fmt = Printf.ksprintf (fun m -> errors := (path ^ ": " ^ m) :: !errors) fmt

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let rec check_schema path (baseline : json) (fresh : json) =
  match (baseline, fresh) with
  | Obj b, Obj f ->
    let keys o = List.sort compare (List.map fst o) in
    List.iter
      (fun k ->
        if not (List.mem_assoc k f) then err path "key %S missing from fresh file" k)
      (keys b);
    List.iter
      (fun k ->
        if not (List.mem_assoc k b) then err path "unexpected key %S in fresh file" k)
      (keys f);
    List.iter
      (fun (k, bv) ->
        match List.assoc_opt k f with
        | Some fv -> check_schema (path ^ "." ^ k) bv fv
        | None -> ())
      b
  | Arr (b0 :: _), Arr fs ->
    if fs = [] then err path "array emptied (baseline has elements)"
    else
      List.iteri
        (fun i fv -> check_schema (Printf.sprintf "%s[%d]" path i) b0 fv)
        fs
  | Arr [], Arr _ -> ()
  | Null, Null | Bool _, Bool _ | Num _, Num _ | Str _, Str _ -> ()
  | _ ->
    err path "type changed: baseline %s, fresh %s" (type_name baseline)
      (type_name fresh)

(* keys named "identical" are the benches' cold-vs-warm identity
   assertions; count them and require every fresh one to be [true] *)
let rec check_identity path (j : json) =
  match j with
  | Obj members ->
    List.fold_left
      (fun acc (k, v) ->
        let here = path ^ "." ^ k in
        let acc =
          if k = "identical" then begin
            (if v <> Bool true then
               err here "identity assertion is %s, expected true"
                 (match v with
                 | Bool false -> "false"
                 | other -> type_name other));
            acc + 1
          end
          else acc
        in
        acc + check_identity here v)
      0 members
  | Arr elems ->
    List.fold_left (fun acc (i, e) -> acc + check_identity (Printf.sprintf "%s[%d]" path i) e) 0
      (List.mapi (fun i e -> (i, e)) elems)
  | _ -> 0

let rec count_assertions = function
  | Obj members ->
    List.fold_left
      (fun acc (k, v) ->
        (if k = "identical" then 1 else 0) + count_assertions v + acc)
      0 members
  | Arr elems -> List.fold_left (fun acc e -> acc + count_assertions e) 0 elems
  | _ -> 0

(* wall-time fields vary across machines; everything else in the
   artifacts is a count or a derived size that the tolerance band must
   hold to.  Timing keys are recognized uniformly by unit token: any
   ["_"]-separated token ["s"] or ["ms"] marks a seconds/derived-rate
   field (["solve_s"], ["deadline_ms"], ["stream_mb_per_s"], …), and
   ["speedup"] is the derived ratio of two of them *)
let timing_key k =
  k = "speedup"
  || List.exists
       (fun tok -> tok = "s" || tok = "ms")
       (String.split_on_char '_' k)

let rec check_values ~tol path (baseline : json) (fresh : json) =
  match (baseline, fresh) with
  | Obj b, Obj f ->
    List.iter
      (fun (k, bv) ->
        if not (timing_key k) then
          match List.assoc_opt k f with
          | Some fv -> check_values ~tol (path ^ "." ^ k) bv fv
          | None -> ())
      b
  | Arr bs, Arr fs ->
    let rec pairwise i bs fs =
      match (bs, fs) with
      | b :: bs', f :: fs' ->
        check_values ~tol (Printf.sprintf "%s[%d]" path i) b f;
        pairwise (i + 1) bs' fs'
      | _ -> ()
    in
    pairwise 0 bs fs
  | Num b, Num f ->
    let denom = Float.max (Float.abs b) 1e-9 in
    if Float.abs (f -. b) /. denom > tol then
      err path "value %g drifted beyond %.0f%% of baseline %g" f (tol *. 100.) b
  | Str b, Str f -> if b <> f then err path "string changed: %S -> %S" b f
  | _ -> ()

(* ------------------------------------------------------------------ *)

let () =
  let usage () =
    prerr_endline "usage: bench_gate [--tol R] [--schema-only] BASELINE FRESH";
    exit 2
  in
  let tol = ref 0.10 in
  let schema_only = ref false in
  let positional = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--schema-only" :: rest ->
      schema_only := true;
      parse_args rest
    | "--tol" :: r :: rest -> (
      match float_of_string_opt r with
      | Some t when t >= 0.0 ->
        tol := t;
        parse_args rest
      | _ -> usage ())
    | arg :: rest ->
      positional := arg :: !positional;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let baseline_path, fresh_path =
    match List.rev !positional with [ b; f ] -> (b, f) | _ -> usage ()
  in
  let load what path =
    try parse (read_file path) with
    | Sys_error m ->
      Printf.eprintf "bench_gate: cannot read %s file: %s\n" what m;
      exit 2
    | Parse_error m ->
      Printf.eprintf "bench_gate: %s file %s: %s\n" what path m;
      exit 2
  in
  let baseline = load "baseline" baseline_path in
  let fresh = load "fresh" fresh_path in
  check_schema "$" baseline fresh;
  let fresh_assertions = check_identity "$" fresh in
  let baseline_assertions = count_assertions baseline in
  if baseline_assertions > 0 && fresh_assertions = 0 then
    err "$" "all %d identity assertion(s) missing from fresh file"
      baseline_assertions;
  if not !schema_only then check_values ~tol:!tol "$" baseline fresh;
  match List.rev !errors with
  | [] ->
    Printf.printf "bench_gate: %s matches %s (%s, %d identity assertion(s))\n"
      fresh_path baseline_path
      (if !schema_only then "schema"
       else Printf.sprintf "schema + %.0f%% band" (!tol *. 100.))
      fresh_assertions
  | es ->
    List.iter (fun e -> Printf.eprintf "bench_gate: %s\n" e) es;
    Printf.eprintf "bench_gate: %s does not match %s (%d problem(s))\n"
      fresh_path baseline_path (List.length es);
    exit 1
