(* Tests for the Exec domain pool: determinism, exception safety,
   nesting, and the jobs-resolution policy. *)

module Pool = Exec.Pool

let test_default_jobs () =
  Alcotest.(check bool) "at least one" true (Pool.default_jobs () >= 1)

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun p ->
      Alcotest.(check int) "clamped to 1" 1 (Pool.jobs p));
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "as requested" 3 (Pool.jobs p))

let test_map_matches_sequential () =
  let input = Array.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  let expected = Array.map f input in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun p ->
          Alcotest.(check (array int))
            (Printf.sprintf "map_array at jobs=%d" jobs)
            expected (Pool.map_array p f input);
          Alcotest.(check (list int))
            (Printf.sprintf "map_list at jobs=%d" jobs)
            (Array.to_list expected)
            (Pool.map_list p f (Array.to_list input))))
    [ 1; 2; 4; 8 ]

let test_mapi () =
  Pool.with_pool ~jobs:4 (fun p ->
      let out = Pool.mapi_array p (fun i x -> i + x) (Array.make 100 7) in
      Alcotest.(check (array int)) "mapi" (Array.init 100 (fun i -> i + 7)) out)

let test_parallel_for () =
  Pool.with_pool ~jobs:4 (fun p ->
      let slots = Array.make 500 0 in
      Pool.parallel_for p ~lo:0 ~hi:500 (fun i -> slots.(i) <- i * 2);
      Alcotest.(check (array int))
        "every index visited once"
        (Array.init 500 (fun i -> i * 2))
        slots)

let test_fork_join () =
  Pool.with_pool ~jobs:2 (fun p ->
      let a, b = Pool.fork_join p (fun () -> 6 * 7) (fun () -> "ok") in
      Alcotest.(check int) "left" 42 a;
      Alcotest.(check string) "right" "ok" b)

let test_empty_and_tiny_inputs () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_array p succ [||]);
      Alcotest.(check (array int)) "singleton" [| 2 |]
        (Pool.map_array p succ [| 1 |]))

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun p ->
      (* the lowest-index failure is the one re-raised, regardless of
         which domain hits its exception first *)
      (try
         ignore
           (Pool.map_array ~chunk:1 p
              (fun i -> if i >= 3 then raise (Boom i) else i)
              (Array.init 64 Fun.id));
         Alcotest.fail "expected Boom"
       with Boom i -> Alcotest.(check int) "lowest failing index" 3 i);
      (* the pool survives a raising task and runs later work fine *)
      let out = Pool.map_array p succ (Array.init 10 Fun.id) in
      Alcotest.(check (array int))
        "pool not poisoned"
        (Array.init 10 (fun i -> i + 1))
        out)

let test_no_domain_leak_after_raise () =
  (* shutting down a pool whose tasks raised must still join all domains;
     if a domain leaked, with_pool would hang or shutdown would raise *)
  for _ = 1 to 5 do
    Pool.with_pool ~jobs:4 (fun p ->
        try ignore (Pool.map_array ~chunk:1 p (fun _ -> raise Exit) [| 1; 2; 3; 4 |])
        with Exit -> ())
  done;
  Alcotest.(check pass) "repeated raise+shutdown" () ()

let test_lowest_index_under_concurrent_failures () =
  (* many chunks fail at once; whatever the domain interleaving, the
     re-raised exception must carry the lowest failing index.  Vary the
     failing set and repeat to shake scheduling orders. *)
  Pool.with_pool ~jobs:4 (fun p ->
      List.iter
        (fun (lowest, fails) ->
          for _trial = 1 to 10 do
            match
              Pool.map_array ~chunk:1 p
                (fun i -> if List.mem i fails then raise (Boom i) else i)
                (Array.init 48 Fun.id)
            with
            | _ -> Alcotest.fail "expected Boom"
            | exception Boom i ->
              Alcotest.(check int)
                (Printf.sprintf "lowest of %d failures" (List.length fails))
                lowest i
          done)
        [
          (5, [ 5; 6; 7; 8 ]);
          (0, [ 47; 23; 0; 11 ]);
          (2, List.init 46 (fun i -> i + 2));
        ])

let test_reuse_across_successive_failures () =
  (* one pool, alternating failing and clean batches: each failure must
     leave the pool fully functional for the next batch *)
  Pool.with_pool ~jobs:4 (fun p ->
      for round = 0 to 9 do
        (try
           ignore
             (Pool.map_array ~chunk:1 p
                (fun i -> if i = round then raise (Boom i) else i)
                (Array.init 10 Fun.id));
           Alcotest.fail "expected Boom"
         with Boom i ->
           Alcotest.(check int)
             (Printf.sprintf "round %d failure index" round)
             round i);
        let out = Pool.map_array p (fun x -> x * 2) (Array.init 20 Fun.id) in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d clean batch" round)
          (Array.init 20 (fun i -> i * 2))
          out
      done)

let test_shutdown_idempotent () =
  let p = Pool.create ~jobs:3 () in
  ignore (Pool.map_array p succ [| 1; 2; 3 |]);
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check pass) "double shutdown" () ()

let test_nested_run () =
  (* a task may itself drive the pool: the caller participates in the
     work, so progress never requires a free worker *)
  Pool.with_pool ~jobs:2 (fun p ->
      let out =
        Pool.map_array ~chunk:1 p
          (fun i ->
            Array.fold_left ( + ) 0
              (Pool.map_array ~chunk:1 p (fun j -> i * j) [| 1; 2; 3 |]))
          [| 1; 2; 3; 4 |]
      in
      Alcotest.(check (array int)) "nested" [| 6; 12; 18; 24 |] out)

let test_with_pool_returns_and_cleans () =
  let r = Pool.with_pool ~jobs:2 (fun _ -> 99) in
  Alcotest.(check int) "result through" 99 r;
  (try ignore (Pool.with_pool ~jobs:2 (fun _ -> failwith "body")) with
  | Failure m -> Alcotest.(check string) "body exn through" "body" m);
  Alcotest.(check pass) "no hang after body raise" () ()

let test_resolve_jobs () =
  (* explicit value wins but is clamped to the host's cores; 0 means
     auto; negatives clamp to 1; PCQE_JOBS is taken verbatim *)
  let cores = Domain.recommended_domain_count () in
  Alcotest.(check int) "explicit clamped to cores"
    (max 1 (min 5 cores))
    (Exec.resolve_jobs ~jobs:5 ());
  Alcotest.(check int) "explicit within cores" 1 (Exec.resolve_jobs ~jobs:1 ());
  Alcotest.(check int) "auto" (Pool.default_jobs ()) (Exec.resolve_jobs ~jobs:0 ());
  Alcotest.(check int) "negative" 1 (Exec.resolve_jobs ~jobs:(-2) ());
  (* no request, no env: single-threaded *)
  if Sys.getenv_opt Exec.env_var = None then
    Alcotest.(check int) "default" 1 (Exec.resolve_jobs ());
  (* the env override is deliberately unclamped, even above core count *)
  let saved = Sys.getenv_opt Exec.env_var in
  Unix.putenv Exec.env_var (string_of_int (cores + 7));
  Alcotest.(check int) "env override unclamped" (cores + 7)
    (Exec.resolve_jobs ());
  Unix.putenv Exec.env_var (Option.value ~default:"" saved)

let qcheck_run_chunks_covers =
  QCheck.Test.make ~name:"run_chunks visits each chunk exactly once" ~count:30
    QCheck.(pair (int_range 1 8) (int_range 0 50))
    (fun (jobs, chunks) ->
      Pool.with_pool ~jobs (fun p ->
          let hits = Array.make (max chunks 1) 0 in
          Pool.run_chunks p ~chunks (fun ci -> hits.(ci) <- hits.(ci) + 1);
          Array.for_all (fun h -> h = 1) (Array.sub hits 0 chunks)
          || chunks = 0))

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "default_jobs" `Quick test_default_jobs;
          Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
          Alcotest.test_case "map = sequential" `Quick
            test_map_matches_sequential;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "parallel_for" `Quick test_parallel_for;
          Alcotest.test_case "fork_join" `Quick test_fork_join;
          Alcotest.test_case "empty/tiny inputs" `Quick
            test_empty_and_tiny_inputs;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "no leak after raise" `Quick
            test_no_domain_leak_after_raise;
          Alcotest.test_case "lowest index under concurrent failures" `Quick
            test_lowest_index_under_concurrent_failures;
          Alcotest.test_case "reuse across successive failures" `Quick
            test_reuse_across_successive_failures;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent;
          Alcotest.test_case "nested run" `Quick test_nested_run;
          Alcotest.test_case "with_pool" `Quick test_with_pool_returns_and_cleans;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_run_chunks_covers ] );
    ]
