(* Tests for d-DNNF lineage circuits: bitwise agreement with the exact
   evaluator (the identity contract the serving layer relies on), the
   node-cap fallback boundary, the kill switch, and end-to-end solver
   identity — circuit-backed vs ladder-backed compiled evaluators must
   produce the same strategy-finding outcome for every solver at every
   jobs level. *)

module F = Lineage.Formula
module P = Lineage.Prob
module C = Lineage.Circuit
module Tid = Lineage.Tid
module Problem = Optimize.Problem
module Solver = Optimize.Solver

let v i = F.var (Tid.make "t" i)
let p_by_row values (tid : Tid.t) = values.(tid.Tid.row)

let bitwise_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let with_circuits on f =
  C.force (Some on);
  Fun.protect ~finally:(fun () -> C.force None) f

(* ------------------------------------------------------------------ *)
(* unit tests *)

let test_paper_example () =
  (* (t2 | t3) & t13 — read-once, decomposes without decisions *)
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p (tid : Tid.t) =
    match tid.Tid.row with 2 -> 0.3 | 3 -> 0.4 | 13 -> 0.1 | _ -> 0.0
  in
  let c = C.compile f in
  Alcotest.(check bool)
    "bitwise vs exact" true
    (bitwise_equal (C.eval c p) (P.exact p f));
  Alcotest.(check (float 1e-12)) "value" 0.058 (C.eval c p);
  Alcotest.(check int) "no decisions" 0 (C.decisions c)

let test_shared_vars_need_decisions () =
  (* (t0 & t1) | (t0 & t2): t0 is shared — the circuit must decide on it *)
  let f = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  let p = p_by_row [| 0.5; 0.4; 0.2 |] in
  let c = C.compile f in
  Alcotest.(check bool) "has decisions" true (C.decisions c > 0);
  Alcotest.(check bool)
    "bitwise vs exact" true
    (bitwise_equal (C.eval c p) (P.exact p f))

let test_reeval_under_new_confidences () =
  (* the whole point: compile once, evaluate under many vectors *)
  let f = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 1; v 2 ]; v 0 ] in
  let c = C.compile f in
  List.iter
    (fun values ->
      let p = p_by_row values in
      Alcotest.(check bool)
        "bitwise vs exact" true
        (bitwise_equal (C.eval c p) (P.exact p f)))
    [
      [| 0.1; 0.2; 0.3 |]; [| 0.9; 0.5; 0.05 |]; [| 0.0; 1.0; 0.5 |];
      [| 0.25; 0.25; 0.25 |];
    ]

let test_constants_and_negation () =
  let p = p_by_row [| 0.3 |] in
  Alcotest.(check (float 0.0)) "true" 1.0 (C.eval (C.compile F.tru) p);
  Alcotest.(check (float 0.0)) "false" 0.0 (C.eval (C.compile F.fls) p);
  let f = F.neg (v 0) in
  Alcotest.(check bool)
    "negation" true
    (bitwise_equal (C.eval (C.compile f) p) (P.exact p f))

let test_node_cap_boundary () =
  let f = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  let full = C.compile f in
  let n = C.size full in
  (* exactly enough nodes compiles; one fewer must refuse *)
  Alcotest.(check int) "cap = size compiles" n (C.size (C.compile ~node_cap:n f));
  Alcotest.(check bool)
    "cap - 1 raises" true
    (match C.compile ~node_cap:(n - 1) f with
    | exception C.Node_cap_exceeded -> true
    | _ -> false);
  Alcotest.(check bool)
    "compile_opt returns None" true
    (C.compile_opt ~node_cap:(n - 1) f = None);
  Alcotest.(check bool)
    "compile_opt at cap succeeds" true
    (C.compile_opt ~node_cap:n f <> None)

let test_force_overrides () =
  C.force (Some false);
  Alcotest.(check bool) "forced off" false (C.enabled ());
  C.force (Some true);
  Alcotest.(check bool) "forced on" true (C.enabled ());
  C.force None;
  Alcotest.(check bool) "default on" true (C.enabled ())

let test_env_kill_switch () =
  Fun.protect
    ~finally:(fun () -> Unix.putenv "PCQE_CIRCUITS" "")
    (fun () ->
      Unix.putenv "PCQE_CIRCUITS" "0";
      Alcotest.(check bool) "PCQE_CIRCUITS=0" false (C.enabled ());
      Unix.putenv "PCQE_CIRCUITS" "off";
      Alcotest.(check bool) "PCQE_CIRCUITS=off" false (C.enabled ());
      Unix.putenv "PCQE_CIRCUITS" "1";
      Alcotest.(check bool) "PCQE_CIRCUITS=1" true (C.enabled ());
      (* force beats the environment *)
      Unix.putenv "PCQE_CIRCUITS" "0";
      C.force (Some true);
      Alcotest.(check bool) "force beats env" true (C.enabled ());
      C.force None)

(* ------------------------------------------------------------------ *)
(* properties: Circuit.eval ≡ Prob.exact, bit for bit *)

(* random formulas over a small variable pool — repetition across
   branches yields shared variables (decision nodes) and, with
   hash-consing, shared subformulas (memoized circuit nodes) *)
let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then map (fun i -> v i) (int_range 0 3)
           else
             frequency
               [
                 (2, map (fun i -> v i) (int_range 0 3));
                 (1, map F.neg (self (n / 2)));
                 (2, map F.conj (list_size (int_range 2 3) (self (n / 2))));
                 (2, map F.disj (list_size (int_range 2 3) (self (n / 2))));
               ]))

let arb_formula = QCheck.make ~print:F.to_string gen_formula

let qcheck_eval_bitwise_exact =
  QCheck.Test.make ~name:"Circuit.eval is bitwise Prob.exact" ~count:500
    arb_formula (fun f ->
      let p = p_by_row [| 0.23; 0.48; 0.61; 0.87 |] in
      bitwise_equal (C.eval (C.compile f) p) (P.exact p f))

let qcheck_shared_subformulas =
  (* duplicate the generated formula inside a conjunction/disjunction:
     hash-consing makes both branches the same node, so the circuit must
     share (memoize) the compiled subcircuit and still agree bitwise *)
  QCheck.Test.make ~name:"shared subformulas agree bitwise" ~count:300
    arb_formula (fun f ->
      let g = F.disj [ F.conj [ f; v 0 ]; F.conj [ f; v 1 ]; f ] in
      let p = p_by_row [| 0.31; 0.57; 0.79; 0.11 |] in
      bitwise_equal (C.eval (C.compile g) p) (P.exact p g))

let qcheck_cap_is_all_or_nothing =
  (* a capped compile either yields a circuit that agrees bitwise, or
     refuses cleanly — never a wrong value *)
  QCheck.Test.make ~name:"node cap: agree or refuse" ~count:300
    (QCheck.pair arb_formula QCheck.small_nat) (fun (f, cap) ->
      let p = p_by_row [| 0.42; 0.17; 0.66; 0.93 |] in
      match C.compile_opt ~node_cap:(cap + 1) f with
      | None -> true
      | Some c -> bitwise_equal (C.eval c p) (P.exact p f))

(* ------------------------------------------------------------------ *)
(* solver identity: circuit-backed vs ladder-backed compiled evaluators *)

(* dyadic confidences and δ keep every evaluator's float arithmetic
   exact, so outcomes can be compared with (=) rather than a tolerance *)
let entangled_dyadic ~num_bases ~num_results ~width ~required ~seed () =
  let rng = Prng.Splitmix.of_int seed in
  let dyadics = [| 0.125; 0.25; 0.375; 0.5 |] in
  let bases =
    List.init num_bases (fun i ->
        {
          Problem.tid = Tid.make "cir" i;
          p0 = dyadics.(Prng.Splitmix.int rng 4);
          cap = 1.0;
          cost = Cost.Cost_model.random rng;
        })
  in
  let tids = Array.of_list (List.map (fun b -> b.Problem.tid) bases) in
  let formulas =
    List.init num_results (fun j ->
        F.disj
          (List.init (width - 1) (fun i ->
               let a = tids.((j + i) mod num_bases) in
               let b = tids.((j + i + 1) mod num_bases) in
               F.conj [ F.var a; F.var b ])))
  in
  Problem.make_exn ~delta:0.25 ~incremental:true ~beta:0.6 ~required ~bases
    ~formulas ()

let solvers =
  [
    ("greedy", Solver.greedy);
    ("divide-and-conquer", Solver.divide_conquer);
    ( "annealing",
      Solver.Annealing
        { Optimize.Annealing.default_config with iterations = 20_000 } );
    ("heuristic", Solver.Heuristic Optimize.Heuristic.default_config);
  ]

let test_solver_identity () =
  let make on =
    with_circuits on (fun () ->
        entangled_dyadic ~num_bases:10 ~num_results:8 ~width:4 ~required:3
          ~seed:7 ())
  in
  let pb_circ = make true in
  let pb_ladder = make false in
  (* the A/B is real: at least one class must actually be circuit-backed *)
  let kind_count pb kind =
    let n = ref 0 in
    for cid = 0 to Problem.num_classes pb - 1 do
      if Problem.evaluator_kind pb cid = kind then incr n
    done;
    !n
  in
  Alcotest.(check bool)
    "some circuit-backed classes" true
    (kind_count pb_circ "circuit" > 0);
  Alcotest.(check int) "no circuits when forced off" 0
    (kind_count pb_ladder "circuit");
  List.iter
    (fun (sname, algorithm) ->
      List.iter
        (fun jobs ->
          let solve pb = Solver.solve ~algorithm ~jobs pb in
          let oc = solve pb_circ in
          let ol = solve pb_ladder in
          let label = Printf.sprintf "%s jobs=%d" sname jobs in
          Alcotest.(check bool)
            (label ^ ": solutions equal") true
            (oc.Solver.solution = ol.Solver.solution);
          Alcotest.(check (list int))
            (label ^ ": satisfied equal") ol.Solver.satisfied
            oc.Solver.satisfied;
          Alcotest.(check bool)
            (label ^ ": costs bitwise equal") true
            (bitwise_equal oc.Solver.cost ol.Solver.cost))
        [ 1; 2; 4 ])
    solvers

let () =
  Alcotest.run "circuits"
    [
      ( "unit",
        [
          Alcotest.test_case "paper example" `Quick test_paper_example;
          Alcotest.test_case "shared vars decide" `Quick
            test_shared_vars_need_decisions;
          Alcotest.test_case "re-eval under new p" `Quick
            test_reeval_under_new_confidences;
          Alcotest.test_case "constants and negation" `Quick
            test_constants_and_negation;
          Alcotest.test_case "node-cap boundary" `Quick test_node_cap_boundary;
          Alcotest.test_case "force overrides" `Quick test_force_overrides;
          Alcotest.test_case "env kill switch" `Quick test_env_kill_switch;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_eval_bitwise_exact;
          QCheck_alcotest.to_alcotest qcheck_shared_subformulas;
          QCheck_alcotest.to_alcotest qcheck_cap_is_all_or_nothing;
        ] );
      ( "solver identity",
        [
          Alcotest.test_case "four solvers x jobs 1/2/4" `Quick
            test_solver_identity;
        ] );
    ]
