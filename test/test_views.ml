(* Tests for named views (quality-view style) and expected-value
   aggregates. *)

module A = Relational.Algebra
module E = Relational.Eval
module X = Relational.Expr
module V = Relational.Value
module S = Relational.Schema
module Db = Relational.Database
module R = Relational.Relation
module Vw = Relational.Views
module F = Lineage.Formula

let mk_db () =
  let r = R.create "Orders" (S.of_list [ ("cust", V.TString); ("total", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let ins db vs conf = fst (Db.insert db "Orders" vs ~conf) in
  let db = ins db [ V.String "ann"; V.Int 10 ] 0.9 in
  let db = ins db [ V.String "ann"; V.Int 20 ] 0.5 in
  let db = ins db [ V.String "bob"; V.Int 30 ] 0.8 in
  db

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

let run db plan =
  match E.run db plan with
  | Ok r -> r
  | Error msg -> Alcotest.failf "eval failed: %s" msg

let test_view_expansion () =
  let db = mk_db () in
  let views =
    ok (Vw.of_sql Vw.empty ~name:"BigOrders" "SELECT cust, total FROM Orders WHERE total >= 20")
  in
  let plan = Vw.expand views (A.scan "BigOrders") in
  let res = run db plan in
  Alcotest.(check int) "two big orders" 2 (List.length res.E.rows);
  (* the view's columns are qualified with the view name *)
  Alcotest.(check (list string)) "schema" [ "BigOrders.cust"; "BigOrders.total" ]
    (S.column_names res.E.schema);
  (* lineage flows through views *)
  Alcotest.(check (list string)) "lineage"
    [ "Orders#1"; "Orders#2" ]
    (List.map (fun r -> F.to_string r.E.lineage) res.E.rows)

let test_view_over_view () =
  let db = mk_db () in
  let views =
    ok (Vw.of_sql Vw.empty ~name:"BigOrders" "SELECT cust, total FROM Orders WHERE total >= 20")
  in
  let views =
    ok (Vw.of_sql views ~name:"AnnBig" "SELECT cust FROM BigOrders WHERE cust = 'ann'")
  in
  let res = run db (Vw.expand views (A.scan "AnnBig")) in
  Alcotest.(check int) "one row" 1 (List.length res.E.rows)

let test_view_shadows_relation () =
  let db = mk_db () in
  (* a view named like the base relation wins at expansion *)
  let views =
    ok (Vw.of_sql Vw.empty ~name:"TopOrders" "SELECT cust FROM Orders WHERE total >= 30")
  in
  Alcotest.(check (list string)) "names" [ "TopOrders" ] (Vw.names views);
  let res = run db (Vw.expand views (A.scan "TopOrders")) in
  Alcotest.(check int) "only bob" 1 (List.length res.E.rows)

let test_recursion_rejected () =
  let self = A.scan "Loop" in
  (match Vw.add Vw.empty "Loop" self with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "self-recursive view must be rejected");
  (* mutual recursion: A references B, then B referencing A must fail *)
  let va = ok (Vw.add Vw.empty "A" (A.scan "B")) in
  match Vw.add va "B" (A.scan "A") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mutually recursive views must be rejected"

let test_remove_and_find () =
  let views = ok (Vw.add Vw.empty "V" (A.scan "Orders")) in
  Alcotest.(check bool) "found" true (Vw.find views "V" <> None);
  let views = Vw.remove views "V" in
  Alcotest.(check bool) "removed" true (Vw.find views "V" = None)

let test_engine_uses_views () =
  let db = mk_db () in
  let views =
    ok
      (Vw.of_sql Vw.empty ~name:"Reliable"
         "SELECT cust, total FROM Orders WHERE total < 25")
  in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "analyst") "ana" in
    let m = ok (assign_user m ~user:"ana" ~role:"analyst") in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list [ Rbac.Policy.make ~role:"analyst" ~purpose:"p" ~beta:0.6 ]
  in
  let ctx = Pcqe.Engine.make_context ~views ~db ~rbac ~policies () in
  match
    Pcqe.Engine.answer ctx
      {
        Pcqe.Engine.query = Pcqe.Query.sql "SELECT cust, total FROM Reliable";
        user = "ana";
        purpose = "p";
        perc = 0.0;
      }
  with
  | Ok resp ->
    (* rows: ann@0.9 passes, ann@0.5 filtered *)
    Alcotest.(check int) "released" 1 (List.length resp.Pcqe.Engine.released);
    Alcotest.(check int) "withheld" 1 resp.Pcqe.Engine.withheld
  | Error msg -> Alcotest.fail msg

(* ------------------------------------------------------------------ *)
(* expected-value aggregates *)

let test_expected_count () =
  let db = mk_db () in
  let plan =
    A.Group_by
      ( [ "cust" ],
        [ { A.fn = A.Expected_count; arg = None; out = "ecnt" } ],
        A.scan "Orders" )
  in
  let res = run db plan in
  Alcotest.(check (list string)) "expected counts"
    [ "(ann, 1.4)"; "(bob, 0.8)" ]
    (List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows)

let test_expected_sum () =
  let db = mk_db () in
  let plan =
    A.Group_by
      ( [ "cust" ],
        [ { A.fn = A.Expected_sum; arg = Some "total"; out = "esum" } ],
        A.scan "Orders" )
  in
  let res = run db plan in
  (* ann: 0.9*10 + 0.5*20 = 19; bob: 0.8*30 = 24 *)
  Alcotest.(check (list string)) "expected sums"
    [ "(ann, 19.0)"; "(bob, 24.0)" ]
    (List.map (fun r -> Relational.Tuple.to_string r.E.tuple) res.E.rows)

let test_expected_aggregates_sql () =
  let db = mk_db () in
  match
    Relational.Sql_planner.compile
      "SELECT cust, ECOUNT(*) AS ec, ESUM(total) AS es FROM Orders GROUP BY cust"
  with
  | Error msg -> Alcotest.fail msg
  | Ok plan ->
    let res = run db plan in
    Alcotest.(check int) "two groups" 2 (List.length res.E.rows);
    Alcotest.(check (list string)) "schema" [ "cust"; "ec"; "es" ]
      (S.column_names res.E.schema)

let test_esum_requires_numeric () =
  let db = mk_db () in
  match
    Relational.Sql_planner.compile "SELECT ESUM(cust) AS x FROM Orders GROUP BY cust"
  with
  | Error _ -> ()
  | Ok plan -> (
    match E.run db plan with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "ESUM over a string column must fail")

let test_ecount_star_only () =
  match Relational.Sql_parser.parse "SELECT ECOUNT(total) FROM Orders" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ECOUNT(col) must be rejected"

(* every definition change must move the epoch — prepared plans that
   expanded a view are validated against it *)
let test_epoch_tracks_definitions () =
  let v0 = Vw.empty in
  let v1 = ok (Vw.of_sql v0 ~name:"Big" "SELECT cust FROM Orders") in
  let v2 = ok (Vw.of_sql v1 ~name:"Big" "SELECT cust FROM Orders WHERE total > 10") in
  let v3 = Vw.remove v2 "Big" in
  Alcotest.(check bool) "add < redefine < remove" true
    (Vw.epoch v0 < Vw.epoch v1
    && Vw.epoch v1 < Vw.epoch v2
    && Vw.epoch v2 < Vw.epoch v3);
  Alcotest.(check int) "no-op remove keeps the epoch" (Vw.epoch v3)
    (Vw.epoch (Vw.remove v3 "Big"))

let () =
  Alcotest.run "views"
    [
      ( "views",
        [
          Alcotest.test_case "expansion" `Quick test_view_expansion;
          Alcotest.test_case "view over view" `Quick test_view_over_view;
          Alcotest.test_case "shadowing" `Quick test_view_shadows_relation;
          Alcotest.test_case "recursion rejected" `Quick test_recursion_rejected;
          Alcotest.test_case "remove/find" `Quick test_remove_and_find;
          Alcotest.test_case "engine integration" `Quick test_engine_uses_views;
          Alcotest.test_case "epoch" `Quick test_epoch_tracks_definitions;
        ] );
      ( "expected-aggregates",
        [
          Alcotest.test_case "ECOUNT" `Quick test_expected_count;
          Alcotest.test_case "ESUM" `Quick test_expected_sum;
          Alcotest.test_case "SQL surface" `Quick test_expected_aggregates_sql;
          Alcotest.test_case "ESUM type check" `Quick test_esum_requires_numeric;
          Alcotest.test_case "ECOUNT star only" `Quick test_ecount_star_only;
        ] );
    ]
