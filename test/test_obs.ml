(* Unit tests for the observability library: deterministic clock, span
   nesting (incl. exception safety), histogram percentiles, and the JSONL
   record round-trip. *)

module T = Obs.Trace
module M = Obs.Metrics
module Sink = Obs.Sink

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- clock --- *)

let test_counter_clock () =
  let c = Obs.Clock.counter () in
  Alcotest.(check (float 0.0)) "first reading" 0.0 (c ());
  Alcotest.(check (float 0.0)) "second reading" 1.0 (c ());
  Alcotest.(check (float 0.0)) "third reading" 2.0 (c ());
  let c = Obs.Clock.counter ~step:0.5 () in
  ignore (c ());
  Alcotest.(check (float 0.0)) "stepped reading" 0.5 (c ())

(* --- span nesting --- *)

let test_span_nesting () =
  let t = T.create () in
  let result =
    T.span t "outer" (fun () ->
        T.span t "first" (fun () -> ());
        T.span t ~attrs:[ ("k", "v") ] "second" (fun () -> ());
        42)
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  match T.roots t with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.T.name;
    Alcotest.(check (list string))
      "children in order" [ "first"; "second" ]
      (List.map (fun s -> s.T.name) outer.T.children);
    (* counter clock: every leaf span takes exactly one tick *)
    List.iter
      (fun s -> Alcotest.(check (float 0.0)) "leaf elapsed" 1.0 s.T.elapsed)
      outer.T.children;
    let second = List.nth outer.T.children 1 in
    Alcotest.(check (list (pair string string)))
      "attrs survive" [ ("k", "v") ] second.T.attrs
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception_safety () =
  let t = T.create () in
  (try
     T.span t "outer" (fun () ->
         T.span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* both spans closed despite the exception; nesting preserved *)
  match T.roots t with
  | [ outer ] ->
    Alcotest.(check string) "root closed" "outer" outer.T.name;
    Alcotest.(check (list string))
      "inner closed under it" [ "inner" ]
      (List.map (fun s -> s.T.name) outer.T.children);
    (* and the stack is clean: a new span becomes a fresh root *)
    T.span t "after" (fun () -> ());
    Alcotest.(check int) "two roots now" 2 (List.length (T.roots t))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_add_attr_targets_open_span () =
  let t = T.create () in
  T.span t "outer" (fun () ->
      T.span t "inner" (fun () -> T.add_attr t "rows" "7"));
  match T.roots t with
  | [ outer ] ->
    let inner = List.hd outer.T.children in
    Alcotest.(check (list (pair string string)))
      "attr landed on the innermost span" [ ("rows", "7") ] inner.T.attrs;
    Alcotest.(check (list (pair string string))) "outer untouched" [] outer.T.attrs
  | _ -> Alcotest.fail "expected one root"

let test_render_and_reset () =
  let t = T.create () in
  T.span t "answer" (fun () -> T.span t "eval" (fun () -> ()));
  let text = T.render t in
  Alcotest.(check bool) "mentions root" true (contains ~needle:"answer" text);
  Alcotest.(check bool) "indents child" true (contains ~needle:"  eval" text);
  T.reset t;
  Alcotest.(check int) "reset clears roots" 0 (List.length (T.roots t))

(* --- metrics --- *)

let test_counters () =
  let m = M.create () in
  M.incr m "a";
  M.incr m ~by:4 "a";
  M.incr m "b";
  Alcotest.(check int) "accumulated" 5 (M.counter m "a");
  Alcotest.(check int) "independent" 1 (M.counter m "b");
  Alcotest.(check int) "absent reads zero" 0 (M.counter m "c")

let test_histogram_percentiles () =
  let m = M.create () in
  for i = 1 to 100 do
    M.observe m "lat" (float_of_int i)
  done;
  match M.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 100 h.M.count;
    Alcotest.(check (float 0.0)) "min" 1.0 h.M.min;
    Alcotest.(check (float 0.0)) "max" 100.0 h.M.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 h.M.mean;
    (* nearest-rank percentiles over 1..100 *)
    Alcotest.(check (float 0.0)) "p50" 50.0 h.M.p50;
    Alcotest.(check (float 0.0)) "p90" 90.0 h.M.p90;
    Alcotest.(check (float 0.0)) "p99" 99.0 h.M.p99

let test_histogram_single_observation () =
  let m = M.create () in
  M.observe m "x" 3.5;
  match M.histogram m "x" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 1 h.M.count;
    List.iter
      (fun (label, v) -> Alcotest.(check (float 0.0)) label 3.5 v)
      [ ("min", h.M.min); ("max", h.M.max); ("p50", h.M.p50); ("p99", h.M.p99) ]

(* --- JSONL round-trip --- *)

let roundtrip r =
  match Sink.record_of_json (Sink.record_to_json r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_jsonl_roundtrip_span () =
  let r =
    Sink.Span
      {
        path = [ "answer"; "eval" ];
        start = 3.0;
        elapsed = 0.0012345678901234567;
        attrs = [ ("rows", "42"); ("weird \"key\"", "line\nbreak\ttab\\") ];
      }
  in
  Alcotest.(check bool) "span round-trips exactly" true (roundtrip r = r)

let test_jsonl_roundtrip_counter_histogram () =
  let c = Sink.Counter { name = "engine.queries"; value = 17 } in
  Alcotest.(check bool) "counter round-trips" true (roundtrip c = c);
  let h =
    Sink.Histogram
      {
        name = "heuristic.nodes";
        stats =
          {
            M.count = 3;
            sum = 6.25;
            min = 1.0;
            max = 3.25;
            mean = 2.0833333333333335;
            p50 = 2.0;
            p90 = 3.25;
            p99 = 3.25;
          };
      }
  in
  Alcotest.(check bool) "histogram round-trips" true (roundtrip h = h)

let test_jsonl_rejects_garbage () =
  (match Sink.record_of_json "{\"type\":\"martian\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown record type");
  match Sink.record_of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-JSON input"

(* --- drain through a memory sink --- *)

let test_drain_preorder () =
  let obs = Obs.deterministic () in
  Obs.span (Some obs) "answer" (fun () ->
      Obs.span (Some obs) "eval" (fun () -> ());
      Obs.incr (Some obs) "engine.queries";
      Obs.observe (Some obs) "engine.rows" 4.0);
  let sink, get = Sink.memory () in
  Obs.drain obs sink;
  let paths =
    List.filter_map
      (function Sink.Span { path; _ } -> Some (String.concat "/" path) | _ -> None)
      (get ())
  in
  Alcotest.(check (list string))
    "preorder parent-first paths" [ "answer"; "answer/eval" ] paths;
  let counters =
    List.filter_map
      (function Sink.Counter { name; value } -> Some (name, value) | _ -> None)
      (get ())
  in
  Alcotest.(check (list (pair string int)))
    "counter drained" [ ("engine.queries", 1) ] counters

(* --- no-op helpers allocate nothing when disabled --- *)

let test_disabled_is_noop () =
  Alcotest.(check int) "span runs the body" 9 (Obs.span None "x" (fun () -> 9));
  Obs.incr None "c";
  Obs.observe None "h" 1.0;
  Obs.add_attr None "k" "v"

let () =
  Alcotest.run "obs"
    [
      ("clock", [ ("counter", `Quick, test_counter_clock) ]);
      ( "trace",
        [
          ("nesting", `Quick, test_span_nesting);
          ("exception safety", `Quick, test_span_exception_safety);
          ("add_attr", `Quick, test_add_attr_targets_open_span);
          ("render/reset", `Quick, test_render_and_reset);
        ] );
      ( "metrics",
        [
          ("counters", `Quick, test_counters);
          ("percentiles", `Quick, test_histogram_percentiles);
          ("single observation", `Quick, test_histogram_single_observation);
        ] );
      ( "sink",
        [
          ("span round-trip", `Quick, test_jsonl_roundtrip_span);
          ("counter/histogram round-trip", `Quick, test_jsonl_roundtrip_counter_histogram);
          ("rejects garbage", `Quick, test_jsonl_rejects_garbage);
          ("drain preorder", `Quick, test_drain_preorder);
          ("disabled is a no-op", `Quick, test_disabled_is_noop);
        ] );
    ]
