(* Unit tests for the observability library: deterministic clock, span
   nesting (incl. exception safety), histogram percentiles, gauges, the
   bounded log-bucketed histogram and its error bound, cross-task
   fork/stitch propagation, and the JSONL record round-trip. *)

module T = Obs.Trace
module M = Obs.Metrics
module Hdr = Obs.Hdr
module Sink = Obs.Sink
module Sm = Prng.Splitmix

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- clock --- *)

let test_counter_clock () =
  let c = Obs.Clock.counter () in
  Alcotest.(check (float 0.0)) "first reading" 0.0 (c ());
  Alcotest.(check (float 0.0)) "second reading" 1.0 (c ());
  Alcotest.(check (float 0.0)) "third reading" 2.0 (c ());
  let c = Obs.Clock.counter ~step:0.5 () in
  ignore (c ());
  Alcotest.(check (float 0.0)) "stepped reading" 0.5 (c ())

(* --- span nesting --- *)

let test_span_nesting () =
  let t = T.create () in
  let result =
    T.span t "outer" (fun () ->
        T.span t "first" (fun () -> ());
        T.span t ~attrs:[ ("k", "v") ] "second" (fun () -> ());
        42)
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  match T.roots t with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.T.name;
    Alcotest.(check (list string))
      "children in order" [ "first"; "second" ]
      (List.map (fun s -> s.T.name) outer.T.children);
    (* counter clock: every leaf span takes exactly one tick *)
    List.iter
      (fun s -> Alcotest.(check (float 0.0)) "leaf elapsed" 1.0 s.T.elapsed)
      outer.T.children;
    let second = List.nth outer.T.children 1 in
    Alcotest.(check (list (pair string string)))
      "attrs survive" [ ("k", "v") ] second.T.attrs
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_span_exception_safety () =
  let t = T.create () in
  (try
     T.span t "outer" (fun () ->
         T.span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  (* both spans closed despite the exception; nesting preserved *)
  match T.roots t with
  | [ outer ] ->
    Alcotest.(check string) "root closed" "outer" outer.T.name;
    Alcotest.(check (list string))
      "inner closed under it" [ "inner" ]
      (List.map (fun s -> s.T.name) outer.T.children);
    (* and the stack is clean: a new span becomes a fresh root *)
    T.span t "after" (fun () -> ());
    Alcotest.(check int) "two roots now" 2 (List.length (T.roots t))
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_add_attr_targets_open_span () =
  let t = T.create () in
  T.span t "outer" (fun () ->
      T.span t "inner" (fun () -> T.add_attr t "rows" "7"));
  match T.roots t with
  | [ outer ] ->
    let inner = List.hd outer.T.children in
    Alcotest.(check (list (pair string string)))
      "attr landed on the innermost span" [ ("rows", "7") ] inner.T.attrs;
    Alcotest.(check (list (pair string string))) "outer untouched" [] outer.T.attrs
  | _ -> Alcotest.fail "expected one root"

let test_render_and_reset () =
  let t = T.create () in
  T.span t "answer" (fun () -> T.span t "eval" (fun () -> ()));
  let text = T.render t in
  Alcotest.(check bool) "mentions root" true (contains ~needle:"answer" text);
  Alcotest.(check bool) "indents child" true (contains ~needle:"  eval" text);
  T.reset t;
  Alcotest.(check int) "reset clears roots" 0 (List.length (T.roots t))

let test_span_records_allocation () =
  let t = T.create () in
  let keep = ref [] in
  T.span t "alloc" (fun () ->
      (* allocate something unmistakably larger than the tracer's own
         bookkeeping *)
      keep := [ Array.make 4096 0.0 ]);
  ignore !keep;
  match T.roots t with
  | [ s ] ->
    Alcotest.(check bool)
      "span saw at least the 32 kB array" true
      (s.T.alloc >= 8.0 *. 4096.0)
  | _ -> Alcotest.fail "expected one root"

(* --- cross-task fork/stitch --- *)

let test_fork_stitch_sequential () =
  let obs = Obs.deterministic () in
  Obs.span (Some obs) "parallel" (fun () ->
      let fork = Obs.fork (Some obs) in
      let spans =
        Array.init 3 (fun i ->
            let (), sp =
              Obs.task fork
                ~attrs:[ ("i", string_of_int i) ]
                "group"
                (fun sub ->
                  match sub with
                  | Some tr -> T.span tr "inner" (fun () -> ())
                  | None -> Alcotest.fail "expected a subtracer")
            in
            sp)
      in
      Obs.stitch fork spans);
  match T.roots obs.Obs.trace with
  | [ root ] ->
    Alcotest.(check string) "root" "parallel" root.T.name;
    Alcotest.(check (list string))
      "three stitched children in task order"
      [ "group"; "group"; "group" ]
      (List.map (fun s -> s.T.name) root.T.children);
    List.iteri
      (fun i s ->
        Alcotest.(check (list (pair string string)))
          "task attrs" [ ("i", string_of_int i) ] s.T.attrs;
        Alcotest.(check (list string))
          "task child spans survive" [ "inner" ]
          (List.map (fun c -> c.T.name) s.T.children);
        (* fresh counter clock per task: identical shape for every task *)
        Alcotest.(check (float 0.0)) "task elapsed" 3.0 s.T.elapsed)
      root.T.children
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* the stitched tree must not depend on the jobs level: run the same
   fan-out sequentially and on 2- and 4-way pools and compare renders *)
let test_fork_stitch_jobs_invariant () =
  let run jobs =
    let obs = Obs.deterministic () in
    let results =
      Obs.span (Some obs) "parallel" (fun () ->
          let fork = Obs.fork (Some obs) in
          let work i () =
            Obs.task fork
              ~attrs:[ ("i", string_of_int i) ]
              "task"
              (fun sub ->
                (match sub with
                | Some tr -> T.span tr "inner" (fun () -> ())
                | None -> ());
                i * i)
          in
          let out =
            if jobs <= 1 then Array.init 8 (fun i -> work i ())
            else
              Exec.Pool.with_pool ~jobs (fun pool ->
                  Exec.Pool.mapi_array ~chunk:1 pool work (Array.make 8 ()))
          in
          Obs.stitch fork (Array.map snd out);
          Array.map fst out)
    in
    (results, T.render obs.Obs.trace)
  in
  let r1, t1 = run 1 in
  let r2, t2 = run 2 in
  let r4, t4 = run 4 in
  Alcotest.(check (array int)) "results at jobs=2" r1 r2;
  Alcotest.(check (array int)) "results at jobs=4" r1 r4;
  Alcotest.(check string) "tree at jobs=2" t1 t2;
  Alcotest.(check string) "tree at jobs=4" t1 t4;
  Alcotest.(check bool) "tree has stitched tasks" true
    (contains ~needle:"  task" t1)

let test_task_disabled_is_noop () =
  let v, spans = Obs.task None "task" (fun sub ->
      Alcotest.(check bool) "no subtracer" true (sub = None);
      7)
  in
  Alcotest.(check int) "body ran" 7 v;
  Alcotest.(check int) "no spans" 0 (List.length spans);
  Obs.stitch None [| [] |]

(* --- metrics --- *)

let test_counters () =
  let m = M.create () in
  M.incr m "a";
  M.incr m ~by:4 "a";
  M.incr m "b";
  Alcotest.(check int) "accumulated" 5 (M.counter m "a");
  Alcotest.(check int) "independent" 1 (M.counter m "b");
  Alcotest.(check int) "absent reads zero" 0 (M.counter m "c")

let test_gauges () =
  let m = M.create () in
  M.set_gauge m "cache.entries" 3.0;
  M.set_gauge m "cache.entries" 7.0;
  M.set_gauge m "db.epoch" 1.0;
  Alcotest.(check (option (float 0.0))) "last write wins" (Some 7.0)
    (M.gauge m "cache.entries");
  Alcotest.(check (option (float 0.0))) "absent" None (M.gauge m "nope");
  Alcotest.(check (list (pair string (float 0.0))))
    "sorted listing"
    [ ("cache.entries", 7.0); ("db.epoch", 1.0) ]
    (M.gauges m);
  let into = M.create () in
  M.set_gauge into "cache.entries" 1.0;
  M.merge ~into m;
  Alcotest.(check (option (float 0.0))) "merge overwrites" (Some 7.0)
    (M.gauge into "cache.entries")

let test_histogram_percentiles () =
  let m = M.create () in
  for i = 1 to 100 do
    M.observe m "lat" (float_of_int i)
  done;
  match M.histogram m "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 100 h.M.count;
    Alcotest.(check (float 0.0)) "min" 1.0 h.M.min;
    Alcotest.(check (float 0.0)) "max" 100.0 h.M.max;
    Alcotest.(check (float 1e-9)) "mean" 50.5 h.M.mean;
    (* nearest-rank percentiles over 1..100 *)
    Alcotest.(check (float 0.0)) "p50" 50.0 h.M.p50;
    Alcotest.(check (float 0.0)) "p90" 90.0 h.M.p90;
    Alcotest.(check (float 0.0)) "p99" 99.0 h.M.p99

let test_histogram_single_observation () =
  let m = M.create () in
  M.observe m "x" 3.5;
  match M.histogram m "x" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 1 h.M.count;
    List.iter
      (fun (label, v) -> Alcotest.(check (float 0.0)) label 3.5 v)
      [ ("min", h.M.min); ("max", h.M.max); ("p50", h.M.p50); ("p99", h.M.p99) ]

let test_openmetrics () =
  let m = M.create () in
  M.incr m ~by:3 "engine.queries";
  M.set_gauge m "cache.plans.entries" 2.0;
  M.observe m "engine.rows" 4.0;
  M.observe m "engine.rows" 6.0;
  let text = M.to_openmetrics m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains ~needle text))
    [
      "# TYPE pcqe_engine_queries counter";
      "pcqe_engine_queries_total 3";
      "# TYPE pcqe_cache_plans_entries gauge";
      "pcqe_cache_plans_entries 2.0";
      "# TYPE pcqe_engine_rows summary";
      "pcqe_engine_rows{quantile=\"0.5\"} 4.0";
      "pcqe_engine_rows_sum 10.0";
      "pcqe_engine_rows_count 2";
    ];
  let eof = "# EOF\n" in
  Alcotest.(check string) "ends with EOF"
    eof
    (String.sub text (String.length text - String.length eof) (String.length eof))

(* --- bounded histogram --- *)

let test_hdr_fixed_memory () =
  let h = Hdr.create () in
  let fixed = Hdr.bucket_count h in
  let rng = Sm.of_int 7 in
  for _ = 1 to 1_200_000 do
    (* log-uniform over twelve decades, plus occasional out-of-range *)
    let v = exp (Sm.float_in rng (log 1e-7) (log 1e5)) in
    Hdr.observe h v
  done;
  Hdr.observe h 0.0;
  Hdr.observe h (-3.0);
  Hdr.observe h 1e15;
  Alcotest.(check int) "count is exact" 1_200_003 (Hdr.count h);
  Alcotest.(check int) "bucket array never grew" fixed (Hdr.bucket_count h);
  Alcotest.(check int) "same footprint as a fresh sketch" fixed
    (Hdr.bucket_count (Hdr.create ()));
  Alcotest.(check (float 0.0)) "min exact" (-3.0) (Hdr.min_value h);
  Alcotest.(check (float 0.0)) "max exact" 1e15 (Hdr.max_value h)

(* pin the documented quantile error bound against the exact histogram
   on random in-range streams *)
let qcheck_hdr_error_bound =
  QCheck.Test.make ~name:"bounded quantiles within alpha of exact" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let rng = Sm.of_int seed in
      let n = 1 + Sm.int_in rng 1 4000 in
      let alpha = 0.01 in
      let h = Hdr.create ~alpha () in
      let values = Array.init n (fun _ -> exp (Sm.float_in rng (log 1e-6) (log 1e6))) in
      Array.iter (Hdr.observe h) values;
      let sorted = Array.copy values in
      Array.sort Float.compare sorted;
      List.for_all
        (fun q ->
          let exact = M.percentile sorted q in
          let approx = Hdr.quantile h q in
          Float.abs (approx -. exact) <= (alpha *. exact) +. 1e-12)
        [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

let test_hdr_merge () =
  let a = Hdr.create () and b = Hdr.create () in
  for i = 1 to 50 do
    Hdr.observe a (float_of_int i)
  done;
  for i = 51 to 100 do
    Hdr.observe b (float_of_int i)
  done;
  Hdr.merge ~into:a b;
  Alcotest.(check int) "merged count" 100 (Hdr.count a);
  Alcotest.(check (float 0.0)) "merged min" 1.0 (Hdr.min_value a);
  Alcotest.(check (float 0.0)) "merged max" 100.0 (Hdr.max_value a);
  let q = Hdr.quantile a 0.5 in
  Alcotest.(check bool) "median within bound" true
    (Float.abs (q -. 50.0) <= 0.01 *. 50.0 +. 1e-12)

let test_observe_bounded_registry () =
  let m = M.create () in
  for i = 1 to 1000 do
    M.observe_bounded m "serving.answer_s" (float_of_int i)
  done;
  match M.histogram m "serving.answer_s" with
  | None -> Alcotest.fail "bounded histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 1000 h.M.count;
    Alcotest.(check (float 0.0)) "exact min" 1.0 h.M.min;
    Alcotest.(check (float 0.0)) "exact max" 1000.0 h.M.max;
    Alcotest.(check bool) "p50 within 1%" true
      (Float.abs (h.M.p50 -. 500.0) <= 5.0 +. 1e-9)

(* --- JSONL round-trip --- *)

let roundtrip r =
  match Sink.record_of_json (Sink.record_to_json r) with
  | Ok r' -> r'
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_jsonl_roundtrip_span () =
  let r =
    Sink.Span
      {
        path = [ "answer"; "eval" ];
        start = 3.0;
        elapsed = 0.0012345678901234567;
        alloc = 8192.0;
        attrs =
          [
            ("rows", "42");
            ("weird \"key\"", "line\nbreak\ttab\\");
            ("control", "nul\x00bel\x07del\x7f");
          ];
      }
  in
  Alcotest.(check bool) "span round-trips exactly" true (roundtrip r = r)

let test_jsonl_roundtrip_counter_histogram () =
  let c = Sink.Counter { name = "engine.queries"; value = 17 } in
  Alcotest.(check bool) "counter round-trips" true (roundtrip c = c);
  let g = Sink.Gauge { name = "cache.conf.entries"; value = 12.5 } in
  Alcotest.(check bool) "gauge round-trips" true (roundtrip g = g);
  let h =
    Sink.Histogram
      {
        name = "heuristic.nodes";
        stats =
          {
            M.count = 3;
            sum = 6.25;
            min = 1.0;
            max = 3.25;
            mean = 2.0833333333333335;
            p50 = 2.0;
            p90 = 3.25;
            p99 = 3.25;
          };
      }
  in
  Alcotest.(check bool) "histogram round-trips" true (roundtrip h = h)

(* qcheck: EVERY emitted line is valid single-line JSON that parses back
   to the same record — arbitrary byte strings (control characters, DEL,
   high bytes) in names, span paths and attrs included *)
let record_gen =
  let open QCheck.Gen in
  (* any byte *)
  let any_char = map Char.chr (int_range 0 255) in
  let any_string = string_size ~gen:any_char (int_range 0 16) in
  (* span path segments join on '/', so segments must not contain it *)
  let seg_char =
    map (fun i -> Char.chr (if i >= Char.code '/' then i + 1 else i)) (int_range 0 254)
  in
  let seg = string_size ~gen:seg_char (int_range 0 12) in
  let fin = map (fun i -> float_of_int i /. 1024.0) (int_range (-1_000_000_000) 1_000_000_000) in
  let pos = map (fun i -> float_of_int i /. 1024.0) (int_range 0 1_000_000_000) in
  oneof
    [
      map3
        (fun path times attrs ->
          let start, elapsed, alloc = times in
          Sink.Span { path; start; elapsed; alloc; attrs })
        (list_size (int_range 1 4) seg)
        (triple fin pos pos)
        (list_size (int_range 0 4) (pair any_string any_string));
      map2 (fun name value -> Sink.Counter { name; value }) any_string nat;
      map2 (fun name value -> Sink.Gauge { name; value }) any_string fin;
      map2
        (fun name (count, (sum, mn, mx), (mean, p50, p90), p99) ->
          Sink.Histogram
            {
              name;
              stats = { M.count; sum; min = mn; max = mx; mean; p50; p90; p99 };
            })
        any_string
        (quad (int_range 0 10000) (triple fin fin fin) (triple fin fin fin) fin);
    ]

let qcheck_jsonl_roundtrip =
  QCheck.Test.make ~name:"every JSONL record round-trips" ~count:500
    (QCheck.make record_gen)
    (fun r ->
      let line = Sink.record_to_json r in
      (* single line: the encoder escaped every control character *)
      String.for_all (fun c -> c <> '\n' && c <> '\r') line
      && Sink.record_of_json line = Ok r)

let test_jsonl_rejects_garbage () =
  (match Sink.record_of_json "{\"type\":\"martian\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted unknown record type");
  match Sink.record_of_json "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted non-JSON input"

let test_jsonl_parses_legacy_span () =
  (* lines written before the [alloc] field existed still parse *)
  match
    Sink.record_of_json
      "{\"type\":\"span\",\"path\":\"a/b\",\"start\":1.0,\"elapsed\":2.0,\"attrs\":{}}"
  with
  | Ok (Sink.Span { path = [ "a"; "b" ]; alloc = 0.0; _ }) -> ()
  | Ok _ -> Alcotest.fail "parsed into the wrong record"
  | Error msg -> Alcotest.failf "legacy line rejected: %s" msg

(* --- drain through a memory sink --- *)

let test_drain_preorder () =
  let obs = Obs.deterministic () in
  Obs.span (Some obs) "answer" (fun () ->
      Obs.span (Some obs) "eval" (fun () -> ());
      Obs.incr (Some obs) "engine.queries";
      Obs.set_gauge (Some obs) "cache.plans.entries" 1.0;
      Obs.observe (Some obs) "engine.rows" 4.0);
  let sink, get = Sink.memory () in
  Obs.drain obs sink;
  let paths =
    List.filter_map
      (function Sink.Span { path; _ } -> Some (String.concat "/" path) | _ -> None)
      (get ())
  in
  Alcotest.(check (list string))
    "preorder parent-first paths" [ "answer"; "answer/eval" ] paths;
  let counters =
    List.filter_map
      (function Sink.Counter { name; value } -> Some (name, value) | _ -> None)
      (get ())
  in
  Alcotest.(check (list (pair string int)))
    "counter drained" [ ("engine.queries", 1) ] counters;
  let gauges =
    List.filter_map
      (function Sink.Gauge { name; value } -> Some (name, value) | _ -> None)
      (get ())
  in
  Alcotest.(check (list (pair string (float 0.0))))
    "gauge drained" [ ("cache.plans.entries", 1.0) ] gauges

(* --- profile --- *)

let test_profile_of_span () =
  let obs = Obs.deterministic () in
  let before = Obs.Profile.snapshot obs.Obs.metrics in
  Obs.span (Some obs) "answer" (fun () ->
      Obs.span (Some obs) ~attrs:[ ("rows", "3") ] "eval" (fun () -> ());
      Obs.incr (Some obs) "engine.queries";
      Obs.incr (Some obs) ~by:3 "engine.released");
  match Obs.Trace.roots obs.Obs.trace with
  | [ root ] ->
    let p = Obs.Profile.of_span ~before ~metrics:obs.Obs.metrics root in
    Alcotest.(check (list string))
      "preorder stage paths" [ "answer"; "answer/eval" ]
      (List.map (fun s -> String.concat "/" s.Obs.Profile.path) p.Obs.Profile.stages);
    Alcotest.(check (list (pair string int)))
      "counter deltas"
      [ ("engine.queries", 1); ("engine.released", 3) ]
      p.Obs.Profile.counters;
    Alcotest.(check (float 0.0)) "root elapsed" 3.0 p.Obs.Profile.elapsed;
    let text = Obs.Profile.render p in
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("render mentions " ^ needle) true
          (contains ~needle text))
      [ "answer"; "  eval"; "rows=3"; "engine.released"; "+3" ]
  | _ -> Alcotest.fail "expected one root"

(* --- no-op helpers allocate nothing when disabled --- *)

let test_disabled_is_noop () =
  Alcotest.(check int) "span runs the body" 9 (Obs.span None "x" (fun () -> 9));
  Obs.incr None "c";
  Obs.observe None "h" 1.0;
  Obs.observe_bounded None "h" 1.0;
  Obs.set_gauge None "g" 1.0;
  Alcotest.(check (float 0.0)) "now reads zero" 0.0 (Obs.now None);
  Obs.add_attr None "k" "v"

let () =
  Alcotest.run "obs"
    [
      ("clock", [ ("counter", `Quick, test_counter_clock) ]);
      ( "trace",
        [
          ("nesting", `Quick, test_span_nesting);
          ("exception safety", `Quick, test_span_exception_safety);
          ("add_attr", `Quick, test_add_attr_targets_open_span);
          ("render/reset", `Quick, test_render_and_reset);
          ("allocation", `Quick, test_span_records_allocation);
        ] );
      ( "fork/stitch",
        [
          ("sequential", `Quick, test_fork_stitch_sequential);
          ("jobs invariant", `Quick, test_fork_stitch_jobs_invariant);
          ("disabled is a no-op", `Quick, test_task_disabled_is_noop);
        ] );
      ( "metrics",
        [
          ("counters", `Quick, test_counters);
          ("gauges", `Quick, test_gauges);
          ("percentiles", `Quick, test_histogram_percentiles);
          ("single observation", `Quick, test_histogram_single_observation);
          ("openmetrics", `Quick, test_openmetrics);
        ] );
      ( "bounded histogram",
        [
          ("fixed memory under 1.2M observations", `Quick, test_hdr_fixed_memory);
          QCheck_alcotest.to_alcotest qcheck_hdr_error_bound;
          ("merge", `Quick, test_hdr_merge);
          ("via the registry", `Quick, test_observe_bounded_registry);
        ] );
      ( "sink",
        [
          ("span round-trip", `Quick, test_jsonl_roundtrip_span);
          ("counter/gauge/histogram round-trip", `Quick, test_jsonl_roundtrip_counter_histogram);
          QCheck_alcotest.to_alcotest qcheck_jsonl_roundtrip;
          ("rejects garbage", `Quick, test_jsonl_rejects_garbage);
          ("legacy span line", `Quick, test_jsonl_parses_legacy_span);
          ("drain preorder", `Quick, test_drain_preorder);
          ("disabled is a no-op", `Quick, test_disabled_is_noop);
        ] );
      ("profile", [ ("of_span + render", `Quick, test_profile_of_span) ]);
    ]
