(* Tests for the SplitMix64 generator. *)

module Sm = Prng.Splitmix

let test_determinism () =
  let a = Sm.of_int 42 and b = Sm.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Sm.next_int64 a) (Sm.next_int64 b)
  done

let test_different_seeds_differ () =
  let a = Sm.of_int 1 and b = Sm.of_int 2 in
  let same = ref 0 in
  for _ = 1 to 20 do
    if Sm.next_int64 a = Sm.next_int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 3)

let test_copy_is_independent () =
  let a = Sm.of_int 7 in
  ignore (Sm.next_int64 a);
  let b = Sm.copy a in
  Alcotest.(check int64) "copy continues identically" (Sm.next_int64 a)
    (Sm.next_int64 b);
  (* advancing one does not affect the other *)
  ignore (Sm.next_int64 a);
  ignore (Sm.next_int64 a);
  let va = Sm.next_int64 a in
  let vb = Sm.next_int64 b in
  Alcotest.(check bool) "desynchronized" true (va <> vb)

let test_split_independence () =
  let a = Sm.of_int 9 in
  let b = Sm.split a in
  let equal = ref 0 in
  for _ = 1 to 50 do
    if Sm.next_int64 a = Sm.next_int64 b then incr equal
  done;
  Alcotest.(check int) "split streams do not collide" 0 !equal

let test_int_bounds_exhaustive () =
  let rng = Sm.of_int 3 in
  for bound = 1 to 40 do
    for _ = 1 to 50 do
      let v = Sm.int rng bound in
      if v < 0 || v >= bound then
        Alcotest.failf "int %d out of [0,%d)" v bound
    done
  done

let test_int_rejects_nonpositive () =
  let rng = Sm.of_int 4 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Splitmix.int: bound must be positive")
    (fun () -> ignore (Sm.int rng 0))

let test_int_in () =
  let rng = Sm.of_int 5 in
  for _ = 1 to 200 do
    let v = Sm.int_in rng (-3) 7 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 7)
  done

let test_int_covers_all_values () =
  let rng = Sm.of_int 6 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Sm.int rng 5) <- true
  done;
  Alcotest.(check bool) "all residues reachable" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Sm.of_int 7 in
  for _ = 1 to 1000 do
    let v = Sm.float rng 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_float_in_range () =
  let rng = Sm.of_int 8 in
  for _ = 1 to 1000 do
    let v = Sm.float_in rng 0.05 0.15 in
    Alcotest.(check bool) "in [0.05, 0.15)" true (v >= 0.05 && v < 0.15)
  done

let test_coin_extremes () =
  let rng = Sm.of_int 9 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never true" false (Sm.coin rng 0.0);
    Alcotest.(check bool) "p=1 always true" true (Sm.coin rng 1.0)
  done

let test_coin_mean () =
  let rng = Sm.of_int 10 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Sm.coin rng 0.3 then incr hits
  done;
  let mean = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 0.3" mean)
    true
    (Float.abs (mean -. 0.3) < 0.02)

let test_shuffle_is_permutation () =
  let rng = Sm.of_int 11 in
  let arr = Array.init 50 Fun.id in
  Sm.shuffle_in_place rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Sm.of_int 12 in
  for _ = 1 to 50 do
    let s = Sm.sample_without_replacement rng 10 30 in
    Alcotest.(check int) "k elements" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    Array.iteri
      (fun i v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < 30);
        if i > 0 then
          Alcotest.(check bool) "distinct" true (sorted.(i - 1) <> v))
      sorted
  done

let test_sample_edge_cases () =
  let rng = Sm.of_int 13 in
  Alcotest.(check int) "k=0" 0 (Array.length (Sm.sample_without_replacement rng 0 5));
  let all = Sm.sample_without_replacement rng 5 5 in
  let sorted = Array.copy all in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "k=n is a permutation" [| 0; 1; 2; 3; 4 |] sorted;
  Alcotest.check_raises "k>n rejected"
    (Invalid_argument "Splitmix.sample_without_replacement: need 0 <= k <= n")
    (fun () -> ignore (Sm.sample_without_replacement rng 6 5))

let test_gaussian_moments () =
  let rng = Sm.of_int 14 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Sm.gaussian rng ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean ~ 3" true (Float.abs (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "variance ~ 4" true (Float.abs (var -. 4.0) < 0.3)

let test_exponential_mean () =
  let rng = Sm.of_int 15 in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Sm.exponential rng ~rate:2.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean ~ 0.5" true (Float.abs (mean -. 0.5) < 0.05)

let test_split_n_basic () =
  Alcotest.(check int) "zero count" 0 (Array.length (Sm.split_n (Sm.of_int 1) 0));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Splitmix.split_n: negative count") (fun () ->
      ignore (Sm.split_n (Sm.of_int 1) (-1)));
  let rng = Sm.of_int 5 in
  Alcotest.(check int) "length" 8 (Array.length (Sm.split_n rng 8));
  (* split_n is just n splits: a twin generator split by hand agrees *)
  let a = Sm.of_int 9 and b = Sm.of_int 9 in
  let xs = Sm.split_n a 4 in
  let ys = Array.make 4 b in
  for i = 0 to 3 do
    ys.(i) <- Sm.split b
  done;
  Array.iteri
    (fun i x ->
      Alcotest.(check int64)
        (Printf.sprintf "sibling %d" i)
        (Sm.next_int64 ys.(i)) (Sm.next_int64 x))
    xs

let test_split_n_independence () =
  (* sibling streams: no collisions in raw output, negligible pairwise
     correlation of uniform floats *)
  let k = 16 and n = 2000 in
  let rngs = Sm.split_n (Sm.of_int 77) k in
  let outputs = Array.map (fun rng -> Array.init n (fun _ -> Sm.float rng 1.0)) rngs in
  let seen = Hashtbl.create (k * n) in
  let rngs' = Sm.split_n (Sm.of_int 77) k in
  Array.iter
    (fun rng ->
      for _ = 1 to n do
        let v = Sm.next_int64 rng in
        Alcotest.(check bool) "no int64 collisions" false (Hashtbl.mem seen v);
        Hashtbl.add seen v ()
      done)
    rngs';
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let corr xs ys =
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    !sxy /. sqrt (!sxx *. !syy)
  in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let c = corr outputs.(i) outputs.(j) in
      if Float.abs c >= 0.1 then
        Alcotest.failf "siblings %d,%d correlate: %f" i j c
    done
  done

let qcheck_int_uniformish =
  QCheck.Test.make ~name:"choice picks every element eventually" ~count:50
    QCheck.(int_range 1 20)
    (fun n ->
      let rng = Sm.of_int n in
      let arr = Array.init n Fun.id in
      let seen = Array.make n false in
      for _ = 1 to 100 * n do
        seen.(Sm.choice rng arr) <- true
      done;
      Array.for_all Fun.id seen)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "copy" `Quick test_copy_is_independent;
          Alcotest.test_case "split" `Quick test_split_independence;
          Alcotest.test_case "split_n basic" `Quick test_split_n_basic;
          Alcotest.test_case "split_n independence" `Quick
            test_split_n_independence;
          Alcotest.test_case "int bounds" `Quick test_int_bounds_exhaustive;
          Alcotest.test_case "int rejects <=0" `Quick test_int_rejects_nonpositive;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "int coverage" `Quick test_int_covers_all_values;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float_in range" `Quick test_float_in_range;
          Alcotest.test_case "coin extremes" `Quick test_coin_extremes;
          Alcotest.test_case "coin mean" `Quick test_coin_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sampling distinct" `Quick test_sample_without_replacement;
          Alcotest.test_case "sampling edges" `Quick test_sample_edge_cases;
          Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_int_uniformish ]);
    ]
