(* Tests for the REPL state machine (pure command processor). *)

module Repl = Pcqe.Repl
module E = Pcqe.Engine
module Db = Relational.Database
module V = Relational.Value
module S = Relational.Schema
module Tid = Lineage.Tid

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let mk_state () =
  let r = Relational.Relation.create "T" (S.of_list [ ("x", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db, _ = Db.insert db "T" [ V.Int 1 ] ~conf:0.9 in
  let db, _ = Db.insert db "T" [ V.Int 2 ] ~conf:0.3 in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "analyst") "u" in
    let m = ok (assign_user m ~user:"u" ~role:"analyst") in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list [ Rbac.Policy.make ~role:"analyst" ~purpose:"p" ~beta:0.5 ]
  in
  Repl.create (E.make_context ~db ~rbac ~policies ())

let step state line =
  match Repl.execute state line with
  | Repl.Reply (s, text) -> (s, text)
  | Repl.Quit -> Alcotest.fail "unexpected quit"

let test_quit_variants () =
  let s = mk_state () in
  List.iter
    (fun line ->
      match Repl.execute s line with
      | Repl.Quit -> ()
      | Repl.Reply _ -> Alcotest.failf "%s should quit" line)
    [ "\\quit"; "\\q"; "\\exit" ]

let test_requires_user () =
  let s = mk_state () in
  let _, text = step s "SELECT x FROM T" in
  Alcotest.(check bool) "asks for a user" true (contains ~needle:"\\user" text)

let test_full_session () =
  let s = mk_state () in
  let s, text = step s "\\user u" in
  Alcotest.(check bool) "ack" true (contains ~needle:"acting as u" text);
  let s, _ = step s "\\purpose p" in
  let s, text = step s "SELECT x FROM T" in
  Alcotest.(check bool) "released row shown" true (contains ~needle:"(1" text || contains ~needle:"| 1" text);
  Alcotest.(check bool) "withheld reported" true (contains ~needle:"withheld" text);
  Alcotest.(check bool) "proposal hint" true (contains ~needle:"\\apply" text);
  (* accept the proposal and re-query *)
  let s, text = step s "\\apply" in
  Alcotest.(check bool) "applied" true (contains ~needle:"applied" text);
  let s, text = step s "SELECT x FROM T" in
  Alcotest.(check bool) "nothing withheld now" false (contains ~needle:"withheld" text);
  ignore s

let test_apply_without_proposal () =
  let s = mk_state () in
  let _, text = step s "\\apply" in
  Alcotest.(check bool) "no pending" true (contains ~needle:"no pending" text)

let test_meta_listings () =
  let s = mk_state () in
  let _, text = step s "\\tables" in
  Alcotest.(check bool) "lists T" true (contains ~needle:"T" text);
  let _, text = step s "\\policies" in
  Alcotest.(check bool) "lists policy" true (contains ~needle:"analyst" text);
  let _, text = step s "\\views" in
  Alcotest.(check bool) "no views" true (contains ~needle:"no views" text);
  let _, text = step s "\\whoami" in
  Alcotest.(check bool) "unset user" true (contains ~needle:"(unset)" text)

let test_solver_switch () =
  let s = mk_state () in
  let s, text = step s "\\solver greedy" in
  Alcotest.(check bool) "ack" true (contains ~needle:"greedy" text);
  let _, text = step s "\\solver bogus" in
  Alcotest.(check bool) "rejects bogus" true (contains ~needle:"unknown solver" text)

let test_perc_validation () =
  let s = mk_state () in
  let _, text = step s "\\perc 2" in
  Alcotest.(check bool) "rejected" true (contains ~needle:"bad fraction" text);
  let _, text = step s "\\perc 0.5" in
  Alcotest.(check bool) "accepted" true (contains ~needle:"0.5" text)

let test_bad_sql_does_not_kill_state () =
  let s = mk_state () in
  let s, _ = step s "\\user u" in
  let s, text = step s "SELEKT nonsense" in
  Alcotest.(check bool) "error reported" true (contains ~needle:"error" text);
  (* still functional afterwards *)
  let _, text = step s "\\whoami" in
  Alcotest.(check bool) "alive" true (contains ~needle:"user=u" text)

let test_explain () =
  let s = mk_state () in
  let _, text = step s "\\explain" in
  Alcotest.(check bool) "needs a query first" true
    (contains ~needle:"no previous query" text);
  let s, _ = step s "\\user u" in
  let s, _ = step s "\\purpose p" in
  let s, _ = step s "SELECT x FROM T" in
  let _, text = step s "\\explain" in
  Alcotest.(check bool) "witness section" true (contains ~needle:"witnesses" text);
  Alcotest.(check bool) "influence section" true (contains ~needle:"influence" text);
  Alcotest.(check bool) "mentions tuples" true (contains ~needle:"T#0" text)

let test_audit_trail () =
  let s = mk_state () in
  let _, text = step s "\\audit" in
  Alcotest.(check bool) "starts empty" true (contains ~needle:"0 entries" text);
  let s, _ = step s "\\user u" in
  let s, _ = step s "\\purpose p" in
  let s, _ = step s "SELECT x FROM T" in
  let s, _ = step s "\\apply" in
  let s, _ = step s "SELEKT broken" in
  let _, text = step s "\\audit" in
  Alcotest.(check bool) "query logged" true (contains ~needle:"query user=u" text);
  Alcotest.(check bool) "improvement logged" true (contains ~needle:"improvement" text);
  Alcotest.(check bool) "denial logged" true (contains ~needle:"denied" text);
  Alcotest.(check int) "three events" 3 (Pcqe.Audit.length (Repl.audit s))

let test_save () =
  let s = mk_state () in
  let s, _ = step s "\\user u" in
  let s, _ = step s "\\purpose p" in
  let s, _ = step s "SELECT x FROM T" in
  let s, _ = step s "\\apply" in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pcqe_repl_save_%d" (Unix.getpid ()))
  in
  let s, text = step s ("\\save " ^ dir) in
  ignore s;
  Alcotest.(check bool) "ack" true (contains ~needle:"saved workspace" text);
  Alcotest.(check bool) "relation exported" true
    (Sys.file_exists (Filename.concat dir "relations/T.csv"));
  Alcotest.(check bool) "audit exported" true
    (Sys.file_exists (Filename.concat dir "audit.log"));
  (* the audit log parses back *)
  let ic = open_in (Filename.concat dir "audit.log") in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Pcqe.Audit.parse text with
  | Ok log -> Alcotest.(check int) "two events" 2 (Pcqe.Audit.length log)
  | Error msg -> Alcotest.fail msg

let test_unknown_meta_and_blank () =
  let s = mk_state () in
  let _, text = step s "\\frobnicate" in
  Alcotest.(check bool) "unknown hint" true (contains ~needle:"\\help" text);
  let _, text = step s "   " in
  Alcotest.(check string) "blank line" "" text

let test_faults_command () =
  let s = mk_state () in
  (* status while disarmed lists the registered sites *)
  let s, text = step s "\\faults" in
  Alcotest.(check bool) "lists sites" true (contains ~needle:"state.eval" text);
  (* a typo'd site fails loudly *)
  let s, text = step s "\\faults 7 state.evil" in
  Alcotest.(check bool) "typo rejected" true (contains ~needle:"state.evil" text);
  Alcotest.(check bool) "still disarmed" false (Resilience.Fault.armed ());
  let s, text = step s "\\faults 7 state.eval,prob.mc 3" in
  Alcotest.(check bool) "armed reply" true (contains ~needle:"seed 7" text);
  Alcotest.(check bool) "plan armed" true (Resilience.Fault.armed ());
  (* status now shows the plan and hit counters *)
  let s, text = step s "\\faults" in
  Alcotest.(check bool) "shows seed" true (contains ~needle:"seed" text);
  Alcotest.(check bool) "shows max" true (contains ~needle:"3" text);
  Alcotest.(check bool) "shows sites" true (contains ~needle:"state.eval" text);
  (* queries keep working (or fail as injected faults) with the plan on *)
  let s, _ = step s "\\user u" in
  let s, _ = step s "\\purpose p" in
  let s, text = step s "SELECT x FROM T" in
  Alcotest.(check bool) "query terminal under faults" true
    (String.length text > 0);
  let s, text = step s "\\faults off" in
  Alcotest.(check bool) "disarm reply" true (contains ~needle:"disarmed" text);
  Alcotest.(check bool) "plan disarmed" false (Resilience.Fault.armed ());
  ignore s

let () =
  Alcotest.run "repl"
    [
      ( "repl",
        [
          Alcotest.test_case "quit" `Quick test_quit_variants;
          Alcotest.test_case "requires user" `Quick test_requires_user;
          Alcotest.test_case "full session" `Quick test_full_session;
          Alcotest.test_case "apply without proposal" `Quick test_apply_without_proposal;
          Alcotest.test_case "listings" `Quick test_meta_listings;
          Alcotest.test_case "solver switch" `Quick test_solver_switch;
          Alcotest.test_case "perc validation" `Quick test_perc_validation;
          Alcotest.test_case "bad sql" `Quick test_bad_sql_does_not_kill_state;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "audit" `Quick test_audit_trail;
          Alcotest.test_case "save" `Quick test_save;
          Alcotest.test_case "unknown meta" `Quick test_unknown_meta_and_blank;
          Alcotest.test_case "faults arm/disarm" `Quick test_faults_command;
        ] );
    ]
