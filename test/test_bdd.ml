(* Tests for the OBDD package: semantics, canonicity, probability. *)

module B = Lineage.Bdd
module F = Lineage.Formula
module P = Lineage.Prob
module Tid = Lineage.Tid

let v i = F.var (Tid.make "t" i)

let test_constants () =
  let m = B.manager () in
  Alcotest.(check bool) "zero" true (B.is_zero (B.zero m));
  Alcotest.(check bool) "one" true (B.is_one (B.one m));
  Alcotest.(check bool) "not zero = one" true (B.is_one (B.bnot m (B.zero m)))

let test_var_semantics () =
  let m = B.manager () in
  let x = B.var m (Tid.make "t" 0) in
  Alcotest.(check bool) "x true" true (B.eval (fun _ -> true) x);
  Alcotest.(check bool) "x false" false (B.eval (fun _ -> false) x)

let test_canonicity () =
  let m = B.manager () in
  (* a & b == b & a; a | !a == 1; (a & b) | (a & !b) == a *)
  let a = B.var m (Tid.make "t" 0) and b = B.var m (Tid.make "t" 1) in
  Alcotest.(check bool) "commutativity" true
    (B.equal (B.band m a b) (B.band m b a));
  Alcotest.(check bool) "excluded middle" true
    (B.is_one (B.bor m a (B.bnot m a)));
  Alcotest.(check bool) "contradiction" true
    (B.is_zero (B.band m a (B.bnot m a)));
  let lhs = B.bor m (B.band m a b) (B.band m a (B.bnot m b)) in
  Alcotest.(check bool) "shannon recombination" true (B.equal lhs a)

let test_of_formula_equivalences () =
  let m = B.manager () in
  (* distribution: a & (b | c) == (a & b) | (a & c) *)
  let f1 = F.conj [ v 0; F.disj [ v 1; v 2 ] ] in
  let f2 = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 0; v 2 ] ] in
  Alcotest.(check bool) "distribution" true
    (B.equal (B.of_formula m f1) (B.of_formula m f2));
  (* de morgan *)
  let g1 = F.neg (F.conj [ v 0; v 1 ]) in
  let g2 = F.disj [ F.neg (v 0); F.neg (v 1) ] in
  Alcotest.(check bool) "de morgan" true
    (B.equal (B.of_formula m g1) (B.of_formula m g2))

let test_size () =
  let m = B.manager () in
  let f = F.conj [ v 0; v 1; v 2 ] in
  Alcotest.(check int) "conjunction has n nodes" 3 (B.size (B.of_formula m f))

let test_prob_paper_example () =
  let m = B.manager () in
  let f = F.conj [ F.disj [ v 2; v 3 ]; v 13 ] in
  let p tid =
    match tid.Tid.row with 2 -> 0.3 | 3 -> 0.4 | 13 -> 0.1 | _ -> 0.0
  in
  Alcotest.(check (float 1e-12)) "p38 via BDD" 0.058
    (B.prob m p (B.of_formula m f))

let test_sat_count () =
  let m = B.manager () in
  let f = F.disj [ v 0; v 1 ] in
  let vars = F.vars f in
  Alcotest.(check (float 1e-9)) "3 of 4 assignments" 3.0
    (B.sat_count m (B.of_formula m f) ~vars);
  (* over a larger var set the count scales by the free variables *)
  let vars5 = Tid.Set.add (Tid.make "t" 9) vars in
  Alcotest.(check (float 1e-9)) "free var doubles" 6.0
    (B.sat_count m (B.of_formula m f) ~vars:vars5)

(* The documented cap contract is a strict boundary: a build needing
   exactly [n] fresh nodes succeeds under [~size_cap:n] and raises under
   [~size_cap:(n - 1)].  Find the minimal sufficient cap empirically
   (fresh manager per attempt, since interned survivors would shrink the
   next build's allocation count) and pin both sides of the line. *)
let test_size_cap_boundary () =
  let f =
    F.disj
      [ F.conj [ v 0; v 1 ]; F.conj [ v 1; v 2 ]; F.conj [ v 2; F.neg (v 0) ] ]
  in
  let builds cap =
    let m = B.manager () in
    match B.of_formula ~size_cap:cap m f with
    | _ -> true
    | exception B.Size_cap_exceeded -> false
  in
  let rec minimal cap = if builds cap then cap else minimal (cap + 1) in
  let min_cap = minimal 0 in
  Alcotest.(check bool) "formula needs some fresh nodes" true (min_cap > 0);
  Alcotest.(check bool) "exactly the cap succeeds" true (builds min_cap);
  Alcotest.(check bool) "one below the cap raises" false (builds (min_cap - 1));
  (* an uncapped build is identical to the capped one *)
  let m = B.manager () in
  Alcotest.(check bool) "capped build is not truncated" true
    (B.equal (B.of_formula m f) (B.of_formula ~size_cap:min_cap m f))

let test_size_cap_zero_on_interned () =
  (* after an uncapped build everything is interned, so a repeat build of
     the same formula allocates nothing and [~size_cap:0] must pass *)
  let f = F.disj [ F.conj [ v 0; v 1 ]; v 2 ] in
  let m = B.manager () in
  let b = B.of_formula m f in
  Alcotest.(check bool) "cap 0 on fully interned formula" true
    (B.equal b (B.of_formula ~size_cap:0 m f))

let test_manager_usable_after_cap_exceeded () =
  let m = B.manager () in
  let hard = F.disj [ F.conj [ v 0; v 1 ]; F.conj [ v 2; v 3 ] ] in
  (match B.of_formula ~size_cap:1 m hard with
  | _ -> Alcotest.fail "cap 1 should not fit the disjunction"
  | exception B.Size_cap_exceeded -> ());
  (* the same manager still builds and answers correctly *)
  let b = B.of_formula m hard in
  let p tid = [| 0.5; 0.5; 0.5; 0.5 |].(tid.Tid.row) in
  Alcotest.(check (float 1e-12)) "prob after aborted build"
    (P.exact p hard) (B.prob m p b)

let gen_formula =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 1 then map (fun i -> v i) (int_range 0 3)
           else
             frequency
               [
                 (2, map (fun i -> v i) (int_range 0 3));
                 (1, map F.neg (self (n / 2)));
                 (2, map F.conj (list_size (int_range 2 3) (self (n / 2))));
                 (2, map F.disj (list_size (int_range 2 3) (self (n / 2))));
               ]))

let arb_formula = QCheck.make ~print:F.to_string gen_formula

let qcheck_bdd_eval_matches_formula_eval =
  QCheck.Test.make ~name:"BDD eval matches formula eval" ~count:300
    (QCheck.pair arb_formula (QCheck.list_of_size (QCheck.Gen.return 4) QCheck.bool))
    (fun (f, bits) ->
      let m = B.manager () in
      let b = B.of_formula m f in
      let assignment tid = List.nth bits tid.Tid.row in
      F.eval assignment f = B.eval assignment b)

let qcheck_bdd_prob_matches_exact =
  QCheck.Test.make ~name:"BDD prob matches Shannon exact" ~count:300 arb_formula
    (fun f ->
      let m = B.manager () in
      let p tid = [| 0.17; 0.5; 0.83; 0.31 |].(tid.Tid.row) in
      Float.abs (B.prob m p (B.of_formula m f) -. P.exact p f) < 1e-9)

let qcheck_equivalent_formulas_identical_bdds =
  QCheck.Test.make ~name:"semantic equivalence = physical identity" ~count:200
    (QCheck.pair arb_formula arb_formula)
    (fun (f, g) ->
      let m = B.manager () in
      let bf = B.of_formula m f and bg = B.of_formula m g in
      (* check equivalence by brute force over 4 vars *)
      let equivalent = ref true in
      for mask = 0 to 15 do
        let assignment tid = mask land (1 lsl tid.Tid.row) <> 0 in
        if F.eval assignment f <> F.eval assignment g then equivalent := false
      done;
      B.equal bf bg = !equivalent)

let () =
  Alcotest.run "bdd"
    [
      ( "bdd",
        [
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "variables" `Quick test_var_semantics;
          Alcotest.test_case "canonicity" `Quick test_canonicity;
          Alcotest.test_case "formula equivalences" `Quick test_of_formula_equivalences;
          Alcotest.test_case "size" `Quick test_size;
          Alcotest.test_case "paper probability" `Quick test_prob_paper_example;
          Alcotest.test_case "sat count" `Quick test_sat_count;
          Alcotest.test_case "size cap boundary" `Quick test_size_cap_boundary;
          Alcotest.test_case "size cap 0 on interned" `Quick
            test_size_cap_zero_on_interned;
          Alcotest.test_case "manager usable after cap" `Quick
            test_manager_usable_after_cap_exceeded;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_bdd_eval_matches_formula_eval;
          QCheck_alcotest.to_alcotest qcheck_bdd_prob_matches_exact;
          QCheck_alcotest.to_alcotest qcheck_equivalent_formulas_identical_bdds;
        ] );
    ]
