(* Determinism contract of the parallel hot paths: divide-and-conquer
   group solving, Monte-Carlo confidence, and synthetic-workload
   generation must be bit-identical at every jobs level. *)

module D = Optimize.Divide_conquer
module Problem = Optimize.Problem
module Synth = Workload.Synth
module Sm = Prng.Splitmix

(* pools are created once; spawning domains per qcheck case is the
   expensive part, not the solves *)
let with_pools f =
  Exec.Pool.with_pool ~jobs:2 (fun p2 ->
      Exec.Pool.with_pool ~jobs:4 (fun p4 ->
          Exec.Pool.with_pool ~jobs:8 (fun p8 -> f [ p2; p4; p8 ])))

let problem_of_seed seed =
  Synth.instance
    ~params:{ Synth.default_params with data_size = 300 }
    ~seed ()

let merged_metrics_fingerprint m =
  ( Obs.Metrics.counters m,
    List.map
      (fun (name, (h : Obs.Metrics.histogram)) ->
        (name, h.Obs.Metrics.count, h.sum))
      (Obs.Metrics.histograms m) )

let qcheck_dnc_jobs_invariant pools =
  QCheck.Test.make
    ~name:"D&C outcome and metrics identical at jobs 1,2,4,8" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let problem = problem_of_seed seed in
      let solve pool =
        let metrics = Obs.Metrics.create () in
        let out = D.solve ~metrics ?pool problem in
        ( out.D.solution,
          out.D.cost,
          out.D.satisfied,
          out.D.stats,
          merged_metrics_fingerprint metrics )
      in
      let reference = solve None in
      List.for_all (fun p -> solve (Some p) = reference) pools)

let qcheck_monte_carlo_jobs_invariant pools =
  QCheck.Test.make ~name:"monte_carlo estimate identical at any jobs"
    ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 1 30_000))
    (fun (seed, samples) ->
      let problem = problem_of_seed 17 in
      let formula = (Problem.result problem 0).Problem.formula in
      let p tid =
        match Problem.bid_of_tid problem tid with
        | Some bid -> (Problem.base problem bid).Problem.p0
        | None -> 0.0
      in
      let estimate pool =
        Lineage.Prob.monte_carlo ?pool (Sm.of_int seed) ~samples p formula
      in
      let reference = estimate None in
      List.for_all (fun pl -> estimate (Some pl) = reference) pools)

let qcheck_synth_jobs_invariant pools =
  QCheck.Test.make ~name:"Synth.instance identical at any jobs" ~count:5
    QCheck.(int_range 0 1000)
    (fun seed ->
      let make pool =
        let p =
          Synth.instance ?pool
            ~params:{ Synth.default_params with data_size = 400 }
            ~seed ()
        in
        (* full structural fingerprint: every base confidence and every
           lineage formula, not just the instance summary line *)
        ( Array.map (fun b -> (b.Problem.tid, b.Problem.p0)) (Problem.bases p),
          Array.map
            (fun r -> Lineage.Formula.to_string r.Problem.formula)
            (Problem.results p) )
      in
      let reference = make None in
      List.for_all (fun pl -> make (Some pl) = reference) pools)

let () =
  with_pools (fun pools ->
      Alcotest.run "parallel"
        [
          ( "determinism",
            [
              QCheck_alcotest.to_alcotest (qcheck_dnc_jobs_invariant pools);
              QCheck_alcotest.to_alcotest
                (qcheck_monte_carlo_jobs_invariant pools);
              QCheck_alcotest.to_alcotest (qcheck_synth_jobs_invariant pools);
            ] );
        ])
