(* Chaos suite: seeded fault injection against the real components.

   The resilience contract under injected faults:

   1. fail-closed — whatever faults fire, no tuple with confidence at or
      below the policy threshold is ever released (a fault may turn an
      answer into an error, never into a leak);
   2. consistency — an aborted [State.set_base] leaves the solver state
      exactly as it was (levels, confidences, satisfied set, cost);
   3. containment — a pool worker exception neither kills the pool nor
      corrupts later runs;
   4. observe-only — metrics and tracing change no outcome, faults or
      not.

   Every plan is seeded, so a failure reproduces from the seed alone. *)

module DL = Resilience.Deadline
module Fault = Resilience.Fault
module Problem = Optimize.Problem
module State = Optimize.State
module Solver = Optimize.Solver
module Approx = Lineage.Approx
module F = Lineage.Formula
module Tid = Lineage.Tid
module Pool = Exec.Pool
module Db = Relational.Database
module V = Relational.Value
module E = Pcqe.Engine

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

(* ------------------------------------------------------------------ *)
(* state consistency after an aborted commit *)

let state_fingerprint st =
  let problem = State.problem st in
  ( Array.init (Problem.num_bases problem) (State.base_level st),
    Array.init (Problem.num_results problem) (State.result_confidence st),
    State.satisfied_results st,
    State.cost st )

let test_state_consistent_after_aborted_set_base () =
  List.iter
    (fun incremental ->
      List.iter
        (fun seed ->
          let problem =
            Workload.Synth.small_instance ~num_bases:15 ~num_results:10
              ~required:5 ~bases_per_result:4 ~incremental ~seed ()
          in
          let st = State.create problem in
          (* a couple of committed raises first, so the aborted commit
             lands on a warmed, non-initial state *)
          State.set_base st 0 (Problem.base problem 0).Problem.cap;
          State.set_base st 1 (Problem.base problem 1).Problem.cap;
          let before = state_fingerprint st in
          let plan =
            Fault.plan ~rate:1.0 ~max_injections:1
              ~sites:[ Fault.site_state_eval ] ~seed ()
          in
          let aborted =
            Fault.with_plan plan (fun () ->
                match State.set_base st 2 (Problem.base problem 2).Problem.cap with
                | () -> false
                | exception Fault.Injected _ -> true)
          in
          if aborted then begin
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: state rolled back" seed)
              true
              (state_fingerprint st = before);
            (* and the state is still fully usable: redo the same commit
               without faults and land where a fresh replay lands *)
            State.set_base st 2 (Problem.base problem 2).Problem.cap;
            let fresh = State.create problem in
            State.set_base fresh 0 (Problem.base problem 0).Problem.cap;
            State.set_base fresh 1 (Problem.base problem 1).Problem.cap;
            State.set_base fresh 2 (Problem.base problem 2).Problem.cap;
            Alcotest.(check bool)
              (Printf.sprintf "seed %d: usable after abort" seed)
              true
              (state_fingerprint st = state_fingerprint fresh)
          end)
        [ 0; 1; 2; 3; 4 ])
    [ true; false ]

(* ------------------------------------------------------------------ *)
(* pool containment *)

let test_pool_survives_injected_faults () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let plan =
        Fault.plan ~rate:0.4 ~sites:[ Fault.site_pool_chunk ] ~seed:5 ()
      in
      let raised =
        Fault.with_plan plan (fun () ->
            match
              Pool.map_array ~chunk:1 pool succ (Array.init 32 Fun.id)
            with
            | _ -> false
            | exception Fault.Injected _ -> true)
      in
      Alcotest.(check bool) "rate 0.4 over 32 chunks injects" true raised;
      (* the pool is intact: the exact same call now succeeds *)
      Alcotest.(check (array int))
        "pool usable after injected faults"
        (Array.init 32 succ)
        (Pool.map_array ~chunk:1 pool succ (Array.init 32 Fun.id)))

let test_pool_lowest_index_under_injection () =
  (* rate 1.0: every chunk fails; the re-raised payload must be the
     lowest-indexed hit regardless of domain interleaving *)
  Pool.with_pool ~jobs:4 (fun pool ->
      for trial = 0 to 4 do
        let plan =
          Fault.plan ~rate:1.0 ~sites:[ Fault.site_pool_chunk ] ~seed:trial ()
        in
        match
          Fault.with_plan plan (fun () ->
              Pool.map_array ~chunk:1 pool succ (Array.init 16 Fun.id))
        with
        | _ -> Alcotest.fail "rate 1.0 must inject"
        | exception Fault.Injected payload ->
          Alcotest.(check string)
            (Printf.sprintf "trial %d: deterministic payload" trial)
            "pool.chunk#0" payload
      done)

(* ------------------------------------------------------------------ *)
(* fail-closed: the ladder under a cut-off sampler *)

let entangled n =
  let v i = F.var (Tid.make "b" i) in
  F.disj (List.init n (fun i -> F.conj [ v i; v ((i + 1) mod n) ]))

let test_ladder_failure_withholds () =
  (* exact tiers unavailable, and the Monte-Carlo sampler is killed:
     the estimate degrades to Failed and the release rule withholds *)
  let f = entangled 16 in
  let plan = Fault.plan ~rate:1.0 ~sites:[ Fault.site_prob_mc ] ~seed:1 () in
  let est =
    Fault.with_plan plan (fun () ->
        Approx.confidence ~exact_node_cap:2 (fun _ -> 0.9) f)
  in
  (match est with
  | Approx.Failed _ -> ()
  | Approx.Exact _ | Approx.Interval _ ->
    Alcotest.fail "killed sampler must degrade to Failed");
  Alcotest.(check bool) "failed estimate is withheld" true
    (Approx.releasable ~beta:0.1 est = `Withhold)

(* ------------------------------------------------------------------ *)
(* engine-level fail-closed under faults and deadlines *)

let build_engine ~mc_fallback ~deadline =
  let open Relational in
  let r = Relation.create "T" (Schema.of_list [ ("x", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db =
    List.fold_left
      (fun db (x, conf) -> fst (Db.insert db "T" [ V.Int x ] ~conf))
      db
      [ (1, 0.9); (2, 0.7); (3, 0.45); (4, 0.3); (5, 0.2); (6, 0.55) ]
  in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "analyst") "u" in
    let m = ok (assign_user m ~user:"u" ~role:"analyst") in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"p" ~beta:0.5 ]
  in
  E.make_context ~mc_fallback ~deadline ~db ~rbac ~policies ()

let exact_confidences ctx (resp : E.response) =
  List.map
    (fun (row : E.released) ->
      Lineage.Prob.confidence (Db.confidence_fn ctx.E.db) row.E.lineage)
    resp.E.released

let test_engine_never_releases_below_beta_under_faults () =
  let beta = 0.5 in
  for seed = 0 to 14 do
    let plan = Fault.plan ~rate:0.3 ~seed () in
    let ctx =
      build_engine ~mc_fallback:true ~deadline:(DL.Logical (seed * 7))
    in
    let request =
      { E.query = Pcqe.Query.sql "SELECT x FROM T"; user = "u"; purpose = "p";
        perc = 1.0 }
    in
    match Fault.with_plan plan (fun () -> E.answer ctx request) with
    | exception Fault.Injected _ ->
      (* the fault escaped as an error: nothing was released — fine *)
      ()
    | Error _ -> ()
    | Ok resp ->
      List.iter
        (fun c ->
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: released tuple above beta (%.3f)" seed c)
            true (c > beta))
        (exact_confidences ctx resp);
      (* released + withheld still accounts for every result *)
      Alcotest.(check int)
        (Printf.sprintf "seed %d: accounting" seed)
        6
        (List.length resp.E.released + resp.E.withheld)
  done

let test_engine_deadline_degrades_not_leaks () =
  (* an absurdly tight logical budget forces a partial solve; the
     response must say so, and releases still clear the threshold *)
  let ctx = build_engine ~mc_fallback:false ~deadline:(DL.Logical 1) in
  let resp =
    ok
      (E.answer ctx
         { E.query = Pcqe.Query.sql "SELECT x FROM T"; user = "u";
           purpose = "p"; perc = 1.0 })
  in
  (match resp.E.degraded with
  | Some reason ->
    Alcotest.(check string) "reason is the budget's"
      (DL.reason (DL.logical 1)) reason
  | None -> Alcotest.fail "1-tick budget must degrade strategy finding");
  Alcotest.(check bool) "not reported infeasible" false resp.E.infeasible;
  List.iter
    (fun c -> Alcotest.(check bool) "release above beta" true (c > 0.5))
    (exact_confidences ctx resp)

(* ------------------------------------------------------------------ *)
(* observe-only: metrics and counters never change outcomes *)

let test_counters_observe_only () =
  let problem =
    Workload.Synth.small_instance ~num_bases:20 ~num_results:12 ~required:6
      ~seed:9 ()
  in
  List.iter
    (fun budget ->
      let deadline () = DL.logical budget in
      let quiet =
        Solver.solve ~algorithm:Solver.divide_conquer ~deadline:(deadline ())
          problem
      in
      let obs = Obs.create () in
      let observed =
        Solver.solve ~algorithm:Solver.divide_conquer ~obs
          ~deadline:(deadline ()) problem
      in
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: same solution" budget)
        true
        (quiet.Solver.solution = observed.Solver.solution);
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: same resolution" budget)
        true
        (quiet.Solver.resolution = observed.Solver.resolution);
      Alcotest.(check bool)
        (Printf.sprintf "budget %d: same satisfied" budget)
        true
        (quiet.Solver.satisfied = observed.Solver.satisfied))
    [ 0; 25; 1_000_000 ]

let () =
  Alcotest.run "chaos"
    [
      ( "state",
        [
          Alcotest.test_case "consistent after aborted set_base" `Quick
            test_state_consistent_after_aborted_set_base;
        ] );
      ( "pool",
        [
          Alcotest.test_case "survives injected faults" `Quick
            test_pool_survives_injected_faults;
          Alcotest.test_case "lowest index under injection" `Quick
            test_pool_lowest_index_under_injection;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "killed sampler withholds" `Quick
            test_ladder_failure_withholds;
        ] );
      ( "engine",
        [
          Alcotest.test_case "never releases below beta under faults" `Quick
            test_engine_never_releases_below_beta_under_faults;
          Alcotest.test_case "deadline degrades, never leaks" `Quick
            test_engine_deadline_degrades_not_leaks;
        ] );
      ( "observe-only",
        [
          Alcotest.test_case "counters change no outcome" `Quick
            test_counters_observe_only;
        ] );
    ]
