(* Sharding transparency: hash-partitioning the database and scattering
   scan/filter fragments per shard may change *where* rows are evaluated,
   never what comes back.  Answers, lineage, solver outcomes and error
   strings must be bit-identical to the unsharded engine at every
   (shards, jobs) combination, including after an accepted proposal; and
   per-shard epochs/change logs must keep one shard's mutations from
   invalidating another shard's cached confidence classes. *)

module V = Relational.Value
module S = Relational.Schema
module R = Relational.Relation
module Db = Relational.Database
module A = Relational.Algebra
module Ex = Relational.Expr
module Eval = Relational.Eval
module Sharded = Relational.Sharded
module Sm = Prng.Splitmix
module E = Pcqe.Engine
module F = Lineage.Formula
module Tid = Lineage.Tid

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

let without_circuits f =
  Lineage.Circuit.force (Some false);
  Fun.protect ~finally:(fun () -> Lineage.Circuit.force None) f

(* ---------------- evaluator identity (plan level) ---------------- *)

let string_pool = [| "a"; "b"; "ab"; ""; "x"; "yy" |]

let random_db rng =
  let schema = S.of_list [ ("k", V.TString); ("n", V.TInt); ("x", V.TFloat) ] in
  let db = Db.add_relation Db.empty (R.create "r" schema) in
  let nrows = Sm.int_in rng 0 50 in
  let rec fill db i =
    if i = 0 then db
    else
      let vs =
        [
          (if Sm.coin rng 0.1 then V.Null else V.String (Sm.choice rng string_pool));
          V.Int (Sm.int_in rng (-5) 5);
          V.Float (Float.of_int (Sm.int_in rng (-4) 4) /. 2.0);
        ]
      in
      fill (fst (Db.insert db "r" vs ~conf:(Sm.float_in rng 0.0 1.0))) (i - 1)
  in
  fill db nrows

let cmps = [| Ex.Eq; Ex.Neq; Ex.Lt; Ex.Leq; Ex.Gt; Ex.Geq |]

let random_pred rng =
  let col = Ex.col (Sm.choice rng [| "k"; "n"; "x" |]) in
  match Sm.int_in rng 0 4 with
  | 0 -> Ex.Cmp (Sm.choice rng cmps, col, Ex.Lit (V.Int (Sm.int_in rng (-3) 3)))
  | 1 -> Ex.Cmp (Sm.choice rng cmps, col, Ex.Lit (V.String (Sm.choice rng string_pool)))
  | 2 -> Ex.IsNull col
  | 3 -> Ex.IsNotNull col
  | _ -> Ex.Like (col, Sm.choice rng [| "a%"; "%b"; "_" |])

(* Selection chains (the scatterable fragment), topped by the operators
   that must gather first: duplicate-eliminating projection, distinct,
   limits, renames.  Type-mismatched predicates (Like over ints, string
   comparisons against numeric columns) exercise error identity. *)
let random_plan rng =
  let rec selects plan n =
    if n = 0 then plan else selects (A.Select (random_pred rng, plan)) (n - 1)
  in
  let plan = selects (A.Scan "r") (Sm.int_in rng 0 3) in
  match Sm.int_in rng 0 4 with
  | 0 -> plan
  | 1 -> A.Project ([ "k" ], plan)
  | 2 -> A.Distinct (A.Project ([ "k"; "n" ], plan))
  | 3 -> A.Limit (Sm.int_in rng 0 10, plan)
  | _ -> A.Select (random_pred rng, A.Rename ("t", plan))

let row_ident (a : Eval.row) (b : Eval.row) =
  Relational.Tuple.compare a.tuple b.tuple = 0 && F.equal a.lineage b.lineage

let result_ident a b =
  match (a, b) with
  | Ok (ra : Eval.annotated), Ok (rb : Eval.annotated) ->
    S.equal ra.Eval.schema rb.Eval.schema
    && List.length ra.Eval.rows = List.length rb.Eval.rows
    && List.for_all2 row_ident ra.Eval.rows rb.Eval.rows
  | Error ea, Error eb -> String.equal ea eb
  | _ -> false

let qcheck_sharded_run_identity =
  QCheck.Test.make
    ~name:"sharded run == row engine at shards 1/2/4 x jobs 1/2/4"
    ~count:250
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sm.of_int seed in
      let db = random_db rng in
      let plan = random_plan rng in
      let expected = Eval.run db plan in
      List.for_all
        (fun shards ->
          let db = Db.with_shards db shards in
          List.for_all
            (fun jobs ->
              let got =
                if jobs = 1 then Sharded.run db plan
                else
                  Exec.Pool.with_pool ~jobs (fun pool ->
                      Sharded.run ~pool db plan)
              in
              result_ident expected got)
            [ 1; 2; 4 ])
        [ 1; 2; 4 ])

(* ---------------- engine transparency (all four solvers) ------------ *)

let mk_rbac () =
  let open Rbac.Core_rbac in
  let m = add_user (add_role empty "analyst") "u" in
  let m = ok (assign_user m ~user:"u" ~role:"analyst") in
  ok (grant m ~role:"analyst" { action = "select"; resource = "*" })

let engine_db rng =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let keys = [| "a"; "b"; "c"; "d" |] in
  let fill db rel count =
    let rec go db i =
      if i = 0 then db
      else
        let vs = [ V.String (Sm.choice rng keys); V.Int (Sm.int_in rng 0 9) ] in
        go (fst (Db.insert db rel vs ~conf:(Sm.float_in rng 0.05 0.95))) (i - 1)
    in
    go db count
  in
  let db = fill db "R" (Sm.int_in rng 2 8) in
  fill db "S" (Sm.int_in rng 0 6)

let queries =
  [|
    "SELECT k, n FROM R";
    "SELECT k FROM R WHERE n > 3";
    "SELECT R.k, S.m FROM R JOIN S ON R.k = S.k";
    "SELECT n FROM R WHERE R.k IN (SELECT k FROM S)";
    "SELECT k, COUNT(*) AS c FROM R GROUP BY k";
  |]

let solvers =
  [|
    Optimize.Solver.Heuristic
      { Optimize.Heuristic.default_config with max_nodes = Some 20_000 };
    Optimize.Solver.greedy;
    Optimize.Solver.divide_conquer;
    Optimize.Solver.Annealing
      { Optimize.Annealing.default_config with
        iterations = 20_000;
        restarts = 1;
      };
  |]

(* everything a requester can observe, proposal and solver verdict
   included; NaN-tolerant via [compare] *)
let fingerprint = function
  | Error m -> Error m
  | Ok (r : E.response) ->
    Ok
      ( r.E.schema,
        List.map (fun x -> (x.E.tuple, x.E.lineage, x.E.confidence)) r.E.released,
        r.E.withheld,
        r.E.ambiguous,
        r.E.requested,
        r.E.threshold,
        Option.map
          (fun (p : E.proposal) ->
            ( p.E.increments,
              p.E.cost,
              p.E.projected_release,
              p.E.solver_name,
              p.E.solver_detail ))
          r.E.proposal,
        r.E.infeasible,
        r.E.degraded )

let scenario rng solver =
  let db = engine_db rng in
  let beta = Sm.float_in rng 0.1 0.9 in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"task" ~beta ]
  in
  let mc_fallback = Sm.bool rng in
  let ctx =
    E.make_context ~solver ~mc_fallback ~db ~rbac:(mk_rbac ()) ~policies ()
  in
  let requests =
    List.init
      (Sm.int_in rng 2 5)
      (fun _ ->
        {
          E.query = Pcqe.Query.sql (Sm.choice rng queries);
          user = "u";
          purpose = "task";
          perc = Sm.float_in rng 0.0 1.0;
        })
  in
  (ctx, requests)

let reshard ctx shards jobs =
  { ctx with E.db = Db.with_shards ctx.E.db shards; jobs }

let qcheck_engine_transparent =
  QCheck.Test.make
    ~name:"engine answers sharded == unsharded (all solvers, post-accept)"
    ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      Array.for_all
        (fun solver ->
          let rng = Sm.of_int seed in
          let ctx, requests = scenario rng solver in
          let cold = List.map (fun r -> E.answer ctx r) requests in
          let proposal =
            List.find_map
              (function Ok (r : E.response) -> r.E.proposal | Error _ -> None)
              cold
          in
          List.for_all
            (fun shards ->
              List.for_all
                (fun jobs ->
                  let ctx' = reshard ctx shards jobs in
                  let warm = List.map (fun r -> E.answer ctx' r) requests in
                  List.for_all2
                    (fun c w -> compare (fingerprint c) (fingerprint w) = 0)
                    cold warm
                  &&
                  (* post-accept: apply the same proposal on both sides
                     and re-answer — per-shard invalidation must not
                     change a single released confidence *)
                  match proposal with
                  | None -> true
                  | Some p ->
                    let base = E.accept_proposal ctx p in
                    let resharded = E.accept_proposal ctx' p in
                    let session = E.Session.create resharded in
                    List.for_all2
                      (fun c w -> compare (fingerprint c) (fingerprint w) = 0)
                      (List.map (fun r -> E.answer base r) requests)
                      (List.map (fun r -> E.Session.answer session r) requests))
                [ 1; 2; 4 ])
            [ 1; 2; 4 ])
        solvers)

(* ---------------- directed: partitioning and epochs ---------------- *)

(* a small sharded db whose tuples provably land on >1 shard *)
let two_shard_fixture () =
  let r = R.create "R" (S.of_list [ ("n", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db = ref db in
  let tids = ref [] in
  for i = 0 to 15 do
    let db', tid = Db.insert !db "R" [ V.Int i ] ~conf:0.5 in
    db := db';
    tids := tid :: !tids
  done;
  let db = Db.with_shards !db 2 in
  let owned shard =
    List.filter (fun tid -> Db.shard_of_tid db tid = shard) !tids
  in
  match (owned 0, owned 1) with
  | t0 :: _, t1 :: _ -> (db, t0, t1)
  | _ -> Alcotest.fail "hash sent 16 tuples to one shard"

let test_partition_preserves_order () =
  let db, _, _ = two_shard_fixture () in
  let sharded = ok (Sharded.run db (A.Scan "R")) in
  let unsharded = ok (Eval.run db (A.Scan "R")) in
  Alcotest.(check bool) "gather order is insertion order" true
    (List.for_all2 row_ident unsharded.Eval.rows sharded.Eval.rows);
  let tuples = Db.shard_tuples db in
  Alcotest.(check int) "shard tuple counts partition the db" 16
    (Array.fold_left ( + ) 0 tuples);
  Alcotest.(check bool) "both shards own tuples" true
    (tuples.(0) > 0 && tuples.(1) > 0)

let test_cross_shard_changed_since () =
  let db, t0, t1 = two_shard_fixture () in
  let s0 = Db.shard_of_tid db t0 and s1 = Db.shard_of_tid db t1 in
  let cv = Db.confidence_vector db in
  let db' = Db.set_confidence db t0 0.9 in
  let cv' = Db.confidence_vector db' in
  Alcotest.(check bool) "owner slot moved" true (cv'.(s0) <> cv.(s0));
  Alcotest.(check int) "other slot untouched" cv.(s1) cv'.(s1);
  Alcotest.(check bool) "owner shard reports the dirty tuple" true
    (Db.shard_changed_since db' ~shard:s0 ~since:cv.(s0)
    = Some (Tid.Set.singleton t0));
  Alcotest.(check bool) "other shard reports nothing" true
    (Db.shard_changed_since db' ~shard:s1 ~since:cv.(s1)
    = Some Tid.Set.empty);
  (* a sibling history's stamp must be rejected, per shard *)
  let sibling = Db.set_confidence db t0 0.1 in
  Alcotest.(check bool) "divergent sibling stamp -> None" true
    (Db.shard_changed_since db' ~shard:s0
       ~since:(Db.confidence_vector sibling).(s0)
    = None)

let test_per_shard_log_truncation () =
  let db, t0, t1 = two_shard_fixture () in
  let s0 = Db.shard_of_tid db t0 and s1 = Db.shard_of_tid db t1 in
  let cv = Db.confidence_vector db in
  (* overflow shard s0's bounded log; shard s1's log must be unharmed *)
  let db' = ref db in
  for i = 1 to 400 do
    db' := Db.set_confidence !db' t0 (float_of_int i /. 1000.0)
  done;
  Alcotest.(check bool) "overflowed shard -> None" true
    (Db.shard_changed_since !db' ~shard:s0 ~since:cv.(s0) = None);
  Alcotest.(check int) "sibling shard epoch never moved" cv.(s1)
    (Db.confidence_vector !db').(s1);
  let db'' = Db.set_confidence !db' t1 0.7 in
  Alcotest.(check bool) "sibling shard log still answers exactly" true
    (Db.shard_changed_since db'' ~shard:s1 ~since:cv.(s1)
    = Some (Tid.Set.singleton t1))

let test_bulk_load_per_shard_logs () =
  let text = "n:int,__confidence:real\n" ^
             String.concat "" (List.init 12 (fun i -> Printf.sprintf "%d,0.5\n" i))
  in
  let db0 = Db.with_shards Db.empty 4 in
  let cv0 = Db.confidence_vector db0 in
  let db = ok (Relational.Csv.load_string_bulk db0 ~name:"r" text) in
  (* each shard's log entry lists exactly the tuples routed to it *)
  for shard = 0 to 3 do
    let expected =
      List.filter
        (fun i -> Db.shard_of_tid db (Tid.make "r" i) = shard)
        (List.init 12 Fun.id)
      |> List.map (fun i -> Tid.make "r" i)
      |> Tid.Set.of_list
    in
    match Db.shard_changed_since db ~shard ~since:cv0.(shard) with
    | Some got ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d log lists its own tuples" shard)
        true (Tid.Set.equal got expected)
    | None ->
      (* an untouched shard keeps its stamp, so the gap is empty *)
      Alcotest.failf "shard %d lost its bulk-load entry" shard
  done;
  (* the sharded bulk load answers identically to the unsharded one *)
  let flat = ok (Relational.Csv.load_string_bulk Db.empty ~name:"r" text) in
  Alcotest.(check bool) "sharded bulk load evaluates identically" true
    (result_ident (Eval.run flat (A.Scan "r")) (Sharded.run db (A.Scan "r")))

(* ---------------- directed: per-shard cache invalidation ------------ *)

let test_conf_cache_per_shard_flush () =
  without_circuits (fun () ->
      let db, t0, t1 = two_shard_fixture () in
      let s0 = Db.shard_of_tid db t0 in
      let cache = Pcqe.Conf_cache.create () in
      let f0 = F.Var t0 and f1 = F.Var t1 in
      let (_ : float) = Pcqe.Conf_cache.confidence cache ~db f0 in
      let (_ : float) = Pcqe.Conf_cache.confidence cache ~db f1 in
      Alcotest.(check int) "both classes cached" 2 (Pcqe.Conf_cache.length cache);
      (* overflow shard s0's change log: sync must flush s0's classes
         wholesale but keep every class living on the other shard *)
      let db' = ref db in
      for i = 1 to 400 do
        db' := Db.set_confidence !db' t0 (float_of_int i /. 1000.0)
      done;
      Pcqe.Conf_cache.sync cache ~db:!db';
      Alcotest.(check bool) "dirty shard's class dropped" false
        (Pcqe.Conf_cache.mem_exact cache f0);
      Alcotest.(check bool) "other shard's class survives" true
        (Pcqe.Conf_cache.mem_exact cache f1);
      (* targeted invalidation still works per shard for small gaps *)
      let db2 = Db.set_confidence !db' t0 0.42 in
      Pcqe.Conf_cache.sync cache ~db:db2;
      let c0 = Pcqe.Conf_cache.confidence cache ~db:db2 f0 in
      Alcotest.(check (float 0.0)) "recomputed from the live vector" 0.42 c0;
      (* shard_sizes buckets indexed tuples by owner *)
      let sizes =
        Pcqe.Conf_cache.shard_sizes cache ~shards:(Db.shard_count db2)
      in
      Alcotest.(check bool) "both shards indexed" true
        (sizes.(s0) >= 1 && Array.fold_left ( + ) 0 sizes >= 2);
      (* a shard-layout change has no per-shard history: wholesale flush *)
      Pcqe.Conf_cache.sync cache ~db:(Db.with_shards db2 3);
      Alcotest.(check int) "re-partition flushes wholesale" 0
        (Pcqe.Conf_cache.length cache))

let test_prepared_vector_pinning () =
  let db, t0, _ = two_shard_fixture () in
  let views = Relational.Views.empty in
  let p = ok (Pcqe.Prepared.compile ~db ~views (Pcqe.Query.sql "SELECT n FROM R")) in
  Alcotest.(check int) "vector length = shard count" 2
    (Array.length (Pcqe.Prepared.structural_vector p));
  Alcotest.(check bool) "valid against the compiling db" true
    (Pcqe.Prepared.valid p ~db ~views);
  (* confidence-only mutation: still valid *)
  let db_conf = Db.set_confidence db t0 0.9 in
  Alcotest.(check bool) "confidence bump keeps it valid" true
    (Pcqe.Prepared.valid p ~db:db_conf ~views);
  (* insert moves one shard's slot: retired *)
  let db_ins = fst (Db.insert db "R" [ V.Int 99 ] ~conf:0.5) in
  Alcotest.(check bool) "insert retires it" false
    (Pcqe.Prepared.valid p ~db:db_ins ~views);
  (* re-partition changes the vector shape: retired, contents unchanged *)
  Alcotest.(check bool) "re-partition retires it" false
    (Pcqe.Prepared.valid p ~db:(Db.with_shards db 4) ~views)

let () =
  let qcheck = QCheck_alcotest.to_alcotest in
  Alcotest.run "sharded"
    [
      ( "identity",
        [
          qcheck qcheck_sharded_run_identity;
          qcheck qcheck_engine_transparent;
        ] );
      ( "partition",
        [
          Alcotest.test_case "gather preserves order" `Quick
            test_partition_preserves_order;
          Alcotest.test_case "bulk load routes per shard" `Quick
            test_bulk_load_per_shard_logs;
        ] );
      ( "epochs",
        [
          Alcotest.test_case "cross-shard changed_since" `Quick
            test_cross_shard_changed_since;
          Alcotest.test_case "per-shard log truncation" `Quick
            test_per_shard_log_truncation;
          Alcotest.test_case "prepared pins the vector" `Quick
            test_prepared_vector_pinning;
        ] );
      ( "conf-cache",
        [
          Alcotest.test_case "per-shard flush" `Quick
            test_conf_cache_per_shard_flush;
        ] );
    ]
