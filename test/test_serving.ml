(* The staged serving pipeline: database epochs, the prepared-plan
   cache, the per-epoch confidence cache, and the Engine.Session batch
   surface.

   The load-bearing invariant throughout is transparency: a warm answer
   (shared prepared plans, cached lineage-class confidences) must be
   bit-identical to the cold per-request path — same released tuples,
   same confidences, same withheld counts, same proposals — across all
   four solvers, with and without the Monte-Carlo fallback, under a
   logical deadline, and at the suite's PCQE_JOBS=2 parallelism. *)

module Db = Relational.Database
module V = Relational.Value
module S = Relational.Schema
module R = Relational.Relation
module Vw = Relational.Views
module Sm = Prng.Splitmix
module E = Pcqe.Engine
module Tid = Lineage.Tid

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

(* Pin the ladder/class-cache path: the safe-plan and single-Var fast
   paths (PR 8) legitimately bypass the confidence cache, so tests that
   assert exact cache counters force them off for their duration. *)
let without_circuits f =
  Lineage.Circuit.force (Some false);
  Fun.protect ~finally:(fun () -> Lineage.Circuit.force None) f

(* ------------------------------------------------------------------ *)
(* database epochs *)

let test_epoch_split () =
  let r = R.create "R" (S.of_list [ ("n", V.TInt) ]) in
  let db0 = Db.empty in
  let db1 = Db.add_relation db0 r in
  Alcotest.(check bool) "add_relation bumps structural" true
    (Db.structural_epoch db1 > Db.structural_epoch db0);
  Alcotest.(check int) "add_relation leaves confidence"
    (Db.confidence_epoch db0) (Db.confidence_epoch db1);
  let db2, tid = Db.insert db1 "R" [ V.Int 1 ] ~conf:0.5 in
  Alcotest.(check bool) "insert bumps structural" true
    (Db.structural_epoch db2 > Db.structural_epoch db1);
  Alcotest.(check bool) "insert bumps confidence" true
    (Db.confidence_epoch db2 > Db.confidence_epoch db1);
  let db3 = Db.set_confidence db2 tid 0.7 in
  Alcotest.(check int) "set_confidence leaves structural"
    (Db.structural_epoch db2) (Db.structural_epoch db3);
  Alcotest.(check bool) "set_confidence bumps confidence" true
    (Db.confidence_epoch db3 > Db.confidence_epoch db2)

let test_changed_since () =
  let r = R.create "R" (S.of_list [ ("n", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db, t1 = Db.insert db "R" [ V.Int 1 ] ~conf:0.5 in
  let db, t2 = Db.insert db "R" [ V.Int 2 ] ~conf:0.5 in
  let e0 = Db.confidence_epoch db in
  Alcotest.(check bool) "current epoch -> empty set" true
    (Db.changed_since db ~since:e0 = Some Tid.Set.empty);
  let db' = Db.set_confidence db t1 0.6 in
  let db' = Db.set_confidence db' t2 0.7 in
  let db' = Db.set_confidence db' t1 0.8 in
  (match Db.changed_since db' ~since:e0 with
  | Some dirty ->
    Alcotest.(check (list string)) "dirty set is exactly {t1, t2}"
      (List.sort compare [ Tid.to_string t1; Tid.to_string t2 ])
      (List.sort compare (List.map Tid.to_string (Tid.Set.elements dirty)))
  | None -> Alcotest.fail "changed_since lost a 3-entry gap");
  (* stamps from a divergent sibling history are rejected *)
  let sibling = Db.set_confidence db t1 0.9 in
  Alcotest.(check bool) "sibling stamp -> None" true
    (Db.changed_since db' ~since:(Db.confidence_epoch sibling) = None)

let test_changed_since_truncation () =
  let r = R.create "R" (S.of_list [ ("n", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db, tid = Db.insert db "R" [ V.Int 1 ] ~conf:0.0 in
  let e0 = Db.confidence_epoch db in
  (* push the bounded change log past its capacity: the old stamp must
     answer None (wholesale flush), never a partial dirty set *)
  let db' = ref db in
  for i = 1 to 400 do
    db' := Db.set_confidence !db' tid (float_of_int i /. 1000.0)
  done;
  Alcotest.(check bool) "overflowed gap -> None" true
    (Db.changed_since !db' ~since:e0 = None);
  (* a gap that still fits in the log is answered exactly *)
  let e_recent = Db.confidence_epoch !db' in
  let db'' = Db.set_confidence !db' tid 0.99 in
  Alcotest.(check bool) "recent gap still answered" true
    (Db.changed_since db'' ~since:e_recent = Some (Tid.Set.singleton tid))

let test_views_epoch () =
  let v0 = Vw.empty in
  let v1 = ok (Vw.of_sql v0 ~name:"A" "SELECT n FROM R") in
  Alcotest.(check bool) "add bumps" true (Vw.epoch v1 > Vw.epoch v0);
  let v2 = ok (Vw.of_sql v1 ~name:"A" "SELECT n FROM R WHERE n > 1") in
  Alcotest.(check bool) "redefinition bumps" true (Vw.epoch v2 > Vw.epoch v1);
  let v3 = Vw.remove v2 "missing" in
  Alcotest.(check int) "removing nothing keeps the epoch" (Vw.epoch v2)
    (Vw.epoch v3);
  let v4 = Vw.remove v2 "A" in
  Alcotest.(check bool) "remove bumps" true (Vw.epoch v4 > Vw.epoch v2)

(* ------------------------------------------------------------------ *)
(* fixtures *)

let mk_rbac () =
  let open Rbac.Core_rbac in
  let m = add_user (add_role empty "analyst") "u" in
  let m = ok (assign_user m ~user:"u" ~role:"analyst") in
  ok (grant m ~role:"analyst" { action = "select"; resource = "*" })

let mk_ctx ?views ?(beta = 0.6) ~confs () =
  let r = R.create "R" (S.of_list [ ("n", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db, tids =
    List.fold_left
      (fun (db, tids) (i, conf) ->
        let db, tid = Db.insert db "R" [ V.Int i ] ~conf in
        (db, tid :: tids))
      (db, [])
      (List.mapi (fun i c -> (i, c)) confs)
  in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"task" ~beta ]
  in
  ( E.make_context ?views ~db ~rbac:(mk_rbac ()) ~policies (),
    List.rev tids )

let request ?(sql = "SELECT n FROM R") ?(perc = 0.5) () =
  { E.query = Pcqe.Query.sql sql; user = "u"; purpose = "task"; perc }

let stat session name =
  match List.assoc_opt name (E.Session.cache_stats session) with
  | Some v -> v
  | None -> Alcotest.failf "missing cache stat %s" name

(* ------------------------------------------------------------------ *)
(* prepared-plan cache *)

let test_plan_cache_hit_miss () =
  without_circuits @@ fun () ->
  let ctx, _ = mk_ctx ~confs:[ 0.9; 0.8; 0.7 ] () in
  let session = E.Session.create ctx in
  let req = request () in
  let a = ok (E.Session.answer session req) in
  let b = ok (E.Session.answer session req) in
  Alcotest.(check int) "same releases" (List.length a.E.released)
    (List.length b.E.released);
  Alcotest.(check int) "one compile" 1 (stat session "prepared.miss");
  Alcotest.(check int) "one reuse" 1 (stat session "prepared.hit");
  Alcotest.(check int) "one class per base tuple" 3
    (stat session "conf.entries");
  Alcotest.(check int) "second answer served from cache" 3
    (stat session "serving.reused_classes")

let test_plan_cache_structural_invalidation () =
  let ctx, _ = mk_ctx ~confs:[ 0.9; 0.8 ] () in
  let session = E.Session.create ctx in
  let req = request ~perc:0.0 () in
  let a = ok (E.Session.answer session req) in
  Alcotest.(check int) "two rows" 2 (List.length a.E.released);
  (* tuple mutation advances the structural epoch: the prepared plan and
     its memoized evaluation must both be retired *)
  let db', _ = Db.insert (E.Session.context session).E.db "R" [ V.Int 9 ] ~conf:0.9 in
  E.Session.set_context session { (E.Session.context session) with E.db = db' };
  let b = ok (E.Session.answer session req) in
  Alcotest.(check int) "new row visible" 3 (List.length b.E.released);
  Alcotest.(check int) "recompiled" 2 (stat session "prepared.miss")

(* mutating a view definition must invalidate prepared plans that
   expanded it — the view store participates in epoch validation *)
let test_view_mutation_invalidates_plans () =
  let views = ok (Vw.of_sql Vw.empty ~name:"Big" "SELECT n FROM R WHERE n >= 1") in
  let ctx, _ = mk_ctx ~views ~confs:[ 0.9; 0.8; 0.7 ] () in
  let session = E.Session.create ctx in
  let req = request ~sql:"SELECT n FROM Big" ~perc:0.0 () in
  let a = ok (E.Session.answer session req) in
  Alcotest.(check int) "view selects two rows" 2 (List.length a.E.released);
  let views' = ok (Vw.of_sql views ~name:"Big" "SELECT n FROM R WHERE n >= 2") in
  E.Session.set_context session
    { (E.Session.context session) with E.views = views' };
  let b = ok (E.Session.answer session req) in
  Alcotest.(check int) "redefined view answers through the new plan" 1
    (List.length b.E.released);
  Alcotest.(check int) "stale plan retired, not reused" 2
    (stat session "prepared.miss");
  Alcotest.(check int) "no false hit" 0 (stat session "prepared.hit")

let test_plan_cache_eviction () =
  let ctx, _ = mk_ctx ~confs:[ 0.9 ] () in
  let session = E.Session.create ~plan_capacity:2 ctx in
  List.iter
    (fun sql -> ignore (ok (E.Session.prepare session (Pcqe.Query.sql sql))))
    [
      "SELECT n FROM R";
      "SELECT n FROM R WHERE n > 0";
      "SELECT n FROM R WHERE n > 1";
    ];
  Alcotest.(check int) "capacity-bounded" 1 (stat session "prepared.evict");
  Alcotest.(check int) "two entries live" 2 (stat session "plans.entries")

(* ------------------------------------------------------------------ *)
(* accept_proposal: prepared plan reused, only dirty classes recomputed *)

let test_accept_proposal_reuse () =
  without_circuits @@ fun () ->
  (* four tuples at 0.5 under beta 0.6 with perc 0.5: the solver must
     raise two of them, leaving two untouched lineage classes *)
  let ctx, _ = mk_ctx ~confs:[ 0.5; 0.5; 0.5; 0.5 ] () in
  let session = E.Session.create ctx in
  let req = request ~perc:0.5 () in
  let resp = ok (E.Session.answer session req) in
  let proposal =
    match resp.E.proposal with
    | Some p -> p
    | None -> Alcotest.fail "expected a proposal"
  in
  let miss0 = stat session "prepared.miss" in
  let reused0 = stat session "serving.reused_classes" in
  let recomputed0 = stat session "serving.recomputed_classes" in
  E.Session.accept_proposal session proposal;
  let resp' = ok (E.Session.answer session req) in
  Alcotest.(check bool) "improvement delivered" true
    (List.length resp'.E.released >= proposal.E.projected_release);
  Alcotest.(check int) "prepared plan reused (no recompile)" miss0
    (stat session "prepared.miss");
  let raised = List.length proposal.E.increments in
  Alcotest.(check bool) "solver raised a strict subset" true
    (raised >= 1 && raised < 4);
  Alcotest.(check int) "exactly the dirty classes recomputed" raised
    (stat session "serving.recomputed_classes" - recomputed0);
  Alcotest.(check int) "exactly the dirty classes invalidated" raised
    (stat session "serving.invalidated_classes");
  Alcotest.(check int) "every untouched class reused" (4 - raised)
    (stat session "serving.reused_classes" - reused0)

(* ------------------------------------------------------------------ *)
(* transparency: batch-with-caches == per-request cold answers *)

let random_db rng =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let keys = [| "a"; "b"; "c"; "d" |] in
  let fill db rel count =
    let rec go db i =
      if i = 0 then db
      else
        let vs = [ V.String (Sm.choice rng keys); V.Int (Sm.int_in rng 0 9) ] in
        go (fst (Db.insert db rel vs ~conf:(Sm.float_in rng 0.05 0.95))) (i - 1)
    in
    go db count
  in
  let db = fill db "R" (Sm.int_in rng 1 8) in
  fill db "S" (Sm.int_in rng 0 6)

let queries =
  [|
    "SELECT k, n FROM R";
    "SELECT k FROM R WHERE n > 3";
    "SELECT R.k, S.m FROM R JOIN S ON R.k = S.k";
    "SELECT R.k, S.m FROM R LEFT JOIN S ON R.k = S.k";
    "SELECT n FROM R WHERE R.k IN (SELECT k FROM S)";
    "SELECT k FROM R UNION SELECT k FROM S";
    "SELECT k, COUNT(*) AS c FROM R GROUP BY k";
  |]

let solvers =
  [|
    Optimize.Solver.Heuristic
      { Optimize.Heuristic.default_config with max_nodes = Some 20_000 };
    Optimize.Solver.greedy;
    Optimize.Solver.divide_conquer;
    Optimize.Solver.Annealing
      { Optimize.Annealing.default_config with
        iterations = 20_000;
        restarts = 1;
      };
  |]

(* everything a requester (or the audit log, modulo cache counters) can
   observe; NaN-tolerant via [compare] *)
let fingerprint = function
  | Error m -> Error m
  | Ok (r : E.response) ->
    Ok
      ( r.E.schema,
        List.map (fun x -> (x.E.tuple, x.E.lineage, x.E.confidence)) r.E.released,
        r.E.withheld,
        r.E.ambiguous,
        r.E.requested,
        r.E.threshold,
        List.map Rbac.Policy.to_string r.E.applied_policies,
        Option.map
          (fun (p : E.proposal) ->
            ( p.E.increments,
              p.E.cost,
              p.E.projected_release,
              p.E.solver_name,
              p.E.solver_detail ))
          r.E.proposal,
        r.E.infeasible,
        r.E.degraded )

let scenario seed =
  let rng = Sm.of_int seed in
  let db = random_db rng in
  let beta = Sm.float_in rng 0.1 0.9 in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"task" ~beta ]
  in
  let solver = Sm.choice rng solvers in
  let mc_fallback = Sm.bool rng in
  let deadline =
    if Sm.bool rng then Resilience.Deadline.No_deadline
    else Resilience.Deadline.Logical (Sm.int_in rng 1 200)
  in
  let ctx =
    E.make_context ~solver ~deadline ~mc_fallback ~db ~rbac:(mk_rbac ())
      ~policies ()
  in
  (* a handful of requests with deliberately repeated query texts, so the
     warm path actually shares plans and confidence classes *)
  let requests =
    List.init
      (Sm.int_in rng 2 6)
      (fun _ ->
        {
          E.query = Pcqe.Query.sql (Sm.choice rng queries);
          user = "u";
          purpose = "task";
          perc = Sm.float_in rng 0.0 1.0;
        })
  in
  (ctx, requests)

let qcheck_batch_transparent =
  QCheck.Test.make
    ~name:"batch with caches == cold per-request answers (all solvers)"
    ~count:120
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, requests = scenario seed in
      let cold = List.map (fun r -> E.answer ctx r) requests in
      let session = E.Session.create ctx in
      let filling = E.Session.batch session requests in
      let warm = E.Session.batch session requests in
      List.for_all2
        (fun c w -> compare (fingerprint c) (fingerprint w) = 0)
        cold filling
      && List.for_all2
           (fun c w -> compare (fingerprint c) (fingerprint w) = 0)
           cold warm)

let qcheck_accept_then_batch_transparent =
  QCheck.Test.make
    ~name:"post-accept re-answers stay identical to cold" ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, requests = scenario seed in
      let session = E.Session.create ctx in
      let first = E.Session.batch session requests in
      let proposal =
        List.find_map
          (function Ok r -> r.E.proposal | Error _ -> None)
          first
      in
      match proposal with
      | None -> QCheck.assume_fail ()
      | Some proposal ->
        E.Session.accept_proposal session proposal;
        let ctx' = E.accept_proposal ctx proposal in
        let cold = List.map (fun r -> E.answer ctx' r) requests in
        let warm = E.Session.batch session requests in
        List.for_all2
          (fun c w -> compare (fingerprint c) (fingerprint w) = 0)
          cold warm)

let () =
  Alcotest.run "serving"
    [
      ( "epochs",
        [
          Alcotest.test_case "structural vs confidence" `Quick test_epoch_split;
          Alcotest.test_case "changed_since" `Quick test_changed_since;
          Alcotest.test_case "changed_since truncation" `Quick
            test_changed_since_truncation;
          Alcotest.test_case "views epoch" `Quick test_views_epoch;
        ] );
      ( "plan-cache",
        [
          Alcotest.test_case "hit/miss" `Quick test_plan_cache_hit_miss;
          Alcotest.test_case "structural invalidation" `Quick
            test_plan_cache_structural_invalidation;
          Alcotest.test_case "view mutation invalidates" `Quick
            test_view_mutation_invalidates_plans;
          Alcotest.test_case "LRU eviction" `Quick test_plan_cache_eviction;
        ] );
      ( "serving",
        [
          Alcotest.test_case "accept_proposal reuses classes" `Quick
            test_accept_proposal_reuse;
          QCheck_alcotest.to_alcotest qcheck_batch_transparent;
          QCheck_alcotest.to_alcotest qcheck_accept_then_batch_transparent;
        ] );
    ]
