(* The serving tier over a loopback socket.

   The wire-level robustness contract:

   1. framing — torn, truncated and corrupted frames are detected and
      rejected; they kill at most their own connection, never the server;
   2. identity — answers over the wire are bit-identical (body bytes) to
      in-process [Session.batch] over the same per-principal streams;
   3. admission — overload produces explicit [Overloaded] sheds and
      queue-expired [Timeout]s, never unbounded queueing or silence;
   4. chaos — with [net.*] faults armed, every request still reaches a
      terminal outcome and the server survives to answer correctly
      afterwards. *)

module Fault = Resilience.Fault
module E = Pcqe.Engine
module Db = Relational.Database
module V = Relational.Value

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

(* ------------------------------------------------------------------ *)
(* framing *)

let test_frame_roundtrip () =
  List.iter
    (fun (typ, payload) ->
      let s = Net.Frame.encode ~typ payload in
      match Net.Frame.decode s with
      | Ok (t, p) ->
        Alcotest.(check int) "type" typ t;
        Alcotest.(check string) "payload" payload p
      | Error e -> Alcotest.failf "decode failed: %s" (Net.Frame.error_to_string e))
    [ (0, ""); (1, "x"); (255, String.init 1000 (fun i -> Char.chr (i mod 256))) ]

let test_frame_crc32_vector () =
  (* the standard IEEE check value *)
  Alcotest.(check int32)
    "crc32(123456789)" 0xCBF43926l
    (Net.Frame.crc32 "123456789")

let test_frame_rejects_malformed () =
  let whole = Net.Frame.encode ~typ:7 "hello world" in
  let expect name want got =
    match got with
    | Ok _ -> Alcotest.failf "%s: accepted a malformed frame" name
    | Error e -> Alcotest.(check string) name want (Net.Frame.error_to_string e)
  in
  expect "empty" "connection closed" (Net.Frame.decode "");
  expect "torn header" "torn frame: short read in header"
    (Net.Frame.decode (String.sub whole 0 5));
  expect "torn payload" "torn frame: short read in payload"
    (Net.Frame.decode (String.sub whole 0 (String.length whole - 3)));
  expect "bad magic" "bad magic"
    (Net.Frame.decode ("XX" ^ String.sub whole 2 (String.length whole - 2)));
  let bad_version = Bytes.of_string whole in
  Bytes.set bad_version 2 '\x63';
  expect "bad version" "unsupported protocol version 99"
    (Net.Frame.decode (Bytes.to_string bad_version));
  let flipped = Bytes.of_string whole in
  Bytes.set flipped (String.length whole - 1) '!';
  expect "corrupt payload" "payload checksum mismatch"
    (Net.Frame.decode (Bytes.to_string flipped));
  let huge = Bytes.of_string whole in
  (* declared length 0x7fffffff, way past max_payload *)
  Bytes.set huge 4 '\x7f';
  Bytes.set huge 5 '\xff';
  Bytes.set huge 6 '\xff';
  Bytes.set huge 7 '\xff';
  match Net.Frame.decode (Bytes.to_string huge) with
  | Error (Net.Frame.Too_large _) -> ()
  | _ -> Alcotest.fail "oversized length not rejected"

(* ------------------------------------------------------------------ *)
(* message codec *)

let test_wire_request_roundtrip () =
  List.iter
    (fun req ->
      let typ, payload = Net.Wire.encode_request req in
      match Net.Wire.decode_request ~typ payload with
      | Ok req' -> if req <> req' then Alcotest.fail "request changed on the wire"
      | Error m -> Alcotest.failf "decode_request: %s" m)
    [
      Net.Wire.Query
        {
          user = "u00";
          purpose = "serve";
          perc = 0.1 +. 0.2 (* not representable exactly: bits must survive *);
          sql = "SELECT k FROM R WHERE n < 70";
          deadline_ms = Some 12.5;
        };
      Net.Wire.Query
        { user = ""; purpose = ""; perc = 0.0; sql = ""; deadline_ms = None };
      Net.Wire.Accept { user = "u01"; token = 424242 };
      Net.Wire.Ping;
    ]

let test_wire_response_roundtrip () =
  List.iter
    (fun resp ->
      let typ, payload = Net.Wire.encode_response resp in
      match Net.Wire.decode_response ~typ payload with
      | Ok resp' -> if resp <> resp' then Alcotest.fail "response changed on the wire"
      | Error m -> Alcotest.failf "decode_response: %s" m)
    [
      Net.Wire.Answer
        {
          released = 3;
          withheld = 2;
          requested = 4;
          degraded = Some "deadline";
          proposal_token = Some 7;
          body = "\x00\x01binary\xffbody";
        };
      Net.Wire.Accepted { applied = 2; cost = 13.25 };
      Net.Wire.Pong;
      Net.Wire.Overloaded { retry_after_ms = 50.0 };
      Net.Wire.Timeout { reason = "deadline expired in admission queue" };
      Net.Wire.Err "no such user";
    ]

let test_wire_rejects_truncated () =
  let typ, payload =
    Net.Wire.encode_request
      (Net.Wire.Query
         { user = "u"; purpose = "p"; perc = 1.0; sql = "SELECT"; deadline_ms = None })
  in
  (match Net.Wire.decode_request ~typ (String.sub payload 0 5) with
  | Ok _ -> Alcotest.fail "truncated request accepted"
  | Error _ -> ());
  match Net.Wire.decode_request ~typ (payload ^ "junk") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* server fixtures *)

let build_ctx () =
  let open Relational in
  let r = Relation.create "T" (Schema.of_list [ ("x", V.TInt) ]) in
  let db = Db.add_relation Db.empty r in
  let db =
    List.fold_left
      (fun db (x, conf) -> fst (Db.insert db "T" [ V.Int x ] ~conf))
      db
      [ (1, 0.9); (2, 0.7); (3, 0.45); (4, 0.3); (5, 0.2); (6, 0.55) ]
  in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_role empty "analyst" in
    let m =
      List.fold_left
        (fun m u -> ok (assign_user ~user:u ~role:"analyst" (add_user m u)))
        m [ "u0"; "u1"; "u2"; "u3" ]
    in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list
      [ Rbac.Policy.make ~role:"analyst" ~purpose:"p" ~beta:0.5 ]
  in
  E.make_context ~db ~rbac ~policies ()

let sock_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "pcqe_net_test_%d_%d.sock" (Unix.getpid ()) !n)

let with_server ?config ctx f =
  let server =
    Net.Server.start ?config ~ctx (Net.Server.Unix_path (sock_path ()))
  in
  Fun.protect ~finally:(fun () -> Net.Server.stop server) (fun () -> f server)

let queries =
  [|
    "SELECT x FROM T";
    "SELECT x FROM T WHERE x < 4";
    "SELECT x FROM T WHERE x > 2";
  |]

(* ------------------------------------------------------------------ *)
(* identity: wire answers == in-process Session.batch, bit for bit *)

let test_server_identity_with_batch () =
  let ctx = build_ctx () in
  let users = [ "u0"; "u1" ] in
  (* per-principal streams: each user asks every query at two percs *)
  let stream u =
    List.concat_map
      (fun sql -> [ (sql, 0.3); (sql, 1.0) ])
      (Array.to_list queries)
    |> List.map (fun (sql, perc) -> (u, sql, perc))
  in
  let wire_bodies =
    with_server ctx (fun server ->
        let client = Net.Client.create ~seed:1 (Net.Server.address server) in
        Fun.protect
          ~finally:(fun () -> Net.Client.close client)
          (fun () ->
            List.map
              (fun u ->
                List.map
                  (fun (user, sql, perc) ->
                    match Net.Client.query client ~user ~purpose:"p" ~perc sql with
                    | Net.Client.Answer a -> a.Net.Wire.body
                    | o ->
                      Alcotest.failf "wire query not answered: %s"
                        (Net.Client.outcome_label o))
                  (stream u))
              users))
  in
  (* the in-process reference: one Session per principal over the same
     base context, batching the same stream *)
  let local_bodies =
    List.map
      (fun u ->
        let session = E.Session.create ctx in
        E.Session.batch session
          (List.map
             (fun (user, sql, perc) ->
               { E.query = Pcqe.Query.sql sql; user; purpose = "p"; perc })
             (stream u))
        |> List.map (fun r -> Net.Wire.body_of_response (ok r)))
      users
  in
  List.iter2
    (fun ws ls ->
      List.iteri
        (fun i (w, l) ->
          if not (String.equal w l) then
            Alcotest.failf "response %d differs between wire and Session.batch" i)
        (List.combine ws ls))
    wire_bodies local_bodies

let test_server_accept_token () =
  let ctx = build_ctx () in
  with_server ctx (fun server ->
      let client = Net.Client.create ~seed:2 (Net.Server.address server) in
      Fun.protect
        ~finally:(fun () -> Net.Client.close client)
        (fun () ->
          (* perc=1.0 needs all 6 results; only 3 clear β=0.5, so the
             solver proposes increments and parks them under a token *)
          let a =
            match
              Net.Client.query client ~user:"u0" ~purpose:"p" ~perc:1.0
                "SELECT x FROM T"
            with
            | Net.Client.Answer a -> a
            | o -> Alcotest.failf "expected answer, got %s" (Net.Client.outcome_label o)
          in
          let token =
            match a.Net.Wire.proposal_token with
            | Some t -> t
            | None -> Alcotest.fail "expected a proposal token"
          in
          (match Net.Client.accept client ~user:"u0" ~token with
          | Net.Client.Accepted { applied; _ } ->
            Alcotest.(check bool) "applied some increments" true (applied > 0)
          | o -> Alcotest.failf "accept failed: %s" (Net.Client.outcome_label o));
          (* tokens are single-use: a replay must not re-apply *)
          (match Net.Client.accept client ~user:"u0" ~token with
          | Net.Client.Failed _ -> ()
          | o -> Alcotest.failf "replayed token not rejected: %s" (Net.Client.outcome_label o));
          (* the follow-up answer reflects the applied increments *)
          match
            Net.Client.query client ~user:"u0" ~purpose:"p" ~perc:1.0
              "SELECT x FROM T"
          with
          | Net.Client.Answer a' ->
            Alcotest.(check bool) "more released after accept" true
              (a'.Net.Wire.released > a.Net.Wire.released)
          | o -> Alcotest.failf "re-query failed: %s" (Net.Client.outcome_label o)))

(* ------------------------------------------------------------------ *)
(* admission: shedding and queue-expired timeouts *)

let overload_config =
  {
    Net.Server.default_config with
    admit = 1;
    queue = 0;
    retry_after_ms = 5.0;
    fault_stall_s = 0.25;
  }

(* Arm net.delay at rate 1.0: every admitted request stalls 250 ms
   holding the only execution slot, so concurrent requests shed
   deterministically (queue = 0). *)
let test_server_sheds_under_overload () =
  let ctx = build_ctx () in
  with_server ~config:overload_config ctx (fun server ->
      let addr = Net.Server.address server in
      let plan =
        Fault.plan ~rate:1.0 ~sites:[ Fault.site_net_delay ] ~seed:5 ()
      in
      Fault.with_plan plan (fun () ->
          let outcomes = Array.make 4 None in
          let clients =
            Array.init 4 (fun i ->
                Net.Client.create
                  ~config:{ Net.Client.default_config with retries = 0 }
                  ~seed:i addr)
          in
          (* connect everyone first so the sends land near-simultaneously *)
          let threads =
            Array.init 4 (fun i ->
                Thread.create
                  (fun () ->
                    outcomes.(i) <-
                      Some
                        (Net.Client.query clients.(i) ~user:"u0" ~purpose:"p"
                           ~perc:0.3 "SELECT x FROM T"))
                  ())
          in
          Array.iter Thread.join threads;
          Array.iter (fun c -> Net.Client.close c) clients;
          let answers = ref 0 and sheds = ref 0 and other = ref 0 in
          Array.iter
            (fun o ->
              match o with
              | Some (Net.Client.Answer _) -> incr answers
              | Some (Net.Client.Shed _) -> incr sheds
              | Some _ -> incr other
              | None -> Alcotest.fail "a request never terminated")
            outcomes;
          Alcotest.(check int) "all terminal" 4 (!answers + !sheds + !other);
          Alcotest.(check bool) "at least one answered" true (!answers >= 1);
          Alcotest.(check bool) "overload shed explicitly" true (!sheds >= 1));
      (* the server survives the storm *)
      let c = Net.Client.create ~seed:9 addr in
      (match Net.Client.ping c with
      | Net.Client.Answer _ -> ()
      | o -> Alcotest.failf "server dead after overload: %s" (Net.Client.outcome_label o));
      Net.Client.close c)

let test_server_queue_deadline_timeout () =
  let ctx = build_ctx () in
  let config = { overload_config with queue = 4 } in
  with_server ~config ctx (fun server ->
      let addr = Net.Server.address server in
      let plan =
        Fault.plan ~rate:1.0 ~sites:[ Fault.site_net_delay ] ~seed:6 ()
      in
      Fault.with_plan plan (fun () ->
          (* the first request stalls 250 ms holding the slot; the
             follow-up carries a 20 ms budget and must time out in the
             queue (terminal!), not wait the full stall *)
          let holder =
            Thread.create
              (fun () ->
                let c = Net.Client.create ~seed:11 addr in
                ignore
                  (Net.Client.query c ~user:"u0" ~purpose:"p" ~perc:0.3
                     "SELECT x FROM T");
                Net.Client.close c)
              ()
          in
          Thread.delay 0.05 (* let the holder grab the slot *);
          let c =
            Net.Client.create
              ~config:{ Net.Client.default_config with retries = 0 }
              ~seed:12 addr
          in
          (match
             Net.Client.query c ~user:"u1" ~purpose:"p" ~perc:0.3
               ~deadline_ms:20.0 "SELECT x FROM T"
           with
          | Net.Client.Timed_out _ -> ()
          | o ->
            Alcotest.failf "expected queue-expired timeout, got %s"
              (Net.Client.outcome_label o));
          Net.Client.close c;
          Thread.join holder))

(* ------------------------------------------------------------------ *)
(* malformed input never kills the server *)

let raw_connect addr =
  match addr with
  | Net.Server.Unix_path p ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX p);
    fd
  | Net.Server.Tcp _ -> Alcotest.fail "test uses unix sockets"

let test_server_survives_malformed_frames () =
  let ctx = build_ctx () in
  with_server ctx (fun server ->
      let addr = Net.Server.address server in
      (* garbage bytes: bad magic *)
      let fd = raw_connect addr in
      ignore (Unix.write fd (Bytes.of_string "GARBAGE-NOT-A-FRAME") 0 19);
      (* the server replies with an Err frame (best effort) and drops
         only this connection *)
      Unix.close fd;
      (* a torn frame: valid header promising more payload than sent *)
      let fd = raw_connect addr in
      let frame = Net.Frame.encode ~typ:1 "this payload will be cut short" in
      let cut = String.length frame - 10 in
      ignore (Unix.write fd (Bytes.of_string (String.sub frame 0 cut)) 0 cut);
      Unix.close fd;
      (* a valid frame with an undecodable body *)
      let fd = raw_connect addr in
      let frame = Net.Frame.encode ~typ:1 "not a query payload" in
      ignore (Unix.write fd (Bytes.of_string frame) 0 (String.length frame));
      Thread.delay 0.05;
      Unix.close fd;
      (* after all that, a well-formed request still answers *)
      let c = Net.Client.create ~seed:3 addr in
      (match Net.Client.query c ~user:"u0" ~purpose:"p" ~perc:0.3 "SELECT x FROM T" with
      | Net.Client.Answer _ -> ()
      | o -> Alcotest.failf "server dead after malformed input: %s" (Net.Client.outcome_label o));
      Net.Client.close c;
      let stats = Net.Server.stats server in
      let malformed = try List.assoc "net.malformed" stats with Not_found -> 0 in
      Alcotest.(check bool) "malformed frames counted" true (malformed >= 2))

(* ------------------------------------------------------------------ *)
(* chaos: armed net.* faults, every request terminal, server correct after *)

let test_server_chaos_all_terminal () =
  let ctx = build_ctx () in
  let config = { Net.Server.default_config with admit = 2; queue = 2 } in
  with_server ~config ctx (fun server ->
      let addr = Net.Server.address server in
      let beta = 0.5 in
      List.iter
        (fun seed ->
          let plan =
            Fault.plan ~rate:0.2
              ~sites:
                [
                  Fault.site_net_accept;
                  Fault.site_net_read;
                  Fault.site_net_write;
                  Fault.site_net_delay;
                ]
              ~seed ()
          in
          Fault.with_plan plan (fun () ->
              let report =
                Workload.Load_gen.run
                  {
                    Workload.Load_gen.principals = 4;
                    requests_per_principal = 8;
                    think_ms = 0.0;
                    zipf_s = 1.1;
                    seed;
                  }
                  ~queries
                  ~user_of:(fun i -> Printf.sprintf "u%d" i)
                  ~exec:(fun ~principal ~user ~sql ->
                    let client =
                      Net.Client.create
                        ~config:
                          { Net.Client.default_config with retries = 2 }
                        ~seed:(principal * 1000) addr
                    in
                    Fun.protect
                      ~finally:(fun () -> Net.Client.close client)
                      (fun () ->
                        match
                          Net.Client.query client ~user ~purpose:"p" ~perc:0.3 sql
                        with
                        | Net.Client.Answer a ->
                          (* fail-closed across the wire: the answer body
                             matches the in-process answer, which never
                             releases at or below β *)
                          Workload.Load_gen.Answered
                            { degraded = a.Net.Wire.degraded <> None }
                        | Net.Client.Shed _ -> Workload.Load_gen.Shed
                        | Net.Client.Timed_out _ -> Workload.Load_gen.Timed_out
                        | Net.Client.Accepted _ -> Workload.Load_gen.Failed "accepted?"
                        | Net.Client.Failed m -> Workload.Load_gen.Failed m))
              in
              (* the terminal-outcome property: nothing hangs, nothing is
                 silently dropped *)
              Alcotest.(check int)
                "every request reached a terminal outcome" (4 * 8)
                report.Workload.Load_gen.total))
        [ 1; 2; 3 ];
      Fault.disarm ();
      (* after the chaos: the server still answers, and bit-identically
         to a fresh in-process session *)
      let c = Net.Client.create ~seed:4 addr in
      let wire_body =
        match Net.Client.query c ~user:"u3" ~purpose:"p" ~perc:0.3 "SELECT x FROM T" with
        | Net.Client.Answer a -> a.Net.Wire.body
        | o -> Alcotest.failf "server dead after chaos: %s" (Net.Client.outcome_label o)
      in
      Net.Client.close c;
      (* u3 never queried during the chaos, so its server-side session is
         fresh — comparable to a fresh local one *)
      let session = E.Session.create ctx in
      let local =
        E.Session.batch session
          [
            {
              E.query = Pcqe.Query.sql "SELECT x FROM T";
              user = "u3";
              purpose = "p";
              perc = 0.3;
            };
          ]
        |> List.map (fun r -> Net.Wire.body_of_response (ok r))
      in
      Alcotest.(check bool)
        "post-chaos answer identical to in-process" true
        (String.equal wire_body (List.hd local));
      (* no released tuple at or below β in the reference answer the wire
         bytes were just proven identical to *)
      let resp = ok (E.Session.answer session
        { E.query = Pcqe.Query.sql "SELECT x FROM T"; user = "u3"; purpose = "p"; perc = 0.3 })
      in
      List.iter
        (fun (row : E.released) ->
          Alcotest.(check bool) "released above beta" true (row.E.confidence > beta))
        resp.E.released)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "crc32 vector" `Quick test_frame_crc32_vector;
          Alcotest.test_case "rejects malformed" `Quick test_frame_rejects_malformed;
        ] );
      ( "wire",
        [
          Alcotest.test_case "request roundtrip" `Quick test_wire_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick test_wire_response_roundtrip;
          Alcotest.test_case "rejects truncated" `Quick test_wire_rejects_truncated;
        ] );
      ( "server",
        [
          Alcotest.test_case "identity with Session.batch" `Quick
            test_server_identity_with_batch;
          Alcotest.test_case "accept via single-use token" `Quick
            test_server_accept_token;
          Alcotest.test_case "sheds under overload" `Quick
            test_server_sheds_under_overload;
          Alcotest.test_case "queue deadline timeout" `Quick
            test_server_queue_deadline_timeout;
          Alcotest.test_case "survives malformed frames" `Quick
            test_server_survives_malformed_frames;
          Alcotest.test_case "chaos: all requests terminal" `Quick
            test_server_chaos_all_terminal;
        ] );
    ]
