(* Tests for the audit trail. *)

module A = Pcqe.Audit
module Tid = Lineage.Tid

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let sample_query ?(user = "alice") ?(withheld = 1) () =
  A.Query
    {
      user;
      purpose = "investment";
      sql = "SELECT x FROM T WHERE a = 'b c'";
      threshold = Some 0.06;
      released = 2;
      withheld;
      proposal_cost = Some 10.0;
      degraded = None;
    }

let sample_improvement =
  A.Improvement
    {
      user = "alice";
      cost = 10.0;
      increments = [ (Tid.make "Proposal" 2, 0.5); (Tid.make "Info" 0, 0.2) ];
    }

let sample_denial = A.Denied { user = "mallory"; reason = "lacks select on T" }

let test_sequencing () =
  let log = A.empty in
  Alcotest.(check int) "empty" 0 (A.length log);
  let log = A.record log (sample_query ()) in
  let log = A.record log sample_improvement in
  let log = A.record log sample_denial in
  Alcotest.(check int) "three entries" 3 (A.length log);
  Alcotest.(check (list int)) "sequence numbers" [ 0; 1; 2 ]
    (List.map (fun e -> e.A.seq) (A.entries log))

let test_filter_by_user () =
  let log = A.record A.empty (sample_query ()) in
  let log = A.record log sample_denial in
  let log = A.record log (sample_query ~user:"bob" ()) in
  Alcotest.(check int) "alice has one" 1 (List.length (A.events_for_user log "alice"));
  Alcotest.(check int) "mallory has one" 1
    (List.length (A.events_for_user log "mallory"));
  Alcotest.(check int) "nobody" 0 (List.length (A.events_for_user log "eve"))

let test_to_string () =
  let log = A.record A.empty (sample_query ()) in
  let text = A.to_string log in
  Alcotest.(check bool) "mentions the user" true (contains ~needle:"alice" text);
  Alcotest.(check bool) "mentions withheld" true (contains ~needle:"withheld=1" text)

let test_render_parse_roundtrip () =
  let log =
    List.fold_left A.record A.empty
      [ sample_query (); sample_improvement; sample_denial; sample_query ~user:"bob" ~withheld:0 () ]
  in
  match A.parse (A.render log) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok log' ->
    Alcotest.(check int) "same length" (A.length log) (A.length log');
    Alcotest.(check string) "same rendering" (A.render log) (A.render log');
    (* appending after a reload continues the sequence *)
    let log'' = A.record log' sample_denial in
    Alcotest.(check int) "sequence continues" 5 (A.length log'')

let test_parse_errors () =
  List.iter
    (fun text ->
      match A.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected failure: %s" text)
    [ "X\t0\tu"; "Q\tnot-a-number\tu\tp\t-\t0\t0\t-\tsql"; "I\t0\tu\tbad\t" ]

let test_record_answer_and_acceptance () =
  (* drive the helpers through a real engine response *)
  let open Relational in
  let r = Relation.create "T" (Schema.of_list [ ("x", Value.TInt) ]) in
  let db = Database.add_relation Database.empty r in
  let db, _ = Database.insert db "T" [ Value.Int 1 ] ~conf:0.3 in
  let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m in
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "a") "u" in
    let m = ok (assign_user m ~user:"u" ~role:"a") in
    ok (grant m ~role:"a" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list [ Rbac.Policy.make ~role:"a" ~purpose:"p" ~beta:0.5 ]
  in
  let ctx = Pcqe.Engine.make_context ~db ~rbac ~policies () in
  let sql = "SELECT x FROM T" in
  let resp =
    ok
      (Pcqe.Engine.answer ctx
         { Pcqe.Engine.query = Pcqe.Query.sql sql; user = "u"; purpose = "p"; perc = 1.0 })
  in
  let log = A.record_answer A.empty ~user:"u" ~purpose:"p" ~sql resp in
  let log =
    match resp.Pcqe.Engine.proposal with
    | Some proposal -> A.record_acceptance log ~user:"u" proposal
    | None -> Alcotest.fail "expected proposal"
  in
  Alcotest.(check int) "two entries" 2 (A.length log);
  let text = A.to_string log in
  Alcotest.(check bool) "query logged" true (contains ~needle:"threshold=0.5" text);
  Alcotest.(check bool) "improvement logged" true (contains ~needle:"improvement" text);
  (* roundtrip through persistence *)
  match A.parse (A.render log) with
  | Ok log' -> Alcotest.(check string) "roundtrip" (A.render log) (A.render log')
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "audit"
    [
      ( "audit",
        [
          Alcotest.test_case "sequencing" `Quick test_sequencing;
          Alcotest.test_case "filter by user" `Quick test_filter_by_user;
          Alcotest.test_case "report" `Quick test_to_string;
          Alcotest.test_case "persistence roundtrip" `Quick test_render_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "engine helpers" `Quick test_record_answer_and_acceptance;
        ] );
    ]
