(* Tests for the resilience layer: deadline tokens, seeded fault plans,
   anytime (partial) solver outcomes, and the confidence degradation
   ladder.  The invariants:

   1. deadlines are cooperative and sticky; logical budgets are
      scheduling-independent (split/absorb is pure arithmetic);
   2. fault plans are a pure function of (seed, site, hit index);
   3. a deadline-cut solve reports Partial, and any solution it still
      reports is feasible — degraded optimality, never compliance;
   4. logical-budget divide-and-conquer is bit-identical at any jobs
      level;
   5. the ladder's interval contains the exact confidence and the
      release rule is fail-closed. *)

module DL = Resilience.Deadline
module Fault = Resilience.Fault
module Problem = Optimize.Problem
module State = Optimize.State
module Solver = Optimize.Solver
module D = Optimize.Divide_conquer
module Approx = Lineage.Approx
module F = Lineage.Formula
module Tid = Lineage.Tid

(* ------------------------------------------------------------------ *)
(* deadline tokens *)

let test_never () =
  Alcotest.(check bool) "inactive" false (DL.active DL.never);
  DL.tick DL.never;
  DL.tick ~by:1000 DL.never;
  Alcotest.(check bool) "never expires" false (DL.expired DL.never);
  Alcotest.(check int) "no accounting" 0 (DL.used DL.never);
  DL.cancel DL.never ();
  Alcotest.(check bool) "cancel is a no-op" false (DL.expired DL.never);
  Alcotest.(check string) "reason" "no deadline" (DL.reason DL.never)

let test_logical_expiry () =
  let t = DL.logical 3 in
  Alcotest.(check bool) "active" true (DL.active t);
  DL.tick t;
  DL.tick t;
  Alcotest.(check bool) "2 < 3" false (DL.expired t);
  DL.tick t;
  Alcotest.(check bool) "3 >= 3" true (DL.expired t);
  Alcotest.(check bool) "sticky" true (DL.expired t);
  Alcotest.(check int) "used" 3 (DL.used t);
  Alcotest.(check string) "reason" "logical budget (3 ticks) exhausted"
    (DL.reason t)

let test_logical_zero_born_expired () =
  Alcotest.(check bool) "0-budget expires at once" true
    (DL.expired (DL.logical 0))

let test_wall_with_counter_clock () =
  (* counter clock: one reading per call, so expiry is deterministic *)
  let clock = Obs.Clock.counter ~step:1.0 () in
  let t = DL.wall_ms ~clock 1500.0 in
  (* start read 0.0 -> expires_at 1.5; reads 1.0 then 2.0 *)
  Alcotest.(check bool) "before the deadline" false (DL.expired t);
  Alcotest.(check bool) "after the deadline" true (DL.expired t);
  Alcotest.(check bool) "sticky without reading the clock" true (DL.expired t);
  Alcotest.(check string) "reason" "wall deadline (1500ms) exceeded"
    (DL.reason t)

let test_cancel () =
  let t = DL.logical 1_000_000 in
  DL.cancel t ~reason:"user interrupt" ();
  Alcotest.(check bool) "cancelled" true (DL.expired t);
  Alcotest.(check string) "custom reason" "user interrupt" (DL.reason t)

let test_invalid_specs () =
  Alcotest.check_raises "zero wall budget"
    (Invalid_argument "Deadline.start: wall budget 0 must be > 0") (fun () ->
      ignore (DL.start (DL.Wall_ms 0.0)));
  Alcotest.check_raises "negative logical budget"
    (Invalid_argument "Deadline.start: logical budget -1 must be >= 0")
    (fun () -> ignore (DL.start (DL.Logical (-1))))

let test_split_absorb_logical () =
  let t = DL.logical 10 in
  DL.tick ~by:2 t;
  let subs = DL.split t 4 in
  Alcotest.(check int) "four children" 4 (Array.length subs);
  Array.iter
    (fun s ->
      (* each child owns floor ((10 - 2) / 4) = 2 ticks *)
      DL.tick s;
      Alcotest.(check bool) "child not expired at 1" false (DL.expired s);
      DL.tick s;
      Alcotest.(check bool) "child expired at 2" true (DL.expired s))
    subs;
  DL.absorb t subs;
  Alcotest.(check int) "parent absorbed the children" 10 (DL.used t);
  Alcotest.(check bool) "parent expired after absorb" true (DL.expired t)

let test_split_of_expired_parent () =
  let t = DL.logical 1 in
  DL.tick t;
  Alcotest.(check bool) "parent expired" true (DL.expired t);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "children born expired" true (DL.expired s))
    (DL.split t 3)

let test_split_never () =
  Array.iter
    (fun s -> Alcotest.(check bool) "unbounded children" false (DL.active s))
    (DL.split DL.never 5)

let test_split_remainder_uneven () =
  (* budget 10, 3 used: 7 remain, split 3 ways -> floor(7/3) = 2 each;
     the remainder tick is conservative slack, not lost budget *)
  let t = DL.logical 10 in
  DL.tick ~by:3 t;
  let subs = DL.split t 3 in
  Array.iter
    (fun s ->
      DL.tick ~by:2 s;
      Alcotest.(check bool) "child expired at its share" true (DL.expired s))
    subs;
  DL.absorb t subs;
  (* 3 + 3·2 = 9 of 10: the undistributed remainder is still spendable *)
  Alcotest.(check int) "remainder accounted" 9 (DL.used t);
  Alcotest.(check bool) "parent survives on the remainder" false (DL.expired t);
  DL.tick t;
  Alcotest.(check bool) "and expires exactly on budget" true (DL.expired t);
  (* more children than remaining ticks: floor share is 0, every child
     is born expired — never a negative or inflated budget *)
  let t = DL.logical 3 in
  DL.tick ~by:1 t;
  Array.iter
    (fun s -> Alcotest.(check bool) "zero-share child born expired" true (DL.expired s))
    (DL.split t 5)

let test_split_after_cancel_sticky () =
  let t = DL.logical 50 in
  DL.tick t;
  DL.cancel t ~reason:"operator abort" ();
  Alcotest.(check bool) "cancel is expiry" true (DL.expired t);
  Alcotest.(check string) "reason survives" "operator abort" (DL.reason t);
  (* children of a cancelled token are born expired, at any depth *)
  let subs = DL.split t 2 in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "child of cancelled born expired" true (DL.expired s);
      Array.iter
        (fun g ->
          Alcotest.(check bool) "grandchild born expired" true (DL.expired g))
        (DL.split s 2))
    subs;
  DL.absorb t subs;
  Alcotest.(check bool) "still expired after absorb" true (DL.expired t);
  Alcotest.(check string) "reason sticks through absorb" "operator abort"
    (DL.reason t)

let test_nested_split_absorb_accounting () =
  (* two levels of split/absorb: tick totals flow back up undistorted,
     and a cancelled grandchild stays expired while its siblings and
     ancestors keep their arithmetic *)
  let t = DL.logical 100 in
  DL.tick ~by:4 t;
  let children = DL.split t 2 in
  (* each child owns floor(96/2) = 48 *)
  let grandkids = DL.split children.(0) 3 in
  (* each grandchild owns floor(48/3) = 16 *)
  DL.tick ~by:16 grandkids.(0);
  Alcotest.(check bool) "grandchild spent its share" true (DL.expired grandkids.(0));
  DL.tick ~by:5 grandkids.(1);
  DL.cancel grandkids.(1) ();
  Alcotest.(check bool) "cancelled under budget, still expired" true
    (DL.expired grandkids.(1));
  DL.tick ~by:7 grandkids.(2);
  DL.absorb children.(0) grandkids;
  Alcotest.(check int) "child absorbed 16+5+7" 28 (DL.used children.(0));
  Alcotest.(check bool) "child not expired (28 < 48)" false
    (DL.expired children.(0));
  (* the cancelled grandchild's expiry is sticky and local *)
  Alcotest.(check bool) "cancellation still sticky" true (DL.expired grandkids.(1));
  DL.tick ~by:9 children.(1);
  DL.absorb t children;
  Alcotest.(check int) "root: 4 + 28 + 9" 41 (DL.used t);
  Alcotest.(check bool) "root alive" false (DL.expired t)

(* ------------------------------------------------------------------ *)
(* fault plans *)

let injected_indices plan site n =
  (* which of [n] hits raise under [plan]? *)
  Fault.with_plan plan (fun () ->
      List.init n (fun i ->
          match Fault.hit site with
          | () -> (i, false)
          | exception Fault.Injected _ -> (i, true))
      |> List.filter_map (fun (i, inj) -> if inj then Some i else None))

let test_fault_unknown_site_rejected () =
  (* a typo'd site must fail loudly at plan construction, not silently
     never fire *)
  (match Fault.plan ~sites:[ "pool.chnk" ] ~seed:1 () with
  | _ -> Alcotest.fail "unknown site accepted"
  | exception Invalid_argument msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the bad site" true
      (contains msg "pool.chnk"));
  (* the net.* sites ship registered *)
  List.iter
    (fun s ->
      Alcotest.(check bool) ("registered: " ^ s) true
        (List.mem s (Fault.registered_sites ())))
    [ "net.accept"; "net.read"; "net.write"; "net.delay" ];
  (* registering a custom site makes it plannable *)
  Fault.register_site "test.custom";
  let p = Fault.plan ~sites:[ "test.custom" ] ~seed:1 () in
  Fault.arm p;
  Fault.disarm ()

let test_fault_noop_when_disarmed () =
  Alcotest.(check bool) "disarmed" false (Fault.armed ());
  (* a bare hit must be a no-op *)
  Fault.hit Fault.site_pool_chunk;
  Alcotest.(check pass) "hit without a plan" () ()

let test_fault_determinism () =
  let run () =
    injected_indices
      (Fault.plan ~rate:0.5 ~seed:42 ())
      Fault.site_state_eval 200
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "some injections at rate 0.5" true (List.length a > 0);
  Alcotest.(check (list int)) "same seed, same injections" a b;
  let c =
    injected_indices
      (Fault.plan ~rate:0.5 ~seed:43 ())
      Fault.site_state_eval 200
  in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let test_fault_rates () =
  Alcotest.(check (list int))
    "rate 0 never injects" []
    (injected_indices (Fault.plan ~rate:0.0 ~seed:1 ()) Fault.site_prob_mc 50);
  Alcotest.(check (list int))
    "rate 1 always injects"
    (List.init 50 Fun.id)
    (injected_indices (Fault.plan ~rate:1.0 ~seed:1 ()) Fault.site_prob_mc 50)

let test_fault_max_injections () =
  let p = Fault.plan ~rate:1.0 ~max_injections:3 ~seed:7 () in
  let inj = injected_indices p Fault.site_pool_chunk 10 in
  Alcotest.(check (list int)) "first three only" [ 0; 1; 2 ] inj;
  Alcotest.(check int) "accounted" 3 (Fault.injected p)

let test_fault_site_filter () =
  let p = Fault.plan ~rate:1.0 ~sites:[ Fault.site_prob_mc ] ~seed:7 () in
  Alcotest.(check (list int))
    "unselected site never injects" []
    (injected_indices p Fault.site_state_eval 20)

let test_fault_protect () =
  let p = Fault.plan ~rate:1.0 ~seed:7 () in
  Fault.with_plan p (fun () ->
      Fault.protect (fun () ->
          for _ = 1 to 20 do
            Fault.hit Fault.site_state_eval
          done));
  Alcotest.(check int) "nothing injected under protect" 0 (Fault.injected p);
  Alcotest.(check (list (pair string int)))
    "suppressed hits are not counted"
    (List.map (fun s -> (s, 0)) (Fault.registered_sites ()))
    (Fault.hits p)

(* ------------------------------------------------------------------ *)
(* anytime solvers: Partial resolution, feasible-or-None *)

let replay problem solution =
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> Alcotest.fail "unknown base in solution")
    solution;
  st

let check_outcome ?(name = "") problem (out : Solver.outcome) =
  match out.Solver.solution with
  | None -> ()
  | Some solution ->
    let st = replay problem solution in
    Alcotest.(check bool)
      (name ^ " reported solution is feasible")
      true
      (State.satisfied_count st >= Problem.required problem);
    Alcotest.(check bool)
      (name ^ " reported cost matches replay")
      true
      (Float.abs (State.cost st -. out.Solver.cost) < 1e-6)

let algorithms =
  [
    ("heuristic", Solver.heuristic);
    ("heuristic-seeded", Solver.heuristic_seeded);
    ("greedy", Solver.greedy);
    ("dnc", Solver.divide_conquer);
    ("annealing", Solver.annealing);
  ]

let test_partial_on_tiny_budget () =
  let problem =
    Workload.Synth.small_instance ~num_bases:25 ~num_results:14 ~required:7
      ~bases_per_result:4 ~seed:3 ()
  in
  List.iter
    (fun (name, algorithm) ->
      let out = Solver.solve ~algorithm ~deadline:(DL.logical 2) problem in
      (match out.Solver.resolution with
      | Solver.Partial { reason } ->
        Alcotest.(check bool)
          (name ^ " reason mentions the budget")
          true
          (reason = DL.reason (DL.logical 2))
      | Solver.Complete ->
        Alcotest.failf "%s: 2-tick budget should not complete" name);
      check_outcome ~name problem out)
    algorithms

let test_unbounded_is_complete () =
  let problem = Workload.Synth.small_instance ~seed:3 () in
  List.iter
    (fun (name, algorithm) ->
      let out = Solver.solve ~algorithm problem in
      match out.Solver.resolution with
      | Solver.Complete -> check_outcome ~name problem out
      | Solver.Partial { reason } ->
        Alcotest.failf "%s: unbounded solve reported partial (%s)" name reason)
    algorithms

let test_generous_budget_matches_unbounded () =
  (* a budget the solver never reaches must not change the outcome *)
  let problem =
    Workload.Synth.small_instance ~num_bases:20 ~num_results:10 ~required:5
      ~seed:5 ()
  in
  List.iter
    (fun (name, algorithm) ->
      let a = Solver.solve ~algorithm problem in
      let b =
        Solver.solve ~algorithm ~deadline:(DL.logical 50_000_000) problem
      in
      Alcotest.(check bool)
        (name ^ " same solution") true
        (a.Solver.solution = b.Solver.solution);
      Alcotest.(check bool)
        (name ^ " same cost") true
        (a.Solver.cost = b.Solver.cost
        || (Float.is_nan a.Solver.cost && Float.is_nan b.Solver.cost)))
    algorithms

let qcheck_partial_feasible =
  QCheck.Test.make ~name:"every partial solution is feasible" ~count:150
    QCheck.(pair (int_range 0 40) (int_range 0 400))
    (fun (seed, budget) ->
      let problem =
        Workload.Synth.small_instance ~num_bases:20 ~num_results:12 ~required:6
          ~bases_per_result:4 ~seed ()
      in
      List.for_all
        (fun (_, algorithm) ->
          let out =
            Solver.solve ~algorithm ~deadline:(DL.logical budget) problem
          in
          match out.Solver.solution with
          | None -> true
          | Some solution ->
            let st = replay problem solution in
            State.satisfied_count st >= Problem.required problem)
        algorithms)

(* ------------------------------------------------------------------ *)
(* logical budgets are jobs-invariant (divide-and-conquer) *)

let dnc_outcome ~jobs ~budget problem =
  let deadline = DL.logical budget in
  let out =
    if jobs = 1 then D.solve ~deadline problem
    else
      Exec.Pool.with_pool ~jobs (fun pool -> D.solve ~pool ~deadline problem)
  in
  ( out.D.solution,
    out.D.cost,
    out.D.satisfied,
    out.D.feasible,
    out.D.stopped,
    DL.used deadline )

let test_dnc_budget_jobs_invariant () =
  List.iter
    (fun budget ->
      List.iter
        (fun seed ->
          let problem () =
            Workload.Synth.instance
              ~params:
                { Workload.Synth.default_params with data_size = 300 }
              ~seed ()
          in
          let base = dnc_outcome ~jobs:1 ~budget (problem ()) in
          List.iter
            (fun jobs ->
              let other = dnc_outcome ~jobs ~budget (problem ()) in
              Alcotest.(check bool)
                (Printf.sprintf
                   "seed %d budget %d: jobs=%d identical to jobs=1" seed budget
                   jobs)
                true (base = other))
            [ 2; 4 ])
        [ 1; 11 ])
    [ 0; 37; 500; 100_000 ]

(* ------------------------------------------------------------------ *)
(* the confidence degradation ladder *)

let t i = Tid.make "b" i
let v i = F.var (t i)

(* sliding-window pairwise conjunctions: every variable occurs twice, so
   with [n] variables the Shannon cost estimate is 2^n — entangled enough
   to push the ladder past its exact tier *)
let entangled n =
  F.disj (List.init n (fun i -> F.conj [ v i; v ((i + 1) mod n) ]))

let test_ladder_read_once_exact () =
  let p tid = if tid = t 0 then 0.3 else 0.9 in
  match Approx.confidence p (v 0) with
  | Approx.Exact c -> Alcotest.(check (float 1e-12)) "exact tier" 0.3 c
  | _ -> Alcotest.fail "read-once lineage must resolve exactly"

let test_ladder_small_entangled_exact () =
  (* few repeated variables: the Shannon tier answers exactly *)
  let f = entangled 5 in
  let p _ = 0.4 in
  match Approx.confidence p f with
  | Approx.Exact c ->
    Alcotest.(check (float 1e-9)) "matches Prob.exact"
      (Lineage.Prob.exact p f) c
  | _ -> Alcotest.fail "small entangled lineage must resolve exactly"

let test_ladder_falls_back_to_interval () =
  (* 16 repeated variables (estimate 2^16 > 4096) and a 2-node OBDD cap:
     both exact tiers are off the table, so the ladder must sample *)
  let f = entangled 16 in
  let p _ = 0.35 in
  let truth = Lineage.Prob.exact p f in
  match Approx.confidence ~exact_node_cap:2 p f with
  | Approx.Interval { lo; hi; estimate; samples } ->
    Alcotest.(check bool) "well-formed" true (0.0 <= lo && lo <= hi && hi <= 1.0);
    Alcotest.(check bool) "estimate inside" true (lo <= estimate && estimate <= hi);
    Alcotest.(check bool)
      (Printf.sprintf "truth %.4f inside [%.4f, %.4f]" truth lo hi)
      true
      (lo <= truth && truth <= hi);
    Alcotest.(check bool) "hoeffding sample count" true
      (samples = Approx.samples_for Approx.default_mc)
  | Approx.Exact _ -> Alcotest.fail "cap 2 cannot build the OBDD"
  | Approx.Failed m -> Alcotest.failf "sampling failed: %s" m

let test_ladder_deterministic () =
  let f = entangled 16 in
  let p _ = 0.35 in
  let a = Approx.confidence ~exact_node_cap:2 p f in
  let b = Approx.confidence ~exact_node_cap:2 p f in
  Alcotest.(check bool) "same estimate both times" true (a = b)

let test_releasable_fail_closed () =
  let check name expected est =
    Alcotest.(check bool) name true (Approx.releasable ~beta:0.5 est = expected)
  in
  check "exact above releases" `Release (Approx.Exact 0.51);
  check "exact at threshold withholds" `Withhold (Approx.Exact 0.5);
  check "exact below withholds" `Withhold (Approx.Exact 0.2);
  check "interval above releases" `Release
    (Approx.Interval { lo = 0.52; hi = 0.6; estimate = 0.55; samples = 100 });
  check "straddling interval is ambiguous" `Ambiguous
    (Approx.Interval { lo = 0.45; hi = 0.55; estimate = 0.5; samples = 100 });
  check "interval below withholds" `Withhold
    (Approx.Interval { lo = 0.3; hi = 0.5; estimate = 0.4; samples = 100 });
  check "failed estimate withholds" `Withhold (Approx.Failed "boom")

let test_samples_for_validation () =
  Alcotest.(check bool) "hoeffding size" true
    (Approx.samples_for Approx.default_mc > 10_000);
  Alcotest.(check bool) "cap respected" true
    (Approx.samples_for { Approx.default_mc with samples_cap = 7 } = 7);
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Approx.samples_for: eps 0 outside (0,1)") (fun () ->
      ignore (Approx.samples_for { Approx.default_mc with eps = 0.0 }))

let () =
  Alcotest.run "resilience"
    [
      ( "deadline",
        [
          Alcotest.test_case "never" `Quick test_never;
          Alcotest.test_case "logical expiry" `Quick test_logical_expiry;
          Alcotest.test_case "zero budget" `Quick test_logical_zero_born_expired;
          Alcotest.test_case "wall via counter clock" `Quick
            test_wall_with_counter_clock;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
          Alcotest.test_case "split/absorb" `Quick test_split_absorb_logical;
          Alcotest.test_case "split of expired parent" `Quick
            test_split_of_expired_parent;
          Alcotest.test_case "split of never" `Quick test_split_never;
          Alcotest.test_case "uneven split remainder" `Quick
            test_split_remainder_uneven;
          Alcotest.test_case "cancel sticky through split" `Quick
            test_split_after_cancel_sticky;
          Alcotest.test_case "nested split/absorb accounting" `Quick
            test_nested_split_absorb_accounting;
        ] );
      ( "fault",
        [
          Alcotest.test_case "unknown site rejected" `Quick
            test_fault_unknown_site_rejected;
          Alcotest.test_case "disarmed no-op" `Quick test_fault_noop_when_disarmed;
          Alcotest.test_case "seeded determinism" `Quick test_fault_determinism;
          Alcotest.test_case "rates 0 and 1" `Quick test_fault_rates;
          Alcotest.test_case "max injections" `Quick test_fault_max_injections;
          Alcotest.test_case "site filter" `Quick test_fault_site_filter;
          Alcotest.test_case "protect suppresses" `Quick test_fault_protect;
        ] );
      ( "anytime",
        [
          Alcotest.test_case "tiny budget is partial" `Quick
            test_partial_on_tiny_budget;
          Alcotest.test_case "unbounded is complete" `Quick
            test_unbounded_is_complete;
          Alcotest.test_case "generous budget changes nothing" `Quick
            test_generous_budget_matches_unbounded;
          QCheck_alcotest.to_alcotest qcheck_partial_feasible;
        ] );
      ( "jobs-invariance",
        [
          Alcotest.test_case "dnc logical budget, jobs 1/2/4" `Slow
            test_dnc_budget_jobs_invariant;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "read-once exact" `Quick test_ladder_read_once_exact;
          Alcotest.test_case "small entangled exact" `Quick
            test_ladder_small_entangled_exact;
          Alcotest.test_case "interval fallback contains truth" `Quick
            test_ladder_falls_back_to_interval;
          Alcotest.test_case "deterministic" `Quick test_ladder_deterministic;
          Alcotest.test_case "fail-closed release rule" `Quick
            test_releasable_fail_closed;
          Alcotest.test_case "samples_for" `Quick test_samples_for_validation;
        ] );
    ]
