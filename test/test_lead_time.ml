(* Tests for lead-time planning (the paper's future-work sketch). *)

module L = Pcqe.Lead_time
module Tid = Lineage.Tid
module C = Cost.Cost_model

let t i = Tid.make "x" i

let task i d = { L.tid = t i; from_ = 0.1; to_ = 0.5; duration = d }

let test_tasks_of_increments () =
  let time_of _ = C.linear ~rate:10.0 in
  let current tid = if tid.Tid.row = 0 then 0.2 else 0.5 in
  let tasks =
    L.tasks_of_increments ~time_of ~current
      [ (t 0, 0.6); (t 1, 0.5) (* no-op: already there *); (t 2, 0.4) (* lower *) ]
  in
  match tasks with
  | [ task ] ->
    Alcotest.(check bool) "only the real increment" true (Tid.equal task.L.tid (t 0));
    (* linear rate 10: 0.2 -> 0.6 takes 4 *)
    Alcotest.(check (float 1e-9)) "duration" 4.0 task.L.duration
  | _ -> Alcotest.failf "expected one task, got %d" (List.length tasks)

let test_schedule_single_worker_sums () =
  let s = L.schedule ~workers:1 [ task 0 3.0; task 1 1.0; task 2 2.0 ] in
  Alcotest.(check (float 1e-9)) "serial makespan" 6.0 s.L.makespan;
  Alcotest.(check (float 1e-9)) "total work" 6.0 s.L.total_work

let test_schedule_lpt () =
  (* durations 5,4,3,3,3 on 2 workers: LPT gives {5,3} and {4,3,3} -> 10?
     no: LPT assigns 5->w0, 4->w1, 3->w1? loads: w0=5, w1=4; next 3 -> w1(4)
     is least? w1=4 < w0=5 -> w1=7; next 3 -> w0=5 -> w0=8; next 3 -> w1=7 ->
     w1=10... wait recompute: tasks 5,4,3,3,3; after 5->w0(5), 4->w1(4),
     3->w1 is least(4)->7, 3->w0(5)->8, 3->w1(7)? w1=7 < w0=8 -> w1=10.
     makespan 10.  optimum is 9 ({5,4} and {3,3,3}). *)
  let tasks = [ task 0 5.0; task 1 4.0; task 2 3.0; task 3 3.0; task 4 3.0 ] in
  let s = L.schedule ~workers:2 tasks in
  Alcotest.(check (float 1e-9)) "LPT makespan" 10.0 s.L.makespan;
  (* bounds: max duration <= makespan <= total *)
  Alcotest.(check bool) "lower bound" true (s.L.makespan >= 5.0);
  Alcotest.(check bool) "upper bound" true (s.L.makespan <= 18.0)

let test_schedule_many_workers () =
  let tasks = [ task 0 3.0; task 1 1.0; task 2 2.0 ] in
  let s = L.schedule ~workers:10 tasks in
  Alcotest.(check (float 1e-9)) "bounded by longest task" 3.0 s.L.makespan

let test_schedule_validation () =
  Alcotest.(check bool) "workers >= 1" true
    (try
       ignore (L.schedule ~workers:0 []);
       false
     with Invalid_argument _ -> true)

let test_empty () =
  let s = L.schedule ~workers:3 [] in
  Alcotest.(check (float 1e-9)) "empty makespan" 0.0 s.L.makespan

let test_makespan_monotone_in_workers () =
  let tasks = List.init 10 (fun i -> task i (float_of_int (1 + (i mod 4)))) in
  let m1 = (L.schedule ~workers:1 tasks).L.makespan in
  let m2 = (L.schedule ~workers:2 tasks).L.makespan in
  let m4 = (L.schedule ~workers:4 tasks).L.makespan in
  Alcotest.(check bool) "more workers never slower" true (m1 >= m2 && m2 >= m4)

(* end-to-end: lead time of the venture-capital proposal *)
let test_proposal_lead_time () =
  let open Relational in
  let r = Relation.create "R" (Schema.of_list [ ("k", Value.TString) ]) in
  let db = Database.add_relation Database.empty r in
  let db, tid = Database.insert db "R" [ Value.String "a" ] ~conf:0.4 in
  let proposal =
    {
      Pcqe.Engine.increments = [ (tid, 0.5) ];
      cost = 10.0;
      projected_release = 1;
      solver_name = "test";
      solver_stats = Optimize.Solver.Greedy_stats Optimize.Greedy.empty_stats;
      solver_detail = "";
      elapsed_s = 0.0;
      resolution = Optimize.Solver.Complete;
    }
  in
  (* improving takes 30 days per 0.1 of confidence *)
  let time_of _ = C.linear ~rate:300.0 in
  let lead = L.lead_time ~time_of ~workers:1 db proposal in
  Alcotest.(check (float 1e-6)) "30 days of lead time" 30.0 lead

let test_to_string_mentions_makespan () =
  let s = L.schedule ~workers:2 [ task 0 3.0; task 1 1.0 ] in
  let text = L.to_string s in
  let contains needle =
    let n = String.length needle and h = String.length text in
    let rec go i = i + n <= h && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions makespan" true (contains "makespan 3.00");
  Alcotest.(check bool) "mentions a task" true (contains "x#0")

let () =
  Alcotest.run "lead-time"
    [
      ( "lead-time",
        [
          Alcotest.test_case "tasks of increments" `Quick test_tasks_of_increments;
          Alcotest.test_case "single worker" `Quick test_schedule_single_worker_sums;
          Alcotest.test_case "LPT" `Quick test_schedule_lpt;
          Alcotest.test_case "many workers" `Quick test_schedule_many_workers;
          Alcotest.test_case "validation" `Quick test_schedule_validation;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "worker monotonicity" `Quick
            test_makespan_monotone_in_workers;
          Alcotest.test_case "proposal lead time" `Quick test_proposal_lead_time;
          Alcotest.test_case "rendering" `Quick test_to_string_mentions_makespan;
        ] );
    ]
