(* Property tests of the whole PCQE pipeline on randomly generated
   databases, queries and policies.

   The invariants:
   1. soundness  - no released result has confidence <= the effective
      threshold (the security property of the whole system);
   2. completeness - released + withheld accounts for every query result;
   3. proposals deliver - accepting a proposal and re-asking releases at
      least [ceil (perc * n)] results (or at least as many as projected);
   4. improvement monotone - accepting a proposal never lowers any stored
      confidence;
   5. determinism - answering twice gives identical releases;
   6. observe-only - enabling observability changes no response field. *)

module Db = Relational.Database
module V = Relational.Value
module S = Relational.Schema
module R = Relational.Relation
module Sm = Prng.Splitmix
module E = Pcqe.Engine

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

(* random database: two relations with random sizes, values, confidences *)
let random_db rng =
  let r = R.create "R" (S.of_list [ ("k", V.TString); ("n", V.TInt) ]) in
  let s = R.create "S" (S.of_list [ ("k", V.TString); ("m", V.TInt) ]) in
  let db = Db.add_relation (Db.add_relation Db.empty r) s in
  let keys = [| "a"; "b"; "c"; "d" |] in
  let fill db rel count =
    let rec go db i =
      if i = 0 then db
      else
        let vs =
          [ V.String (Sm.choice rng keys); V.Int (Sm.int_in rng 0 9) ]
        in
        let conf = Sm.float_in rng 0.05 0.95 in
        go (fst (Db.insert db rel vs ~conf)) (i - 1)
    in
    go db count
  in
  let db = fill db "R" (Sm.int_in rng 1 8) in
  fill db "S" (Sm.int_in rng 0 6)

let queries =
  [|
    "SELECT k, n FROM R";
    "SELECT k FROM R WHERE n > 3";
    "SELECT R.k, S.m FROM R JOIN S ON R.k = S.k";
    "SELECT R.k, S.m FROM R LEFT JOIN S ON R.k = S.k";
    "SELECT n FROM R WHERE R.k IN (SELECT k FROM S)";
    "SELECT k FROM R UNION SELECT k FROM S";
    "SELECT k, COUNT(*) AS c FROM R GROUP BY k";
  |]

let mk_ctx rng db beta =
  let rbac =
    let open Rbac.Core_rbac in
    let m = add_user (add_role empty "analyst") "u" in
    let m = ok (assign_user m ~user:"u" ~role:"analyst") in
    ok (grant m ~role:"analyst" { action = "select"; resource = "*" })
  in
  let policies =
    Rbac.Policy.of_list [ Rbac.Policy.make ~role:"analyst" ~purpose:"task" ~beta ]
  in
  (* one fixed model per relation, chosen up front: cost_of must be a pure
     function of the tuple id (the engine may call it many times) *)
  let model_r =
    if Sm.bool rng then Cost.Cost_model.linear ~rate:(float_of_int (Sm.int_in rng 1 100))
    else Cost.Cost_model.binomial ~scale:(float_of_int (Sm.int_in rng 1 100))
  in
  let model_s =
    if Sm.bool rng then Cost.Cost_model.linear ~rate:(float_of_int (Sm.int_in rng 1 100))
    else Cost.Cost_model.binomial ~scale:(float_of_int (Sm.int_in rng 1 100))
  in
  let cost_of tid =
    if tid.Lineage.Tid.rel = "R" then model_r else model_s
  in
  E.make_context ~cost_of ~db ~rbac ~policies ()

let scenario seed =
  let rng = Sm.of_int seed in
  let db = random_db rng in
  let beta = Sm.float_in rng 0.1 0.9 in
  let sql = Sm.choice rng queries in
  let perc = Sm.float_in rng 0.0 1.0 in
  let ctx = mk_ctx rng db beta in
  let request =
    { E.query = Pcqe.Query.sql sql; user = "u"; purpose = "task"; perc }
  in
  (ctx, request, beta)

let qcheck_soundness =
  QCheck.Test.make ~name:"released results exceed the threshold" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, beta = scenario seed in
      match E.answer ctx request with
      | Error _ -> QCheck.assume_fail ()
      | Ok resp ->
        List.for_all (fun r -> r.E.confidence > beta) resp.E.released)

let qcheck_accounting =
  QCheck.Test.make ~name:"released + withheld covers every result" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, _ = scenario seed in
      match E.answer ctx request with
      | Error _ -> QCheck.assume_fail ()
      | Ok resp -> (
        (* recompute the result count independently *)
        match Pcqe.Query.to_plan request.E.query with
        | Error _ -> false
        | Ok plan -> (
          match Relational.Eval.run ctx.E.db plan with
          | Error _ -> false
          | Ok res ->
            List.length resp.E.released + resp.E.withheld
            = List.length res.Relational.Eval.rows)))

let qcheck_proposal_delivers =
  QCheck.Test.make ~name:"accepted proposals release the projection" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, _ = scenario seed in
      match E.answer ctx request with
      | Error _ -> QCheck.assume_fail ()
      | Ok resp -> (
        match resp.E.proposal with
        | None -> QCheck.assume_fail ()
        | Some proposal -> (
          let ctx' = E.accept_proposal ctx proposal in
          match E.answer ctx' request with
          | Error _ -> false
          | Ok resp' ->
            List.length resp'.E.released >= proposal.E.projected_release)))

let qcheck_improvement_monotone =
  QCheck.Test.make ~name:"improvement never lowers a confidence" ~count:300
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, _ = scenario seed in
      match E.answer ctx request with
      | Error _ -> QCheck.assume_fail ()
      | Ok resp -> (
        match resp.E.proposal with
        | None -> QCheck.assume_fail ()
        | Some proposal ->
          let ctx' = E.accept_proposal ctx proposal in
          List.for_all
            (fun (tid, before) -> Db.confidence ctx'.E.db tid >= before -. 1e-12)
            (Db.all_confidences ctx.E.db)))

let qcheck_deterministic =
  QCheck.Test.make ~name:"answering is deterministic" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, _ = scenario seed in
      match (E.answer ctx request, E.answer ctx request) with
      | Ok a, Ok b ->
        List.length a.E.released = List.length b.E.released
        && a.E.withheld = b.E.withheld
        && List.for_all2
             (fun x y -> Float.abs (x.E.confidence -. y.E.confidence) < 1e-12)
             a.E.released b.E.released
      | Error _, Error _ -> true
      | _ -> false)

(* field-by-field response comparison shared by the observe-only
   properties below (the [profile] field is deliberately not compared:
   it is the one field profiling is allowed to add) *)
let same_proposal (a : E.proposal option) (b : E.proposal option) =
  match (a, b) with
  | None, None -> true
  | Some p, Some q ->
    p.E.increments = q.E.increments
    && Float.abs (p.E.cost -. q.E.cost) < 1e-12
    && p.E.projected_release = q.E.projected_release
    && p.E.solver_name = q.E.solver_name
    && p.E.solver_detail = q.E.solver_detail
  | _ -> false

let same_response (a : E.response) (b : E.response) =
  a.E.schema = b.E.schema
  && a.E.withheld = b.E.withheld
  && a.E.ambiguous = b.E.ambiguous
  && a.E.requested = b.E.requested
  && a.E.threshold = b.E.threshold
  && a.E.infeasible = b.E.infeasible
  && a.E.degraded = b.E.degraded
  && List.length a.E.released = List.length b.E.released
  && List.for_all2
       (fun x y ->
         x.E.tuple = y.E.tuple
         && Float.abs (x.E.confidence -. y.E.confidence) < 1e-12)
       a.E.released b.E.released
  && same_proposal a.E.proposal b.E.proposal

(* observability must be strictly observe-only: the same request answered
   with tracing and metrics enabled (deterministic counter clock) yields a
   response identical in every field to the plain one *)
let qcheck_obs_transparent =
  QCheck.Test.make ~name:"enabling observability changes no answer" ~count:200
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let ctx, request, _ = scenario seed in
      let obs = Obs.deterministic () in
      let traced = { ctx with E.obs = Some obs } in
      match (E.answer ctx request, E.answer traced request) with
      | Ok a, Ok b ->
        same_response a b
        (* and the traced run actually recorded the pipeline *)
        && (match Obs.Trace.roots obs.Obs.trace with
           | [ root ] -> root.Obs.Trace.name = "answer"
           | _ -> false)
      | Error a, Error b -> a = b
      | _ -> false)

(* the per-request profiler is observe-only too, at every solver and
   every jobs level (pool task spans and all): a profiled answer is
   bit-identical to the plain one, and carries a profile rooted at the
   answer span *)
let qcheck_profile_transparent =
  let solvers =
    [
      Optimize.Solver.heuristic;
      Optimize.Solver.greedy;
      Optimize.Solver.divide_conquer;
      Optimize.Solver.annealing;
    ]
  in
  QCheck.Test.make ~name:"profiling changes no answer (solvers x jobs)"
    ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      List.for_all
        (fun solver ->
          List.for_all
            (fun jobs ->
              let ctx, request, _ = scenario seed in
              let ctx = { ctx with E.solver; jobs } in
              let profiling = { ctx with E.profile = true } in
              match (E.answer ctx request, E.answer profiling request) with
              | Ok a, Ok b ->
                same_response a b
                && a.E.profile = None
                && (match b.E.profile with
                   | Some p -> (
                     match p.Obs.Profile.stages with
                     | root :: _ -> root.Obs.Profile.path = [ "answer" ]
                     | [] -> false)
                   | None -> false)
              | Error a, Error b -> a = b
              | _ -> false)
            [ 1; 2; 4 ])
        solvers)

let () =
  Alcotest.run "engine-properties"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_soundness;
          QCheck_alcotest.to_alcotest qcheck_accounting;
          QCheck_alcotest.to_alcotest qcheck_proposal_delivers;
          QCheck_alcotest.to_alcotest qcheck_improvement_monotone;
          QCheck_alcotest.to_alcotest qcheck_deterministic;
          QCheck_alcotest.to_alcotest qcheck_obs_transparent;
          QCheck_alcotest.to_alcotest qcheck_profile_transparent;
        ] );
    ]
