(* Tests for the database: relation registry and the confidence table. *)

module Db = Relational.Database
module R = Relational.Relation
module V = Relational.Value
module S = Relational.Schema
module Tid = Lineage.Tid

let schema = S.of_list [ ("x", V.TInt) ]

let db_with_r () = Db.add_relation Db.empty (R.create "R" schema)

let test_relation_registry () =
  let db = db_with_r () in
  Alcotest.(check bool) "mem" true (Db.mem_relation db "R");
  Alcotest.(check bool) "not mem" false (Db.mem_relation db "S");
  Alcotest.(check (list string)) "names" [ "R" ] (Db.relation_names db);
  Alcotest.(check bool) "relation_exn raises" true
    (try
       ignore (Db.relation_exn db "S");
       false
     with Invalid_argument _ -> true)

let test_insert_records_confidence () =
  let db = db_with_r () in
  let db, tid = Db.insert db "R" [ V.Int 1 ] ~conf:0.42 in
  Alcotest.(check (float 1e-9)) "stored" 0.42 (Db.confidence db tid);
  Alcotest.(check (float 1e-9)) "unknown tuple is 0" 0.0
    (Db.confidence db (Tid.make "R" 99))

let test_insert_validates () =
  let db = db_with_r () in
  Alcotest.(check bool) "bad confidence" true
    (try
       ignore (Db.insert db "R" [ V.Int 1 ] ~conf:1.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad relation" true
    (try
       ignore (Db.insert db "S" [ V.Int 1 ] ~conf:0.5);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad arity" true
    (try
       ignore (Db.insert db "R" [ V.Int 1; V.Int 2 ] ~conf:0.5);
       false
     with Invalid_argument _ -> true)

let test_set_confidence () =
  let db = db_with_r () in
  let db, tid = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  let db = Db.set_confidence db tid 0.7 in
  Alcotest.(check (float 1e-9)) "updated" 0.7 (Db.confidence db tid);
  Alcotest.(check bool) "unknown tuple rejected" true
    (try
       ignore (Db.set_confidence db (Tid.make "R" 9) 0.5);
       false
     with Invalid_argument _ -> true)

let test_caps () =
  let db = db_with_r () in
  let db, tid = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  Alcotest.(check (float 1e-9)) "default cap" 1.0 (Db.confidence_cap db tid);
  let db = Db.set_confidence_cap db tid 0.8 in
  Alcotest.(check (float 1e-9)) "cap stored" 0.8 (Db.confidence_cap db tid);
  Alcotest.(check bool) "raising beyond cap rejected" true
    (try
       ignore (Db.set_confidence db tid 0.9);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "cap below current rejected" true
    (try
       ignore (Db.set_confidence_cap db tid 0.1);
       false
     with Invalid_argument _ -> true)

let test_seed_confidence () =
  let r = R.create "R" schema in
  let r, tid = R.insert r (Relational.Tuple.of_list [ V.Int 5 ]) in
  let db = Db.add_relation Db.empty r in
  let db = Db.seed_confidence db tid 0.33 in
  Alcotest.(check (float 1e-9)) "seeded" 0.33 (Db.confidence db tid);
  Alcotest.(check bool) "seed for unstored tuple rejected" true
    (try
       ignore (Db.seed_confidence db (Tid.make "R" 44) 0.5);
       false
     with Invalid_argument _ -> true)

let test_apply_increments () =
  let db = db_with_r () in
  let db, t0 = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  let db, t1 = Db.insert db "R" [ V.Int 2 ] ~conf:0.3 in
  let db = Db.apply_increments db [ (t0, 0.5); (t1, 0.6) ] in
  Alcotest.(check (float 1e-9)) "t0" 0.5 (Db.confidence db t0);
  Alcotest.(check (float 1e-9)) "t1" 0.6 (Db.confidence db t1);
  Alcotest.(check bool) "decrease rejected" true
    (try
       ignore (Db.apply_increments db [ (t0, 0.1) ]);
       false
     with Invalid_argument _ -> true)

let test_apply_increments_clamps_to_cap () =
  let db = db_with_r () in
  let db, t0 = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  let db = Db.set_confidence_cap db t0 0.6 in
  let db = Db.apply_increments db [ (t0, 0.9) ] in
  Alcotest.(check (float 1e-9)) "clamped to cap" 0.6 (Db.confidence db t0)

let test_all_confidences () =
  let db = db_with_r () in
  let db, _ = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  let db, _ = Db.insert db "R" [ V.Int 2 ] ~conf:0.4 in
  Alcotest.(check int) "two entries" 2 (List.length (Db.all_confidences db))

(* the epoch split that the serving caches key on: structure vs
   confidence advance independently, and apply_increments logs one
   change per raised tuple (so changed_since can answer exactly) *)
let test_epochs_advance_independently () =
  let db = db_with_r () in
  let se0 = Db.structural_epoch db and ce0 = Db.confidence_epoch db in
  let db, t0 = Db.insert db "R" [ V.Int 1 ] ~conf:0.2 in
  let db, t1 = Db.insert db "R" [ V.Int 2 ] ~conf:0.3 in
  Alcotest.(check bool) "insert bumps structural" true
    (Db.structural_epoch db > se0);
  Alcotest.(check bool) "insert bumps confidence" true
    (Db.confidence_epoch db > ce0);
  let se1 = Db.structural_epoch db and ce1 = Db.confidence_epoch db in
  let db = Db.apply_increments db [ (t0, 0.5); (t1, 0.6) ] in
  Alcotest.(check int) "increments leave structure" se1
    (Db.structural_epoch db);
  Alcotest.(check bool) "increments bump confidence" true
    (Db.confidence_epoch db > ce1);
  match Db.changed_since db ~since:ce1 with
  | Some dirty ->
    Alcotest.(check int) "both raised tuples logged" 2
      (Lineage.Tid.Set.cardinal dirty)
  | None -> Alcotest.fail "a 2-increment gap must be answerable"

let () =
  Alcotest.run "database"
    [
      ( "database",
        [
          Alcotest.test_case "registry" `Quick test_relation_registry;
          Alcotest.test_case "insert" `Quick test_insert_records_confidence;
          Alcotest.test_case "validation" `Quick test_insert_validates;
          Alcotest.test_case "set confidence" `Quick test_set_confidence;
          Alcotest.test_case "caps" `Quick test_caps;
          Alcotest.test_case "seed" `Quick test_seed_confidence;
          Alcotest.test_case "apply increments" `Quick test_apply_increments;
          Alcotest.test_case "cap clamping" `Quick test_apply_increments_clamps_to_cap;
          Alcotest.test_case "all confidences" `Quick test_all_confidences;
          Alcotest.test_case "epochs" `Quick test_epochs_advance_independently;
        ] );
    ]
