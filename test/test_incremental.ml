(* Tests for incremental confidence re-evaluation: the affine coefficient
   caches in State, lineage dedup classes in Problem, and the observe-only
   evaluation counters.

   The contract under test is bit-identity: with incremental evaluation on
   (the default) every satisfied/unsatisfied decision, solver solution,
   satisfied count and cost must equal the forced-off baseline — the caches
   may only change how often the compiled evaluators run. *)

module Problem = Optimize.Problem
module State = Optimize.State
module Solver = Optimize.Solver
module Synth = Workload.Synth
module F = Lineage.Formula
module Tid = Lineage.Tid
module Sm = Prng.Splitmix
module C = Cost.Cost_model

(* ------------------------------------------------------------------ *)
(* random instances with tight caps and occasional duplicate formulas,
   built twice (same seed) so the incremental and baseline layouts
   describe the same instance *)

let random_problem ~incremental seed =
  let rng = Sm.of_int seed in
  let nb = Sm.int_in rng 3 8 in
  let nr = Sm.int_in rng 2 6 in
  let bases =
    List.init nb (fun i ->
        let p0 = Sm.float_in rng 0.05 0.3 in
        let cap = Float.min 1.0 (p0 +. Sm.float_in rng 0.1 0.9) in
        { Problem.tid = Tid.make "q" i; p0; cap; cost = C.random rng })
  in
  let tids = Array.of_list (List.map (fun b -> b.Problem.tid) bases) in
  let formulas =
    let prev = ref [] in
    List.init nr (fun _ ->
        let f =
          match !prev with
          | f :: _ when Sm.float_in rng 0.0 1.0 < 0.3 ->
            f (* structural duplicate: exercises the dedup classes *)
          | _ ->
            let k = Sm.int_in rng 2 (min 5 nb) in
            let chosen = Sm.sample_without_replacement rng k nb in
            let leaves =
              Array.to_list (Array.map (fun i -> tids.(i)) chosen)
            in
            Workload.Dag_query.random_monotone_tree rng leaves
        in
        prev := f :: !prev;
        f)
  in
  Problem.make_exn ~beta:0.4 ~incremental ~required:(min 1 nr) ~bases
    ~formulas ()

(* one update drawn from a (bid, op) pair of naturals; ops 2/3 jump
   straight to the cap / p0 boundaries *)
let apply pb st (bsel, osel) =
  let bid = bsel mod Problem.num_bases pb in
  match osel mod 4 with
  | 0 -> ignore (State.raise_by_delta st bid)
  | 1 -> ignore (State.lower_by_delta st bid)
  | 2 -> State.set_base st bid (Problem.base pb bid).Problem.cap
  | _ -> State.set_base st bid (Problem.base pb bid).Problem.p0

let qcheck_agreement =
  QCheck.Test.make
    ~name:"incremental state agrees with fresh full evaluation" ~count:300
    QCheck.(pair small_nat (small_list (pair small_nat small_nat)))
    (fun (seed, ops) ->
      let pb = random_problem ~incremental:true seed in
      let pb_off = random_problem ~incremental:false seed in
      let st = State.create pb in
      let st_off = State.create pb_off in
      List.iter
        (fun op ->
          apply pb st op;
          apply pb_off st_off op;
          let levels = State.snapshot st in
          for rid = 0 to Problem.num_results pb - 1 do
            (* against a fresh full evaluation of the baseline layout *)
            let fresh = Problem.eval_result pb_off levels rid in
            if Float.abs (State.result_confidence st rid -. fresh) > 1e-9
            then
              QCheck.Test.fail_reportf
                "rid %d: incremental %.17g vs fresh %.17g" rid
                (State.result_confidence st rid)
                fresh;
            (* satisfied decisions must be *identical*, not just close *)
            if State.is_satisfied st rid <> State.is_satisfied st_off rid
            then QCheck.Test.fail_reportf "rid %d: satisfied flag differs" rid
          done;
          if Float.abs (State.cost st -. State.cost st_off) > 1e-9 then
            QCheck.Test.fail_reportf "cost differs")
        ops;
      (* probes are read-only and O(1) on the cached path *)
      for bid = 0 to Problem.num_bases pb - 1 do
        let level = (Problem.base pb bid).Problem.cap in
        List.iter
          (fun rid ->
            let a = State.confidence_with_override st ~rid ~bid ~level in
            let b = State.confidence_with_override st_off ~rid ~bid ~level in
            if Float.abs (a -. b) > 1e-9 then
              QCheck.Test.fail_reportf "override rid %d bid %d differs" rid
                bid)
          (Problem.results_of_base pb bid)
      done;
      true)

(* ------------------------------------------------------------------ *)
(* the four solvers produce identical outcomes with the caches on and
   forced off *)

let outcome_triple (o : Solver.outcome) = (o.solution, o.cost, o.satisfied)

let check_solver_identity name algorithm make_problem =
  let on = Solver.solve ~algorithm (make_problem true) in
  let off = Solver.solve ~algorithm (make_problem false) in
  Alcotest.(check bool)
    (name ^ ": identical solution/cost/satisfied")
    true
    (outcome_triple on = outcome_triple off)

let synth_problem incremental =
  Synth.instance
    ~params:{ Synth.default_params with data_size = 150 }
    ~incremental ~seed:7 ()

let small_problem incremental =
  Synth.small_instance ~incremental ~seed:7 ()

let test_solver_identity () =
  check_solver_identity "greedy" Solver.greedy synth_problem;
  check_solver_identity "divide-and-conquer" Solver.divide_conquer
    synth_problem;
  check_solver_identity "annealing"
    (Solver.Annealing
       { Optimize.Annealing.default_config with iterations = 5_000 })
    synth_problem;
  check_solver_identity "heuristic" Solver.heuristic small_problem;
  check_solver_identity "heuristic-seeded" Solver.heuristic_seeded
    small_problem

(* ------------------------------------------------------------------ *)
(* dedup classes *)

let t i = Tid.make "b" i
let v i = F.var (t i)

let base i =
  { Problem.tid = t i; p0 = 0.1; cap = 1.0; cost = C.linear ~rate:10.0 }

let test_dedup_classes () =
  (* r0 and r2 share lineage (a self-join style repeat); r1 is distinct *)
  let formulas =
    [ F.conj [ v 0; v 1 ]; F.disj [ v 1; v 2 ]; F.conj [ v 0; v 1 ] ]
  in
  let p =
    Problem.make_exn ~beta:0.5 ~required:1
      ~bases:[ base 0; base 1; base 2 ]
      ~formulas ()
  in
  Alcotest.(check int) "two classes" 2 (Problem.num_classes p);
  Alcotest.(check int) "one deduped formula" 1 (Problem.dedup_formulas p);
  Alcotest.(check int) "r0 and r2 share a class"
    (Problem.class_of_result p 0)
    (Problem.class_of_result p 2);
  Alcotest.(check (list int)) "class members"
    [ 0; 2 ]
    (Problem.class_members p (Problem.class_of_result p 0));
  (* forced off: identity mapping, no dedup *)
  let p_off =
    Problem.make_exn ~beta:0.5 ~required:1 ~incremental:false
      ~bases:[ base 0; base 1; base 2 ]
      ~formulas ()
  in
  Alcotest.(check int) "off: classes = results" 3 (Problem.num_classes p_off);
  Alcotest.(check int) "off: no dedup" 0 (Problem.dedup_formulas p_off)

let test_counters () =
  let pb = synth_problem true in
  let st = State.create pb in
  let after_create = State.full_evals st in
  Alcotest.(check bool) "create evaluates every class" true
    (after_create = Problem.num_classes pb);
  ignore (State.raise_by_delta st 0);
  (* first probe observes a second point and derives the pair; the
     repeat is served from it *)
  ignore (State.gain st 0 (Problem.delta pb));
  ignore (State.gain st 0 (Problem.delta pb));
  Alcotest.(check bool) "probes hit the affine cache" true
    (State.incremental_evals st > 0);
  (* a second commit to the same base keeps its own coefficients valid *)
  let full_before = State.full_evals st in
  ignore (State.raise_by_delta st 0);
  Alcotest.(check int) "same-base re-commit is free"
    full_before (State.full_evals st)

(* ------------------------------------------------------------------ *)
(* counters are observe-only: attaching a metrics registry changes no
   outcome field, and the registry receives the state counters *)

let test_observe_only () =
  let plain = Solver.solve ~algorithm:Solver.greedy (synth_problem true) in
  let obs = Obs.deterministic () in
  let observed =
    Solver.solve ~algorithm:Solver.greedy ~obs (synth_problem true)
  in
  Alcotest.(check bool) "identical outcome with metrics on" true
    (outcome_triple plain = outcome_triple observed);
  Alcotest.(check bool) "registry saw full evals" true
    (Obs.Metrics.counter obs.Obs.metrics "state.full_evals" > 0);
  Alcotest.(check bool) "registry saw incremental evals" true
    (Obs.Metrics.counter obs.Obs.metrics "state.incremental_evals" > 0);
  (* stats expose the same counters for the bench artifact *)
  let fields = Solver.stats_fields observed.Solver.stats in
  let has name = List.mem_assoc name fields in
  Alcotest.(check bool) "stats_fields carry the counters" true
    (has "incremental_evals" && has "full_evals"
    && has "coeff_invalidations" && has "dedup_formulas")

let () =
  Alcotest.run "incremental"
    [
      ("agreement", [ QCheck_alcotest.to_alcotest qcheck_agreement ]);
      ( "solvers",
        [ Alcotest.test_case "on/off identity" `Quick test_solver_identity ]
      );
      ( "classes",
        [
          Alcotest.test_case "dedup" `Quick test_dedup_classes;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "observability",
        [ Alcotest.test_case "observe-only" `Quick test_observe_only ] );
    ]
