(* Columnar engine identity: for random schemas, data, confidences and
   scan/filter/project pipelines, the vectorized evaluator must produce
   results bit-identical to the row engine — same tuples (constructors
   included), same order, structurally identical lineage — at every jobs
   level, and the same errors when evaluation fails.  Parallel bulk CSV
   ingest must likewise be indistinguishable from the sequential loader. *)

module V = Relational.Value
module S = Relational.Schema
module R = Relational.Relation
module Db = Relational.Database
module A = Relational.Algebra
module Ex = Relational.Expr
module Eval = Relational.Eval
module Col = Relational.Col_eval
module Sm = Prng.Splitmix
module F = Lineage.Formula

let ok = function Ok x -> x | Error m -> Alcotest.failf "unexpected: %s" m

(* ---------------- random generation ---------------- *)

let types = [| V.TInt; V.TFloat; V.TBool; V.TString |]

let random_schema rng =
  let n = Sm.int_in rng 1 4 in
  S.of_list (List.init n (fun i -> (Printf.sprintf "c%d" i, Sm.choice rng types)))

let string_pool = [| "a"; "b"; "ab"; "a,b"; "x\"y"; ""; "abc"; "%a_" |]

let random_value rng huge ty =
  if Sm.coin rng 0.15 then V.Null
  else
    match ty with
    | V.TInt ->
      if huge && Sm.coin rng 0.1 then V.Int ((1 lsl 60) + Sm.int_in rng 0 5)
      else V.Int (Sm.int_in rng (-4) 4)
    | V.TFloat ->
      if Sm.coin rng 0.4 then V.Int (Sm.int_in rng (-3) 3)
      else if Sm.coin rng 0.15 then V.Float (if Sm.bool rng then 0.0 else -0.0)
      else V.Float (Float.of_int (Sm.int_in rng (-3) 3) /. 2.0)
    | V.TBool -> V.Bool (Sm.bool rng)
    | V.TString -> V.String (Sm.choice rng string_pool)

let random_db rng ~huge =
  let schema = random_schema rng in
  let nrows = Sm.int_in rng 0 40 in
  let r = R.create "r" schema in
  let db = Db.add_relation Db.empty r in
  let cols = S.columns schema in
  let rec fill db i =
    if i = 0 then db
    else
      let vs = List.map (fun c -> random_value rng huge c.S.cty) cols in
      let conf = Sm.float_in rng 0.0 1.0 in
      fill (fst (Db.insert db "r" vs ~conf)) (i - 1)
  in
  (fill db nrows, schema)

let random_col rng schema = Ex.col (Sm.choice rng (Array.of_list (S.column_names schema)))

let random_lit rng =
  Ex.Lit (random_value rng false (Sm.choice rng types))

let random_operand rng schema =
  if Sm.coin rng 0.7 then random_col rng schema else random_lit rng

let cmps = [| Ex.Eq; Ex.Neq; Ex.Lt; Ex.Leq; Ex.Gt; Ex.Geq |]

(* Random predicate: mostly vectorizable shapes, sometimes type-mismatched
   or non-vectorizable ones, so both the columnar kernels and the
   decline-to-row-engine path (including error identity) are exercised. *)
let rec random_pred rng schema depth =
  let leaf () =
    match Sm.int_in rng 0 6 with
    | 0 | 1 ->
      Ex.Cmp (Sm.choice rng cmps, random_operand rng schema, random_operand rng schema)
    | 2 -> Ex.IsNull (random_col rng schema)
    | 3 -> Ex.IsNotNull (random_col rng schema)
    | 4 ->
      Ex.In
        ( random_col rng schema,
          List.init (Sm.int_in rng 0 3) (fun _ ->
              random_value rng false (Sm.choice rng types)) )
    | 5 -> Ex.Like (random_col rng schema, Sm.choice rng [| "a%"; "%b"; "_"; "%" |])
    | _ ->
      Ex.Between
        (random_col rng schema, random_lit rng, random_lit rng)
  in
  if depth = 0 || Sm.coin rng 0.5 then leaf ()
  else
    match Sm.int_in rng 0 2 with
    | 0 -> Ex.And (random_pred rng schema (depth - 1), random_pred rng schema (depth - 1))
    | 1 -> Ex.Or (random_pred rng schema (depth - 1), random_pred rng schema (depth - 1))
    | _ -> Ex.Not (random_pred rng schema (depth - 1))

let random_plan rng schema =
  let rec wrap plan schema n =
    if n = 0 then plan
    else
      let plan, schema =
        match Sm.int_in rng 0 4 with
        | 0 -> (A.Select (random_pred rng schema 2, plan), schema)
        | 1 ->
          let names = S.column_names schema in
          let keep = List.filter (fun _ -> Sm.coin rng 0.7) names in
          let keep = if keep = [] then [ List.hd names ] else keep in
          let schema' =
            match S.project schema keep with
            | Ok (s, _) -> s
            | Error _ -> schema
          in
          (A.Project (keep, plan), schema')
        | 2 -> (A.Distinct plan, schema)
        | 3 -> (A.Limit (Sm.int_in rng 0 20, plan), schema)
        | _ -> (A.Rename ("t", plan), S.qualify "t" schema)
      in
      wrap plan schema (n - 1)
  in
  wrap (A.Scan "r") (S.qualify "r" schema) (Sm.int_in rng 0 4)

(* ---------------- bit-identity comparison ---------------- *)

(* constructor-strict value equality: Int 1 and Float 1. are different,
   NaN equals NaN (the row engine's dedup follows Float.compare) *)
let value_ident (a : V.t) (b : V.t) =
  match (a, b) with
  | V.Null, V.Null -> true
  | V.Bool x, V.Bool y -> x = y
  | V.Int x, V.Int y -> x = y
  | V.Float x, V.Float y -> Float.compare x y = 0
  | V.String x, V.String y -> String.equal x y
  | _ -> false

let row_ident (a : Eval.row) (b : Eval.row) =
  let va = Relational.Tuple.values a.tuple
  and vb = Relational.Tuple.values b.tuple in
  Array.length va = Array.length vb
  && Array.for_all2 value_ident va vb
  && F.equal a.lineage b.lineage

let result_ident a b =
  match (a, b) with
  | Ok (ra : Eval.annotated), Ok (rb : Eval.annotated) ->
    S.equal ra.Eval.schema rb.Eval.schema
    && List.length ra.Eval.rows = List.length rb.Eval.rows
    && List.for_all2 row_ident ra.Eval.rows rb.Eval.rows
  | Error ea, Error eb -> String.equal ea eb
  | _ -> false

(* ---------------- properties ---------------- *)

let qcheck_pipeline_identity =
  QCheck.Test.make ~name:"columnar == row engine at jobs 1/2/4" ~count:400
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sm.of_int seed in
      let db, schema = random_db rng ~huge:(Sm.coin rng 0.15) in
      let plan = random_plan rng schema in
      let expected = Eval.run db plan in
      List.for_all
        (fun jobs ->
          let got =
            if jobs = 1 then Col.run db plan
            else
              Exec.Pool.with_pool ~jobs (fun pool -> Col.run ~pool db plan)
          in
          result_ident expected got)
        [ 1; 2; 4 ])

let qcheck_decline_on_huge_ints =
  QCheck.Test.make ~name:"ints beyond 2^53 decline but stay identical"
    ~count:100
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sm.of_int seed in
      let db, schema = random_db rng ~huge:true in
      let plan = A.Select (random_pred rng schema 1, A.Scan "r") in
      ignore schema;
      result_ident (Eval.run db plan) (Col.run db plan))

(* ---------------- bulk ingest identity ---------------- *)

let random_csv rng =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "s:string,n:int,x:real,__confidence:real\n";
  let nrows = Sm.int_in rng 0 60 in
  let bad = Sm.coin rng 0.2 in
  let bad_at = if bad then Sm.int_in rng 0 (max 0 (nrows - 1)) else -1 in
  for i = 0 to nrows - 1 do
    if Sm.coin rng 0.1 then Buffer.add_string buf "  \n";
    if i = bad_at then
      Buffer.add_string buf
        (Sm.choice rng [| "x,notint,0.5,0.5\n"; "only,two\n"; "a,1,0.5,1.5\n" |])
    else
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%g,%g\n"
           (Relational.Csv.render_line [ Sm.choice rng string_pool ])
           (Sm.int_in rng (-5) 5)
           (Sm.float_in rng (-2.0) 2.0)
           (Sm.float_in rng 0.0 1.0))
  done;
  Buffer.contents buf

let relation_ident db1 db2 name =
  let r1 = Db.relation_exn db1 name and r2 = Db.relation_exn db2 name in
  let t1 = R.tuples r1 and t2 = R.tuples r2 in
  S.equal (R.schema r1) (R.schema r2)
  && List.length t1 = List.length t2
  && List.for_all2
       (fun (tid1, tup1) (tid2, tup2) ->
         Lineage.Tid.equal tid1 tid2
         && Array.for_all2 value_ident
              (Relational.Tuple.values tup1)
              (Relational.Tuple.values tup2)
         && Float.equal (Db.confidence db1 tid1) (Db.confidence db2 tid2))
       t1 t2

let qcheck_bulk_ingest_identity =
  QCheck.Test.make ~name:"bulk ingest == sequential ingest at jobs 1/2/4"
    ~count:300
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Sm.of_int seed in
      let text = random_csv rng in
      let seq = Relational.Csv.load_into Db.empty ~name:"r" text in
      List.for_all
        (fun jobs ->
          let bulk =
            Relational.Csv.load_string_bulk Db.empty ~name:"r" ~jobs text
          in
          match (seq, bulk) with
          | Ok db1, Ok db2 -> relation_ident db1 db2 "r"
          | Error e1, Error e2 -> String.equal e1 e2
          | _ -> false)
        [ 1; 2; 4 ])

(* ---------------- top-K selection ---------------- *)

let qcheck_topk_equals_sort =
  QCheck.Test.make ~name:"Topk.by_score == stable sort desc + take k"
    ~count:500
    QCheck.(pair (int_range 0 12) (list (float_range (-5.0) 5.0)))
    (fun (k, xs) ->
      let scored = List.mapi (fun i x -> (i, x)) xs in
      let expected =
        List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) scored
        |> List.filteri (fun i _ -> i < k)
      in
      Topk.by_score ~k snd scored = expected)

(* ---------------- directed cases ---------------- *)

let test_vectorizes () =
  let db = Db.empty in
  let r = R.create "t" (S.of_list [ ("a", V.TInt); ("s", V.TString) ]) in
  let db = Db.add_relation db r in
  let db = fst (Db.insert db "t" [ V.Int 1; V.String "x" ] ~conf:0.9) in
  let db = fst (Db.insert db "t" [ V.Int 9; V.Null ] ~conf:0.4) in
  let plan = A.Select (Ex.(col "a" >% int 2), A.Scan "t") in
  Alcotest.(check bool) "select over scan vectorizes" true (Col.vectorizes db plan);
  let res = ok (Col.run db plan) in
  Alcotest.(check int) "one row" 1 (List.length res.rows);
  (* a relation with an int beyond 2^53 declines wholesale *)
  let db2 = fst (Db.insert db "t" [ V.Int (1 lsl 60); V.String "y" ] ~conf:0.5) in
  Alcotest.(check bool) "huge int declines" false (Col.vectorizes db2 plan);
  Alcotest.(check bool) "declined still identical" true
    (result_ident (Eval.run db2 plan) (Col.run db2 plan))

let test_gate_off () =
  let db = Db.add_relation Db.empty (R.create "t" (S.of_list [ ("a", V.TInt) ])) in
  let plan = A.Scan "t" in
  Unix.putenv "PCQE_COLUMNAR" "0";
  Alcotest.(check bool) "gate off" false (Col.vectorizes db plan);
  Alcotest.(check bool) "gate off still identical" true
    (result_ident (Eval.run db plan) (Col.run db plan));
  Unix.putenv "PCQE_COLUMNAR" "1";
  Alcotest.(check bool) "gate back on" true (Col.vectorizes db plan)

let test_scan_cache_epochs () =
  let db = Db.add_relation Db.empty (R.create "t" (S.of_list [ ("a", V.TInt) ])) in
  let db = fst (Db.insert db "t" [ V.Int 1 ] ~conf:0.5) in
  let b1 = Option.get (Col.scan_batch db "t") in
  Alcotest.(check (float 0.0)) "conf loaded" 0.5 b1.Relational.Colbatch.conf.(0);
  (* confidence mutation: same batch, refreshed confidences *)
  let tid = Lineage.Tid.make "t" 0 in
  let db = Db.set_confidence db tid 0.8 in
  let b2 = Option.get (Col.scan_batch db "t") in
  Alcotest.(check bool) "batch reused across confidence change" true (b1 == b2);
  Alcotest.(check (float 0.0)) "conf refreshed" 0.8 b2.Relational.Colbatch.conf.(0);
  (* structural mutation: fresh batch *)
  let db = fst (Db.insert db "t" [ V.Int 2 ] ~conf:0.1) in
  let b3 = Option.get (Col.scan_batch db "t") in
  Alcotest.(check bool) "structural change rebuilds" true (not (b1 == b3));
  Alcotest.(check int) "new row visible" 2 b3.Relational.Colbatch.nrows

let test_bulk_epochs () =
  let text = "a:int,__confidence:real\n1,0.5\n2,0.75\n" in
  let db0 = Db.empty in
  let db = ok (Relational.Csv.load_string_bulk db0 ~name:"r" text) in
  Alcotest.(check (float 0.0)) "conf 0" 0.5 (Db.confidence db (Lineage.Tid.make "r" 0));
  Alcotest.(check (float 0.0)) "conf 1" 0.75 (Db.confidence db (Lineage.Tid.make "r" 1));
  (* the single bulk change-log entry stays truthful: both loaded tuples
     appear in the targeted invalidation set for a cache synced before *)
  (match Db.changed_since db ~since:(Db.confidence_epoch db0) with
  | Some set -> Alcotest.(check int) "both tids logged" 2 (Lineage.Tid.Set.cardinal set)
  | None -> Alcotest.fail "changed_since lost the bulk load")

(* Big enough to cross the bulk chunking threshold, with blank lines
   sprinkled in, so the chunk realignment and prefix-sum numbering run for
   real (jobs comes from PCQE_JOBS=2 in the test environment). *)
let test_bulk_large_chunked () =
  let buf = Buffer.create (1 lsl 18) in
  Buffer.add_string buf "s:string,n:int,__confidence:real\n";
  let n = 8_000 in
  for i = 0 to n - 1 do
    if i mod 97 = 0 then Buffer.add_string buf "\n";
    Buffer.add_string buf (Printf.sprintf "row-%d-padding-padding,%d,%g\n" i i
                             (Float.of_int (i mod 100) /. 100.0))
  done;
  let text = Buffer.contents buf in
  Alcotest.(check bool) "text crosses chunk threshold" true
    (String.length text >= 1 lsl 16);
  let seq = ok (Relational.Csv.load_into Db.empty ~name:"big" text) in
  let bulk = ok (Relational.Csv.load_string_bulk Db.empty ~name:"big" text) in
  Alcotest.(check bool) "large bulk identical" true
    (relation_ident seq bulk "big");
  (* error reporting: corrupt one record mid-file, expect the sequential
     error message verbatim (line numbers skip blank lines) *)
  let corrupt =
    let half = String.length text / 2 in
    let nl = String.index_from text half '\n' in
    String.sub text 0 (nl + 1)
    ^ "oops,notanint,0.5\n"
    ^ String.sub text (nl + 1) (String.length text - nl - 1)
  in
  let e1 =
    match Relational.Csv.load_into Db.empty ~name:"big" corrupt with
    | Error e -> e
    | Ok _ -> Alcotest.fail "sequential load accepted corrupt input"
  in
  let e2 =
    match Relational.Csv.load_string_bulk Db.empty ~name:"big" corrupt with
    | Error e -> e
    | Ok _ -> Alcotest.fail "bulk load accepted corrupt input"
  in
  Alcotest.(check string) "bulk error identical" e1 e2

(* Projection onto a single no-null string column takes the dictionary
   dedup fast path (group by code, lineage built as a direct Or of Vars);
   the same column containing a Null falls back to the generic path.
   Both must match the row engine exactly, and the merged-group lineage
   shape is pinned explicitly so a fast-path regression cannot hide
   behind a symmetric change to the row engine. *)
let test_dedup_dict_fast_path () =
  let mk with_null =
    let r = R.create "t" (S.of_list [ ("g", V.TString); ("n", V.TInt) ]) in
    let db = Db.add_relation Db.empty r in
    let rows = [ ("a", 1); ("b", 2); ("a", 3); ("c", 4); ("b", 5); ("a", 6) ] in
    let db =
      List.fold_left
        (fun db (g, n) ->
          fst
            (Db.insert db "t"
               [ V.String g; V.Int n ]
               ~conf:(0.1 *. Float.of_int n)))
        db rows
    in
    if with_null then fst (Db.insert db "t" [ V.Null; V.Int 7 ] ~conf:0.7)
    else db
  in
  let plan = A.Project ([ "g" ], A.Scan "t") in
  List.iter
    (fun with_null ->
      let db = mk with_null in
      Alcotest.(check bool) "project vectorizes" true (Col.vectorizes db plan);
      Alcotest.(check bool)
        (if with_null then "null column: generic path identical"
         else "no-null column: dict fast path identical")
        true
        (result_ident (Eval.run db plan) (Col.run db plan)))
    [ false; true ];
  let db = mk false in
  let res = ok (Col.run db plan) in
  let tid i = Lineage.Tid.make "t" i in
  let expect =
    [
      F.Or [ F.Var (tid 0); F.Var (tid 2); F.Var (tid 5) ];
      F.Or [ F.Var (tid 1); F.Var (tid 4) ];
      F.Var (tid 3);
    ]
  in
  let got = List.map (fun r -> r.Eval.lineage) res.Eval.rows in
  Alcotest.(check int) "three groups" 3 (List.length got);
  Alcotest.(check bool) "grouped lineage pinned" true
    (List.for_all2 F.equal expect got)

let () =
  Alcotest.run "columnar"
    [
      ( "identity",
        [
          QCheck_alcotest.to_alcotest qcheck_pipeline_identity;
          QCheck_alcotest.to_alcotest qcheck_decline_on_huge_ints;
          QCheck_alcotest.to_alcotest qcheck_bulk_ingest_identity;
          QCheck_alcotest.to_alcotest qcheck_topk_equals_sort;
        ] );
      ( "directed",
        [
          ("vectorizes + decline", `Quick, test_vectorizes);
          ("PCQE_COLUMNAR gate", `Quick, test_gate_off);
          ("scan cache epochs", `Quick, test_scan_cache_epochs);
          ("bulk ingest epochs", `Quick, test_bulk_epochs);
          ("bulk ingest chunked", `Quick, test_bulk_large_chunked);
          ("dict dedup fast path", `Quick, test_dedup_dict_fast_path);
        ] );
    ]
