# companies asking for less than one million
Candidates: SELECT Company, Funding FROM Proposal WHERE Funding < 1000000
