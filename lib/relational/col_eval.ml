(* Vectorized plan evaluation: predicate compiler, scan-batch cache, and
   the hybrid tie with the row engine.  See the interface for the
   bit-identity contract. *)

module A1 = Bigarray.Array1

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Predicate compiler                                                  *)
(* ------------------------------------------------------------------ *)

(* Three-valued byte masks: 0 = false, 1 = true, 2 = unknown. *)
let mfalse = '\000'
let mtrue = '\001'
let munknown = '\002'

(* A compiled predicate node, bound to one batch: a mask plus a filler
   that computes it for a logical row range [lo, hi).  Fillers only
   write disjoint ranges, so chunking over a pool is race-free and
   deterministic. *)
type filler = { mask : Bytes.t; fill : int -> int -> unit }

(* Stage 1 (compile): resolve columns against the child schema and prove
   no row can make the row engine fail — otherwise decline with [None].
   Stage 2 (bind): given a batch, allocate masks and close over the
   column buffers. *)
type pred = Colbatch.t -> filler

let test_op (op : Expr.cmp) c =
  match op with
  | Expr.Eq -> c = 0
  | Expr.Neq -> c <> 0
  | Expr.Lt -> c < 0
  | Expr.Leq -> c <= 0
  | Expr.Gt -> c > 0
  | Expr.Geq -> c >= 0

let b3 b = if b then mtrue else mfalse

(* Build a filler computing each row's byte independently. *)
let rowwise b f : filler =
  let n = Colbatch.length b in
  let mask = Bytes.create n in
  let fill lo hi =
    for i = lo to hi - 1 do
      Bytes.unsafe_set mask i (f (Colbatch.phys b i))
    done
  in
  { mask; fill }

let const_filler b byte : filler =
  let n = Colbatch.length b in
  let mask = Bytes.create n in
  let fill lo hi = Bytes.fill mask lo (hi - lo) byte in
  { mask; fill }

(* Comparison of column [idx] against a non-null literal. *)
let cmp_col_lit schema op idx (v : Value.t) : pred option =
  let cty = (Schema.column_at schema idx).cty in
  match (cty, v) with
  | Value.TInt, Value.Int k ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.ICol a ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else b3 (test_op op (Int.compare (A1.unsafe_get a p) k)))
        | _ -> assert false)
  | Value.TInt, Value.Float f ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.ICol a ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                b3
                  (test_op op
                     (Float.compare (Float.of_int (A1.unsafe_get a p)) f)))
        | _ -> assert false)
  | Value.TFloat, Value.Int k ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.FCol { data; was_int } ->
          let fk = Float.of_int k in
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                let d = A1.unsafe_get data p in
                let c =
                  if Bytes.unsafe_get was_int p = '\001' then
                    Int.compare (Int.of_float d) k
                  else Float.compare d fk
                in
                b3 (test_op op c))
        | _ -> assert false)
  | Value.TFloat, Value.Float f ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.FCol { data; _ } ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else b3 (test_op op (Float.compare (A1.unsafe_get data p) f)))
        | _ -> assert false)
  | Value.TBool, Value.Bool bv ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.BCol bs ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                b3
                  (test_op op
                     (Bool.compare (Bytes.unsafe_get bs p = '\001') bv)))
        | _ -> assert false)
  | Value.TString, Value.String s ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.SCol { codes; dict; _ } ->
          (* one comparison per distinct string, then a per-row lookup *)
          let per_code =
            Array.map (fun ds -> b3 (test_op op (String.compare ds s))) dict
          in
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else per_code.(codes.(p)))
        | _ -> assert false)
  | _ -> None (* cross-class comparison: the row engine errors per row *)

(* Numeric value of row [p] in a numeric column, in the float domain
   (exact: ints are guarded to 2^53 at batch build time). *)
let float_getter (col : Colbatch.col) =
  match col with
  | Colbatch.ICol a -> fun p -> Float.of_int (A1.unsafe_get a p)
  | Colbatch.FCol { data; _ } -> fun p -> A1.unsafe_get data p
  | _ -> assert false

let is_num = function Value.TInt | Value.TFloat -> true | _ -> false

let cmp_col_col schema op ia ib : pred option =
  let ta = (Schema.column_at schema ia).cty in
  let tb = (Schema.column_at schema ib).cty in
  match (ta, tb) with
  | Value.TInt, Value.TInt ->
    Some
      (fun b ->
        let na = b.Colbatch.nulls.(ia) and nb = b.Colbatch.nulls.(ib) in
        match (b.Colbatch.cols.(ia), b.Colbatch.cols.(ib)) with
        | Colbatch.ICol xa, Colbatch.ICol xb ->
          rowwise b (fun p ->
              if
                Bytes.unsafe_get na p = '\001' || Bytes.unsafe_get nb p = '\001'
              then munknown
              else
                b3
                  (test_op op (Int.compare (A1.unsafe_get xa p) (A1.unsafe_get xb p))))
        | _ -> assert false)
  | ta, tb when is_num ta && is_num tb ->
    Some
      (fun b ->
        let na = b.Colbatch.nulls.(ia) and nb = b.Colbatch.nulls.(ib) in
        let ga = float_getter b.Colbatch.cols.(ia) in
        let gb = float_getter b.Colbatch.cols.(ib) in
        rowwise b (fun p ->
            if Bytes.unsafe_get na p = '\001' || Bytes.unsafe_get nb p = '\001'
            then munknown
            else b3 (test_op op (Float.compare (ga p) (gb p)))))
  | Value.TBool, Value.TBool ->
    Some
      (fun b ->
        let na = b.Colbatch.nulls.(ia) and nb = b.Colbatch.nulls.(ib) in
        match (b.Colbatch.cols.(ia), b.Colbatch.cols.(ib)) with
        | Colbatch.BCol ba, Colbatch.BCol bb ->
          rowwise b (fun p ->
              if
                Bytes.unsafe_get na p = '\001' || Bytes.unsafe_get nb p = '\001'
              then munknown
              else
                b3
                  (test_op op
                     (Bool.compare
                        (Bytes.unsafe_get ba p = '\001')
                        (Bytes.unsafe_get bb p = '\001'))))
        | _ -> assert false)
  | Value.TString, Value.TString ->
    Some
      (fun b ->
        let na = b.Colbatch.nulls.(ia) and nb = b.Colbatch.nulls.(ib) in
        match (b.Colbatch.cols.(ia), b.Colbatch.cols.(ib)) with
        | Colbatch.SCol sa, Colbatch.SCol sb ->
          rowwise b (fun p ->
              if
                Bytes.unsafe_get na p = '\001' || Bytes.unsafe_get nb p = '\001'
              then munknown
              else
                b3
                  (test_op op
                     (String.compare sa.dict.(sa.codes.(p)) sb.dict.(sb.codes.(p)))))
        | _ -> assert false)
  | _ -> None

(* IN-list membership per column class, replicating [Value.equal]:
   numeric Int/Float cross-matches, everything else same-constructor. *)
let in_col schema idx (vs : Value.t list) : pred option =
  let cty = (Schema.column_at schema idx).cty in
  let ints = List.filter_map (function Value.Int k -> Some k | _ -> None) vs in
  let floats =
    List.filter_map (function Value.Float f -> Some f | _ -> None) vs
  in
  let bools = List.filter_map (function Value.Bool b -> Some b | _ -> None) vs in
  let strs =
    List.filter_map (function Value.String s -> Some s | _ -> None) vs
  in
  match cty with
  | Value.TInt ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.ICol a ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                let x = A1.unsafe_get a p in
                b3
                  (List.exists (fun k -> k = x) ints
                  || List.exists
                       (fun f -> Float.compare (Float.of_int x) f = 0)
                       floats))
        | _ -> assert false)
  | Value.TFloat ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.FCol { data; was_int } ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                let d = A1.unsafe_get data p in
                let hit =
                  if Bytes.unsafe_get was_int p = '\001' then
                    let i = Int.of_float d in
                    List.exists (fun k -> k = i) ints
                    || List.exists (fun f -> Float.compare d f = 0) floats
                  else
                    List.exists
                      (fun k -> Float.compare d (Float.of_int k) = 0)
                      ints
                    || List.exists (fun f -> Float.compare d f = 0) floats
                in
                b3 hit)
        | _ -> assert false)
  | Value.TBool ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.BCol bs ->
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else
                b3 (List.exists (fun bv -> bv = (Bytes.unsafe_get bs p = '\001')) bools))
        | _ -> assert false)
  | Value.TString ->
    Some
      (fun b ->
        let nulls = b.Colbatch.nulls.(idx) in
        match b.Colbatch.cols.(idx) with
        | Colbatch.SCol { codes; dict; _ } ->
          let per_code =
            Array.map (fun ds -> b3 (List.exists (String.equal ds) strs)) dict
          in
          rowwise b (fun p ->
              if Bytes.unsafe_get nulls p = '\001' then munknown
              else per_code.(codes.(p)))
        | _ -> assert false)

let resolve schema name =
  match Schema.find_index schema name with Ok i -> Some i | Error _ -> None

(* Combine two fillers pointwise with [f] (SQL three-valued AND/OR). *)
let combine2 b pa pb f : filler =
  let fa = pa b and fb = pb b in
  let n = Colbatch.length b in
  let mask = Bytes.create n in
  let fill lo hi =
    fa.fill lo hi;
    fb.fill lo hi;
    for i = lo to hi - 1 do
      Bytes.unsafe_set mask i
        (f (Bytes.unsafe_get fa.mask i) (Bytes.unsafe_get fb.mask i))
    done
  in
  { mask; fill }

let and3 x y =
  if x = mfalse || y = mfalse then mfalse
  else if x = mtrue && y = mtrue then mtrue
  else munknown

let or3 x y =
  if x = mtrue || y = mtrue then mtrue
  else if x = mfalse && y = mfalse then mfalse
  else munknown

let not3 x = if x = munknown then munknown else if x = mtrue then mfalse else mtrue

let rec compile schema (e : Expr.t) : pred option =
  match e with
  | Expr.Lit (Value.Bool bv) -> Some (fun b -> const_filler b (b3 bv))
  | Expr.Lit Value.Null -> Some (fun b -> const_filler b munknown)
  | Expr.Lit _ -> None (* non-boolean literal: the row engine errors *)
  | Expr.Col name -> (
    match resolve schema name with
    | None -> None
    | Some idx -> (
      match (Schema.column_at schema idx).cty with
      | Value.TBool ->
        Some
          (fun b ->
            let nulls = b.Colbatch.nulls.(idx) in
            match b.Colbatch.cols.(idx) with
            | Colbatch.BCol bs ->
              rowwise b (fun p ->
                  if Bytes.unsafe_get nulls p = '\001' then munknown
                  else if Bytes.unsafe_get bs p = '\001' then mtrue
                  else mfalse)
            | _ -> assert false)
      | _ -> None))
  | Expr.Cmp (_, Expr.Lit Value.Null, _) | Expr.Cmp (_, _, Expr.Lit Value.Null)
    ->
    (* NULL on either side of a comparison is unknown before any type
       check, for every row *)
    Some (fun b -> const_filler b munknown)
  | Expr.Cmp (op, Expr.Col name, Expr.Lit v) ->
    Option.bind (resolve schema name) (fun idx -> cmp_col_lit schema op idx v)
  | Expr.Cmp (op, Expr.Lit v, Expr.Col name) ->
    (* mirror the comparison: sign(lit, col) = -sign(col, lit) *)
    let mirror =
      match op with
      | Expr.Eq -> Expr.Eq
      | Expr.Neq -> Expr.Neq
      | Expr.Lt -> Expr.Gt
      | Expr.Leq -> Expr.Geq
      | Expr.Gt -> Expr.Lt
      | Expr.Geq -> Expr.Leq
    in
    Option.bind (resolve schema name) (fun idx ->
        cmp_col_lit schema mirror idx v)
  | Expr.Cmp (op, Expr.Col a, Expr.Col b) ->
    Option.bind (resolve schema a) (fun ia ->
        Option.bind (resolve schema b) (fun ib -> cmp_col_col schema op ia ib))
  | Expr.Cmp (op, Expr.Lit va, Expr.Lit vb) ->
    (* both sides constant and non-null here (null caught above); only
       same-class comparisons avoid the row engine's rank error *)
    let cls v =
      match Value.type_of v with
      | Some (Value.TInt | Value.TFloat) -> `Num
      | Some Value.TBool -> `Bool
      | Some Value.TString -> `Str
      | None -> `Null
    in
    if cls va = cls vb && cls va <> `Null then
      let byte = b3 (test_op op (Value.compare va vb)) in
      Some (fun b -> const_filler b byte)
    else None
  | Expr.Cmp _ -> None
  | Expr.And (a, b) ->
    Option.bind (compile schema a) (fun pa ->
        Option.map
          (fun pb -> fun batch -> combine2 batch pa pb and3)
          (compile schema b))
  | Expr.Or (a, b) ->
    Option.bind (compile schema a) (fun pa ->
        Option.map
          (fun pb -> fun batch -> combine2 batch pa pb or3)
          (compile schema b))
  | Expr.Not a ->
    Option.map
      (fun pa ->
        fun batch ->
         let fa = pa batch in
         let n = Colbatch.length batch in
         let mask = Bytes.create n in
         let fill lo hi =
           fa.fill lo hi;
           for i = lo to hi - 1 do
             Bytes.unsafe_set mask i (not3 (Bytes.unsafe_get fa.mask i))
           done
         in
         { mask; fill })
      (compile schema a)
  | Expr.Between (a, lo, hi) ->
    (* same expansion as the row engine *)
    compile schema (Expr.And (Expr.Cmp (Expr.Geq, a, lo), Expr.Cmp (Expr.Leq, a, hi)))
  | Expr.IsNull (Expr.Col name) ->
    Option.map
      (fun idx ->
        fun b ->
         let nulls = b.Colbatch.nulls.(idx) in
         rowwise b (fun p ->
             if Bytes.unsafe_get nulls p = '\001' then mtrue else mfalse))
      (resolve schema name)
  | Expr.IsNotNull (Expr.Col name) ->
    Option.map
      (fun idx ->
        fun b ->
         let nulls = b.Colbatch.nulls.(idx) in
         rowwise b (fun p ->
             if Bytes.unsafe_get nulls p = '\001' then mfalse else mtrue))
      (resolve schema name)
  | Expr.IsNull (Expr.Lit v) ->
    let byte = b3 (v = Value.Null) in
    Some (fun b -> const_filler b byte)
  | Expr.IsNotNull (Expr.Lit v) ->
    let byte = b3 (v <> Value.Null) in
    Some (fun b -> const_filler b byte)
  | Expr.IsNull _ | Expr.IsNotNull _ -> None
  | Expr.Like (Expr.Col name, pattern) -> (
    match resolve schema name with
    | None -> None
    | Some idx -> (
      match (Schema.column_at schema idx).cty with
      | Value.TString ->
        Some
          (fun b ->
            let nulls = b.Colbatch.nulls.(idx) in
            match b.Colbatch.cols.(idx) with
            | Colbatch.SCol { codes; dict; _ } ->
              (* one LIKE match per distinct string *)
              let per_code =
                Array.map (fun s -> b3 (Expr.like_match ~pattern s)) dict
              in
              rowwise b (fun p ->
                  if Bytes.unsafe_get nulls p = '\001' then munknown
                  else per_code.(codes.(p)))
            | _ -> assert false)
      | _ -> None))
  | Expr.Like _ -> None
  | Expr.In (Expr.Col name, vs) ->
    Option.bind (resolve schema name) (fun idx -> in_col schema idx vs)
  | Expr.In (Expr.Lit v, vs) ->
    let byte =
      if v = Value.Null then munknown
      else b3 (List.exists (Value.equal v) vs)
    in
    Some (fun b -> const_filler b byte)
  | Expr.In _ -> None
  | Expr.Arith _ | Expr.Neg _ -> None

(* ------------------------------------------------------------------ *)
(* Mask evaluation (optionally pool-chunked)                           *)
(* ------------------------------------------------------------------ *)

let parallel_threshold = 8192

let eval_mask (p : pred) b pool =
  let f = p b in
  let n = Colbatch.length b in
  (match pool with
  | Some pl when n >= parallel_threshold && Exec.Pool.jobs pl > 1 ->
    let chunks = Exec.Pool.jobs pl * 4 in
    let per = (n + chunks - 1) / chunks in
    Exec.Pool.run_chunks pl ~chunks (fun ci ->
        let lo = ci * per in
        let hi = min n (lo + per) in
        if lo < hi then f.fill lo hi)
  | _ -> f.fill 0 n);
  f.mask

(* ------------------------------------------------------------------ *)
(* Scan-batch cache                                                    *)
(* ------------------------------------------------------------------ *)

type centry = {
  mutable conf_epoch : int;
  batch : Colbatch.t option; (* [None]: the relation declined *)
}

(* Keyed by (relation name, structural epoch): per-shard views of the
   same relation carry distinct shard-structural stamps, so each shard's
   batch gets its own slot instead of evicting the others on every
   alternation.  Stamps are process-globally unique, so a key can never
   alias a different row set. *)
let cache : (string * int, centry) Hashtbl.t = Hashtbl.create 16
let cache_mutex = Mutex.create ()
let cache_capacity = 64

let clear_cache () =
  Mutex.protect cache_mutex (fun () -> Hashtbl.reset cache)

let cached_batch db r =
  let key = (Relation.name r, Database.structural_epoch db) in
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache key with
      | Some e -> e.batch
      | None ->
        if Hashtbl.length cache >= cache_capacity then Hashtbl.reset cache;
        let batch = Colbatch.of_relation db r in
        Hashtbl.replace cache key
          { conf_epoch = Database.confidence_epoch db; batch };
        batch)

let scan_batch db name =
  match Database.relation db name with
  | None -> None
  | Some r -> (
    match cached_batch db r with
    | None -> None
    | Some b ->
      let key = (name, Database.structural_epoch db) in
      let ce = Database.confidence_epoch db in
      Mutex.protect cache_mutex (fun () ->
          match Hashtbl.find_opt cache key with
          | Some e when e.conf_epoch <> ce ->
            Colbatch.refresh_confidences db b;
            e.conf_epoch <- ce
          | _ -> ());
      Some b)

(* ------------------------------------------------------------------ *)
(* Plan compiler and hybrid evaluation                                 *)
(* ------------------------------------------------------------------ *)

type staged = Exec.Pool.t option -> Colbatch.t

let rec compile_plan db (plan : Algebra.t) : staged option =
  match plan with
  | Algebra.Scan name -> (
    match Database.relation db name with
    | None -> None
    | Some r -> (
      match cached_batch db r with
      | None -> None
      | Some b -> Some (fun _ -> b)))
  | Algebra.Select (pred, p) -> (
    match compile_plan db p with
    | None -> None
    | Some child -> (
      match Algebra.output_schema db p with
      | Error _ -> None
      | Ok schema -> (
        match compile schema pred with
        | None -> None
        | Some kernel ->
          Some
            (fun pool ->
              let b = child pool in
              Colbatch.filter b (eval_mask kernel b pool)))))
  | Algebra.Project (names, p) -> (
    match compile_plan db p with
    | None -> None
    | Some child -> (
      match Algebra.output_schema db p with
      | Error _ -> None
      | Ok schema -> (
        match Schema.project schema names with
        | Error _ -> None
        | Ok (schema', idx) ->
          Some
            (fun pool ->
              Colbatch.dedup (Colbatch.project (child pool) schema' idx)))))
  | Algebra.Distinct p ->
    Option.map
      (fun child -> fun pool -> Colbatch.dedup (child pool))
      (compile_plan db p)
  | Algebra.Limit (n, p) when n >= 0 ->
    Option.map
      (fun child -> fun pool -> Colbatch.limit (child pool) n)
      (compile_plan db p)
  | Algebra.Rename (_, p) -> (
    match compile_plan db p with
    | None -> None
    | Some child -> (
      match Algebra.output_schema db plan with
      | Error _ | (exception Invalid_argument _) -> None
      | Ok schema ->
        Some (fun pool -> Colbatch.with_schema (child pool) schema)))
  | _ -> None

let enabled () =
  match Sys.getenv_opt "PCQE_COLUMNAR" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let vectorizes db plan = enabled () && Option.is_some (compile_plan db plan)

let run_rows ?pool db plan =
  if not (enabled ()) then Eval.run_rows db plan
  else
    let rec hybrid db plan =
      match compile_plan db plan with
      | Some exec -> Ok (Colbatch.to_rows (exec pool))
      | None -> Eval.run_rows_via hybrid db plan
    in
    hybrid db plan

let run ?pool db plan =
  let* schema = Algebra.output_schema db plan in
  let* rows = run_rows ?pool db plan in
  Ok { Eval.schema; rows }

(* Safe-plan fast path (see [Eval.run_conf]): confidences computed during
   batch evaluation.  A fully vectorized plan keeps [Tids] lineage, whose
   row confidence IS the cached base-confidence column — one array read
   per row, no formula walk at all.  Dedup pipelines ([Forms]) and hybrid
   fallbacks use the linear read-once evaluator per row.  Either way the
   values are bitwise what the ladder's read-once rung returns. *)
let run_conf ?pool db plan =
  let safe () = Lineage.Circuit.enabled () && Safe_plan.analyze plan in
  if not (enabled ()) then
    if safe () then Eval.run_conf db plan
    else
      let* res = Eval.run db plan in
      Ok (res, None)
  else if not (safe ()) then
    let* res = run ?pool db plan in
    Ok (res, None)
  else
    let* schema = Algebra.output_schema db plan in
    match compile_plan db plan with
    | Some exec ->
      (* scan batches are cached across confidence epochs; force the
         refresh [scan_batch] performs so the conf column is current *)
      List.iter
        (fun name -> ignore (scan_batch db name))
        (Algebra.base_relations plan);
      let b = exec pool in
      let rows = Colbatch.to_rows b in
      let n = Colbatch.length b in
      let confs =
        match b.Colbatch.lin with
        | Colbatch.Tids _ ->
          Array.init n (fun i -> b.Colbatch.conf.(Colbatch.phys b i))
        | Colbatch.Forms _ ->
          let p = Database.confidence_fn db in
          Array.init n (fun i ->
              Lineage.Prob.confidence p (Colbatch.lineage b i))
      in
      Ok ({ Eval.schema; rows }, Some confs)
    | None ->
      let* rows = run_rows ?pool db plan in
      let p = Database.confidence_fn db in
      let confs =
        Array.of_list
          (List.map
             (fun (r : Eval.row) -> Lineage.Prob.confidence p r.lineage)
             rows)
      in
      Ok ({ Eval.schema; rows }, Some confs)
