(** Columnar batches: the storage side of the vectorized engine.

    A batch holds one relation's (or intermediate result's) data as typed
    columns stored side by side — [Bigarray] buffers for int and real
    columns, byte arrays for bools, dictionary codes for strings — plus a
    per-column null byte-map, and the lineage carriers (tuple-id column,
    or merged formulas after duplicate elimination) and the base
    confidence column.  A selection vector narrows the batch to a subset
    of physical rows without copying column data; operators that must
    materialize (duplicate elimination) compact into a fresh batch.

    The contract with the row engine ({!Eval}) is bit-identity:
    {!to_rows} of any batch pipeline equals the row engine's output —
    same tuples (including [Int] vs [Float] identity in real columns),
    same order, structurally identical lineage formulas.  To keep exact
    integer semantics representable, {!of_relation} declines (returns
    [None]) when an integer's magnitude exceeds 2{^53}; such relations
    are simply evaluated by the row engine. *)

type col =
  | ICol of (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
      (** int column; every value exact, magnitude at most 2{^53} *)
  | FCol of {
      data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      was_int : Bytes.t;
          (** ['\001'] where the stored value was a [Value.Int] — real
              columns admit ints ({!Value.conforms}), and materialization
              must reproduce the original constructor *)
    }
  | BCol of Bytes.t  (** bool column, 0/1 *)
  | SCol of {
      codes : int array;
      dict : string array;  (** distinct strings, first-occurrence order *)
      boxed : Value.t array;  (** shared [Value.String] per code *)
      hashes : int array;  (** [Value.hash] per code *)
    }

type lin =
  | Tids of Lineage.Tid.t array  (** row [i]'s lineage is [Var tids.(i)] *)
  | Forms of Lineage.Formula.t array  (** merged formulas after dedup *)

type t = {
  schema : Schema.t;
  nrows : int;  (** physical rows *)
  cols : col array;
  nulls : Bytes.t array;  (** per column, ['\001'] = NULL, length [nrows] *)
  lin : lin;
  conf : float array;
      (** per physical row: the base confidence of the originating tuple
          (meaningful for scan/filter pipelines; dedup keeps the
          representative's value) *)
  sel : int array option;
      (** selection vector of physical indices, in logical order;
          [None] = all rows *)
}

val of_relation : Database.t -> Relation.t -> t option
(** Columnarize a stored relation (tids, confidences and values), or
    [None] when the relation is not exactly representable (an integer
    beyond 2{^53} in an int or real column). *)

val length : t -> int
(** Logical row count (selection vector honoured). *)

val phys : t -> int -> int
(** Physical index of logical row [i]. *)

val lineage : t -> int -> Lineage.Formula.t
(** Lineage formula of logical row [i]. *)

val filter : t -> Bytes.t -> t
(** [filter b mask] keeps the logical rows whose mask byte is [1]
    (three-valued predicate: 0 false, 1 true, 2 unknown) by narrowing
    the selection vector; column data is shared, not copied. *)

val project : t -> Schema.t -> int array -> t
(** [project b schema' idx] remaps columns (shared buffers, no copy);
    callers follow with {!dedup} for set semantics. *)

val dedup : t -> t
(** Duplicate elimination with lineage merge, replicating the row
    engine's {!Eval} semantics exactly: groups keyed by [Tuple.hash]
    bucket plus [Value.equal] equality, first-occurrence output order,
    lineage folded left with [Formula.disj].  Output is a compacted
    batch (no selection vector) carrying [Forms] lineage. *)

val limit : t -> int -> t
(** First [n] logical rows. *)

val with_schema : t -> Schema.t -> t
(** Replace the schema (RENAME changes names only, never data). *)

val refresh_confidences : Database.t -> t -> unit
(** Refill the confidence column from the database's current confidence
    table (scan batches are cached across confidence epochs). *)

val value : t -> int -> int -> Value.t
(** [value b c p] is column [c] at {e physical} row [p], boxed. *)

val to_rows : t -> Eval.row list
(** The batch↔row bridge: materialize logical rows in order, each tuple
    paired with its lineage formula — bit-identical to what the row
    engine would have produced for the same pipeline. *)
