(** Static safety analysis for confidence computation.

    A plan is {e safe} (hierarchical, in the Dalvi–Suciu sense adapted to
    this algebra) when every output row's lineage formula is provably
    read-once: each base tuple variable occurs at most once in it.  For
    such rows exact confidence is the linear independent-product
    ({!Lineage.Prob.read_once}) — no Shannon expansion, no OBDD, no
    sampling, no per-class caching.  The analysis is purely syntactic
    over the compiled algebra, sound but incomplete: [false] only means
    the ladder must be consulted, never that the plan is wrong.

    The lattice tracks two bits per subplan:

    - [ro] — every output row's lineage is read-once;
    - [pd] — distinct output rows have pairwise-disjoint variable sets
      (needed to keep [ro] through duplicate-eliminating operators,
      whose merged lineage is a disjunction over the collapsed rows).

    Scans give both.  Joins over disjoint base-relation sets keep [ro]
    (the two sides' variables cannot collide) but lose [pd] (one left
    row can pair with many right rows).  Projection, distinct, group-by
    and the set operators need both bits below them.  Subquery
    selections conjoin shared membership events into many rows and are
    always unsafe.  A self-join — the same base relation on both sides —
    fails the disjointness test and is correctly rejected. *)

val analyze : Algebra.t -> bool
(** [analyze plan] is [true] when every row produced by [plan] is
    guaranteed to carry read-once lineage. *)
