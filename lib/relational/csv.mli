(** CSV import/export for relations, with an optional confidence column.

    Format: the first line is the header [name:type,...]; subsequent lines
    are rows.  Fields containing commas, quotes or newlines are
    double-quoted with embedded quotes doubled (RFC-4180 style).  A column
    literally named [__confidence] (of type real) is not stored in the
    relation; it sets each tuple's confidence instead (default
    [default_conf] when the column is absent). *)

val parse_line : string -> string list
(** Split one CSV record into raw fields (quotes resolved).  Exposed for
    tests. *)

val render_line : string list -> string
(** Inverse of {!parse_line}. *)

val relation_of_string :
  name:string -> ?default_conf:float -> string -> (Relation.t * (Lineage.Tid.t * float) list, string) result
(** [relation_of_string ~name csv] parses a full CSV document into a
    relation plus the per-tuple confidences to record in the database.
    [default_conf] defaults to [1.0]. *)

val load_into :
  Database.t -> name:string -> ?default_conf:float -> string -> (Database.t, string) result
(** [load_into db ~name csv] parses and registers the relation and its
    confidences into [db]. *)

val load_file :
  Database.t -> name:string -> ?default_conf:float -> string -> (Database.t, string) result
(** [load_file db ~name path] loads [path] streaming: one pass over the
    channel, no whole-file string.  Same result as {!load_into} on the
    file's contents (blank lines are skipped without consuming a line
    number, exactly as the string path does). *)

val load_string_bulk :
  Database.t ->
  name:string ->
  ?default_conf:float ->
  ?jobs:int ->
  string ->
  (Database.t, string) result
(** Parallel bulk ingest.  The body is split into chunks at record
    boundaries and parsed over a domain pool ([jobs] resolved by
    {!Exec.resolve_jobs}); tuple ids are assigned in file order by
    prefix-summing chunk row counts, so the loaded relation — ids,
    ordering, confidences — is identical to what {!load_into} produces
    for any jobs count.  On malformed input the reported error is the
    one {!load_into} would give (lowest line number wins).  Registration
    goes through {!Database.bulk_load}: one structural and one
    confidence epoch bump for the whole load instead of per row, and on
    a sharded database the parsed rows are routed straight to their
    owning shards in the same single pass — each touched shard gets its
    own stamp and one truthful change-log entry listing the tuples it
    received. *)

val load_file_bulk :
  Database.t ->
  name:string ->
  ?default_conf:float ->
  ?jobs:int ->
  string ->
  (Database.t, string) result
(** [load_file_bulk db ~name path] reads [path] once and delegates to
    {!load_string_bulk}. *)

val to_string : Database.t -> Relation.t -> string
(** Export a relation (with its [__confidence] column) as CSV. *)
