(* Columnar batches.  See the interface for the layout and the
   bit-identity contract with the row engine. *)

type col =
  | ICol of (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t
  | FCol of {
      data : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t;
      was_int : Bytes.t;
    }
  | BCol of Bytes.t
  | SCol of {
      codes : int array;
      dict : string array;
      boxed : Value.t array;
      hashes : int array;
    }

type lin = Tids of Lineage.Tid.t array | Forms of Lineage.Formula.t array

type t = {
  schema : Schema.t;
  nrows : int;
  cols : col array;
  nulls : Bytes.t array;
  lin : lin;
  conf : float array;
  sel : int array option;
}

(* Largest magnitude at which every int is exactly a float and float
   comparison coincides with [Int.compare]; beyond it we decline. *)
let max_exact_int = 1 lsl 53

exception Decline

let vtrue = Value.Bool true
let vfalse = Value.Bool false

let length b = match b.sel with Some s -> Array.length s | None -> b.nrows
let phys b i = match b.sel with Some s -> s.(i) | None -> i

let lineage b i =
  let p = phys b i in
  match b.lin with
  | Tids tids -> Lineage.Formula.var tids.(p)
  | Forms fs -> fs.(p)

(* Dictionary builder for string columns: codes in first-occurrence order. *)
module Dict = struct
  type d = {
    table : (string, int) Hashtbl.t;
    mutable rev : string list;
    mutable next : int;
  }

  let create () = { table = Hashtbl.create 64; rev = []; next = 0 }

  let code d s =
    match Hashtbl.find_opt d.table s with
    | Some c -> c
    | None ->
      let c = d.next in
      Hashtbl.add d.table s c;
      d.rev <- s :: d.rev;
      d.next <- c + 1;
      c

  let finish d =
    let dict = Array.of_list (List.rev d.rev) in
    let boxed = Array.map (fun s -> Value.String s) dict in
    let hashes = Array.map Value.hash boxed in
    (dict, boxed, hashes)
end

let of_relation db r =
  let schema = Relation.schema r in
  let arity = Schema.arity schema in
  let n = Relation.cardinality r in
  let mk_i () = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n in
  let mk_f () = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  let builders =
    Array.init arity (fun c ->
        match (Schema.column_at schema c).cty with
        | Value.TInt -> `I (mk_i ())
        | Value.TFloat -> `F (mk_f (), Bytes.make n '\000')
        | Value.TBool -> `B (Bytes.make n '\000')
        | Value.TString -> `S (Array.make n 0, Dict.create ()))
  in
  let nulls = Array.init arity (fun _ -> Bytes.make n '\000') in
  let tids = Array.make n (Lineage.Tid.make "" 0) in
  let conf = Array.make n 0.0 in
  let check_exact v = if v > max_exact_int || v < -max_exact_int then raise Decline in
  let set c i (v : Value.t) =
    match (builders.(c), v) with
    | _, Value.Null ->
      Bytes.unsafe_set nulls.(c) i '\001'
    | `I a, Value.Int x ->
      check_exact x;
      Bigarray.Array1.unsafe_set a i x
    | `F (a, w), Value.Int x ->
      check_exact x;
      Bigarray.Array1.unsafe_set a i (Float.of_int x);
      Bytes.unsafe_set w i '\001'
    | `F (a, _), Value.Float f -> Bigarray.Array1.unsafe_set a i f
    | `B bs, Value.Bool b -> if b then Bytes.unsafe_set bs i '\001'
    | `S (codes, d), Value.String s -> codes.(i) <- Dict.code d s
    | _ -> raise Decline (* non-conforming cell: not representable *)
  in
  match
    let i = ref 0 in
    List.iter
      (fun (tid, tup) ->
        tids.(!i) <- tid;
        conf.(!i) <- Database.confidence db tid;
        for c = 0 to arity - 1 do
          set c !i (Tuple.get tup c)
        done;
        incr i)
      (Relation.tuples r)
  with
  | exception Decline -> None
  | () ->
    let cols =
      Array.map
        (function
          | `I a -> ICol a
          | `F (a, w) -> FCol { data = a; was_int = w }
          | `B bs -> BCol bs
          | `S (codes, d) ->
            let dict, boxed, hashes = Dict.finish d in
            SCol { codes; dict; boxed; hashes })
        builders
    in
    Some { schema; nrows = n; cols; nulls; lin = Tids tids; conf; sel = None }

let refresh_confidences db b =
  match b.lin with
  | Forms _ -> ()
  | Tids tids ->
    for i = 0 to b.nrows - 1 do
      b.conf.(i) <- Database.confidence db tids.(i)
    done

let filter b mask =
  let n = length b in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get mask i = '\001' then incr kept
  done;
  let sel = Array.make !kept 0 in
  let j = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.unsafe_get mask i = '\001' then begin
      sel.(!j) <- phys b i;
      incr j
    end
  done;
  { b with sel = Some sel }

let project b schema idx =
  {
    b with
    schema;
    cols = Array.map (fun c -> b.cols.(c)) idx;
    nulls = Array.map (fun c -> b.nulls.(c)) idx;
  }

let limit b n =
  let len = length b in
  let n = min n len in
  let sel = Array.init n (fun i -> phys b i) in
  { b with sel = Some sel }

let with_schema b schema = { b with schema }

let value b c p =
  if Bytes.unsafe_get b.nulls.(c) p = '\001' then Value.Null
  else
    match b.cols.(c) with
    | ICol a -> Value.Int (Bigarray.Array1.unsafe_get a p)
    | FCol { data; was_int } ->
      let f = Bigarray.Array1.unsafe_get data p in
      if Bytes.unsafe_get was_int p = '\001' then Value.Int (Int.of_float f)
      else Value.Float f
    | BCol bs -> if Bytes.unsafe_get bs p = '\001' then vtrue else vfalse
    | SCol { codes; boxed; _ } -> boxed.(codes.(p))

(* [Value.hash] of the cell at physical row [p] of column [c] — must match
   what [Tuple.hash] computes on the materialized row. *)
let cell_hash b c p =
  if Bytes.unsafe_get b.nulls.(c) p = '\001' then 17
  else
    match b.cols.(c) with
    | ICol a -> Hashtbl.hash (Float.of_int (Bigarray.Array1.unsafe_get a p))
    | FCol { data; _ } -> Hashtbl.hash (Bigarray.Array1.unsafe_get data p)
    | BCol bs -> if Bytes.unsafe_get bs p = '\001' then 31 else 37
    | SCol { codes; hashes; _ } -> hashes.(codes.(p))

let row_hash b p =
  let arity = Array.length b.cols in
  let h = ref 7 in
  for c = 0 to arity - 1 do
    h := (!h * 31) + cell_hash b c p
  done;
  !h

(* [Value.equal] per cell: the only cross-constructor equality is numeric
   Int/Float, which the FCol float domain captures exactly (ints are
   guarded to 2^53 at build time). *)
let rows_equal b p q =
  let arity = Array.length b.cols in
  let rec go c =
    c >= arity
    ||
    let np = Bytes.unsafe_get b.nulls.(c) p = '\001' in
    let nq = Bytes.unsafe_get b.nulls.(c) q = '\001' in
    if np || nq then np && nq && go (c + 1)
    else
      (match b.cols.(c) with
      | ICol a ->
        Bigarray.Array1.unsafe_get a p = Bigarray.Array1.unsafe_get a q
      | FCol { data; _ } ->
        Float.compare
          (Bigarray.Array1.unsafe_get data p)
          (Bigarray.Array1.unsafe_get data q)
        = 0
      | BCol bs -> Bytes.unsafe_get bs p = Bytes.unsafe_get bs q
      | SCol { codes; _ } -> codes.(p) = codes.(q))
      && go (c + 1)
  in
  go 0

type group = {
  rep : int; (* physical row of the first occurrence *)
  mutable forms : Lineage.Formula.t list;
      (* member lineages, newest first; merged with one [Formula.disj]
         at the end (identical to the row engine's per-row fold — [disj]
         splices nested [Or]s — but linear in the group size) *)
}

(* Dictionary-grouped fast path: a batch that is a single no-null string
   column with [Tids] lineage groups by dictionary code — codes are
   equality classes of the strings (the dict is distinct by
   construction), so no hashing and no equality scans are needed.  And
   because tuple ids within a batch are distinct, the merged lineage of
   a group is [Or [Var t1; ...; Var tk]] in arrival order — exactly what
   folding [Formula.disj] over distinct [Var]s produces — so it can be
   built directly, skipping [disj]'s flatten/dedup pass. *)
let dedup_by_code b codes dict boxed hashes tids =
  let ncodes = Array.length dict in
  let grp = Array.make ncodes (-1) in
  let rep = Array.make ncodes 0 in
  let members : Lineage.Tid.t list array = Array.make ncodes [] in
  let order = ref [] in
  let m = ref 0 in
  let n = length b in
  for i = 0 to n - 1 do
    let p = phys b i in
    let c = Array.unsafe_get codes p in
    if Array.unsafe_get grp c < 0 then begin
      Array.unsafe_set grp c !m;
      Array.unsafe_set rep c p;
      Array.unsafe_set members c [ Array.unsafe_get tids p ];
      order := c :: !order;
      incr m
    end
    else
      Array.unsafe_set members c
        (Array.unsafe_get tids p :: Array.unsafe_get members c)
  done;
  let m = !m in
  (* group index -> code, first-occurrence order *)
  let by_group = Array.make m 0 in
  let i = ref m in
  List.iter
    (fun c ->
      decr i;
      by_group.(!i) <- c)
    !order;
  {
    schema = b.schema;
    nrows = m;
    cols = [| SCol { codes = by_group; dict; boxed; hashes } |];
    nulls = [| Bytes.make m '\000' |];
    lin =
      Forms
        (Array.init m (fun g ->
             match members.(by_group.(g)) with
             | [ t ] -> Lineage.Formula.var t
             | ts -> Lineage.Formula.Or (List.rev_map Lineage.Formula.var ts)));
    conf = Array.init m (fun g -> b.conf.(rep.(by_group.(g))));
    sel = None;
  }

let no_null_col b col =
  let nulls = b.nulls.(col) in
  let n = length b in
  let rec go i =
    i >= n || (Bytes.unsafe_get nulls (phys b i) = '\000' && go (i + 1))
  in
  go 0

let dedup_generic b =
  let n = length b in
  (* hash -> groups with that hash, newest first (mirrors the row engine's
     bucket lists: equal tuples with different hashes stay distinct) *)
  let buckets : (int, group list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let ngroups = ref 0 in
  for i = 0 to n - 1 do
    let p = phys b i in
    let h = row_hash b p in
    let cells = try Hashtbl.find buckets h with Not_found -> [] in
    match List.find_opt (fun g -> rows_equal b g.rep p) cells with
    | Some g -> g.forms <- lineage b i :: g.forms
    | None ->
      let g = { rep = p; forms = [ lineage b i ] } in
      Hashtbl.replace buckets h (g :: cells);
      order := g :: !order;
      incr ngroups
  done;
  let groups = Array.make !ngroups { rep = 0; forms = [] } in
  List.iteri
    (fun i g -> groups.(!ngroups - 1 - i) <- g)
    !order;
  let m = !ngroups in
  let arity = Array.length b.cols in
  let cols =
    Array.init arity (fun c ->
        match b.cols.(c) with
        | ICol a ->
          let a' = Bigarray.Array1.create Bigarray.int Bigarray.c_layout m in
          for i = 0 to m - 1 do
            Bigarray.Array1.unsafe_set a' i
              (Bigarray.Array1.unsafe_get a groups.(i).rep)
          done;
          ICol a'
        | FCol { data; was_int } ->
          let a' =
            Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout m
          in
          let w' = Bytes.make m '\000' in
          for i = 0 to m - 1 do
            let p = groups.(i).rep in
            Bigarray.Array1.unsafe_set a' i (Bigarray.Array1.unsafe_get data p);
            Bytes.unsafe_set w' i (Bytes.unsafe_get was_int p)
          done;
          FCol { data = a'; was_int = w' }
        | BCol bs ->
          let bs' = Bytes.make m '\000' in
          for i = 0 to m - 1 do
            Bytes.unsafe_set bs' i (Bytes.unsafe_get bs groups.(i).rep)
          done;
          BCol bs'
        | SCol { codes; dict; boxed; hashes } ->
          SCol
            {
              codes = Array.init m (fun i -> codes.(groups.(i).rep));
              dict;
              boxed;
              hashes;
            })
  in
  let nulls =
    Array.init arity (fun c ->
        let src = b.nulls.(c) in
        let dst = Bytes.make m '\000' in
        for i = 0 to m - 1 do
          Bytes.unsafe_set dst i (Bytes.unsafe_get src groups.(i).rep)
        done;
        dst)
  in
  {
    schema = b.schema;
    nrows = m;
    cols;
    nulls;
    lin =
      Forms
        (Array.map
           (fun g ->
             match g.forms with
             | [ l ] -> l
             | ls -> Lineage.Formula.disj (List.rev ls))
           groups);
    conf = Array.map (fun g -> b.conf.(g.rep)) groups;
    sel = None;
  }

let dedup b =
  match (b.cols, b.lin) with
  | [| SCol { codes; dict; boxed; hashes } |], Tids tids
    when no_null_col b 0 ->
    dedup_by_code b codes dict boxed hashes tids
  | _ -> dedup_generic b

let to_rows b =
  let n = length b in
  let arity = Array.length b.cols in
  let rows = ref [] in
  for i = n - 1 downto 0 do
    let p = phys b i in
    let tuple = Tuple.make (Array.init arity (fun c -> value b c p)) in
    rows := { Eval.tuple; lineage = lineage b i } :: !rows
  done;
  !rows
