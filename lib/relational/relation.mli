(** Base relations: a named schema plus stored tuples with stable ids.

    Tuples keep the identifier assigned at insertion time for their whole
    life; deleting a tuple never renumbers the others.  Identifiers are the
    variables of lineage formulas, so stability is essential. *)

type t

val create : string -> Schema.t -> t
(** [create name schema] is an empty relation. *)

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int

val insert : t -> Tuple.t -> t * Lineage.Tid.t
(** [insert r tup] appends [tup], returning the new relation and the fresh
    tuple id.
    @raise Invalid_argument if [tup] does not conform to the schema. *)

val insert_values : t -> Value.t list -> t * Lineage.Tid.t
(** [insert_values r vs] is [insert r (Tuple.of_list vs)]. *)

val insert_all : t -> Tuple.t list -> t * Lineage.Tid.t list

val of_tuples : string -> Schema.t -> Tuple.t list -> t
(** [of_tuples name schema tups] builds a relation containing [tups] in
    order, with tuple ids [0 .. n-1] — exactly the relation that
    [create] followed by [n] {!insert}s would produce, in one pass
    (bulk loaders).
    @raise Invalid_argument if a tuple does not conform to the schema. *)

val delete : t -> Lineage.Tid.t -> t
(** [delete r tid] removes the tuple; a no-op if absent. *)

val update : t -> Lineage.Tid.t -> Tuple.t -> t
(** [update r tid tup] replaces the tuple stored under [tid].
    @raise Invalid_argument if [tid] is absent or [tup] does not conform. *)

val find : t -> Lineage.Tid.t -> Tuple.t option

val partition_rows : t -> count:int -> owner:(Lineage.Tid.t -> int) -> t array
(** [partition_rows r ~count ~owner] splits [r] into [count] relations in
    one pass, routing each stored row to index [owner tid].  Every part
    keeps the name, schema and row ids of [r]; part [i]'s {!tuples} order
    is the global insertion order restricted to its rows.  The shard
    router builds its per-shard views with this. *)

val tuples : t -> (Lineage.Tid.t * Tuple.t) list
(** In insertion order. *)

val iter : (Lineage.Tid.t -> Tuple.t -> unit) -> t -> unit
val fold : ('a -> Lineage.Tid.t -> Tuple.t -> 'a) -> 'a -> t -> 'a

val to_string : t -> string
(** A small ASCII table, for examples and the CLI. *)

val pp : Format.formatter -> t -> unit
