(** Named views: stored query plans expanded before evaluation.

    Our take on the "quality views" of Missier et al. (VLDB 2006), the
    closest related work the paper discusses: a view encapsulates a
    quality-relevant query under a name.  Scanning the name behaves exactly
    like evaluating the stored plan wrapped in a [Rename] (so the view's
    columns are qualified with the view name, as a base relation's would
    be).  Because expansion happens at the plan level, view results carry
    lineage and confidence like any other derived tuples, and confidence
    policies apply to them uniformly — the key difference being that the
    paper's framework adds the dynamic confidence-increment loop on top,
    which Missier et al.'s views lack.

    A store is immutable; names may shadow base relations only at
    expansion time resolution order: views win. *)

type t

val empty : t

val epoch : t -> int
(** Epoch stamp of this store version (see {!Epoch}): advances on every
    {!add} and effective {!remove}, so prepared plans that expanded a
    view can detect that any definition changed.  [0] for {!empty};
    removing an unknown name does not advance it. *)

val add : t -> string -> Algebra.t -> (t, string) result
(** [add views name plan] registers or replaces a view.  Fails when the
    definition would make [name] (mutually) recursive through other
    views. *)

val find : t -> string -> Algebra.t option
val names : t -> string list
val remove : t -> string -> t

val expand : t -> Algebra.t -> Algebra.t
(** [expand views plan] replaces every [Scan v] where [v] is a view with
    [Rename (v, definition)], recursively (definitions may reference other
    views; {!add} guarantees the recursion terminates). *)

val of_sql : t -> name:string -> string -> (t, string) result
(** [of_sql views ~name sql] compiles the SQL text and registers it. *)
