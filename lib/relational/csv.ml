let ( let* ) = Result.bind

(* Fast path: a record without quotes splits on commas directly (one pass,
   one substring per field).  The quoted slow path is RFC-4180 style. *)
let parse_line_quoted line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let i = ref 0 in
  let in_quotes = ref false in
  while !i < n do
    let c = line.[!i] in
    if !in_quotes then
      if c = '"' then
        if !i + 1 < n && line.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          in_quotes := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    else if c = '"' then begin
      in_quotes := true;
      incr i
    end
    else if c = ',' then begin
      flush_field ();
      incr i
    end
    else begin
      Buffer.add_char buf c;
      incr i
    end
  done;
  flush_field ();
  List.rev !fields

let parse_line line =
  if String.contains line '"' then parse_line_quoted line
  else String.split_on_char ',' line

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

(* Single output buffer for the whole record: no per-field intermediate
   strings, no String.concat. *)
let render_line fields =
  let buf = Buffer.create 64 in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      if needs_quoting s then begin
        Buffer.add_char buf '"';
        String.iter
          (fun c ->
            if c = '"' then Buffer.add_string buf "\"\""
            else Buffer.add_char buf c)
          s;
        Buffer.add_char buf '"'
      end
      else Buffer.add_string buf s)
    fields;
  Buffer.contents buf

let confidence_col = "__confidence"

let strip_cr l =
  if String.length l > 0 && l.[String.length l - 1] = '\r' then
    String.sub l 0 (String.length l - 1)
  else l

let is_blank l = String.trim l = ""

let split_lines text =
  (* naive split on newlines is fine: quoted embedded newlines are not
     produced by our exporter and are rejected on import *)
  String.split_on_char '\n' text
  |> List.map strip_cr
  |> List.filter (fun l -> not (is_blank l))

let parse_header line =
  let fields = parse_line line in
  let rec go acc conf_idx i = function
    | [] -> Ok (List.rev acc, conf_idx)
    | f :: rest -> (
      match String.index_opt f ':' with
      | None -> Error (Printf.sprintf "header field %S lacks a :type suffix" f)
      | Some j -> (
        let name = String.sub f 0 j in
        let tyname = String.sub f (j + 1) (String.length f - j - 1) in
        match Value.ty_of_string tyname with
        | None -> Error (Printf.sprintf "unknown type %S in header" tyname)
        | Some ty ->
          if name = confidence_col then
            if ty <> Value.TFloat then
              Error (Printf.sprintf "%s column must be real" confidence_col)
            else go acc (Some i) (i + 1) rest
          else go ((name, ty, i) :: acc) conf_idx (i + 1) rest))
  in
  go [] None 0 fields

(* Parse one record.  Errors mention the 1-based line number, which bulk
   chunked parsing only knows after joining — so the error side is a
   function of the line number, applied once the global position of the
   record is known. *)
let parse_row ~cols ~conf_idx ~expected ~default_conf line :
    (Value.t list * float, int -> string) result =
  let fields = Array.of_list (parse_line line) in
  if Array.length fields <> expected then
    Error
      (fun lineno ->
        Printf.sprintf "line %d: expected %d fields, found %d" lineno expected
          (Array.length fields))
  else begin
    let* values =
      List.fold_left
        (fun acc (cname, ty, i) ->
          let* vs = acc in
          match Value.of_string_as ty fields.(i) with
          | Some v -> Ok (v :: vs)
          | None ->
            Error
              (fun lineno ->
                Printf.sprintf "line %d: cannot parse %S as %s for %s" lineno
                  fields.(i) (Value.ty_name ty) cname))
        (Ok []) cols
      |> Result.map List.rev
    in
    let* conf =
      match conf_idx with
      | None -> Ok default_conf
      | Some i -> (
        match float_of_string_opt (String.trim fields.(i)) with
        | Some c when c >= 0.0 && c <= 1.0 -> Ok c
        | _ ->
          Error
            (fun lineno ->
              Printf.sprintf "line %d: bad confidence %S" lineno fields.(i)))
    in
    Ok (values, conf)
  end

let expected_fields cols conf_idx =
  List.length cols + match conf_idx with Some _ -> 1 | None -> 0

(* Assemble the relation and its confidence list from parsed rows (in file
   order).  Tuple ids are positional, exactly as per-row insertion would
   have assigned them. *)
let assemble ~name ~schema rows =
  let tuples = List.map (fun (vs, _) -> Tuple.of_list vs) rows in
  let rel = Relation.of_tuples name schema tuples in
  let confs =
    List.mapi (fun i (_, c) -> (Lineage.Tid.make name i, c)) rows
  in
  (rel, confs)

let relation_of_string ~name ?(default_conf = 1.0) text =
  match split_lines text with
  | [] -> Error "empty CSV document"
  | header :: body ->
    let* cols, conf_idx = parse_header header in
    let schema = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) cols) in
    let expected = expected_fields cols conf_idx in
    let rec rows acc lineno = function
      | [] -> Ok (List.rev acc)
      | line :: rest -> (
        match parse_row ~cols ~conf_idx ~expected ~default_conf line with
        | Error err -> Error (err lineno)
        | Ok row -> rows (row :: acc) (lineno + 1) rest)
    in
    let* parsed = rows [] 2 body in
    Ok (assemble ~name ~schema parsed)

let load_into db ~name ?default_conf text =
  let* rel, confs = relation_of_string ~name ?default_conf text in
  let db = Database.add_relation db rel in
  let db =
    List.fold_left (fun db (tid, c) -> Database.seed_confidence db tid c) db confs
  in
  Ok db

(* Streaming file load: one pass over the channel, no whole-file string.
   Line accounting matches [split_lines]: blank lines are skipped without
   consuming a number, the first kept line is the header, body numbering
   starts at 2. *)
let load_file db ~name ?(default_conf = 1.0) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let next_kept () =
        let rec go () =
          match input_line ic with
          | exception End_of_file -> None
          | l ->
            let l = strip_cr l in
            if is_blank l then go () else Some l
        in
        go ()
      in
      match next_kept () with
      | None -> Error "empty CSV document"
      | Some header ->
        let* cols, conf_idx = parse_header header in
        let schema =
          Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) cols)
        in
        let expected = expected_fields cols conf_idx in
        let rec rows acc lineno =
          match next_kept () with
          | None -> Ok (List.rev acc)
          | Some line -> (
            match parse_row ~cols ~conf_idx ~expected ~default_conf line with
            | Error err -> Error (err lineno)
            | Ok row -> rows (row :: acc) (lineno + 1))
        in
        let* parsed = rows [] 2 in
        let rel, confs = assemble ~name ~schema parsed in
        let db = Database.add_relation db rel in
        Ok
          (List.fold_left
             (fun db (tid, c) -> Database.seed_confidence db tid c)
             db confs))

(* ------------------------------------------------------------------ *)
(* Parallel bulk ingest                                                *)
(* ------------------------------------------------------------------ *)

(* One chunk of the body, parsed independently: the number of kept (non
   blank) lines, the rows parsed before the first error, and the first
   error with its kept-line index local to the chunk. *)
type chunk_result = {
  kept : int;
  rows : (Value.t list * float) list; (* reverse order *)
  err : (int * (int -> string)) option;
}

let parse_chunk ~cols ~conf_idx ~expected ~default_conf text lo hi =
  let kept = ref 0 in
  let rows = ref [] in
  let err = ref None in
  let pos = ref lo in
  while !pos < hi && !err = None do
    let nl =
      match String.index_from_opt text !pos '\n' with
      | Some i when i < hi -> i
      | _ -> hi
    in
    let line = strip_cr (String.sub text !pos (nl - !pos)) in
    if not (is_blank line) then begin
      (match parse_row ~cols ~conf_idx ~expected ~default_conf line with
      | Ok row -> rows := row :: !rows
      | Error e -> err := Some (!kept, e));
      incr kept
    end;
    pos := nl + 1
  done;
  { kept = !kept; rows = !rows; err = !err }

(* Chunk boundaries aligned to record (line) starts: the nominal split
   points move forward to just past the next newline, so every record is
   parsed by exactly one chunk. *)
let chunk_ranges text lo n =
  let len = String.length text in
  let nominal = Array.init (n + 1) (fun i -> lo + (len - lo) * i / n) in
  let starts = Array.make (n + 1) len in
  starts.(0) <- lo;
  for i = 1 to n - 1 do
    let s =
      match String.index_from_opt text (min nominal.(i) (len - 1)) '\n' with
      | Some j -> j + 1
      | None -> len
    in
    (* never before the previous start: empty chunks are fine *)
    starts.(i) <- max s starts.(i - 1)
  done;
  starts.(n) <- len;
  Array.init n (fun i -> (starts.(i), starts.(i + 1)))

let load_string_bulk db ~name ?(default_conf = 1.0) ?jobs text =
  (* header: everything up to the first kept line *)
  let len = String.length text in
  let rec header_at pos =
    if pos >= len then None
    else
      let nl =
        match String.index_from_opt text pos '\n' with
        | Some i -> i
        | None -> len
      in
      let line = strip_cr (String.sub text pos (nl - pos)) in
      if is_blank line then header_at (nl + 1) else Some (line, nl + 1)
  in
  match header_at 0 with
  | None -> Error "empty CSV document"
  | Some (header, body_start) ->
    let* cols, conf_idx = parse_header header in
    let schema = Schema.of_list (List.map (fun (n, ty, _) -> (n, ty)) cols) in
    let expected = expected_fields cols conf_idx in
    let jobs = Exec.resolve_jobs ?jobs () in
    let chunks =
      if jobs <= 1 || len - body_start < 1 lsl 16 then 1 else jobs * 2
    in
    let ranges = chunk_ranges text body_start chunks in
    let results =
      Exec.with_pool_opt ~jobs (fun pool ->
          match pool with
          | Some p when chunks > 1 ->
            Exec.Pool.map_array ~chunk:1 p
              (fun (lo, hi) ->
                parse_chunk ~cols ~conf_idx ~expected ~default_conf text lo hi)
              ranges
          | _ ->
            Array.map
              (fun (lo, hi) ->
                parse_chunk ~cols ~conf_idx ~expected ~default_conf text lo hi)
              ranges)
    in
    (* first error in file order wins: chunks are in file order, and kept
       counts give each error its global line number *)
    let rec check i preceding =
      if i >= Array.length results then Ok ()
      else
        match results.(i).err with
        | Some (local, err) -> Error (err (2 + preceding + local))
        | None -> check (i + 1) (preceding + results.(i).kept)
    in
    let* () = check 0 0 in
    (* each chunk's rows are accumulated in reverse; walking the chunks
       last-to-first with rev_append restores global file order *)
    let rows = ref [] in
    for i = Array.length results - 1 downto 0 do
      rows := List.rev_append results.(i).rows !rows
    done;
    let rows = !rows in
    let tuples = List.map (fun (vs, _) -> Tuple.of_list vs) rows in
    let rel = Relation.of_tuples name schema tuples in
    let confs = Array.of_list (List.map snd rows) in
    Ok (Database.bulk_load db rel confs)

let load_file_bulk db ~name ?default_conf ?jobs path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  load_string_bulk db ~name ?default_conf ?jobs text

let to_string db rel =
  let schema = Relation.schema rel in
  let header =
    render_line
      (List.map
         (fun c ->
           Printf.sprintf "%s:%s" c.Schema.cname (Value.ty_name c.Schema.cty))
         (Schema.columns schema)
      @ [ confidence_col ^ ":real" ])
  in
  let body =
    List.map
      (fun (tid, tup) ->
        render_line
          (List.map Value.to_string (Array.to_list (Tuple.values tup))
          @ [ Printf.sprintf "%g" (Database.confidence db tid) ]))
      (Relation.tuples rel)
  in
  String.concat "\n" (header :: body) ^ "\n"
