(* Process-global monotonic stamp source.  Epoch stamps are unique across
   every database and view store in the process, so an equality check
   between a cached stamp and a live one can never confuse two values
   that merely happen to have seen the same number of mutations. *)

let counter = Atomic.make 1

let next () = Atomic.fetch_and_add counter 1
