module StrSet = Set.Make (String)

(* per-subplan safety bits: [ro] — every output row's lineage read-once;
   [pd] — distinct rows have pairwise-disjoint variable sets *)
type bits = { ro : bool; pd : bool }

let unsafe = { ro = false; pd = false }

let rels plan = StrSet.of_list (Algebra.base_relations plan)
let disjoint a b = StrSet.is_empty (StrSet.inter (rels a) (rels b))

let rec go (plan : Algebra.t) : bits =
  match plan with
  | Scan _ -> { ro = true; pd = true }
  (* per-row predicate: filters rows, lineage untouched *)
  | Select (_, p) -> go p
  (* membership events conjoin shared subquery lineage into every
     surviving row — never safe *)
  | Select_sub _ -> unsafe
  (* duplicate elimination merges collapsed rows with a disjunction:
     read-once iff the merged rows were read-once AND pairwise disjoint;
     the resulting groups partition the input rows, so disjointness is
     preserved too *)
  | Project (_, p) | Distinct p | Group_by (_, _, p) ->
    let b = go p in
    if b.ro && b.pd then { ro = true; pd = true } else unsafe
  (* join: sides over disjoint base relations cannot share variables, so
     the conjunction of two read-once rows is read-once; one left row
     may pair with many right rows, so row disjointness is lost *)
  | Join (_, a, b) ->
    let ba = go a and bb = go b in
    if ba.ro && bb.ro && disjoint a b then { ro = true; pd = false }
    else unsafe
  (* left join: a padded row negates the disjunction of its matching
     right lineages — that disjunction is read-once only if the right
     rows are pairwise disjoint *)
  | Left_join (_, a, b) ->
    let ba = go a and bb = go b in
    if ba.ro && bb.ro && bb.pd && disjoint a b then { ro = true; pd = false }
    else unsafe
  (* set operators pair/merge one row from each side: with disjoint
     relations and both sides {ro, pd}, every combined formula is
     read-once and the outputs stay disjoint *)
  | Union (a, b) | Intersect (a, b) | Diff (a, b) ->
    let ba = go a and bb = go b in
    if ba.ro && ba.pd && bb.ro && bb.pd && disjoint a b then
      { ro = true; pd = true }
    else unsafe
  (* lineage-transparent operators *)
  | Rename (_, p) | Order_by (_, p) | Limit (_, p) -> go p

let analyze plan = (go plan).ro
