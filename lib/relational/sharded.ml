(* Scatter/gather execution over a sharded database.  See the interface
   for the transparency contract; the short version: this module may only
   ever change *where* rows are evaluated, never what comes back. *)

let ( let* ) = Result.bind

(* The scatterable fragment grammar: a base-relation scan, optionally
   under a chain of predicate selections.  Both operators are row-local —
   each output row depends on exactly one stored row — so evaluating the
   fragment per shard and merging by row id reproduces the global result
   verbatim.  Project/Distinct (duplicate elimination splices lineage
   across rows in first-occurrence order), joins, set operations and
   aggregation all need the global row stream and stay above the gather.

   A scan of an unknown relation is not scatterable: the row engine's
   error message must come from the unsharded path. *)
let rec scatterable db plan =
  match plan with
  | Algebra.Scan name -> Database.mem_relation db name
  | Algebra.Select (_, p) -> scatterable db p
  | _ -> false

(* Rows of a scatterable fragment carry [Var tid] lineage (scans stamp
   it, selections preserve it), so the gather key is right in the row. *)
let row_id (r : Eval.row) =
  match r.Eval.lineage with
  | Lineage.Formula.Var tid -> tid.Lineage.Tid.row
  | _ -> assert false (* unreachable by the fragment grammar *)

(* K-way merge of per-shard row lists, each ascending in row id (shard
   views preserve global insertion order, and row ids are assigned
   monotonically), back into the global insertion order. *)
let merge (lists : Eval.row list array) =
  let heads = Array.map (fun l -> l) lists in
  let out = ref [] in
  let running = ref true in
  while !running do
    let best = ref (-1) in
    let best_row = ref max_int in
    Array.iteri
      (fun i l ->
        match l with
        | r :: _ when row_id r < !best_row ->
          best := i;
          best_row := row_id r
        | _ -> ())
      heads;
    match !best with
    | -1 -> running := false
    | i -> (
      match heads.(i) with
      | r :: rest ->
        out := r :: !out;
        heads.(i) <- rest
      | [] -> assert false)
  done;
  List.rev !out

(* Evaluate a scatterable fragment: one task per shard view (over the
   pool when one is supplied — per-shard results are independent, so the
   jobs count cannot change the merged output), then gather.  Each
   per-shard evaluation goes through {!Col_eval.run_rows}, so the
   columnar kernels serve sharded scans exactly as unsharded ones.

   If any shard fails, the fragment is re-run unsharded: the row engine
   reports the first failing row in global row order, which no single
   shard can determine locally. *)
let scatter ?pool db plan =
  let views = Array.init (Database.shard_count db) (Database.shard_view db) in
  let results =
    match pool with
    | Some p when Exec.Pool.jobs p > 1 ->
      Exec.Pool.map_array ~chunk:1 p
        (fun view -> Col_eval.run_rows view plan)
        views
    | _ -> Array.map (fun view -> Col_eval.run_rows view plan) views
  in
  if Array.exists Result.is_error results then Col_eval.run_rows db plan
  else Ok (merge (Array.map Result.get_ok results))

let run_rows ?pool db plan =
  if Database.shard_count db <= 1 then Col_eval.run_rows ?pool db plan
  else
    let rec drive db plan =
      if scatterable db plan then scatter ?pool db plan
      else Eval.run_rows_via drive db plan
    in
    drive db plan

let run ?pool db plan =
  let* schema = Algebra.output_schema db plan in
  let* rows = run_rows ?pool db plan in
  Ok { Eval.schema; rows }

(* Safe-plan confidence fast path, sharded: gather first, then one
   linear read-once pass per row — bitwise what {!Col_eval.run_conf}'s
   hybrid branch (and the ladder's read-once rung) computes. *)
let run_conf ?pool db plan =
  if Database.shard_count db <= 1 then Col_eval.run_conf ?pool db plan
  else if not (Lineage.Circuit.enabled () && Safe_plan.analyze plan) then
    let* res = run ?pool db plan in
    Ok (res, None)
  else
    let* res = run ?pool db plan in
    let p = Database.confidence_fn db in
    let confs =
      Array.of_list
        (List.map
           (fun (r : Eval.row) -> Lineage.Prob.confidence p r.Eval.lineage)
           res.Eval.rows)
    in
    Ok (res, Some confs)
