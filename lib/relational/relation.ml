module Tid = Lineage.Tid

type t = {
  name : string;
  schema : Schema.t;
  next_row : int;
  rows : Tuple.t Tid.Map.t;
  order : Tid.t list; (* reverse insertion order *)
}

let create name schema =
  { name; schema; next_row = 0; rows = Tid.Map.empty; order = [] }

let name r = r.name
let schema r = r.schema
let cardinality r = Tid.Map.cardinal r.rows

let insert r tup =
  if not (Tuple.conforms tup r.schema) then
    invalid_arg
      (Printf.sprintf "Relation.insert(%s): tuple %s does not conform to (%s)"
         r.name (Tuple.to_string tup)
         (Schema.to_string r.schema));
  let tid = Tid.make r.name r.next_row in
  ( {
      r with
      next_row = r.next_row + 1;
      rows = Tid.Map.add tid tup r.rows;
      order = tid :: r.order;
    },
    tid )

let insert_values r vs = insert r (Tuple.of_list vs)

let insert_all r tups =
  let r, tids =
    List.fold_left
      (fun (r, acc) tup ->
        let r, tid = insert r tup in
        (r, tid :: acc))
      (r, []) tups
  in
  (r, List.rev tids)

let of_tuples name schema tups =
  let rows, order, n =
    List.fold_left
      (fun (rows, order, i) tup ->
        if not (Tuple.conforms tup schema) then
          invalid_arg
            (Printf.sprintf
               "Relation.of_tuples(%s): tuple %s does not conform to (%s)" name
               (Tuple.to_string tup) (Schema.to_string schema));
        let tid = Tid.make name i in
        (Tid.Map.add tid tup rows, tid :: order, i + 1))
      (Tid.Map.empty, [], 0) tups
  in
  { name; schema; next_row = n; rows; order }

let delete r tid =
  if Tid.Map.mem tid r.rows then
    {
      r with
      rows = Tid.Map.remove tid r.rows;
      order = List.filter (fun t -> not (Tid.equal t tid)) r.order;
    }
  else r

let update r tid tup =
  if not (Tid.Map.mem tid r.rows) then
    invalid_arg
      (Printf.sprintf "Relation.update(%s): no tuple %s" r.name (Tid.to_string tid));
  if not (Tuple.conforms tup r.schema) then
    invalid_arg
      (Printf.sprintf "Relation.update(%s): tuple does not conform" r.name);
  { r with rows = Tid.Map.add tid tup r.rows }

let find r tid = Tid.Map.find_opt tid r.rows

(* One pass over the stored rows: each lands in [owner tid]'s bucket with
   its original id, so per-bucket insertion order is the global insertion
   order restricted to the bucket.  [tuples] yields ascending insertion
   order and [order] is kept newest-first, so prepending as we walk
   rebuilds each bucket's reverse-insertion list directly. *)
let partition_rows r ~count ~owner =
  let rows = Array.make count Tid.Map.empty in
  let order = Array.make count [] in
  List.iter
    (fun (tid, tup) ->
      let i = owner tid in
      rows.(i) <- Tid.Map.add tid tup rows.(i);
      order.(i) <- tid :: order.(i))
    (List.rev_map (fun tid -> (tid, Tid.Map.find tid r.rows)) r.order);
  Array.init count (fun i -> { r with rows = rows.(i); order = order.(i) })

let tuples r =
  List.rev_map (fun tid -> (tid, Tid.Map.find tid r.rows)) r.order

let iter f r = List.iter (fun (tid, tup) -> f tid tup) (tuples r)

let fold f init r =
  List.fold_left (fun acc (tid, tup) -> f acc tid tup) init (tuples r)

let to_string r =
  let headers = "tid" :: Schema.column_names r.schema in
  let body =
    List.map
      (fun (tid, tup) ->
        Tid.to_string tid
        :: List.map Value.to_string (Array.to_list (Tuple.values tup)))
      (tuples r)
  in
  let rows = headers :: body in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let line =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render_row cells =
    "|"
    ^ String.concat "|"
        (List.mapi
           (fun i cell ->
             Printf.sprintf " %-*s " widths.(i) cell)
           cells)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (r.name ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  Buffer.add_string buf (render_row headers ^ "\n");
  Buffer.add_string buf (line ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) body;
  Buffer.add_string buf line;
  Buffer.contents buf

let pp ppf r = Format.pp_print_string ppf (to_string r)
