(** Process-global epoch stamps for cache invalidation.

    {!Database} and {!Views} stamp every mutated copy with a fresh value
    from this counter.  Two properties matter to cache layers:

    - {b uniqueness}: no two mutations anywhere in the process share a
      stamp, so [cached_epoch = live_epoch] proves the cached snapshot
      and the live value are the {e same} immutable version — even
      across databases with divergent histories;
    - {b monotonicity}: along any chain of mutations stamps strictly
      increase, so "changes after stamp [s]" is well defined.

    The counter is an [Atomic] and safe to use from multiple domains. *)

val next : unit -> int
(** A fresh stamp, strictly greater than every stamp handed out before
    (within this process). *)
