module Formula = Lineage.Formula

type row = { tuple : Tuple.t; lineage : Formula.t }

type annotated = { schema : Schema.t; rows : row list }

let ( let* ) = Result.bind

(* Merge rows with equal tuples by OR-ing their lineage, preserving the
   first-occurrence order.  This implements set semantics. *)
(* Each group collects its members' lineages (newest first) and merges
   them with a single [Formula.disj] at the end — identical to folding
   [disj] pairwise per row ([disj] splices nested [Or]s and [dedup]
   keeps first occurrences either way), but linear in the group size
   instead of quadratic.  A single-member group keeps its raw lineage,
   exactly as the fold did. *)
let dedup_rows rows =
  let table = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun r ->
      let key = r.tuple in
      match Hashtbl.find_opt table (Tuple.hash key) with
      | None ->
        Hashtbl.add table (Tuple.hash key) [ (key, ref [ r.lineage ]) ];
        order := (key, Tuple.hash key) :: !order
      | Some cells -> (
        match List.find_opt (fun (t, _) -> Tuple.equal t key) cells with
        | Some (_, ls) -> ls := r.lineage :: !ls
        | None ->
          Hashtbl.replace table (Tuple.hash key)
            ((key, ref [ r.lineage ]) :: cells);
          order := (key, Tuple.hash key) :: !order))
    rows;
  List.rev_map
    (fun (key, h) ->
      let cells = Hashtbl.find table h in
      let _, ls = List.find (fun (t, _) -> Tuple.equal t key) cells in
      let lineage =
        match !ls with [ l ] -> l | ls -> Formula.disj (List.rev ls)
      in
      { tuple = key; lineage })
    !order

(* Find the merged lineage of [tup] among [rows], if present. *)
let find_lineage rows tup =
  List.fold_left
    (fun acc r ->
      if Tuple.equal r.tuple tup then
        match acc with
        | None -> Some r.lineage
        | Some l -> Some (Formula.disj [ l; r.lineage ])
      else acc)
    None rows

let eval_pred schema pred row =
  match Expr.eval_pred schema row.tuple pred with
  | Ok b -> Ok b
  | Error msg -> Error ("predicate error: " ^ msg)

let numeric_of_value = function
  | Value.Int i -> Some (float_of_int i)
  | Value.Float f -> Some f
  | _ -> None

let compute_agg db schema (a : Algebra.agg) members =
  (* SQL semantics: NULLs are ignored by aggregates; COUNT star counts rows.
     Expected aggregates weight members by the probability of their
     lineage. *)
  let member_prob r =
    Lineage.Prob.confidence (Database.confidence_fn db) r.lineage
  in
  match a.Algebra.fn with
  | Algebra.CountStar -> Ok (Value.Int (List.length members))
  | Algebra.Expected_count ->
    Ok (Value.Float (List.fold_left (fun acc r -> acc +. member_prob r) 0.0 members))
  | Algebra.Expected_sum -> (
    let arg = Option.get a.Algebra.arg in
    match Schema.find_index schema arg with
    | Error _ -> Error (Printf.sprintf "aggregate: unknown column %S" arg)
    | Ok i ->
      List.fold_left
        (fun acc r ->
          let ( let* ) = Result.bind in
          let* total = acc in
          match Tuple.get r.tuple i with
          | Value.Null -> Ok total
          | Value.Int n -> Ok (total +. (member_prob r *. float_of_int n))
          | Value.Float f -> Ok (total +. (member_prob r *. f))
          | v ->
            Error
              (Printf.sprintf "ESUM over non-numeric value %s" (Value.to_string v)))
        (Ok 0.0) members
      |> Result.map (fun total -> Value.Float total))
  | fn -> (
    let arg = Option.get a.Algebra.arg in
    match Schema.find_index schema arg with
    | Error _ -> Error (Printf.sprintf "aggregate: unknown column %S" arg)
    | Ok i ->
      let vals =
        List.filter_map
          (fun r ->
            match Tuple.get r.tuple i with Value.Null -> None | v -> Some v)
          members
      in
      (match fn with
      | Algebra.Count -> Ok (Value.Int (List.length vals))
      | Algebra.Min ->
        Ok
          (match vals with
          | [] -> Value.Null
          | v :: rest ->
            List.fold_left (fun m x -> if Value.compare x m < 0 then x else m) v rest)
      | Algebra.Max ->
        Ok
          (match vals with
          | [] -> Value.Null
          | v :: rest ->
            List.fold_left (fun m x -> if Value.compare x m > 0 then x else m) v rest)
      | Algebra.Sum | Algebra.Avg -> (
        match vals with
        | [] -> Ok Value.Null
        | _ -> (
          let all_int = List.for_all (function Value.Int _ -> true | _ -> false) vals in
          let nums = List.filter_map numeric_of_value vals in
          if List.length nums <> List.length vals then
            Error (Printf.sprintf "%s over non-numeric values" (Algebra.agg_fun_name fn))
          else
            let total = List.fold_left ( +. ) 0.0 nums in
            match fn with
            | Algebra.Sum ->
              if all_int then Ok (Value.Int (int_of_float total))
              else Ok (Value.Float total)
            | Algebra.Avg -> Ok (Value.Float (total /. float_of_int (List.length nums)))
            | _ -> assert false))
      | Algebra.CountStar | Algebra.Expected_count | Algebra.Expected_sum ->
        assert false))

(* The recursion over the plan is parametrized: [run_rows_via recurse]
   evaluates one operator, delegating every child evaluation to
   [recurse].  Tying the knot with [run_rows] itself gives the plain row
   engine; a hybrid evaluator (see {!Col_eval}) ties it with a function
   that intercepts vectorizable subtrees and falls back here for the
   rest, so both engines share one set of operator semantics. *)
let rec run db plan =
  let* schema = Algebra.output_schema db plan in
  let* rows = run_rows db plan in
  Ok { schema; rows }

and run_rows db plan = run_rows_via run_rows db plan

and run_rows_via recurse db plan =
  let run_rows = recurse in
  match plan with
  | Algebra.Scan name ->
    let r = Database.relation_exn db name in
    Ok
      (List.map
         (fun (tid, tup) -> { tuple = tup; lineage = Formula.var tid })
         (Relation.tuples r))
  | Algebra.Select (pred, p) ->
    let* schema = Algebra.output_schema db p in
    let* rows = run_rows db p in
    List.fold_left
      (fun acc row ->
        let* kept = acc in
        let* b = eval_pred schema pred row in
        Ok (if b then row :: kept else kept))
      (Ok []) rows
    |> Result.map List.rev
  | Algebra.Select_sub (cond, p) ->
    let* schema = Algebra.output_schema db p in
    let* rows = run_rows db p in
    (* each (uncorrelated) subquery is evaluated once and cached by the
       physical identity of its plan *)
    let cache : (Algebra.t * row list) list ref = ref [] in
    let sub_result sub =
      match List.find_opt (fun (p, _) -> p == sub) !cache with
      | Some (_, res) -> Ok res
      | None ->
        let* res = recurse db sub in
        cache := (sub, res) :: !cache;
        Ok res
    in
    (* membership formula of one outer row under [cond] *)
    let rec formula_of row cond =
      match cond with
      | Algebra.Pred e ->
        let* b = Expr.eval_pred schema row.tuple e in
        Ok (if b then Formula.tru else Formula.fls)
      | Algebra.In_sub (e, sub) -> (
        let* v =
          match Expr.eval schema row.tuple e with
          | Ok v -> Ok v
          | Error msg -> Error ("IN expression error: " ^ msg)
        in
        match v with
        | Value.Null -> Ok Formula.fls (* NULL never matches *)
        | v ->
          let* res = sub_result sub in
          let matches =
            List.filter (fun r -> Value.equal (Tuple.get r.tuple 0) v) res
          in
          Ok (Formula.disj (List.map (fun r -> r.lineage) matches)))
      | Algebra.Exists_sub sub ->
        let* res = sub_result sub in
        Ok (Formula.disj (List.map (fun r -> r.lineage) res))
      | Algebra.Not_c c ->
        let* f = formula_of row c in
        Ok (Formula.neg f)
      | Algebra.And_c (a, b) ->
        let* fa = formula_of row a in
        let* fb = formula_of row b in
        Ok (Formula.conj [ fa; fb ])
      | Algebra.Or_c (a, b) ->
        let* fa = formula_of row a in
        let* fb = formula_of row b in
        Ok (Formula.disj [ fa; fb ])
    in
    List.fold_left
      (fun acc row ->
        let* kept = acc in
        let* f = formula_of row cond in
        match Formula.simplify f with
        | Formula.False -> Ok kept
        | f -> Ok ({ row with lineage = Formula.conj [ row.lineage; f ] } :: kept))
      (Ok []) rows
    |> Result.map List.rev
  | Algebra.Project (cols, p) ->
    let* schema = Algebra.output_schema db p in
    let* rows = run_rows db p in
    let* _, idx =
      match Schema.project schema cols with
      | Ok x -> Ok x
      | Error (Schema.Not_found_col n) ->
        Error (Printf.sprintf "unknown column %S in projection" n)
      | Error (Schema.Ambiguous (n, cands)) ->
        Error
          (Printf.sprintf "ambiguous column %S (matches %s)" n
             (String.concat ", " cands))
    in
    Ok
      (dedup_rows
         (List.map
            (fun r -> { r with tuple = Tuple.project r.tuple idx })
            rows))
  | Algebra.Join (pred, a, b) ->
    let* sa = Algebra.output_schema db a in
    let* sb = Algebra.output_schema db b in
    let* s =
      match Schema.concat sa sb with
      | s -> Ok s
      | exception Invalid_argument msg -> Error msg
    in
    let* ra = run_rows db a in
    let* rb = run_rows db b in
    (* hash-join fast path for a single-equality predicate between the two
       sides; everything else falls back to the nested loop.  NULL keys
       never match (SQL equality). *)
    let equi_key =
      match pred with
      | Some (Expr.Cmp (Expr.Eq, Expr.Col x, Expr.Col y)) -> (
        match (Schema.find_index sa x, Schema.find_index sb y) with
        | Ok ia, Ok ib -> Some (ia, ib)
        | _ -> (
          match (Schema.find_index sa y, Schema.find_index sb x) with
          | Ok ia, Ok ib -> Some (ia, ib)
          | _ -> None))
      | _ -> None
    in
    (match equi_key with
    | Some (ia, ib) ->
      (* build on the right side, probe with the left to preserve the
         nested-loop output order (left-major) *)
      let table : (int, (Value.t * row) list) Hashtbl.t =
        Hashtbl.create (List.length rb)
      in
      List.iter
        (fun rowb ->
          let key = Tuple.get rowb.tuple ib in
          if not (Value.equal key Value.Null) then begin
            let h = Value.hash key in
            let existing = Option.value ~default:[] (Hashtbl.find_opt table h) in
            Hashtbl.replace table h (existing @ [ (key, rowb) ])
          end)
        rb;
      let out = ref [] in
      List.iter
        (fun rowa ->
          let key = Tuple.get rowa.tuple ia in
          if not (Value.equal key Value.Null) then
            List.iter
              (fun (k, rowb) ->
                if Value.equal k key then
                  out :=
                    {
                      tuple = Tuple.append rowa.tuple rowb.tuple;
                      lineage = Formula.conj [ rowa.lineage; rowb.lineage ];
                    }
                    :: !out)
              (Option.value ~default:[] (Hashtbl.find_opt table (Value.hash key))))
        ra;
      Ok (List.rev !out)
    | None ->
      let out = ref [] in
      let err = ref None in
      List.iter
        (fun rowa ->
          List.iter
            (fun rowb ->
              if !err = None then begin
                let tuple = Tuple.append rowa.tuple rowb.tuple in
                let lineage = Formula.conj [ rowa.lineage; rowb.lineage ] in
                match pred with
                | None -> out := { tuple; lineage } :: !out
                | Some e -> (
                  match Expr.eval_pred s tuple e with
                  | Ok true -> out := { tuple; lineage } :: !out
                  | Ok false -> ()
                  | Error msg -> err := Some ("join predicate error: " ^ msg))
              end)
            rb)
        ra;
      (match !err with Some msg -> Error msg | None -> Ok (List.rev !out)))
  | Algebra.Left_join (pred, a, b) ->
    let* sa = Algebra.output_schema db a in
    let* sb = Algebra.output_schema db b in
    let* s =
      match Schema.concat sa sb with
      | s -> Ok s
      | exception Invalid_argument msg -> Error msg
    in
    let* ra = run_rows db a in
    let* rb = run_rows db b in
    let nulls = Tuple.make (Array.make (Schema.arity sb) Value.Null) in
    let out = ref [] in
    let err = ref None in
    List.iter
      (fun rowa ->
        if !err = None then begin
          (* collect the matching right rows for this left row *)
          let matches = ref [] in
          List.iter
            (fun rowb ->
              if !err = None then begin
                let tuple = Tuple.append rowa.tuple rowb.tuple in
                match Expr.eval_pred s tuple pred with
                | Ok true -> matches := rowb :: !matches
                | Ok false -> ()
                | Error msg -> err := Some ("join predicate error: " ^ msg)
              end)
            rb;
          if !err = None then
            match List.rev !matches with
            | [] ->
              (* no matching right tuples exist at all: the padded row is
                 present exactly when the left row is *)
              out :=
                { tuple = Tuple.append rowa.tuple nulls; lineage = rowa.lineage }
                :: !out
            | ms ->
              List.iter
                (fun rowb ->
                  out :=
                    {
                      tuple = Tuple.append rowa.tuple rowb.tuple;
                      lineage = Formula.conj [ rowa.lineage; rowb.lineage ];
                    }
                    :: !out)
                ms;
              (* the padded row survives in worlds where the left row is
                 present but every matching right row is absent *)
              let none_match =
                Formula.neg (Formula.disj (List.map (fun r -> r.lineage) ms))
              in
              out :=
                {
                  tuple = Tuple.append rowa.tuple nulls;
                  lineage = Formula.conj [ rowa.lineage; none_match ];
                }
                :: !out
        end)
      ra;
    (match !err with Some msg -> Error msg | None -> Ok (List.rev !out))
  | Algebra.Union (a, b) ->
    let* ra = run_rows db a in
    let* rb = run_rows db b in
    Ok (dedup_rows (ra @ rb))
  | Algebra.Intersect (a, b) ->
    let* ra = run_rows db a in
    let* rb = run_rows db b in
    let ra = dedup_rows ra and rb = dedup_rows rb in
    Ok
      (List.filter_map
         (fun r ->
           match find_lineage rb r.tuple with
           | Some lb ->
             Some { r with lineage = Formula.conj [ r.lineage; lb ] }
           | None -> None)
         ra)
  | Algebra.Diff (a, b) ->
    let* ra = run_rows db a in
    let* rb = run_rows db b in
    let ra = dedup_rows ra and rb = dedup_rows rb in
    Ok
      (List.map
         (fun r ->
           match find_lineage rb r.tuple with
           | Some lb ->
             { r with lineage = Formula.conj [ r.lineage; Formula.neg lb ] }
           | None -> r)
         ra)
  | Algebra.Rename (_, p) -> run_rows db p
  | Algebra.Distinct p ->
    let* rows = run_rows db p in
    Ok (dedup_rows rows)
  | Algebra.Order_by (keys, p) ->
    let* schema = Algebra.output_schema db p in
    let* rows = run_rows db p in
    let* key_idx =
      List.fold_left
        (fun acc (c, o) ->
          let* ks = acc in
          match Schema.find_index schema c with
          | Ok i -> Ok ((i, o) :: ks)
          | Error _ -> Error (Printf.sprintf "ORDER BY: unknown column %S" c))
        (Ok []) keys
      |> Result.map List.rev
    in
    let cmp r1 r2 =
      let rec go = function
        | [] -> 0
        | (i, o) :: rest ->
          let c = Value.compare (Tuple.get r1.tuple i) (Tuple.get r2.tuple i) in
          let c = match o with Algebra.Asc -> c | Algebra.Desc -> -c in
          if c <> 0 then c else go rest
      in
      go key_idx
    in
    Ok (List.stable_sort cmp rows)
  | Algebra.Limit (n, p) ->
    let* rows = run_rows db p in
    Ok (List.filteri (fun i _ -> i < n) rows)
  | Algebra.Group_by (keys, aggs, p) ->
    let* schema = Algebra.output_schema db p in
    let* rows = run_rows db p in
    let* key_idx =
      List.fold_left
        (fun acc c ->
          let* ks = acc in
          match Schema.find_index schema c with
          | Ok i -> Ok (i :: ks)
          | Error _ -> Error (Printf.sprintf "GROUP BY: unknown column %S" c))
        (Ok []) keys
      |> Result.map (fun l -> Array.of_list (List.rev l))
    in
    (* group rows by key tuple, preserving first-appearance order *)
    let groups : (Tuple.t * row list ref) list ref = ref [] in
    List.iter
      (fun r ->
        let key = Tuple.project r.tuple key_idx in
        match List.find_opt (fun (k, _) -> Tuple.equal k key) !groups with
        | Some (_, members) -> members := r :: !members
        | None -> groups := !groups @ [ (key, ref [ r ]) ])
      rows;
    List.fold_left
      (fun acc (key, members) ->
        let* out = acc in
        let members = List.rev !members in
        let* agg_vals =
          List.fold_left
            (fun acc a ->
              let* vs = acc in
              let* v = compute_agg db schema a members in
              Ok (v :: vs))
            (Ok []) aggs
          |> Result.map List.rev
        in
        let tuple = Tuple.append key (Tuple.of_list agg_vals) in
        let lineage = Formula.disj (List.map (fun r -> r.lineage) members) in
        Ok (out @ [ { tuple; lineage } ]))
      (Ok []) !groups

let run_exn db plan =
  match run db plan with Ok r -> r | Error msg -> failwith ("Eval.run: " ^ msg)

let confidence db row =
  Lineage.Prob.confidence (Database.confidence_fn db) row.lineage

let with_confidence db res =
  List.map (fun r -> (r, confidence db r)) res.rows

(* Safe-plan fast path: when the static analysis proves every row's
   lineage read-once (and the circuit fast path is on), confidences are
   computed inline with the linear product evaluator — the ladder, the
   class cache, and all their bookkeeping are skipped.  The values are
   bitwise what the ladder's read-once rung would return. *)
let run_conf db plan =
  let* res = run db plan in
  if Lineage.Circuit.enabled () && Safe_plan.analyze plan then
    Ok (res, Some (Array.of_list (List.map (confidence db) res.rows)))
  else Ok (res, None)

let to_string ?max_rows res =
  let headers = Schema.column_names res.schema @ [ "lineage" ] in
  let all = res.rows in
  let shown, elided =
    match max_rows with
    | Some n when List.length all > n ->
      (List.filteri (fun i _ -> i < n) all, List.length all - n)
    | _ -> (all, 0)
  in
  let body =
    List.map
      (fun r ->
        List.map Value.to_string (Array.to_list (Tuple.values r.tuple))
        @ [ Formula.to_string r.lineage ])
      shown
  in
  let rows = headers :: body in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let line =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render cells =
    "|"
    ^ String.concat "|"
        (List.mapi (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell) cells)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line ^ "\n" ^ render headers ^ "\n" ^ line ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render r ^ "\n")) body;
  Buffer.add_string buf line;
  if elided > 0 then
    Buffer.add_string buf (Printf.sprintf "\n... %d more row(s)" elided);
  Buffer.contents buf
