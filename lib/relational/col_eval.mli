(** Vectorized (batch-at-a-time) plan evaluation over {!Colbatch}.

    The hybrid evaluator: plan subtrees made of vectorizable operators —
    [Scan], [Select] with a compilable predicate, [Project], [Distinct],
    [Limit], [Rename] — run as column kernels over cached scan batches;
    everything else (joins, set operations, aggregation, subqueries,
    ordering) falls back to the row engine through {!Eval.run_rows_via},
    which evaluates one operator and delegates children back here.  Both
    engines therefore share one set of operator semantics, and results
    are bit-identical by construction plus the compiler's conservatism:

    - a predicate is compiled only when {e no} row could make the row
      engine fail (comparisons are same-class with columns resolved,
      LIKE is over a string column, …) — anything that could raise a
      type error is declined so the fallback reproduces the exact error;
    - integer values beyond 2{^53} make {!Colbatch.of_relation} decline
      the whole relation, keeping exact [Int.compare] semantics in the
      float comparison domain;
    - three-valued logic uses byte masks (0 false / 1 true / 2 unknown),
      and selection keeps definitely-true rows only, as in SQL WHERE.

    Mask filling is chunked over an {!Exec.Pool} when one is supplied
    (disjoint row ranges, so results are independent of the jobs count).

    Scan batches are cached per relation name, keyed by the database's
    structural epoch, in a small process-global table; confidence updates
    do not invalidate them (lineage and values are confidence-independent
    — {!scan_batch} refreshes the confidence column on demand).

    Set [PCQE_COLUMNAR=0] (or [off]/[false]/[no]) to disable the
    vectorized path entirely; {!run} then behaves exactly like
    {!Eval.run}. *)

val enabled : unit -> bool
(** Whether the columnar path is on (the [PCQE_COLUMNAR] gate). *)

val vectorizes : Database.t -> Algebra.t -> bool
(** [vectorizes db plan] is [true] when the {e whole} plan compiles to
    column kernels (no row-engine fallback at the root). *)

val run :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.annotated, string) result
(** Drop-in replacement for {!Eval.run}: same results, same errors.
    [pool] parallelizes predicate mask filling over row chunks. *)

val run_rows :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.row list, string) result
(** {!run} without the output schema. *)

val run_conf :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.annotated * float array option, string) result
(** Columnar counterpart of {!Eval.run_conf}: evaluates [plan] and, when
    the static {!Safe_plan} analysis proves it safe (and
    {!Lineage.Circuit.enabled}), returns per-row confidences computed
    during batch evaluation — for fully vectorized pipelines the values
    come straight from the cached confidence column (one array read per
    row, no formula walk); dedup and hybrid paths use the linear
    read-once evaluator.  [None] means the ladder must be consulted. *)

val scan_batch : Database.t -> string -> Colbatch.t option
(** The cached columnar image of a base relation with its confidence
    column refreshed to the database's current confidence epoch, or
    [None] for unknown/declined relations.  Used by ranking helpers
    (top-K by confidence) and benchmarks. *)

val clear_cache : unit -> unit
(** Drop all cached scan batches (tests and benchmarks). *)
