(** Scatter/gather plan evaluation over a sharded {!Database}.

    Scan/filter fragments of a plan — a base-relation scan under any
    chain of predicate selections — are evaluated independently against
    each shard's view ({!Database.shard_view}), in parallel over an
    {!Exec.Pool} when one is supplied, and gathered back in global row
    order (shard views preserve insertion order and row ids are
    monotone, so a k-way merge by row id reconstructs it exactly).
    Every operator above the gather — duplicate-eliminating projection,
    joins, set operations, grouping — runs on the global row stream
    through {!Eval.run_rows_via}, unchanged.

    {b Transparency contract}: answers, lineage, and error messages are
    bit-identical to the unsharded evaluator at any (shards, jobs)
    combination.  Fragments whose per-shard evaluation fails are re-run
    unsharded so even error strings (first failing row in global order)
    match.  With [shard_count db <= 1] every entry point delegates
    straight to {!Col_eval} — the sharded engine costs nothing unless
    sharding was requested. *)

val run :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.annotated, string) result
(** Drop-in replacement for {!Col_eval.run} (and {!Eval.run}): same
    results, same errors, scatter/gather underneath when the database
    has more than one shard. *)

val run_rows :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.row list, string) result
(** {!run} without the output schema. *)

val run_conf :
  ?pool:Exec.Pool.t ->
  Database.t ->
  Algebra.t ->
  (Eval.annotated * float array option, string) result
(** Sharded counterpart of {!Col_eval.run_conf}: evaluation as {!run},
    plus per-row confidences when the static {!Safe_plan} analysis
    proves the plan safe (and {!Lineage.Circuit.enabled}) — bitwise the
    ladder's read-once values.  [None] means the caller must price the
    ladder as before. *)
