module Tid = Lineage.Tid
module StrMap = Map.Make (String)

(* The confidence change log is bounded: callers that fall behind by more
   than this many mutations get [None] from [changed_since] and must
   invalidate wholesale.  The same capacity applies independently to each
   shard's log, which is why a multi-shard database keeps targeted
   invalidation alive under write volumes that overflow a single log. *)
let conf_log_capacity = 256

(* Per-shard epoch state.  Every shard owns its own structural/confidence
   stamp pair plus a bounded change log restricted to the tuples it owns;
   stamps come from the same process-global {!Epoch} counter as the
   database-wide ones, so equality is still exact version identity. *)
type shard = {
  sh_structural : int;
  sh_confidence : int;
  sh_log : (int * Tid.t list) list; (* newest-first, shard-owned tids only *)
  sh_floor : int; (* largest stamp dropped from [sh_log]; 0 = none *)
}

type t = {
  relations : Relation.t StrMap.t;
  confidences : float Tid.Map.t;
  caps : float Tid.Map.t;
  structural_epoch : int;
      (* advances on schema/tuple mutation: cached plans and cached
         evaluation results keyed on this stamp *)
  confidence_epoch : int;
      (* advances on confidence/cap mutation: cached per-formula
         confidences keyed on this stamp *)
  conf_log : (int * Tid.t list) list;
      (* newest-first: (stamp, tuples whose confidence changed at that
         stamp); bounded to [conf_log_capacity] entries *)
  conf_log_floor : int;
      (* largest stamp ever dropped from the log (0 = nothing dropped):
         history at or below it is unrecoverable *)
  shards : shard array; (* length >= 1; length 1 = unsharded *)
  partition : Relation.t StrMap.t array option Atomic.t;
      (* memoized per-shard relation maps, recomputed lazily after each
         structural mutation.  Confidence-only copies share the cell —
         their relation maps are physically identical, so the memoized
         value is valid for every copy that can see it. *)
}

let fresh_partition () = Atomic.make None

let empty_shard =
  { sh_structural = 0; sh_confidence = 0; sh_log = []; sh_floor = 0 }

let empty =
  {
    relations = StrMap.empty;
    confidences = Tid.Map.empty;
    caps = Tid.Map.empty;
    structural_epoch = 0;
    confidence_epoch = 0;
    conf_log = [];
    conf_log_floor = 0;
    shards = [| empty_shard |];
    partition = fresh_partition ();
  }

let structural_epoch db = db.structural_epoch
let confidence_epoch db = db.confidence_epoch
let shard_count db = Array.length db.shards

(* Deterministic hash routing: a pure function of the tuple id and the
   shard count, identical across processes and runs (no randomized
   hashing), so a re-opened database routes every tuple to the same
   shard. *)
let shard_of ~shards (tid : Tid.t) =
  if shards <= 1 then 0
  else
    let h = Hashtbl.hash tid.Tid.rel lxor (tid.Tid.row * 0x9e3779b1) in
    (h land max_int) mod shards

let shard_of_tid db tid = shard_of ~shards:(Array.length db.shards) tid
let structural_vector db = Array.map (fun s -> s.sh_structural) db.shards
let confidence_vector db = Array.map (fun s -> s.sh_confidence) db.shards

(* [only = Some i] stamps just the owning shard (a row landed there; the
   other shards' views are untouched, so their caches stay valid);
   [None] stamps every shard (relation-level mutation). *)
let bump_structural ?only db =
  let shards =
    Array.mapi
      (fun i s ->
        match only with
        | Some j when j <> i -> s
        | _ -> { s with sh_structural = Epoch.next () })
      db.shards
  in
  {
    db with
    structural_epoch = Epoch.next ();
    shards;
    partition = fresh_partition ();
  }

let push_log ~log ~floor stamp tids =
  let log = (stamp, tids) :: log in
  let rec take n = function
    | [] -> ([], None)
    | (stamp, _) :: _ when n = 0 -> ([], Some stamp)
    | entry :: rest ->
      let kept, dropped = take (n - 1) rest in
      (entry :: kept, dropped)
  in
  let log, dropped = take conf_log_capacity log in
  (log, match dropped with Some s -> max s floor | None -> floor)

let bump_confidence db tids =
  let stamp = Epoch.next () in
  let conf_log, conf_log_floor =
    push_log ~log:db.conf_log ~floor:db.conf_log_floor stamp tids
  in
  (* route the dirty tuples to their owning shards: each touched shard
     gets its own stamp and one log entry listing only its tuples, so a
     per-shard cache falling behind on shard [i] never pays for traffic
     that only ever dirtied shard [j] *)
  let count = Array.length db.shards in
  let by_shard = Array.make count [] in
  List.iter
    (fun tid ->
      let i = shard_of ~shards:count tid in
      by_shard.(i) <- tid :: by_shard.(i))
    tids;
  let shards =
    Array.mapi
      (fun i s ->
        match by_shard.(i) with
        | [] -> s
        | rev ->
          let stamp = Epoch.next () in
          let sh_log, sh_floor =
            push_log ~log:s.sh_log ~floor:s.sh_floor stamp (List.rev rev)
          in
          { s with sh_confidence = stamp; sh_log; sh_floor })
      db.shards
  in
  { db with confidence_epoch = stamp; conf_log; conf_log_floor; shards }

(* [since] must be a stamp the logged history actually passed through —
   the current epoch, a stamp recorded in the log, or 0 (the empty
   state, ancestor of every chain) with nothing dropped.  A stamp from
   a divergent history (a sibling copy mutated independently) is not
   found, and the caller must invalidate wholesale. *)
let log_changed_since ~current ~log ~floor ~since =
  if since = current then Some Tid.Set.empty
  else if since < floor then None
  else
    let rec collect acc = function
      | [] -> if (since = 0 && floor = 0) || since = floor then Some acc else None
      | (stamp, _) :: _ when stamp = since -> Some acc
      | (stamp, _) :: _ when stamp < since -> None
      | (_, tids) :: rest ->
        collect
          (List.fold_left (fun acc tid -> Tid.Set.add tid acc) acc tids)
          rest
    in
    collect Tid.Set.empty log

let changed_since db ~since =
  log_changed_since ~current:db.confidence_epoch ~log:db.conf_log
    ~floor:db.conf_log_floor ~since

let shard_changed_since db ~shard ~since =
  let s = db.shards.(shard) in
  log_changed_since ~current:s.sh_confidence ~log:s.sh_log ~floor:s.sh_floor
    ~since

let with_shards db n =
  if n < 1 then
    invalid_arg (Printf.sprintf "Database.with_shards: shard count %d < 1" n);
  if n = Array.length db.shards then db
  else
    let shards =
      Array.init n (fun _ ->
          (* fresh shards carry no per-shard history: the floor equals the
             starting confidence stamp, so any cache synced against the
             old layout flushes wholesale instead of trusting a log that
             never saw the re-partition *)
          let sc = Epoch.next () in
          {
            sh_structural = Epoch.next ();
            sh_confidence = sc;
            sh_log = [];
            sh_floor = sc;
          })
    in
    { db with shards; partition = fresh_partition () }

(* ------------------------------------------------------------------ *)
(* Shard views                                                         *)
(* ------------------------------------------------------------------ *)

let compute_partition relations ~count =
  let owner tid = shard_of ~shards:count tid in
  let parts = Array.make count StrMap.empty in
  StrMap.iter
    (fun name r ->
      let rs = Relation.partition_rows r ~count ~owner in
      Array.iteri (fun i ri -> parts.(i) <- StrMap.add name ri parts.(i)) rs)
    relations;
  parts

let partition db =
  match Atomic.get db.partition with
  | Some p -> p
  | None ->
    let count = Array.length db.shards in
    let p =
      if count = 1 then [| db.relations |]
      else compute_partition db.relations ~count
    in
    (* idempotent publish: racing writers compute the same value from the
       same immutable relation maps *)
    Atomic.set db.partition (Some p);
    p

let shard_view db i =
  let count = Array.length db.shards in
  if i < 0 || i >= count then
    invalid_arg
      (Printf.sprintf "Database.shard_view: shard %d outside [0,%d)" i count);
  if count = 1 then db
  else
    let p = partition db in
    let s = db.shards.(i) in
    {
      relations = p.(i);
      (* the full confidence/cap tables: entries for foreign tuples are
         unreachable from this view's lineage, and sharing the maps keeps
         view construction O(1) past the memoized partition *)
      confidences = db.confidences;
      caps = db.caps;
      structural_epoch = s.sh_structural;
      confidence_epoch = s.sh_confidence;
      conf_log = s.sh_log;
      conf_log_floor = s.sh_floor;
      shards = [| s |];
      partition = Atomic.make (Some [| p.(i) |]);
    }

let shard_tuples db =
  Array.map
    (fun m -> StrMap.fold (fun _ r acc -> acc + Relation.cardinality r) m 0)
    (partition db)

(* ------------------------------------------------------------------ *)
(* Relations and mutators                                              *)
(* ------------------------------------------------------------------ *)

let add_relation db r =
  bump_structural
    { db with relations = StrMap.add (Relation.name r) r db.relations }

let relation db name = StrMap.find_opt name db.relations

let relation_exn db name =
  match relation db name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database: unknown relation %S" name)

let relation_names db = List.map fst (StrMap.bindings db.relations)
let mem_relation db name = StrMap.mem name db.relations

let check_conf what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Database: %s %g outside [0,1]" what p)

let insert db rel_name vs ~conf =
  check_conf "confidence" conf;
  let r = relation_exn db rel_name in
  let r, tid = Relation.insert_values r vs in
  let db =
    {
      db with
      relations = StrMap.add rel_name r db.relations;
      confidences = Tid.Map.add tid conf db.confidences;
    }
  in
  let only = shard_of_tid db tid in
  (bump_confidence (bump_structural ~only db) [ tid ], tid)

let seed_confidence db tid p =
  check_conf "confidence" p;
  let exists =
    match relation db tid.Tid.rel with
    | Some r -> Relation.find r tid <> None
    | None -> false
  in
  if not exists then
    invalid_arg
      (Printf.sprintf "Database.seed_confidence: tuple %s not stored"
         (Tid.to_string tid));
  bump_confidence
    { db with confidences = Tid.Map.add tid p db.confidences }
    [ tid ]

let bulk_load db r confs =
  let name = Relation.name r in
  let n = Relation.cardinality r in
  if Array.length confs <> n then
    invalid_arg
      (Printf.sprintf "Database.bulk_load(%s): %d confidences for %d tuples"
         name (Array.length confs) n);
  Array.iter (check_conf "confidence") confs;
  (* one structural bump and one confidence bump for the whole load (the
     per-tuple [insert] path bumps both epochs per row); the change-log
     entries list every loaded tuple — one entry per owning shard — so
     [changed_since] and [shard_changed_since] stay truthful when an
     existing relation is replaced *)
  let tids = List.init n (Tid.make name) in
  let confidences =
    List.fold_left
      (fun m tid -> Tid.Map.add tid confs.(tid.Tid.row) m)
      db.confidences tids
  in
  let had = Atomic.get db.partition in
  let db' =
    bump_structural
      { db with relations = StrMap.add name r db.relations; confidences }
  in
  let count = Array.length db'.shards in
  if count > 1 then begin
    (* route the loaded rows directly to their owning shards in one pass,
       extending (or building) the partition in place of a later lazy
       re-partitioning scan of the whole database *)
    let parts_r =
      Relation.partition_rows r ~count ~owner:(shard_of ~shards:count)
    in
    let base =
      match had with
      | Some old when Array.length old = count -> old
      | _ -> compute_partition (StrMap.remove name db.relations) ~count
    in
    let seeded = Array.mapi (fun i m -> StrMap.add name parts_r.(i) m) base in
    Atomic.set db'.partition (Some seeded)
  end;
  bump_confidence db' tids

let confidence db tid =
  Option.value ~default:0.0 (Tid.Map.find_opt tid db.confidences)

let confidence_cap db tid =
  Option.value ~default:1.0 (Tid.Map.find_opt tid db.caps)

let set_confidence db tid p =
  check_conf "confidence" p;
  if not (Tid.Map.mem tid db.confidences) then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: unknown tuple %s"
         (Tid.to_string tid));
  let cap = confidence_cap db tid in
  if p > cap +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: %g exceeds cap %g of %s" p cap
         (Tid.to_string tid));
  bump_confidence
    { db with confidences = Tid.Map.add tid (Float.min p cap) db.confidences }
    [ tid ]

let set_confidence_cap db tid cap =
  check_conf "cap" cap;
  let current = confidence db tid in
  if cap < current -. 1e-12 then
    invalid_arg
      (Printf.sprintf
         "Database.set_confidence_cap: cap %g below current confidence %g" cap
         current);
  (* caps feed strategy finding, not stored confidences, but bumping the
     confidence epoch (with the touched tuple) keeps every cache layer
     honest at the cost of one targeted invalidation *)
  bump_confidence { db with caps = Tid.Map.add tid cap db.caps } [ tid ]

let confidence_fn db tid = confidence db tid

let all_confidences db = Tid.Map.bindings db.confidences

let apply_increments db targets =
  List.fold_left
    (fun db (tid, target) ->
      let current = confidence db tid in
      if target < current -. 1e-9 then
        invalid_arg
          (Printf.sprintf
             "Database.apply_increments: target %g below current %g for %s"
             target current (Tid.to_string tid))
      else
        let cap = confidence_cap db tid in
        set_confidence db tid (Float.min target cap))
    db targets
