module Tid = Lineage.Tid
module StrMap = Map.Make (String)

(* The confidence change log is bounded: callers that fall behind by more
   than this many mutations get [None] from [changed_since] and must
   invalidate wholesale. *)
let conf_log_capacity = 256

type t = {
  relations : Relation.t StrMap.t;
  confidences : float Tid.Map.t;
  caps : float Tid.Map.t;
  structural_epoch : int;
      (* advances on schema/tuple mutation: cached plans and cached
         evaluation results keyed on this stamp *)
  confidence_epoch : int;
      (* advances on confidence/cap mutation: cached per-formula
         confidences keyed on this stamp *)
  conf_log : (int * Tid.t list) list;
      (* newest-first: (stamp, tuples whose confidence changed at that
         stamp); bounded to [conf_log_capacity] entries *)
  conf_log_floor : int;
      (* largest stamp ever dropped from the log (0 = nothing dropped):
         history at or below it is unrecoverable *)
}

let empty =
  {
    relations = StrMap.empty;
    confidences = Tid.Map.empty;
    caps = Tid.Map.empty;
    structural_epoch = 0;
    confidence_epoch = 0;
    conf_log = [];
    conf_log_floor = 0;
  }

let structural_epoch db = db.structural_epoch
let confidence_epoch db = db.confidence_epoch

let bump_structural db = { db with structural_epoch = Epoch.next () }

let bump_confidence db tids =
  let stamp = Epoch.next () in
  let log = (stamp, tids) :: db.conf_log in
  let rec take n = function
    | [] -> ([], None)
    | (stamp, _) :: _ when n = 0 -> ([], Some stamp)
    | entry :: rest ->
      let kept, dropped = take (n - 1) rest in
      (entry :: kept, dropped)
  in
  let log, dropped = take conf_log_capacity log in
  {
    db with
    confidence_epoch = stamp;
    conf_log = log;
    conf_log_floor =
      (match dropped with
      | Some s -> max s db.conf_log_floor
      | None -> db.conf_log_floor);
  }

let changed_since db ~since =
  if since = db.confidence_epoch then Some Tid.Set.empty
  else if since < db.conf_log_floor then None
  else
    (* [since] must be a stamp this database actually passed through —
       the current epoch, a stamp recorded in the log, or 0 (the empty
       database, ancestor of every chain) with nothing dropped.  A stamp
       from a divergent history (a sibling copy mutated independently) is
       not found, and the caller must invalidate wholesale. *)
    let rec collect acc = function
      | [] ->
        if (since = 0 && db.conf_log_floor = 0) || since = db.conf_log_floor
        then Some acc
        else None
      | (stamp, _) :: _ when stamp = since -> Some acc
      | (stamp, _) :: _ when stamp < since -> None
      | (_, tids) :: rest ->
        collect
          (List.fold_left (fun acc tid -> Tid.Set.add tid acc) acc tids)
          rest
    in
    collect Tid.Set.empty db.conf_log

let add_relation db r =
  bump_structural
    { db with relations = StrMap.add (Relation.name r) r db.relations }

let relation db name = StrMap.find_opt name db.relations

let relation_exn db name =
  match relation db name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Database: unknown relation %S" name)

let relation_names db = List.map fst (StrMap.bindings db.relations)
let mem_relation db name = StrMap.mem name db.relations

let check_conf what p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Database: %s %g outside [0,1]" what p)

let insert db rel_name vs ~conf =
  check_conf "confidence" conf;
  let r = relation_exn db rel_name in
  let r, tid = Relation.insert_values r vs in
  let db =
    {
      db with
      relations = StrMap.add rel_name r db.relations;
      confidences = Tid.Map.add tid conf db.confidences;
    }
  in
  (bump_confidence (bump_structural db) [ tid ], tid)

let seed_confidence db tid p =
  check_conf "confidence" p;
  let exists =
    match relation db tid.Tid.rel with
    | Some r -> Relation.find r tid <> None
    | None -> false
  in
  if not exists then
    invalid_arg
      (Printf.sprintf "Database.seed_confidence: tuple %s not stored"
         (Tid.to_string tid));
  bump_confidence { db with confidences = Tid.Map.add tid p db.confidences } [ tid ]

let bulk_load db r confs =
  let name = Relation.name r in
  let n = Relation.cardinality r in
  if Array.length confs <> n then
    invalid_arg
      (Printf.sprintf
         "Database.bulk_load(%s): %d confidences for %d tuples" name
         (Array.length confs) n);
  Array.iter (check_conf "confidence") confs;
  (* one structural bump and one confidence bump for the whole load (the
     per-tuple [insert] path bumps both epochs per row); the change-log
     entry lists every loaded tuple so [changed_since] stays truthful
     when an existing relation is replaced *)
  let tids = List.init n (Tid.make name) in
  let confidences =
    List.fold_left
      (fun m tid -> Tid.Map.add tid confs.(tid.Tid.row) m)
      db.confidences tids
  in
  bump_confidence
    (bump_structural
       { db with relations = StrMap.add name r db.relations; confidences })
    tids

let confidence db tid =
  Option.value ~default:0.0 (Tid.Map.find_opt tid db.confidences)

let confidence_cap db tid =
  Option.value ~default:1.0 (Tid.Map.find_opt tid db.caps)

let set_confidence db tid p =
  check_conf "confidence" p;
  if not (Tid.Map.mem tid db.confidences) then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: unknown tuple %s"
         (Tid.to_string tid));
  let cap = confidence_cap db tid in
  if p > cap +. 1e-12 then
    invalid_arg
      (Printf.sprintf "Database.set_confidence: %g exceeds cap %g of %s" p cap
         (Tid.to_string tid));
  bump_confidence
    { db with confidences = Tid.Map.add tid (Float.min p cap) db.confidences }
    [ tid ]

let set_confidence_cap db tid cap =
  check_conf "cap" cap;
  let current = confidence db tid in
  if cap < current -. 1e-12 then
    invalid_arg
      (Printf.sprintf
         "Database.set_confidence_cap: cap %g below current confidence %g" cap
         current);
  (* caps feed strategy finding, not stored confidences, but bumping the
     confidence epoch (with the touched tuple) keeps every cache layer
     honest at the cost of one targeted invalidation *)
  bump_confidence { db with caps = Tid.Map.add tid cap db.caps } [ tid ]

let confidence_fn db tid = confidence db tid

let all_confidences db = Tid.Map.bindings db.confidences

let apply_increments db targets =
  List.fold_left
    (fun db (tid, target) ->
      let current = confidence db tid in
      if target < current -. 1e-9 then
        invalid_arg
          (Printf.sprintf
             "Database.apply_increments: target %g below current %g for %s"
             target current (Tid.to_string tid))
      else
        let cap = confidence_cap db tid in
        set_confidence db tid (Float.min target cap))
    db targets
