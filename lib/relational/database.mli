(** Databases: a collection of named relations plus the confidence table.

    The confidence table implements the paper's first framework element:
    every base tuple carries a confidence value in [\[0,1\]], and optionally
    a cap — the maximum confidence the tuple can ever reach ("1 or its
    maximum possible confidence level", §4.1).  The data-quality-improvement
    component raises confidences through {!set_confidence}, respecting the
    cap. *)

type t

val empty : t

(** {1 Epochs}

    Two stamp counters (see {!Epoch}) let cache layers distinguish "the
    plan is still valid" from "the confidences are still valid":

    - the {e structural} epoch advances on schema/tuple mutation
      ({!add_relation}, {!insert}) — cached plans and cached evaluation
      results key on it;
    - the {e confidence} epoch advances on confidence/cap mutation
      ({!insert}, {!seed_confidence}, {!set_confidence},
      {!set_confidence_cap}, {!apply_increments}) — cached per-formula
      confidences key on it.

    Stamps are process-globally unique: equality with a cached stamp
    proves the cached snapshot is this exact version. *)

val structural_epoch : t -> int
val confidence_epoch : t -> int

val changed_since : t -> since:int -> Lineage.Tid.Set.t option
(** [changed_since db ~since] is the set of tuples whose confidence (or
    cap) changed after the confidence epoch [since] — the targeted
    invalidation set for a cache synced at [since].  [None] when the
    answer is unknowable and the caller must invalidate wholesale:
    [since] is older than the bounded change log reaches, or is not a
    stamp of this database's history (a divergent sibling copy).
    [Some Tid.Set.empty] iff the cache is already current. *)

(** {1 Sharding}

    A database is horizontally partitioned into [N >= 1] shards by a
    deterministic hash of each tuple id ({!shard_of}).  Each shard owns
    its {e own} structural/confidence epoch pair and its own bounded
    change log restricted to the tuples it owns; the database-wide
    scalar epochs above keep advancing exactly as before, so unsharded
    callers are unaffected.  A mutation stamps only the shards it
    touches: one principal's confidence bump on shard [i] never moves
    shard [j]'s epochs, which is what lets per-shard caches skip
    invalidation entirely for foreign traffic.  [N = 1] (the default
    everywhere) is the unsharded database, bit for bit. *)

val with_shards : t -> int -> t
(** [with_shards db n] re-partitions [db] over [n] shards.  Contents are
    unchanged — answers, lineage, and solver outcomes are identical at
    any shard count — but every shard receives fresh epoch stamps and an
    empty change log whose floor blocks reuse, so caches pinned against
    the old layout revalidate from scratch.
    @raise Invalid_argument when [n < 1]. *)

val shard_count : t -> int

val shard_of : shards:int -> Lineage.Tid.t -> int
(** Pure deterministic routing: the shard owning a tuple id under a
    given shard count.  Stable across runs and processes. *)

val shard_of_tid : t -> Lineage.Tid.t -> int
(** [shard_of ~shards:(shard_count db)]. *)

val structural_vector : t -> int array
(** Per-shard structural epochs, index-aligned with shard numbers.  The
    composite stamp prepared queries pin: equality (as a vector) proves
    no shard's row set moved. *)

val confidence_vector : t -> int array
(** Per-shard confidence epochs — the composite stamp confidence caches
    revalidate against, one slot at a time. *)

val shard_changed_since :
  t -> shard:int -> since:int -> Lineage.Tid.Set.t option
(** {!changed_since} against one shard's log: the dirty tuples owned by
    [shard] since its confidence epoch [since].  Same contract —
    [None] demands a wholesale flush {e of that shard's classes only}. *)

val shard_view : t -> int -> t
(** [shard_view db i] is a read-only single-shard database holding
    exactly the rows shard [i] owns (every relation name stays visible,
    possibly empty), with the shard's epochs as its scalar epochs —
    scatter execution evaluates plan fragments against these views.
    Views are cheap: the row partition is memoized per structural epoch
    and the confidence tables are shared.  Mutating a view is not
    meaningful; route mutations through the parent database. *)

val shard_tuples : t -> int array
(** Per-shard stored-row counts (across all relations) — the
    [pcqe_shard_tuples] gauge. *)

val add_relation : t -> Relation.t -> t
(** [add_relation db r] adds or replaces the relation named [Relation.name r]. *)

val relation : t -> string -> Relation.t option
val relation_exn : t -> string -> Relation.t
(** @raise Invalid_argument when the relation is unknown. *)

val relation_names : t -> string list
val mem_relation : t -> string -> bool

val insert : t -> string -> Value.t list -> conf:float -> t * Lineage.Tid.t
(** [insert db rel vs ~conf] inserts a row into [rel] with initial
    confidence [conf].
    @raise Invalid_argument on unknown relation, non-conforming tuple, or
    confidence outside [\[0,1\]]. *)

val seed_confidence : t -> Lineage.Tid.t -> float -> t
(** [seed_confidence db tid p] records the initial confidence of a tuple
    that was inserted into a relation outside {!insert} (bulk loaders).
    Unlike {!set_confidence} it does not require an existing entry.
    @raise Invalid_argument if [p] is outside [\[0,1\]] or the tuple does
    not exist in its relation. *)

val bulk_load : t -> Relation.t -> float array -> t
(** [bulk_load db r confs] adds (or replaces) relation [r] wholesale,
    seeding the confidence of the tuple with id [i] from [confs.(i)] —
    the bulk-ingest counterpart of per-row {!insert}.  Advances the
    structural and confidence epochs {e once} each instead of per tuple;
    the confidence change-log entry lists every loaded tuple, so
    {!changed_since} remains truthful when an existing relation is
    replaced.
    @raise Invalid_argument if [Array.length confs] differs from the
    relation's cardinality or any confidence is outside [\[0,1\]]. *)

val confidence : t -> Lineage.Tid.t -> float
(** [confidence db tid] is the stored confidence (0.0 for unknown tuples —
    an absent tuple is never present in any possible world). *)

val confidence_cap : t -> Lineage.Tid.t -> float
(** Maximum confidence this tuple can be raised to (default 1.0). *)

val set_confidence : t -> Lineage.Tid.t -> float -> t
(** [set_confidence db tid p] updates the confidence.
    @raise Invalid_argument if [p] is outside [\[0, cap\]] or [tid] has no
    confidence entry. *)

val set_confidence_cap : t -> Lineage.Tid.t -> float -> t
(** @raise Invalid_argument if the cap is outside [\[current confidence, 1\]]. *)

val confidence_fn : t -> Lineage.Tid.t -> float
(** [confidence_fn db] is {!confidence} partially applied — the assignment
    passed to {!Lineage.Prob.confidence}. *)

val all_confidences : t -> (Lineage.Tid.t * float) list

val apply_increments : t -> (Lineage.Tid.t * float) list -> t
(** [apply_increments db deltas] raises each listed tuple's confidence to
    the given *target* value (not a delta); values are clamped to the
    tuple's cap and must not decrease existing confidence.
    @raise Invalid_argument on a decreasing update. *)
