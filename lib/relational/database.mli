(** Databases: a collection of named relations plus the confidence table.

    The confidence table implements the paper's first framework element:
    every base tuple carries a confidence value in [\[0,1\]], and optionally
    a cap — the maximum confidence the tuple can ever reach ("1 or its
    maximum possible confidence level", §4.1).  The data-quality-improvement
    component raises confidences through {!set_confidence}, respecting the
    cap. *)

type t

val empty : t

(** {1 Epochs}

    Two stamp counters (see {!Epoch}) let cache layers distinguish "the
    plan is still valid" from "the confidences are still valid":

    - the {e structural} epoch advances on schema/tuple mutation
      ({!add_relation}, {!insert}) — cached plans and cached evaluation
      results key on it;
    - the {e confidence} epoch advances on confidence/cap mutation
      ({!insert}, {!seed_confidence}, {!set_confidence},
      {!set_confidence_cap}, {!apply_increments}) — cached per-formula
      confidences key on it.

    Stamps are process-globally unique: equality with a cached stamp
    proves the cached snapshot is this exact version. *)

val structural_epoch : t -> int
val confidence_epoch : t -> int

val changed_since : t -> since:int -> Lineage.Tid.Set.t option
(** [changed_since db ~since] is the set of tuples whose confidence (or
    cap) changed after the confidence epoch [since] — the targeted
    invalidation set for a cache synced at [since].  [None] when the
    answer is unknowable and the caller must invalidate wholesale:
    [since] is older than the bounded change log reaches, or is not a
    stamp of this database's history (a divergent sibling copy).
    [Some Tid.Set.empty] iff the cache is already current. *)

val add_relation : t -> Relation.t -> t
(** [add_relation db r] adds or replaces the relation named [Relation.name r]. *)

val relation : t -> string -> Relation.t option
val relation_exn : t -> string -> Relation.t
(** @raise Invalid_argument when the relation is unknown. *)

val relation_names : t -> string list
val mem_relation : t -> string -> bool

val insert : t -> string -> Value.t list -> conf:float -> t * Lineage.Tid.t
(** [insert db rel vs ~conf] inserts a row into [rel] with initial
    confidence [conf].
    @raise Invalid_argument on unknown relation, non-conforming tuple, or
    confidence outside [\[0,1\]]. *)

val seed_confidence : t -> Lineage.Tid.t -> float -> t
(** [seed_confidence db tid p] records the initial confidence of a tuple
    that was inserted into a relation outside {!insert} (bulk loaders).
    Unlike {!set_confidence} it does not require an existing entry.
    @raise Invalid_argument if [p] is outside [\[0,1\]] or the tuple does
    not exist in its relation. *)

val bulk_load : t -> Relation.t -> float array -> t
(** [bulk_load db r confs] adds (or replaces) relation [r] wholesale,
    seeding the confidence of the tuple with id [i] from [confs.(i)] —
    the bulk-ingest counterpart of per-row {!insert}.  Advances the
    structural and confidence epochs {e once} each instead of per tuple;
    the confidence change-log entry lists every loaded tuple, so
    {!changed_since} remains truthful when an existing relation is
    replaced.
    @raise Invalid_argument if [Array.length confs] differs from the
    relation's cardinality or any confidence is outside [\[0,1\]]. *)

val confidence : t -> Lineage.Tid.t -> float
(** [confidence db tid] is the stored confidence (0.0 for unknown tuples —
    an absent tuple is never present in any possible world). *)

val confidence_cap : t -> Lineage.Tid.t -> float
(** Maximum confidence this tuple can be raised to (default 1.0). *)

val set_confidence : t -> Lineage.Tid.t -> float -> t
(** [set_confidence db tid p] updates the confidence.
    @raise Invalid_argument if [p] is outside [\[0, cap\]] or [tid] has no
    confidence entry. *)

val set_confidence_cap : t -> Lineage.Tid.t -> float -> t
(** @raise Invalid_argument if the cap is outside [\[current confidence, 1\]]. *)

val confidence_fn : t -> Lineage.Tid.t -> float
(** [confidence_fn db] is {!confidence} partially applied — the assignment
    passed to {!Lineage.Prob.confidence}. *)

val all_confidences : t -> (Lineage.Tid.t * float) list

val apply_increments : t -> (Lineage.Tid.t * float) list -> t
(** [apply_increments db deltas] raises each listed tuple's confidence to
    the given *target* value (not a delta); values are clamped to the
    tuple's cap and must not decrease existing confidence.
    @raise Invalid_argument on a decreasing update. *)
