(** Lineage-carrying query evaluation (the paper's second element).

    Evaluating a plan yields an {!annotated} relation: each result tuple is
    paired with a boolean lineage formula over base-tuple identifiers.  The
    confidence of a result is the probability that its lineage holds when
    every base tuple [t] is independently present with probability equal to
    its stored confidence — see {!confidence} and {!Lineage.Prob}.

    Duplicate elimination (projection, union, DISTINCT, grouping) merges
    lineage with disjunction; joins conjoin lineage; difference conjoins the
    negation of the matching right-side lineage. *)

type row = { tuple : Tuple.t; lineage : Lineage.Formula.t }

type annotated = { schema : Schema.t; rows : row list }

val run : Database.t -> Algebra.t -> (annotated, string) result
(** [run db plan] evaluates [plan].  Errors carry a human-readable message
    (unknown relation/column, type error in an expression, …). *)

val run_rows : Database.t -> Algebra.t -> (row list, string) result
(** [run db plan] without the output schema. *)

val run_rows_via :
  (Database.t -> Algebra.t -> (row list, string) result) ->
  Database.t ->
  Algebra.t ->
  (row list, string) result
(** [run_rows_via recurse db plan] evaluates the top operator of [plan]
    with the row engine, delegating every child (and subquery)
    evaluation to [recurse].  [run_rows] is [run_rows_via] tied with
    itself; a hybrid evaluator ties it with a function that intercepts
    the subtrees it can run vectorized (see {!Col_eval}) — both engines
    then share one set of operator semantics by construction. *)

val run_exn : Database.t -> Algebra.t -> annotated
(** @raise Failure on evaluation error. *)

val confidence : Database.t -> row -> float
(** [confidence db row] computes the exact confidence of one result row
    from its lineage and the database's confidence table. *)

val with_confidence : Database.t -> annotated -> (row * float) list
(** [with_confidence db res] pairs every row with its confidence. *)

val run_conf :
  Database.t -> Algebra.t -> (annotated * float array option, string) result
(** [run_conf db plan] evaluates [plan] and, when {!Safe_plan.analyze}
    proves the plan safe (and {!Lineage.Circuit.enabled}), also returns
    the per-row confidences (index-aligned with [rows]) computed inline
    by the linear read-once evaluator — bitwise the values the
    degradation ladder would produce, at none of its cost.  [None]
    means the caller must consult the ladder as before. *)

val to_string : ?max_rows:int -> annotated -> string
(** ASCII rendering including a lineage column; [max_rows] truncates long
    results (default: unlimited). *)
