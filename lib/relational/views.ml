module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

type t = { defs : Algebra.t StrMap.t; epoch : int }

let empty = { defs = StrMap.empty; epoch = 0 }

let epoch views = views.epoch

let find views name = StrMap.find_opt name views.defs
let names views = List.map fst (StrMap.bindings views.defs)

let remove views name =
  if StrMap.mem name views.defs then
    { defs = StrMap.remove name views.defs; epoch = Epoch.next () }
  else views

(* All view names reachable from [plan] through the store. *)
let rec reachable defs seen plan =
  List.fold_left
    (fun seen name ->
      if StrSet.mem name seen then seen
      else
        match StrMap.find_opt name defs with
        | None -> seen
        | Some definition -> reachable defs (StrSet.add name seen) definition)
    seen
    (Algebra.base_relations plan)

let add views name plan =
  (* adding [name := plan] is safe iff [name] is not reachable from [plan]
     through the store as it will be after the update *)
  let candidate = StrMap.add name plan views.defs in
  let reached = reachable candidate StrSet.empty plan in
  if StrSet.mem name reached then
    Error (Printf.sprintf "view %S would be recursive" name)
  else Ok { defs = candidate; epoch = Epoch.next () }

let expand views plan =
  let rec go expanding plan =
    match plan with
    | Algebra.Scan name -> (
      match StrMap.find_opt name views.defs with
      | Some definition when not (StrSet.mem name expanding) ->
        Algebra.Rename (name, go (StrSet.add name expanding) definition)
      | _ -> plan)
    | Algebra.Select (p, x) -> Algebra.Select (p, go expanding x)
    | Algebra.Select_sub (c, x) ->
      let rec go_cond c =
        match c with
        | Algebra.Pred _ -> c
        | Algebra.In_sub (e, sub) -> Algebra.In_sub (e, go expanding sub)
        | Algebra.Exists_sub sub -> Algebra.Exists_sub (go expanding sub)
        | Algebra.Not_c c -> Algebra.Not_c (go_cond c)
        | Algebra.And_c (a, b) -> Algebra.And_c (go_cond a, go_cond b)
        | Algebra.Or_c (a, b) -> Algebra.Or_c (go_cond a, go_cond b)
      in
      Algebra.Select_sub (go_cond c, go expanding x)
    | Algebra.Project (cols, x) -> Algebra.Project (cols, go expanding x)
    | Algebra.Join (c, a, b) -> Algebra.Join (c, go expanding a, go expanding b)
    | Algebra.Left_join (c, a, b) ->
      Algebra.Left_join (c, go expanding a, go expanding b)
    | Algebra.Union (a, b) -> Algebra.Union (go expanding a, go expanding b)
    | Algebra.Intersect (a, b) ->
      Algebra.Intersect (go expanding a, go expanding b)
    | Algebra.Diff (a, b) -> Algebra.Diff (go expanding a, go expanding b)
    | Algebra.Rename (alias, x) -> Algebra.Rename (alias, go expanding x)
    | Algebra.Distinct x -> Algebra.Distinct (go expanding x)
    | Algebra.Order_by (keys, x) -> Algebra.Order_by (keys, go expanding x)
    | Algebra.Limit (n, x) -> Algebra.Limit (n, go expanding x)
    | Algebra.Group_by (keys, aggs, x) ->
      Algebra.Group_by (keys, aggs, go expanding x)
  in
  go StrSet.empty plan

let of_sql views ~name sql =
  match Sql_planner.compile sql with
  | Ok plan -> add views name plan
  | Error msg -> Error msg
