(** Synthetic instance generator reproducing the paper's §5.1 setting
    (Table 4).

    - base tuples get "a randomly generated confidence value around 0.1"
      (uniform in [0.05, 0.15]) and a random cost function from the
      binomial / exponential / logarithmic families;
    - each intermediate result tuple is associated with [bases_per_result]
      base tuples drawn from the pool, combined by a random monotone ∧/∨
      DAG ({!Dag_query});
    - the required count follows the paper's [(θ - θ')*n] with θ' the
      fraction of results initially above β.

    The number of result tuples is not stated in the paper; we derive it
    from an average {e coverage} (how many results each base tuple touches,
    default 2.0): [n = max 4 (round (coverage * k / bases_per_result))]. *)

type params = {
  data_size : int;  (** k — distinct base tuples (Table 4 row 1) *)
  bases_per_result : int;  (** Table 4 row 2; default 5 *)
  delta : float;  (** Table 4 row 3; default 0.1 *)
  theta : float;  (** Table 4 row 4; default 0.5 *)
  beta : float;  (** Table 4 row 5; default 0.6 *)
  coverage : float;  (** avg results per base tuple; default 2.0 *)
  p0_lo : float;  (** default 0.05 *)
  p0_hi : float;  (** default 0.15 *)
}

val default_params : params
(** Table 4 defaults: 10K base tuples, 5 per result, δ=0.1, θ=50%, β=0.6. *)

val table4 : params -> (string * string) list
(** Parameter table (name, value) as printed by the bench harness. *)

val instance :
  ?pool:Exec.Pool.t -> ?params:params -> ?incremental:bool -> seed:int ->
  unit -> Optimize.Problem.t
(** [instance ~seed ()] generates one deterministic instance.  With
    [pool], per-result lineage DAGs are generated in parallel from
    pre-split generator streams (fixed chunk size), so the instance is
    {e identical} to the sequential one for the same seed.  [incremental]
    is forwarded to {!Optimize.Problem.make} — the incremental-vs-baseline
    bench panel generates the same seed twice, once per setting. *)

val small_instance :
  ?num_bases:int -> ?num_results:int -> ?required:int -> ?beta:float ->
  ?bases_per_result:int -> ?incremental:bool -> seed:int -> unit ->
  Optimize.Problem.t
(** The Fig. 11 (a)/(d) micro-instance: 10 base tuples, 8 results of 5
    base tuples each, at least 3 results above β=0.6. *)
