module Sm = Prng.Splitmix
module Tid = Lineage.Tid

type params = {
  data_size : int;
  bases_per_result : int;
  delta : float;
  theta : float;
  beta : float;
  coverage : float;
  p0_lo : float;
  p0_hi : float;
}

let default_params =
  {
    data_size = 10_000;
    bases_per_result = 5;
    delta = 0.1;
    theta = 0.5;
    beta = 0.6;
    coverage = 2.0;
    p0_lo = 0.05;
    p0_hi = 0.15;
  }

let table4 p =
  [
    ("Data size", string_of_int p.data_size);
    ("No. of base tuples per result", string_of_int p.bases_per_result);
    ("Confidence increment step (delta)", Printf.sprintf "%g" p.delta);
    ("Percentage of required results (theta)", Printf.sprintf "%g%%" (100.0 *. p.theta));
    ("Confidence level (beta)", Printf.sprintf "%g" p.beta);
  ]

let make_bases rng ~count ~p0_lo ~p0_hi =
  List.init count (fun i ->
      {
        Optimize.Problem.tid = Tid.make "synth" i;
        p0 = Sm.float_in rng p0_lo p0_hi;
        cap = 1.0;
        cost = Cost.Cost_model.random rng;
      })

(* Formulas are generated in fixed-size chunks, each from its own stream
   split off [rng] before any work starts.  The chunk size is a constant
   (not a function of the pool size) so the generated instance is a pure
   function of the seed — identical with no pool, or a pool of any size. *)
let formula_chunk = 256

let make_formulas ?pool rng ~bases ~num_results ~bases_per_result =
  let tids = Array.of_list (List.map (fun b -> b.Optimize.Problem.tid) bases) in
  let k = Array.length tids in
  if num_results <= 0 then []
  else begin
    let num_chunks = (num_results + formula_chunk - 1) / formula_chunk in
    let rngs = Sm.split_n rng num_chunks in
    let run_chunk ci =
      let rng = rngs.(ci) in
      let n = min formula_chunk (num_results - (ci * formula_chunk)) in
      let out = Array.make n Lineage.Formula.True in
      for j = 0 to n - 1 do
        let chosen =
          Sm.sample_without_replacement rng (min bases_per_result k) k
        in
        let leaves = Array.to_list (Array.map (fun i -> tids.(i)) chosen) in
        out.(j) <- Dag_query.random_monotone_tree rng leaves
      done;
      out
    in
    let chunks =
      match pool with
      | Some pool when Exec.Pool.jobs pool > 1 ->
        Exec.Pool.map_array ~chunk:1 pool run_chunk
          (Array.init num_chunks Fun.id)
      | _ ->
        (* explicit loop: each chunk has a pre-forked stream, but keep the
           evaluation order obvious anyway *)
        let arr = Array.make num_chunks [||] in
        for ci = 0 to num_chunks - 1 do
          arr.(ci) <- run_chunk ci
        done;
        arr
    in
    List.concat_map Array.to_list (Array.to_list chunks)
  end

let required_of ~theta ~beta bases formulas =
  (* theta' = fraction initially above beta; required = (theta - theta')*n *)
  let conf_table = Tid.Table.create (List.length bases) in
  List.iter
    (fun b -> Tid.Table.add conf_table b.Optimize.Problem.tid b.Optimize.Problem.p0)
    bases;
  let lookup tid = Option.value ~default:0.0 (Tid.Table.find_opt conf_table tid) in
  let n = List.length formulas in
  let satisfied =
    List.fold_left
      (fun acc f -> if Lineage.Prob.confidence lookup f > beta then acc + 1 else acc)
      0 formulas
  in
  let want = int_of_float (ceil (theta *. float_of_int n)) in
  max 0 (min (n - satisfied) (want - satisfied))

let instance ?pool ?(params = default_params) ?incremental ~seed () =
  let rng = Sm.of_int seed in
  let num_results =
    max 4
      (int_of_float
         (Float.round
            (params.coverage *. float_of_int params.data_size
            /. float_of_int params.bases_per_result)))
  in
  let bases =
    make_bases rng ~count:params.data_size ~p0_lo:params.p0_lo
      ~p0_hi:params.p0_hi
  in
  let formulas =
    make_formulas ?pool rng ~bases ~num_results
      ~bases_per_result:params.bases_per_result
  in
  let required = required_of ~theta:params.theta ~beta:params.beta bases formulas in
  Optimize.Problem.make_exn ~delta:params.delta ?incremental ~beta:params.beta
    ~required ~bases ~formulas ()

let small_instance ?(num_bases = 10) ?(num_results = 8) ?(required = 3)
    ?(beta = 0.6) ?(bases_per_result = 5) ?incremental ~seed () =
  let rng = Sm.of_int seed in
  let bases = make_bases rng ~count:num_bases ~p0_lo:0.05 ~p0_hi:0.15 in
  let formulas =
    make_formulas rng ~bases ~num_results ~bases_per_result
  in
  Optimize.Problem.make_exn ~delta:0.1 ?incremental ~beta ~required ~bases
    ~formulas ()
