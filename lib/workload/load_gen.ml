type outcome =
  | Answered of { degraded : bool }
  | Shed
  | Timed_out
  | Failed of string

type params = {
  principals : int;
  requests_per_principal : int;
  think_ms : float;
  zipf_s : float;
  seed : int;
}

let default_params =
  {
    principals = 4;
    requests_per_principal = 25;
    think_ms = 0.0;
    zipf_s = 1.1;
    seed = 42;
  }

type report = {
  total : int;
  answered : int;
  degraded : int;
  shed : int;
  timed_out : int;
  failed : int;
  elapsed_s : float;
  qps : float;
  latency : Obs.Hdr.t;
}

let report_to_string r =
  Printf.sprintf
    "total %d  answered %d (degraded %d)  shed %d  timed_out %d  failed %d  \
     %.1f qps  p50 %.2fms  p99 %.2fms"
    r.total r.answered r.degraded r.shed r.timed_out r.failed r.qps
    (Obs.Hdr.quantile r.latency 0.5 *. 1000.0)
    (Obs.Hdr.quantile r.latency 0.99 *. 1000.0)

(* Inverse-CDF draw over 1/(k+1)^s weights; n is small (a query mix),
   so the cumulative table is rebuilt per call site once. *)
let zipf_cdf ~s ~n =
  let w = Array.init n (fun k -> 1.0 /. Float.pow (float_of_int (k + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let pick_from_cdf cdf u =
  let n = Array.length cdf in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if u <= cdf.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 (n - 1)

let zipf_pick rng ~s ~n =
  if n <= 0 then invalid_arg "Load_gen.zipf_pick: n must be > 0";
  if s <= 0.0 then Prng.Splitmix.int rng n
  else pick_from_cdf (zipf_cdf ~s ~n) (Prng.Splitmix.float rng 1.0)

type thread_result = {
  mutable outcomes : (outcome * float) list;  (* reverse request order *)
}

let run params ~queries ~user_of ~exec =
  if params.principals <= 0 then invalid_arg "Load_gen.run: principals <= 0";
  if Array.length queries = 0 then invalid_arg "Load_gen.run: empty query mix";
  let n_q = Array.length queries in
  let cdf = if params.zipf_s > 0.0 then Some (zipf_cdf ~s:params.zipf_s ~n:n_q) else None in
  let rngs =
    Prng.Splitmix.split_n (Prng.Splitmix.of_int params.seed) params.principals
  in
  let results =
    Array.init params.principals (fun _ -> { outcomes = [] })
  in
  let principal i () =
    let rng = rngs.(i) in
    let user = user_of i in
    for _ = 1 to params.requests_per_principal do
      let q =
        match cdf with
        | Some cdf -> pick_from_cdf cdf (Prng.Splitmix.float rng 1.0)
        | None -> Prng.Splitmix.int rng n_q
      in
      let t0 = Unix.gettimeofday () in
      let out =
        try exec ~principal:i ~user ~sql:queries.(q)
        with exn -> Failed (Printexc.to_string exn)
      in
      let dt = Unix.gettimeofday () -. t0 in
      results.(i).outcomes <- (out, dt) :: results.(i).outcomes;
      if params.think_ms > 0.0 then
        Unix.sleepf
          (Prng.Splitmix.exponential rng ~rate:(1000.0 /. params.think_ms))
    done
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.init params.principals (fun i -> Thread.create (principal i) ())
  in
  Array.iter Thread.join threads;
  let elapsed_s = Unix.gettimeofday () -. t0 in
  (* merge in principal order so the report is stable given the same
     per-principal outcome streams *)
  let latency = Obs.Hdr.create () in
  let answered = ref 0
  and degraded = ref 0
  and shed = ref 0
  and timed_out = ref 0
  and failed = ref 0
  and total = ref 0 in
  Array.iter
    (fun r ->
      List.iter
        (fun (out, dt) ->
          incr total;
          Obs.Hdr.observe latency dt;
          match out with
          | Answered { degraded = d } ->
            incr answered;
            if d then incr degraded
          | Shed -> incr shed
          | Timed_out -> incr timed_out
          | Failed _ -> incr failed)
        (List.rev r.outcomes))
    results;
  {
    total = !total;
    answered = !answered;
    degraded = !degraded;
    shed = !shed;
    timed_out = !timed_out;
    failed = !failed;
    elapsed_s;
    qps = (if elapsed_s > 0.0 then float_of_int !total /. elapsed_s else 0.0);
    latency;
  }
