(** Closed-loop load generator: N concurrent principals, each issuing a
    zipf-skewed query mix with think time between requests.

    Transport-agnostic — the caller supplies [exec] (typically a
    [Net.Client] call per principal, or an in-process session for
    baselines), and the generator owns the principal threads, the
    deterministic per-principal query/think-time streams (seeded
    {!Prng.Splitmix}, split per principal), and the merged report.
    Latencies go into a bounded {!Obs.Hdr} sketch; outcome counts and
    sustained QPS come back in the {!report}. *)

type outcome =
  | Answered of { degraded : bool }
  | Shed
  | Timed_out
  | Failed of string

type params = {
  principals : int;  (** concurrent closed-loop clients *)
  requests_per_principal : int;
  think_ms : float;
      (** mean think time between a response and the next request,
          exponentially distributed (0 = none) *)
  zipf_s : float;
      (** skew of the query mix: rank [k] drawn ∝ 1/k^s (0 = uniform) *)
  seed : int;
}

val default_params : params
(** 4 principals × 25 requests, no think time, zipf 1.1, seed 42. *)

type report = {
  total : int;
  answered : int;
  degraded : int;  (** of [answered]: deadline-degraded responses *)
  shed : int;
  timed_out : int;
  failed : int;
  elapsed_s : float;
  qps : float;  (** terminal outcomes per second of wall time *)
  latency : Obs.Hdr.t;  (** per-request latency in seconds, all outcomes *)
}

val report_to_string : report -> string

val zipf_pick : Prng.Splitmix.t -> s:float -> n:int -> int
(** Draw a rank in [0, n): rank [k] with probability ∝ 1/(k+1)^s. *)

val run :
  params ->
  queries:string array ->
  user_of:(int -> string) ->
  exec:(principal:int -> user:string -> sql:string -> outcome) ->
  report
(** Run the closed loop.  [exec] is called concurrently from
    [params.principals] threads (one per principal, each with its own
    client); it must be thread-safe across principals.
    @raise Invalid_argument on an empty [queries] or
    [principals <= 0]. *)
