(** Pluggable consumers of a finished observation set.

    A sink receives a flat stream of {!record}s — spans (flattened with
    their root-to-leaf path), counters, and histogram summaries — so it
    never needs to understand tracer internals.  Three implementations:

    - {!memory} collects records into a list (tests);
    - {!report} renders a human-readable summary into a buffer;
    - {!jsonl} writes one JSON object per line (machine-readable; the
      line protocol round-trips through {!record_of_json}). *)

type record =
  | Span of {
      path : string list;  (** root-to-leaf span names *)
      start : float;
      elapsed : float;
      alloc : float;  (** bytes allocated while the span was open *)
      attrs : (string * string) list;
    }
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of { name : string; stats : Metrics.histogram }

type t = { emit : record -> unit; close : unit -> unit }

val memory : unit -> t * (unit -> record list)
(** A sink plus a function returning everything emitted so far, in emit
    order. *)

val report : Buffer.t -> t
(** Human-readable rendering appended to the buffer. *)

val jsonl : out_channel -> t
(** One JSON object per record per line.  [close] flushes but does not
    close the channel (the caller owns it). *)

val drain : ?trace:Trace.t -> ?metrics:Metrics.t -> t -> unit
(** Walk the tracer's completed spans (preorder) and the registry's
    counters, gauges and histograms into the sink, then [close] it. *)

val record_to_json : record -> string
(** Single-line JSON encoding of one record.  Every control character in
    string fields (tab, NUL, …, DEL) is escaped, so the emitted line is
    valid single-line JSON for arbitrary byte strings. *)

val record_of_json : string -> (record, string) result
(** Inverse of {!record_to_json} (used by tests and external readers of
    the line protocol).  Lenient about the [alloc] span field so lines
    written by older versions still parse. *)
