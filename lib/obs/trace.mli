(** Nested span tracing.

    A tracer records a forest of named spans.  [span t name f] opens a
    span, runs [f], and closes the span when [f] returns or raises; spans
    opened while another span is running become its children, so the
    engine's per-stage sections nest under the request's root span exactly
    as they nest dynamically.

    Timing comes from the tracer's {!Clock.t}: two readings per span
    (open and close).  With the default deterministic counter clock the
    elapsed value of a leaf span is exactly [1.0] and every run of the
    same code produces the same tree — tests can assert on it. *)

type span = {
  name : string;
  start : float;  (** clock reading when the span opened *)
  elapsed : float;  (** close reading minus [start] *)
  attrs : (string * string) list;  (** in the order they were added *)
  children : span list;  (** in the order they completed *)
}

type t

val create : ?clock:Clock.t -> unit -> t
(** Fresh tracer with no spans.  [clock] defaults to a fresh
    deterministic {!Clock.counter}. *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] inside a new span.  Exception-safe: the
    span is closed (and recorded) even when [f] raises. *)

val add_attr : t -> string -> string -> unit
(** Attach a key/value pair to the innermost open span; ignored when no
    span is open. *)

val roots : t -> span list
(** Completed top-level spans, oldest first.  Spans still open are not
    included. *)

val reset : t -> unit
(** Drop all completed spans (open spans are unaffected and will be
    recorded into the cleared tracer when they close). *)

val render : ?time:(float -> string) -> t -> string
(** Human-readable tree, one span per line, children indented under their
    parent with per-span elapsed time and attributes.  [time] formats the
    elapsed value (default: [Printf.sprintf "%.3f ms" (1000. *. e)], right
    for the wall clock). *)
