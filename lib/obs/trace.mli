(** Nested span tracing.

    A tracer records a forest of named spans.  [span t name f] opens a
    span, runs [f], and closes the span when [f] returns or raises; spans
    opened while another span is running become its children, so the
    engine's per-stage sections nest under the request's root span exactly
    as they nest dynamically.

    Timing comes from the tracer's {!Clock.t}: two readings per span
    (open and close).  With the default deterministic counter clock the
    elapsed value of a leaf span is exactly [1.0] and every run of the
    same code produces the same tree — tests can assert on it.  Each
    span also records the bytes allocated while it was open
    ([Gc.allocated_bytes] delta, per-domain), which the profiler reports
    as per-stage allocation.

    {2 Cross-task propagation}

    Work handed to an [Exec] pool runs on other domains, where it must
    not touch this tracer (single-writer).  Instead, the orchestrator
    {!fork}s a context while the parent span is open, each task records
    into its own {!branch}ed subtracer, and after the join the
    orchestrator {!stitch}es the completed task spans back under the
    captured parent — in task order, so the final tree is deterministic
    at any jobs level.  Branched subtracers draw their clock from the
    parent tracer's clock factory: a fresh deterministic counter per
    task by default (each task subtree is then a pure function of the
    task body), or the shared wall clock when the parent was built on
    one. *)

type span = {
  name : string;
  start : float;  (** clock reading when the span opened *)
  elapsed : float;  (** close reading minus [start] *)
  alloc : float;  (** bytes allocated on the recording domain while open *)
  attrs : (string * string) list;  (** in the order they were added *)
  children : span list;  (** in the order they completed *)
}

type t

val create : ?clock:Clock.t -> ?fresh:(unit -> Clock.t) -> unit -> t
(** Fresh tracer with no spans.  [clock] defaults to a fresh
    deterministic {!Clock.counter}.  [fresh] is the clock factory handed
    to {!branch}ed subtracers; it defaults to [fun () -> Clock.counter ()]
    when [clock] was omitted, and to sharing [clock] when one was
    given. *)

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] inside a new span.  Exception-safe: the
    span is closed (and recorded) even when [f] raises. *)

val add_attr : t -> string -> string -> unit
(** Attach a key/value pair to the innermost open span; ignored when no
    span is open. *)

val roots : t -> span list
(** Completed top-level spans, oldest first.  Spans still open are not
    included. *)

val reset : t -> unit
(** Drop all completed spans (open spans are unaffected and will be
    recorded into the cleared tracer when they close). *)

type ctx
(** A capture of the innermost open span, taken with {!fork} on the
    orchestrating domain.  It identifies the parent under which task
    spans will be grafted, and carries the clock factory for
    {!branch}. *)

val fork : t -> ctx
(** Capture the current innermost open span (or "no span open", in
    which case stitched spans become new roots).  Cheap; call it while
    the span that should own the forked work is open. *)

val branch : ctx -> t
(** A fresh, completely independent subtracer for one task, with its
    own clock from the context's factory.  Safe to use from any domain
    (it shares no mutable state with the parent tracer). *)

val stitch : ctx -> span list -> unit
(** Graft completed spans (e.g. the {!roots} of a {!branch}ed
    subtracer) under the captured parent, preserving list order.  Must
    be called from the orchestrating domain, after the tasks have
    joined and {e before} the captured span closes — spans stitched
    after the parent closed are silently dropped. *)

val render : ?time:(float -> string) -> t -> string
(** Human-readable tree, one span per line, children indented under their
    parent with per-span elapsed time and attributes.  [time] formats the
    elapsed value (default: [Printf.sprintf "%.3f ms" (1000. *. e)], right
    for the wall clock). *)
