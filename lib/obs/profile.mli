(** Per-request profile record.

    A profile is a structured snapshot of one request's execution: the
    span tree flattened into preorder stage rows (per-stage elapsed time
    and per-stage allocated bytes, straight from {!Trace.span}) plus the
    counter deltas accumulated in the registry while the request ran —
    cache hits and misses, incremental vs. full evaluations, the
    confidence-ladder rung reached, and anything else the pipeline
    counts.  The engine attaches one to its response when profiling is
    requested; it is strictly observe-only (built from completed spans
    after the answer exists). *)

type stage = {
  path : string list;  (** root-to-leaf span names *)
  elapsed : float;
  alloc_bytes : float;
  attrs : (string * string) list;
}

type t = {
  stages : stage list;  (** preorder: parents before children *)
  counters : (string * int) list;
      (** counter deltas over the request, name-sorted, zeros dropped *)
  elapsed : float;  (** the root span's elapsed time *)
  alloc_bytes : float;  (** the root span's allocated bytes *)
}

val snapshot : Metrics.t -> (string * int) list
(** Counter values now — take one before the request, hand it to
    {!of_span} after. *)

val of_span :
  ?before:(string * int) list -> ?metrics:Metrics.t -> Trace.span -> t
(** Build the profile of a completed root span.  When [metrics] is
    given, [counters] holds the per-name difference between the registry
    now and the [before] snapshot (names absent from [before] count from
    zero). *)

val render : ?time:(float -> string) -> t -> string
(** Annotated per-stage table (indented stage name, elapsed, allocation,
    attributes) followed by the counter deltas.  [time] formats elapsed
    values (default milliseconds, right for the wall clock). *)
