(** Pluggable time source for the observability layer.

    Spans never read the wall clock directly: they call whatever clock the
    tracer was built with.  Tests (and anything that must be reproducible,
    like the audit trail) use {!counter}, a deterministic monotonic counter
    that advances by one per reading; the CLI, REPL and benchmarks use
    {!wall}.  This mirrors [Audit]'s no-wall-clock design: enabling
    observability never makes a run nondeterministic unless the caller
    explicitly opts into real time. *)

type t = unit -> float
(** A clock is any monotone float source.  Units are seconds for {!wall}
    and "ticks" for {!counter}. *)

val wall : t
(** [Unix.gettimeofday]. *)

val counter : ?step:float -> unit -> t
(** A fresh deterministic clock: successive readings return [0.0], [step],
    [2. *. step], … ([step] defaults to [1.0]).  Each call to [counter]
    creates an independent counter. *)
