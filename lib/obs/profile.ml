(* Per-request profile: the completed span tree flattened into preorder
   stage rows (wall time + allocation per stage) plus the counter deltas
   recorded while the request ran.  Built by the engine from a
   [before]-snapshot of the registry and the request's root span; strictly
   observe-only — it reads completed spans and counter values, never
   touches the answer path. *)

type stage = {
  path : string list; (* root-to-leaf span names *)
  elapsed : float;
  alloc_bytes : float;
  attrs : (string * string) list;
}

type t = {
  stages : stage list; (* preorder *)
  counters : (string * int) list; (* deltas; zeros dropped; name-sorted *)
  elapsed : float; (* the root span's elapsed *)
  alloc_bytes : float; (* the root span's allocation *)
}

let snapshot m = Metrics.counters m

let counter_deltas ~before after =
  List.filter_map
    (fun (name, v) ->
      let prior = match List.assoc_opt name before with Some p -> p | None -> 0 in
      if v = prior then None else Some (name, v - prior))
    after

let of_span ?(before = []) ?metrics (root : Trace.span) =
  let rec flatten rev_path (s : Trace.span) acc =
    let rev_path = s.Trace.name :: rev_path in
    let stage =
      {
        path = List.rev rev_path;
        elapsed = s.Trace.elapsed;
        alloc_bytes = s.Trace.alloc;
        attrs = s.Trace.attrs;
      }
    in
    stage :: List.fold_right (flatten rev_path) s.Trace.children acc
  in
  let counters =
    match metrics with
    | None -> []
    | Some m -> counter_deltas ~before (Metrics.counters m)
  in
  {
    stages = flatten [] root [];
    counters;
    elapsed = root.Trace.elapsed;
    alloc_bytes = root.Trace.alloc;
  }

let bytes_str b =
  if Float.abs b < 1024.0 then Printf.sprintf "%.0f B" b
  else if Float.abs b < 1024.0 *. 1024.0 then Printf.sprintf "%.1f kB" (b /. 1024.0)
  else Printf.sprintf "%.2f MB" (b /. (1024.0 *. 1024.0))

let default_time e = Printf.sprintf "%.3f ms" (1000.0 *. e)

let render ?(time = default_time) t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-40s %12s %10s  %s\n" "stage" "elapsed" "alloc" "detail");
  List.iter
    (fun st ->
      let depth = List.length st.path - 1 in
      let name =
        String.make (2 * depth) ' '
        ^ (match List.rev st.path with last :: _ -> last | [] -> "?")
      in
      let detail =
        String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) st.attrs)
      in
      Buffer.add_string buf
        (Printf.sprintf "%-40s %12s %10s  %s\n" name (time st.elapsed)
           (bytes_str st.alloc_bytes) detail))
    t.stages;
  if t.counters <> [] then begin
    Buffer.add_string buf "counter deltas:\n";
    List.iter
      (fun (name, d) ->
        Buffer.add_string buf (Printf.sprintf "  %-38s %+d\n" name d))
      t.counters
  end;
  Buffer.contents buf
