type t = unit -> float

let wall = Unix.gettimeofday

let counter ?(step = 1.0) () =
  let ticks = ref (-1.0) in
  fun () ->
    ticks := !ticks +. 1.0;
    !ticks *. step
