(* Bounded log-bucketed histogram (DDSketch-style).

   Bucket [k] covers the interval (gamma^(k-1), gamma^k] with
   gamma = (1 + alpha) / (1 - alpha).  Reporting the representative value
   r_k = 2 * gamma^k / (gamma + 1) = gamma^k * (1 - alpha) for any
   observation in the bucket keeps the relative error at most alpha at
   both bucket edges, hence everywhere inside.  The index range is fixed
   up front (covering [v_min, v_max]), so memory never grows with the
   number of observations — unlike the exact series in [Metrics], which
   keeps every sample. *)

type t = {
  alpha : float;
  log_gamma : float;
  min_idx : int; (* absolute bucket index of the first array slot *)
  buckets : int array; (* fixed size, set at creation *)
  mutable low : int; (* observations <= v_min (zeros, negatives, tiny) *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

(* trackable value range: nanoseconds to ~10^12 covers every latency,
   byte count and cardinality we record *)
let v_min = 1e-9
let v_max = 1e12

let create ?(alpha = 0.01) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Hdr.create: alpha must be in (0, 1)";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  let log_gamma = log gamma in
  let min_idx = int_of_float (Float.ceil (log v_min /. log_gamma)) in
  let max_idx = int_of_float (Float.ceil (log v_max /. log_gamma)) in
  {
    alpha;
    log_gamma;
    min_idx;
    buckets = Array.make (max_idx - min_idx + 1) 0;
    low = 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let alpha t = t.alpha
let bucket_count t = Array.length t.buckets
let count t = t.count
let sum t = t.sum
let min_value t = t.min_v
let max_value t = t.max_v

let observe t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= v_min then t.low <- t.low + 1
  else begin
    let idx = int_of_float (Float.ceil (log v /. t.log_gamma)) - t.min_idx in
    let last = Array.length t.buckets - 1 in
    let idx = if idx < 0 then 0 else if idx > last then last else idx in
    t.buckets.(idx) <- t.buckets.(idx) + 1
  end

(* representative value of the bucket at array slot [i] *)
let representative t i =
  exp (float_of_int (i + t.min_idx) *. t.log_gamma) *. (1.0 -. t.alpha)

let quantile t q =
  if t.count = 0 then nan
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int t.count)) in
    let rank = Stdlib.max 1 (Stdlib.min t.count rank) in
    if rank <= t.low then t.min_v
    else begin
      let rem = ref (rank - t.low) in
      let i = ref 0 in
      while !rem > t.buckets.(!i) do
        rem := !rem - t.buckets.(!i);
        incr i
      done;
      (* clamp to the exact extremes: the true value lies within them, so
         clamping never worsens the alpha bound *)
      Float.min t.max_v (Float.max t.min_v (representative t !i))
    end
  end

let iter t f =
  if t.low > 0 then f (Float.min t.min_v v_min) t.low;
  Array.iteri (fun i c -> if c > 0 then f (representative t i) c) t.buckets

let merge ~into src =
  if into.alpha <> src.alpha then invalid_arg "Hdr.merge: alpha mismatch";
  Array.iteri
    (fun i c -> into.buckets.(i) <- into.buckets.(i) + c)
    src.buckets;
  into.low <- into.low + src.low;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.min_v < into.min_v then into.min_v <- src.min_v;
  if src.max_v > into.max_v then into.max_v <- src.max_v
